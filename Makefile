GO ?= go

.PHONY: check build vet test race bench

# The full verification gate: what CI (and every PR) must keep green.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./internal/bench/
