GO ?= go

.PHONY: check build vet lint test race bench bench-smoke recover-test rebalance-test wire-test wire-smoke obs-test

# The full verification gate: what CI (and every PR) must keep green.
check: build vet lint race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Typed-options boundary: fails on exported funcs taking map[string]string
# outside the allowlisted External Data Source API surface.
lint:
	$(GO) run ./cmd/lintoptions

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Crash-recovery smoke: the WAL/persistence units plus the kill-and-restart
# chaos suite (crash at every WAL record boundary), under the race detector.
recover-test:
	$(GO) test -race ./internal/wal/
	$(GO) test -race -run 'Persist|Marshal|Encode|ContainerCache|DrainCommitted|MoveoutContainerOrder|LoadWOS' ./internal/storage/
	$(GO) test -race -run 'AHM|CommitRequiresLog|Abort|SetNextTag' ./internal/txn/
	$(GO) test -race -run 'Durable|Checkpoint|KillAndRestart|CrashMid|ReplayProperty|AtEpoch' ./internal/vertica/

# Elastic-membership gate: the rebalance units, the cluster-lifecycle suites
# (ALTER CLUSTER, node recovery, crash sweeps over the rebalance/recovery
# state machines), the wire sentinel round-trip, and the chaos acceptance
# scenario (grow + kill + heal under live COPY and V2S) — all under the race
# detector.
rebalance-test:
	$(GO) test -race ./internal/rebalance/
	$(GO) test -race -run 'AlterCluster|NodeRecovery|RecoveringNode|AtEpochPinnedAcrossRebalance|MembershipCrashSweep|RecoveryCrashSweep' ./internal/vertica/
	$(GO) test -race -run 'SentinelRoundTrip' ./internal/server/
	$(GO) test -race -run 'ElasticClusterChaosAcceptance|V2SReplansAcrossMembershipChange' ./internal/core/

# Wire-protocol gate: the binary frame codec (property tests plus the fuzz
# seed corpora), the v1/v2 handshake-downgrade matrix, pipelining order and
# concurrent-connection suites, the mid-COPY desync regression, and the
# resource-pool admission suites — all under the race detector.
wire-test:
	$(GO) test -race -run 'Bin|WireCode|Handshake|Pipeline|ExecuteStream|PoolSentinels|MidCopy|CopyEngineError|FrameCodec|ReadFrameRejects|WriteFrameSingle' ./internal/server/
	$(GO) test -race -run xxx -fuzz FuzzBinRequestDecode -fuzztime 5s ./internal/server/
	$(GO) test -race -run xxx -fuzz FuzzBinDoneDecode -fuzztime 5s ./internal/server/
	$(GO) test -race -run xxx -fuzz FuzzBinErrorDecode -fuzztime 5s ./internal/server/
	$(GO) test -race ./internal/pool/
	$(GO) test -race -run 'ResourcePool|SetResourcePool|Admission|PoolDDL' ./internal/vertica/

# Closed-loop wire benchmark at smoke scale: diffs binary-v2 against
# JSON-v1 result sets cell by cell and checks admission control bounds
# engine concurrency with queue waits visible in the histogram and
# v_monitor.resource_queue_events. Shape gates only; timings at this scale
# are noise. Full runs (`go run ./cmd/wireload`) write BENCH_wire.json.
wire-smoke:
	$(GO) run ./cmd/wireload -smoke -out BENCH_wire.json

# Observability gate: the data-collector spool units (framing, rotation,
# retention, crash-tail truncation), the engine-level dc suites (history
# surviving a simulated kill, retention via SET_DATA_COLLECTOR_POLICY,
# seeded query events), the /metrics + /healthz endpoint suites, and the
# Chrome-trace exporter — all under the race detector — then the scanbench
# overhead gate asserting dc spooling costs at most 5% on the selective
# scan (500k rows: large enough that the fixed ~45µs/query spool cost is
# measured against a realistic query, small enough for CI).
obs-test:
	$(GO) test -race ./internal/dc/
	$(GO) test -race ./internal/obs/
	$(GO) test -race -run 'DC|QueryEvents|Metrics|Healthz|Counters|Profile|ChromeTrace' ./internal/vertica/
	$(GO) run ./cmd/scanbench -rows 500000 -iters 5 -obs -gate -out BENCH_scan_obs.json

# Microbenchmarks plus the throughput gates: BENCH_scan.json,
# BENCH_agg.json, and BENCH_join.json record ns/op and rows/s for the
# vectorized pipeline vs the row-at-a-time reference (machine-readable,
# tracked by CI).
bench:
	$(GO) test -bench=. -benchmem ./internal/bench/
	$(GO) test -run xxx -bench 'BenchmarkScan|BenchmarkCount' -benchtime 5x ./internal/vertica/
	$(GO) run ./cmd/scanbench -out BENCH_scan.json
	$(GO) run ./cmd/aggbench -out-agg BENCH_agg.json -out-join BENCH_join.json

# Small-scale aggregation/join bench that diffs the vectorized results
# against the row-at-a-time reference cell by cell and exits non-zero on any
# shape drift (row counts, values, NULLs) or empty result. Timings at this
# scale are noise; the diff is the CI gate.
bench-smoke:
	$(GO) run ./cmd/aggbench -smoke -out-agg BENCH_agg.json -out-join BENCH_join.json
