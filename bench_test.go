// Package vsfabric's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (§4) through the experiment harness in
// internal/bench: each benchmark runs the real system at laptop scale and
// replays the recorded resource trace — scaled to the paper's data sizes —
// through the testbed simulator. Run them all with
//
//	go test -bench=. -benchmem
//
// or one at a time, e.g. -bench=BenchmarkFig6. The printed report compares
// against the paper's numbers; `go run ./cmd/fabricbench` produces the same
// tables with more control.
package vsfabric

import (
	"fmt"
	"testing"

	"vsfabric/internal/bench"
)

// benchRows keeps the real-run row count small enough that the full
// benchmark suite finishes in a few minutes; fabricbench defaults to larger
// runs with less sampling noise.
const benchRows = 20_000

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("no experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		rep, err := exp.Run(bench.RunConfig{RealRows: benchRows})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Println(rep.String())
		}
	}
}

// BenchmarkFig6_VaryingParallelism regenerates Figure 6: V2S and S2V
// execution time across 4..256 partitions (bowl shape; paper anchors: V2S
// 497 s @32 / 475 s @128, S2V 252 s @128).
func BenchmarkFig6_VaryingParallelism(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkTable2_ResourceUsage regenerates Table 2: per-node CPU% and
// network MBps time series during V2S at 4 vs 32 partitions (paper: ~5%/38
// MBps vs ~20%/120 MBps steady states).
func BenchmarkTable2_ResourceUsage(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig7_DataScalability regenerates Figure 7: 1M → 1000M rows,
// linear on log-log axes, with the V2S/S2V crossover.
func BenchmarkFig7_DataScalability(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8_ClusterScalability regenerates Figure 8: 2:4 → 4:8 → 8:16
// clusters with data doubled per step (<10% degradation per doubling).
func BenchmarkFig8_ClusterScalability(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9_Dimensionality regenerates Figure 9: 100 cols × 100M rows
// vs 1 col × 10,000M rows at equal cell count.
func BenchmarkFig9_Dimensionality(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkTable3_DatasetD2 regenerates Table 3: the tweet dataset
// (paper: V2S 378 s, S2V 386 s).
func BenchmarkTable3_DatasetD2(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig10_LoadVsJDBC regenerates Figure 10: V2S vs the JDBC Default
// Source with and without 5% filter pushdown (paper: ~4× V2S win without
// pushdown).
func BenchmarkFig10_LoadVsJDBC(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11_SaveVsJDBC regenerates Figure 11: S2V vs JDBC INSERT saves
// at 1 / 1K / 10K / 1M rows (paper: 5 s vs 3 s at one row; JDBC >3 h at 1M).
func BenchmarkFig11_SaveVsJDBC(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12_VsHDFS regenerates Figure 12: the connector vs native HDFS
// read/write on a separate 4-node HDFS cluster (paper: HDFS read ~30%
// faster, write ≈ parity).
func BenchmarkFig12_VsHDFS(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkTable4_VsNativeCOPY regenerates Table 4: S2V vs Vertica's native
// parallel COPY across file-split counts (paper: COPY best 238 s @8 parts,
// S2V ~6% slower).
func BenchmarkTable4_VsNativeCOPY(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkMD_DeployAndScore exercises §3.3: PMML deployment plus
// in-database scoring throughput (real time, not simulated — there is no
// corresponding figure in the paper).
func BenchmarkMD_DeployAndScore(b *testing.B) { runExperiment(b, "md") }

// BenchmarkAblation_Locality quantifies the §3.1.2 locality optimization on
// dual-NIC (the paper's testbed) and shared-NIC hardware.
func BenchmarkAblation_Locality(b *testing.B) { runExperiment(b, "ablation_locality") }

// BenchmarkAblation_Encoding compares S2V's Avro+deflate task encoding
// (§3.2.2) against CSV.
func BenchmarkAblation_Encoding(b *testing.B) { runExperiment(b, "ablation_encoding") }
