// Command aggbench measures the vectorized hash-aggregation and hash-join
// pipeline against the retained row-at-a-time reference
// (Config.RowAtATimeScans) and writes the numbers as machine-readable JSON
// (BENCH_agg.json, BENCH_join.json) so CI can track the perf trajectory.
//
// Usage:
//
//	aggbench                        # 1M fact rows, 4 nodes
//	aggbench -rows 200000 -iters 5
//	aggbench -smoke                 # small scale; fail on result-shape drift
//
// In -smoke mode every benchmark query is first executed on both engine
// configurations and the result sets diffed cell by cell; any mismatch (or an
// unexpectedly empty result) exits non-zero before any timing runs. That is
// the CI regression gate: shapes are deterministic, timings are not.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

// Measurement is one timed query configuration.
type Measurement struct {
	Name     string  `json:"name"`
	Query    string  `json:"query"`
	Iters    int     `json:"iters"`
	NsPerOp  int64   `json:"ns_per_op"`
	RowsPerS float64 `json:"rows_per_s"`
}

// Results is the BENCH_agg.json / BENCH_join.json document: pairs of
// (vectorized, row-at-a-time) measurements plus the headline speedup.
type Results struct {
	Rows     int           `json:"rows"`
	Nodes    int           `json:"nodes"`
	Queries  []Measurement `json:"queries"`
	SpeedupX float64       `json:"speedup_x"` // vectorized vs reference, first query pair
}

// benchCase is one query timed under both engine configurations.
type benchCase struct {
	name  string
	query string
}

var aggCases = []benchCase{
	{"group_by", "SELECT grp, COUNT(*), SUM(val), MIN(val), MAX(val) FROM fact GROUP BY grp"},
	{"global_agg", "SELECT COUNT(*), SUM(val), AVG(val) FROM fact"},
	{"filtered_group_by", "SELECT grp, SUM(val) FROM fact WHERE grp < 10 GROUP BY grp"},
}

var joinCases = []benchCase{
	{"join2", "SELECT COUNT(*) FROM fact JOIN dim ON fact.cid = dim.cid"},
	{"join3", "SELECT COUNT(*) FROM fact JOIN dim ON fact.cid = dim.cid JOIN tags ON fact.cid = tags.cid"},
}

func buildSession(rows, nodes int, rowAtATime bool) (*vertica.Session, error) {
	c, err := vertica.NewCluster(vertica.Config{Nodes: nodes, RowAtATimeScans: rowAtATime})
	if err != nil {
		return nil, err
	}
	c.Obs().SetEnabled(false)
	s, err := c.Connect(0)
	if err != nil {
		return nil, err
	}
	ddl := []string{
		"CREATE TABLE fact (id INTEGER, grp INTEGER, cid INTEGER, val FLOAT) SEGMENTED BY HASH(id)",
		"CREATE TABLE dim (cid INTEGER, name VARCHAR) SEGMENTED BY HASH(cid)",
		"CREATE TABLE tags (cid INTEGER, tag VARCHAR) SEGMENTED BY HASH(cid)",
	}
	for _, q := range ddl {
		if _, err := s.Execute(q); err != nil {
			return nil, err
		}
	}
	var csv strings.Builder
	csv.Grow(rows * 20)
	for i := 0; i < rows; i++ {
		// 100 groups; cids land in [0, 1000) but dim only covers [0, 10), so
		// the join is ~1% selective — the shape a zone-mapped star join sees.
		fmt.Fprintf(&csv, "%d,%d,%d,%d.5\n", i, i%100, i%1000, i%997)
	}
	if _, err := s.CopyFrom("COPY fact FROM STDIN FORMAT CSV DIRECT", strings.NewReader(csv.String())); err != nil {
		return nil, err
	}
	var dim, tags strings.Builder
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&dim, "%d,name%d\n", i, i)
		fmt.Fprintf(&tags, "%d,tagA\n%d,tagB\n", i, i)
	}
	if _, err := s.CopyFrom("COPY dim FROM STDIN FORMAT CSV DIRECT", strings.NewReader(dim.String())); err != nil {
		return nil, err
	}
	if _, err := s.CopyFrom("COPY tags FROM STDIN FORMAT CSV DIRECT", strings.NewReader(tags.String())); err != nil {
		return nil, err
	}
	return s, nil
}

func timeQuery(s *vertica.Session, name, q string, rows, iters int) (Measurement, error) {
	if _, err := s.Execute(q); err != nil {
		return Measurement{}, fmt.Errorf("%s: %w", name, err)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := s.Execute(q); err != nil {
			return Measurement{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	elapsed := time.Since(start)
	return Measurement{
		Name:     name,
		Query:    q,
		Iters:    iters,
		NsPerOp:  elapsed.Nanoseconds() / int64(iters),
		RowsPerS: float64(rows) * float64(iters) / elapsed.Seconds(),
	}, nil
}

// diffResults compares two result sets cell by cell (NULL-aware) and reports
// the first mismatch. Row order is part of the engine's contract, so no
// sorting happens here.
func diffResults(name string, vec, ref *vertica.Result) error {
	if len(vec.Rows) != len(ref.Rows) {
		return fmt.Errorf("%s: vectorized returned %d rows, reference %d", name, len(vec.Rows), len(ref.Rows))
	}
	if len(vec.Schema.Cols) != len(ref.Schema.Cols) {
		return fmt.Errorf("%s: schema width %d vs %d", name, len(vec.Schema.Cols), len(ref.Schema.Cols))
	}
	for i := range vec.Rows {
		for j := range vec.Rows[i] {
			g, w := vec.Rows[i][j], ref.Rows[i][j]
			if g.Null != w.Null || (!g.Null && types.Compare(g, w) != 0) {
				return fmt.Errorf("%s: row %d col %d: %v vs %v", name, i, j, vec.Rows[i], ref.Rows[i])
			}
		}
	}
	return nil
}

// verifyShapes runs every case on both configurations and diffs the results.
// Returns the per-case vectorized row counts so the caller can reject empty
// results.
func verifyShapes(vec, ref *vertica.Session, cases []benchCase) error {
	for _, bc := range cases {
		vr, err := vec.Execute(bc.query)
		if err != nil {
			return fmt.Errorf("%s (vectorized): %w", bc.name, err)
		}
		rr, err := ref.Execute(bc.query)
		if err != nil {
			return fmt.Errorf("%s (reference): %w", bc.name, err)
		}
		if err := diffResults(bc.name, vr, rr); err != nil {
			return err
		}
		if len(vr.Rows) == 0 {
			return fmt.Errorf("%s: zero-row result on the bench workload", bc.name)
		}
	}
	return nil
}

// runSuite times every case under both configurations and writes one JSON
// document. The headline speedup is the first case's pair.
func runSuite(vec, ref *vertica.Session, cases []benchCase, rows, nodes, iters int, out string) error {
	res := Results{Rows: rows, Nodes: nodes}
	for _, bc := range cases {
		mv, err := timeQuery(vec, bc.name+"_vectorized", bc.query, rows, iters)
		if err != nil {
			return err
		}
		mr, err := timeQuery(ref, bc.name+"_row_at_a_time", bc.query, rows, iters)
		if err != nil {
			return err
		}
		res.Queries = append(res.Queries, mv, mr)
		fmt.Printf("%-28s %12d ns/op %14.0f rows/s\n", mv.Name, mv.NsPerOp, mv.RowsPerS)
		fmt.Printf("%-28s %12d ns/op %14.0f rows/s   (%.1fx)\n",
			mr.Name, mr.NsPerOp, mr.RowsPerS, float64(mr.NsPerOp)/float64(mv.NsPerOp))
	}
	if res.Queries[1].NsPerOp > 0 {
		res.SpeedupX = float64(res.Queries[1].NsPerOp) / float64(res.Queries[0].NsPerOp)
	}
	data, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (headline speedup %.1fx)\n", out, res.SpeedupX)
	return nil
}

func run() error {
	rows := flag.Int("rows", 1_000_000, "fact table size")
	nodes := flag.Int("nodes", 4, "cluster size")
	iters := flag.Int("iters", 10, "timed iterations per configuration")
	outAgg := flag.String("out-agg", "BENCH_agg.json", "aggregation results path")
	outJoin := flag.String("out-join", "BENCH_join.json", "join results path")
	smoke := flag.Bool("smoke", false, "small-scale run that fails on result-shape regressions")
	flag.Parse()

	if *smoke {
		*rows = min(*rows, 50_000)
		*iters = min(*iters, 3)
	}

	vec, err := buildSession(*rows, *nodes, false)
	if err != nil {
		return err
	}
	defer vec.Close()
	ref, err := buildSession(*rows, *nodes, true)
	if err != nil {
		return err
	}
	defer ref.Close()

	// Shape verification runs in every mode; -smoke just shrinks the scale.
	// A drift between the vectorized and reference engines invalidates the
	// timings, so it aborts before any are taken.
	if err := verifyShapes(vec, ref, aggCases); err != nil {
		return err
	}
	if err := verifyShapes(vec, ref, joinCases); err != nil {
		return err
	}
	fmt.Printf("result shapes verified: %d aggregation + %d join queries match the reference\n",
		len(aggCases), len(joinCases))

	if err := runSuite(vec, ref, aggCases, *rows, *nodes, *iters, *outAgg); err != nil {
		return err
	}
	return runSuite(vec, ref, joinCases, *rows, *nodes, *iters, *outJoin)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "aggbench:", err)
		os.Exit(1)
	}
}
