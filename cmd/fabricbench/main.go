// Command fabricbench regenerates the paper's tables and figures: it runs
// each experiment's real laptop-scale workload through the full system,
// scales the recorded resource trace to the paper's data sizes, replays it
// through the testbed simulator, and prints the resulting rows next to what
// the paper reports.
//
// Usage:
//
//	fabricbench                 # run every experiment
//	fabricbench -exp fig6       # run one (fig6, table2, fig7, fig8, fig9,
//	                            # table3, fig10, fig11, fig12, table4, md,
//	                            # ablation_locality, ablation_encoding)
//	fabricbench -list           # list experiments
//	fabricbench -rows 100000    # override the real-run row count
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vsfabric/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	rows := flag.Int64("rows", 0, "real-run row count override (0 = per-experiment default)")
	verbose := flag.Bool("v", false, "print progress")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}
	cfg := bench.RunConfig{RealRows: *rows, Verbose: *verbose}

	var toRun []bench.Experiment
	if *exp != "" {
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "fabricbench: no experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		toRun = append(toRun, e)
	} else {
		toRun = bench.All()
	}

	failed := false
	for _, e := range toRun {
		start := time.Now()
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fabricbench: %s failed: %v\n", e.ID, err)
			failed = true
			continue
		}
		fmt.Println(rep.String())
		fmt.Printf("(real run took %.1f s)\n\n", time.Since(start).Seconds())
	}
	if failed {
		os.Exit(1)
	}
}
