// Command fabricdemo runs the paper's Figure 1 end to end on an in-process
// fabric and narrates every step: data lands in the database via S2V (the
// ETL direction), comes back out via V2S (the analytics direction), trains
// an MLlib model, exports it as PMML, deploys it with MD, and scores it
// in-database with PMMLPredict — "closing the loop on the full analytics
// pipeline" (§3.3).
package main

import (
	"fmt"
	"os"

	"vsfabric/internal/client"
	"vsfabric/internal/core"
	"vsfabric/internal/mllib"
	"vsfabric/internal/spark"
	"vsfabric/internal/vertica"
	"vsfabric/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "fabricdemo: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("== 1. Boot the fabric: 4-node analytic database + 4-worker compute engine")
	cluster, err := vertica.NewCluster(vertica.Config{Nodes: 4})
	if err != nil {
		return err
	}
	if err := core.InstallPMMLSupport(cluster); err != nil {
		return err
	}
	sc := spark.NewContext(spark.Conf{NumExecutors: 4, CoresPerExecutor: 8})
	core.NewDefaultSource(client.InProc(cluster)).Register()
	host := cluster.Node(0).Addr

	fmt.Println("== 2. S2V: save a 50,000-row DataFrame into the database (exactly-once, 16 tasks)")
	iris := workload.IrisRows(50_000, 7)
	df := spark.CreateDataFrame(sc, workload.IrisSchema(), iris, 16)
	opts := map[string]string{"host": host, "table": "iristable", "numPartitions": "16"}
	if err := df.Write().Format(core.DefaultSourceName).Options(opts).Mode(spark.SaveOverwrite).Save(); err != nil {
		return err
	}
	sess, err := cluster.Connect(0)
	if err != nil {
		return err
	}
	defer sess.Close()
	count, err := sess.Execute("SELECT COUNT(*) FROM iristable")
	if err != nil {
		return err
	}
	fmt.Printf("   iristable now holds %s rows across the hash ring\n", count.Rows[0][0])

	fmt.Println("== 3. V2S: load the table back with node-local hash-range queries, pinned to one epoch")
	back, err := sc.Read().Format(core.DefaultSourceName).Options(opts).Load()
	if err != nil {
		return err
	}
	rows, err := back.Collect()
	if err != nil {
		return err
	}
	fmt.Printf("   loaded %d rows into the compute engine\n", len(rows))

	fmt.Println("== 4. MLlib: train logistic regression on the loaded data")
	var pts []mllib.LabeledPoint
	for _, r := range rows {
		pts = append(pts, mllib.LabeledPoint{
			Label:    float64(r[4].I),
			Features: mllib.Vector{r[0].F, r[1].F, r[2].F, r[3].F},
		})
	}
	model, err := mllib.TrainLogisticRegression(spark.Parallelize(sc, pts, 8), 150, 1.0)
	if err != nil {
		return err
	}
	fmt.Printf("   weights %v, intercept %.4f\n", model.Weights, model.Intercept)

	fmt.Println("== 5. MD: export to PMML and deploy into the database's internal DFS")
	doc, err := model.ToPMML([]string{"sepal_length", "sepal_width", "petal_length", "petal_width"}, "species")
	if err != nil {
		return err
	}
	if err := core.DeployPMMLModel(cluster, "regression", doc); err != nil {
		return err
	}
	models, err := core.ListModels(cluster)
	if err != nil {
		return err
	}
	for _, m := range models {
		fmt.Printf("   deployed %q (%s, %d features, %d bytes at %s)\n", m.Name, m.Type, m.NumFeatures, m.SizeBytes, m.DFSPath)
	}

	fmt.Println("== 6. In-database scoring with the paper's §3.3 query")
	res, err := sess.Execute(`SELECT PMMLPredict(
		sepal_length, sepal_width,
		petal_length, petal_width
	USING PARAMETERS model_name='regression') AS pred, species FROM iristable`)
	if err != nil {
		return err
	}
	correct := 0
	for _, r := range res.Rows {
		if int64(r[0].F) == r[1].I {
			correct++
		}
	}
	fmt.Printf("   scored %d rows in-database, accuracy %.3f\n", len(res.Rows), float64(correct)/float64(len(res.Rows)))
	fmt.Println("== Done: the Figure 1 loop (S2V → V2S → train → PMML → MD → PMMLPredict) is closed.")
	return nil
}
