// Command lintoptions enforces the typed-options API boundary: no exported
// function or method may take a map[string]string options bag. The stringly
// form is quarantined to the External Data Source API surface (the Spark
// interface methods and the Parse* shims in internal/core), which are
// allowlisted below; everything else must accept V2SOptions/S2VOptions or
// functional options so misspelled keys and out-of-range values fail at
// compile time or construction, not deep inside a job.
//
// It also flags ad-hoc timeout parameters on exported constructors: a
// Dial*/New*/Connect*/Open* function taking a bare time.Duration grows a
// new variant for every knob (DialTimeout, DialTimeoutWithRetry, ...).
// Constructors take functional options (server.WithDialTimeout et al.) or a
// config struct instead; the one deprecated shim kept for compatibility is
// allowlisted.
//
// Finally, it flags exported functions taking a map[string]interface{} (or
// map[string]any) attribute bag anywhere outside internal/obs. Untyped bags
// belong to the observability layer, whose span/event attributes are
// genuinely open-schema; engine and connector APIs must spell their inputs
// as typed structs so the compiler — not a runtime type switch — rejects a
// wrong value.
//
// Run as `make lint` (part of `make check`). Exit status 1 lists offenders.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// allowed names the exported map[string]string signatures that are the API
// boundary itself. Keys are "dir/file-relative package path: [Recv.]Func".
var allowed = map[string]bool{
	// Spark External Data Source API fidelity (Table 1 of the paper): the
	// substrate hands sources a string map by contract.
	"internal/spark: DataFrameReader.Options":     true,
	"internal/spark: DataFrameWriter.Options":     true,
	"internal/core: DefaultSource.CreateRelation": true,
	"internal/core: DefaultSource.SaveRelation":   true,
	"internal/jdbcsource: Source.CreateRelation":  true,
	"internal/jdbcsource: Source.SaveRelation":    true,
	"internal/hdfssource: Source.CreateRelation":  true,
	"internal/hdfssource: Source.SaveRelation":    true,
	// The designated stringly→typed shims.
	"internal/core: ParseV2SOptions": true,
	"internal/core: ParseS2VOptions": true,
}

// allowedDuration names the exported constructors that may keep a bare
// time.Duration parameter: deprecated shims preserved for compatibility.
var allowedDuration = map[string]bool{
	"internal/server: DialTimeout": true,
}

// constructorPrefixes are the exported-function name prefixes the
// timeout-parameter rule applies to.
var constructorPrefixes = []string{"Dial", "New", "Connect", "Open"}

// isDuration reports whether the type expression is time.Duration.
func isDuration(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Duration" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "time"
}

// isConstructor reports whether an exported function name reads as a
// constructor the duration rule covers.
func isConstructor(name string) bool {
	for _, p := range constructorPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// isAnyMap reports whether the type expression is map[string]interface{} or
// map[string]any.
func isAnyMap(e ast.Expr) bool {
	m, ok := e.(*ast.MapType)
	if !ok {
		return false
	}
	k, ok := m.Key.(*ast.Ident)
	if !ok || k.Name != "string" {
		return false
	}
	switch v := m.Value.(type) {
	case *ast.InterfaceType:
		return len(v.Methods.List) == 0
	case *ast.Ident:
		return v.Name == "any"
	}
	return false
}

// isOptionsMap reports whether the type expression is map[string]string.
func isOptionsMap(e ast.Expr) bool {
	m, ok := e.(*ast.MapType)
	if !ok {
		return false
	}
	k, ok := m.Key.(*ast.Ident)
	if !ok || k.Name != "string" {
		return false
	}
	v, ok := m.Value.(*ast.Ident)
	return ok && v.Name == "string"
}

func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "."
	}
	return ""
}

func lintFile(fset *token.FileSet, root, path string) ([]string, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	var bad []string
	rel, _ := filepath.Rel(root, filepath.Dir(path))
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || !fd.Name.IsExported() {
			continue
		}
		// Unexported receivers keep the whole method unexported.
		rn := recvName(fd)
		if rn != "" && !ast.IsExported(strings.TrimSuffix(rn, ".")) {
			continue
		}
		takesMap, takesAnyMap, takesDuration := false, false, false
		for _, p := range fd.Type.Params.List {
			if isOptionsMap(p.Type) {
				takesMap = true
			}
			if isAnyMap(p.Type) {
				takesAnyMap = true
			}
			if isDuration(p.Type) {
				takesDuration = true
			}
		}
		key := fmt.Sprintf("%s: %s%s", filepath.ToSlash(rel), rn, fd.Name.Name)
		if takesMap && !allowed[key] {
			pos := fset.Position(fd.Pos())
			bad = append(bad, fmt.Sprintf("%s:%d: exported %s%s takes map[string]string; use typed options (V2SOptions/S2VOptions) or allowlist it in cmd/lintoptions",
				pos.Filename, pos.Line, rn, fd.Name.Name))
		}
		if takesAnyMap && !strings.HasPrefix(filepath.ToSlash(rel), "internal/obs") {
			pos := fset.Position(fd.Pos())
			bad = append(bad, fmt.Sprintf("%s:%d: exported %s%s takes map[string]interface{}; untyped attribute bags are reserved for internal/obs — use a typed struct",
				pos.Filename, pos.Line, rn, fd.Name.Name))
		}
		if takesDuration && rn == "" && isConstructor(fd.Name.Name) && !allowedDuration[key] {
			pos := fset.Position(fd.Pos())
			bad = append(bad, fmt.Sprintf("%s:%d: exported constructor %s takes a bare time.Duration; use functional options (e.g. WithDialTimeout) or a config struct, or allowlist it in cmd/lintoptions",
				pos.Filename, pos.Line, fd.Name.Name))
		}
	}
	return bad, nil
}

func run() error {
	root, err := os.Getwd()
	if err != nil {
		return err
	}
	fset := token.NewFileSet()
	var bad []string
	for _, top := range []string{"internal", "cmd", "examples"} {
		err := filepath.WalkDir(filepath.Join(root, top), func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				if os.IsNotExist(err) {
					return filepath.SkipDir
				}
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			found, err := lintFile(fset, root, path)
			if err != nil {
				return err
			}
			bad = append(bad, found...)
			return nil
		})
		if err != nil {
			return err
		}
	}
	if len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, b)
		}
		return fmt.Errorf("%d offending exported signature(s)", len(bad))
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lintoptions:", err)
		os.Exit(1)
	}
}
