// Command scanbench measures the vectorized batch scan pipeline against the
// retained row-at-a-time reference (Config.RowAtATimeScans) on a hash-
// segmented table, and writes the numbers as machine-readable JSON so CI can
// track scan throughput over time.
//
// Usage:
//
//	scanbench                       # 1M rows, 4 nodes, BENCH_scan.json
//	scanbench -rows 200000 -iters 5
//	scanbench -out results.json
//	scanbench -obs                  # also measure span+histogram overhead
//	scanbench -obs -gate            # exit non-zero if dc spooling costs >5%
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vsfabric/internal/vertica"
)

// Measurement is one timed query configuration.
type Measurement struct {
	Name     string  `json:"name"`
	Query    string  `json:"query"`
	Iters    int     `json:"iters"`
	NsPerOp  int64   `json:"ns_per_op"`
	RowsPerS float64 `json:"rows_per_s"`
}

// Results is the BENCH_scan.json document.
type Results struct {
	Rows     int           `json:"rows"`
	Nodes    int           `json:"nodes"`
	Scans    []Measurement `json:"scans"`
	SpeedupX float64       `json:"speedup_x"` // vectorized vs row-at-a-time, selective scan
	// ObsOverheadX is collector-enabled / collector-disabled time for the
	// selective vectorized scan (only with -obs): the cost of span recording
	// plus latency histogram updates on the query path.
	ObsOverheadX float64 `json:"obs_overhead_x,omitempty"`
	// DcOverheadX is the durable-cluster scan time with data-collector
	// spooling over the same durable cluster with DisableDataCollector set
	// (only with -obs): the added cost of encoding and appending each
	// query's history records to disk. The -gate flag fails the run when
	// this exceeds 1.05.
	DcOverheadX float64 `json:"dc_overhead_x,omitempty"`
}

func buildSession(rows, nodes int, rowAtATime, obsOn bool, dataDir string, disableDC bool) (*vertica.Session, error) {
	c, err := vertica.NewCluster(vertica.Config{Nodes: nodes, RowAtATimeScans: rowAtATime, DataDir: dataDir, DisableDataCollector: disableDC})
	if err != nil {
		return nil, err
	}
	// The benchmark's contract is the observability-disabled fast path; -obs
	// re-enables the collector to measure tracing overhead instead.
	c.Obs().SetEnabled(obsOn)
	s, err := c.Connect(0)
	if err != nil {
		return nil, err
	}
	if _, err := s.Execute("CREATE TABLE bench_scan (id INTEGER, grp INTEGER, val FLOAT) SEGMENTED BY HASH(id)"); err != nil {
		return nil, err
	}
	var csv strings.Builder
	csv.Grow(rows * 16)
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&csv, "%d,%d,%d.5\n", i, i%100, i%1000)
	}
	if _, err := s.CopyFrom("COPY bench_scan FROM STDIN FORMAT CSV DIRECT", strings.NewReader(csv.String())); err != nil {
		return nil, err
	}
	return s, nil
}

func timeQuery(s *vertica.Session, name, q string, rows, iters int) (Measurement, error) {
	// One warm-up run, then the timed loop.
	if _, err := s.Execute(q); err != nil {
		return Measurement{}, fmt.Errorf("%s: %w", name, err)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := s.Execute(q); err != nil {
			return Measurement{}, fmt.Errorf("%s: %w", name, err)
		}
	}
	elapsed := time.Since(start)
	return Measurement{
		Name:     name,
		Query:    q,
		Iters:    iters,
		NsPerOp:  elapsed.Nanoseconds() / int64(iters),
		RowsPerS: float64(rows) * float64(iters) / elapsed.Seconds(),
	}, nil
}

func run() error {
	rows := flag.Int("rows", 1_000_000, "table size")
	nodes := flag.Int("nodes", 4, "cluster size")
	iters := flag.Int("iters", 10, "timed iterations per configuration")
	out := flag.String("out", "BENCH_scan.json", "output path")
	obsOn := flag.Bool("obs", false, "also measure span+histogram recording overhead")
	gate := flag.Bool("gate", false, "with -obs: exit non-zero if dc spooling overhead exceeds 5%")
	flag.Parse()

	const (
		selective = "SELECT id, val FROM bench_scan WHERE grp = 7"
		countAll  = "SELECT COUNT(*) FROM bench_scan"
	)
	res := Results{Rows: *rows, Nodes: *nodes}
	for _, cfg := range []struct {
		name       string
		query      string
		rowAtATime bool
	}{
		{"scan_vectorized", selective, false},
		{"scan_row_at_a_time", selective, true},
		{"count_vectorized", countAll, false},
		{"count_row_at_a_time", countAll, true},
	} {
		// The headline configurations always time the observability-disabled
		// fast path; overhead is measured separately below.
		s, err := buildSession(*rows, *nodes, cfg.rowAtATime, false, "", false)
		if err != nil {
			return err
		}
		m, err := timeQuery(s, cfg.name, cfg.query, *rows, *iters)
		s.Close()
		if err != nil {
			return err
		}
		res.Scans = append(res.Scans, m)
		fmt.Printf("%-22s %12d ns/op %14.0f rows/s\n", m.Name, m.NsPerOp, m.RowsPerS)
	}
	if res.Scans[1].NsPerOp > 0 {
		res.SpeedupX = float64(res.Scans[1].NsPerOp) / float64(res.Scans[0].NsPerOp)
	}
	fmt.Printf("vectorized speedup: %.1fx\n", res.SpeedupX)

	if *obsOn {
		// Same query, same engine configuration; the only variable is whether
		// the collector records spans and updates latency histograms.
		var pair [2]Measurement
		for i, on := range []bool{false, true} {
			name := "scan_obs_off"
			if on {
				name = "scan_obs_on"
			}
			s, err := buildSession(*rows, *nodes, false, on, "", false)
			if err != nil {
				return err
			}
			m, err := timeQuery(s, name, selective, *rows, *iters)
			s.Close()
			if err != nil {
				return err
			}
			pair[i] = m
			res.Scans = append(res.Scans, m)
			fmt.Printf("%-22s %12d ns/op %14.0f rows/s\n", m.Name, m.NsPerOp, m.RowsPerS)
		}
		if pair[0].NsPerOp > 0 {
			res.ObsOverheadX = float64(pair[1].NsPerOp) / float64(pair[0].NsPerOp)
		}
		fmt.Printf("observability overhead: %.3fx\n", res.ObsOverheadX)

		// Durable data-collector overhead: two durable clusters running the
		// same obs-enabled scan, identical except that one spools history to
		// DataDir/dc and the other opts out via DisableDataCollector. Each
		// configuration keeps its minimum single-query time across alternating
		// repeats — noise (scheduler hiccups, container-layout variance
		// between cluster builds) is one-sided slowness, so the per-query
		// minimum is the robust estimate of the true cost on each side.
		const repeats = 3
		dcIters := *iters
		if dcIters < 20 {
			dcIters = 20
		}
		measure := func(disableDC bool, name string) (Measurement, error) {
			dir, err := os.MkdirTemp("", "scanbench-dc-*")
			if err != nil {
				return Measurement{}, err
			}
			defer os.RemoveAll(dir)
			s, err := buildSession(*rows, *nodes, false, true, dir, disableDC)
			if err != nil {
				return Measurement{}, err
			}
			defer s.Close()
			if _, err := s.Execute(selective); err != nil { // warm-up
				return Measurement{}, fmt.Errorf("%s: %w", name, err)
			}
			best := int64(0)
			for i := 0; i < dcIters; i++ {
				t0 := time.Now()
				if _, err := s.Execute(selective); err != nil {
					return Measurement{}, fmt.Errorf("%s: %w", name, err)
				}
				if ns := time.Since(t0).Nanoseconds(); best == 0 || ns < best {
					best = ns
				}
			}
			return Measurement{
				Name:     name,
				Query:    selective,
				Iters:    dcIters,
				NsPerOp:  best,
				RowsPerS: float64(*rows) / (float64(best) / 1e9),
			}, nil
		}
		var off, spool Measurement
		for r := 0; r < repeats; r++ {
			o, err := measure(true, "scan_obs_dc_off")
			if err != nil {
				return err
			}
			sp, err := measure(false, "scan_obs_dc_spool")
			if err != nil {
				return err
			}
			if off.NsPerOp == 0 || o.NsPerOp < off.NsPerOp {
				off = o
			}
			if spool.NsPerOp == 0 || sp.NsPerOp < spool.NsPerOp {
				spool = sp
			}
		}
		res.Scans = append(res.Scans, off, spool)
		fmt.Printf("%-22s %12d ns/op %14.0f rows/s\n", off.Name, off.NsPerOp, off.RowsPerS)
		fmt.Printf("%-22s %12d ns/op %14.0f rows/s\n", spool.Name, spool.NsPerOp, spool.RowsPerS)
		if off.NsPerOp > 0 {
			res.DcOverheadX = float64(spool.NsPerOp) / float64(off.NsPerOp)
		}
		fmt.Printf("dc spooling overhead: %.3fx\n", res.DcOverheadX)
		if *gate && res.DcOverheadX > 1.05 {
			return fmt.Errorf("dc spooling overhead %.3fx exceeds the 1.05x gate", res.DcOverheadX)
		}
	}

	data, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scanbench:", err)
		os.Exit(1)
	}
}
