// Command vsql is an interactive SQL shell for the analytic engine. By
// default it boots an in-process cluster to play with; it can also serve a
// cluster's nodes over TCP or connect to an already-running server.
//
//	vsql                      # 4-node in-process cluster, interactive shell
//	vsql -nodes 8             # bigger cluster
//	vsql -listen 127.0.0.1:5433   # also serve node 0 on TCP
//	vsql -connect 127.0.0.1:5433  # shell against a remote server
//
// Shell meta-commands: \dt (tables), \dv (views), \dn (nodes),
// \trace <file> (export the collected spans as a Chrome trace), \q (quit).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"vsfabric/internal/core"
	"vsfabric/internal/server"
	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

type executor interface {
	Execute(sql string) (*vertica.Result, error)
}

// tcpExec adapts the ctx-first TCP connection to the shell's one-shot
// executor.
type tcpExec struct {
	conn *server.TCPConn
}

func (t tcpExec) Execute(sql string) (*vertica.Result, error) {
	return t.conn.Execute(context.Background(), sql)
}

func main() {
	nodes := flag.Int("nodes", 4, "cluster size for the in-process engine")
	listen := flag.String("listen", "", "also serve node 0 over TCP on this address")
	connect := flag.String("connect", "", "connect to a remote server instead of booting a cluster")
	flag.Parse()

	var exec executor
	var local *vertica.Cluster // non-nil only for the in-process engine
	switch {
	case *connect != "":
		conn, err := server.DialContext(context.Background(), *connect, server.WithPeerName("vsql"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "vsql: %v\n", err)
			os.Exit(1)
		}
		defer conn.Close()
		exec = tcpExec{conn}
		fmt.Printf("connected to %s\n", *connect)
	default:
		cluster, err := vertica.NewCluster(vertica.Config{Nodes: *nodes})
		if err != nil {
			fmt.Fprintf(os.Stderr, "vsql: %v\n", err)
			os.Exit(1)
		}
		local = cluster
		if err := core.InstallPMMLSupport(cluster); err != nil {
			fmt.Fprintf(os.Stderr, "vsql: %v\n", err)
			os.Exit(1)
		}
		if *listen != "" {
			srv := server.New(cluster, 0)
			addr, err := srv.Listen(*listen)
			if err != nil {
				fmt.Fprintf(os.Stderr, "vsql: %v\n", err)
				os.Exit(1)
			}
			defer srv.Close()
			fmt.Printf("node 0 serving on %s\n", addr)
		}
		sess, err := cluster.Connect(0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vsql: %v\n", err)
			os.Exit(1)
		}
		defer sess.Close()
		exec = sess
		fmt.Printf("vsfabric engine: %d-node cluster (in-process). \\q to quit.\n", *nodes)
	}
	repl(exec, local)
}

func repl(exec executor, cluster *vertica.Cluster) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var pending strings.Builder
	fmt.Print("vsql=> ")
	for sc.Scan() {
		line := sc.Text()
		switch strings.TrimSpace(line) {
		case `\q`, "exit", "quit":
			return
		case `\dt`:
			runAndPrint(exec, "SELECT table_name, is_segmented, segment_expression FROM v_catalog.tables")
			fmt.Print("vsql=> ")
			continue
		case `\dv`:
			runAndPrint(exec, "SELECT view_name, view_definition FROM v_catalog.views")
			fmt.Print("vsql=> ")
			continue
		case `\dn`:
			runAndPrint(exec, "SELECT node_id, node_address, node_state FROM v_catalog.nodes")
			fmt.Print("vsql=> ")
			continue
		}
		if arg, ok := strings.CutPrefix(strings.TrimSpace(line), `\trace`); ok {
			exportTrace(cluster, strings.TrimSpace(arg))
			fmt.Print("vsql=> ")
			continue
		}
		pending.WriteString(line)
		if strings.Contains(line, ";") {
			sql := strings.TrimSuffix(strings.TrimSpace(pending.String()), ";")
			pending.Reset()
			if sql != "" {
				runAndPrint(exec, sql)
			}
			fmt.Print("vsql=> ")
		} else {
			pending.WriteByte(' ')
			fmt.Print("vsql-> ")
		}
	}
}

// exportTrace writes the in-process cluster's collected spans as a Chrome
// trace-event file, loadable in chrome://tracing or Perfetto.
func exportTrace(cluster *vertica.Cluster, path string) {
	if cluster == nil {
		fmt.Println(`ERROR: \trace needs the in-process engine (not -connect)`)
		return
	}
	if path == "" {
		fmt.Println(`usage: \trace <file>`)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Printf("ERROR: %v\n", err)
		return
	}
	err = cluster.Obs().WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Printf("ERROR: %v\n", err)
		return
	}
	fmt.Printf("trace written to %s\n", path)
}

func runAndPrint(exec executor, sql string) {
	res, err := exec.Execute(sql)
	if err != nil {
		fmt.Printf("ERROR: %v\n", err)
		return
	}
	switch {
	case len(res.Schema.Cols) > 0:
		printTable(res)
	case res.Copy != nil:
		fmt.Printf("COPY %d (rejected %d)\n", res.Copy.Loaded, res.Copy.Rejected)
	default:
		fmt.Printf("OK (%d rows affected)\n", res.RowsAffected)
	}
}

func printTable(res *vertica.Result) {
	widths := make([]int, len(res.Schema.Cols))
	header := make([]string, len(res.Schema.Cols))
	for i, c := range res.Schema.Cols {
		header[i] = c.Name
		widths[i] = len(c.Name)
	}
	cells := make([][]string, len(res.Rows))
	for ri, r := range res.Rows {
		cells[ri] = make([]string, len(r))
		for ci, v := range r {
			cells[ri][ci] = formatValue(v)
			if len(cells[ri][ci]) > widths[ci] {
				widths[ci] = len(cells[ri][ci])
			}
		}
	}
	line := func(row []string) {
		for i, c := range row {
			if i > 0 {
				fmt.Print(" | ")
			}
			fmt.Printf("%-*s", widths[i], c)
		}
		fmt.Println()
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range cells {
		line(r)
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

func formatValue(v types.Value) string {
	if v.Null {
		return "NULL"
	}
	return v.String()
}
