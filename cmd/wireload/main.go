// Command wireload is the closed-loop driver for the wire protocol and the
// resource-pool admission path: thousands of simulated client sessions hammer
// a TCP-served node and the latency/throughput numbers land in
// BENCH_wire.json so CI can track the protocol's trajectory.
//
// Usage:
//
//	wireload                               # full run
//	wireload -sessions 64 -requests 40
//	wireload -smoke                        # small scale; gate shape only
//
// Phase A compares JSON v1 framing against binary v2 (and v2 pipelined) on
// an identical query mix, diffing the result sets cell by cell first — a
// protocol that is fast but wrong fails before any timing runs. The
// comparison runs at moderate concurrency on purpose: past the point where
// the scheduler saturates, per-request cost is dominated by context
// switching that both protocols pay identically and the codec delta washes
// out. A separate scale phase then opens -scale-sessions (default 2000)
// concurrent binary connections to prove the server holds thousands of
// live sessions; that phase gates completion, not timing. Phase B runs
// the closed loop with and without a MAXCONCURRENCY resource pool and
// checks admission actually bounds engine-side concurrency, with queue
// waits visible in the pool.queue histogram and
// v_monitor.resource_queue_events. In -smoke mode the correctness and
// admission gates still apply but timing ratios do not: shapes are
// deterministic, timings are not.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vsfabric/internal/server"
	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

// Measurement is one closed-loop run over one protocol configuration.
type Measurement struct {
	Name     string  `json:"name"`
	Sessions int     `json:"sessions"`
	Requests int     `json:"requests"` // total across all sessions
	QPS      float64 `json:"qps"`
	P50us    int64   `json:"p50_us"`
	P95us    int64   `json:"p95_us"`
	P99us    int64   `json:"p99_us"`
}

// AdmissionRun is one phase-B configuration (pool on or off).
type AdmissionRun struct {
	Mode            string  `json:"mode"` // "admission-on" / "admission-off"
	PoolLimit       int     `json:"pool_limit,omitempty"`
	PeakConcurrency int64   `json:"peak_concurrency"`
	QueueEvents     int     `json:"queue_events"`
	QueueP99us      int64   `json:"queue_p99_us"`
	QPS             float64 `json:"qps"`
	P99us           int64   `json:"p99_us"`
}

// Results is the BENCH_wire.json document.
type Results struct {
	Rows          int            `json:"rows"`
	Sessions      int            `json:"sessions"`
	PerSess       int            `json:"requests_per_session"`
	ScaleSessions int            `json:"scale_sessions,omitempty"`
	Queries       []Measurement  `json:"queries"`
	SpeedupX      float64        `json:"speedup_x"` // binary v2 vs JSON v1 qps
	Admission     []AdmissionRun `json:"admission"`
}

var bg = context.Background()

func percentileUs(lat []time.Duration, q float64) int64 {
	if len(lat) == 0 {
		return 0
	}
	i := int(q * float64(len(lat)-1))
	return lat[i].Microseconds()
}

// closedLoop runs sessions concurrent connections, each issuing perSess
// requests back to back (a closed loop: the next request leaves only when
// the previous response arrived), and summarizes latency and throughput.
func closedLoop(name, ep, sql string, sessions, perSess, protocol, pipeline int) (Measurement, error) {
	latCh := make(chan []time.Duration, sessions)
	errCh := make(chan error, sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := server.DialContext(bg, ep,
				server.WithProtocol(protocol),
				server.WithPeerName(fmt.Sprintf("wireload-%d", id)))
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			lat := make([]time.Duration, 0, perSess)
			if pipeline > 1 {
				p := c.Pipeline()
				for done := 0; done < perSess; {
					n := pipeline
					if perSess-done < n {
						n = perSess - done
					}
					t0 := time.Now()
					for j := 0; j < n; j++ {
						if err := p.Queue(bg, sql); err != nil {
							errCh <- err
							return
						}
					}
					results, err := p.Collect(bg)
					if err != nil {
						errCh <- err
						return
					}
					d := time.Since(t0)
					for _, r := range results {
						if r.Err != nil {
							errCh <- r.Err
							return
						}
						// Closed-loop latency of a pipelined request is the
						// batch round trip amortized over its members.
						lat = append(lat, d/time.Duration(n))
					}
					done += n
				}
			} else {
				for j := 0; j < perSess; j++ {
					t0 := time.Now()
					if _, err := c.Execute(bg, sql); err != nil {
						errCh <- err
						return
					}
					lat = append(lat, time.Since(t0))
				}
			}
			latCh <- lat
		}(i)
	}
	wg.Wait()
	close(errCh)
	close(latCh)
	if err := <-errCh; err != nil {
		return Measurement{}, fmt.Errorf("%s: %w", name, err)
	}
	elapsed := time.Since(start)
	var all []time.Duration
	for lat := range latCh {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total := sessions * perSess
	return Measurement{
		Name:     name,
		Sessions: sessions,
		Requests: total,
		QPS:      float64(total) / elapsed.Seconds(),
		P50us:    percentileUs(all, 0.50),
		P95us:    percentileUs(all, 0.95),
		P99us:    percentileUs(all, 0.99),
	}, nil
}

// diffResults compares two result sets cell by cell after sorting rows by
// their first column, so protocol comparisons are order-insensitive.
func diffResults(a, b *vertica.Result) error {
	if a.Schema.NumCols() != b.Schema.NumCols() {
		return fmt.Errorf("schema width %d != %d", a.Schema.NumCols(), b.Schema.NumCols())
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("row count %d != %d", len(a.Rows), len(b.Rows))
	}
	byFirst := func(rows []types.Row) {
		sort.Slice(rows, func(i, j int) bool { return rows[i][0].AsInt() < rows[j][0].AsInt() })
	}
	byFirst(a.Rows)
	byFirst(b.Rows)
	for i := range a.Rows {
		for j := range a.Rows[i] {
			x, y := a.Rows[i][j], b.Rows[i][j]
			if x.Null != y.Null || x.String() != y.String() {
				return fmt.Errorf("cell [%d][%d]: %v != %v", i, j, x, y)
			}
		}
	}
	return nil
}

func setup(rows, sessions int) (*vertica.Cluster, string, error) {
	// Every driver goroutine holds one engine session; leave headroom for
	// the correctness and admin connections on top.
	cl, err := vertica.NewCluster(vertica.Config{Nodes: 1, MaxClientSessions: sessions + 64})
	if err != nil {
		return nil, "", err
	}
	s, err := cl.Connect(0)
	if err != nil {
		return nil, "", err
	}
	defer s.Close()
	if _, err := s.Execute("CREATE TABLE wt (id INTEGER, grp INTEGER, val FLOAT, tag VARCHAR)"); err != nil {
		return nil, "", err
	}
	var csv strings.Builder
	csv.Grow(rows * 24)
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&csv, "%d,%d,%d.25,tag%d\n", i, i%50, i%997, i%7)
	}
	if _, err := s.CopyFrom("COPY wt FROM STDIN", strings.NewReader(csv.String())); err != nil {
		return nil, "", err
	}
	// Move the load into ROS so the benchmark queries hit the vectorized
	// columnar path with zone-map pruning. Left in the WOS, every request
	// pays a row-at-a-time scan that dwarfs and so hides the protocol cost
	// under measurement — the thing this driver exists to compare.
	if err := cl.Moveout(); err != nil {
		return nil, "", err
	}
	srv := server.New(cl, 0)
	ep, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	return cl, ep, nil
}

// admissionLoop is phase B's closed loop: every session pins itself to the
// given pool (empty = general) and runs SELECTs through a concurrency-
// tracking UDx, so the observed engine-side peak is exact, not sampled.
func admissionLoop(ep, poolName string, sessions, perSess int, cur, peak *atomic.Int64) (float64, int64, error) {
	latCh := make(chan []time.Duration, sessions)
	errCh := make(chan error, sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := server.DialContext(bg, ep, server.WithPeerName(fmt.Sprintf("admload-%d", id)))
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			if poolName != "" {
				if _, err := c.Execute(bg, "SET RESOURCE_POOL = "+poolName); err != nil {
					errCh <- err
					return
				}
			}
			lat := make([]time.Duration, 0, perSess)
			for j := 0; j < perSess; j++ {
				t0 := time.Now()
				if _, err := c.Execute(bg, "SELECT HOLDID(id) FROM wt WHERE id < 4"); err != nil {
					errCh <- err
					return
				}
				lat = append(lat, time.Since(t0))
			}
			latCh <- lat
		}(i)
	}
	wg.Wait()
	close(errCh)
	close(latCh)
	if err := <-errCh; err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	var all []time.Duration
	for lat := range latCh {
		all = append(all, lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total := sessions * perSess
	return float64(total) / elapsed.Seconds(), percentileUs(all, 0.99), nil
}

func run() error {
	sessions := flag.Int("sessions", 128, "concurrent client sessions for the protocol comparison")
	perSess := flag.Int("requests", 100, "requests per session")
	rows := flag.Int("rows", 20000, "rows in the benchmark table")
	pipeline := flag.Int("pipeline", 16, "pipeline depth for the pipelined run")
	scaleSessions := flag.Int("scale-sessions", 2000, "concurrent sessions for the connection-scale phase (0 skips it)")
	scaleRequests := flag.Int("scale-requests", 3, "requests per session in the connection-scale phase")
	out := flag.String("out", "BENCH_wire.json", "output JSON path")
	smoke := flag.Bool("smoke", false, "small scale; gate correctness and admission shape, not timing")
	flag.Parse()

	if *smoke {
		*sessions, *perSess, *rows, *scaleSessions = 32, 10, 2000, 0
	}

	maxSess := *sessions
	if *scaleSessions > maxSess {
		maxSess = *scaleSessions
	}
	cl, ep, err := setup(*rows, maxSess)
	if err != nil {
		return err
	}

	const query = "SELECT id, grp, val, tag FROM wt WHERE id < 200"

	// Correctness gate: both protocols must return the identical result set.
	v1c, err := server.DialContext(bg, ep, server.WithProtocol(1))
	if err != nil {
		return err
	}
	v2c, err := server.DialContext(bg, ep, server.WithProtocol(2))
	if err != nil {
		return err
	}
	r1, err := v1c.Execute(bg, query)
	if err != nil {
		return err
	}
	r2, err := v2c.Execute(bg, query)
	if err != nil {
		return err
	}
	if err := diffResults(r1, r2); err != nil {
		return fmt.Errorf("binary and JSON protocols disagree: %w", err)
	}
	v1c.Close()
	v2c.Close()
	fmt.Printf("correctness: v1 and v2 agree on %d rows\n", len(r1.Rows))

	res := Results{Rows: *rows, Sessions: *sessions, PerSess: *perSess}
	runs := []struct {
		name     string
		protocol int
		pipeline int
	}{
		{"json-v1", 1, 1},
		{"binary-v2", 2, 1},
		{"binary-v2-pipelined", 2, *pipeline},
	}
	for _, r := range runs {
		m, err := closedLoop(r.name, ep, query, *sessions, *perSess, r.protocol, r.pipeline)
		if err != nil {
			return err
		}
		res.Queries = append(res.Queries, m)
		fmt.Printf("%-22s %9.0f qps   p50 %6dus  p95 %6dus  p99 %6dus\n",
			m.Name, m.QPS, m.P50us, m.P95us, m.P99us)
	}
	res.SpeedupX = res.Queries[1].QPS / res.Queries[0].QPS
	fmt.Printf("binary vs JSON: %.2fx\n", res.SpeedupX)

	// Connection-scale phase: thousands of live binary sessions at once.
	// Every request must complete; the timing is reported but not gated —
	// at this concurrency the scheduler, not the protocol, sets the pace.
	if *scaleSessions > 0 {
		res.ScaleSessions = *scaleSessions
		m, err := closedLoop("binary-v2-scale", ep, query, *scaleSessions, *scaleRequests, 2, 1)
		if err != nil {
			return fmt.Errorf("connection-scale phase: %w", err)
		}
		res.Queries = append(res.Queries, m)
		fmt.Printf("%-22s %9.0f qps   p50 %6dus  p95 %6dus  p99 %6dus  (%d sessions)\n",
			m.Name, m.QPS, m.P50us, m.P95us, m.P99us, *scaleSessions)
	}

	// Phase B: the same closed loop with engine-side admission control.
	var cur, peak atomic.Int64
	cl.RegisterUDx("HOLDID", func(args []types.Value, _ map[string]string) (types.Value, error) {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(500 * time.Microsecond)
		cur.Add(-1)
		return args[0], nil
	})
	admSessions := *sessions
	if admSessions > 64 {
		admSessions = 64 // a held engine slot per session; keep the queue sane
	}
	const poolLimit = 4
	admin, err := cl.Connect(0)
	if err != nil {
		return err
	}
	if _, err := admin.Execute(fmt.Sprintf(
		"CREATE RESOURCE POOL load MAXCONCURRENCY %d MAXQUEUEDEPTH NONE QUEUETIMEOUT '60s'", poolLimit)); err != nil {
		return err
	}

	for _, mode := range []string{"admission-off", "admission-on"} {
		peak.Store(0)
		poolName := ""
		if mode == "admission-on" {
			poolName = "load"
		}
		qps, p99, err := admissionLoop(ep, poolName, admSessions, *perSess, &cur, &peak)
		if err != nil {
			return err
		}
		ar := AdmissionRun{Mode: mode, PeakConcurrency: peak.Load(), QPS: qps, P99us: p99}
		if mode == "admission-on" {
			ar.PoolLimit = poolLimit
			evRes, err := admin.Execute("SELECT * FROM v_monitor.resource_queue_events")
			if err != nil {
				return err
			}
			for _, r := range evRes.Rows {
				if r[1].S == "load" {
					ar.QueueEvents++
				}
			}
			if h, ok := cl.Obs().Histogram("pool.queue"); ok {
				ar.QueueP99us = h.P99.Microseconds()
			}
		}
		res.Admission = append(res.Admission, ar)
		fmt.Printf("%-22s %9.0f qps   p99 %6dus  peak %2d  queue-events %d  queue-p99 %dus\n",
			ar.Mode, ar.QPS, ar.P99us, ar.PeakConcurrency, ar.QueueEvents, ar.QueueP99us)
	}

	// Shape gates (enforced in smoke and full runs alike: these are
	// correctness properties, not timings).
	on := res.Admission[1]
	off := res.Admission[0]
	if on.PeakConcurrency > poolLimit {
		return fmt.Errorf("admission failed to bound concurrency: peak %d > limit %d", on.PeakConcurrency, poolLimit)
	}
	if off.PeakConcurrency <= poolLimit {
		return fmt.Errorf("admission-off control never exceeded the limit (peak %d): the bound was never tested", off.PeakConcurrency)
	}
	if on.QueueEvents == 0 {
		return fmt.Errorf("no resource_queue_events recorded under contention")
	}
	if on.QueueP99us <= 0 {
		return fmt.Errorf("pool.queue histogram empty: queue waits invisible")
	}
	if !*smoke && res.SpeedupX < 1.5 {
		return fmt.Errorf("binary protocol throughput advantage collapsed: %.2fx vs JSON (expect ~2-3x)", res.SpeedupX)
	}

	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(doc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wireload:", err)
		os.Exit(1)
	}
}
