// ETL pipeline: the paper's S2V motivation — "Spark as an ETL engine for
// Vertica". Raw CSV lands on HDFS, Spark parses/cleans/derives, and S2V
// bulk-loads the result into the database exactly once, with rejected-row
// tolerance.
package main

import (
	"fmt"
	"log"
	"strings"

	"vsfabric/internal/client"
	"vsfabric/internal/core"
	"vsfabric/internal/hdfs"
	"vsfabric/internal/sim"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

func main() {
	// MetricsAddr serves node metrics and health over HTTP for the duration
	// of the run: scrape /metrics (Prometheus text) or probe /healthz.
	cluster, err := vertica.NewCluster(vertica.Config{Nodes: 4, MetricsAddr: "127.0.0.1:0"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics endpoint: http://%s/metrics\n", cluster.MetricsAddr())
	sc := spark.NewContext(spark.Conf{NumExecutors: 4, CoresPerExecutor: 4})
	// Report connector spans to the cluster's own collector so the whole job
	// comes back as one distributed trace in v_monitor.
	core.NewDefaultSource(client.InProc(cluster)).WithObserver(cluster.Obs()).Register()

	// 1. Raw event logs land on HDFS as CSV — some records malformed, some
	// with out-of-range values (the reality ETL exists for).
	fs, err := hdfs.New(hdfs.Config{DataNodes: 4, BlockSize: 4096, Replication: 3})
	if err != nil {
		log.Fatal(err)
	}
	var raw strings.Builder
	for i := 0; i < 20000; i++ {
		switch {
		case i%997 == 0:
			raw.WriteString("garbage-line-not-csv\n")
		case i%500 == 0:
			fmt.Fprintf(&raw, "%d,user%d,-999\n", i, i%100) // sentinel to clean
		default:
			fmt.Fprintf(&raw, "%d,user%d,%d\n", i, i%100, (i*37)%1000)
		}
	}
	if err := fs.WriteFile("logs/events.csv", []byte(raw.String()), nil, "", sim.CPUCSVFormat); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw log on HDFS: %d blocks\n", fs.TotalBlocks("logs/"))

	// 2. Spark reads the blocks in parallel (one task per block) and
	// transforms: parse, drop malformed lines, null out sentinels, derive a
	// bucket column.
	blocks, err := fs.Blocks("logs/events.csv")
	if err != nil {
		log.Fatal(err)
	}
	schema := types.NewSchema(
		types.Column{Name: "event_id", T: types.Int64},
		types.Column{Name: "user_name", T: types.Varchar},
		types.Column{Name: "amount", T: types.Float64},
		types.Column{Name: "bucket", T: types.Int64},
	)
	var leftover string // tiny simplification: block-spanning lines are rare at this block size
	_ = leftover
	rdd := spark.NewRDD(sc, len(blocks), func(tc *spark.TaskContext, p int) ([]types.Row, error) {
		data, err := fs.ReadBlock(blocks[p], tc.Rec, tc.ExecNode, sim.CPUCSVParse)
		if err != nil {
			return nil, err
		}
		var out []types.Row
		for _, line := range strings.Split(string(data), "\n") {
			fields := strings.Split(line, ",")
			if len(fields) != 3 {
				continue // malformed; dropped by the transform
			}
			id, err1 := parseInt(fields[0])
			amt, err2 := parseFloat(fields[2])
			if err1 != nil || err2 != nil {
				continue
			}
			amount := types.FloatValue(amt)
			if amt < 0 {
				amount = types.NullValue(types.Float64) // clean the sentinel
			}
			out = append(out, types.Row{
				types.IntValue(id),
				types.StringValue(fields[1]),
				amount,
				types.IntValue(id % 16),
			})
		}
		return out, nil
	})
	df := spark.NewDataFrame(sc, schema, rdd)

	// 3. S2V: exactly-once bulk load with a rejected-row budget.
	err = df.Write().
		Format(core.DefaultSourceName).
		Options(map[string]string{
			"host":                       cluster.Node(0).Addr,
			"table":                      "events",
			"numPartitions":              "16",
			"failedRowsPercentTolerance": "0.01",
		}).
		Mode(spark.SaveOverwrite).
		Save()
	if err != nil {
		log.Fatal(err)
	}

	// 4. The data is now queryable with full SQL in the database.
	sess, err := cluster.Connect(0)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	for _, q := range []string{
		"SELECT COUNT(*) AS loaded FROM events",
		"SELECT COUNT(*) AS cleaned FROM events WHERE amount IS NULL",
		"SELECT bucket, COUNT(*) AS n, AVG(amount) AS avg_amount FROM events GROUP BY bucket LIMIT 4",
	} {
		res, err := sess.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", q)
		for _, r := range res.Rows {
			fmt.Printf("  -> %v\n", r)
		}
	}
	res, err := sess.Execute("SELECT status, failed_rows_percent FROM s2v_job_status")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job record: status=%s rejected=%.4f%%\n", res.Rows[0][0].S, res.Rows[0][1].F*100)

	// 5. The load itself is one distributed trace: job_traces rolls the
	// s2v.job root up with its phase/COPY children, and latency_histograms
	// shows where the time went per operation.
	res, err = sess.Execute("SELECT job_type, duration_us, span_count, node_count, db_rows, success FROM v_monitor.job_traces")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Rows {
		fmt.Printf("trace: type=%s duration_us=%d spans=%d nodes=%d db_rows=%d success=%v\n",
			r[0].S, r[1].I, r[2].I, r[3].I, r[4].I, r[5].B)
	}
	res, err = sess.Execute("SELECT operation, sample_count, p50_us, p99_us FROM v_monitor.latency_histograms")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Rows {
		fmt.Printf("latency: %-14s n=%-4d p50=%.1fµs p99=%.1fµs\n", r[0].S, r[1].I, r[2].F, r[3].F)
	}
}

func parseInt(s string) (int64, error) {
	v, err := types.ParseValue(s, types.Int64)
	if err != nil || v.Null {
		return 0, fmt.Errorf("bad int %q", s)
	}
	return v.I, nil
}

func parseFloat(s string) (float64, error) {
	v, err := types.ParseValue(s, types.Float64)
	if err != nil || v.Null {
		return 0, fmt.Errorf("bad float %q", s)
	}
	return v.F, nil
}
