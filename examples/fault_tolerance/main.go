// Fault tolerance: watch the S2V five-phase protocol (§3.2.1) survive the
// failure scenarios the paper enumerates — tasks dying mid-copy, dying right
// AFTER committing (the subtle §2.2.2 case), speculative duplicate tasks
// running side effects twice, and total Spark failure — all without partial
// or duplicate data in the target table.
//
// The Spark-side failures come from spark.FailureInjector; the Vertica-side
// ones (a node crashing under an in-flight COPY, the driver's connection
// dying at a phase boundary) come from its database twin,
// resilience.ChaosConnector, with the resilient connection layer doing the
// recovering.
package main

import (
	"errors"
	"fmt"
	"log"

	"vsfabric/internal/client"
	"vsfabric/internal/core"
	"vsfabric/internal/resilience"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

func main() {
	schema := types.NewSchema(
		types.Column{Name: "id", T: types.Int64},
		types.Column{Name: "val", T: types.Float64},
	)
	rows := make([]types.Row, 2000)
	wantSum := 0.0
	for i := range rows {
		rows[i] = types.Row{types.IntValue(int64(i)), types.FloatValue(float64(i))}
		wantSum += float64(i)
	}

	scenarios := []struct {
		name  string
		setup func(inj *spark.FailureInjector)
		chaos func(ch *resilience.ChaosConnector, cl *vertica.Cluster)
		fatal bool // the whole job is expected to fail
	}{
		{"clean run (no failures)", func(*spark.FailureInjector) {}, nil, false},
		{"two tasks die mid-COPY and retry", func(inj *spark.FailureInjector) {
			inj.FailTaskAt(-1, 0, "s2v.phase1.before_copy", 2)
		}, nil, false},
		{"a task dies immediately AFTER its commit (the subtle duplication case)", func(inj *spark.FailureInjector) {
			inj.FailTaskAt(2, 0, "s2v.phase1.after_commit", 1)
		}, nil, false},
		{"speculative duplicates of two tasks run their side effects for real", func(inj *spark.FailureInjector) {
			inj.Speculate(0)
			inj.Speculate(5)
		}, nil, false},
		{"the last committer dies after the final commit; its retry must not re-commit", func(inj *spark.FailureInjector) {
			inj.FailTaskAt(-1, -1, "s2v.phase5.after_commit", 1)
		}, nil, false},
		{"a Vertica node crashes under an in-flight COPY; tasks fail over to live nodes", nil,
			func(ch *resilience.ChaosConnector, cl *vertica.Cluster) {
				ch.KillNodeOnStatement(cl.Node(2).Addr, "COPY", cl.Node(2), 1)
			}, false},
		{"the driver's connection drops at the commit phase boundary and reconnects", nil,
			func(ch *resilience.ChaosConnector, cl *vertica.Cluster) {
				ch.DropOnStatement("", "SELECT status, failed_rows_percent", 1)
			}, false},
		{"two COPY streams are severed mid-flight by the network", nil,
			func(ch *resilience.ChaosConnector, cl *vertica.Cluster) {
				ch.SeverCopyAfter("", 512, 2)
			}, false},
		{"total Spark failure mid-job: target untouched, job recorded FAILED", func(inj *spark.FailureInjector) {
			// Kill while task 1's phase-1 transaction is still open, so its
			// done flag never commits and the job provably cannot finish.
			// (A kill landing after every phase-1 commit can race with the
			// last committer and the save may legitimately complete.)
			inj.KillJobAt(1, "s2v.phase1.after_copy")
		}, nil, true},
	}

	for i, sce := range scenarios {
		// KSafety 1 gives every segmented table buddy projections, so data
		// written before a node crash stays readable — the setting the
		// paper's fault-tolerance story presumes (§4.1).
		cluster, err := vertica.NewCluster(vertica.Config{Nodes: 4, KSafety: 1})
		if err != nil {
			log.Fatal(err)
		}
		inj := spark.NewFailureInjector()
		if sce.setup != nil {
			sce.setup(inj)
		}
		chaos := resilience.NewChaos(client.InProc(cluster))
		if sce.chaos != nil {
			sce.chaos(chaos, cluster)
		}
		sc := spark.NewContext(spark.Conf{
			NumExecutors: 4, CoresPerExecutor: 4,
			Speculation: true, Injector: inj,
		})
		core.NewDefaultSource(chaos).Register()
		df := spark.CreateDataFrame(sc, schema, rows, 8)
		jobName := fmt.Sprintf("demo_job_%d", i)
		err = df.Write().Format(core.DefaultSourceName).Options(map[string]string{
			"host": cluster.Node(0).Addr, "table": "target",
			"numPartitions": "8", "jobname": jobName,
			"retry_attempts": "5", "retry_backoff_ms": "2",
		}).Mode(spark.SaveOverwrite).Save()

		fmt.Printf("== %s\n", sce.name)
		if len(inj.Log()) > 0 {
			fmt.Printf("   injected: %v\n", inj.Log())
		}
		if len(chaos.Log()) > 0 {
			fmt.Printf("   chaos: %v\n", chaos.Log())
		}
		sess, cerr := cluster.Connect(0)
		if cerr != nil {
			log.Fatal(cerr)
		}
		switch {
		case sce.fatal:
			if err == nil || !errors.Is(err, spark.ErrJobKilled) {
				log.Fatalf("expected total failure, got %v", err)
			}
			if exists, _ := sess.Execute("SELECT table_name FROM v_catalog.tables WHERE table_name = 'target'"); len(exists.Rows) != 0 {
				log.Fatal("target must not exist after a killed overwrite job")
			}
			status, _ := sess.Execute(fmt.Sprintf("SELECT status FROM s2v_job_status WHERE job_name = '%s'", jobName))
			fmt.Printf("   job failed as expected; permanent status record: %s\n", status.Rows[0][0])
		case err != nil:
			log.Fatalf("save failed: %v", err)
		default:
			count, _ := sess.Execute("SELECT COUNT(*) FROM target")
			sum, _ := sess.Execute("SELECT SUM(val) FROM target")
			ok := count.Rows[0][0].I == 2000 && sum.Rows[0][0].AsFloat() == wantSum
			fmt.Printf("   target: %s rows, sum %s — exactly-once %v\n", count.Rows[0][0], sum.Rows[0][0], ok)
			if !ok {
				log.Fatal("EXACTLY-ONCE VIOLATED")
			}
		}
		sess.Close()
	}
	fmt.Println("all scenarios preserved exactly-once semantics")
}
