// ML pipeline: the full analytics loop of Figure 1 — V2S loads warehouse
// data into Spark, MLlib trains three model classes, each is exported to
// PMML and deployed into the database (MD), and predictions run in-database
// through the PMMLPredict UDx.
package main

import (
	"fmt"
	"log"
	"strings"

	"vsfabric/internal/client"
	"vsfabric/internal/core"
	"vsfabric/internal/mllib"
	"vsfabric/internal/spark"
	"vsfabric/internal/vertica"
	"vsfabric/internal/workload"
)

func main() {
	cluster, err := vertica.NewCluster(vertica.Config{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := core.InstallPMMLSupport(cluster); err != nil {
		log.Fatal(err)
	}
	sc := spark.NewContext(spark.Conf{NumExecutors: 4, CoresPerExecutor: 4})
	core.NewDefaultSource(client.InProc(cluster)).Register()
	host := cluster.Node(0).Addr

	// Warehouse data already lives in the database.
	sess, err := cluster.Connect(0)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.Execute("CREATE TABLE iristable (sepal_length FLOAT, sepal_width FLOAT, petal_length FLOAT, petal_width FLOAT, species INTEGER) SEGMENTED BY HASH(species)"); err != nil {
		log.Fatal(err)
	}
	var vals []string
	for _, r := range workload.IrisRows(4000, 11) {
		vals = append(vals, fmt.Sprintf("(%s, %s, %s, %s, %s)", r[0], r[1], r[2], r[3], r[4]))
		if len(vals) == 500 {
			if _, err := sess.Execute("INSERT INTO iristable VALUES " + strings.Join(vals, ", ")); err != nil {
				log.Fatal(err)
			}
			vals = nil
		}
	}

	// V2S: pull the training set into Spark with projection pushdown.
	df, err := sc.Read().Format(core.DefaultSourceName).Options(map[string]string{
		"host": host, "table": "iristable", "numPartitions": "8",
	}).Load()
	if err != nil {
		log.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("V2S loaded %d training rows\n", len(rows))

	var labeled []mllib.LabeledPoint
	var vectors []mllib.Vector
	var regPoints []mllib.LabeledPoint
	for _, r := range rows {
		x := mllib.Vector{r[0].F, r[1].F, r[2].F, r[3].F}
		labeled = append(labeled, mllib.LabeledPoint{Label: float64(r[4].I), Features: x})
		vectors = append(vectors, x)
		// Regression target: petal_width from the other three features.
		regPoints = append(regPoints, mllib.LabeledPoint{Label: r[3].F, Features: mllib.Vector{r[0].F, r[1].F, r[2].F}})
	}
	features := []string{"sepal_length", "sepal_width", "petal_length", "petal_width"}

	// Train, export, deploy all three model classes the paper names (§3.3:
	// "k-means, SVM, logistic regression, etc").
	logit, err := mllib.TrainLogisticRegression(spark.Parallelize(sc, labeled, 8), 150, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	logitDoc, _ := logit.ToPMML(features, "species")
	if err := core.DeployPMMLModel(cluster, "iris_classifier", logitDoc); err != nil {
		log.Fatal(err)
	}

	km, err := mllib.TrainKMeans(spark.Parallelize(sc, vectors, 8), 2, 8)
	if err != nil {
		log.Fatal(err)
	}
	kmDoc, _ := km.ToPMML(features)
	if err := core.DeployPMMLModel(cluster, "iris_clusters", kmDoc); err != nil {
		log.Fatal(err)
	}

	lin, err := mllib.TrainLinearRegression(spark.Parallelize(sc, regPoints, 8), 4000, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	linDoc, _ := lin.ToPMML([]string{"sepal_length", "sepal_width", "petal_length"}, "petal_width")
	if err := core.DeployPMMLModel(cluster, "petal_width_model", linDoc); err != nil {
		log.Fatal(err)
	}

	models, err := core.ListModels(cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed models:")
	for _, m := range models {
		fmt.Printf("  %-18s %-20s %d features, %d bytes\n", m.Name, m.Type, m.NumFeatures, m.SizeBytes)
	}

	// In-database predictions with all three, via plain SQL.
	queries := []string{
		"SELECT PMMLPredict(sepal_length, sepal_width, petal_length, petal_width USING PARAMETERS model_name='iris_classifier') AS pred, species FROM iristable LIMIT 3",
		"SELECT PMMLPredict(sepal_length, sepal_width, petal_length, petal_width USING PARAMETERS model_name='iris_clusters') AS cluster_id, species FROM iristable LIMIT 3",
		"SELECT PMMLPredict(sepal_length, sepal_width, petal_length USING PARAMETERS model_name='petal_width_model') AS predicted, petal_width FROM iristable LIMIT 3",
	}
	for _, q := range queries {
		res, err := sess.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", q[:80]+"...")
		for _, r := range res.Rows {
			fmt.Printf("  -> %v\n", r)
		}
	}

	// Classifier accuracy over the whole table, in-database.
	res, err := sess.Execute("SELECT PMMLPredict(sepal_length, sepal_width, petal_length, petal_width USING PARAMETERS model_name='iris_classifier') AS pred, species FROM iristable")
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for _, r := range res.Rows {
		if int64(r[0].F) == r[1].I {
			correct++
		}
	}
	fmt.Printf("in-database classifier accuracy: %.3f over %d rows\n", float64(correct)/float64(len(res.Rows)), len(res.Rows))
}
