// Pushdown analytics: §3.1.1 in action. Filters, projections and COUNT run
// inside the database; joins and aggregations — which the Data Source API
// cannot push — are wrapped in a view that V2S loads with synthetic hash
// partitioning, so the heavy computation still happens database-side.
package main

import (
	"fmt"
	"log"
	"strings"

	"vsfabric/internal/client"
	"vsfabric/internal/core"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

func main() {
	cluster, err := vertica.NewCluster(vertica.Config{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	sc := spark.NewContext(spark.Conf{NumExecutors: 2, CoresPerExecutor: 4})
	core.NewDefaultSource(client.InProc(cluster)).Register()
	host := cluster.Node(0).Addr

	sess, err := cluster.Connect(0)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// A small star: orders fact + customers dimension.
	mustExec(sess, "CREATE TABLE customers (cid INTEGER, region VARCHAR) SEGMENTED BY HASH(cid)")
	mustExec(sess, "CREATE TABLE orders (oid INTEGER, cid INTEGER, amount FLOAT) SEGMENTED BY HASH(oid)")
	regions := []string{"east", "west", "north", "south"}
	var vals []string
	for i := 0; i < 200; i++ {
		vals = append(vals, fmt.Sprintf("(%d, '%s')", i, regions[i%4]))
	}
	mustExec(sess, "INSERT INTO customers VALUES "+strings.Join(vals, ", "))
	vals = nil
	for i := 0; i < 5000; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d, %d.25)", i, i%200, i%97))
		if len(vals) == 1000 {
			mustExec(sess, "INSERT INTO orders VALUES "+strings.Join(vals, ", "))
			vals = nil
		}
	}

	opts := func(table string) map[string]string {
		return map[string]string{"host": host, "table": table, "numPartitions": "8"}
	}

	// 1. Filter + projection pushdown: only two columns of the matching
	// rows cross the system boundary.
	df, err := sc.Read().Format(core.DefaultSourceName).Options(opts("orders")).Load()
	if err != nil {
		log.Fatal(err)
	}
	sel, err := df.Select("oid", "amount")
	if err != nil {
		log.Fatal(err)
	}
	big, err := sel.Where(spark.GreaterThan{Col: "amount", Value: types.FloatValue(90)}).Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("filter+projection pushdown: %d rows x %d cols crossed the boundary\n", len(big), 2)

	// 2. COUNT pushdown: zero rows cross.
	n, err := df.Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count pushdown: COUNT(*) = %d computed in-database\n", n)

	// 3. Join + aggregation via a view (§3.1.1: "if the user pre-defines a
	// view ... our connector can load the view", with synthetic hash ranges
	// providing parallelism).
	mustExec(sess, `CREATE VIEW region_totals AS
		SELECT c.region AS region, SUM(o.amount) AS total, COUNT(*) AS orders
		FROM orders o JOIN customers c ON o.cid = c.cid
		GROUP BY region`)
	vdf, err := sc.Read().Format(core.DefaultSourceName).Options(opts("region_totals")).Load()
	if err != nil {
		log.Fatal(err)
	}
	rows, err := vdf.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("join+aggregate pushed into the database via a view:")
	for _, r := range rows {
		fmt.Printf("  region=%-6s total=%-9s orders=%s\n", r[0], r[1], r[2])
	}
}

func mustExec(s *vertica.Session, sql string) {
	if _, err := s.Execute(sql); err != nil {
		log.Fatalf("%s: %v", sql, err)
	}
}
