// Quickstart: the minimal save-and-load round trip through the connector,
// using exactly the External Data Source API of Table 1 in the paper.
package main

import (
	"fmt"
	"log"

	"vsfabric/internal/client"
	"vsfabric/internal/core"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

func main() {
	// Boot a 4-node database cluster and a Spark context, and register the
	// connector as a data source.
	cluster, err := vertica.NewCluster(vertica.Config{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	sc := spark.NewContext(spark.Conf{NumExecutors: 2, CoresPerExecutor: 4})
	core.NewDefaultSource(client.InProc(cluster)).Register()

	// A small DataFrame.
	schema := types.NewSchema(
		types.Column{Name: "id", T: types.Int64},
		types.Column{Name: "score", T: types.Float64},
	)
	rows := make([]types.Row, 1000)
	for i := range rows {
		rows[i] = types.Row{types.IntValue(int64(i)), types.FloatValue(float64(i) * 0.5)}
	}
	df := spark.CreateDataFrame(sc, schema, rows, 4)

	// SAVE (Table 1): df.write.format(...).options(opts).mode(mode).save()
	opts := map[string]string{
		"host":          cluster.Node(0).Addr,
		"table":         "scores",
		"user":          "dbadmin",
		"numPartitions": "8",
	}
	if err := df.Write().
		Format(core.DefaultSourceName).
		Options(opts).
		Mode(spark.SaveOverwrite).
		Save(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("saved 1000 rows to table \"scores\" (exactly once)")

	// LOAD (Table 1): df.read.format(...).options(opts).load()
	back, err := sc.Read().
		Format(core.DefaultSourceName).
		Options(opts).
		Load()
	if err != nil {
		log.Fatal(err)
	}
	n, err := back.Count() // COUNT(*) pushed down into the database
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded back: %d rows (count pushed down)\n", n)

	high := back.Where(spark.GreaterThanOrEqual{Col: "score", Value: types.FloatValue(499)})
	hits, err := high.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rows with score >= 499: %d (filter pushed down)\n", len(hits))
}
