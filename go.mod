module vsfabric

go 1.22
