package avro

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"testing"
	"testing/quick"

	"vsfabric/internal/types"
)

var testSchema = Schema{Name: "row", Fields: []Field{
	{Name: "id", Type: types.Int64},
	{Name: "x", Type: types.Float64},
	{Name: "name", Type: types.Varchar},
	{Name: "ok", Type: types.Bool},
}}

var testRows = []types.Row{
	{types.IntValue(1), types.FloatValue(0.5), types.StringValue("hello"), types.BoolValue(true)},
	{types.IntValue(-1 << 40), types.NullValue(types.Float64), types.StringValue(""), types.BoolValue(false)},
	{types.NullValue(types.Int64), types.FloatValue(math.Pi), types.NullValue(types.Varchar), types.NullValue(types.Bool)},
}

func rowsEqual(a, b types.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Null != b[i].Null {
			return false
		}
		if !a[i].Null && types.Compare(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, -1, 1, 1 << 40, -(1 << 40), math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round-trip %d -> %d", v, got)
		}
	}
}

func TestSchemaJSONRoundTrip(t *testing.T) {
	data, err := json.Marshal(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSchema(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Fields) != 4 || got.Fields[1].Type != types.Float64 {
		t.Errorf("parsed schema = %+v", got)
	}
}

func TestSchemaTypesConversion(t *testing.T) {
	ts := types.NewSchema(types.Column{Name: "a", T: types.Int64}, types.Column{Name: "b", T: types.Varchar})
	s := FromTypes(ts)
	if !s.ToTypes().Equal(ts) {
		t.Error("FromTypes/ToTypes round-trip failed")
	}
}

func TestRowBinaryRoundTrip(t *testing.T) {
	for _, r := range testRows {
		data, err := EncodeRow(nil, r, testSchema)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRow(&byteReader{r: bytes.NewReader(data)}, testSchema)
		if err != nil {
			t.Fatal(err)
		}
		if !rowsEqual(r, got) {
			t.Errorf("round-trip: %v -> %v", r, got)
		}
	}
}

func TestOCFRoundTrip(t *testing.T) {
	for _, codec := range []Codec{CodecNull, CodecDeflate} {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, testSchema, codec, 2) // small blocks to exercise boundaries
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range testRows {
			if err := w.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		schema, rows, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("codec %s: %v", codec, err)
		}
		if !schema.ToTypes().Equal(testSchema.ToTypes()) {
			t.Errorf("codec %s: schema mismatch", codec)
		}
		if len(rows) != len(testRows) {
			t.Fatalf("codec %s: %d rows, want %d", codec, len(rows), len(testRows))
		}
		for i := range rows {
			if !rowsEqual(rows[i], testRows[i]) {
				t.Errorf("codec %s row %d: %v != %v", codec, i, rows[i], testRows[i])
			}
		}
	}
}

func TestOCFEmptyFile(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testSchema, CodecNull, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, rows, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("empty file yielded %d rows", len(rows))
	}
}

func TestOCFDeflateCompresses(t *testing.T) {
	s := Schema{Name: "row", Fields: []Field{{Name: "s", Type: types.Varchar}}}
	row := types.Row{types.StringValue("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")}
	size := func(codec Codec) int {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, s, codec, 0)
		for i := 0; i < 1000; i++ {
			if err := w.Append(row); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	if nd, dd := size(CodecNull), size(CodecDeflate); dd >= nd/2 {
		t.Errorf("deflate (%d) should be much smaller than null (%d) on repetitive data", dd, nd)
	}
}

func TestOCFBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nope"))); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
}

func TestOCFTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, testSchema, CodecNull, 0)
	for _, r := range testRows {
		_ = w.Append(r)
	}
	_ = w.Close()
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-4]))
	if err == nil {
		for {
			if _, err = r.Next(); err != nil {
				break
			}
		}
	}
	if err == nil || err == io.EOF {
		t.Error("truncated file should surface an error")
	}
}

func TestRowBinaryQuick(t *testing.T) {
	s := Schema{Name: "row", Fields: []Field{{Name: "a", Type: types.Int64}, {Name: "b", Type: types.Varchar}}}
	f := func(a int64, b string) bool {
		r := types.Row{types.IntValue(a), types.StringValue(b)}
		data, err := EncodeRow(nil, r, s)
		if err != nil {
			return false
		}
		got, err := DecodeRow(&byteReader{r: bytes.NewReader(data)}, s)
		return err == nil && got[0].I == a && got[1].S == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeRowSchemaMismatch(t *testing.T) {
	if _, err := EncodeRow(nil, types.Row{types.IntValue(1)}, testSchema); err == nil {
		t.Error("short row should fail")
	}
}
