package avro

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"vsfabric/internal/types"
)

// zigzag encodes a signed integer the Avro way.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// writeLong writes an Avro long (zigzag varint).
func writeLong(w *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], zigzag(v))
	w.Write(tmp[:n])
}

// readLong reads an Avro long.
func readLong(r io.ByteReader) (int64, error) {
	u, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	return unzigzag(u), nil
}

// EncodeRow appends the Avro binary encoding of a row (each field a
// ["null", primitive] union) to buf and returns the extended buffer.
func EncodeRow(buf []byte, r types.Row, s Schema) ([]byte, error) {
	if len(r) != len(s.Fields) {
		return nil, fmt.Errorf("avro: row has %d fields, schema has %d", len(r), len(s.Fields))
	}
	var b bytes.Buffer
	for i, f := range s.Fields {
		v := r[i]
		if v.Null {
			writeLong(&b, 0) // union branch 0: null
			continue
		}
		writeLong(&b, 1) // union branch 1: value
		switch f.Type {
		case types.Int64:
			writeLong(&b, v.AsInt())
		case types.Float64:
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.AsFloat()))
			b.Write(tmp[:])
		case types.Varchar:
			writeLong(&b, int64(len(v.S)))
			b.WriteString(v.S)
		case types.Bool:
			if v.AsBool() {
				b.WriteByte(1)
			} else {
				b.WriteByte(0)
			}
		default:
			return nil, fmt.Errorf("avro: unsupported field type %v", f.Type)
		}
	}
	return append(buf, b.Bytes()...), nil
}

// byteReader adapts an io.Reader providing ReadByte and bulk reads.
type byteReader struct {
	r   io.Reader
	one [1]byte
}

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}

func (b *byteReader) ReadFull(p []byte) error {
	_, err := io.ReadFull(b.r, p)
	return err
}

// DecodeRow reads one row in Avro binary encoding.
func DecodeRow(r *byteReader, s Schema) (types.Row, error) {
	row := make(types.Row, len(s.Fields))
	for i, f := range s.Fields {
		branch, err := readLong(r)
		if err != nil {
			return nil, err
		}
		switch branch {
		case 0:
			row[i] = types.NullValue(f.Type)
			continue
		case 1:
		default:
			return nil, fmt.Errorf("avro: field %q: bad union branch %d", f.Name, branch)
		}
		switch f.Type {
		case types.Int64:
			v, err := readLong(r)
			if err != nil {
				return nil, err
			}
			row[i] = types.IntValue(v)
		case types.Float64:
			var tmp [8]byte
			if err := r.ReadFull(tmp[:]); err != nil {
				return nil, err
			}
			row[i] = types.FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(tmp[:])))
		case types.Varchar:
			n, err := readLong(r)
			if err != nil {
				return nil, err
			}
			if n < 0 || n > 1<<30 {
				return nil, fmt.Errorf("avro: field %q: bad string length %d", f.Name, n)
			}
			b := make([]byte, n)
			if err := r.ReadFull(b); err != nil {
				return nil, err
			}
			row[i] = types.StringValue(string(b))
		case types.Bool:
			c, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			row[i] = types.BoolValue(c != 0)
		default:
			return nil, fmt.Errorf("avro: unsupported field type %v", f.Type)
		}
	}
	return row, nil
}
