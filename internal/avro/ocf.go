package avro

import (
	"bytes"
	"compress/flate"
	"crypto/rand"
	"encoding/json"
	"fmt"
	"io"

	"vsfabric/internal/types"
)

// Codec names an OCF block compression codec.
type Codec string

// Supported codecs.
const (
	CodecNull    Codec = "null"
	CodecDeflate Codec = "deflate"
)

var magic = []byte{'O', 'b', 'j', 1}

// Writer produces an Avro Object Container File: header with schema and
// codec metadata, then compressed blocks separated by a sync marker.
type Writer struct {
	w         io.Writer
	schema    Schema
	codec     Codec
	sync      [16]byte
	buf       []byte
	count     int64
	blockRows int
	wroteHdr  bool
	err       error
}

// NewWriter creates an OCF writer. blockRows is the number of rows per block
// (0 uses a default of 4096).
func NewWriter(w io.Writer, schema Schema, codec Codec, blockRows int) (*Writer, error) {
	switch codec {
	case CodecNull, CodecDeflate:
	default:
		return nil, fmt.Errorf("avro: unsupported codec %q", codec)
	}
	if blockRows <= 0 {
		blockRows = 4096
	}
	ww := &Writer{w: w, schema: schema, codec: codec, blockRows: blockRows}
	if _, err := rand.Read(ww.sync[:]); err != nil {
		return nil, err
	}
	return ww, nil
}

func (w *Writer) writeHeader() error {
	if w.wroteHdr {
		return nil
	}
	schemaJSON, err := json.Marshal(w.schema)
	if err != nil {
		return err
	}
	var b bytes.Buffer
	b.Write(magic)
	// Metadata map: one block of 2 entries, then end-of-map.
	writeLong(&b, 2)
	for _, kv := range [][2][]byte{
		{[]byte("avro.schema"), schemaJSON},
		{[]byte("avro.codec"), []byte(w.codec)},
	} {
		writeLong(&b, int64(len(kv[0])))
		b.Write(kv[0])
		writeLong(&b, int64(len(kv[1])))
		b.Write(kv[1])
	}
	writeLong(&b, 0)
	b.Write(w.sync[:])
	if _, err := w.w.Write(b.Bytes()); err != nil {
		return err
	}
	w.wroteHdr = true
	return nil
}

// Append encodes one row into the current block.
func (w *Writer) Append(r types.Row) error {
	if w.err != nil {
		return w.err
	}
	buf, err := EncodeRow(w.buf, r, w.schema)
	if err != nil {
		w.err = err
		return err
	}
	w.buf = buf
	w.count++
	if int(w.count)%w.blockRows == 0 {
		return w.flushBlock()
	}
	return nil
}

func (w *Writer) flushBlock() error {
	if w.count == 0 || len(w.buf) == 0 {
		return nil
	}
	if err := w.writeHeader(); err != nil {
		w.err = err
		return err
	}
	data := w.buf
	if w.codec == CodecDeflate {
		var cb bytes.Buffer
		fw, err := flate.NewWriter(&cb, flate.DefaultCompression)
		if err != nil {
			w.err = err
			return err
		}
		if _, err := fw.Write(data); err != nil {
			w.err = err
			return err
		}
		if err := fw.Close(); err != nil {
			w.err = err
			return err
		}
		data = cb.Bytes()
	}
	var b bytes.Buffer
	writeLong(&b, w.count)
	writeLong(&b, int64(len(data)))
	b.Write(data)
	b.Write(w.sync[:])
	if _, err := w.w.Write(b.Bytes()); err != nil {
		w.err = err
		return err
	}
	w.buf = w.buf[:0]
	w.count = 0
	return nil
}

// Close flushes the final block (and the header, so empty files are valid).
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if err := w.writeHeader(); err != nil {
		return err
	}
	return w.flushBlock()
}

// Reader consumes an Avro Object Container File.
type Reader struct {
	br     *byteReader
	schema Schema
	codec  Codec
	sync   [16]byte

	block     *byteReader
	remaining int64
}

// NewReader parses the OCF header.
func NewReader(r io.Reader) (*Reader, error) {
	br := &byteReader{r: r}
	head := make([]byte, 4)
	if err := br.ReadFull(head); err != nil {
		return nil, fmt.Errorf("avro: short magic: %w", err)
	}
	if !bytes.Equal(head, magic) {
		return nil, fmt.Errorf("avro: bad magic %v", head)
	}
	rd := &Reader{br: br, codec: CodecNull}
	for {
		n, err := readLong(br)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break
		}
		if n < 0 { // negative count: size follows, per spec
			n = -n
			if _, err := readLong(br); err != nil {
				return nil, err
			}
		}
		for i := int64(0); i < n; i++ {
			key, err := readBytesField(br)
			if err != nil {
				return nil, err
			}
			val, err := readBytesField(br)
			if err != nil {
				return nil, err
			}
			switch string(key) {
			case "avro.schema":
				s, err := ParseSchema(val)
				if err != nil {
					return nil, err
				}
				rd.schema = s
			case "avro.codec":
				rd.codec = Codec(val)
			}
		}
	}
	if err := br.ReadFull(rd.sync[:]); err != nil {
		return nil, err
	}
	if len(rd.schema.Fields) == 0 {
		return nil, fmt.Errorf("avro: file has no schema")
	}
	switch rd.codec {
	case CodecNull, CodecDeflate:
	default:
		return nil, fmt.Errorf("avro: unsupported codec %q", rd.codec)
	}
	return rd, nil
}

func readBytesField(br *byteReader) ([]byte, error) {
	n, err := readLong(br)
	if err != nil {
		return nil, err
	}
	if n < 0 || n > 1<<30 {
		return nil, fmt.Errorf("avro: bad bytes length %d", n)
	}
	b := make([]byte, n)
	if err := br.ReadFull(b); err != nil {
		return nil, err
	}
	return b, nil
}

// Schema returns the file's record schema.
func (r *Reader) Schema() Schema { return r.schema }

// Next returns the next row, or io.EOF at end of file.
func (r *Reader) Next() (types.Row, error) {
	for r.remaining == 0 {
		count, err := readLong(r.br)
		if err != nil {
			if err == io.EOF {
				return nil, io.EOF
			}
			return nil, err
		}
		size, err := readLong(r.br)
		if err != nil {
			return nil, err
		}
		if size < 0 || size > 1<<31 {
			return nil, fmt.Errorf("avro: bad block size %d", size)
		}
		data := make([]byte, size)
		if err := r.br.ReadFull(data); err != nil {
			return nil, err
		}
		var sync [16]byte
		if err := r.br.ReadFull(sync[:]); err != nil {
			return nil, err
		}
		if sync != r.sync {
			return nil, fmt.Errorf("avro: sync marker mismatch")
		}
		if r.codec == CodecDeflate {
			fr := flate.NewReader(bytes.NewReader(data))
			dec, err := io.ReadAll(fr)
			if err != nil {
				return nil, fmt.Errorf("avro: deflate: %w", err)
			}
			data = dec
		}
		r.block = &byteReader{r: bytes.NewReader(data)}
		r.remaining = count
	}
	row, err := DecodeRow(r.block, r.schema)
	if err != nil {
		return nil, err
	}
	r.remaining--
	return row, nil
}

// ReadAll decodes every row of an OCF stream.
func ReadAll(rd io.Reader) (Schema, []types.Row, error) {
	r, err := NewReader(rd)
	if err != nil {
		return Schema{}, nil, err
	}
	var rows []types.Row
	for {
		row, err := r.Next()
		if err == io.EOF {
			return r.schema, rows, nil
		}
		if err != nil {
			return Schema{}, nil, err
		}
		rows = append(rows, row)
	}
}
