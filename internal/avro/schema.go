// Package avro implements the subset of Apache Avro the connector uses to
// encode task data for S2V bulk loads (§3.2.2): the binary encoding of
// records of nullable primitives, and Object Container Files with the null
// and deflate codecs. The paper picks Avro because it is binary, needs no
// delimiter, and compresses — all three properties hold here.
package avro

import (
	"encoding/json"
	"fmt"

	"vsfabric/internal/types"
)

// Field is one record field: a nullable primitive.
type Field struct {
	Name string
	Type types.Type
}

// Schema is an Avro record schema of nullable primitive fields.
type Schema struct {
	Name   string
	Fields []Field
}

// FromTypes converts an engine schema into an Avro record schema.
func FromTypes(s types.Schema) Schema {
	out := Schema{Name: "row"}
	for _, c := range s.Cols {
		out.Fields = append(out.Fields, Field{Name: c.Name, Type: c.T})
	}
	return out
}

// ToTypes converts back to an engine schema.
func (s Schema) ToTypes() types.Schema {
	var out types.Schema
	for _, f := range s.Fields {
		out.Cols = append(out.Cols, types.Column{Name: f.Name, T: f.Type})
	}
	return out
}

func avroPrimitive(t types.Type) (string, error) {
	switch t {
	case types.Int64:
		return "long", nil
	case types.Float64:
		return "double", nil
	case types.Varchar:
		return "string", nil
	case types.Bool:
		return "boolean", nil
	default:
		return "", fmt.Errorf("avro: unsupported type %v", t)
	}
}

func primitiveType(s string) (types.Type, error) {
	switch s {
	case "long", "int":
		return types.Int64, nil
	case "double", "float":
		return types.Float64, nil
	case "string", "bytes":
		return types.Varchar, nil
	case "boolean":
		return types.Bool, nil
	default:
		return types.Unknown, fmt.Errorf("avro: unsupported primitive %q", s)
	}
}

// jsonField mirrors the Avro JSON schema representation of one field whose
// type is the union ["null", primitive].
type jsonField struct {
	Name string `json:"name"`
	Type []any  `json:"type"`
}

type jsonRecord struct {
	Type   string      `json:"type"`
	Name   string      `json:"name"`
	Fields []jsonField `json:"fields"`
}

// MarshalJSON renders the schema as Avro JSON.
func (s Schema) MarshalJSON() ([]byte, error) {
	rec := jsonRecord{Type: "record", Name: s.Name}
	if rec.Name == "" {
		rec.Name = "row"
	}
	for _, f := range s.Fields {
		p, err := avroPrimitive(f.Type)
		if err != nil {
			return nil, err
		}
		rec.Fields = append(rec.Fields, jsonField{Name: f.Name, Type: []any{"null", p}})
	}
	return json.Marshal(rec)
}

// ParseSchema parses an Avro JSON record schema (nullable primitives only).
func ParseSchema(data []byte) (Schema, error) {
	var rec jsonRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return Schema{}, fmt.Errorf("avro: bad schema JSON: %w", err)
	}
	if rec.Type != "record" {
		return Schema{}, fmt.Errorf("avro: schema type %q, want record", rec.Type)
	}
	s := Schema{Name: rec.Name}
	for _, f := range rec.Fields {
		prim := ""
		for _, t := range f.Type {
			ts, ok := t.(string)
			if !ok {
				return Schema{}, fmt.Errorf("avro: field %q has a non-primitive union branch", f.Name)
			}
			if ts != "null" {
				prim = ts
			}
		}
		if prim == "" {
			return Schema{}, fmt.Errorf("avro: field %q has no non-null branch", f.Name)
		}
		t, err := primitiveType(prim)
		if err != nil {
			return Schema{}, err
		}
		s.Fields = append(s.Fields, Field{Name: f.Name, Type: t})
	}
	return s, nil
}
