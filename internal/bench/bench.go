// Package bench regenerates every table and figure of the paper's §4. Each
// experiment runs the real system at laptop scale (real rows through the
// real connector, engine, and baselines) while the components record their
// resource usage; the recorded trace — scaled to the paper's data sizes —
// is then replayed through the flow-level simulator over a model of the
// paper's testbed (§4.1: 4:8 Vertica:Spark, 1 GbE, 16-core nodes). Reported
// seconds are simulated; EXPERIMENTS.md compares them against the paper.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"vsfabric/internal/client"
	"vsfabric/internal/core"
	"vsfabric/internal/hdfs"
	"vsfabric/internal/jdbcsource"
	"vsfabric/internal/sim"
	"vsfabric/internal/spark"
	"vsfabric/internal/vertica"
)

// RunConfig controls an experiment run.
type RunConfig struct {
	// RealRows is the number of rows the real (laptop-scale) run moves;
	// everything above it is simulated scaling. 0 uses the per-experiment
	// default.
	RealRows int64
	// Verbose prints progress lines.
	Verbose bool
}

// Report is a regenerated table/figure.
type Report struct {
	ID     string
	Title  string
	Paper  string // what the paper reports, for side-by-side reading
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Paper != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.Paper)
	}
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg RunConfig) (*Report, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// fabric is one experiment's system under test: a database cluster, a Spark
// context with an attached trace, the connector, the JDBC baseline, and
// optionally an HDFS cluster.
type fabric struct {
	cluster *vertica.Cluster
	sc      *spark.Context
	trace   *sim.Trace
	model   *sim.CostModel
	topo    sim.Topology
	hfs     *hdfs.FS
	host    string
}

// newFabric builds a fresh fabric. hNodes=0 skips HDFS.
func newFabric(vNodes, sNodes, hNodes int) (*fabric, error) {
	cl, err := vertica.NewCluster(vertica.Config{Nodes: vNodes})
	if err != nil {
		return nil, err
	}
	f := &fabric{
		cluster: cl,
		model:   sim.DefaultModel(),
		topo:    sim.Topology{VerticaNodes: vNodes, SparkNodes: sNodes, HDFSNodes: hNodes},
		host:    cl.Node(0).Addr,
	}
	if hNodes > 0 {
		f.hfs, err = hdfs.New(hdfs.Config{DataNodes: hNodes, Replication: 3})
		if err != nil {
			return nil, err
		}
	}
	f.resetTrace()
	core.NewDefaultSource(client.InProc(cl)).Register()
	jdbcsource.New(client.InProc(cl)).Register()
	return f, nil
}

// resetTrace swaps in a fresh trace and Spark context, so one fabric can
// seed data untraced and then measure cleanly.
func (f *fabric) resetTrace() {
	f.trace = sim.NewTrace()
	f.sc = spark.NewContext(spark.Conf{
		NumExecutors:     f.topo.SparkNodes,
		CoresPerExecutor: 32, // real-run concurrency; the simulated slot count comes from the cost model
		MaxTaskFailures:  4,
		Trace:            f.trace,
	})
}

// simulate replays the current trace at the given scale and returns total
// simulated seconds (parallel task makespan plus serial driver work) and the
// raw simulation result.
func (f *fabric) simulate(scale float64, cfg sim.Config) (float64, *sim.Result, error) {
	sys := f.model.BuildSystem(f.topo)
	all := f.model.BuildTasks(f.trace, scale)
	tasks := all[:0]
	serial := 0.0
	for _, t := range all {
		if strings.HasPrefix(t.ID, "driver-") {
			continue
		}
		tasks = append(tasks, t)
	}
	for _, rec := range f.trace.Tasks() {
		if strings.HasPrefix(rec.ID, "driver-") {
			// Driver work is control-plane (DDL, status rows, catalog
			// queries): its size does not grow with the dataset, so it is
			// not scaled.
			serial += f.model.SerialSeconds(sys, rec, 1)
		}
	}
	if len(tasks) == 0 {
		return serial, &sim.Result{}, nil
	}
	res, err := sim.Simulate(sys, tasks, cfg)
	if err != nil {
		return 0, nil, err
	}
	return res.Makespan + serial, res, nil
}

// sql runs setup statements against node 0.
func (f *fabric) sql(stmts ...string) error {
	s, err := f.cluster.Connect(0)
	if err != nil {
		return err
	}
	defer s.Close()
	for _, stmt := range stmts {
		if _, err := s.Execute(stmt); err != nil {
			return fmt.Errorf("%s: %w", stmt, err)
		}
	}
	return nil
}

func secs(v float64) string { return fmt.Sprintf("%.0f s", v) }

func logf(cfg RunConfig, format string, args ...any) {
	if cfg.Verbose {
		fmt.Printf("  [bench] "+format+"\n", args...)
	}
}

// connectorOpts builds the standard connector option map.
func (f *fabric) connectorOpts(table string, parts int, extra map[string]string) map[string]string {
	m := map[string]string{
		"host": f.host, "table": table, "user": "dbadmin",
		"numPartitions": fmt.Sprint(parts),
	}
	for k, v := range extra {
		m[k] = v
	}
	return m
}

// bytesReader adapts a byte slice to io.Reader without importing bytes at
// every call site.
func bytesReader(b []byte) *strings.Reader { return strings.NewReader(string(b)) }
