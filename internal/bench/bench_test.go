package bench

import (
	"strconv"
	"strings"
	"testing"

	"vsfabric/internal/sim"
)

// TestRegistryComplete: one experiment per table/figure of §4, plus MD and
// the ablations.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig6", "table2", "fig7", "fig8", "fig9", "table3",
		"fig10", "fig11", "fig12", "table4", "md",
		"ablation_locality", "ablation_encoding",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if got := len(All()); got != len(want) {
		t.Errorf("registry has %d experiments, want %d", got, len(want))
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id should not resolve")
	}
}

// TestFabricMeasurementPipeline smoke-tests the measure path end to end at a
// tiny scale: real run → trace → simulate → sane positive duration.
func TestFabricMeasurementPipeline(t *testing.T) {
	f, err := newFabric(2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2v, err := f.runS2V(d1Builder(2000, 10, 4), "d1", 4, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2v <= 0 || s2v > 1e5 {
		t.Errorf("S2V simulated seconds = %v", s2v)
	}
	v2s, err := f.runV2S("d1", 4, 100, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2s <= 0 || v2s > 1e5 {
		t.Errorf("V2S simulated seconds = %v", v2s)
	}
	// Scaling monotonicity: 10x the data takes longer.
	v2s10, err := f.runV2S("d1", 4, 1000, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v2s10 <= v2s {
		t.Errorf("10x scale should be slower: %v vs %v", v2s10, v2s)
	}
}

// TestFig11Fast runs the cheapest real experiment end to end and checks the
// headline orderings the paper reports.
func TestFig11Fast(t *testing.T) {
	exp, _ := ByID("fig11")
	rep, err := exp.Run(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %v", rep.Rows)
	}
	// At 1M rows JDBC must be catastrophically slower than S2V.
	last := rep.Rows[len(rep.Rows)-1]
	s2v := parseSecs(t, last[1])
	jdbc := parseSecs(t, last[2])
	if jdbc < 50*s2v {
		t.Errorf("1M rows: JDBC %v vs S2V %v — expected >50x gap", jdbc, s2v)
	}
}

func parseSecs(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, " s"), 64)
	if err != nil {
		t.Fatalf("bad seconds %q: %v", s, err)
	}
	return v
}

// TestUtilizationSeriesShape checks Table 2's mechanism: at low parallelism
// the node NIC is far from saturated; at higher parallelism it saturates.
func TestUtilizationSeriesShape(t *testing.T) {
	f, err := newFabric(2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.runS2V(d1Builder(4000, 20, 8), "d1", 8, 2000, nil); err != nil {
		t.Fatal(err)
	}
	low, err := f.runV2SUtilization("d1", 2, 2000, 100)
	if err != nil {
		t.Fatal(err)
	}
	high, err := f.runV2SUtilization("d1", 16, 2000, 100)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(res *sim.Result) float64 {
		util := res.Utilization["out:v0"]
		if len(util) == 0 {
			return 0
		}
		total := 0.0
		n := 0
		for _, u := range util[:min(20, len(util))] {
			total += u.Used
			n++
		}
		return total / float64(n)
	}
	lo, hi := avg(low), avg(high)
	if hi <= lo {
		t.Errorf("higher parallelism should raise NIC usage: %v vs %v", lo, hi)
	}
	if hi < 100e6 {
		t.Errorf("16 connections should saturate the NIC, got %v B/s", hi)
	}
}
