package bench

import (
	"fmt"
	"time"

	"vsfabric/internal/core"
	"vsfabric/internal/hdfssource"
	"vsfabric/internal/mllib"
	"vsfabric/internal/sim"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
	"vsfabric/internal/workload"
)

const (
	d1Cols       = 100
	d1TargetRows = 100e6  // §4.1: D1 is 100M rows
	d2TargetRows = 1.46e9 // §4.1: D2 is 1.46B rows
)

func realRows(cfg RunConfig, def int64) int64 {
	if cfg.RealRows > 0 {
		return cfg.RealRows
	}
	return def
}

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "V2S and S2V execution time vs number of partitions (D1, 100M rows, 4:8 cluster)",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Vertica node CPU%% and network MBps during V2S, 4 vs 32 partitions (first 300 s)",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Data scalability: execution time vs rows, 1M to 1000M (V2S@32, S2V@128)",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Cluster scalability: 2:4 / 4:8 / 8:16 with data doubled per step",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Data dimensionality: 100 cols x 100M rows vs 1 col x 10000M rows (same cells)",
		Run:   runFig9,
	})
	register(Experiment{
		ID:    "table3",
		Title: "Dataset D2 (tweets, 1.46B rows): V2S@32 and S2V@128",
		Run:   runTable3,
	})
}

// runFig6 sweeps partition counts. The S2V save of each sweep point also
// seeds the table its V2S measurement loads back — the paper's own
// methodology (§4.1).
func runFig6(cfg RunConfig) (*Report, error) {
	rows := realRows(cfg, 40_000)
	scale := d1TargetRows / float64(rows)
	rep := &Report{
		ID:     "fig6",
		Title:  "Varying the number of partitions (D1, 100M rows)",
		Paper:  "bowl shape; V2S best 475 s @128 (497 s @32); S2V best 252 s @128",
		Header: []string{"partitions", "V2S (s)", "S2V (s)"},
	}
	for _, p := range []int{4, 8, 16, 32, 64, 128, 256} {
		f, err := newFabric(4, 8, 0)
		if err != nil {
			return nil, err
		}
		s2v, err := f.runS2V(d1Builder(rows, d1Cols, p), "d1", p, scale, nil)
		if err != nil {
			return nil, fmt.Errorf("fig6 S2V p=%d: %w", p, err)
		}
		v2s, err := f.runV2S("d1", p, scale, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("fig6 V2S p=%d: %w", p, err)
		}
		logf(cfg, "fig6 p=%d: V2S %.0fs S2V %.0fs", p, v2s, s2v)
		rep.Rows = append(rep.Rows, []string{fmt.Sprint(p), secs(v2s), secs(s2v)})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("real run: %d rows x %d cols, scaled x%.0f", rows, d1Cols, scale))
	return rep, nil
}

// runTable2 reports per-node resource usage time series for V2S at 4 and 32
// partitions.
func runTable2(cfg RunConfig) (*Report, error) {
	rows := realRows(cfg, 40_000)
	scale := d1TargetRows / float64(rows)
	rep := &Report{
		ID:     "table2",
		Title:  "Vertica node resource usage during V2S (node v0, first 300 s)",
		Paper:  "4 partitions: steady ~5% CPU, ~38 MBps; 32 partitions: ~20% CPU, ~120 MBps (saturated)",
		Header: []string{"t (s)", "4p CPU%", "4p MBps", "32p CPU%", "32p MBps"},
	}
	series := map[int]*sim.Result{}
	for _, p := range []int{4, 32} {
		f, err := newFabric(4, 8, 0)
		if err != nil {
			return nil, err
		}
		if _, err := f.runS2V(d1Builder(rows, d1Cols, 64), "d1", 64, scale, nil); err != nil {
			return nil, err
		}
		res, err := f.runV2SUtilization("d1", p, scale, 310)
		if err != nil {
			return nil, err
		}
		series[p] = res
	}
	sample := func(res *sim.Result, name string, t int) float64 {
		util := res.Utilization[name]
		if t < len(util) {
			return util[t].Used
		}
		return 0
	}
	for t := 15; t <= 300; t += 30 {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprint(t),
			fmt.Sprintf("%.1f", sample(series[4], "cpu:v0", t)/16*100),
			fmt.Sprintf("%.0f", sample(series[4], "out:v0", t)/1e6),
			fmt.Sprintf("%.1f", sample(series[32], "cpu:v0", t)/16*100),
			fmt.Sprintf("%.0f", sample(series[32], "out:v0", t)/1e6),
		})
	}
	return rep, nil
}

// runFig7 scales the data size; one real run per direction, rescaled per
// target size.
func runFig7(cfg RunConfig) (*Report, error) {
	rows := realRows(cfg, 40_000)
	rep := &Report{
		ID:     "fig7",
		Title:  "Varying the data size (D1; V2S@32 partitions, S2V@128)",
		Paper:  "linear in rows (log-log); S2V 19 s @1M; S2V slower than V2S at small sizes, faster at large",
		Header: []string{"rows", "V2S (s)", "S2V (s)"},
	}
	targets := []float64{1e6, 1e7, 1e8, 1e9}
	for _, target := range targets {
		scale := target / float64(rows)
		f, err := newFabric(4, 8, 0)
		if err != nil {
			return nil, err
		}
		s2v, err := f.runS2V(d1Builder(rows, d1Cols, 128), "d1", 128, scale, nil)
		if err != nil {
			return nil, err
		}
		v2s, err := f.runV2S("d1", 32, scale, nil, nil)
		if err != nil {
			return nil, err
		}
		logf(cfg, "fig7 rows=%.0g: V2S %.0fs S2V %.0fs", target, v2s, s2v)
		rep.Rows = append(rep.Rows, []string{fmt.Sprintf("%.0fM", target/1e6), secs(v2s), secs(s2v)})
	}
	return rep, nil
}

// runFig8 scales cluster and data together.
func runFig8(cfg RunConfig) (*Report, error) {
	rows := realRows(cfg, 40_000)
	rep := &Report{
		ID:     "fig8",
		Title:  "Varying the cluster sizes (2x data per doubling; fixed data per node)",
		Paper:  "slight (<10%) degradation per doubling",
		Header: []string{"cluster", "rows", "V2S parts", "S2V parts", "V2S (s)", "S2V (s)"},
	}
	cases := []struct {
		v, s       int
		target     float64
		v2sP, s2vP int
	}{
		{2, 4, 100e6, 16, 64},
		{4, 8, 200e6, 32, 128},
		{8, 16, 400e6, 64, 256},
	}
	for _, c := range cases {
		scale := c.target / float64(rows)
		f, err := newFabric(c.v, c.s, 0)
		if err != nil {
			return nil, err
		}
		s2v, err := f.runS2V(d1Builder(rows, d1Cols, c.s2vP), "d1", c.s2vP, scale, nil)
		if err != nil {
			return nil, err
		}
		v2s, err := f.runV2S("d1", c.v2sP, scale, nil, nil)
		if err != nil {
			return nil, err
		}
		logf(cfg, "fig8 %d:%d: V2S %.0fs S2V %.0fs", c.v, c.s, v2s, s2v)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d:%d", c.v, c.s),
			fmt.Sprintf("%.0fM", c.target/1e6),
			fmt.Sprint(c.v2sP), fmt.Sprint(c.s2vP),
			secs(v2s), secs(s2v),
		})
	}
	return rep, nil
}

// runFig9 compares the two shapes of D1 with equal cell counts.
func runFig9(cfg RunConfig) (*Report, error) {
	rows := realRows(cfg, 40_000)
	rep := &Report{
		ID:     "fig9",
		Title:  "Varying the data dimensionality (10,000M cells both ways)",
		Paper:  "1 col x 10,000M rows substantially slower than 100 cols x 100M rows (per-row overhead)",
		Header: []string{"shape", "V2S (s)", "S2V (s)"},
	}
	shapes := []struct {
		name     string
		cols     int
		realRows int64
		target   float64
	}{
		{"100 cols x 100M rows", 100, rows, 100e6},
		{"1 col x 10000M rows", 1, rows * 25, 10000e6},
	}
	for _, sh := range shapes {
		scale := sh.target / float64(sh.realRows)
		f, err := newFabric(4, 8, 0)
		if err != nil {
			return nil, err
		}
		s2v, err := f.runS2V(d1Builder(sh.realRows, sh.cols, 128), "d1", 128, scale, nil)
		if err != nil {
			return nil, err
		}
		v2s, err := f.runV2S("d1", 32, scale, nil, nil)
		if err != nil {
			return nil, err
		}
		logf(cfg, "fig9 %s: V2S %.0fs S2V %.0fs", sh.name, v2s, s2v)
		rep.Rows = append(rep.Rows, []string{sh.name, secs(v2s), secs(s2v)})
	}
	return rep, nil
}

// runTable3 measures dataset D2.
func runTable3(cfg RunConfig) (*Report, error) {
	rows := realRows(cfg, 400_000)
	scale := d2TargetRows / float64(rows)
	rep := &Report{
		ID:     "table3",
		Title:  "Performance with dataset D2 (tweets, 1.46B rows, 140 GB)",
		Paper:  "V2S 378 s; S2V 386 s (vs D1: 490 s / 252 s)",
		Header: []string{"direction", "time (s)"},
	}
	f, err := newFabric(4, 8, 0)
	if err != nil {
		return nil, err
	}
	build := func(sc *spark.Context) *spark.DataFrame {
		return workload.D2DataFrame(sc, rows, 128, 2)
	}
	s2v, err := f.runS2V(build, "d2", 128, scale, nil)
	if err != nil {
		return nil, err
	}
	v2s, err := f.runV2S("d2", 32, scale, nil, nil)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows,
		[]string{"V2S", secs(v2s)},
		[]string{"S2V", secs(s2v)},
	)
	rep.Notes = append(rep.Notes, fmt.Sprintf("real run: %d rows, scaled x%.0f", rows, scale))
	return rep, nil
}

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Load: V2S vs JDBC Default Source, with/without 5%% selectivity pushdown",
		Run:   runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Save: S2V vs JDBC Default Source at 1 / 1K / 10K / 1M rows",
		Run:   runFig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "V2S and S2V vs native HDFS read/write (separate 4-node HDFS cluster)",
		Run:   runFig12,
	})
	register(Experiment{
		ID:    "table4",
		Title: "Save: S2V vs Vertica's native parallel COPY",
		Run:   runTable4,
	})
	register(Experiment{
		ID:    "md",
		Title: "Model deployment: PMML deploy + in-database scoring throughput (real time)",
		Run:   runMD,
	})
	register(Experiment{
		ID:    "ablation_locality",
		Title: "Ablation: V2S with hash-ring locality disabled (scattered range queries)",
		Run:   runAblationLocality,
	})
	register(Experiment{
		ID:    "ablation_encoding",
		Title: "Ablation: S2V task encoding Avro+deflate vs CSV",
		Run:   runAblationEncoding,
	})
}

// runFig10 compares loads: pushdown keeps both cheap; without pushdown V2S's
// locality wins ~4x.
func runFig10(cfg RunConfig) (*Report, error) {
	rows := realRows(cfg, 40_000)
	scale := d1TargetRows / float64(rows)
	rep := &Report{
		ID:     "fig10",
		Title:  "Load: V2S vs JDBC Default Source (D1 + integer column, 100M rows)",
		Paper:  "with 5%% pushdown: similar; without pushdown: V2S ~4x faster",
		Header: []string{"method", "pushdown", "time (s)"},
	}
	f, err := newFabric(4, 8, 0)
	if err != nil {
		return nil, err
	}
	build := func(sc *spark.Context) *spark.DataFrame {
		return workload.D1WithIntDataFrame(sc, rows, d1Cols, 64, 1)
	}
	if _, err := f.runS2V(build, "d1int", 64, 1, nil); err != nil {
		return nil, err
	}
	// 5% selectivity spread uniformly over the stride partitions (c0 is
	// uniform in [0,1)); filtering on the stride column itself would empty
	// most JDBC partitions.
	sel := []spark.Filter{spark.LessThan{Col: "c0", Value: types.FloatValue(0.05)}}
	cases := []struct {
		name string
		push bool
		run  func() (float64, error)
	}{
		{"V2S", true, func() (float64, error) { return f.runV2S("d1int", 32, scale, sel, nil) }},
		{"V2S", false, func() (float64, error) { return f.runV2S("d1int", 32, scale, nil, nil) }},
		{"JDBC", true, func() (float64, error) {
			return f.runJDBCLoad("d1int", "pcol", 0, 100, 32, scale, sel)
		}},
		{"JDBC", false, func() (float64, error) {
			return f.runJDBCLoad("d1int", "pcol", 0, 100, 32, scale, nil)
		}},
	}
	for _, c := range cases {
		t, err := c.run()
		if err != nil {
			return nil, fmt.Errorf("fig10 %s pushdown=%v: %w", c.name, c.push, err)
		}
		logf(cfg, "fig10 %s push=%v: %.0fs", c.name, c.push, t)
		rep.Rows = append(rep.Rows, []string{c.name, fmt.Sprint(c.push), secs(t)})
	}
	return rep, nil
}

// runFig11 compares small and bulk saves.
func runFig11(cfg RunConfig) (*Report, error) {
	rep := &Report{
		ID:     "fig11",
		Title:  "Save: S2V vs JDBC Default Source",
		Paper:  "1 row: S2V 5 s vs JDBC 3 s (overheads); 1M rows: S2V 19 s, JDBC stopped after 3 h",
		Header: []string{"rows", "S2V (s)", "JDBC (s)"},
	}
	cases := []struct {
		target   int64
		realRows int64
		parts    int
	}{
		{1, 1, 1},
		{1_000, 1_000, 4},
		{10_000, 10_000, 4},
		{1_000_000, 50_000, 16},
	}
	for _, c := range cases {
		scale := float64(c.target) / float64(c.realRows)
		f, err := newFabric(4, 8, 0)
		if err != nil {
			return nil, err
		}
		build := d1Builder(c.realRows, d1Cols, c.parts)
		s2v, err := f.runS2V(build, "tgt", c.parts, scale, nil)
		if err != nil {
			return nil, err
		}
		// Spark 1.5's JDBC writer saves with the frame's own partitioning;
		// the paper's >3 h figure for 1M rows is consistent with an
		// effectively serial INSERT stream.
		jdbc, err := f.runJDBCSave(d1Builder(c.realRows, d1Cols, 1), "tgt_jdbc", scale)
		if err != nil {
			return nil, err
		}
		logf(cfg, "fig11 rows=%d: S2V %.0fs JDBC %.0fs", c.target, s2v, jdbc)
		rep.Rows = append(rep.Rows, []string{fmt.Sprint(c.target), secs(s2v), secs(jdbc)})
	}
	rep.Notes = append(rep.Notes, "the 1M-row JDBC figure is simulated; the paper stopped the real run after 3 hours")
	return rep, nil
}

// runFig12 compares the connector against native HDFS read/write using a
// separate 4-node HDFS cluster, as in §4.7.2.
func runFig12(cfg RunConfig) (*Report, error) {
	rows := realRows(cfg, 40_000)
	scale := d1TargetRows / float64(rows)
	rep := &Report{
		ID:     "fig12",
		Title:  "V2S/S2V vs HDFS read/write (D1, 100M rows; HDFS gets its own 4-node cluster)",
		Paper:  "HDFS read ~30%% faster than V2S (2240 block partitions); HDFS write ~ S2V",
		Header: []string{"method", "time (s)"},
	}
	f, err := newFabric(4, 8, 4)
	if err != nil {
		return nil, err
	}
	// Target: the paper's dataset is 2240 HDFS blocks; size the real files
	// so the real run also has 2240 (scaled-down) blocks.
	estBytes := float64(rows) * float64(d1Cols) * 12 // WireSize estimate per cell
	blockBytes := int(estBytes / 2240)
	if blockBytes < 1024 {
		blockBytes = 1024
	}

	s2v, err := f.runS2V(d1Builder(rows, d1Cols, 128), "d1", 128, scale, nil)
	if err != nil {
		return nil, err
	}
	v2s, err := f.runV2S("d1", 32, scale, nil, nil)
	if err != nil {
		return nil, err
	}

	// HDFS write.
	f.resetTrace()
	df := workload.D1DataFrame(f.sc, rows, d1Cols, 128, 1)
	if err := hdfssource.Write(f.hfs, "bench/d1", df, blockBytes); err != nil {
		return nil, err
	}
	hw, _, err := f.simulate(scale, sim.Config{})
	if err != nil {
		return nil, err
	}
	// HDFS read: one partition per block.
	f.resetTrace()
	rdf, err := hdfssource.Read(f.sc, f.hfs, "bench/d1")
	if err != nil {
		return nil, err
	}
	rrdd, err := rdf.RDD()
	if err != nil {
		return nil, err
	}
	if _, err := rrdd.Count(); err != nil {
		return nil, err
	}
	hr, _, err := f.simulate(scale, sim.Config{})
	if err != nil {
		return nil, err
	}
	blocks := f.hfs.TotalBlocks("bench/d1")
	logf(cfg, "fig12: V2S %.0fs HDFSread %.0fs | S2V %.0fs HDFSwrite %.0fs (%d blocks)", v2s, hr, s2v, hw, blocks)
	rep.Rows = append(rep.Rows,
		[]string{"V2S load", secs(v2s)},
		[]string{"HDFS read", secs(hr)},
		[]string{"S2V save", secs(s2v)},
		[]string{"HDFS write", secs(hw)},
	)
	rep.Notes = append(rep.Notes, fmt.Sprintf("HDFS dataset has %d blocks (paper: 2240), 3x replication", blocks))
	return rep, nil
}

// runTable4 compares S2V against the native parallel COPY baseline across
// file-split counts.
func runTable4(cfg RunConfig) (*Report, error) {
	rows := realRows(cfg, 40_000)
	scale := d1TargetRows / float64(rows)
	rep := &Report{
		ID:     "table4",
		Title:  "Save: S2V vs Vertica native parallel COPY (D1, 100M rows)",
		Paper:  "COPY best 238 s @8 file parts; S2V best 252 s @128 partitions (~6%% slower)",
		Header: []string{"method", "parallelism", "time (s)"},
	}
	f, err := newFabric(4, 8, 0)
	if err != nil {
		return nil, err
	}
	best, bestParts := 0.0, 0
	for _, parts := range []int{4, 8, 16, 32, 64, 128} {
		t, err := f.runNativeCopy(rows, d1Cols, parts, scale)
		if err != nil {
			return nil, fmt.Errorf("table4 copy parts=%d: %w", parts, err)
		}
		logf(cfg, "table4 COPY parts=%d: %.0fs", parts, t)
		rep.Rows = append(rep.Rows, []string{"COPY", fmt.Sprint(parts), secs(t)})
		if best == 0 || t < best {
			best, bestParts = t, parts
		}
	}
	s2v, err := f.runS2V(d1Builder(rows, d1Cols, 128), "d1", 128, scale, nil)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, []string{"S2V", "128", secs(s2v)})
	rep.Notes = append(rep.Notes, fmt.Sprintf("best COPY: %s @%d parts; S2V/COPY = %.2f", secs(best), bestParts, s2v/best))
	return rep, nil
}

// runMD exercises the full §3.3 pipeline and reports real (not simulated)
// in-database scoring throughput.
func runMD(cfg RunConfig) (*Report, error) {
	rows := int(realRows(cfg, 20_000))
	f, err := newFabric(4, 4, 0)
	if err != nil {
		return nil, err
	}
	if err := core.InstallPMMLSupport(f.cluster); err != nil {
		return nil, err
	}
	// Train in Spark, export PMML, deploy.
	iris := workload.IrisRows(rows, 7)
	var pts []mllib.LabeledPoint
	for _, r := range iris {
		pts = append(pts, mllib.LabeledPoint{
			Label:    float64(r[4].I),
			Features: mllib.Vector{r[0].F, r[1].F, r[2].F, r[3].F},
		})
	}
	model, err := mllib.TrainLogisticRegression(spark.Parallelize(f.sc, pts, 4), 100, 1.0)
	if err != nil {
		return nil, err
	}
	doc, err := model.ToPMML([]string{"sepal_length", "sepal_width", "petal_length", "petal_width"}, "species")
	if err != nil {
		return nil, err
	}
	deployStart := time.Now()
	if err := core.DeployPMMLModel(f.cluster, "iris_logit", doc); err != nil {
		return nil, err
	}
	deploySecs := time.Since(deployStart).Seconds()

	if err := f.sql("DROP TABLE IF EXISTS iristable", "CREATE TABLE iristable "+ddlOf(workload.IrisSchema())); err != nil {
		return nil, err
	}
	s, err := f.cluster.Connect(0)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	// Bulk-load the rows via COPY.
	if _, err := s.CopyFrom("COPY iristable FROM STDIN FORMAT CSV DIRECT",
		bytesReader(workload.CSVBytes(iris))); err != nil {
		return nil, err
	}
	scoreStart := time.Now()
	res, err := s.Execute("SELECT PMMLPredict(sepal_length, sepal_width, petal_length, petal_width USING PARAMETERS model_name='iris_logit') AS pred, species FROM iristable")
	if err != nil {
		return nil, err
	}
	scoreSecs := time.Since(scoreStart).Seconds()
	correct := 0
	for _, r := range res.Rows {
		if int64(r[0].F) == r[1].I {
			correct++
		}
	}
	acc := float64(correct) / float64(len(res.Rows))
	rep := &Report{
		ID:     "md",
		Title:  "Model deployment (MD): Spark-trained logistic regression scored in-database",
		Paper:  "no figure; §3.3 demonstrates PMMLPredict over IrisTable",
		Header: []string{"metric", "value"},
	}
	rep.Rows = append(rep.Rows,
		[]string{"rows scored", fmt.Sprint(len(res.Rows))},
		[]string{"deploy time", fmt.Sprintf("%.3f s", deploySecs)},
		[]string{"scoring time (real)", fmt.Sprintf("%.3f s", scoreSecs)},
		[]string{"scoring throughput", fmt.Sprintf("%.0f rows/s", float64(len(res.Rows))/scoreSecs)},
		[]string{"in-database accuracy", fmt.Sprintf("%.3f", acc)},
	)
	return rep, nil
}

// runAblationLocality quantifies §3.1.2's locality optimization, on the
// paper's dual-network testbed and on shared-NIC hardware. On dual NICs the
// wall-clock cost of scattered ranges is small — the win is the eliminated
// intra-cluster traffic and Vertica resource usage ("it also does not induce
// intra-node traffic ... leading to less Vertica resource usage overall");
// on a single shared NIC the gather traffic competes with the result stream
// and locality wins outright.
func runAblationLocality(cfg RunConfig) (*Report, error) {
	rows := realRows(cfg, 40_000)
	scale := d1TargetRows / float64(rows)
	f, err := newFabric(4, 8, 0)
	if err != nil {
		return nil, err
	}
	if _, err := f.runS2V(d1Builder(rows, d1Cols, 64), "d1", 64, scale, nil); err != nil {
		return nil, err
	}
	shuffleGB := func() float64 {
		total := 0.0
		for _, rec := range f.trace.Tasks() {
			for _, e := range rec.Events() {
				for _, b := range e.Shuffle {
					total += b
				}
			}
		}
		return total * scale / 1e9
	}
	rep := &Report{
		ID:     "ablation_locality",
		Title:  "V2S hash-ring locality on vs off (D1, 100M rows, 32 partitions)",
		Paper:  "locality eliminates intra-Vertica traffic and is part of the ~4x Figure 10 win",
		Header: []string{"variant", "network", "time (s)", "intra-Vertica traffic"},
	}
	for _, nets := range []struct {
		name   string
		single bool
	}{{"dual NIC (paper)", false}, {"single shared NIC", true}} {
		f.model.SingleNetwork = nets.single
		on, err := f.runV2S("d1", 32, scale, nil, nil)
		if err != nil {
			return nil, err
		}
		onShuffle := shuffleGB()
		off, err := f.runV2S("d1", 32, scale, nil, map[string]string{"disable_locality_optimization": "true"})
		if err != nil {
			return nil, err
		}
		offShuffle := shuffleGB()
		rep.Rows = append(rep.Rows,
			[]string{"locality ON", nets.name, secs(on), fmt.Sprintf("%.0f GB", onShuffle)},
			[]string{"locality OFF", nets.name, secs(off), fmt.Sprintf("%.0f GB", offShuffle)},
		)
		rep.Notes = append(rep.Notes, fmt.Sprintf("%s: slowdown without locality %.2fx", nets.name, off/on))
	}
	f.model.SingleNetwork = false
	return rep, nil
}

// runAblationEncoding quantifies the Avro choice of §3.2.2.
func runAblationEncoding(cfg RunConfig) (*Report, error) {
	rows := realRows(cfg, 40_000)
	scale := d1TargetRows / float64(rows)
	f, err := newFabric(4, 8, 0)
	if err != nil {
		return nil, err
	}
	avroT, err := f.runS2V(d1Builder(rows, d1Cols, 128), "d1", 128, scale, nil)
	if err != nil {
		return nil, err
	}
	csvT, err := f.runS2V(d1Builder(rows, d1Cols, 128), "d1csv", 128, scale, map[string]string{"copy_format": "csv"})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "ablation_encoding",
		Title:  "S2V task encoding: Avro+deflate vs CSV (D1, 100M rows, 128 partitions)",
		Paper:  "§3.2.2 picks Avro: binary, no delimiter problem, compresses",
		Header: []string{"encoding", "time (s)"},
	}
	rep.Rows = append(rep.Rows,
		[]string{"Avro + deflate", secs(avroT)},
		[]string{"CSV", secs(csvT)},
	)
	rep.Notes = append(rep.Notes, fmt.Sprintf("CSV/Avro time ratio: %.2f", csvT/avroT))
	return rep, nil
}
