package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"vsfabric/internal/core"
	"vsfabric/internal/jdbcsource"
	"vsfabric/internal/obs"
	"vsfabric/internal/sim"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
	"vsfabric/internal/workload"
)

// dfBuilder constructs the DataFrame to save, against the fabric's current
// Spark context (rebuilt per measurement).
type dfBuilder func(sc *spark.Context) *spark.DataFrame

// d1Builder returns a builder for dataset D1.
func d1Builder(rows int64, cols, parts int) dfBuilder {
	return func(sc *spark.Context) *spark.DataFrame {
		return workload.D1DataFrame(sc, rows, cols, parts, 1)
	}
}

// runS2V saves a DataFrame through the connector and returns simulated
// seconds at the given scale.
func (f *fabric) runS2V(build dfBuilder, table string, parts int, scale float64, extra map[string]string) (float64, error) {
	f.resetTrace()
	df := build(f.sc)
	err := df.Write().
		Format(core.DefaultSourceName).
		Options(f.connectorOpts(table, parts, extra)).
		Mode(spark.SaveOverwrite).
		Save()
	if err != nil {
		return 0, err
	}
	total, _, err := f.simulate(scale, sim.Config{})
	return total, err
}

// runV2S loads a table through the connector (full materialization, no
// count pushdown) and returns simulated seconds.
func (f *fabric) runV2S(table string, parts int, scale float64, filters []spark.Filter, extra map[string]string) (float64, error) {
	f.resetTrace()
	df, err := f.sc.Read().
		Format(core.DefaultSourceName).
		Options(f.connectorOpts(table, parts, extra)).
		Load()
	if err != nil {
		return 0, err
	}
	for _, flt := range filters {
		df = df.Where(flt)
	}
	rdd, err := df.RDD()
	if err != nil {
		return 0, err
	}
	if _, err := rdd.Count(); err != nil {
		return 0, err
	}
	total, _, err := f.simulate(scale, sim.Config{})
	return total, err
}

// runV2SUtilization is runV2S but returns the simulation result with
// utilization sampling enabled (Table 2).
func (f *fabric) runV2SUtilization(table string, parts int, scale float64, horizon float64) (*sim.Result, error) {
	f.resetTrace()
	df, err := f.sc.Read().
		Format(core.DefaultSourceName).
		Options(f.connectorOpts(table, parts, nil)).
		Load()
	if err != nil {
		return nil, err
	}
	rdd, err := df.RDD()
	if err != nil {
		return nil, err
	}
	if _, err := rdd.Count(); err != nil {
		return nil, err
	}
	_, res, err := f.simulate(scale, sim.Config{SampleInterval: 1, Horizon: horizon})
	return res, err
}

// runJDBCLoad loads through the JDBC Default Source baseline.
func (f *fabric) runJDBCLoad(table, partCol string, lower, upper int64, parts int, scale float64, filters []spark.Filter) (float64, error) {
	f.resetTrace()
	opts := map[string]string{
		"url": f.host, "dbtable": table,
		"numPartitions": fmt.Sprint(parts),
	}
	if partCol != "" {
		opts["partitionColumn"] = partCol
		opts["lowerBound"] = fmt.Sprint(lower)
		opts["upperBound"] = fmt.Sprint(upper)
	}
	df, err := f.sc.Read().Format(jdbcsource.SourceName).Options(opts).Load()
	if err != nil {
		return 0, err
	}
	for _, flt := range filters {
		df = df.Where(flt)
	}
	rdd, err := df.RDD()
	if err != nil {
		return 0, err
	}
	if _, err := rdd.Count(); err != nil {
		return 0, err
	}
	total, _, err := f.simulate(scale, sim.Config{})
	return total, err
}

// runJDBCSave saves through the JDBC Default Source baseline (batched
// INSERTs).
func (f *fabric) runJDBCSave(build dfBuilder, table string, scale float64) (float64, error) {
	f.resetTrace()
	df := build(f.sc)
	err := df.Write().
		Format(jdbcsource.SourceName).
		Options(map[string]string{"url": f.host, "dbtable": table}).
		Mode(spark.SaveOverwrite).
		Save()
	if err != nil {
		return 0, err
	}
	total, _, err := f.simulate(scale, sim.Config{})
	return total, err
}

// runNativeCopy is the §4.7.3 baseline: the D1 CSV split into `parts` files
// distributed round-robin over the nodes' local disks, loaded by concurrent
// node-local COPY statements.
func (f *fabric) runNativeCopy(realRows int64, cols, parts int, scale float64) (float64, error) {
	f.resetTrace()
	if err := f.sql(
		"DROP TABLE IF EXISTS d1copy",
		fmt.Sprintf("CREATE TABLE d1copy %s", ddlOf(workload.D1Schema(cols))),
	); err != nil {
		return 0, err
	}
	dir, err := os.MkdirTemp("", "vsfabric-copy")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	paths := make([]string, parts)
	for p := 0; p < parts; p++ {
		lo := realRows * int64(p) / int64(parts)
		hi := realRows * int64(p+1) / int64(parts)
		data := workload.CSVBytes(workload.D1Rows(lo, hi, cols, 1))
		paths[p] = filepath.Join(dir, fmt.Sprintf("part-%03d.csv", p))
		if err := os.WriteFile(paths[p], data, 0o600); err != nil {
			return 0, err
		}
	}
	nNodes := f.cluster.NumNodes()
	var wg sync.WaitGroup
	errs := make([]error, parts)
	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			node := p % nNodes
			s, err := f.cluster.Connect(node)
			if err != nil {
				errs[p] = err
				return
			}
			defer s.Close()
			rec := f.trace.Task(fmt.Sprintf("copy-part-%03d", p), "")
			rec.Fixed(sim.FixedConnect)
			ctx := obs.WithPeer(obs.With(context.Background(), sim.Recorder{Rec: rec}), f.cluster.Node(node).Name)
			_, errs[p] = s.ExecuteContext(ctx, fmt.Sprintf("COPY d1copy FROM LOCAL '%s' FORMAT CSV DIRECT", paths[p]))
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	total, _, err := f.simulate(scale, sim.Config{})
	return total, err
}

func ddlOf(s types.Schema) string {
	out := "("
	for i, c := range s.Cols {
		if i > 0 {
			out += ", "
		}
		out += c.Name + " " + c.T.String()
	}
	return out + ")"
}
