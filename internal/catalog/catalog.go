// Package catalog implements the cluster-wide metadata store: table
// definitions with segmentation layout, views, and the atomic DDL operations
// (create / drop / rename) the S2V commit protocol depends on (§3.2.1 phase
// 5: overwrite mode commits by atomically renaming the staging table to the
// target table).
//
// The segmentation layout — which node owns which contiguous hash range — is
// exactly the information the V2S connector queries from the system catalog
// to formulate node-local partition queries (§3.1.2).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"vsfabric/internal/storage"
	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
)

// TableDef is the user-visible definition of a table.
type TableDef struct {
	Name   string
	Schema types.Schema
	// SegCols are the SEGMENTED BY HASH(...) columns. Empty with
	// Segmented=true means "segment by all columns" (the engine default);
	// Segmented=false means an unsegmented table, replicated on every node.
	SegCols   []string
	Segmented bool
	// KSafety is the number of buddy replicas kept for segmented tables.
	KSafety int
	// Temp marks connector-internal temporary tables (the S2V staging and
	// status tables), excluded from user-facing listings.
	Temp bool
}

// Table is a live table: its definition plus the per-position segment stores.
//
// Layout is expressed against the table's Ring: Ring[p] is the ID of the node
// hosting ring position p, and the table has exactly len(Ring) segments.
// Before elastic membership the ring was implicitly [0..numNodes-1]; now each
// table carries its own ring so an online rebalance can move it to a new
// membership one table at a time while readers of the old layout stay
// correct.
type Table struct {
	Def    TableDef
	SegIdx []int // schema indexes of the segmentation columns

	// Ring[p] is the node ID at ring position p. Segment p's hash range is
	// Segments(len(Ring))[p].
	Ring []int
	// Stores[p] is ring position p's primary store: for segmented tables the
	// segment whose hash range is Segments(n)[p]; for unsegmented tables a
	// full replica.
	Stores []*storage.Store
	// Buddies[r][p] is ring position p's r-th buddy replica, holding the
	// segment of position (p-r-1) mod n, so the cluster tolerates KSafety
	// node losses.
	Buddies [][]*storage.Store

	CreatedEpoch uint64
}

// NumNodes returns the number of ring positions (segments) the table spans.
func (t *Table) NumNodes() int { return len(t.Ring) }

// NodeOf returns the ID of the node hosting ring position p.
func (t *Table) NodeOf(p int) int { return t.Ring[p] }

// PosOf returns the ring position hosted by the given node ID, or -1 if the
// node is not in this table's ring (e.g. freshly added, pre-rebalance).
func (t *Table) PosOf(nodeID int) int {
	for p, id := range t.Ring {
		if id == nodeID {
			return p
		}
	}
	return -1
}

// SegmentRanges returns the hash range owned by each ring position.
// Unsegmented tables report the full ring for every position (any replica can
// serve any range locally) — this is what lets V2S use synthetic hash ranges
// for them.
func (t *Table) SegmentRanges() []vhash.Range {
	n := len(t.Ring)
	if !t.Def.Segmented {
		out := make([]vhash.Range, n)
		for i := range out {
			out[i] = vhash.Range{Lo: 0, Hi: vhash.RingSize}
		}
		return out
	}
	return vhash.Segments(n)
}

// HomeNode returns the ring position owning the given row hash.
func (t *Table) HomeNode(h uint32) int {
	if !t.Def.Segmented {
		return 0
	}
	return vhash.SegmentOf(h, len(t.Ring))
}

// RowHash computes the segmentation hash of a row of this table.
func (t *Table) RowHash(r types.Row) uint32 {
	return vhash.HashRow(r, t.SegIdx)
}

// View is a named stored query. The engine re-plans the definition at query
// time; V2S loads views by wrapping them in synthetic-hash partition
// predicates (§3.1.1: views enable join/aggregation pushdown).
type View struct {
	Name      string
	SelectSQL string
}

// Catalog is the cluster metadata store.
type Catalog struct {
	mu     sync.RWMutex
	ring   []int // active member node IDs in ring order
	tables map[string]*Table
	views  map[string]*View
}

// New creates a catalog for a cluster of numNodes nodes, with the initial
// membership ring [0..numNodes-1].
func New(numNodes int) *Catalog {
	ring := make([]int, numNodes)
	for i := range ring {
		ring[i] = i
	}
	return &Catalog{
		ring:   ring,
		tables: make(map[string]*Table),
		views:  make(map[string]*View),
	}
}

// NumNodes returns the current active member count.
func (c *Catalog) NumNodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.ring)
}

// Ring returns a copy of the current membership ring: the node IDs new tables
// are laid out across, in ring order.
func (c *Catalog) Ring() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]int(nil), c.ring...)
}

// SetMembership replaces the membership ring used for new tables. Existing
// tables keep their own rings until rebalanced (SwapLayout).
func (c *Catalog) SetMembership(ring []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ring = append([]int(nil), ring...)
}

func key(name string) string { return strings.ToLower(name) }

// CreateTable creates a table on the current membership ring, resolving the
// segmentation columns and allocating per-position stores. It fails if a
// table or view with the name exists.
func (c *Catalog) CreateTable(def TableDef, epoch uint64) (*Table, error) {
	return c.CreateTableAt(def, epoch, nil)
}

// CreateTableAt creates a table on an explicit ring (nil = the current
// membership ring). Durable recovery uses the explicit form to rebuild a
// table that crashed mid-rebalance on the exact ring its manifest recorded.
func (c *Catalog) CreateTableAt(def TableDef, epoch uint64, ring []int) (*Table, error) {
	segIdx := make([]int, 0, len(def.SegCols))
	for _, col := range def.SegCols {
		i := def.Schema.ColIndex(col)
		if i < 0 {
			return nil, fmt.Errorf("catalog: segmentation column %q not in schema", col)
		}
		segIdx = append(segIdx, i)
	}
	if ring == nil {
		ring = c.Ring()
	} else {
		ring = append([]int(nil), ring...)
	}
	if def.KSafety < 0 || def.KSafety >= len(ring) {
		return nil, fmt.Errorf("catalog: k-safety %d invalid for %d nodes", def.KSafety, len(ring))
	}
	t := &Table{Def: def, SegIdx: segIdx, Ring: ring, CreatedEpoch: epoch}
	t.Stores = make([]*storage.Store, len(ring))
	for i := range t.Stores {
		t.Stores[i] = storage.NewStore(def.Schema, segIdx)
	}
	if def.Segmented && def.KSafety > 0 {
		t.Buddies = make([][]*storage.Store, def.KSafety)
		for r := range t.Buddies {
			t.Buddies[r] = make([]*storage.Store, len(ring))
			for i := range t.Buddies[r] {
				t.Buddies[r][i] = storage.NewStore(def.Schema, segIdx)
			}
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(def.Name)
	if _, ok := c.tables[k]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", def.Name)
	}
	if _, ok := c.views[k]; ok {
		return nil, fmt.Errorf("catalog: view %q already exists", def.Name)
	}
	c.tables[k] = t
	return t, nil
}

// SwapLayout atomically replaces a table's ring and stores with a rebalanced
// layout, copy-on-write: concurrent readers holding the old *Table keep
// scanning the old (complete, immutable-from-here) stores, while every later
// lookup sees the new layout. The caller serializes against writers by
// holding the table's EXCLUSIVE lock.
func (c *Catalog) SwapLayout(name string, ring []int, stores []*storage.Store, buddies [][]*storage.Store) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[key(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	if len(stores) != len(ring) {
		return nil, fmt.Errorf("catalog: layout has %d stores for %d ring positions", len(stores), len(ring))
	}
	nt := *t
	nt.Ring = append([]int(nil), ring...)
	nt.Stores = stores
	nt.Buddies = buddies
	c.tables[key(name)] = &nt
	return &nt, nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(name)]
	return t, ok
}

// DropTable removes a table. Missing tables are an error unless ifExists.
func (c *Catalog) DropTable(name string, ifExists bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.tables[k]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.tables, k)
	return nil
}

// RenameTable atomically renames a table; the destination must not exist.
// Combined with DropTable under the caller's transaction-level serialization
// this provides S2V's atomic staging→target switch.
func (c *Catalog) RenameTable(oldName, newName string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ok, nk := key(oldName), key(newName)
	t, exists := c.tables[ok]
	if !exists {
		return fmt.Errorf("catalog: table %q does not exist", oldName)
	}
	if _, exists := c.tables[nk]; exists {
		return fmt.Errorf("catalog: table %q already exists", newName)
	}
	if _, exists := c.views[nk]; exists {
		return fmt.Errorf("catalog: view %q already exists", newName)
	}
	delete(c.tables, ok)
	// Copy-on-write: concurrent readers hold *Table pointers (sessions
	// mid-scan); mutating the shared Def would race with them. The stores
	// are shared by reference, so data written through either struct is the
	// same data.
	nt := *t
	nt.Def.Name = newName
	nt.Def.Temp = false
	c.tables[nk] = &nt
	return nil
}

// SwapTables atomically replaces target with source (source is renamed to
// target; any previous target is dropped). This is the one-step overwrite
// commit used by S2V overwrite mode.
func (c *Catalog) SwapTables(source, target string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	sk, tk := key(source), key(target)
	st, ok := c.tables[sk]
	if !ok {
		return fmt.Errorf("catalog: table %q does not exist", source)
	}
	delete(c.tables, sk)
	delete(c.tables, tk)
	nt := *st
	nt.Def.Name = target
	nt.Def.Temp = false
	c.tables[tk] = &nt
	return nil
}

// CreateView registers a view definition.
func (c *Catalog) CreateView(name, selectSQL string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("catalog: table %q already exists", name)
	}
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("catalog: view %q already exists", name)
	}
	c.views[k] = &View{Name: name, SelectSQL: selectSQL}
	return nil
}

// View looks up a view by name.
func (c *Catalog) View(name string) (*View, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.views[key(name)]
	return v, ok
}

// DropView removes a view.
func (c *Catalog) DropView(name string, ifExists bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.views[k]; !ok {
		if ifExists {
			return nil
		}
		return fmt.Errorf("catalog: view %q does not exist", name)
	}
	delete(c.views, k)
	return nil
}

// Tables returns all tables (including temp tables), sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for k := range c.tables {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]*Table, 0, len(names))
	for _, k := range names {
		out = append(out, c.tables[k])
	}
	return out
}

// Views returns all views sorted by name.
func (c *Catalog) Views() []*View {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.views))
	for k := range c.views {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]*View, 0, len(names))
	for _, k := range names {
		out = append(out, c.views[k])
	}
	return out
}
