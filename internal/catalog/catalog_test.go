package catalog

import (
	"testing"

	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
)

func def(name string, segmented bool, segCols ...string) TableDef {
	return TableDef{
		Name: name,
		Schema: types.NewSchema(
			types.Column{Name: "id", T: types.Int64},
			types.Column{Name: "v", T: types.Float64},
		),
		Segmented: segmented,
		SegCols:   segCols,
	}
}

func TestCreateLookupDrop(t *testing.T) {
	c := New(4)
	tbl, err := c.CreateTable(def("t", true, "id"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumNodes() != 4 || len(tbl.SegIdx) != 1 || tbl.SegIdx[0] != 0 {
		t.Errorf("table = %+v", tbl)
	}
	if _, ok := c.Table("T"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, err := c.CreateTable(def("t", true, "id"), 1); err == nil {
		t.Error("duplicate create should fail")
	}
	if err := c.DropTable("t", false); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("t", false); err == nil {
		t.Error("dropping missing table should fail")
	}
	if err := c.DropTable("t", true); err != nil {
		t.Error("IF EXISTS drop should not fail")
	}
}

func TestBadSegmentationColumn(t *testing.T) {
	c := New(2)
	if _, err := c.CreateTable(def("t", true, "nope"), 1); err == nil {
		t.Error("unknown segmentation column should fail")
	}
}

func TestKSafetyValidation(t *testing.T) {
	c := New(2)
	d := def("t", true, "id")
	d.KSafety = 2
	if _, err := c.CreateTable(d, 1); err == nil {
		t.Error("k-safety >= nodes should fail")
	}
	d.KSafety = 1
	tbl, err := c.CreateTable(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Buddies) != 1 || len(tbl.Buddies[0]) != 2 {
		t.Errorf("buddies = %v", tbl.Buddies)
	}
}

func TestSegmentRanges(t *testing.T) {
	c := New(4)
	seg, _ := c.CreateTable(def("s", true, "id"), 1)
	ranges := seg.SegmentRanges()
	if ranges[0].Lo != 0 || ranges[3].Hi != vhash.RingSize {
		t.Errorf("segment ranges = %v", ranges)
	}
	unseg, _ := c.CreateTable(def("u", false), 1)
	for _, r := range unseg.SegmentRanges() {
		if r.Lo != 0 || r.Hi != vhash.RingSize {
			t.Error("unsegmented tables should report the full ring everywhere")
		}
	}
	if unseg.HomeNode(12345) != 0 {
		t.Error("unsegmented home node should be 0")
	}
}

func TestRenameAndSwap(t *testing.T) {
	c := New(2)
	_, _ = c.CreateTable(def("a", true, "id"), 1)
	if err := c.RenameTable("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("a"); ok {
		t.Error("old name should be gone")
	}
	tbl, ok := c.Table("b")
	if !ok || tbl.Def.Name != "b" {
		t.Errorf("renamed table = %v", tbl)
	}
	if err := c.RenameTable("missing", "x"); err == nil {
		t.Error("renaming missing table should fail")
	}
	_, _ = c.CreateTable(def("c", true, "id"), 1)
	if err := c.RenameTable("b", "c"); err == nil {
		t.Error("renaming over existing should fail")
	}
	// SwapTables replaces the target atomically.
	if err := c.SwapTables("b", "c"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("b"); ok {
		t.Error("source should be gone after swap")
	}
	if got, _ := c.Table("c"); got.Stores[0] != tbl.Stores[0] {
		t.Error("swap should install the source's data under the target name")
	}
}

func TestViews(t *testing.T) {
	c := New(2)
	if err := c.CreateView("v", "SELECT 1"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateView("v", "SELECT 2"); err == nil {
		t.Error("duplicate view should fail")
	}
	_, _ = c.CreateTable(def("t", true, "id"), 1)
	if err := c.CreateView("t", "SELECT 1"); err == nil {
		t.Error("view over table name should fail")
	}
	if _, err := c.CreateTable(def("v", true, "id"), 1); err == nil {
		t.Error("table over view name should fail")
	}
	v, ok := c.View("V")
	if !ok || v.SelectSQL != "SELECT 1" {
		t.Errorf("view = %v", v)
	}
	if err := c.DropView("v", false); err != nil {
		t.Fatal(err)
	}
	if err := c.DropView("v", false); err == nil {
		t.Error("dropping missing view should fail")
	}
	if err := c.DropView("v", true); err != nil {
		t.Error("IF EXISTS drop view should not fail")
	}
}

func TestListingsSorted(t *testing.T) {
	c := New(2)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.CreateTable(def(n, true, "id"), 1); err != nil {
			t.Fatal(err)
		}
	}
	tables := c.Tables()
	if len(tables) != 3 || tables[0].Def.Name != "alpha" || tables[2].Def.Name != "zeta" {
		names := make([]string, len(tables))
		for i, tb := range tables {
			names[i] = tb.Def.Name
		}
		t.Errorf("tables = %v", names)
	}
}

func TestRowHashRouting(t *testing.T) {
	c := New(4)
	tbl, _ := c.CreateTable(def("t", true, "id"), 1)
	row := types.Row{types.IntValue(42), types.FloatValue(1)}
	h := tbl.RowHash(row)
	if h != vhash.Hash(types.IntValue(42)) {
		t.Error("RowHash should hash segmentation columns only")
	}
	home := tbl.HomeNode(h)
	if !tbl.SegmentRanges()[home].Contains(h) {
		t.Error("home node must own the row's hash")
	}
}
