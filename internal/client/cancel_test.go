package client

import (
	"context"
	"errors"
	"io"
	"testing"
)

// cancellingReader yields a few CSV rows, then cancels the load's context —
// the shape of a Spark task that dies mid-stream.
type cancellingReader struct {
	chunks []string
	cancel context.CancelFunc
}

func (r *cancellingReader) Read(p []byte) (int, error) {
	if len(r.chunks) == 0 {
		r.cancel()
		// The ctx-aware reader wrapping us surfaces the cancellation on its
		// next Read; block the raw stream behind an endless row just in case.
		return copy(p, "9999,9.5\n"), nil
	}
	c := r.chunks[0]
	r.chunks = r.chunks[1:]
	return copy(p, c), nil
}

// TestCopyCancelAbortsTxn: cancelling the context mid-COPY fails the stream
// and aborts its transaction — autocommit loads write nothing, and an
// explicit transaction rolls back to a clean slate.
func TestCopyCancelAbortsTxn(t *testing.T) {
	c := cluster(t)
	pool := InProc(c)
	conn, err := pool.Connect(bg, c.Node(0).Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Execute(bg, "CREATE TABLE ct (id INTEGER, val FLOAT) SEGMENTED BY HASH(id)"); err != nil {
		t.Fatal(err)
	}

	// Autocommit COPY: the partial stream must leave no rows behind.
	ctx, cancel := context.WithCancel(bg)
	rd := &cancellingReader{chunks: []string{"1,1.5\n", "2,2.5\n"}, cancel: cancel}
	_, err = conn.CopyFrom(ctx, "COPY ct FROM STDIN FORMAT CSV DIRECT", rd)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled COPY err = %v, want context.Canceled", err)
	}
	res, err := conn.Execute(bg, "SELECT COUNT(*) FROM ct")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].I; got != 0 {
		t.Fatalf("cancelled autocommit COPY left %d rows, want 0", got)
	}

	// Explicit transaction: the abort leaves the txn for the caller's
	// ROLLBACK, and nothing the load staged survives it.
	if _, err := conn.Execute(bg, "BEGIN"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel = context.WithCancel(bg)
	rd = &cancellingReader{chunks: []string{"3,3.5\n"}, cancel: cancel}
	if _, err = conn.CopyFrom(ctx, "COPY ct FROM STDIN FORMAT CSV", rd); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled in-txn COPY err = %v, want context.Canceled", err)
	}
	if _, err := conn.Execute(bg, "ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	res, err = conn.Execute(bg, "SELECT COUNT(*) FROM ct")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].I; got != 0 {
		t.Fatalf("rolled-back COPY left %d rows, want 0", got)
	}

	// A CopyStream under an already-cancelled context fails immediately and
	// surfaces the cancellation from Finish.
	done, cancel2 := context.WithCancel(bg)
	cancel2()
	cs := NewCopyStream(done, conn, "COPY ct FROM STDIN FORMAT CSV")
	if _, werr := cs.Write([]byte("4,4.5\n")); werr != nil && !errors.Is(werr, context.Canceled) && !errors.Is(werr, io.ErrClosedPipe) {
		t.Fatalf("write after cancel err = %v", werr)
	}
	if _, ferr := cs.Finish(); !errors.Is(ferr, context.Canceled) {
		t.Fatalf("Finish err = %v, want context.Canceled", ferr)
	}
}
