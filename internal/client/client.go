// Package client defines the database driver contract the connector and the
// baselines program against — the role JDBC plays in the paper. Two
// implementations exist: the in-process connector returned by InProc (used
// by the connector, tests, and benchmarks) and the TCP wire-protocol client
// in package server (used by the vsql shell and the network integration
// tests). Keeping the connector on this interface preserves the paper's
// layering: the connector only ever talks SQL over a connection.
//
// Every operation takes a context.Context: cancellation and deadlines flow
// from the caller down to the engine (aborting in-flight COPY transactions),
// and observability rides the same channel — attach an obs.Observer with
// obs.With and every statement, load stream, and resilience event under that
// context reports to it.
package client

import (
	"context"
	"fmt"
	"io"

	"vsfabric/internal/vertica"
)

// Conn is one database session.
type Conn interface {
	// Execute runs one SQL statement.
	Execute(ctx context.Context, sql string) (*vertica.Result, error)
	// CopyFrom runs COPY ... FROM STDIN feeding the statement from r —
	// the VerticaCopyStream bulk-load API (§3.2.2). Cancelling ctx mid-load
	// fails the stream and aborts the load's transaction.
	CopyFrom(ctx context.Context, sql string, r io.Reader) (*vertica.Result, error)
	// Close releases the session, aborting any open transaction.
	Close()
}

// Connector opens sessions by node address.
type Connector interface {
	Connect(ctx context.Context, addr string) (Conn, error)
}

// inproc connects directly to an in-process cluster.
type inproc struct {
	cluster *vertica.Cluster
}

// InProc returns a Connector wired straight into the given cluster; addr
// must be one of the cluster's node addresses.
func InProc(c *vertica.Cluster) Connector { return &inproc{cluster: c} }

// Connect implements Connector.
func (p *inproc) Connect(ctx context.Context, addr string) (Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := p.cluster.ConnectAddr(addr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	return sessionConn{s}, nil
}

// sessionConn adapts an in-process *vertica.Session to the ctx-first Conn
// contract (the Session keeps its 1-arg convenience methods for direct use).
type sessionConn struct {
	s *vertica.Session
}

func (c sessionConn) Execute(ctx context.Context, sql string) (*vertica.Result, error) {
	return c.s.ExecuteContext(ctx, sql)
}

func (c sessionConn) CopyFrom(ctx context.Context, sql string, r io.Reader) (*vertica.Result, error) {
	return c.s.CopyFromContext(ctx, sql, r)
}

func (c sessionConn) Close() { c.s.Close() }

// CopyStream is a push-style writer over a COPY statement, mirroring the
// VerticaCopyStream Java API: create it, Write encoded bytes any number of
// times, then Finish to complete the load and get the result.
type CopyStream struct {
	pw   *io.PipeWriter
	done chan struct{}
	res  *vertica.Result
	err  error
}

// NewCopyStream starts a COPY ... FROM STDIN on the connection and returns
// the stream to feed it. Cancelling ctx aborts the load.
func NewCopyStream(ctx context.Context, conn Conn, sql string) *CopyStream {
	pr, pw := io.Pipe()
	cs := &CopyStream{pw: pw, done: make(chan struct{})}
	go func() {
		defer close(cs.done)
		cs.res, cs.err = conn.CopyFrom(ctx, sql, pr)
		// Unblock any in-flight Write if the server stopped reading early.
		pr.CloseWithError(cs.err)
	}()
	return cs
}

// Write feeds encoded bytes to the load. When the server stops reading early
// the pipe fails with io.ErrClosedPipe; Write waits for the load goroutine to
// finish and surfaces its root cause (the server's actual rejection error)
// instead, so callers never have to guess why the stream closed under them.
func (cs *CopyStream) Write(p []byte) (int, error) {
	n, err := cs.pw.Write(p)
	if err != nil {
		// The read side only closes after CopyFrom returned (just before done
		// closes), so waiting here is deadlock-free and makes cs.err visible.
		<-cs.done
		if cs.err != nil {
			return n, cs.err
		}
	}
	return n, err
}

// Finish signals end of data and waits for the load to complete.
func (cs *CopyStream) Finish() (*vertica.Result, error) {
	_ = cs.pw.Close()
	<-cs.done
	return cs.res, cs.err
}

// Abort cancels the load and returns the load's root-cause error: the
// server-side failure if the load already failed on its own, otherwise the
// server's reaction to the cancellation.
func (cs *CopyStream) Abort(err error) error {
	_ = cs.pw.CloseWithError(err)
	<-cs.done
	return cs.err
}
