package client

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"vsfabric/internal/vertica"
)

var bg = context.Background()

func cluster(t *testing.T) *vertica.Cluster {
	t.Helper()
	c, err := vertica.NewCluster(vertica.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInProcConnect(t *testing.T) {
	c := cluster(t)
	pool := InProc(c)
	conn, err := pool.Connect(bg, c.Node(1).Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Execute(bg, "CREATE TABLE t (id INTEGER)"); err != nil {
		t.Fatal(err)
	}
	res, err := conn.Execute(bg, "SELECT COUNT(*) FROM t")
	if err != nil || res.Rows[0][0].I != 0 {
		t.Errorf("count = %v, %v", res, err)
	}
	if _, err := pool.Connect(bg, "no-such-host"); err == nil {
		t.Error("bad address should fail")
	}
}

func TestCopyStream(t *testing.T) {
	c := cluster(t)
	conn, err := InProc(c).Connect(bg, c.Node(0).Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Execute(bg, "CREATE TABLE t (id INTEGER, name VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	cs := NewCopyStream(bg, conn, "COPY t FROM STDIN FORMAT CSV DIRECT")
	for i := 0; i < 3; i++ {
		if _, err := cs.Write([]byte("1,a\n2,b\n")); err != nil {
			t.Fatal(err)
		}
	}
	res, err := cs.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Copy.Loaded != 6 {
		t.Errorf("loaded = %d", res.Copy.Loaded)
	}
}

func TestCopyStreamAbort(t *testing.T) {
	c := cluster(t)
	conn, err := InProc(c).Connect(bg, c.Node(0).Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Execute(bg, "CREATE TABLE t (id INTEGER)"); err != nil {
		t.Fatal(err)
	}
	cs := NewCopyStream(bg, conn, "COPY t FROM STDIN FORMAT CSV DIRECT")
	if _, err := cs.Write([]byte("1\n")); err != nil {
		t.Fatal(err)
	}
	cs.Abort(errors.New("client gave up"))
	// The aborted copy must not have loaded anything (the stream error
	// fails the statement).
	res, err := conn.Execute(bg, "SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 0 {
		t.Errorf("aborted copy loaded %v rows", res.Rows[0][0])
	}
}

// TestCopyStreamRootCause: when the server kills the load mid-stream, Write
// and Abort must surface the server's actual rejection, never the bare
// io.ErrClosedPipe the plumbing produces.
func TestCopyStreamRootCause(t *testing.T) {
	c := cluster(t)
	conn, err := InProc(c).Connect(bg, c.Node(0).Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cs := NewCopyStream(bg, conn, "COPY missing FROM STDIN FORMAT CSV")
	var werr error
	// The rejection lands asynchronously; keep feeding until the pipe breaks.
	// The loop is bounded by the pipe closing, not by timing.
	for i := 0; i < 1_000_000 && werr == nil; i++ {
		_, werr = cs.Write([]byte("1\n"))
	}
	if werr == nil {
		t.Fatal("writes into a rejected COPY should eventually fail")
	}
	if errors.Is(werr, io.ErrClosedPipe) {
		t.Fatalf("Write returned the plumbing error, not the root cause: %v", werr)
	}
	if !strings.Contains(werr.Error(), `"missing" does not exist`) {
		t.Fatalf("Write err = %v, want the server's rejection", werr)
	}
	aerr := cs.Abort(errors.New("client gave up"))
	if aerr == nil || !strings.Contains(aerr.Error(), `"missing" does not exist`) {
		t.Fatalf("Abort err = %v, want the server's rejection as root cause", aerr)
	}
}

func TestCopyStreamBadStatement(t *testing.T) {
	c := cluster(t)
	conn, err := InProc(c).Connect(bg, c.Node(0).Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cs := NewCopyStream(bg, conn, "COPY missing FROM STDIN FORMAT CSV")
	// Writes may fail fast once the server side rejects the statement.
	_, _ = cs.Write([]byte(strings.Repeat("1\n", 10)))
	if _, err := cs.Finish(); err == nil {
		t.Error("copy into missing table should fail")
	}
}
