// Package colfile implements the columnar file format of the HDFS baseline
// (§4.7.2 reads/writes Parquet through Spark's native path): row groups of
// column chunks, each chunk serialized with the storage package's encodings
// (plain/RLE/delta/dictionary), framed with a magic header and per-group
// row counts so readers can stream group by group.
package colfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"vsfabric/internal/storage"
	"vsfabric/internal/types"
)

var magic = []byte("VCF1")

// DefaultRowGroup is the default rows-per-group.
const DefaultRowGroup = 8192

// Writer streams rows into a colfile.
type Writer struct {
	w        io.Writer
	schema   types.Schema
	groupSz  int
	buf      []types.Row
	wroteHdr bool
}

// NewWriter creates a writer; groupRows <= 0 uses DefaultRowGroup.
func NewWriter(w io.Writer, schema types.Schema, groupRows int) *Writer {
	if groupRows <= 0 {
		groupRows = DefaultRowGroup
	}
	return &Writer{w: w, schema: schema, groupSz: groupRows}
}

func (w *Writer) header() error {
	if w.wroteHdr {
		return nil
	}
	var b bytes.Buffer
	b.Write(magic)
	writeUvarint(&b, uint64(w.schema.NumCols()))
	for _, c := range w.schema.Cols {
		writeUvarint(&b, uint64(len(c.Name)))
		b.WriteString(c.Name)
		b.WriteByte(byte(c.T))
	}
	if _, err := w.w.Write(b.Bytes()); err != nil {
		return err
	}
	w.wroteHdr = true
	return nil
}

// Append buffers one row, flushing a row group when full.
func (w *Writer) Append(r types.Row) error {
	if len(r) != w.schema.NumCols() {
		return fmt.Errorf("colfile: row has %d cols, schema %d", len(r), w.schema.NumCols())
	}
	w.buf = append(w.buf, r)
	if len(w.buf) >= w.groupSz {
		return w.flushGroup()
	}
	return nil
}

func (w *Writer) flushGroup() error {
	if err := w.header(); err != nil {
		return err
	}
	if len(w.buf) == 0 {
		return nil
	}
	cols, err := storage.ColumnsFromRows(w.buf, w.schema)
	if err != nil {
		return err
	}
	var b bytes.Buffer
	writeUvarint(&b, uint64(len(w.buf)))
	for _, c := range cols {
		chunk, err := storage.EncodeColumn(c, storage.ChooseEncoding(c))
		if err != nil {
			return err
		}
		writeUvarint(&b, uint64(len(chunk)))
		b.Write(chunk)
	}
	if _, err := w.w.Write(b.Bytes()); err != nil {
		return err
	}
	w.buf = w.buf[:0]
	return nil
}

// Close flushes the final group (and header for empty files).
func (w *Writer) Close() error {
	if err := w.header(); err != nil {
		return err
	}
	return w.flushGroup()
}

// WriteAll serializes rows in one call.
func WriteAll(schema types.Schema, rows []types.Row, groupRows int) ([]byte, error) {
	var buf bytes.Buffer
	w := NewWriter(&buf, schema, groupRows)
	for _, r := range rows {
		if err := w.Append(r); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Reader streams rows out of a colfile.
type Reader struct {
	r      *bytes.Reader
	schema types.Schema

	group []types.Row
	pos   int
}

// NewReader parses the header.
func NewReader(data []byte) (*Reader, error) {
	r := bytes.NewReader(data)
	head := make([]byte, 4)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("colfile: short magic: %w", err)
	}
	if !bytes.Equal(head, magic) {
		return nil, fmt.Errorf("colfile: bad magic %q", head)
	}
	ncols, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	rd := &Reader{r: r}
	for i := uint64(0); i < ncols; i++ {
		nameLen, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(r, name); err != nil {
			return nil, err
		}
		tb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		rd.schema.Cols = append(rd.schema.Cols, types.Column{Name: string(name), T: types.Type(tb)})
	}
	return rd, nil
}

// Schema returns the file schema.
func (r *Reader) Schema() types.Schema { return r.schema }

// Next returns the next row or io.EOF.
func (r *Reader) Next() (types.Row, error) {
	for r.pos >= len(r.group) {
		if err := r.loadGroup(); err != nil {
			return nil, err
		}
	}
	row := r.group[r.pos]
	r.pos++
	return row, nil
}

func (r *Reader) loadGroup() error {
	nRows, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("colfile: bad group header: %w", err)
	}
	cols := make([]storage.Column, r.schema.NumCols())
	for i := range cols {
		sz, err := binary.ReadUvarint(r.r)
		if err != nil {
			return err
		}
		chunk := make([]byte, sz)
		if _, err := io.ReadFull(r.r, chunk); err != nil {
			return err
		}
		col, err := storage.DecodeColumn(chunk)
		if err != nil {
			return err
		}
		if col.Len() != int(nRows) {
			return fmt.Errorf("colfile: column %d has %d rows, group declares %d", i, col.Len(), nRows)
		}
		cols[i] = col
	}
	r.group = make([]types.Row, nRows)
	for i := 0; i < int(nRows); i++ {
		row := make(types.Row, len(cols))
		for j, c := range cols {
			row[j] = c.Get(i)
		}
		r.group[i] = row
	}
	r.pos = 0
	return nil
}

// ReadAll decodes every row.
func ReadAll(data []byte) (types.Schema, []types.Row, error) {
	r, err := NewReader(data)
	if err != nil {
		return types.Schema{}, nil, err
	}
	var rows []types.Row
	for {
		row, err := r.Next()
		if err == io.EOF {
			return r.schema, rows, nil
		}
		if err != nil {
			return types.Schema{}, nil, err
		}
		rows = append(rows, row)
	}
}

func writeUvarint(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	b.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}
