package colfile

import (
	"testing"
	"testing/quick"

	"vsfabric/internal/types"
)

var schema = types.NewSchema(
	types.Column{Name: "id", T: types.Int64},
	types.Column{Name: "x", T: types.Float64},
	types.Column{Name: "s", T: types.Varchar},
	types.Column{Name: "b", T: types.Bool},
)

func rowsN(n int) []types.Row {
	out := make([]types.Row, n)
	for i := range out {
		out[i] = types.Row{
			types.IntValue(int64(i)),
			types.FloatValue(float64(i) / 3),
			types.StringValue([]string{"a", "bb", "ccc"}[i%3]),
			types.BoolValue(i%2 == 0),
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	for _, groupRows := range []int{0, 1, 3, 1000} {
		rows := rowsN(10)
		data, err := WriteAll(schema, rows, groupRows)
		if err != nil {
			t.Fatal(err)
		}
		gotSchema, got, err := ReadAll(data)
		if err != nil {
			t.Fatalf("groupRows=%d: %v", groupRows, err)
		}
		if !gotSchema.Equal(schema) {
			t.Errorf("schema mismatch: %v", gotSchema)
		}
		if len(got) != len(rows) {
			t.Fatalf("groupRows=%d: %d rows", groupRows, len(got))
		}
		for i := range rows {
			for j := range rows[i] {
				if !types.Equal(rows[i][j], got[i][j]) {
					t.Errorf("row %d col %d: %v != %v", i, j, got[i][j], rows[i][j])
				}
			}
		}
	}
}

func TestEmptyFile(t *testing.T) {
	data, err := WriteAll(schema, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotSchema, got, err := ReadAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || !gotSchema.Equal(schema) {
		t.Errorf("empty file: %d rows, schema %v", len(got), gotSchema)
	}
}

func TestNullsSurvive(t *testing.T) {
	rows := []types.Row{
		{types.NullValue(types.Int64), types.FloatValue(1), types.NullValue(types.Varchar), types.NullValue(types.Bool)},
	}
	data, err := WriteAll(schema, rows, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0][0].Null || !got[0][2].Null || !got[0][3].Null {
		t.Errorf("nulls lost: %v", got[0])
	}
}

func TestBadInput(t *testing.T) {
	if _, err := NewReader([]byte("nope")); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := NewReader(nil); err == nil {
		t.Error("empty input should fail")
	}
	data, _ := WriteAll(schema, rowsN(5), 0)
	if _, _, err := ReadAll(data[:len(data)-2]); err == nil {
		t.Error("truncated file should fail")
	}
}

func TestWrongWidthRow(t *testing.T) {
	w := NewWriter(nil, schema, 0)
	if err := w.Append(types.Row{types.IntValue(1)}); err == nil {
		t.Error("short row should fail")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	s := types.NewSchema(types.Column{Name: "a", T: types.Int64}, types.Column{Name: "b", T: types.Varchar})
	f := func(ints []int64, strsSeed uint8) bool {
		rows := make([]types.Row, len(ints))
		for i, v := range ints {
			rows[i] = types.Row{types.IntValue(v), types.StringValue(string(rune('a' + (uint8(i)+strsSeed)%26)))}
		}
		data, err := WriteAll(s, rows, 4)
		if err != nil {
			return false
		}
		_, got, err := ReadAll(data)
		if err != nil || len(got) != len(rows) {
			return false
		}
		for i := range rows {
			if got[i][0].I != rows[i][0].I || got[i][1].S != rows[i][1].S {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
