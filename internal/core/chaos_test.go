package core

import (
	"fmt"
	"strings"
	"testing"

	"vsfabric/internal/client"
	"vsfabric/internal/resilience"
	"vsfabric/internal/spark"
	"vsfabric/internal/vertica"
)

// chaosHarness is a harness whose connector pool runs through a
// ChaosConnector, for database-side fault injection.
type chaosHarness struct {
	*harness
	chaos *resilience.ChaosConnector
}

func newChaosHarness(t *testing.T, vNodes, sNodes, maxTaskFailures int, cfg vertica.Config) *chaosHarness {
	t.Helper()
	cfg.Nodes = vNodes
	cl, err := vertica.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := spark.NewContext(spark.Conf{
		NumExecutors:     sNodes,
		CoresPerExecutor: 4,
		MaxTaskFailures:  maxTaskFailures,
	})
	chaos := resilience.NewChaos(client.InProc(cl))
	src := NewDefaultSource(chaos)
	src.Register()
	h := &harness{cluster: cl, sc: sc, src: src, host: cl.Node(0).Addr}
	return &chaosHarness{harness: h, chaos: chaos}
}

// fastRetry keeps the resilient layer's real backoffs tiny so chaos tests
// stay fast; synchronization still comes only from job completion.
func fastRetry(opts map[string]string) map[string]string {
	opts["retry_attempts"] = "5"
	opts["retry_backoff_ms"] = "1"
	return opts
}

// TestV2SNodeDownBuddyFailover kills a node mid-scan — after the task's
// session is established — during a V2S read of a KSAFE 1 table. The
// resilient pool must fail the task's query over to the next node, where the
// dead node's buddy projection serves its hash range, and the job must
// return complete, duplicate-free results.
func TestV2SNodeDownBuddyFailover(t *testing.T) {
	h := newChaosHarness(t, 4, 4, 6, vertica.Config{})
	h.sql(t, "CREATE TABLE kt (id INTEGER, val FLOAT) SEGMENTED BY HASH(id) KSAFE 1")
	var vals []string
	wantSum := 0.0
	for i := 0; i < 1000; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d.5)", i, i))
		wantSum += float64(i) + 0.5
	}
	h.sql(t, "INSERT INTO kt VALUES "+strings.Join(vals, ", "))

	victim := h.cluster.Node(2)
	// The first partition scan that reaches node 2 kills it mid-session.
	h.chaos.KillNodeOnStatement(victim.Addr, "AT EPOCH", victim, 1)

	df, err := h.sc.Read().Format(DefaultSourceName).Options(fastRetry(loadOpts(h.harness, "kt", 8))).Load()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatalf("V2S with node down should fail over to the buddy: %v", err)
	}
	if !victim.Down() {
		t.Fatal("chaos rule never fired — the scenario did not run")
	}
	if len(rows) != 1000 {
		t.Fatalf("got %d rows, want 1000", len(rows))
	}
	seen := make(map[int64]bool, len(rows))
	sum := 0.0
	for _, r := range rows {
		if seen[r[0].I] {
			t.Fatalf("duplicate id %d after failover", r[0].I)
		}
		seen[r[0].I] = true
		sum += r[1].F
	}
	if sum != wantSum {
		t.Fatalf("sum = %v, want %v", sum, wantSum)
	}
	kills := 0
	for _, e := range h.chaos.Log() {
		if strings.HasPrefix(e, "kill-node") {
			kills++
		}
	}
	if kills != 1 {
		t.Errorf("chaos log = %v, want exactly one kill-node event", h.chaos.Log())
	}
}

// TestV2SNodeDownNoKSafetyFails is the control: without buddy projections the
// dead node's segment is unrecoverable and the job must fail with a permanent
// (non-retryable) engine error rather than spin.
func TestV2SNodeDownNoKSafetyFails(t *testing.T) {
	h := newChaosHarness(t, 4, 4, 6, vertica.Config{})
	h.seedTable(t, "nk", 200)
	victim := h.cluster.Node(2)
	h.chaos.KillNodeOnStatement(victim.Addr, "AT EPOCH", victim, 1)
	df, err := h.sc.Read().Format(DefaultSourceName).Options(fastRetry(loadOpts(h.harness, "nk", 8))).Load()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.Collect(); err == nil {
		t.Fatal("scan of a KSAFE 0 table with a dead node must fail")
	} else if !strings.Contains(err.Error(), "k-safety exhausted") {
		t.Fatalf("err = %v, want the engine's k-safety exhausted error as root cause", err)
	}
}

// TestS2VSurvivesConnectionChaos is the acceptance scenario: two task
// connections are severed mid-COPY and the driver's connection is dropped at
// a phase boundary; the save must still complete exactly-once.
func TestS2VSurvivesConnectionChaos(t *testing.T) {
	h := newChaosHarness(t, 4, 4, 6, vertica.Config{})
	const n = 2000
	df := testDF(h.harness, n, 8)
	wantSum := 0.0
	for i := 0; i < n; i++ {
		wantSum += float64(i) + 0.25
	}

	// Any two task COPY streams die after 256 bytes...
	h.chaos.SeverCopyAfter("", 256, 2)
	// ...and the driver's session is severed at the job's final phase
	// boundary, right before it reads the committed status back.
	h.chaos.DropOnStatement("", "SELECT status, failed_rows_percent", 1)

	err := df.Write().Format(DefaultSourceName).
		Options(fastRetry(loadOpts(h.harness, "chaos_target", 8))).
		Mode(spark.SaveOverwrite).Save()
	if err != nil {
		t.Fatalf("S2V should survive the chaos script: %v", err)
	}
	if got := len(h.chaos.Log()); got != 3 {
		t.Fatalf("chaos log = %v, want all 3 faults injected", h.chaos.Log())
	}
	if got := h.count(t, "chaos_target"); got != n {
		t.Fatalf("count = %d, want %d (exactly-once violated)", got, n)
	}
	if got := h.sumCol(t, "chaos_target", "val"); got != wantSum {
		t.Fatalf("sum = %v, want %v (exactly-once violated)", got, wantSum)
	}
	// Every session must have been released despite the carnage.
	for i := 0; i < h.cluster.NumNodes(); i++ {
		if open := h.cluster.OpenSessions(i); open != 0 {
			t.Errorf("node %d leaks %d sessions", i, open)
		}
	}
}

// TestS2VDriverConnRefusedAtSetup exercises the resilient driver connection
// from the very first statement: the driver's initial connects are refused
// and must fail over / back off until one lands.
func TestS2VDriverConnRefusedAtSetup(t *testing.T) {
	h := newChaosHarness(t, 4, 4, 6, vertica.Config{})
	df := testDF(h.harness, 500, 4)
	h.chaos.RefuseConnect(h.host, 3)
	err := df.Write().Format(DefaultSourceName).
		Options(fastRetry(loadOpts(h.harness, "refused_target", 4))).
		Mode(spark.SaveOverwrite).Save()
	if err != nil {
		t.Fatalf("driver should retry refused connects: %v", err)
	}
	if got := h.count(t, "refused_target"); got != 500 {
		t.Fatalf("count = %d, want 500", got)
	}
}

// TestS2VSessionLimitFailover drives a task into MAX-CLIENT-SESSIONS on its
// assigned node: one of node 0's two session slots is pinned by an outside
// client and the S2V driver's own connection takes the second, so the task
// assigned to node 0 is deterministically rejected with ErrSessionLimit.
// Spark-level task retries are disabled (MaxTaskFailures: 1), so only the
// typed sentinel's transient classification plus the resilient pool's host
// failover can save the job.
func TestS2VSessionLimitFailover(t *testing.T) {
	h := newChaosHarness(t, 4, 4, 1, vertica.Config{MaxClientSessions: 2})
	pinned, err := h.cluster.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Close()

	df := testDF(h.harness, 400, 4)
	wantSum := 0.0
	for i := 0; i < 400; i++ {
		wantSum += float64(i) + 0.25
	}
	err = df.Write().Format(DefaultSourceName).
		Options(fastRetry(loadOpts(h.harness, "sess_target", 4))).
		Mode(spark.SaveOverwrite).Save()
	if err != nil {
		t.Fatalf("session-limit rejections should be retryable: %v", err)
	}
	if got := h.count(t, "sess_target"); got != 400 {
		t.Fatalf("count = %d, want 400", got)
	}
	if got := h.sumCol(t, "sess_target", "val"); got != wantSum {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
}
