package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"vsfabric/internal/client"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

// harness bundles a cluster, a Spark context, and the registered connector.
type harness struct {
	cluster *vertica.Cluster
	sc      *spark.Context
	src     *DefaultSource
	host    string
}

func newHarness(t *testing.T, vNodes, sNodes int, inj *spark.FailureInjector) *harness {
	t.Helper()
	cl, err := vertica.NewCluster(vertica.Config{Nodes: vNodes})
	if err != nil {
		t.Fatal(err)
	}
	sc := spark.NewContext(spark.Conf{
		NumExecutors:     sNodes,
		CoresPerExecutor: 4,
		MaxTaskFailures:  4,
		Speculation:      inj != nil,
		Injector:         inj,
	})
	src := NewDefaultSource(client.InProc(cl))
	src.Register()
	return &harness{cluster: cl, sc: sc, src: src, host: cl.Node(0).Addr}
}

func (h *harness) sql(t *testing.T, stmts ...string) {
	t.Helper()
	s, err := h.cluster.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, stmt := range stmts {
		if _, err := s.Execute(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
}

func (h *harness) count(t *testing.T, table string) int64 {
	t.Helper()
	s, err := h.cluster.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Execute("SELECT COUNT(*) FROM " + table)
	if err != nil {
		t.Fatalf("count %s: %v", table, err)
	}
	v, _ := res.Value()
	return v.I
}

func (h *harness) sumCol(t *testing.T, table, col string) float64 {
	t.Helper()
	s, err := h.cluster.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Execute(fmt.Sprintf("SELECT SUM(%s) FROM %s", col, table))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := res.Value()
	return v.AsFloat()
}

// seedTable loads n rows (id, val) into a segmented table via SQL.
func (h *harness) seedTable(t *testing.T, table string, n int) {
	t.Helper()
	h.sql(t, fmt.Sprintf("CREATE TABLE %s (id INTEGER, val FLOAT) SEGMENTED BY HASH(id)", table))
	var vals []string
	for i := 0; i < n; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d.25)", i, i))
		if len(vals) == 500 || i == n-1 {
			h.sql(t, fmt.Sprintf("INSERT INTO %s VALUES %s", table, strings.Join(vals, ", ")))
			vals = nil
		}
	}
}

func testDF(h *harness, n, parts int) *spark.DataFrame {
	schema := types.NewSchema(
		types.Column{Name: "id", T: types.Int64},
		types.Column{Name: "val", T: types.Float64},
	)
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{types.IntValue(int64(i)), types.FloatValue(float64(i) + 0.25)}
	}
	return spark.CreateDataFrame(h.sc, schema, rows, parts)
}

func loadOpts(h *harness, table string, parts int) map[string]string {
	return map[string]string{
		"host": h.host, "table": table, "user": "dbadmin", "password": "",
		"numPartitions": fmt.Sprint(parts),
	}
}

// ---------- V2S ----------

func TestV2SLoadRoundTrip(t *testing.T) {
	h := newHarness(t, 4, 4, nil)
	h.seedTable(t, "d1", 1000)
	for _, parts := range []int{1, 2, 3, 4, 7, 16} {
		df, err := h.sc.Read().Format(DefaultSourceName).Options(loadOpts(h, "d1", parts)).Load()
		if err != nil {
			t.Fatal(err)
		}
		rows, err := df.Collect()
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if len(rows) != 1000 {
			t.Fatalf("parts=%d: got %d rows, want 1000", parts, len(rows))
		}
		seen := map[int64]bool{}
		var sum float64
		for _, r := range rows {
			if seen[r[0].I] {
				t.Fatalf("parts=%d: duplicate id %d", parts, r[0].I)
			}
			seen[r[0].I] = true
			sum += r[1].F
		}
		want := float64(999*1000/2) + 0.25*1000
		if sum != want {
			t.Errorf("parts=%d: sum %v, want %v (exactly-once violated)", parts, sum, want)
		}
	}
}

func TestV2SProjectionAndFilterPushdown(t *testing.T) {
	h := newHarness(t, 4, 2, nil)
	h.seedTable(t, "d1", 500)
	df, err := h.sc.Read().Format(DefaultSourceName).Options(loadOpts(h, "d1", 8)).Load()
	if err != nil {
		t.Fatal(err)
	}
	sel, err := df.Select("val")
	if err != nil {
		t.Fatal(err)
	}
	filtered := sel.Where(spark.GreaterThanOrEqual{Col: "id", Value: types.IntValue(490)})
	rows, err := filtered.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("filter pushdown returned %d rows, want 10", len(rows))
	}
	if len(rows[0]) != 1 {
		t.Errorf("projection pushdown returned %d cols, want 1", len(rows[0]))
	}
}

func TestV2SCountPushdown(t *testing.T) {
	h := newHarness(t, 4, 2, nil)
	h.seedTable(t, "d1", 300)
	df, err := h.sc.Read().Format(DefaultSourceName).Options(loadOpts(h, "d1", 4)).Load()
	if err != nil {
		t.Fatal(err)
	}
	n, err := df.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Errorf("count = %d", n)
	}
	n, err = df.Where(spark.LessThan{Col: "id", Value: types.IntValue(100)}).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("filtered count = %d", n)
	}
}

// Epoch pinning: rows inserted or deleted after the scan's epoch is pinned
// must not appear, no matter when tasks run or how often they restart.
func TestV2SEpochConsistencyUnderConcurrentWrites(t *testing.T) {
	inj := spark.NewFailureInjector()
	// Every task fails once, so every partition runs twice — the retries
	// happen after the concurrent writes below.
	inj.FailTaskAt(-1, 0, "v2s.task_done", 1000)
	h := newHarness(t, 4, 2, inj)
	h.seedTable(t, "d1", 400)

	df, err := h.sc.Read().Format(DefaultSourceName).Options(loadOpts(h, "d1", 8)).Load()
	if err != nil {
		t.Fatal(err)
	}
	rdd, err := df.RDD() // epoch pinned here
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent modification after pinning, before the job runs.
	h.sql(t, "INSERT INTO d1 VALUES (9999, 1.0)", "DELETE FROM d1 WHERE id < 100")
	rows, err := rdd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 400 {
		t.Fatalf("got %d rows, want the pinned-epoch 400", len(rows))
	}
	for _, r := range rows {
		if r[0].I == 9999 {
			t.Error("row inserted after epoch pin leaked into the load")
		}
	}
}

func TestV2SUnsegmentedTable(t *testing.T) {
	h := newHarness(t, 3, 2, nil)
	h.sql(t, "CREATE TABLE u (id INTEGER, v FLOAT) UNSEGMENTED ALL NODES")
	var vals []string
	for i := 0; i < 120; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d.5)", i, i))
	}
	h.sql(t, "INSERT INTO u VALUES "+strings.Join(vals, ", "))
	df, err := h.sc.Read().Format(DefaultSourceName).Options(loadOpts(h, "u", 6)).Load()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 120 {
		t.Fatalf("unsegmented load got %d rows, want 120 (synthetic hash ranges)", len(rows))
	}
}

func TestV2SLoadView(t *testing.T) {
	h := newHarness(t, 4, 2, nil)
	h.seedTable(t, "d1", 200)
	// A view with an aggregation — the pushdown §3.1.1 says views enable.
	h.sql(t, "CREATE VIEW bigv AS SELECT id, val FROM d1 WHERE id >= 150")
	df, err := h.sc.Read().Format(DefaultSourceName).Options(loadOpts(h, "bigv", 4)).Load()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("view load got %d rows, want 50", len(rows))
	}
	seen := map[int64]bool{}
	for _, r := range rows {
		if seen[r[0].I] {
			t.Fatalf("view load duplicated id %d", r[0].I)
		}
		seen[r[0].I] = true
	}
}

func TestV2STaskFailureRetry(t *testing.T) {
	inj := spark.NewFailureInjector()
	inj.FailTaskAt(2, 0, "v2s.task_start", 1) // task 2's first attempt dies
	h := newHarness(t, 4, 2, inj)
	h.seedTable(t, "d1", 400)
	df, err := h.sc.Read().Format(DefaultSourceName).Options(loadOpts(h, "d1", 8)).Load()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 400 {
		t.Errorf("after retry: %d rows, want 400", len(rows))
	}
	if len(inj.Log()) != 1 {
		t.Errorf("injector fired %d times, want 1", len(inj.Log()))
	}
}

// ---------- S2V ----------

func saveDF(t *testing.T, h *harness, df *spark.DataFrame, mode spark.SaveMode, table string, parts int, extra map[string]string) error {
	t.Helper()
	opts := loadOpts(h, table, parts)
	for k, v := range extra {
		opts[k] = v
	}
	return df.Write().Format(DefaultSourceName).Options(opts).Mode(mode).Save()
}

func TestS2VOverwriteBasic(t *testing.T) {
	h := newHarness(t, 4, 4, nil)
	df := testDF(h, 1000, 8)
	if err := saveDF(t, h, df, spark.SaveOverwrite, "target", 8, nil); err != nil {
		t.Fatal(err)
	}
	if got := h.count(t, "target"); got != 1000 {
		t.Fatalf("target has %d rows, want 1000", got)
	}
	want := float64(999*1000)/2 + 0.25*1000
	if got := h.sumCol(t, "target", "val"); got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	// Temp tables cleaned up; permanent job-status row records SUCCESS.
	s, _ := h.cluster.Connect(0)
	defer s.Close()
	res, err := s.Execute("SELECT status FROM s2v_job_status")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "SUCCESS" {
		t.Errorf("job status = %v, %v", res, err)
	}
	for _, tbl := range h.cluster.Catalog().Tables() {
		if strings.HasPrefix(tbl.Def.Name, "s2v_stage") || strings.HasPrefix(tbl.Def.Name, "s2v_task") {
			t.Errorf("temp table %q not cleaned up", tbl.Def.Name)
		}
	}
}

func TestS2VOverwriteReplacesExisting(t *testing.T) {
	h := newHarness(t, 2, 2, nil)
	h.sql(t, "CREATE TABLE target (id INTEGER, val FLOAT)", "INSERT INTO target VALUES (111, 1.0)")
	if err := saveDF(t, h, testDF(h, 50, 4), spark.SaveOverwrite, "target", 4, nil); err != nil {
		t.Fatal(err)
	}
	if got := h.count(t, "target"); got != 50 {
		t.Errorf("overwrite left %d rows, want 50", got)
	}
}

func TestS2VAppend(t *testing.T) {
	h := newHarness(t, 4, 2, nil)
	h.sql(t, "CREATE TABLE target (id INTEGER, val FLOAT) SEGMENTED BY HASH(id)",
		"INSERT INTO target VALUES (100000, 0.5)")
	if err := saveDF(t, h, testDF(h, 300, 4), spark.SaveAppend, "target", 4, nil); err != nil {
		t.Fatal(err)
	}
	if got := h.count(t, "target"); got != 301 {
		t.Errorf("append left %d rows, want 301", got)
	}
}

func TestS2VAppendMissingTarget(t *testing.T) {
	h := newHarness(t, 2, 2, nil)
	err := saveDF(t, h, testDF(h, 10, 2), spark.SaveAppend, "missing", 2, nil)
	if err == nil {
		t.Fatal("append into missing table should fail")
	}
}

func TestS2VErrorIfExists(t *testing.T) {
	h := newHarness(t, 2, 2, nil)
	h.sql(t, "CREATE TABLE target (id INTEGER, val FLOAT)")
	if err := saveDF(t, h, testDF(h, 10, 2), spark.SaveErrorIfExists, "target", 2, nil); err == nil {
		t.Fatal("errorIfExists should fail on existing table")
	}
}

// The central claim: task failures at every phase boundary, duplicated work,
// and speculative execution never produce partial or duplicate loads.
func TestS2VExactlyOnceUnderTaskFailures(t *testing.T) {
	checkpoints := []string{
		"s2v.task_start",
		"s2v.phase1.before_copy",
		"s2v.phase1.after_copy",
		"s2v.phase1.after_commit", // the subtle §2.2.2 case: die right after committing
		"s2v.phase2.all_done",
		"s2v.phase3.after",
		"s2v.phase5.before_commit",
		"s2v.phase5.after_commit", // die after the final commit
	}
	for _, cp := range checkpoints {
		cp := cp
		t.Run(cp, func(t *testing.T) {
			inj := spark.NewFailureInjector()
			inj.FailTaskAt(-1, 0, cp, 2) // two first-attempt tasks die there
			h := newHarness(t, 4, 4, inj)
			df := testDF(h, 600, 6)
			if err := saveDF(t, h, df, spark.SaveOverwrite, "target", 6, map[string]string{"jobname": "j_" + cp}); err != nil {
				t.Fatalf("save with failures at %s: %v", cp, err)
			}
			if got := h.count(t, "target"); got != 600 {
				t.Fatalf("failures at %s: target has %d rows, want 600", cp, got)
			}
			want := float64(599*600)/2 + 0.25*600
			if got := h.sumCol(t, "target", "val"); got != want {
				t.Errorf("failures at %s: sum %v, want %v (duplicate or partial load)", cp, got, want)
			}
		})
	}
}

func TestS2VSpeculativeExecution(t *testing.T) {
	inj := spark.NewFailureInjector()
	inj.Speculate(0).Speculate(3) // concurrent duplicate attempts, side effects real
	h := newHarness(t, 4, 4, inj)
	if err := saveDF(t, h, testDF(h, 400, 4), spark.SaveOverwrite, "target", 4, nil); err != nil {
		t.Fatal(err)
	}
	if got := h.count(t, "target"); got != 400 {
		t.Fatalf("speculation duplicated data: %d rows, want 400", got)
	}
	want := float64(399*400)/2 + 0.25*400
	if got := h.sumCol(t, "target", "val"); got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestS2VTotalSparkFailure(t *testing.T) {
	inj := spark.NewFailureInjector()
	inj.KillJobAt(1, "s2v.phase1.after_copy")
	h := newHarness(t, 4, 2, inj)
	h.sql(t, "CREATE TABLE target (id INTEGER, val FLOAT)", "INSERT INTO target VALUES (7, 7.0)")
	err := saveDF(t, h, testDF(h, 200, 4), spark.SaveOverwrite, "target", 4, map[string]string{"jobname": "killed_job"})
	if err == nil {
		t.Fatal("killed job should report failure")
	}
	if !errors.Is(err, spark.ErrJobKilled) {
		t.Errorf("error = %v, want ErrJobKilled", err)
	}
	// Target untouched; permanent status table records the failure — the
	// §3.2 story for a user whose Spark cluster died mid-save.
	if got := h.count(t, "target"); got != 1 {
		t.Errorf("total failure polluted target: %d rows, want 1", got)
	}
	s, _ := h.cluster.Connect(0)
	defer s.Close()
	res, err := s.Execute("SELECT status FROM s2v_job_status WHERE job_name = 'killed_job'")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].S != "FAILED" {
		t.Errorf("job status after kill = %v, %v", res, err)
	}
}

func TestS2VRejectedRowsTolerance(t *testing.T) {
	h := newHarness(t, 2, 2, nil)
	// A VARCHAR DataFrame column against an INTEGER target column makes the
	// COPY reject those rows server-side. Build via CSV-typed frame.
	schema := types.NewSchema(types.Column{Name: "id", T: types.Int64}, types.Column{Name: "val", T: types.Float64})
	rows := make([]types.Row, 100)
	for i := range rows {
		rows[i] = types.Row{types.IntValue(int64(i)), types.FloatValue(1)}
	}
	df := spark.CreateDataFrame(h.sc, schema, rows, 2)
	// Zero tolerance, zero rejects: fine.
	if err := saveDF(t, h, df, spark.SaveOverwrite, "target", 2, map[string]string{"failedRowsPercentTolerance": "0.0"}); err != nil {
		t.Fatal(err)
	}
	if got := h.count(t, "target"); got != 100 {
		t.Errorf("rows = %d", got)
	}
}

func TestS2VManyPartitionsFewRows(t *testing.T) {
	h := newHarness(t, 4, 4, nil)
	if err := saveDF(t, h, testDF(h, 3, 1), spark.SaveOverwrite, "tiny", 8, nil); err != nil {
		t.Fatal(err)
	}
	// More partitions than rows: empty tasks still follow the protocol.
	if got := h.count(t, "tiny"); got != 3 {
		t.Errorf("rows = %d, want 3", got)
	}
}

func TestS2VRoundTripThroughV2S(t *testing.T) {
	// The paper's own experimental setup (§4.1): save with S2V, load back
	// with V2S, verify the data is exactly the same.
	h := newHarness(t, 4, 4, nil)
	df := testDF(h, 800, 8)
	if err := saveDF(t, h, df, spark.SaveOverwrite, "rt", 8, nil); err != nil {
		t.Fatal(err)
	}
	back, err := h.sc.Read().Format(DefaultSourceName).Options(loadOpts(h, "rt", 16)).Load()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := back.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 800 {
		t.Fatalf("round trip: %d rows, want 800", len(rows))
	}
	var sum float64
	for _, r := range rows {
		sum += r[1].F
	}
	want := float64(799*800)/2 + 0.25*800
	if sum != want {
		t.Errorf("round trip sum %v, want %v", sum, want)
	}
}

// ---------- Options ----------

func TestParseOptions(t *testing.T) {
	o, err := ParseS2VOptions(map[string]string{
		"host": "h", "table": "t", "numPartitions": "32",
		"failedRowsPercentTolerance": "0.02", "user": "u",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.NumPartitions != 32 || o.FailedRowsPercentTolerance != 0.02 || o.User != "u" {
		t.Errorf("opts = %+v", o)
	}
	if o.CopyFormat != "avro" {
		t.Errorf("default copy_format = %q, want avro", o.CopyFormat)
	}
	if _, err := ParseV2SOptions(map[string]string{"host": "h"}); err == nil {
		t.Error("missing table should fail")
	}
	if _, err := ParseS2VOptions(map[string]string{"table": "t"}); err == nil {
		t.Error("missing host should fail")
	}
	if _, err := ParseV2SOptions(map[string]string{"host": "h", "table": "t", "numPartitions": "-1"}); err == nil {
		t.Error("bad numPartitions should fail")
	}
	if _, err := ParseS2VOptions(map[string]string{"host": "h", "table": "t", "failedRowsPercentTolerance": "1.5"}); err == nil {
		t.Error("tolerance > 1 should fail")
	}
}

func TestTypedOptions(t *testing.T) {
	v, err := NewV2SOptions("t", "h", WithPartitions(8), WithoutLocality())
	if err != nil {
		t.Fatal(err)
	}
	if v.NumPartitions != 8 || !v.DisableLocality {
		t.Errorf("v2s opts = %+v", v)
	}
	sv, err := NewS2VOptions("t", "h", WithJobName("j1"), WithTolerance(0.1), WithCopyFormat("CSV"))
	if err != nil {
		t.Fatal(err)
	}
	if sv.JobName != "j1" || sv.FailedRowsPercentTolerance != 0.1 || sv.CopyFormat != "csv" {
		t.Errorf("s2v opts = %+v", sv)
	}
	// Direction-specific options reject the wrong constructor.
	if _, err := NewS2VOptions("t", "h", WithoutLocality()); err == nil {
		t.Error("WithoutLocality on S2V should fail")
	}
	if _, err := NewV2SOptions("t", "h", WithJobName("j")); err == nil {
		t.Error("WithJobName on V2S should fail")
	}
	if _, err := NewS2VOptions("t", "h", WithTolerance(2)); err == nil {
		t.Error("out-of-range tolerance should fail")
	}
	if _, err := NewS2VOptions("t", "h", WithCopyFormat("parquet")); err == nil {
		t.Error("bad copy_format should fail")
	}
	if _, err := NewV2SOptions("", "h"); err == nil {
		t.Error("empty table should fail")
	}
}
