package core

import (
	"testing"

	"vsfabric/internal/spark"
	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

// rangeDF builds a DataFrame of (id, val) rows for ids in [lo, hi).
func rangeDF(h *harness, lo, hi, parts int) *spark.DataFrame {
	schema := types.NewSchema(
		types.Column{Name: "id", T: types.Int64},
		types.Column{Name: "val", T: types.Float64},
	)
	rows := make([]types.Row, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rows = append(rows, types.Row{types.IntValue(int64(i)), types.FloatValue(float64(i) + 0.25)})
	}
	return spark.CreateDataFrame(h.sc, schema, rows, parts)
}

func query(t *testing.T, c *vertica.Cluster, sql string) *vertica.Result {
	t.Helper()
	s, err := c.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Execute(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

// TestElasticClusterChaosAcceptance is the acceptance scenario for elastic
// membership under chaos: a KSAFE 1 cluster takes live connector COPY
// traffic, loses a node, grows by one node while the dead node's segments
// must be sourced from buddies, keeps loading during the outage, heals the
// dead node at a deterministic operation count, and then serves a complete,
// duplicate-free V2S read. Run under -race by `make rebalance-test`.
func TestElasticClusterChaosAcceptance(t *testing.T) {
	h := newChaosHarness(t, 3, 4, 8, vertica.Config{})
	h.sql(t, "CREATE TABLE elastic (id INTEGER, val FLOAT) SEGMENTED BY HASH(id) KSAFE 1")

	save := func(lo, hi int) error {
		return rangeDF(h.harness, lo, hi, 4).Write().Format(DefaultSourceName).
			Options(fastRetry(loadOpts(h.harness, "elastic", 4))).
			Mode(spark.SaveAppend).Save()
	}
	load := func() ([]types.Row, error) {
		df, err := h.sc.Read().Format(DefaultSourceName).
			Options(fastRetry(loadOpts(h.harness, "elastic", 8))).Load()
		if err != nil {
			return nil, err
		}
		return df.Collect()
	}

	// Phase 1: live COPY traffic on the healthy cluster.
	if err := save(0, 600); err != nil {
		t.Fatalf("baseline save: %v", err)
	}

	// Phase 2: a node dies. Every acknowledged commit must survive on the
	// buddy replicas.
	victim := h.cluster.Node(2)
	victim.SetDown(true)
	if got := h.count(t, "elastic"); got != 600 {
		t.Fatalf("acknowledged commits lost with node down: count = %d, want 600", got)
	}

	// Phase 3: grow the cluster while the victim is dead AND a live S2V load
	// is running. The rebalance must source the dead node's segments from
	// buddies, wait out in-flight COPY transactions (lock fairness keeps it
	// from starving), and the load must commit exactly-once.
	saveErr := make(chan error, 1)
	go func() { saveErr <- save(600, 800) }()
	h.sql(t, "ALTER CLUSTER ADD NODE")
	if err := <-saveErr; err != nil {
		t.Fatalf("S2V during rebalance: %v", err)
	}
	if got := h.count(t, "elastic"); got != 800 {
		t.Fatalf("count after rebalance under load = %d, want 800", got)
	}
	segs := query(t, h.cluster, "SELECT node_address FROM v_catalog.segments WHERE table_name = 'elastic'")
	if len(segs.Rows) != 4 {
		t.Fatalf("table spans %d segments after add-node, want 4", len(segs.Rows))
	}

	// Phase 4: heal the victim at a deterministic operation count — the next
	// connector operation (the V2S driver's connect) revives it, running
	// synchronous recovery before the op proceeds. No sleeps, no races.
	h.chaos.RecoverNodeAtOp(victim, h.chaos.Ops()+1)
	rows, err := load()
	if err != nil {
		t.Fatalf("V2S after heal: %v", err)
	}
	if victim.State() != vertica.NodeUp {
		t.Fatalf("victim state = %v after scheduled heal, want UP", victim.State())
	}
	if victim.RecoveryEpoch() == 0 {
		t.Fatal("victim has no recovery epoch")
	}

	// Zero duplicate, zero missing rows at the final epoch.
	if len(rows) != 800 {
		t.Fatalf("V2S returned %d rows, want 800", len(rows))
	}
	seen := make(map[int64]bool, len(rows))
	for _, r := range rows {
		if seen[r[0].I] {
			t.Fatalf("duplicate id %d in V2S result", r[0].I)
		}
		seen[r[0].I] = true
	}
	for i := int64(0); i < 800; i++ {
		if !seen[i] {
			t.Fatalf("id %d missing from V2S result", i)
		}
	}

	// The monitoring surface reports the whole story: four UP nodes, the
	// add-node moves, and the recovery.
	states := query(t, h.cluster, "SELECT node_state FROM v_monitor.node_states")
	if len(states.Rows) != 4 {
		t.Fatalf("node_states reports %d nodes, want 4", len(states.Rows))
	}
	for _, r := range states.Rows {
		if r[0].S != "UP" {
			t.Fatalf("node state %q after heal, want UP", r[0].S)
		}
	}
	ops := query(t, h.cluster, "SELECT operation_type, status FROM v_monitor.rebalance_operations")
	var addDone, recoverDone int
	for _, r := range ops.Rows {
		if r[1].S != "complete" {
			continue
		}
		switch r[0].S {
		case "add_node":
			addDone++
		case "recovery":
			recoverDone++
		}
	}
	if addDone == 0 || recoverDone == 0 {
		t.Fatalf("rebalance_operations: %d add_node, %d recovery complete entries; want both > 0\n%v",
			addDone, recoverDone, ops.Rows)
	}

	// Phase 5: the post-chaos cluster is fully functional end to end.
	if err := save(800, 900); err != nil {
		t.Fatalf("post-chaos save: %v", err)
	}
	rows, err = load()
	if err != nil {
		t.Fatalf("post-chaos load: %v", err)
	}
	if len(rows) != 900 {
		t.Fatalf("final V2S count = %d, want 900", len(rows))
	}
	wantSum := 0.0
	for i := 0; i < 900; i++ {
		wantSum += float64(i) + 0.25
	}
	if got := h.sumCol(t, "elastic", "val"); got != wantSum {
		t.Fatalf("final sum = %v, want %v", got, wantSum)
	}
	for i := 0; i < h.cluster.NumNodes(); i++ {
		if h.cluster.Node(i).State() != vertica.NodeRemoved {
			if open := h.cluster.OpenSessions(i); open != 0 {
				t.Errorf("node %d leaks %d sessions", i, open)
			}
		}
	}
}

// TestV2SReplansAcrossMembershipChange: a relation created before an ALTER
// CLUSTER must re-discover the layout at scan time and read the table
// completely from the new ring — including from addresses that did not exist
// when the relation was created.
func TestV2SReplansAcrossMembershipChange(t *testing.T) {
	h := newChaosHarness(t, 2, 2, 4, vertica.Config{})
	h.sql(t, "CREATE TABLE mv (id INTEGER, val FLOAT) SEGMENTED BY HASH(id) KSAFE 1")
	if err := rangeDF(h.harness, 0, 400, 4).Write().Format(DefaultSourceName).
		Options(fastRetry(loadOpts(h.harness, "mv", 4))).
		Mode(spark.SaveAppend).Save(); err != nil {
		t.Fatal(err)
	}

	// Relation created against the 2-node layout.
	df, err := h.sc.Read().Format(DefaultSourceName).
		Options(fastRetry(loadOpts(h.harness, "mv", 6))).Load()
	if err != nil {
		t.Fatal(err)
	}
	h.sql(t, "ALTER CLUSTER ADD NODE")
	if err := rangeDF(h.harness, 400, 500, 2).Write().Format(DefaultSourceName).
		Options(fastRetry(loadOpts(h.harness, "mv", 2))).
		Mode(spark.SaveAppend).Save(); err != nil {
		t.Fatal(err)
	}

	rows, err := df.Collect()
	if err != nil {
		t.Fatalf("stale relation must re-plan, not fail: %v", err)
	}
	if len(rows) != 500 {
		t.Fatalf("re-planned scan returned %d rows, want 500", len(rows))
	}
	seen := make(map[int64]bool, len(rows))
	for _, r := range rows {
		if seen[r[0].I] {
			t.Fatalf("duplicate id %d", r[0].I)
		}
		seen[r[0].I] = true
	}
}
