package core

import (
	"fmt"
	"sync"

	"vsfabric/internal/pmml"
	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

// ModelMetadataTable records deployed models' metadata (§3.3: the model body
// lives in the internal DFS "since it is difficult to define a proper and
// generic schema for PMML models"; only name/type/size go in a table).
const ModelMetadataTable = "pmml_models"

const modelDFSPrefix = "models/"

// InstallPMMLSupport is the server-side half of MD: it creates the model
// metadata table and registers the PMMLPredict scalar UDx, the generic
// evaluator for numeric-vector models. Call once per cluster, like
// installing a UDx library in Vertica.
func InstallPMMLSupport(c *vertica.Cluster) error {
	s, err := c.Connect(0)
	if err != nil {
		return err
	}
	defer s.Close()
	_, err = s.Execute(fmt.Sprintf(
		"CREATE TABLE IF NOT EXISTS %s (model_name VARCHAR, model_type VARCHAR, size_bytes INTEGER, dfs_path VARCHAR, num_features INTEGER) UNSEGMENTED ALL NODES",
		ModelMetadataTable))
	if err != nil {
		return err
	}

	var cache sync.Map // model name → *pmml.Evaluator
	c.RegisterUDx("PMMLPredict", func(args []types.Value, params map[string]string) (types.Value, error) {
		name := params["model_name"]
		if name == "" {
			return types.Value{}, fmt.Errorf("PMMLPredict: USING PARAMETERS model_name='...' is required")
		}
		var ev *pmml.Evaluator
		if cached, ok := cache.Load(name); ok {
			ev = cached.(*pmml.Evaluator)
		} else {
			doc, err := GetPMML(c, name)
			if err != nil {
				return types.Value{}, err
			}
			ev, err = pmml.NewEvaluator(doc)
			if err != nil {
				return types.Value{}, err
			}
			cache.Store(name, ev)
		}
		if len(args) != ev.NumFeatures() {
			return types.Value{}, fmt.Errorf("PMMLPredict: model %q takes %d features, got %d",
				name, ev.NumFeatures(), len(args))
		}
		x := make([]float64, len(args))
		for i, a := range args {
			if a.Null {
				return types.NullValue(types.Float64), nil
			}
			x[i] = a.AsFloat()
		}
		y, err := ev.Predict(x)
		if err != nil {
			return types.Value{}, err
		}
		return types.FloatValue(y), nil
	})
	return nil
}

// DeployPMMLModel stores a PMML document into the database's internal DFS
// and records its metadata, making it available to in-database scoring
// (§3.3's DeployPMMLModel()). Deploying under an existing name replaces the
// model.
func DeployPMMLModel(c *vertica.Cluster, name string, doc *pmml.Document) error {
	data, err := pmml.Marshal(doc)
	if err != nil {
		return err
	}
	// Validate up front that the generic evaluator can score it.
	ev, err := pmml.NewEvaluator(doc)
	if err != nil {
		return fmt.Errorf("core: model %q is not scorable: %w", name, err)
	}
	path := modelDFSPrefix + name + ".pmml"
	if err := c.DFS().Put(path, data); err != nil {
		return err
	}
	s, err := c.Connect(0)
	if err != nil {
		return err
	}
	defer s.Close()
	if _, err := s.Execute(fmt.Sprintf(
		"DELETE FROM %s WHERE model_name = '%s'", ModelMetadataTable, sqlEscape(name))); err != nil {
		return err
	}
	_, err = s.Execute(fmt.Sprintf(
		"INSERT INTO %s VALUES ('%s', '%s', %d, '%s', %d)",
		ModelMetadataTable, sqlEscape(name), doc.ModelType(), len(data), path, ev.NumFeatures()))
	return err
}

// GetPMML reads a deployed model back from the DFS (§3.3's GetPMML()).
func GetPMML(c *vertica.Cluster, name string) (*pmml.Document, error) {
	data, err := c.DFS().Get(modelDFSPrefix + name + ".pmml")
	if err != nil {
		return nil, fmt.Errorf("core: model %q is not deployed: %w", name, err)
	}
	return pmml.Unmarshal(data)
}

// ModelInfo describes one deployed model.
type ModelInfo struct {
	Name        string
	Type        string
	SizeBytes   int64
	DFSPath     string
	NumFeatures int64
}

// ListModels returns the deployed models' metadata.
func ListModels(c *vertica.Cluster) ([]ModelInfo, error) {
	s, err := c.Connect(0)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	res, err := s.Execute(fmt.Sprintf(
		"SELECT model_name, model_type, size_bytes, dfs_path, num_features FROM %s", ModelMetadataTable))
	if err != nil {
		return nil, err
	}
	out := make([]ModelInfo, 0, len(res.Rows))
	for _, r := range res.Rows {
		out = append(out, ModelInfo{
			Name: r[0].S, Type: r[1].S, SizeBytes: r[2].I, DFSPath: r[3].S, NumFeatures: r[4].I,
		})
	}
	return out, nil
}
