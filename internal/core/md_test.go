package core

import (
	"strings"
	"testing"

	"vsfabric/internal/mllib"
	"vsfabric/internal/spark"
	"vsfabric/internal/workload"
)

// TestMDFullPipeline runs the complete Figure 1 loop: V2S loads training
// data out of the database, MLlib trains, the model exports to PMML, MD
// deploys it, and PMMLPredict scores in-database.
func TestMDFullPipeline(t *testing.T) {
	h := newHarness(t, 4, 2, nil)
	if err := InstallPMMLSupport(h.cluster); err != nil {
		t.Fatal(err)
	}

	// Seed IrisTable in the database.
	iris := workload.IrisRows(400, 3)
	h.sql(t, "CREATE TABLE iristable (sepal_length FLOAT, sepal_width FLOAT, petal_length FLOAT, petal_width FLOAT, species INTEGER)")
	var vals []string
	for _, r := range iris {
		vals = append(vals, "("+r[0].String()+", "+r[1].String()+", "+r[2].String()+", "+r[3].String()+", "+r[4].String()+")")
	}
	h.sql(t, "INSERT INTO iristable VALUES "+strings.Join(vals, ", "))

	// V2S: load training data into Spark.
	df, err := h.sc.Read().Format(DefaultSourceName).Options(loadOpts(h, "iristable", 4)).Load()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	var pts []mllib.LabeledPoint
	for _, r := range rows {
		pts = append(pts, mllib.LabeledPoint{
			Label:    float64(r[4].I),
			Features: mllib.Vector{r[0].F, r[1].F, r[2].F, r[3].F},
		})
	}
	model, err := mllib.TrainLogisticRegression(spark.Parallelize(h.sc, pts, 4), 200, 1.0)
	if err != nil {
		t.Fatal(err)
	}

	// Export to PMML and deploy (MD).
	doc, err := model.ToPMML([]string{"sepal_length", "sepal_width", "petal_length", "petal_width"}, "species")
	if err != nil {
		t.Fatal(err)
	}
	if err := DeployPMMLModel(h.cluster, "regression", doc); err != nil {
		t.Fatal(err)
	}

	// The paper's §3.3 example query, verbatim shape.
	s, err := h.cluster.Connect(1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Execute(`SELECT PMMLPredict(
		sepal_length, sepal_width,
		petal_length, petal_width
	USING PARAMETERS model_name='regression') AS pred, species FROM iristable`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 400 {
		t.Fatalf("scored %d rows", len(res.Rows))
	}
	correct := 0
	for _, r := range res.Rows {
		if int64(r[0].F) == r[1].I {
			correct++
		}
	}
	if acc := float64(correct) / 400; acc < 0.95 {
		t.Errorf("in-database accuracy = %.3f, want >= 0.95", acc)
	}

	// Metadata and DFS round trips.
	models, err := ListModels(h.cluster)
	if err != nil || len(models) != 1 {
		t.Fatalf("ListModels = %v, %v", models, err)
	}
	if models[0].Name != "regression" || models[0].Type != "logistic_regression" || models[0].NumFeatures != 4 {
		t.Errorf("metadata = %+v", models[0])
	}
	back, err := GetPMML(h.cluster, "regression")
	if err != nil {
		t.Fatal(err)
	}
	if back.ModelType() != "logistic_regression" {
		t.Errorf("GetPMML type = %q", back.ModelType())
	}
}

func TestMDRedeployReplaces(t *testing.T) {
	h := newHarness(t, 2, 2, nil)
	if err := InstallPMMLSupport(h.cluster); err != nil {
		t.Fatal(err)
	}
	lin := &mllib.LinearRegressionModel{Weights: mllib.Vector{1}, Intercept: 0}
	doc, err := lin.ToPMML([]string{"x"}, "y")
	if err != nil {
		t.Fatal(err)
	}
	if err := DeployPMMLModel(h.cluster, "m", doc); err != nil {
		t.Fatal(err)
	}
	lin2 := &mllib.LinearRegressionModel{Weights: mllib.Vector{2, 3}, Intercept: 1}
	doc2, err := lin2.ToPMML([]string{"x", "z"}, "y")
	if err != nil {
		t.Fatal(err)
	}
	if err := DeployPMMLModel(h.cluster, "m", doc2); err != nil {
		t.Fatal(err)
	}
	models, err := ListModels(h.cluster)
	if err != nil || len(models) != 1 {
		t.Fatalf("redeploy should replace, got %v, %v", models, err)
	}
	if models[0].NumFeatures != 2 {
		t.Errorf("metadata not updated: %+v", models[0])
	}
}

func TestMDErrors(t *testing.T) {
	h := newHarness(t, 2, 2, nil)
	if err := InstallPMMLSupport(h.cluster); err != nil {
		t.Fatal(err)
	}
	if _, err := GetPMML(h.cluster, "missing"); err == nil {
		t.Error("missing model should error")
	}
	s, _ := h.cluster.Connect(0)
	defer s.Close()
	h.sql(t, "CREATE TABLE tt (x FLOAT)", "INSERT INTO tt VALUES (1.0)")
	if _, err := s.Execute("SELECT PMMLPredict(x USING PARAMETERS model_name='missing') FROM tt"); err == nil {
		t.Error("scoring with missing model should error")
	}
	if _, err := s.Execute("SELECT PMMLPredict(x) FROM tt"); err == nil {
		t.Error("scoring without model_name should error")
	}

	// Deploy a model and call it with the wrong arity.
	lin := &mllib.LinearRegressionModel{Weights: mllib.Vector{1, 2}, Intercept: 0}
	doc, _ := lin.ToPMML([]string{"a", "b"}, "y")
	if err := DeployPMMLModel(h.cluster, "two", doc); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute("SELECT PMMLPredict(x USING PARAMETERS model_name='two') FROM tt"); err == nil {
		t.Error("wrong arity should error")
	}
}
