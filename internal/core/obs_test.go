package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"vsfabric/internal/obs"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

// query runs one statement through a fresh session and returns its rows.
func (h *harness) query(t *testing.T, sql string) []types.Row {
	t.Helper()
	s, err := h.cluster.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Execute(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res.Rows
}

// obsHarness is a harness whose source reports to the cluster's own
// collector, so connector spans and resilience events surface in v_monitor.
func obsHarness(t *testing.T, vNodes, sNodes int) *harness {
	t.Helper()
	h := newHarness(t, vNodes, sNodes, nil)
	h.src.WithObserver(h.cluster.Obs())
	return h
}

func spansByName(h *harness, name string) []obs.Span {
	var out []obs.Span
	for _, sp := range h.cluster.Obs().Spans() {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

// TestVMonitorAfterConnectorRoundTrip: after a V2S load and an S2V save, the
// connector's spans are queryable through the v_monitor system tables and
// the collector holds the full span taxonomy.
func TestVMonitorAfterConnectorRoundTrip(t *testing.T) {
	h := obsHarness(t, 4, 2)
	h.seedTable(t, "d1", 500)
	h.cluster.Obs().Reset() // drop the seeding noise; watch only the jobs

	const parts = 4
	df, err := h.sc.Read().Format(DefaultSourceName).Options(loadOpts(h, "d1", parts)).Load()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 500 {
		t.Fatalf("V2S returned %d rows, want 500", len(rows))
	}

	// Partition spans: one per V2S partition, each carrying its row count.
	pspans := spansByName(h, "v2s.partition")
	if len(pspans) != parts {
		t.Fatalf("v2s.partition spans = %d, want %d", len(pspans), parts)
	}
	var pRows int64
	for _, sp := range pspans {
		if !sp.OK() {
			t.Errorf("partition span failed: %+v", sp)
		}
		pRows += sp.Rows
	}
	if pRows != 500 {
		t.Errorf("partition spans account for %d rows, want 500", pRows)
	}

	// Saving the same (lazy) DataFrame re-runs the V2S scan underneath the
	// S2V job, so both directions land in one trace.
	err = df.Write().Format(DefaultSourceName).
		Options(map[string]string{"host": h.host, "table": "d2", "jobname": "obs_job"}).
		Mode(spark.SaveOverwrite).Save()
	if err != nil {
		t.Fatal(err)
	}

	// S2V: one setup span, phase spans for every phase a task entered, and
	// exactly one committer that ran phases 3-5.
	if got := spansByName(h, "s2v.setup"); len(got) != 1 || !got[0].OK() {
		t.Fatalf("s2v.setup spans = %+v, want one clean span", got)
	}
	p1 := spansByName(h, "s2v.phase1")
	if len(p1) == 0 {
		t.Fatal("no s2v.phase1 spans recorded")
	}
	var staged int64
	for _, sp := range p1 {
		staged += sp.Rows
	}
	if staged != 500 {
		t.Errorf("phase1 spans staged %d rows, want 500", staged)
	}
	if got := spansByName(h, "s2v.phase5"); len(got) != 1 || !got[0].OK() {
		t.Fatalf("s2v.phase5 spans = %+v, want exactly one committer", got)
	}
	for _, sp := range append(spansByName(h, "s2v.phase2"), spansByName(h, "s2v.phase3")...) {
		if !strings.Contains(sp.Detail, "job obs_job") {
			t.Errorf("phase span detail %q does not name the job", sp.Detail)
		}
	}

	// The same history through SQL: query_requests saw the tasks' statements
	// (with the executor recorded as the client), load_streams saw one COPY
	// per staged partition, and projection_storage reflects the new table.
	s, err := h.cluster.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Execute("SELECT COUNT(*) FROM v_monitor.query_requests")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Value(); v.I == 0 {
		t.Error("query_requests is empty after a connector round trip")
	}
	res, err = s.Execute("SELECT accepted_row_count FROM v_monitor.load_streams WHERE success = TRUE")
	if err != nil {
		t.Fatal(err)
	}
	var loaded int64
	for _, r := range res.Rows {
		loaded += r[0].I
	}
	if loaded != 500 {
		t.Errorf("load_streams accepted %d rows, want 500", loaded)
	}
	res, err = s.Execute("SELECT COUNT(*) FROM v_monitor.projection_storage WHERE anchor_table_name = 'd2'")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Value(); v.I != int64(h.cluster.NumNodes()) {
		t.Errorf("projection_storage rows for d2 = %d, want %d", v.I, h.cluster.NumNodes())
	}
}

// TestV2SJobTrace: a V2S load is one distributed trace — a v2s.job root
// opened by the driver at planning time, partition spans parented under it,
// and the engine's execute spans parented under the partitions — and
// v_monitor.job_traces rolls it up with the duration derived from the whole
// trace's extent (the root closes before the lazy tasks run).
func TestV2SJobTrace(t *testing.T) {
	h := obsHarness(t, 4, 2)
	h.seedTable(t, "traced", 400)
	h.cluster.Obs().Reset()

	const parts = 4
	df, err := h.sc.Read().Format(DefaultSourceName).Options(loadOpts(h, "traced", parts)).Load()
	if err != nil {
		t.Fatal(err)
	}
	if rows, err := df.Collect(); err != nil || len(rows) != 400 {
		t.Fatalf("collect: %d rows, err %v", len(rows), err)
	}

	spans := h.cluster.Obs().Spans()
	byID := make(map[uint64]obs.Span, len(spans))
	for _, sp := range spans {
		byID[sp.SpanID] = sp
	}
	roots := spansByName(h, "v2s.job")
	if len(roots) != 1 || !roots[0].Root() || !roots[0].OK() {
		t.Fatalf("v2s.job roots = %+v, want one clean root", roots)
	}
	root := roots[0]
	taskEnd := root.Start
	for _, sp := range spans {
		if sp.TraceID != root.TraceID {
			t.Fatalf("span %q escaped the trace: %+v", sp.Name, sp)
		}
		switch sp.Name {
		case "v2s.partition":
			if sp.ParentID != root.SpanID {
				t.Fatalf("partition span parented under %#x, want root %#x", sp.ParentID, root.SpanID)
			}
			if e := sp.Start.Add(sp.Duration); e.After(taskEnd) {
				taskEnd = e
			}
		case "execute":
			parent, ok := byID[sp.ParentID]
			if !ok {
				t.Fatalf("execute span has dangling parent %#x", sp.ParentID)
			}
			if parent.Name != "v2s.partition" && parent.Name != "v2s.job" {
				t.Fatalf("execute span parented under %q", parent.Name)
			}
		}
	}

	res := h.query(t, "SELECT job_type, duration_us, span_count, phase_count, success FROM v_monitor.job_traces")
	if len(res) != 1 || res[0][0].S != "v2s.job" {
		t.Fatalf("job_traces = %+v, want one v2s.job row", res)
	}
	if res[0][3].I != parts || !res[0][4].B {
		t.Fatalf("job_traces phases/success = %+v, want %d clean partitions", res[0], parts)
	}
	// Duration must cover the lazily-run tasks, not just the root's planning
	// window.
	if wantMin := taskEnd.Sub(root.Start).Microseconds(); res[0][1].I < wantMin {
		t.Fatalf("job_traces duration %dµs < trace extent %dµs", res[0][1].I, wantMin)
	}
}

// TestVMonitorUnderConcurrentJobs hammers the collector from concurrent V2S
// and S2V jobs while a monitor session reads the system tables — the -race
// guard for the whole observability path.
func TestVMonitorUnderConcurrentJobs(t *testing.T) {
	h := obsHarness(t, 4, 4)
	h.seedTable(t, "src", 300)

	done := make(chan struct{})
	var mon sync.WaitGroup
	mon.Add(1)
	go func() {
		defer mon.Done()
		s, err := h.cluster.Connect(1)
		if err != nil {
			t.Error(err)
			return
		}
		defer s.Close()
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, q := range []string{
				"SELECT COUNT(*) FROM v_monitor.query_requests",
				"SELECT COUNT(*) FROM v_monitor.load_streams",
				"SELECT COUNT(*) FROM v_monitor.resilience_events",
				"SELECT COUNT(*) FROM v_monitor.counters",
			} {
				if _, err := s.Execute(q); err != nil {
					t.Errorf("%s: %v", q, err)
					return
				}
			}
		}
	}()

	var jobs sync.WaitGroup
	for i := 0; i < 2; i++ {
		jobs.Add(2)
		go func() {
			defer jobs.Done()
			df, err := h.sc.Read().Format(DefaultSourceName).Options(loadOpts(h, "src", 4)).Load()
			if err != nil {
				t.Error(err)
				return
			}
			rows, err := df.Collect()
			if err != nil {
				t.Error(err)
				return
			}
			if len(rows) != 300 {
				t.Errorf("concurrent V2S returned %d rows, want 300", len(rows))
			}
		}()
		go func(i int) {
			defer jobs.Done()
			df := testDF(h, 200, 4)
			err := df.Write().Format(DefaultSourceName).
				Options(loadOpts(h, fmt.Sprintf("conc_out_%d", i), 4)).
				Mode(spark.SaveOverwrite).Save()
			if err != nil {
				t.Errorf("concurrent S2V: %v", err)
			}
		}(i)
	}
	jobs.Wait()
	close(done)
	mon.Wait()

	for i := 0; i < 2; i++ {
		if got := h.count(t, fmt.Sprintf("conc_out_%d", i)); got != 200 {
			t.Errorf("conc_out_%d has %d rows, want 200", i, got)
		}
	}
	if got := int(h.cluster.Obs().Counter("span.v2s.partition")); got != 8 {
		t.Errorf("v2s.partition span counter = %d, want 8", got)
	}
}

// TestS2VFailureSpanCompleteness: when an S2V job dies mid-protocol, every
// phase a task entered still closes its span — the failing phase carries the
// error, and the job's permanent status row records the failure.
func TestS2VFailureSpanCompleteness(t *testing.T) {
	h := newChaosHarness(t, 2, 2, 1, vertica.Config{})
	h.src.WithObserver(h.cluster.Obs())
	h.cluster.Obs().Reset()

	// Every task COPY stream is severed and the scheduler allows no retries:
	// the job must fail in phase 1.
	h.chaos.SeverCopyAfter("", 256, 8)
	df := testDF(h.harness, 2000, 2)
	err := df.Write().Format(DefaultSourceName).
		Options(fastRetry(loadOpts(h.harness, "doomed", 2))).
		Mode(spark.SaveOverwrite).Save()
	if err == nil {
		t.Fatal("severed COPY with no task retries should fail the job")
	}

	setup := spansByName(h.harness, "s2v.setup")
	if len(setup) != 1 || !setup[0].OK() {
		t.Fatalf("s2v.setup spans = %+v, want one clean span", setup)
	}
	p1 := spansByName(h.harness, "s2v.phase1")
	if len(p1) == 0 {
		t.Fatal("failed job recorded no s2v.phase1 spans")
	}
	failed := 0
	for _, sp := range p1 {
		if sp.Err != "" {
			failed++
		}
	}
	if failed == 0 {
		t.Fatalf("no phase1 span carries the failure: %+v", p1)
	}
	// No task got past staging, so the commit phases never opened spans.
	if got := spansByName(h.harness, "s2v.phase5"); len(got) != 0 {
		t.Errorf("phase5 spans on a job that died in phase1: %+v", got)
	}

	res := h.query(t, "SELECT status FROM "+JobStatusTable)
	if len(res) != 1 || res[0][0].S != "FAILED" {
		t.Errorf("job status rows = %+v, want one FAILED row", res)
	}
}

// TestResilienceEventsAfterInjectedFault: connection faults absorbed by the
// resilient pool surface as rows in v_monitor.resilience_events.
func TestResilienceEventsAfterInjectedFault(t *testing.T) {
	h := newChaosHarness(t, 4, 2, 4, vertica.Config{})
	h.src.WithObserver(h.cluster.Obs())
	h.seedTable(t, "rt", 200)
	h.cluster.Obs().Reset()

	h.chaos.RefuseConnect(h.host, 2)
	df, err := h.sc.Read().Format(DefaultSourceName).Options(fastRetry(loadOpts(h.harness, "rt", 2))).Load()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatalf("refused connects should be retried: %v", err)
	}
	if len(rows) != 200 {
		t.Fatalf("got %d rows, want 200", len(rows))
	}
	if got := len(h.chaos.Log()); got != 2 {
		t.Fatalf("chaos log = %v, want both refusals injected", h.chaos.Log())
	}

	res := h.query(t, "SELECT COUNT(*) FROM v_monitor.resilience_events WHERE event_type = 'conn_failure'")
	if res[0][0].I < 2 {
		t.Errorf("conn_failure events = %d, want >= 2", res[0][0].I)
	}
	res = h.query(t, "SELECT COUNT(*) FROM v_monitor.resilience_events WHERE event_type = 'retry'")
	if res[0][0].I == 0 {
		t.Error("no retry events recorded for the injected refusals")
	}
	if h.cluster.Obs().Counter("backoff") == 0 {
		t.Error("no backoff counter bumps for the injected refusals")
	}
}
