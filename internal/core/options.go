// Package core implements the paper's contribution: the Vertica connector
// for the Spark substrate. It provides V2S (§3.1) — parallel, data-locality-
// aware, epoch-consistent loads with filter/projection/count pushdown — S2V
// (§3.2) — exactly-once parallel saves through a five-phase staging-table
// protocol — and MD (§3.3) — PMML model deployment into the database for
// in-database scoring.
//
// The connector registers as a Spark data source under DefaultSourceName and
// is driven through the External Data Source API exactly as in Table 1 of
// the paper.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"vsfabric/internal/obs"
	"vsfabric/internal/resilience"
)

// DefaultSourceName is the format name the connector registers under,
// matching the paper's "com.vertica.spark.datasource.DefaultSource".
const DefaultSourceName = "com.vertica.spark.datasource.DefaultSource"

// ConnOptions are the settings shared by both connector directions: where to
// connect, how parallel to be, and how hard the resilience layer tries.
// Construct V2SOptions/S2VOptions through NewV2SOptions/NewS2VOptions, which
// validate; the External Data Source API's stringly map form is parsed by
// ParseV2SOptions/ParseS2VOptions, thin shims over the same constructors.
type ConnOptions struct {
	// Table is the target table (or, for loads, a view name).
	Table string
	// Host is the address of any one cluster node; the connector discovers
	// the rest from the system catalog (§3.2: "Although the user provides
	// only a single Vertica hostname to the API, all Vertica node IPs are
	// looked up during setup").
	Host string
	// User, Password and DB are accepted for API fidelity.
	User, Password, DB string
	// NumPartitions is the requested parallelism. For V2S it defaults to 16
	// (a practical value per §4.2); for S2V it defaults to the DataFrame's
	// current partitioning.
	NumPartitions int
	// Retry configures the resilience layer every connector connection goes
	// through: failover attempts, backoff, circuit breakers, per-operation
	// deadlines. The zero value uses resilience defaults.
	Retry resilience.Policy
	// Observer receives the connector-side trace: v2s.partition and
	// s2v.phase* spans plus every resilience event (retry, backoff, breaker
	// transitions, failover). Wire a vertica.Cluster's Obs() collector here
	// to surface them in v_monitor; nil records nothing. Only settable
	// programmatically (WithObserver or DefaultSource.WithObserver) — it has
	// no stringly form.
	Observer obs.Observer
}

// validate is the one shared validator behind both constructors.
func (c *ConnOptions) validate() error {
	if c.Table == "" {
		return errors.New(`core: option "table" is required`)
	}
	if c.Host == "" {
		return errors.New(`core: option "host" is required`)
	}
	if c.NumPartitions < 0 {
		return fmt.Errorf("core: numPartitions must be positive, got %d", c.NumPartitions)
	}
	return nil
}

// V2SOptions configure a load (V2S, the LOAD half of Table 1).
type V2SOptions struct {
	ConnOptions
	// DisableLocality turns off V2S's hash-ring locality (each task still
	// gets a unique range but connects to the "wrong" node), the ablation
	// for the §3.1.2 optimization. Option: disable_locality_optimization.
	DisableLocality bool
}

// S2VOptions configure a save (S2V, the SAVE half of Table 1).
type S2VOptions struct {
	ConnOptions
	// JobName names the S2V job in the permanent status table; the source
	// assigns one when empty.
	JobName string
	// FailedRowsPercentTolerance is S2V's rejected-row budget in [0,1]
	// (§3.2: "user control to specify a tolerance for the number of rows
	// rejected").
	FailedRowsPercentTolerance float64
	// CopyFormat selects the S2V task encoding: "avro" (default, §3.2.2) or
	// "csv" — the encoding ablation. Option: copy_format.
	CopyFormat string
}

func (o *S2VOptions) validate() error {
	if err := o.ConnOptions.validate(); err != nil {
		return err
	}
	if o.FailedRowsPercentTolerance < 0 || o.FailedRowsPercentTolerance > 1 {
		return fmt.Errorf("core: failedRowsPercentTolerance must be in [0,1], got %g", o.FailedRowsPercentTolerance)
	}
	switch o.CopyFormat {
	case "", "avro", "csv":
	default:
		return fmt.Errorf("core: bad copy_format %q (want avro or csv)", o.CopyFormat)
	}
	return nil
}

// Option is a functional option accepted by NewV2SOptions and NewS2VOptions.
// Shared options apply to either direction; direction-specific ones
// (WithoutLocality, WithJobName, ...) reject the wrong constructor with a
// clear error instead of being silently dropped.
type Option struct {
	v2s func(*V2SOptions) error
	s2v func(*S2VOptions) error
}

// connOption lifts a shared-field mutation into both directions.
func connOption(f func(*ConnOptions)) Option {
	return Option{
		v2s: func(o *V2SOptions) error { f(&o.ConnOptions); return nil },
		s2v: func(o *S2VOptions) error { f(&o.ConnOptions); return nil },
	}
}

// WithCredentials sets the user, password, and database name.
func WithCredentials(user, password, db string) Option {
	return connOption(func(c *ConnOptions) { c.User, c.Password, c.DB = user, password, db })
}

// WithPartitions requests n-way parallelism.
func WithPartitions(n int) Option {
	return connOption(func(c *ConnOptions) { c.NumPartitions = n })
}

// WithRetry installs a resilience policy.
func WithRetry(p resilience.Policy) Option {
	return connOption(func(c *ConnOptions) { c.Retry = p })
}

// WithObserver attaches an observer for connector spans and resilience
// events.
func WithObserver(o obs.Observer) Option {
	return connOption(func(c *ConnOptions) { c.Observer = o })
}

// WithoutLocality disables the §3.1.2 locality optimization (loads only).
func WithoutLocality() Option {
	return Option{
		v2s: func(o *V2SOptions) error { o.DisableLocality = true; return nil },
		s2v: func(*S2VOptions) error {
			return errors.New("core: disable_locality_optimization applies only to loads (V2S)")
		},
	}
}

func s2vOnly(name string, f func(*S2VOptions)) Option {
	return Option{
		v2s: func(*V2SOptions) error {
			return fmt.Errorf("core: %s applies only to saves (S2V)", name)
		},
		s2v: func(o *S2VOptions) error { f(o); return nil },
	}
}

// WithJobName names the save's row in the permanent job status table.
func WithJobName(name string) Option {
	return s2vOnly("jobName", func(o *S2VOptions) { o.JobName = name })
}

// WithTolerance sets the rejected-row budget in [0,1].
func WithTolerance(f float64) Option {
	return s2vOnly("failedRowsPercentTolerance", func(o *S2VOptions) { o.FailedRowsPercentTolerance = f })
}

// WithCopyFormat selects the task encoding, "avro" or "csv".
func WithCopyFormat(format string) Option {
	return s2vOnly("copy_format", func(o *S2VOptions) { o.CopyFormat = strings.ToLower(format) })
}

// NewV2SOptions builds validated load options.
func NewV2SOptions(table, host string, opts ...Option) (V2SOptions, error) {
	o := V2SOptions{ConnOptions: ConnOptions{Table: table, Host: host}}
	for _, op := range opts {
		if err := op.v2s(&o); err != nil {
			return o, err
		}
	}
	if err := o.ConnOptions.validate(); err != nil {
		return o, err
	}
	return o, nil
}

// NewS2VOptions builds validated save options.
func NewS2VOptions(table, host string, opts ...Option) (S2VOptions, error) {
	o := S2VOptions{ConnOptions: ConnOptions{Table: table, Host: host}, CopyFormat: "avro"}
	for _, op := range opts {
		if err := op.s2v(&o); err != nil {
			return o, err
		}
	}
	if err := o.validate(); err != nil {
		return o, err
	}
	return o, nil
}

// ---------------------------------------------------------------------------
// Stringly shims: the External Data Source API hands the connector a
// map[string]string (the `opts` of Table 1). These parse that map into the
// typed options above — all validation lives in the constructors; the shims
// only turn strings into values, with actionable errors naming the bad key.

// optLookup finds a key case-insensitively (the Spark options map convention).
func optLookup(m map[string]string, k string) string {
	for mk, v := range m {
		if strings.EqualFold(mk, k) {
			return v
		}
	}
	return ""
}

// parseCommon converts the shared string options into functional options.
func parseCommon(m map[string]string) (table, host string, opts []Option, err error) {
	table = optLookup(m, "table")
	host = optLookup(m, "host")
	if u, p, db := optLookup(m, "user"), optLookup(m, "password"), optLookup(m, "db"); u != "" || p != "" || db != "" {
		opts = append(opts, WithCredentials(u, p, db))
	}
	if v := optLookup(m, "numpartitions"); v != "" {
		n, convErr := strconv.Atoi(v)
		if convErr != nil || n <= 0 {
			return table, host, opts, fmt.Errorf("core: bad numPartitions %q", v)
		}
		opts = append(opts, WithPartitions(n))
	}
	var pol resilience.Policy
	havePol := false
	if v := optLookup(m, "retry_attempts"); v != "" {
		n, convErr := strconv.Atoi(v)
		if convErr != nil || n <= 0 {
			return table, host, opts, fmt.Errorf("core: bad retry_attempts %q", v)
		}
		pol.MaxAttempts, havePol = n, true
	}
	if v := optLookup(m, "retry_backoff_ms"); v != "" {
		n, convErr := strconv.Atoi(v)
		if convErr != nil || n <= 0 {
			return table, host, opts, fmt.Errorf("core: bad retry_backoff_ms %q", v)
		}
		pol.BaseBackoff, havePol = time.Duration(n)*time.Millisecond, true
	}
	if v := optLookup(m, "op_timeout_ms"); v != "" {
		n, convErr := strconv.Atoi(v)
		if convErr != nil || n <= 0 {
			return table, host, opts, fmt.Errorf("core: bad op_timeout_ms %q", v)
		}
		pol.OpTimeout, havePol = time.Duration(n)*time.Millisecond, true
	}
	if havePol {
		opts = append(opts, WithRetry(pol))
	}
	return table, host, opts, nil
}

// ParseV2SOptions parses the map form of load options.
func ParseV2SOptions(m map[string]string) (V2SOptions, error) {
	table, host, opts, err := parseCommon(m)
	if err != nil {
		return V2SOptions{}, err
	}
	if v := optLookup(m, "disable_locality_optimization"); v != "" {
		b, convErr := strconv.ParseBool(v)
		if convErr != nil {
			return V2SOptions{}, fmt.Errorf("core: bad disable_locality_optimization %q", v)
		}
		if b {
			opts = append(opts, WithoutLocality())
		}
	}
	return NewV2SOptions(table, host, opts...)
}

// ParseS2VOptions parses the map form of save options.
func ParseS2VOptions(m map[string]string) (S2VOptions, error) {
	table, host, opts, err := parseCommon(m)
	if err != nil {
		return S2VOptions{}, err
	}
	if v := optLookup(m, "jobname"); v != "" {
		opts = append(opts, WithJobName(v))
	}
	if v := optLookup(m, "failedrowspercenttolerance"); v != "" {
		f, convErr := strconv.ParseFloat(v, 64)
		if convErr != nil || f < 0 || f > 1 {
			return S2VOptions{}, fmt.Errorf("core: bad failedRowsPercentTolerance %q (want [0,1])", v)
		}
		opts = append(opts, WithTolerance(f))
	}
	if v := optLookup(m, "copy_format"); v != "" {
		opts = append(opts, WithCopyFormat(v))
	}
	return NewS2VOptions(table, host, opts...)
}
