// Package core implements the paper's contribution: the Vertica connector
// for the Spark substrate. It provides V2S (§3.1) — parallel, data-locality-
// aware, epoch-consistent loads with filter/projection/count pushdown — S2V
// (§3.2) — exactly-once parallel saves through a five-phase staging-table
// protocol — and MD (§3.3) — PMML model deployment into the database for
// in-database scoring.
//
// The connector registers as a Spark data source under DefaultSourceName and
// is driven through the External Data Source API exactly as in Table 1 of
// the paper.
package core

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"vsfabric/internal/resilience"
)

// DefaultSourceName is the format name the connector registers under,
// matching the paper's "com.vertica.spark.datasource.DefaultSource".
const DefaultSourceName = "com.vertica.spark.datasource.DefaultSource"

// Options are the key=value options of the External Data Source API calls
// (the `opts` of Table 1).
type Options struct {
	// Table is the target table (or, for loads, a view name).
	Table string
	// Host is the address of any one cluster node; the connector discovers
	// the rest from the system catalog (§3.2: "Although the user provides
	// only a single Vertica hostname to the API, all Vertica node IPs are
	// looked up during setup").
	Host string
	// User, Password and DB are accepted for API fidelity.
	User, Password, DB string
	// NumPartitions is the requested parallelism. For V2S it defaults to 16
	// (a practical value per §4.2); for S2V it defaults to the DataFrame's
	// current partitioning.
	NumPartitions int
	// FailedRowsPercentTolerance is S2V's rejected-row budget in [0,1]
	// (§3.2: "user control to specify a tolerance for the number of rows
	// rejected").
	FailedRowsPercentTolerance float64
	// JobName optionally names the S2V job in the permanent status table.
	JobName string
	// DisableLocality turns off V2S's hash-ring locality (each task still
	// gets a unique range but connects to the "wrong" node), the ablation
	// for the §3.1.2 optimization. Option: disable_locality_optimization.
	DisableLocality bool
	// CopyFormat selects the S2V task encoding: "avro" (default, §3.2.2) or
	// "csv" — the encoding ablation. Option: copy_format.
	CopyFormat string
	// Retry configures the resilience layer every connector connection goes
	// through: failover attempts, backoff, circuit breakers, per-operation
	// deadlines. The zero value uses resilience defaults. Options:
	// retry_attempts, retry_backoff_ms, op_timeout_ms.
	Retry resilience.Policy
}

// ParseOptions validates and extracts connector options.
func ParseOptions(m map[string]string) (Options, error) {
	o := Options{NumPartitions: 0, FailedRowsPercentTolerance: 0}
	get := func(k string) string {
		for mk, v := range m {
			if strings.EqualFold(mk, k) {
				return v
			}
		}
		return ""
	}
	o.Table = get("table")
	o.Host = get("host")
	o.User = get("user")
	o.Password = get("password")
	o.DB = get("db")
	o.JobName = get("jobname")
	if o.Table == "" {
		return o, fmt.Errorf("core: option \"table\" is required")
	}
	if o.Host == "" {
		return o, fmt.Errorf("core: option \"host\" is required")
	}
	if v := get("numpartitions"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return o, fmt.Errorf("core: bad numPartitions %q", v)
		}
		o.NumPartitions = n
	}
	if v := get("disable_locality_optimization"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return o, fmt.Errorf("core: bad disable_locality_optimization %q", v)
		}
		o.DisableLocality = b
	}
	switch cf := strings.ToLower(get("copy_format")); cf {
	case "", "avro":
		o.CopyFormat = "avro"
	case "csv":
		o.CopyFormat = "csv"
	default:
		return o, fmt.Errorf("core: bad copy_format %q (want avro or csv)", cf)
	}
	if v := get("retry_attempts"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return o, fmt.Errorf("core: bad retry_attempts %q", v)
		}
		o.Retry.MaxAttempts = n
	}
	if v := get("retry_backoff_ms"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return o, fmt.Errorf("core: bad retry_backoff_ms %q", v)
		}
		o.Retry.BaseBackoff = time.Duration(n) * time.Millisecond
	}
	if v := get("op_timeout_ms"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return o, fmt.Errorf("core: bad op_timeout_ms %q", v)
		}
		o.Retry.OpTimeout = time.Duration(n) * time.Millisecond
	}
	if v := get("failedrowspercenttolerance"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			return o, fmt.Errorf("core: bad failedRowsPercentTolerance %q (want [0,1])", v)
		}
		o.FailedRowsPercentTolerance = f
	}
	return o, nil
}
