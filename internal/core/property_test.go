package core

import (
	"fmt"
	"math/rand"
	"testing"

	"vsfabric/internal/spark"
	"vsfabric/internal/types"
)

// TestS2VExactlyOnceRandomFailures is the adversarial property test for the
// five-phase protocol: random failure schedules — arbitrary tasks killed at
// arbitrary phase boundaries on arbitrary attempts, plus random speculative
// duplicates — must never produce a partial or duplicate load. Every seed is
// deterministic, so a failing seed reproduces exactly.
func TestS2VExactlyOnceRandomFailures(t *testing.T) {
	checkpoints := []string{
		"s2v.task_start",
		"s2v.phase1.before_copy",
		"s2v.phase1.after_copy",
		"s2v.phase1.after_commit",
		"s2v.phase2.all_done",
		"s2v.phase3.after",
		"s2v.phase5.before_commit",
		"s2v.phase5.after_commit",
	}
	const trials = 25
	for seed := 0; seed < trials; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			parts := 2 + rng.Intn(7)
			rows := 100 + rng.Intn(400)
			inj := spark.NewFailureInjector()
			// Up to 3 injected failures; attempts 0-1 so the task always
			// has retries left (MaxTaskFailures is 4).
			for i := 0; i < 1+rng.Intn(3); i++ {
				inj.FailTaskAt(rng.Intn(parts), rng.Intn(2), checkpoints[rng.Intn(len(checkpoints))], 1)
			}
			for i := 0; i < rng.Intn(3); i++ {
				inj.Speculate(rng.Intn(parts))
			}
			h := newHarness(t, 1+rng.Intn(4), 1+rng.Intn(4), inj)
			df := testDF(h, rows, parts)
			err := saveDF(t, h, df, spark.SaveOverwrite, "target", parts, map[string]string{
				"jobname": fmt.Sprintf("prop_%d", seed),
			})
			if err != nil {
				t.Fatalf("save: %v (injected: %v)", err, inj.Log())
			}
			if got := h.count(t, "target"); got != int64(rows) {
				t.Fatalf("rows = %d, want %d (injected: %v)", got, rows, inj.Log())
			}
			wantSum := float64(rows*(rows-1))/2 + 0.25*float64(rows)
			if got := h.sumCol(t, "target", "val"); got != wantSum {
				t.Fatalf("sum = %v, want %v — duplicate or partial load (injected: %v)", got, wantSum, inj.Log())
			}
		})
	}
}

// TestS2VAppendExactlyOnceRandomFailures covers the append-mode commit path
// (INSERT..SELECT inside the phase-5 transaction) under the same adversary.
func TestS2VAppendExactlyOnceRandomFailures(t *testing.T) {
	checkpoints := []string{
		"s2v.phase1.after_copy", "s2v.phase1.after_commit",
		"s2v.phase5.before_commit", "s2v.phase5.after_commit",
	}
	for seed := 0; seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + seed)))
			parts := 2 + rng.Intn(5)
			rows := 100 + rng.Intn(200)
			inj := spark.NewFailureInjector()
			inj.FailTaskAt(rng.Intn(parts), 0, checkpoints[rng.Intn(len(checkpoints))], 1)
			if rng.Intn(2) == 0 {
				inj.Speculate(rng.Intn(parts))
			}
			h := newHarness(t, 4, 2, inj)
			h.sql(t, "CREATE TABLE target (id INTEGER, val FLOAT) SEGMENTED BY HASH(id)",
				"INSERT INTO target VALUES (1000000, 0.5)")
			err := saveDF(t, h, testDF(h, rows, parts), spark.SaveAppend, "target", parts, map[string]string{
				"jobname": fmt.Sprintf("prop_append_%d", seed),
			})
			if err != nil {
				t.Fatalf("append: %v (injected: %v)", err, inj.Log())
			}
			if got := h.count(t, "target"); got != int64(rows)+1 {
				t.Fatalf("rows = %d, want %d (injected: %v)", got, rows+1, inj.Log())
			}
		})
	}
}

// TestV2SExactlyOnceRandomShapes: arbitrary cluster shapes, partition counts
// and retry schedules must load every row exactly once at one epoch.
func TestV2SExactlyOnceRandomShapes(t *testing.T) {
	for seed := 0; seed < 15; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(2000 + seed)))
			vNodes := 1 + rng.Intn(6)
			parts := 1 + rng.Intn(40)
			rows := 50 + rng.Intn(500)
			inj := spark.NewFailureInjector()
			for i := 0; i < rng.Intn(3); i++ {
				inj.FailTaskAt(rng.Intn(parts), 0, "v2s.task_start", 1)
			}
			h := newHarness(t, vNodes, 1+rng.Intn(3), inj)
			h.seedTable(t, "d1", rows)
			df, err := h.sc.Read().Format(DefaultSourceName).Options(loadOpts(h, "d1", parts)).Load()
			if err != nil {
				t.Fatal(err)
			}
			got, err := df.Collect()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != rows {
				t.Fatalf("nodes=%d parts=%d: got %d rows, want %d", vNodes, parts, len(got), rows)
			}
			seen := make(map[int64]bool, rows)
			for _, r := range got {
				if seen[r[0].I] {
					t.Fatalf("duplicate id %d (nodes=%d parts=%d)", r[0].I, vNodes, parts)
				}
				seen[r[0].I] = true
			}
		})
	}
}

// TestConcurrentS2VJobs: two independent saves into different tables share
// the permanent status table and the cluster without interfering.
func TestConcurrentS2VJobs(t *testing.T) {
	h := newHarness(t, 4, 4, nil)
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			df := testDF(h, 300, 4)
			errs <- saveDF(t, h, df, spark.SaveOverwrite, fmt.Sprintf("t%d", i), 4, map[string]string{
				"jobname": fmt.Sprintf("conc_%d", i),
			})
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if h.count(t, "t0") != 300 || h.count(t, "t1") != 300 {
		t.Error("concurrent jobs corrupted each other")
	}
	s, _ := h.cluster.Connect(0)
	defer s.Close()
	res, err := s.Execute("SELECT COUNT(*) FROM s2v_job_status WHERE status = 'SUCCESS'")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Value(); v.I != 2 {
		t.Errorf("job records = %v, want 2", v)
	}
}

// TestV2SSchemaTypesPreserved: every supported column type round-trips
// through S2V (Avro) and V2S (text wire) unchanged.
func TestV2SSchemaTypesPreserved(t *testing.T) {
	h := newHarness(t, 2, 2, nil)
	schema := types.NewSchema(
		types.Column{Name: "i", T: types.Int64},
		types.Column{Name: "f", T: types.Float64},
		types.Column{Name: "s", T: types.Varchar},
		types.Column{Name: "b", T: types.Bool},
	)
	rows := []types.Row{
		{types.IntValue(-5), types.FloatValue(2.5), types.StringValue("héllo, world"), types.BoolValue(true)},
		{types.NullValue(types.Int64), types.NullValue(types.Float64), types.NullValue(types.Varchar), types.NullValue(types.Bool)},
		{types.IntValue(1 << 60), types.FloatValue(-0.001), types.StringValue(""), types.BoolValue(false)},
	}
	df := spark.CreateDataFrame(h.sc, schema, rows, 2)
	if err := saveDF(t, h, df, spark.SaveOverwrite, "alltypes", 2, nil); err != nil {
		t.Fatal(err)
	}
	back, err := h.sc.Read().Format(DefaultSourceName).Options(loadOpts(h, "alltypes", 2)).Load()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Schema().Equal(schema) {
		t.Fatalf("schema round trip: %v", back.Schema())
	}
	got, err := back.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("rows = %d", len(got))
	}
	matched := 0
	for _, want := range rows {
		for _, g := range got {
			same := true
			for c := range want {
				if want[c].Null != g[c].Null || (!want[c].Null && types.Compare(want[c], g[c]) != 0) {
					same = false
					break
				}
			}
			if same {
				matched++
				break
			}
		}
	}
	if matched != len(rows) {
		t.Errorf("only %d/%d rows survived the round trip: %v", matched, len(rows), got)
	}
}
