package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"vsfabric/internal/avro"
	"vsfabric/internal/client"
	"vsfabric/internal/obs"
	"vsfabric/internal/resilience"
	"vsfabric/internal/sim"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
)

// JobStatusTable is the permanent record of every S2V job (§3.2: "This table
// serves as a record of all S2V jobs and is not deleted upon termination"),
// the table a user consults after a total Spark failure.
const JobStatusTable = "s2v_job_status"

// ErrToleranceExceeded reports that more rows were rejected than the user's
// failedRowsPercentTolerance allows; the save is marked FAILED and the
// target table is untouched.
var ErrToleranceExceeded = errors.New("core: rejected rows exceed failedRowsPercentTolerance")

// s2vWriter runs one S2V job (§3.2).
type s2vWriter struct {
	pool client.Connector
	// rpool wraps pool with failover/backoff; built once per run, its host
	// set is installed after setup discovers the cluster layout.
	rpool *resilience.ResilientConnector
	opts  S2VOptions
	mode  spark.SaveMode

	staging   string
	status    string
	committer string
	addrs     []string
	schema    types.Schema
	// jobSC is the root s2v.job span's identity; every task parents its
	// phase spans (and, through them, the engine spans on whichever node the
	// task connected to) under it.
	jobSC obs.SpanContext
}

// taskReport is what each partition's task returns to the driver.
type taskReport struct {
	Loaded         int64
	Rejected       int64
	RejectedSample []string
}

// run opens the job's root trace span and executes setup, the parallel
// five-phase task protocol, and teardown under it. The root span covers the
// whole job wall-clock — S2V is synchronous — and closes with the job's
// outcome.
func (w *s2vWriter) run(sc *spark.Context, df *spark.DataFrame) error {
	job := obs.Start(w.opts.Observer, "s2v.job", "driver")
	job.SetDetail(fmt.Sprintf("job %s -> %s", w.opts.JobName, w.opts.Table))
	w.jobSC = job.SpanContext()
	err := w.runJob(sc, df)
	job.End(err)
	return err
}

// runJob executes setup, the parallel five-phase task protocol, and teardown.
func (w *s2vWriter) runJob(sc *spark.Context, df *spark.DataFrame) error {
	trace := sc.Conf().Trace
	setupRec := trace.Task("driver-00-setup", "")
	setupCtx := obs.WithPeer(obs.With(context.Background(), sim.Recorder{Rec: setupRec}), "driver")
	setupCtx = obs.WithSpanContext(setupCtx, w.jobSC)

	w.rpool = resilience.NewResilient(w.pool, nil, w.opts.Retry)
	w.rpool.SetObserver(w.opts.Observer)
	// The driver connection is self-healing: a connection dropped at a phase
	// boundary (between statements) is re-dialed — failing over to another
	// node — and the statement retried. Every driver statement is autocommit
	// and either idempotent or guarded (DROP IF EXISTS, conditional UPDATE),
	// so a retry after a pre-execution drop cannot double-apply.
	conn := resilience.NewDriverConn(w.rpool, w.opts.Host)
	defer conn.Close()

	if w.opts.NumPartitions > 0 {
		rep, err := df.Repartition(w.opts.NumPartitions)
		if err != nil {
			return err
		}
		df = rep
	}
	rdd, err := df.RDD()
	if err != nil {
		return err
	}
	nParts := rdd.NumPartitions()
	w.schema = df.Schema()

	sp := obs.StartChild(setupCtx, w.opts.Observer, "s2v.setup", "driver")
	sp.SetDetail(w.opts.JobName)
	err = w.setup(obs.WithSpan(setupCtx, sp), conn, nParts)
	sp.End(err)
	if err != nil {
		return err
	}

	reports := spark.MapPartitions(rdd, func(tc *spark.TaskContext, p int, rows []types.Row) ([]taskReport, error) {
		rep, err := w.runTask(tc, p, rows)
		if err != nil {
			return nil, err
		}
		return []taskReport{rep}, nil
	})
	_, jobErr := reports.Collect()

	teardownRec := trace.Task("driver-99-teardown", "")
	teardownCtx := obs.WithPeer(obs.With(context.Background(), sim.Recorder{Rec: teardownRec}), "driver")
	teardownCtx = obs.WithSpanContext(teardownCtx, w.jobSC)
	if jobErr != nil {
		// Total failure or a task out of retries: the staging table is
		// abandoned, the target is untouched, and the permanent status
		// table records the failure (best effort — if Vertica is also gone
		// the row simply stays unfinished, §3.2).
		w.markFailed(teardownCtx, conn)
		w.dropTemp(teardownCtx, conn, true)
		return fmt.Errorf("core: S2V job %q failed: %w", w.opts.JobName, jobErr)
	}

	// The job's tasks all completed; the last committer has decided the
	// outcome. Read it back and clean up.
	res, err := conn.Execute(teardownCtx, fmt.Sprintf(
		"SELECT status, failed_rows_percent FROM %s WHERE job_name = '%s'", JobStatusTable, sqlEscape(w.opts.JobName)))
	if err != nil {
		return err
	}
	if len(res.Rows) != 1 {
		return fmt.Errorf("core: job %q missing from %s", w.opts.JobName, JobStatusTable)
	}
	status, pct := res.Rows[0][0].S, res.Rows[0][1].F
	w.dropTemp(teardownCtx, conn, status != "SUCCESS")
	if status != "SUCCESS" {
		return fmt.Errorf("%w: %.4f%% rejected (job %q)", ErrToleranceExceeded, pct*100, w.opts.JobName)
	}
	return nil
}

// setup creates the staging table, the three bookkeeping tables, and the
// per-task status rows (§3.2: "3 temporary tables, and 1 permanent table").
func (w *s2vWriter) setup(ctx context.Context, conn client.Conn, nParts int) error {
	job := sanitizeIdent(w.opts.JobName)
	w.staging = "s2v_stage_" + job
	w.status = "s2v_task_status_" + job
	w.committer = "s2v_last_committer_" + job

	targetExists, err := w.tableExists(ctx, conn, w.opts.Table)
	if err != nil {
		return err
	}
	switch w.mode {
	case spark.SaveErrorIfExists:
		if targetExists {
			return fmt.Errorf("core: table %q already exists (mode: errorIfExists)", w.opts.Table)
		}
	case spark.SaveAppend:
		if !targetExists {
			return fmt.Errorf("core: table %q does not exist (mode: append)", w.opts.Table)
		}
		lay, err := discoverLayout(ctx, conn, w.opts.Table)
		if err != nil {
			return err
		}
		if !lay.schema.Equal(w.schema) {
			return fmt.Errorf("core: DataFrame schema %s does not match target %s", w.schema, lay.schema)
		}
	case spark.SaveOverwrite:
		// Always allowed; the commit swaps staging over the target.
	}

	for _, stmt := range []string{
		fmt.Sprintf("DROP TABLE IF EXISTS %s", w.staging),
		fmt.Sprintf("DROP TABLE IF EXISTS %s", w.status),
		fmt.Sprintf("DROP TABLE IF EXISTS %s", w.committer),
	} {
		if _, err := conn.Execute(ctx, stmt); err != nil {
			return err
		}
	}
	stagingDDL := fmt.Sprintf("CREATE TEMP TABLE %s %s", w.staging, ddlColumns(w.schema))
	if w.mode == spark.SaveAppend {
		// Staging mirrors the target's definition so the final
		// INSERT..SELECT is segment-aligned.
		stagingDDL = fmt.Sprintf("CREATE TEMP TABLE %s LIKE %s", w.staging, w.opts.Table)
	}
	ddl := []string{
		stagingDDL,
		fmt.Sprintf("CREATE TEMP TABLE %s (task_id INTEGER, rows_inserted INTEGER, rows_rejected INTEGER, done BOOLEAN) UNSEGMENTED ALL NODES", w.status),
		fmt.Sprintf("CREATE TEMP TABLE %s (task_id INTEGER) UNSEGMENTED ALL NODES", w.committer),
		fmt.Sprintf("CREATE TABLE IF NOT EXISTS %s (job_name VARCHAR, failed_rows_percent FLOAT, finished BOOLEAN, status VARCHAR) UNSEGMENTED ALL NODES", JobStatusTable),
		fmt.Sprintf("INSERT INTO %s VALUES (-1)", w.committer),
		fmt.Sprintf("INSERT INTO %s VALUES ('%s', 0.0, FALSE, 'RUNNING')", JobStatusTable, sqlEscape(w.opts.JobName)),
	}
	var taskRows []string
	for p := 0; p < nParts; p++ {
		taskRows = append(taskRows, fmt.Sprintf("(%d, 0, 0, FALSE)", p))
	}
	ddl = append(ddl, fmt.Sprintf("INSERT INTO %s VALUES %s", w.status, strings.Join(taskRows, ", ")))
	for _, stmt := range ddl {
		if _, err := conn.Execute(ctx, stmt); err != nil {
			return err
		}
	}

	lay, err := discoverLayout(ctx, conn, w.staging)
	if err != nil {
		return err
	}
	w.addrs = lay.addrs
	// From here on, task and driver reconnects can fail over cluster-wide.
	w.rpool.SetHosts(w.addrs)
	return nil
}

// phaseSpan opens one "s2v.phaseN" span for a task, parented under the span
// context carried by ctx (the root s2v.job span). Every phase a task enters
// gets exactly one span, and the span closes with that phase's error — the
// contract the observability tests pin down.
func (w *s2vWriter) phaseSpan(ctx context.Context, name string, tc *spark.TaskContext, p int) *obs.ActiveSpan {
	sp := obs.StartChild(ctx, w.opts.Observer, name, tc.ExecNode)
	sp.SetDetail(fmt.Sprintf("job %s task %d attempt %d", w.opts.JobName, p, tc.Attempt))
	return sp
}

// runTask is one task attempt's walk through the five phases of Figure 5.
// It is safe to run any number of times for the same partition, concurrently
// or after failures at any point — the status tables arbitrate.
func (w *s2vWriter) runTask(tc *spark.TaskContext, p int, rows []types.Row) (taskReport, error) {
	var rep taskReport
	if err := tc.Checkpoint("s2v.task_start"); err != nil {
		return rep, err
	}
	// The task joins the job's trace: status queries parent directly under the
	// root s2v.job span, and each phase body runs under its own phase span so
	// the engine spans it triggers (on whichever node, local or remote) nest
	// correctly.
	ctx := obs.WithSpanContext(taskCtx(tc), w.jobSC)
	// Balance connections across the cluster; retries shift to another node
	// so a single bad node cannot wedge a task. The resilient pool adds
	// connect-level failover underneath: a refused or down node costs a
	// backoff, not a whole task attempt.
	addr := w.addrs[(p+tc.Attempt)%len(w.addrs)]
	conn, err := w.rpool.Connect(ctx, addr)
	if err != nil {
		return rep, err
	}
	defer conn.Close()

	// A restarted attempt first inquires the state of progress (§3.2: tasks
	// "utilize these tables to inquire the state of progress of all other
	// tasks"). If the job already committed, the staging table is gone and
	// there is nothing left to do; if this task's earlier attempt already
	// saved its data, skip straight to phase 2.
	res0, err := conn.Execute(ctx, fmt.Sprintf(
		"SELECT finished FROM %s WHERE job_name = '%s'", JobStatusTable, sqlEscape(w.opts.JobName)))
	if err != nil {
		return rep, err
	}
	if len(res0.Rows) == 1 && res0.Rows[0][0].AsBool() {
		return rep, nil
	}
	res0, err = conn.Execute(ctx, fmt.Sprintf(
		"SELECT done FROM %s WHERE task_id = %d", w.status, p))
	if err != nil {
		return rep, err
	}
	alreadyDone := len(res0.Rows) == 1 && res0.Rows[0][0].AsBool()

	// ---- Phase 1: save this partition into the staging table and flip the
	// task's done flag, both under one transaction.
	if !alreadyDone {
		sp := w.phaseSpan(ctx, "s2v.phase1", tc, p)
		err := w.phase1(obs.WithSpan(ctx, sp), tc, conn, p, rows, &rep)
		sp.AddRows(rep.Loaded)
		sp.AddRejected(rep.Rejected)
		sp.End(err)
		if err != nil {
			return rep, err
		}
	}

	// ---- Phase 2: are all tasks done?
	sp := w.phaseSpan(ctx, "s2v.phase2", tc, p)
	notDone, err := w.phase2(obs.WithSpan(ctx, sp), conn)
	sp.End(err)
	if err != nil {
		return rep, err
	}
	if notDone > 0 {
		return rep, nil // someone else will commit
	}
	if err := tc.Checkpoint("s2v.phase2.all_done"); err != nil {
		return rep, err
	}

	// ---- Phase 3: race to become the last committer (leader election via
	// conditional update).
	sp = w.phaseSpan(ctx, "s2v.phase3", tc, p)
	err = w.phase3(obs.WithSpan(ctx, sp), conn, p)
	sp.End(err)
	if err != nil {
		return rep, err
	}
	if err := tc.Checkpoint("s2v.phase3.after"); err != nil {
		return rep, err
	}

	// ---- Phase 4: did this task win?
	sp = w.phaseSpan(ctx, "s2v.phase4", tc, p)
	winner, err := w.phase4(obs.WithSpan(ctx, sp), conn)
	sp.End(err)
	if err != nil {
		return rep, err
	}
	if winner != int64(p) {
		return rep, nil
	}

	// ---- Phase 5: the last committer checks the tolerance and atomically
	// publishes staging into the target together with the final status.
	sp = w.phaseSpan(ctx, "s2v.phase5", tc, p)
	err = w.phase5(obs.WithSpan(ctx, sp), tc, conn)
	sp.End(err)
	return rep, err
}

// phase2 counts the tasks that have not yet staged their data.
func (w *s2vWriter) phase2(ctx context.Context, conn client.Conn) (int64, error) {
	res, err := conn.Execute(ctx, fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE done = FALSE", w.status))
	if err != nil {
		return 0, err
	}
	return singleInt(res)
}

// phase3 races to claim the committer slot via a conditional update.
func (w *s2vWriter) phase3(ctx context.Context, conn client.Conn, p int) error {
	if _, err := conn.Execute(ctx, "BEGIN"); err != nil {
		return err
	}
	res, err := conn.Execute(ctx, fmt.Sprintf(
		"UPDATE %s SET task_id = %d WHERE task_id = -1", w.committer, p))
	if err != nil {
		return err
	}
	if res.RowsAffected == 1 {
		_, err = conn.Execute(ctx, "COMMIT")
		return err
	}
	_, err = conn.Execute(ctx, "ROLLBACK")
	return err
}

// phase4 reads back which task won the committer election.
func (w *s2vWriter) phase4(ctx context.Context, conn client.Conn) (int64, error) {
	res, err := conn.Execute(ctx, fmt.Sprintf("SELECT task_id FROM %s", w.committer))
	if err != nil {
		return 0, err
	}
	return singleInt(res)
}

// phase5 is the last committer's publish: tolerance check, then an atomic
// status flip together with the staging-into-target move.
func (w *s2vWriter) phase5(ctx context.Context, tc *spark.TaskContext, conn client.Conn) error {
	res, err := conn.Execute(ctx, fmt.Sprintf(
		"SELECT SUM(rows_inserted), SUM(rows_rejected) FROM %s", w.status))
	if err != nil {
		return err
	}
	inserted := res.Rows[0][0].AsFloat()
	rejected := res.Rows[0][1].AsFloat()
	pct := 0.0
	if inserted+rejected > 0 {
		pct = rejected / (inserted + rejected)
	}
	if err := tc.Checkpoint("s2v.phase5.before_commit"); err != nil {
		return err
	}
	if pct > w.opts.FailedRowsPercentTolerance {
		_, err := conn.Execute(ctx, fmt.Sprintf(
			"UPDATE %s SET finished = TRUE, failed_rows_percent = %g, status = 'FAILED' WHERE job_name = '%s' AND finished = FALSE",
			JobStatusTable, pct, sqlEscape(w.opts.JobName)))
		return err // driver surfaces the FAILED status
	}
	if _, err := conn.Execute(ctx, "BEGIN"); err != nil {
		return err
	}
	res, err = conn.Execute(ctx, fmt.Sprintf(
		"UPDATE %s SET finished = TRUE, failed_rows_percent = %g, status = 'SUCCESS' WHERE job_name = '%s' AND finished = FALSE",
		JobStatusTable, pct, sqlEscape(w.opts.JobName)))
	if err != nil {
		return err
	}
	if res.RowsAffected != 1 {
		// A duplicate (or an earlier attempt of this very task) already
		// committed; nothing left to do.
		_, err := conn.Execute(ctx, "ROLLBACK")
		return err
	}
	if w.mode == spark.SaveAppend {
		// One atomic server-side move of the staging data (§5 discusses its
		// cost; the transaction keeps it exactly-once).
		if _, err := conn.Execute(ctx, fmt.Sprintf("INSERT INTO %s SELECT * FROM %s", w.opts.Table, w.staging)); err != nil {
			return err
		}
	} else {
		// Overwrite: the staging table atomically becomes the target.
		if _, err := conn.Execute(ctx, fmt.Sprintf("DROP TABLE IF EXISTS %s", w.opts.Table)); err != nil {
			return err
		}
		if _, err := conn.Execute(ctx, fmt.Sprintf("ALTER TABLE %s RENAME TO %s", w.staging, w.opts.Table)); err != nil {
			return err
		}
	}
	if _, err := conn.Execute(ctx, "COMMIT"); err != nil {
		return err
	}
	return tc.Checkpoint("s2v.phase5.after_commit")
}

// phase1 copies the partition into the staging table and flips this task's
// done flag, both in one transaction. A duplicate that loses the conditional
// update aborts, discarding its copy.
func (w *s2vWriter) phase1(ctx context.Context, tc *spark.TaskContext, conn client.Conn, p int, rows []types.Row, rep *taskReport) error {
	if _, err := conn.Execute(ctx, "BEGIN"); err != nil {
		return err
	}
	if err := tc.Checkpoint("s2v.phase1.before_copy"); err != nil {
		return err
	}
	format := "AVRO"
	if w.opts.CopyFormat == "csv" {
		format = "CSV"
	}
	cs := client.NewCopyStream(ctx, conn, fmt.Sprintf(
		"COPY %s FROM STDIN FORMAT %s DIRECT REJECTMAX %d", w.staging, format, int64(1)<<40))
	if err := w.encodeRows(cs, rows); err != nil {
		// Abort reports the load's root cause (e.g. the server severing the
		// stream) which subsumes the local write error.
		if rootErr := cs.Abort(err); rootErr != nil {
			return rootErr
		}
		return err
	}
	cres, err := cs.Finish()
	if err != nil {
		return err
	}
	rep.Loaded, rep.Rejected = cres.Copy.Loaded, cres.Copy.Rejected
	rep.RejectedSample = cres.Copy.RejectedSample
	if err := tc.Checkpoint("s2v.phase1.after_copy"); err != nil {
		return err
	}
	res, err := conn.Execute(ctx, fmt.Sprintf(
		"UPDATE %s SET done = TRUE, rows_inserted = %d, rows_rejected = %d WHERE task_id = %d AND done = FALSE",
		w.status, rep.Loaded, rep.Rejected, p))
	if err != nil {
		return err
	}
	if res.RowsAffected == 1 {
		if _, err := conn.Execute(ctx, "COMMIT"); err != nil {
			return err
		}
	} else {
		// A duplicate of this task already saved its data; abort discards
		// this attempt's copy so nothing is staged twice.
		if _, err := conn.Execute(ctx, "ROLLBACK"); err != nil {
			return err
		}
		rep.Loaded, rep.Rejected = 0, 0
	}
	return tc.Checkpoint("s2v.phase1.after_commit")
}

// encodeRows streams the partition's rows in the configured task encoding:
// Avro object-container blocks with deflate (§3.2.2) or CSV lines (the
// encoding ablation).
func (w *s2vWriter) encodeRows(cs *client.CopyStream, rows []types.Row) error {
	if w.opts.CopyFormat == "csv" {
		for _, r := range rows {
			if _, err := cs.Write([]byte(types.FormatCSV(r, ',') + "\n")); err != nil {
				return err
			}
		}
		return nil
	}
	aw, err := avro.NewWriter(cs, avro.FromTypes(w.schema), avro.CodecDeflate, 4096)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := aw.Append(r); err != nil {
			return err
		}
	}
	return aw.Close()
}

func (w *s2vWriter) tableExists(ctx context.Context, conn client.Conn, name string) (bool, error) {
	res, err := conn.Execute(ctx, fmt.Sprintf(
		"SELECT table_name FROM v_catalog.tables WHERE table_name = '%s'", sqlEscape(name)))
	if err != nil {
		return false, err
	}
	return len(res.Rows) > 0, nil
}

// markFailed best-effort records a failed job in the permanent status table.
func (w *s2vWriter) markFailed(ctx context.Context, conn client.Conn) {
	_, _ = conn.Execute(ctx, fmt.Sprintf(
		"UPDATE %s SET finished = TRUE, status = 'FAILED' WHERE job_name = '%s' AND finished = FALSE",
		JobStatusTable, sqlEscape(w.opts.JobName)))
}

// dropTemp removes the bookkeeping tables; withStaging also removes the
// staging table (it is gone already after a successful overwrite rename).
func (w *s2vWriter) dropTemp(ctx context.Context, conn client.Conn, withStaging bool) {
	stmts := []string{
		fmt.Sprintf("DROP TABLE IF EXISTS %s", w.status),
		fmt.Sprintf("DROP TABLE IF EXISTS %s", w.committer),
	}
	if withStaging || w.mode == spark.SaveAppend {
		stmts = append(stmts, fmt.Sprintf("DROP TABLE IF EXISTS %s", w.staging))
	}
	for _, s := range stmts {
		_, _ = conn.Execute(ctx, s)
	}
}

// ddlColumns renders a schema as a CREATE TABLE column list.
func ddlColumns(s types.Schema) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.T.String())
	}
	b.WriteByte(')')
	return b.String()
}

// sanitizeIdent keeps job-derived table names to identifier characters.
func sanitizeIdent(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
