package core

import (
	"errors"
	"fmt"
	"strings"

	"vsfabric/internal/avro"
	"vsfabric/internal/client"
	"vsfabric/internal/resilience"
	"vsfabric/internal/sim"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
)

// JobStatusTable is the permanent record of every S2V job (§3.2: "This table
// serves as a record of all S2V jobs and is not deleted upon termination"),
// the table a user consults after a total Spark failure.
const JobStatusTable = "s2v_job_status"

// ErrToleranceExceeded reports that more rows were rejected than the user's
// failedRowsPercentTolerance allows; the save is marked FAILED and the
// target table is untouched.
var ErrToleranceExceeded = errors.New("core: rejected rows exceed failedRowsPercentTolerance")

// s2vWriter runs one S2V job (§3.2).
type s2vWriter struct {
	pool client.Connector
	// rpool wraps pool with failover/backoff; built once per run, its host
	// set is installed after setup discovers the cluster layout.
	rpool *resilience.ResilientConnector
	opts  Options
	mode  spark.SaveMode

	staging   string
	status    string
	committer string
	addrs     []string
	schema    types.Schema
}

// taskReport is what each partition's task returns to the driver.
type taskReport struct {
	Loaded         int64
	Rejected       int64
	RejectedSample []string
}

// run executes setup, the parallel five-phase task protocol, and teardown.
func (w *s2vWriter) run(sc *spark.Context, df *spark.DataFrame) error {
	trace := sc.Conf().Trace
	setupRec := trace.Task("driver-00-setup", "")

	w.rpool = resilience.NewResilient(w.pool, nil, w.opts.Retry)
	// The driver connection is self-healing: a connection dropped at a phase
	// boundary (between statements) is re-dialed — failing over to another
	// node — and the statement retried. Every driver statement is autocommit
	// and either idempotent or guarded (DROP IF EXISTS, conditional UPDATE),
	// so a retry after a pre-execution drop cannot double-apply.
	conn := resilience.NewDriverConn(w.rpool, w.opts.Host)
	defer conn.Close()
	conn.SetRecorder(setupRec, "driver")
	setupRec.Fixed(sim.FixedConnect)

	if w.opts.NumPartitions > 0 {
		rep, err := df.Repartition(w.opts.NumPartitions)
		if err != nil {
			return err
		}
		df = rep
	}
	rdd, err := df.RDD()
	if err != nil {
		return err
	}
	nParts := rdd.NumPartitions()
	w.schema = df.Schema()

	if err := w.setup(conn, nParts); err != nil {
		return err
	}

	reports := spark.MapPartitions(rdd, func(tc *spark.TaskContext, p int, rows []types.Row) ([]taskReport, error) {
		rep, err := w.runTask(tc, p, rows)
		if err != nil {
			return nil, err
		}
		return []taskReport{rep}, nil
	})
	_, jobErr := reports.Collect()

	teardownRec := trace.Task("driver-99-teardown", "")
	conn.SetRecorder(teardownRec, "driver")
	if jobErr != nil {
		// Total failure or a task out of retries: the staging table is
		// abandoned, the target is untouched, and the permanent status
		// table records the failure (best effort — if Vertica is also gone
		// the row simply stays unfinished, §3.2).
		w.markFailed(conn)
		w.dropTemp(conn, true)
		return fmt.Errorf("core: S2V job %q failed: %w", w.opts.JobName, jobErr)
	}

	// The job's tasks all completed; the last committer has decided the
	// outcome. Read it back and clean up.
	res, err := conn.Execute(fmt.Sprintf(
		"SELECT status, failed_rows_percent FROM %s WHERE job_name = '%s'", JobStatusTable, sqlEscape(w.opts.JobName)))
	if err != nil {
		return err
	}
	if len(res.Rows) != 1 {
		return fmt.Errorf("core: job %q missing from %s", w.opts.JobName, JobStatusTable)
	}
	status, pct := res.Rows[0][0].S, res.Rows[0][1].F
	w.dropTemp(conn, status != "SUCCESS")
	if status != "SUCCESS" {
		return fmt.Errorf("%w: %.4f%% rejected (job %q)", ErrToleranceExceeded, pct*100, w.opts.JobName)
	}
	return nil
}

// setup creates the staging table, the three bookkeeping tables, and the
// per-task status rows (§3.2: "3 temporary tables, and 1 permanent table").
func (w *s2vWriter) setup(conn client.Conn, nParts int) error {
	job := sanitizeIdent(w.opts.JobName)
	w.staging = "s2v_stage_" + job
	w.status = "s2v_task_status_" + job
	w.committer = "s2v_last_committer_" + job

	targetExists, err := w.tableExists(conn, w.opts.Table)
	if err != nil {
		return err
	}
	switch w.mode {
	case spark.SaveErrorIfExists:
		if targetExists {
			return fmt.Errorf("core: table %q already exists (mode: errorIfExists)", w.opts.Table)
		}
	case spark.SaveAppend:
		if !targetExists {
			return fmt.Errorf("core: table %q does not exist (mode: append)", w.opts.Table)
		}
		lay, err := discoverLayout(conn, w.opts.Table)
		if err != nil {
			return err
		}
		if !lay.schema.Equal(w.schema) {
			return fmt.Errorf("core: DataFrame schema %s does not match target %s", w.schema, lay.schema)
		}
	case spark.SaveOverwrite:
		// Always allowed; the commit swaps staging over the target.
	}

	for _, stmt := range []string{
		fmt.Sprintf("DROP TABLE IF EXISTS %s", w.staging),
		fmt.Sprintf("DROP TABLE IF EXISTS %s", w.status),
		fmt.Sprintf("DROP TABLE IF EXISTS %s", w.committer),
	} {
		if _, err := conn.Execute(stmt); err != nil {
			return err
		}
	}
	stagingDDL := fmt.Sprintf("CREATE TEMP TABLE %s %s", w.staging, ddlColumns(w.schema))
	if w.mode == spark.SaveAppend {
		// Staging mirrors the target's definition so the final
		// INSERT..SELECT is segment-aligned.
		stagingDDL = fmt.Sprintf("CREATE TEMP TABLE %s LIKE %s", w.staging, w.opts.Table)
	}
	ddl := []string{
		stagingDDL,
		fmt.Sprintf("CREATE TEMP TABLE %s (task_id INTEGER, rows_inserted INTEGER, rows_rejected INTEGER, done BOOLEAN) UNSEGMENTED ALL NODES", w.status),
		fmt.Sprintf("CREATE TEMP TABLE %s (task_id INTEGER) UNSEGMENTED ALL NODES", w.committer),
		fmt.Sprintf("CREATE TABLE IF NOT EXISTS %s (job_name VARCHAR, failed_rows_percent FLOAT, finished BOOLEAN, status VARCHAR) UNSEGMENTED ALL NODES", JobStatusTable),
		fmt.Sprintf("INSERT INTO %s VALUES (-1)", w.committer),
		fmt.Sprintf("INSERT INTO %s VALUES ('%s', 0.0, FALSE, 'RUNNING')", JobStatusTable, sqlEscape(w.opts.JobName)),
	}
	var taskRows []string
	for p := 0; p < nParts; p++ {
		taskRows = append(taskRows, fmt.Sprintf("(%d, 0, 0, FALSE)", p))
	}
	ddl = append(ddl, fmt.Sprintf("INSERT INTO %s VALUES %s", w.status, strings.Join(taskRows, ", ")))
	for _, stmt := range ddl {
		if _, err := conn.Execute(stmt); err != nil {
			return err
		}
	}

	lay, err := discoverLayout(conn, w.staging)
	if err != nil {
		return err
	}
	w.addrs = lay.addrs
	// From here on, task and driver reconnects can fail over cluster-wide.
	w.rpool.SetHosts(w.addrs)
	return nil
}

// runTask is one task attempt's walk through the five phases of Figure 5.
// It is safe to run any number of times for the same partition, concurrently
// or after failures at any point — the status tables arbitrate.
func (w *s2vWriter) runTask(tc *spark.TaskContext, p int, rows []types.Row) (taskReport, error) {
	var rep taskReport
	if err := tc.Checkpoint("s2v.task_start"); err != nil {
		return rep, err
	}
	// Balance connections across the cluster; retries shift to another node
	// so a single bad node cannot wedge a task. The resilient pool adds
	// connect-level failover underneath: a refused or down node costs a
	// backoff, not a whole task attempt.
	addr := w.addrs[(p+tc.Attempt)%len(w.addrs)]
	conn, err := w.rpool.Connect(addr)
	if err != nil {
		return rep, err
	}
	defer conn.Close()
	conn.SetRecorder(tc.Rec, tc.ExecNode)
	tc.Rec.Fixed(sim.FixedConnect)

	// A restarted attempt first inquires the state of progress (§3.2: tasks
	// "utilize these tables to inquire the state of progress of all other
	// tasks"). If the job already committed, the staging table is gone and
	// there is nothing left to do; if this task's earlier attempt already
	// saved its data, skip straight to phase 2.
	res0, err := conn.Execute(fmt.Sprintf(
		"SELECT finished FROM %s WHERE job_name = '%s'", JobStatusTable, sqlEscape(w.opts.JobName)))
	if err != nil {
		return rep, err
	}
	if len(res0.Rows) == 1 && res0.Rows[0][0].AsBool() {
		return rep, nil
	}
	res0, err = conn.Execute(fmt.Sprintf(
		"SELECT done FROM %s WHERE task_id = %d", w.status, p))
	if err != nil {
		return rep, err
	}
	alreadyDone := len(res0.Rows) == 1 && res0.Rows[0][0].AsBool()

	// ---- Phase 1: save this partition into the staging table and flip the
	// task's done flag, both under one transaction.
	if !alreadyDone {
		if err := w.phase1(tc, conn, p, rows, &rep); err != nil {
			return rep, err
		}
	}
	// ---- Phase 2: are all tasks done?
	res, err := conn.Execute(fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE done = FALSE", w.status))
	if err != nil {
		return rep, err
	}
	notDone, err := singleInt(res)
	if err != nil {
		return rep, err
	}
	if notDone > 0 {
		return rep, nil // someone else will commit
	}
	if err := tc.Checkpoint("s2v.phase2.all_done"); err != nil {
		return rep, err
	}

	// ---- Phase 3: race to become the last committer (leader election via
	// conditional update).
	if _, err := conn.Execute("BEGIN"); err != nil {
		return rep, err
	}
	res, err = conn.Execute(fmt.Sprintf(
		"UPDATE %s SET task_id = %d WHERE task_id = -1", w.committer, p))
	if err != nil {
		return rep, err
	}
	if res.RowsAffected == 1 {
		if _, err := conn.Execute("COMMIT"); err != nil {
			return rep, err
		}
	} else if _, err := conn.Execute("ROLLBACK"); err != nil {
		return rep, err
	}
	if err := tc.Checkpoint("s2v.phase3.after"); err != nil {
		return rep, err
	}

	// ---- Phase 4: did this task win?
	res, err = conn.Execute(fmt.Sprintf("SELECT task_id FROM %s", w.committer))
	if err != nil {
		return rep, err
	}
	winner, err := singleInt(res)
	if err != nil {
		return rep, err
	}
	if winner != int64(p) {
		return rep, nil
	}

	// ---- Phase 5: the last committer checks the tolerance and atomically
	// publishes staging into the target together with the final status.
	res, err = conn.Execute(fmt.Sprintf(
		"SELECT SUM(rows_inserted), SUM(rows_rejected) FROM %s", w.status))
	if err != nil {
		return rep, err
	}
	inserted := res.Rows[0][0].AsFloat()
	rejected := res.Rows[0][1].AsFloat()
	pct := 0.0
	if inserted+rejected > 0 {
		pct = rejected / (inserted + rejected)
	}
	if err := tc.Checkpoint("s2v.phase5.before_commit"); err != nil {
		return rep, err
	}
	if pct > w.opts.FailedRowsPercentTolerance {
		if _, err := conn.Execute(fmt.Sprintf(
			"UPDATE %s SET finished = TRUE, failed_rows_percent = %g, status = 'FAILED' WHERE job_name = '%s' AND finished = FALSE",
			JobStatusTable, pct, sqlEscape(w.opts.JobName))); err != nil {
			return rep, err
		}
		return rep, nil // driver surfaces the FAILED status
	}
	if _, err := conn.Execute("BEGIN"); err != nil {
		return rep, err
	}
	res, err = conn.Execute(fmt.Sprintf(
		"UPDATE %s SET finished = TRUE, failed_rows_percent = %g, status = 'SUCCESS' WHERE job_name = '%s' AND finished = FALSE",
		JobStatusTable, pct, sqlEscape(w.opts.JobName)))
	if err != nil {
		return rep, err
	}
	if res.RowsAffected != 1 {
		// A duplicate (or an earlier attempt of this very task) already
		// committed; nothing left to do.
		_, err := conn.Execute("ROLLBACK")
		return rep, err
	}
	if w.mode == spark.SaveAppend {
		// One atomic server-side move of the staging data (§5 discusses its
		// cost; the transaction keeps it exactly-once).
		if _, err := conn.Execute(fmt.Sprintf("INSERT INTO %s SELECT * FROM %s", w.opts.Table, w.staging)); err != nil {
			return rep, err
		}
	} else {
		// Overwrite: the staging table atomically becomes the target.
		if _, err := conn.Execute(fmt.Sprintf("DROP TABLE IF EXISTS %s", w.opts.Table)); err != nil {
			return rep, err
		}
		if _, err := conn.Execute(fmt.Sprintf("ALTER TABLE %s RENAME TO %s", w.staging, w.opts.Table)); err != nil {
			return rep, err
		}
	}
	if _, err := conn.Execute("COMMIT"); err != nil {
		return rep, err
	}
	if err := tc.Checkpoint("s2v.phase5.after_commit"); err != nil {
		return rep, err
	}
	return rep, nil
}

// phase1 copies the partition into the staging table and flips this task's
// done flag, both in one transaction. A duplicate that loses the conditional
// update aborts, discarding its copy.
func (w *s2vWriter) phase1(tc *spark.TaskContext, conn client.Conn, p int, rows []types.Row, rep *taskReport) error {
	if _, err := conn.Execute("BEGIN"); err != nil {
		return err
	}
	if err := tc.Checkpoint("s2v.phase1.before_copy"); err != nil {
		return err
	}
	format := "AVRO"
	if w.opts.CopyFormat == "csv" {
		format = "CSV"
	}
	cs := client.NewCopyStream(conn, fmt.Sprintf(
		"COPY %s FROM STDIN FORMAT %s DIRECT REJECTMAX %d", w.staging, format, int64(1)<<40))
	if err := w.encodeRows(cs, rows); err != nil {
		// Abort reports the load's root cause (e.g. the server severing the
		// stream) which subsumes the local write error.
		if rootErr := cs.Abort(err); rootErr != nil {
			return rootErr
		}
		return err
	}
	cres, err := cs.Finish()
	if err != nil {
		return err
	}
	rep.Loaded, rep.Rejected = cres.Copy.Loaded, cres.Copy.Rejected
	rep.RejectedSample = cres.Copy.RejectedSample
	if err := tc.Checkpoint("s2v.phase1.after_copy"); err != nil {
		return err
	}
	res, err := conn.Execute(fmt.Sprintf(
		"UPDATE %s SET done = TRUE, rows_inserted = %d, rows_rejected = %d WHERE task_id = %d AND done = FALSE",
		w.status, rep.Loaded, rep.Rejected, p))
	if err != nil {
		return err
	}
	if res.RowsAffected == 1 {
		if _, err := conn.Execute("COMMIT"); err != nil {
			return err
		}
	} else {
		// A duplicate of this task already saved its data; abort discards
		// this attempt's copy so nothing is staged twice.
		if _, err := conn.Execute("ROLLBACK"); err != nil {
			return err
		}
		rep.Loaded, rep.Rejected = 0, 0
	}
	return tc.Checkpoint("s2v.phase1.after_commit")
}

// encodeRows streams the partition's rows in the configured task encoding:
// Avro object-container blocks with deflate (§3.2.2) or CSV lines (the
// encoding ablation).
func (w *s2vWriter) encodeRows(cs *client.CopyStream, rows []types.Row) error {
	if w.opts.CopyFormat == "csv" {
		for _, r := range rows {
			if _, err := cs.Write([]byte(types.FormatCSV(r, ',') + "\n")); err != nil {
				return err
			}
		}
		return nil
	}
	aw, err := avro.NewWriter(cs, avro.FromTypes(w.schema), avro.CodecDeflate, 4096)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := aw.Append(r); err != nil {
			return err
		}
	}
	return aw.Close()
}

func (w *s2vWriter) tableExists(conn client.Conn, name string) (bool, error) {
	res, err := conn.Execute(fmt.Sprintf(
		"SELECT table_name FROM v_catalog.tables WHERE table_name = '%s'", sqlEscape(name)))
	if err != nil {
		return false, err
	}
	return len(res.Rows) > 0, nil
}

// markFailed best-effort records a failed job in the permanent status table.
func (w *s2vWriter) markFailed(conn client.Conn) {
	_, _ = conn.Execute(fmt.Sprintf(
		"UPDATE %s SET finished = TRUE, status = 'FAILED' WHERE job_name = '%s' AND finished = FALSE",
		JobStatusTable, sqlEscape(w.opts.JobName)))
}

// dropTemp removes the bookkeeping tables; withStaging also removes the
// staging table (it is gone already after a successful overwrite rename).
func (w *s2vWriter) dropTemp(conn client.Conn, withStaging bool) {
	stmts := []string{
		fmt.Sprintf("DROP TABLE IF EXISTS %s", w.status),
		fmt.Sprintf("DROP TABLE IF EXISTS %s", w.committer),
	}
	if withStaging || w.mode == spark.SaveAppend {
		stmts = append(stmts, fmt.Sprintf("DROP TABLE IF EXISTS %s", w.staging))
	}
	for _, s := range stmts {
		_, _ = conn.Execute(s)
	}
}

// ddlColumns renders a schema as a CREATE TABLE column list.
func ddlColumns(s types.Schema) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.T.String())
	}
	b.WriteByte(')')
	return b.String()
}

// sanitizeIdent keeps job-derived table names to identifier characters.
func sanitizeIdent(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
