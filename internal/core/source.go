package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"vsfabric/internal/client"
	"vsfabric/internal/obs"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

// DefaultSource is the connector's data source implementation: the read side
// creates V2S relations, the write side runs the S2V protocol.
type DefaultSource struct {
	pool   client.Connector
	obsv   obs.Observer
	jobSeq atomic.Uint64
}

// NewDefaultSource builds a source over a driver connector.
func NewDefaultSource(pool client.Connector) *DefaultSource {
	return &DefaultSource{pool: pool}
}

// WithObserver attaches an observer that every relation and save created by
// this source reports to (connector spans and resilience events). Wire a
// vertica.Cluster's Obs() collector here to surface them in v_monitor.
// Returns d for chaining.
func (d *DefaultSource) WithObserver(o obs.Observer) *DefaultSource {
	d.obsv = o
	return d
}

// Register installs the source under DefaultSourceName.
func (d *DefaultSource) Register() { spark.RegisterSource(DefaultSourceName, d) }

// CreateRelation implements spark.RelationProvider (the LOAD half of
// Table 1). The map options are the External Data Source API's stringly
// form; programmatic callers should build V2SOptions via NewV2SOptions.
func (d *DefaultSource) CreateRelation(sc *spark.Context, options map[string]string) (spark.BaseRelation, error) {
	opts, err := ParseV2SOptions(options)
	if err != nil {
		return nil, err
	}
	opts.Observer = obs.Multi(opts.Observer, d.obsv)
	return newV2SRelation(sc, d.pool, opts)
}

// SaveRelation implements spark.CreatableRelationProvider (the SAVE half of
// Table 1).
func (d *DefaultSource) SaveRelation(sc *spark.Context, mode spark.SaveMode, options map[string]string, df *spark.DataFrame) error {
	opts, err := ParseS2VOptions(options)
	if err != nil {
		return err
	}
	if opts.JobName == "" {
		opts.JobName = fmt.Sprintf("s2v_job_%d", d.jobSeq.Add(1))
	}
	opts.Observer = obs.Multi(opts.Observer, d.obsv)
	w := &s2vWriter{pool: d.pool, opts: opts, mode: mode}
	return w.run(sc, df)
}

// clusterLayout is what the driver discovers from the system catalog during
// setup: every node address plus the target's segmentation metadata.
type clusterLayout struct {
	addrs     []string
	segmented bool
	isView    bool
	schema    types.Schema
	// segments[i] is the hash range owned by addrs[i] (segmented tables).
	segLo, segHi []uint64
}

// discoverLayout reads v_catalog.nodes / tables / columns / segments through
// one connection.
func discoverLayout(ctx context.Context, conn client.Conn, table string) (*clusterLayout, error) {
	lay := &clusterLayout{}
	res, err := conn.Execute(ctx, "SELECT node_address FROM v_catalog.nodes")
	if err != nil {
		return nil, err
	}
	for _, r := range res.Rows {
		lay.addrs = append(lay.addrs, r[0].S)
	}
	if len(lay.addrs) == 0 {
		return nil, fmt.Errorf("core: cluster reports no nodes")
	}

	res, err = conn.Execute(ctx, fmt.Sprintf("SELECT is_segmented FROM v_catalog.tables WHERE table_name = '%s'", sqlEscape(table)))
	if err != nil {
		return nil, err
	}
	switch len(res.Rows) {
	case 0:
		// Not a table: maybe a view.
		vres, err := conn.Execute(ctx, fmt.Sprintf("SELECT view_name FROM v_catalog.views WHERE view_name = '%s'", sqlEscape(table)))
		if err != nil {
			return nil, err
		}
		if len(vres.Rows) == 0 {
			return nil, fmt.Errorf("core: relation %q does not exist in Vertica", table)
		}
		lay.isView = true
	default:
		lay.segmented = res.Rows[0][0].AsBool()
	}

	if lay.isView {
		// Views have no catalog columns; take the schema from a zero-row
		// probe.
		probe, err := conn.Execute(ctx, fmt.Sprintf("SELECT * FROM %s LIMIT 0", table))
		if err != nil {
			return nil, err
		}
		lay.schema = probe.Schema
	} else {
		cres, err := conn.Execute(ctx, fmt.Sprintf(
			"SELECT column_name, data_type FROM v_catalog.columns WHERE table_name = '%s'", sqlEscape(table)))
		if err != nil {
			return nil, err
		}
		for _, r := range cres.Rows {
			t, err := types.ParseType(r[1].S)
			if err != nil {
				return nil, err
			}
			lay.schema.Cols = append(lay.schema.Cols, types.Column{Name: r[0].S, T: t})
		}
		if lay.schema.NumCols() == 0 {
			return nil, fmt.Errorf("core: table %q has no columns in catalog", table)
		}
	}

	if lay.segmented {
		sres, err := conn.Execute(ctx, fmt.Sprintf(
			"SELECT node_address, segment_lower_bound, segment_upper_bound FROM v_catalog.segments WHERE table_name = '%s'",
			sqlEscape(table)))
		if err != nil {
			return nil, err
		}
		if len(sres.Rows) == 0 {
			return nil, fmt.Errorf("core: catalog reports no segments for table %q", table)
		}
		// The segment rows are authoritative, not the node list: mid-rebalance
		// (a node joining or draining) a table's own ring can momentarily hold
		// fewer or more nodes than cluster membership, and the table's ring is
		// what scans must be planned against. The catalog returns segments
		// ordered by ring position; take addresses from them wholesale.
		lay.addrs = lay.addrs[:0]
		for _, r := range sres.Rows {
			lay.addrs = append(lay.addrs, r[0].S)
			lay.segLo = append(lay.segLo, uint64(r[1].I))
			lay.segHi = append(lay.segHi, uint64(r[2].I))
		}
	}
	return lay, nil
}

func sqlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\'' {
			out = append(out, '\'')
		}
		out = append(out, s[i])
	}
	return string(out)
}

// segmentationExpr returns the SQL hash expression matching the table's
// segmentation, read from the catalog.
func segmentationExpr(ctx context.Context, conn client.Conn, table string) (string, error) {
	res, err := conn.Execute(ctx, fmt.Sprintf(
		"SELECT segment_expression FROM v_catalog.tables WHERE table_name = '%s'", sqlEscape(table)))
	if err != nil {
		return "", err
	}
	if len(res.Rows) == 0 || res.Rows[0][0].S == "" {
		return "HASH(*)", nil
	}
	return res.Rows[0][0].S, nil
}

// resultToRows adapts engine results (used by small control queries).
func singleInt(res *vertica.Result) (int64, error) {
	v, err := res.Value()
	if err != nil {
		return 0, err
	}
	return v.AsInt(), nil
}
