package core

import (
	"context"
	"fmt"
	"strings"

	"vsfabric/internal/client"
	"vsfabric/internal/obs"
	"vsfabric/internal/resilience"
	"vsfabric/internal/sim"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
)

// querySpec is one node-local pull: a query against addr restricted to a
// hash range owned by that node. A partition executes one or more specs
// (Figure 4(a): with fewer partitions than segments, one task covers several
// whole segments, each pulled locally from its own node).
type querySpec struct {
	addr string
	lo   uint64
	hi   uint64
	// mod is used instead of a hash range for views: the synthetic
	// MOD(HASH(*), P) = mod partition predicate (§3.1.1). -1 = unused.
	mod  int
	modP int
}

// v2sRelation implements the read side (V2S, §3.1): Schema discovery from
// the catalog, pruned/filtered scans pinned to one epoch with hash-ring
// locality, and COUNT pushdown.
type v2sRelation struct {
	sc      *spark.Context
	pool    *resilience.ResilientConnector
	opts    V2SOptions
	lay     *clusterLayout
	segExpr string
}

// driverCtx is the context driver-side control queries run under: they carry
// the "driver" peer name but no sim cost recorder (setup work is not part of
// any task's modeled cost).
func driverCtx() context.Context {
	return obs.WithPeer(context.Background(), "driver")
}

// taskCtx is the context a task's database operations run under: sim cost
// events route to the task's recorder, and the executor's name travels to the
// engine as the session peer.
func taskCtx(tc *spark.TaskContext) context.Context {
	ctx := obs.With(context.Background(), sim.Recorder{Rec: tc.Rec})
	return obs.WithPeer(ctx, tc.ExecNode)
}

func newV2SRelation(sc *spark.Context, pool client.Connector, opts V2SOptions) (*v2sRelation, error) {
	// All connections — driver discovery and task scans — go through the
	// resilient pool; once the layout is known, its host set makes every
	// connect failover-capable across the whole cluster. The pool reports
	// every recovery action to the options' observer.
	rpool := resilience.NewResilient(pool, nil, opts.Retry)
	rpool.SetObserver(opts.Observer)
	ctx := driverCtx()
	conn, err := rpool.Connect(ctx, opts.Host)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	lay, err := discoverLayout(ctx, conn, opts.Table)
	if err != nil {
		return nil, err
	}
	rpool.SetHosts(lay.addrs)
	r := &v2sRelation{sc: sc, pool: rpool, opts: opts, lay: lay}
	if lay.segmented {
		expr, err := segmentationExpr(ctx, conn, opts.Table)
		if err != nil {
			return nil, err
		}
		r.segExpr = expr
	} else {
		r.segExpr = "HASH(*)"
	}
	if r.opts.NumPartitions == 0 {
		r.opts.NumPartitions = 16
	}
	return r, nil
}

// Schema implements spark.BaseRelation.
func (r *v2sRelation) Schema() (types.Schema, error) { return r.lay.schema, nil }

// filterSQL translates a pushdown filter into engine SQL.
func filterSQL(f spark.Filter) (string, error) {
	lit := func(v types.Value) string {
		if v.Null {
			return "NULL"
		}
		if v.T == types.Varchar {
			return "'" + sqlEscape(v.S) + "'"
		}
		return v.String()
	}
	switch ff := f.(type) {
	case spark.EqualTo:
		return fmt.Sprintf("%s = %s", ff.Col, lit(ff.Value)), nil
	case spark.GreaterThan:
		return fmt.Sprintf("%s > %s", ff.Col, lit(ff.Value)), nil
	case spark.GreaterThanOrEqual:
		return fmt.Sprintf("%s >= %s", ff.Col, lit(ff.Value)), nil
	case spark.LessThan:
		return fmt.Sprintf("%s < %s", ff.Col, lit(ff.Value)), nil
	case spark.LessThanOrEqual:
		return fmt.Sprintf("%s <= %s", ff.Col, lit(ff.Value)), nil
	case spark.IsNull:
		return fmt.Sprintf("%s IS NULL", ff.Col), nil
	case spark.IsNotNull:
		return fmt.Sprintf("%s IS NOT NULL", ff.Col), nil
	default:
		return "", fmt.Errorf("core: filter %T cannot be pushed down", f)
	}
}

func filtersSQL(filters []spark.Filter) (string, error) {
	var parts []string
	for _, f := range filters {
		s, err := filterSQL(f)
		if err != nil {
			return "", err
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, " AND "), nil
}

// planPartitions computes the per-partition query specs from the discovered
// layout — the heart of §3.1.2. Segmented tables split the hash ring along
// segment boundaries so every spec is node-local; unsegmented tables (fully
// replicated) split the synthetic whole-row hash ring and spread connections
// round-robin; views use MOD(HASH(*), P) synthetic partitioning.
func (r *v2sRelation) planPartitions() [][]querySpec {
	p := r.opts.NumPartitions
	specs := make([][]querySpec, p)
	switch {
	case r.lay.isView:
		for i := 0; i < p; i++ {
			specs[i] = []querySpec{{
				addr: r.lay.addrs[i%len(r.lay.addrs)],
				mod:  i, modP: p,
			}}
		}
	case !r.lay.segmented:
		// Replicated everywhere: any node answers any range locally.
		ranges := vhash.Split(vhash.Range{Lo: 0, Hi: vhash.RingSize}, p)
		for i := 0; i < p; i++ {
			specs[i] = []querySpec{{
				addr: r.lay.addrs[i%len(r.lay.addrs)],
				lo:   ranges[i].Lo, hi: ranges[i].Hi,
				mod: -1,
			}}
		}
	default:
		n := len(r.lay.addrs)
		if p >= n {
			// Figure 4(b): split each segment into ~p/n sub-ranges; each
			// partition gets exactly one node-local range. Partition indexes
			// interleave across segments so that however the scheduler
			// batches tasks, every node's connection load stays balanced.
			perSeg := make([][]vhash.Range, n)
			for s := 0; s < n; s++ {
				k := p/n + btoi(s < p%n)
				perSeg[s] = vhash.Split(vhash.Range{Lo: r.lay.segLo[s], Hi: r.lay.segHi[s]}, k)
			}
			idx := 0
			for slice := 0; idx < p; slice++ {
				for s := 0; s < n && idx < p; s++ {
					if slice >= len(perSeg[s]) {
						continue
					}
					rg := perSeg[s][slice]
					specs[idx] = []querySpec{{addr: r.lay.addrs[s], lo: rg.Lo, hi: rg.Hi, mod: -1}}
					idx++
				}
			}
		} else {
			// Figure 4(a): each partition covers several whole segments,
			// pulling each locally from its own node.
			for i := 0; i < p; i++ {
				loSeg, hiSeg := n*i/p, n*(i+1)/p
				for s := loSeg; s < hiSeg; s++ {
					specs[i] = append(specs[i], querySpec{
						addr: r.lay.addrs[s], lo: r.lay.segLo[s], hi: r.lay.segHi[s], mod: -1,
					})
				}
			}
		}
	}
	return specs
}

func nodeIndexOf(addrs []string, addr string) int {
	for i, a := range addrs {
		if a == addr {
			return i
		}
	}
	return 0
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

// specSQL renders the partition query for one spec: the pinned epoch, the
// pruned column list, the node-local hash-range (or synthetic MOD)
// predicate, and any pushdown filters.
func (r *v2sRelation) specSQL(spec querySpec, cols []string, pushdown string, epoch uint64, countOnly bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "AT EPOCH %d SELECT ", epoch)
	if countOnly {
		b.WriteString("COUNT(*)")
	} else {
		b.WriteString(strings.Join(cols, ", "))
	}
	fmt.Fprintf(&b, " FROM %s WHERE ", r.opts.Table)
	if spec.mod >= 0 {
		fmt.Fprintf(&b, "MOD(HASH(*), %d) = %d", spec.modP, spec.mod)
	} else {
		fmt.Fprintf(&b, "%s >= %d AND %s < %d", r.segExpr, spec.lo, r.segExpr, spec.hi)
	}
	if pushdown != "" {
		fmt.Fprintf(&b, " AND (%s)", pushdown)
	}
	return b.String()
}

// refreshLayout re-discovers the table's layout at planning time. The layout
// captured when the relation was created may predate a cluster membership
// change (a node added or drained since), and the scan must be planned
// against the table's current ring: only its addresses are guaranteed to
// carry the table's segments. Pinning the epoch after the refresh keeps the
// job consistent — whatever epoch is pinned, the current layout answers it
// exactly (moved versions carry their full MVCC history).
func (r *v2sRelation) refreshLayout(ctx context.Context) error {
	conn, err := r.pool.Connect(ctx, r.opts.Host)
	if err != nil {
		return err
	}
	defer conn.Close()
	lay, err := discoverLayout(ctx, conn, r.opts.Table)
	if err != nil {
		return err
	}
	r.lay = lay
	r.pool.SetHosts(lay.addrs)
	return nil
}

// pinEpoch asks the database for the last closed epoch; every partition
// query reads AT this epoch, giving the job one consistent snapshot no
// matter when (or how often) its tasks run (§3.1.2).
func (r *v2sRelation) pinEpoch(ctx context.Context) (uint64, error) {
	res, err := r.pool.Execute(ctx, r.opts.Host, "SELECT LAST_EPOCH()")
	if err != nil {
		return 0, err
	}
	n, err := singleInt(res)
	if err != nil {
		return 0, err
	}
	return uint64(n), nil
}

// BuildScan implements spark.PrunedFilteredScan.
func (r *v2sRelation) BuildScan(requiredCols []string, filters []spark.Filter) (*spark.RDD[types.Row], error) {
	if len(requiredCols) == 0 {
		requiredCols = r.lay.schema.ColNames()
	}
	if _, _, err := r.lay.schema.Project(requiredCols); err != nil {
		return nil, err
	}
	pushdown, err := filtersSQL(filters)
	if err != nil {
		return nil, err
	}
	// The job's root span: driver-side planning runs inside it, and every
	// partition read (plus the engine spans it causes, on whichever node and
	// over whatever transport) parents under its identity. The root closes
	// when the scan is planned — tasks run later, lazily — so the root's own
	// duration covers planning; v_monitor.job_traces reports the job's
	// end-to-end duration as the extent of the whole trace.
	job := obs.Start(r.opts.Observer, "v2s.job", "driver")
	jctx := obs.WithSpan(driverCtx(), job)
	if err := r.refreshLayout(jctx); err != nil {
		job.End(err)
		return nil, err
	}
	epoch, err := r.pinEpoch(jctx)
	if err != nil {
		job.End(err)
		return nil, err
	}
	specs := r.planPartitions()
	if r.opts.DisableLocality {
		// Ablation: keep the unique non-overlapping ranges but connect each
		// task to the next node over, so every query gathers its data
		// across the internal network (the behaviour §3.1.2 eliminates).
		for i := range specs {
			for j := range specs[i] {
				specs[i][j].addr = r.lay.addrs[(nodeIndexOf(r.lay.addrs, specs[i][j].addr)+1)%len(r.lay.addrs)]
			}
		}
	}
	job.SetDetail(fmt.Sprintf("%s: %d partitions, epoch %d", r.opts.Table, len(specs), epoch))
	jobSC := job.SpanContext()
	job.End(nil)
	pool := r.pool
	rel := r
	return spark.NewRDD(r.sc, len(specs), func(tc *spark.TaskContext, p int) ([]types.Row, error) {
		if err := tc.Checkpoint("v2s.task_start"); err != nil {
			return nil, err
		}
		ctx := obs.WithSpanContext(taskCtx(tc), jobSC)
		sp := obs.StartChild(ctx, rel.opts.Observer, "v2s.partition", tc.ExecNode)
		sp.SetDetail(fmt.Sprintf("partition %d/%d: %d specs, epoch %d", p, len(specs), len(specs[p]), epoch))
		// Engine/wire spans from this task's queries parent under the
		// partition span, not the job directly.
		ctx = obs.WithSpan(ctx, sp)
		var out []types.Row
		for _, spec := range specs[p] {
			// Execute retries the connect+execute pair with failover, so a
			// node dying mid-scan re-runs this spec's query against the next
			// host over — where the segment's buddy projection lives
			// (KSafety ≥ 1) — without burning a whole Spark task retry. The
			// query is a pinned-epoch read, so re-running it is free of
			// side effects and returns identical rows.
			sp.SetPeer(spec.addr)
			res, err := pool.Execute(ctx, spec.addr, rel.specSQL(spec, requiredCols, pushdown, epoch, false))
			if err != nil {
				sp.End(err)
				return nil, err
			}
			sp.AddRows(int64(len(res.Rows)))
			out = append(out, res.Rows...)
		}
		sp.End(nil)
		if err := tc.Checkpoint("v2s.task_done"); err != nil {
			return nil, err
		}
		return out, nil
	}), nil
}

// CountRows implements spark.CountableScan: COUNT(*) is pushed down and
// executed inside the database, one node-local count per segment (§3.1.1).
func (r *v2sRelation) CountRows(filters []spark.Filter) (int64, error) {
	pushdown, err := filtersSQL(filters)
	if err != nil {
		return 0, err
	}
	ctx := driverCtx()
	epoch, err := r.pinEpoch(ctx)
	if err != nil {
		return 0, err
	}
	specs := r.planPartitions()
	total := int64(0)
	for _, group := range specs {
		for _, spec := range group {
			res, err := r.pool.Execute(ctx, spec.addr, r.specSQL(spec, nil, pushdown, epoch, true))
			if err != nil {
				return 0, err
			}
			n, err := singleInt(res)
			if err != nil {
				return 0, err
			}
			total += n
		}
	}
	return total, nil
}
