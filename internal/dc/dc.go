// Package dc implements the durable data collector: the subsystem that
// spools observability history (query requests, job traces, resilience
// events, resource-queue events, query plans, query events) to disk so the
// v_monitor.dc_* tables can answer "what happened before the crash".
//
// Each component owns a directory of size-bounded rotating segment files.
// Records are CRC32-framed ([u32 len][u32 crc][u64 unixnano + payload], the
// WAL's framing), written straight through to the file descriptor — no
// userspace buffering — so every acknowledged Append survives a process
// kill; only a torn tail (a crash mid-frame) is lost, and reopening
// truncates it away. Retention policies (max KB + max age, the
// SET_DATA_COLLECTOR_POLICY knobs) prune whole closed segments oldest-first;
// the active segment is never pruned.
package dc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

var segMagic = []byte("VDCSEG01")

// ErrCrashed is returned by every operation after a simulated crash
// (FailAfterRecords) tears the active segment.
var ErrCrashed = errors.New("dc: simulated crash")

// DefaultMaxKB is the per-component disk budget when no policy is set.
const DefaultMaxKB = 256

// maxFrame bounds a single record's payload (guards scans against garbage
// length prefixes).
const maxFrame = 1 << 28

// Policy is one component's retention policy: keep at most MaxKB kilobytes
// of segments, and drop segments whose newest record is older than MaxAge
// (0 = no age limit). Vertica's SET_DATA_COLLECTOR_POLICY exposes the same
// two knobs.
type Policy struct {
	MaxKB  int64         `json:"max_kb"`
	MaxAge time.Duration `json:"max_age_ns"`
}

func (p Policy) maxBytes() int64 {
	kb := p.MaxKB
	if kb <= 0 {
		kb = DefaultMaxKB
	}
	return kb * 1024
}

// segTarget is the rotation threshold: segments close at ~1/4 of the byte
// budget (clamped to [1KB, 64KB]) so retention has whole-segment granularity
// without dropping a large fraction of history at once.
func (p Policy) segTarget() int64 {
	t := p.maxBytes() / 4
	if t < 1<<10 {
		t = 1 << 10
	}
	if t > 1<<16 {
		t = 1 << 16
	}
	return t
}

// Record is one spooled entry: an opaque payload stamped with the time it
// was recorded (the retention clock).
type Record struct {
	Time    time.Time
	Payload []byte
}

// segment is one on-disk segment file's bookkeeping. Only the highest-seq
// segment per component is open for appending.
type segment struct {
	path   string
	seq    uint64
	size   int64 // valid bytes (header + intact frames)
	recs   int64
	newest time.Time // newest record time (zero when empty)
}

// component is one spooled stream (query_requests, job_traces, ...).
type component struct {
	name   string
	dir    string
	pol    Policy
	closed []*segment // oldest first
	active *segment
	f      *os.File // active segment's descriptor
}

// ComponentStats describes one component's on-disk state.
type ComponentStats struct {
	Component string
	Segments  int
	Bytes     int64
	Records   int64
	Oldest    time.Time
	Newest    time.Time
	Policy    Policy
}

// Spool is an open data-collector directory. Safe for concurrent use.
type Spool struct {
	mu    sync.Mutex
	dir   string
	comps map[string]*component

	crashed   bool
	failAfter int64 // <0 = disabled; 0 = crash on next append
}

// Open opens (or creates) the data-collector directory rooted at dir, with
// one sub-directory per component. Existing segments are scanned: torn
// tails — the signature of a crash mid-append — are truncated back to the
// last intact frame, and the highest-sequence segment reopens for
// appending. Persisted retention policies are loaded from policies.json.
func Open(dir string, components []string) (*Spool, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Spool{dir: dir, comps: make(map[string]*component, len(components)), failAfter: -1}
	pols, err := loadPolicies(filepath.Join(dir, "policies.json"))
	if err != nil {
		return nil, err
	}
	for _, name := range components {
		c := &component{name: name, dir: filepath.Join(dir, name), pol: pols[name]}
		if err := os.MkdirAll(c.dir, 0o755); err != nil {
			return nil, err
		}
		if err := c.open(); err != nil {
			s.Close()
			return nil, fmt.Errorf("dc: opening component %s: %w", name, err)
		}
		s.comps[name] = c
	}
	return s, nil
}

// open scans a component's existing segments, repairs the newest one's tail,
// and opens it (or a fresh segment) for appending.
func (c *component) open() error {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return err
	}
	var segs []*segment
	for _, e := range ents {
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), "seg-%d.dc", &seq); err != nil || !strings.HasSuffix(e.Name(), ".dc") {
			continue
		}
		segs = append(segs, &segment{path: filepath.Join(c.dir, e.Name()), seq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for i, sg := range segs {
		recs, valid, err := scanSegment(sg.path)
		if err != nil {
			return err
		}
		sg.size = valid
		sg.recs = int64(len(recs))
		for _, r := range recs {
			if r.Time.After(sg.newest) {
				sg.newest = r.Time
			}
		}
		if i == len(segs)-1 {
			// The crash, if any, tore this segment's tail: truncate back to
			// the valid prefix so appends land after intact frames.
			st, err := os.Stat(sg.path)
			if err != nil {
				return err
			}
			if st.Size() > valid {
				if err := os.Truncate(sg.path, valid); err != nil {
					return err
				}
			}
		}
	}
	if len(segs) == 0 {
		return c.rotate(1)
	}
	c.closed = segs[:len(segs)-1]
	c.active = segs[len(segs)-1]
	f, err := os.OpenFile(c.active.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	c.f = f
	return nil
}

// rotate closes the active segment (if any) and starts seg-<seq>.
func (c *component) rotate(seq uint64) error {
	if c.f != nil {
		if err := c.f.Close(); err != nil {
			return err
		}
		c.closed = append(c.closed, c.active)
		c.active, c.f = nil, nil
	}
	path := filepath.Join(c.dir, fmt.Sprintf("seg-%08d.dc", seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		return err
	}
	c.active = &segment{path: path, seq: seq, size: int64(len(segMagic))}
	c.f = f
	return nil
}

// retain enforces the component's policy: while the oldest closed segment
// either pushes the total size over budget or has aged out entirely, delete
// it. Oldest-first, and never the active segment — at least the newest
// history always survives.
func (c *component) retain(now time.Time) error {
	for len(c.closed) > 0 {
		oldest := c.closed[0]
		var total int64 = c.active.size
		for _, sg := range c.closed {
			total += sg.size
		}
		drop := total > c.pol.maxBytes()
		if !drop && c.pol.MaxAge > 0 && !oldest.newest.IsZero() && now.Sub(oldest.newest) > c.pol.MaxAge {
			drop = true
		}
		if !drop {
			return nil
		}
		if err := os.Remove(oldest.path); err != nil && !os.IsNotExist(err) {
			return err
		}
		c.closed = c.closed[1:]
	}
	return nil
}

// Append spools one record to a component. The frame reaches the file
// descriptor before Append returns — a process kill afterwards cannot lose
// it (only an OS/power failure between write and fsync can, matching the
// durability class of Vertica's own data collector).
func (s *Spool) Append(comp string, r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	c, ok := s.comps[comp]
	if !ok {
		return fmt.Errorf("dc: unknown component %q", comp)
	}
	if r.Time.IsZero() {
		r.Time = time.Now()
	}
	fr := frame(r)
	if s.failAfter == 0 {
		// Simulated power cut: half the frame reaches the file, then the
		// world ends. Reopen truncates the tear away.
		c.f.Write(fr[:len(fr)/2])
		s.crashed = true
		return ErrCrashed
	}
	if s.failAfter > 0 {
		s.failAfter--
	}
	if _, err := c.f.Write(fr); err != nil {
		return err
	}
	c.active.size += int64(len(fr))
	c.active.recs++
	if r.Time.After(c.active.newest) {
		c.active.newest = r.Time
	}
	if c.active.size >= c.pol.segTarget() {
		if err := c.rotate(c.active.seq + 1); err != nil {
			return err
		}
	}
	return c.retain(time.Now())
}

// Records returns every intact record of a component, oldest segment first,
// append order within each segment.
func (s *Spool) Records(comp string) ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return nil, ErrCrashed
	}
	c, ok := s.comps[comp]
	if !ok {
		return nil, fmt.Errorf("dc: unknown component %q", comp)
	}
	var out []Record
	for _, sg := range append(append([]*segment{}, c.closed...), c.active) {
		recs, _, err := scanSegment(sg.path)
		if err != nil {
			return nil, err
		}
		out = append(out, recs...)
	}
	return out, nil
}

// SetPolicy sets (and durably persists) a component's retention policy,
// applying it immediately.
func (s *Spool) SetPolicy(comp string, p Policy) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	c, ok := s.comps[comp]
	if !ok {
		return fmt.Errorf("dc: unknown component %q", comp)
	}
	c.pol = p
	pols := make(map[string]Policy, len(s.comps))
	for name, cc := range s.comps {
		if cc.pol != (Policy{}) {
			pols[name] = cc.pol
		}
	}
	if err := savePolicies(filepath.Join(s.dir, "policies.json"), pols); err != nil {
		return err
	}
	return c.retain(time.Now())
}

// GetPolicy returns a component's retention policy (zero value = defaults)
// and whether the component exists.
func (s *Spool) GetPolicy(comp string) (Policy, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.comps[comp]
	if !ok {
		return Policy{}, false
	}
	return c.pol, true
}

// Components returns the component names, sorted.
func (s *Spool) Components() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.comps))
	for name := range s.comps {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats snapshots every component's on-disk state, sorted by name.
func (s *Spool) Stats() []ComponentStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ComponentStats, 0, len(s.comps))
	for name, c := range s.comps {
		cs := ComponentStats{Component: name, Policy: c.pol}
		for _, sg := range append(append([]*segment{}, c.closed...), c.active) {
			cs.Segments++
			cs.Bytes += sg.size
			cs.Records += sg.recs
			if !sg.newest.IsZero() {
				if cs.Oldest.IsZero() || sg.newest.Before(cs.Oldest) {
					cs.Oldest = sg.newest
				}
				if sg.newest.After(cs.Newest) {
					cs.Newest = sg.newest
				}
			}
		}
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Component < out[j].Component })
	return out
}

// Sync fsyncs every active segment.
func (s *Spool) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrCrashed
	}
	for _, c := range s.comps {
		if c.f != nil {
			if err := c.f.Sync(); err != nil {
				return err
			}
		}
	}
	return nil
}

// FailAfterRecords installs the chaos hook: after n more successful appends
// (across all components), the next record is torn mid-frame and every
// subsequent operation returns ErrCrashed.
func (s *Spool) FailAfterRecords(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failAfter = int64(n)
}

// Close closes every open segment file.
func (s *Spool) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, c := range s.comps {
		if c.f != nil {
			if err := c.f.Close(); err != nil && first == nil {
				first = err
			}
			c.f = nil
		}
	}
	return first
}

// frame wraps a record as [u32 len][u32 crc][u64 unixnano][payload]; the CRC
// covers the timestamp and payload.
func frame(r Record) []byte {
	body := make([]byte, 8+len(r.Payload))
	binary.LittleEndian.PutUint64(body[:8], uint64(r.Time.UnixNano()))
	copy(body[8:], r.Payload)
	out := make([]byte, 8+len(body))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(body))
	copy(out[8:], body)
	return out
}

// scanSegment decodes a segment's intact records and reports the byte length
// of the valid prefix. A torn tail ends the scan without error; a missing
// file yields no records.
func scanSegment(path string) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	if len(data) < len(segMagic) {
		return nil, 0, nil
	}
	if string(data[:len(segMagic)]) != string(segMagic) {
		return nil, 0, fmt.Errorf("dc: bad segment header in %s", path)
	}
	data = data[len(segMagic):]
	valid := int64(len(segMagic))
	var out []Record
	for len(data) >= 8 {
		n := binary.LittleEndian.Uint32(data[0:4])
		sum := binary.LittleEndian.Uint32(data[4:8])
		if n < 8 || n > maxFrame || len(data) < 8+int(n) {
			break // torn tail
		}
		body := data[8 : 8+n]
		if crc32.ChecksumIEEE(body) != sum {
			break // torn or corrupt tail
		}
		out = append(out, Record{
			Time:    time.Unix(0, int64(binary.LittleEndian.Uint64(body[:8]))),
			Payload: append([]byte(nil), body[8:]...),
		})
		data = data[8+n:]
		valid += int64(8 + n)
	}
	return out, valid, nil
}

func loadPolicies(path string) (map[string]Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]Policy{}, nil
		}
		return nil, err
	}
	out := map[string]Policy{}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("dc: corrupt policies.json: %w", err)
	}
	return out, nil
}

// savePolicies writes the policy map atomically: temp file, fsync, rename,
// directory fsync — the same discipline the durable catalog manifest uses.
func savePolicies(path string, pols map[string]Policy) error {
	data, err := json.MarshalIndent(pols, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
