package dc

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, comps ...string) *Spool {
	t.Helper()
	if len(comps) == 0 {
		comps = []string{"query_requests"}
	}
	s, err := Open(dir, comps)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "query_requests", "job_traces")
	base := time.Unix(1700000000, 12345)
	for i := 0; i < 50; i++ {
		err := s.Append("query_requests", Record{
			Time:    base.Add(time.Duration(i) * time.Second),
			Payload: []byte(fmt.Sprintf("req-%03d", i)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append("job_traces", Record{Payload: []byte("job-1")}); err != nil {
		t.Fatal(err)
	}
	recs, err := s.Records("query_requests")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 {
		t.Fatalf("got %d records, want 50", len(recs))
	}
	for i, r := range recs {
		if string(r.Payload) != fmt.Sprintf("req-%03d", i) {
			t.Fatalf("record %d payload = %q (append order lost)", i, r.Payload)
		}
		if !r.Time.Equal(base.Add(time.Duration(i) * time.Second)) {
			t.Fatalf("record %d time = %v, want %v", i, r.Time, base.Add(time.Duration(i)*time.Second))
		}
	}
	if jt, _ := s.Records("job_traces"); len(jt) != 1 || string(jt[0].Payload) != "job-1" {
		t.Fatalf("job_traces = %+v, want the one appended record", jt)
	}
	if _, err := s.Records("nope"); err == nil {
		t.Fatal("unknown component should error")
	}
	s.Close()

	// Reopen: everything is still there.
	s2 := openT(t, dir, "query_requests", "job_traces")
	defer s2.Close()
	recs, err = s2.Records("query_requests")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 {
		t.Fatalf("after reopen: got %d records, want 50", len(recs))
	}
}

func TestRotationAndRetentionBySize(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	// 4KB budget → 1KB segments. Each record frames to ~116 bytes, so a few
	// hundred appends force many rotations and retention drops.
	if err := s.SetPolicy("query_requests", Policy{MaxKB: 4}); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	for i := 0; i < 400; i++ {
		if err := s.Append("query_requests", Record{Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()[0]
	if st.Bytes > 4*1024+int64(len(payload))+16+int64(len(segMagic)) {
		t.Fatalf("retention did not bound size: %d bytes on disk", st.Bytes)
	}
	if st.Segments < 2 {
		t.Fatalf("expected multiple segments, got %d", st.Segments)
	}
	// Oldest segments were pruned: the surviving records are the newest ones,
	// i.e. a contiguous suffix of the appends.
	recs, err := s.Records("query_requests")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || len(recs) >= 400 {
		t.Fatalf("got %d records, want a pruned non-empty suffix of 400", len(recs))
	}
	s.Close()

	// On-disk segment files: the lowest sequence numbers must be gone.
	ents, _ := os.ReadDir(filepath.Join(dir, "query_requests"))
	var seqs []uint64
	for _, e := range ents {
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), "seg-%d.dc", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	if len(seqs) == 0 || seqs[0] == 1 {
		t.Fatalf("oldest-first pruning should have removed seg 1; remaining %v", seqs)
	}
}

func TestRetentionByAge(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	old := time.Now().Add(-2 * time.Hour)
	// Small segments (4KB budget → 1KB rotation) so the old records close
	// whole segments that age retention can drop.
	if err := s.SetPolicy("query_requests", Policy{MaxKB: 4}); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 200)
	for i := 0; i < 10; i++ {
		if err := s.Append("query_requests", Record{Time: old, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append("query_requests", Record{Payload: []byte("fresh")}); err != nil {
		t.Fatal(err)
	}
	before, _ := s.Records("query_requests")
	// An age policy tighter than the old records' age prunes their segments;
	// the active segment (holding "fresh") survives even if some old records
	// share it.
	if err := s.SetPolicy("query_requests", Policy{MaxKB: 1 << 20, MaxAge: time.Hour}); err != nil {
		t.Fatal(err)
	}
	after, err := s.Records("query_requests")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Fatalf("age retention pruned nothing: %d -> %d records", len(before), len(after))
	}
	if string(after[len(after)-1].Payload) != "fresh" {
		t.Fatal("newest record lost to age retention")
	}
	s.Close()
}

func TestPolicyPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	want := Policy{MaxKB: 17, MaxAge: 90 * time.Minute}
	if err := s.SetPolicy("query_requests", want); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openT(t, dir)
	defer s2.Close()
	got, ok := s2.GetPolicy("query_requests")
	if !ok || got != want {
		t.Fatalf("reopened policy = %+v/%v, want %+v", got, ok, want)
	}
}

func TestCrashSimTornTailRecovery(t *testing.T) {
	// Sweep the crash point across a spool of appends: every acknowledged
	// record must be readable after reopen, and the torn frame must vanish.
	for fail := 0; fail <= 12; fail += 3 {
		t.Run(fmt.Sprintf("fail=%d", fail), func(t *testing.T) {
			dir := t.TempDir()
			s := openT(t, dir)
			s.FailAfterRecords(fail)
			var acked int
			var crashed bool
			for i := 0; i < 20; i++ {
				err := s.Append("query_requests", Record{Payload: []byte(fmt.Sprintf("r%02d", i))})
				if err == nil {
					acked++
					continue
				}
				if !errors.Is(err, ErrCrashed) {
					t.Fatal(err)
				}
				crashed = true
				break
			}
			if !crashed || acked != fail {
				t.Fatalf("crashed=%v acked=%d, want crash after %d acks", crashed, acked, fail)
			}
			// Post-crash, every operation reports the crash.
			if _, err := s.Records("query_requests"); !errors.Is(err, ErrCrashed) {
				t.Fatalf("Records after crash = %v, want ErrCrashed", err)
			}
			if err := s.Sync(); !errors.Is(err, ErrCrashed) {
				t.Fatalf("Sync after crash = %v, want ErrCrashed", err)
			}

			s2 := openT(t, dir)
			defer s2.Close()
			recs, err := s2.Records("query_requests")
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != acked {
				t.Fatalf("recovered %d records, want the %d acked before the crash", len(recs), acked)
			}
			for i, r := range recs {
				if string(r.Payload) != fmt.Sprintf("r%02d", i) {
					t.Fatalf("recovered record %d = %q", i, r.Payload)
				}
			}
			// The reopened spool keeps working: appends land after the
			// truncated tail.
			if err := s2.Append("query_requests", Record{Payload: []byte("post")}); err != nil {
				t.Fatal(err)
			}
			recs, _ = s2.Records("query_requests")
			if len(recs) != acked+1 || string(recs[len(recs)-1].Payload) != "post" {
				t.Fatalf("post-recovery append not visible: %d records", len(recs))
			}
		})
	}
}

func TestStats(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, "b_comp", "a_comp")
	defer s.Close()
	if err := s.Append("a_comp", Record{Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if len(st) != 2 || st[0].Component != "a_comp" || st[1].Component != "b_comp" {
		t.Fatalf("stats not sorted by component: %+v", st)
	}
	if st[0].Records != 1 || st[0].Segments != 1 || st[0].Bytes <= int64(len(segMagic)) {
		t.Fatalf("a_comp stats = %+v", st[0])
	}
	if got := s.Components(); len(got) != 2 || got[0] != "a_comp" || got[1] != "b_comp" {
		t.Fatalf("Components() = %v", got)
	}
}

func TestCorruptMidSegmentStopsAtTear(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 5; i++ {
		if err := s.Append("query_requests", Record{Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Flip a byte in the middle of the (single) segment: the scan keeps the
	// prefix before the corruption and drops the rest.
	segPath := filepath.Join(dir, "query_requests", "seg-00000001.dc")
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir)
	defer s2.Close()
	recs, err := s2.Records("query_requests")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) >= 5 {
		t.Fatalf("corruption not detected: %d records", len(recs))
	}
	for i, r := range recs {
		if r.Payload[0] != byte(i) {
			t.Fatalf("surviving prefix reordered at %d", i)
		}
	}
}
