// Package dfs implements the database's internal distributed file system —
// the store the paper's model-deployment component (MD, §3.3) writes PMML
// documents into, making them "accessible to the database query engine and
// User-Defined Functions". Files are replicated on every node so a scoring
// UDx can read them locally wherever it runs.
package dfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// FileInfo describes one stored file.
type FileInfo struct {
	Path     string
	Size     int
	Modified time.Time
}

// FS is the cluster-internal distributed file system.
type FS struct {
	mu    sync.RWMutex
	files map[string][]byte
	meta  map[string]FileInfo
	// clock is injectable for deterministic tests.
	clock func() time.Time
}

// New returns an empty DFS.
func New() *FS {
	return &FS{
		files: make(map[string][]byte),
		meta:  make(map[string]FileInfo),
		clock: time.Now,
	}
}

func clean(path string) string { return strings.TrimPrefix(path, "/") }

// Put stores (or overwrites) a file.
func (f *FS) Put(path string, data []byte) error {
	p := clean(path)
	if p == "" {
		return fmt.Errorf("dfs: empty path")
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files[p] = cp
	f.meta[p] = FileInfo{Path: p, Size: len(cp), Modified: f.clock()}
	return nil
}

// Get reads a file.
func (f *FS) Get(path string) ([]byte, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	data, ok := f.files[clean(path)]
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", path)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// Exists reports whether a file is stored.
func (f *FS) Exists(path string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	_, ok := f.files[clean(path)]
	return ok
}

// Delete removes a file.
func (f *FS) Delete(path string) error {
	p := clean(path)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.files[p]; !ok {
		return fmt.Errorf("dfs: no such file %q", path)
	}
	delete(f.files, p)
	delete(f.meta, p)
	return nil
}

// List returns metadata for files under the given prefix, sorted by path.
func (f *FS) List(prefix string) []FileInfo {
	p := clean(prefix)
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []FileInfo
	for path, info := range f.meta {
		if strings.HasPrefix(path, p) {
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}
