package dfs

import (
	"bytes"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	fs := New()
	data := []byte("<PMML>...</PMML>")
	if err := fs.Put("models/m.pmml", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Get("models/m.pmml")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get = %q, %v", got, err)
	}
	// Returned slice is a copy: mutating it must not corrupt the store.
	got[0] = 'X'
	again, _ := fs.Get("models/m.pmml")
	if again[0] != '<' {
		t.Error("Get must return a copy")
	}
	// Leading slash is normalized.
	if !fs.Exists("/models/m.pmml") {
		t.Error("path normalization broken")
	}
}

func TestOverwrite(t *testing.T) {
	fs := New()
	_ = fs.Put("f", []byte("one"))
	_ = fs.Put("f", []byte("two"))
	got, _ := fs.Get("f")
	if string(got) != "two" {
		t.Errorf("overwrite = %q", got)
	}
}

func TestDeleteAndList(t *testing.T) {
	fs := New()
	_ = fs.Put("models/a", []byte("1"))
	_ = fs.Put("models/b", []byte("22"))
	_ = fs.Put("other/c", []byte("3"))
	infos := fs.List("models/")
	if len(infos) != 2 || infos[0].Path != "models/a" || infos[1].Size != 2 {
		t.Errorf("list = %v", infos)
	}
	if err := fs.Delete("models/a"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("models/a") {
		t.Error("deleted file should be gone")
	}
	if err := fs.Delete("models/a"); err == nil {
		t.Error("double delete should fail")
	}
}

func TestErrors(t *testing.T) {
	fs := New()
	if _, err := fs.Get("missing"); err == nil {
		t.Error("missing file should error")
	}
	if err := fs.Put("", []byte("x")); err == nil {
		t.Error("empty path should error")
	}
}
