// Package expr defines the scalar expression AST shared by the SQL layer and
// the connector's pushdown machinery. Expressions evaluate against a row and
// its schema; the subset matches what Spark's External Data Source API can
// push down (column refs, literals, comparisons, boolean connectives, IS
// NULL) plus the engine-side builtins the connector's generated queries rely
// on: HASH(cols) for locality-aware range scans and MOD for synthetic hash
// partitioning of views (§3.1 of the paper).
package expr

import (
	"fmt"
	"strings"

	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
)

// Expr is a scalar expression evaluable against a row.
type Expr interface {
	// Eval evaluates the expression against row r described by schema s.
	Eval(r types.Row, s *types.Schema) (types.Value, error)
	// SQL renders the expression as SQL text accepted by the vsql parser.
	SQL() string
	// Columns appends the names of referenced columns to dst.
	Columns(dst []string) []string
}

// Col references a named column.
type Col struct{ Name string }

// Eval implements Expr.
func (c *Col) Eval(r types.Row, s *types.Schema) (types.Value, error) {
	i := s.ColIndex(c.Name)
	if i < 0 {
		return types.Value{}, fmt.Errorf("expr: unknown column %q", c.Name)
	}
	return r[i], nil
}

// SQL implements Expr.
func (c *Col) SQL() string { return c.Name }

// Columns implements Expr.
func (c *Col) Columns(dst []string) []string { return append(dst, c.Name) }

// Lit is a literal value.
type Lit struct{ V types.Value }

// Eval implements Expr.
func (l *Lit) Eval(types.Row, *types.Schema) (types.Value, error) { return l.V, nil }

// SQL implements Expr.
func (l *Lit) SQL() string {
	if l.V.Null {
		return "NULL"
	}
	if l.V.T == types.Varchar {
		return "'" + strings.ReplaceAll(l.V.S, "'", "''") + "'"
	}
	return l.V.String()
}

// Columns implements Expr.
func (l *Lit) Columns(dst []string) []string { return dst }

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (o CmpOp) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// Cmp is a binary comparison. SQL three-valued logic applies: comparing with
// NULL yields NULL (represented as a NULL BOOLEAN value).
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Eval implements Expr.
func (c *Cmp) Eval(r types.Row, s *types.Schema) (types.Value, error) {
	lv, err := c.L.Eval(r, s)
	if err != nil {
		return types.Value{}, err
	}
	rv, err := c.R.Eval(r, s)
	if err != nil {
		return types.Value{}, err
	}
	if lv.Null || rv.Null {
		return types.NullValue(types.Bool), nil
	}
	n := types.Compare(lv, rv)
	var out bool
	switch c.Op {
	case EQ:
		out = n == 0
	case NE:
		out = n != 0
	case LT:
		out = n < 0
	case LE:
		out = n <= 0
	case GT:
		out = n > 0
	case GE:
		out = n >= 0
	}
	return types.BoolValue(out), nil
}

// SQL implements Expr.
func (c *Cmp) SQL() string {
	return fmt.Sprintf("%s %s %s", c.L.SQL(), c.Op, c.R.SQL())
}

// Columns implements Expr.
func (c *Cmp) Columns(dst []string) []string { return c.R.Columns(c.L.Columns(dst)) }

// And is logical conjunction with SQL three-valued logic.
type And struct{ L, R Expr }

// Eval implements Expr.
func (a *And) Eval(r types.Row, s *types.Schema) (types.Value, error) {
	lv, err := a.L.Eval(r, s)
	if err != nil {
		return types.Value{}, err
	}
	if !lv.Null && !lv.AsBool() {
		return types.BoolValue(false), nil
	}
	rv, err := a.R.Eval(r, s)
	if err != nil {
		return types.Value{}, err
	}
	if !rv.Null && !rv.AsBool() {
		return types.BoolValue(false), nil
	}
	if lv.Null || rv.Null {
		return types.NullValue(types.Bool), nil
	}
	return types.BoolValue(true), nil
}

// SQL implements Expr.
func (a *And) SQL() string { return fmt.Sprintf("(%s AND %s)", a.L.SQL(), a.R.SQL()) }

// Columns implements Expr.
func (a *And) Columns(dst []string) []string { return a.R.Columns(a.L.Columns(dst)) }

// Or is logical disjunction with SQL three-valued logic.
type Or struct{ L, R Expr }

// Eval implements Expr.
func (o *Or) Eval(r types.Row, s *types.Schema) (types.Value, error) {
	lv, err := o.L.Eval(r, s)
	if err != nil {
		return types.Value{}, err
	}
	if !lv.Null && lv.AsBool() {
		return types.BoolValue(true), nil
	}
	rv, err := o.R.Eval(r, s)
	if err != nil {
		return types.Value{}, err
	}
	if !rv.Null && rv.AsBool() {
		return types.BoolValue(true), nil
	}
	if lv.Null || rv.Null {
		return types.NullValue(types.Bool), nil
	}
	return types.BoolValue(false), nil
}

// SQL implements Expr.
func (o *Or) SQL() string { return fmt.Sprintf("(%s OR %s)", o.L.SQL(), o.R.SQL()) }

// Columns implements Expr.
func (o *Or) Columns(dst []string) []string { return o.R.Columns(o.L.Columns(dst)) }

// Not is logical negation; NOT NULL is NULL.
type Not struct{ E Expr }

// Eval implements Expr.
func (n *Not) Eval(r types.Row, s *types.Schema) (types.Value, error) {
	v, err := n.E.Eval(r, s)
	if err != nil {
		return types.Value{}, err
	}
	if v.Null {
		return v, nil
	}
	return types.BoolValue(!v.AsBool()), nil
}

// SQL implements Expr.
func (n *Not) SQL() string { return fmt.Sprintf("NOT (%s)", n.E.SQL()) }

// Columns implements Expr.
func (n *Not) Columns(dst []string) []string { return n.E.Columns(dst) }

// IsNull tests a value for SQL NULL (negate for IS NOT NULL).
type IsNull struct {
	E      Expr
	Negate bool
}

// Eval implements Expr.
func (i *IsNull) Eval(r types.Row, s *types.Schema) (types.Value, error) {
	v, err := i.E.Eval(r, s)
	if err != nil {
		return types.Value{}, err
	}
	return types.BoolValue(v.Null != i.Negate), nil
}

// SQL implements Expr.
func (i *IsNull) SQL() string {
	if i.Negate {
		return fmt.Sprintf("%s IS NOT NULL", i.E.SQL())
	}
	return fmt.Sprintf("%s IS NULL", i.E.SQL())
}

// Columns implements Expr.
func (i *IsNull) Columns(dst []string) []string { return i.E.Columns(dst) }

// ArithOp is an arithmetic operator.
type ArithOp int

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (o ArithOp) String() string {
	switch o {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	}
	return "?"
}

// Arith is binary arithmetic. Integer op integer yields integer (division
// truncates); any float operand promotes to float. NULL propagates.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval implements Expr.
func (a *Arith) Eval(r types.Row, s *types.Schema) (types.Value, error) {
	lv, err := a.L.Eval(r, s)
	if err != nil {
		return types.Value{}, err
	}
	rv, err := a.R.Eval(r, s)
	if err != nil {
		return types.Value{}, err
	}
	if lv.Null || rv.Null {
		return types.NullValue(types.Float64), nil
	}
	if lv.T == types.Int64 && rv.T == types.Int64 {
		switch a.Op {
		case Add:
			return types.IntValue(lv.I + rv.I), nil
		case Sub:
			return types.IntValue(lv.I - rv.I), nil
		case Mul:
			return types.IntValue(lv.I * rv.I), nil
		case Div:
			if rv.I == 0 {
				return types.Value{}, fmt.Errorf("expr: division by zero")
			}
			return types.IntValue(lv.I / rv.I), nil
		}
	}
	lf, rf := lv.AsFloat(), rv.AsFloat()
	switch a.Op {
	case Add:
		return types.FloatValue(lf + rf), nil
	case Sub:
		return types.FloatValue(lf - rf), nil
	case Mul:
		return types.FloatValue(lf * rf), nil
	case Div:
		if rf == 0 {
			return types.Value{}, fmt.Errorf("expr: division by zero")
		}
		return types.FloatValue(lf / rf), nil
	}
	return types.Value{}, fmt.Errorf("expr: bad arithmetic op")
}

// SQL implements Expr.
func (a *Arith) SQL() string {
	return fmt.Sprintf("(%s %s %s)", a.L.SQL(), a.Op, a.R.SQL())
}

// Columns implements Expr.
func (a *Arith) Columns(dst []string) []string { return a.R.Columns(a.L.Columns(dst)) }

// HashFn is the engine builtin HASH(col, ...). With no arguments it renders
// as HASH(*) and hashes the whole row — the synthetic hash the connector uses
// to partition views and unsegmented tables. Its value is the 32-bit ring
// position as an INTEGER.
type HashFn struct{ Args []Expr }

// Eval implements Expr.
func (h *HashFn) Eval(r types.Row, s *types.Schema) (types.Value, error) {
	if len(h.Args) == 0 {
		return types.IntValue(int64(vhash.Hash(r...))), nil
	}
	vals := make([]types.Value, len(h.Args))
	for i, a := range h.Args {
		v, err := a.Eval(r, s)
		if err != nil {
			return types.Value{}, err
		}
		vals[i] = v
	}
	return types.IntValue(int64(vhash.Hash(vals...))), nil
}

// SQL implements Expr.
func (h *HashFn) SQL() string {
	if len(h.Args) == 0 {
		return "HASH(*)"
	}
	parts := make([]string, len(h.Args))
	for i, a := range h.Args {
		parts[i] = a.SQL()
	}
	return "HASH(" + strings.Join(parts, ", ") + ")"
}

// Columns implements Expr.
func (h *HashFn) Columns(dst []string) []string {
	for _, a := range h.Args {
		dst = a.Columns(dst)
	}
	return dst
}

// ModFn is the engine builtin MOD(x, y) over integers.
type ModFn struct{ X, Y Expr }

// Eval implements Expr.
func (m *ModFn) Eval(r types.Row, s *types.Schema) (types.Value, error) {
	xv, err := m.X.Eval(r, s)
	if err != nil {
		return types.Value{}, err
	}
	yv, err := m.Y.Eval(r, s)
	if err != nil {
		return types.Value{}, err
	}
	if xv.Null || yv.Null {
		return types.NullValue(types.Int64), nil
	}
	y := yv.AsInt()
	if y == 0 {
		return types.Value{}, fmt.Errorf("expr: MOD by zero")
	}
	x := xv.AsInt()
	rem := x % y
	if rem < 0 {
		rem += y
	}
	return types.IntValue(rem), nil
}

// SQL implements Expr.
func (m *ModFn) SQL() string { return fmt.Sprintf("MOD(%s, %s)", m.X.SQL(), m.Y.SQL()) }

// Columns implements Expr.
func (m *ModFn) Columns(dst []string) []string { return m.Y.Columns(m.X.Columns(dst)) }

// EvalPredicate evaluates e as a WHERE-clause predicate: NULL counts as
// false, per SQL semantics.
func EvalPredicate(e Expr, r types.Row, s *types.Schema) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := e.Eval(r, s)
	if err != nil {
		return false, err
	}
	return !v.Null && v.AsBool(), nil
}

// Conjoin combines predicates with AND, ignoring nils.
func Conjoin(es ...Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &And{L: out, R: e}
		}
	}
	return out
}
