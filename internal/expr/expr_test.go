package expr

import (
	"testing"

	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
)

var testSchema = types.NewSchema(
	types.Column{Name: "id", T: types.Int64},
	types.Column{Name: "x", T: types.Float64},
	types.Column{Name: "name", T: types.Varchar},
	types.Column{Name: "done", T: types.Bool},
)

var testRow = types.Row{
	types.IntValue(7),
	types.FloatValue(1.5),
	types.StringValue("alpha"),
	types.BoolValue(false),
}

func eval(t *testing.T, e Expr) types.Value {
	t.Helper()
	v, err := e.Eval(testRow, &testSchema)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e.SQL(), err)
	}
	return v
}

func TestColAndLit(t *testing.T) {
	if v := eval(t, &Col{Name: "id"}); v.I != 7 {
		t.Errorf("id = %v", v)
	}
	if v := eval(t, &Col{Name: "NAME"}); v.S != "alpha" {
		t.Errorf("case-insensitive col lookup failed: %v", v)
	}
	if _, err := (&Col{Name: "nope"}).Eval(testRow, &testSchema); err == nil {
		t.Error("unknown column should error")
	}
	if v := eval(t, &Lit{V: types.FloatValue(2.5)}); v.F != 2.5 {
		t.Errorf("lit = %v", v)
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		op   CmpOp
		l, r Expr
		want bool
	}{
		{EQ, &Col{Name: "id"}, &Lit{V: types.IntValue(7)}, true},
		{NE, &Col{Name: "id"}, &Lit{V: types.IntValue(7)}, false},
		{LT, &Col{Name: "x"}, &Lit{V: types.FloatValue(2)}, true},
		{GE, &Col{Name: "id"}, &Lit{V: types.FloatValue(6.5)}, true},
		{GT, &Col{Name: "name"}, &Lit{V: types.StringValue("aaa")}, true},
	}
	for _, c := range cases {
		v := eval(t, &Cmp{Op: c.op, L: c.l, R: c.r})
		if v.B != c.want {
			t.Errorf("%s: got %v", (&Cmp{Op: c.op, L: c.l, R: c.r}).SQL(), v)
		}
	}
}

func TestNullPropagation(t *testing.T) {
	null := &Lit{V: types.NullValue(types.Int64)}
	v := eval(t, &Cmp{Op: EQ, L: null, R: &Lit{V: types.IntValue(1)}})
	if !v.Null {
		t.Error("NULL = 1 should be NULL")
	}
	// NULL AND false = false; NULL OR true = true (three-valued logic).
	f := &Lit{V: types.BoolValue(false)}
	tr := &Lit{V: types.BoolValue(true)}
	if v := eval(t, &And{L: null, R: f}); v.Null || v.B {
		t.Errorf("NULL AND false = %v, want false", v)
	}
	if v := eval(t, &Or{L: null, R: tr}); v.Null || !v.B {
		t.Errorf("NULL OR true = %v, want true", v)
	}
	if v := eval(t, &And{L: null, R: tr}); !v.Null {
		t.Errorf("NULL AND true = %v, want NULL", v)
	}
	if v := eval(t, &Not{E: null}); !v.Null {
		t.Errorf("NOT NULL = %v, want NULL", v)
	}
}

func TestIsNull(t *testing.T) {
	null := &Lit{V: types.NullValue(types.Int64)}
	if v := eval(t, &IsNull{E: null}); !v.B {
		t.Error("NULL IS NULL should be true")
	}
	if v := eval(t, &IsNull{E: &Col{Name: "id"}, Negate: true}); !v.B {
		t.Error("id IS NOT NULL should be true")
	}
}

func TestArith(t *testing.T) {
	if v := eval(t, &Arith{Op: Add, L: &Col{Name: "id"}, R: &Lit{V: types.IntValue(3)}}); v.I != 10 || v.T != types.Int64 {
		t.Errorf("7+3 = %v", v)
	}
	if v := eval(t, &Arith{Op: Div, L: &Lit{V: types.IntValue(7)}, R: &Lit{V: types.IntValue(2)}}); v.I != 3 {
		t.Errorf("7/2 = %v (integer division)", v)
	}
	if v := eval(t, &Arith{Op: Mul, L: &Col{Name: "x"}, R: &Lit{V: types.IntValue(2)}}); v.F != 3.0 {
		t.Errorf("1.5*2 = %v", v)
	}
	if _, err := (&Arith{Op: Div, L: &Lit{V: types.IntValue(1)}, R: &Lit{V: types.IntValue(0)}}).Eval(testRow, &testSchema); err == nil {
		t.Error("division by zero should error")
	}
}

func TestHashFnMatchesVhash(t *testing.T) {
	v := eval(t, &HashFn{Args: []Expr{&Col{Name: "id"}}})
	if uint32(v.I) != vhash.Hash(types.IntValue(7)) {
		t.Error("HASH(id) must agree with vhash.Hash")
	}
	v = eval(t, &HashFn{})
	if uint32(v.I) != vhash.Hash(testRow...) {
		t.Error("HASH(*) must hash the whole row")
	}
}

func TestModFn(t *testing.T) {
	if v := eval(t, &ModFn{X: &Lit{V: types.IntValue(10)}, Y: &Lit{V: types.IntValue(3)}}); v.I != 1 {
		t.Errorf("MOD(10,3) = %v", v)
	}
	if v := eval(t, &ModFn{X: &Lit{V: types.IntValue(-1)}, Y: &Lit{V: types.IntValue(3)}}); v.I != 2 {
		t.Errorf("MOD(-1,3) = %v, want 2 (non-negative)", v)
	}
	if _, err := (&ModFn{X: &Lit{V: types.IntValue(1)}, Y: &Lit{V: types.IntValue(0)}}).Eval(testRow, &testSchema); err == nil {
		t.Error("MOD by zero should error")
	}
}

func TestEvalPredicate(t *testing.T) {
	ok, err := EvalPredicate(nil, testRow, &testSchema)
	if err != nil || !ok {
		t.Error("nil predicate should be true")
	}
	null := &Lit{V: types.NullValue(types.Bool)}
	ok, err = EvalPredicate(null, testRow, &testSchema)
	if err != nil || ok {
		t.Error("NULL predicate should be false")
	}
}

func TestConjoin(t *testing.T) {
	if Conjoin() != nil {
		t.Error("Conjoin() should be nil")
	}
	a := &Cmp{Op: GT, L: &Col{Name: "id"}, R: &Lit{V: types.IntValue(1)}}
	if Conjoin(nil, a, nil) != a {
		t.Error("Conjoin of one expr should return it unwrapped")
	}
	c := Conjoin(a, a)
	if _, ok := c.(*And); !ok {
		t.Error("Conjoin of two should be And")
	}
}

func TestSQLRendering(t *testing.T) {
	e := Conjoin(
		&Cmp{Op: GE, L: &HashFn{Args: []Expr{&Col{Name: "id"}}}, R: &Lit{V: types.IntValue(0)}},
		&Cmp{Op: LT, L: &HashFn{Args: []Expr{&Col{Name: "id"}}}, R: &Lit{V: types.IntValue(100)}},
	)
	want := "(HASH(id) >= 0 AND HASH(id) < 100)"
	if got := e.SQL(); got != want {
		t.Errorf("SQL = %q, want %q", got, want)
	}
	lit := &Lit{V: types.StringValue("o'brien")}
	if got := lit.SQL(); got != "'o''brien'" {
		t.Errorf("string literal SQL = %q", got)
	}
}

func TestColumns(t *testing.T) {
	e := &And{
		L: &Cmp{Op: EQ, L: &Col{Name: "a"}, R: &Col{Name: "b"}},
		R: &IsNull{E: &Col{Name: "c"}},
	}
	cols := e.Columns(nil)
	if len(cols) != 3 || cols[0] != "a" || cols[1] != "b" || cols[2] != "c" {
		t.Errorf("Columns = %v", cols)
	}
}
