package expr

import (
	"fmt"
	"sort"
	"strings"

	"vsfabric/internal/types"
)

// FuncCall is a call to a named function the expression layer does not know
// intrinsically — engine builtins like LAST_EPOCH() and User-Defined
// Extensions like PMMLPredict (§3.3 of the paper). The planner binds Impl by
// looking the name up in the engine's UDx registry; evaluating an unbound
// call is an error.
//
// Params carries Vertica's USING PARAMETERS clause, e.g.
// PMMLPredict(a, b USING PARAMETERS model_name='regression').
type FuncCall struct {
	Name   string
	Args   []Expr
	Params map[string]string
	Impl   func(args []types.Value, params map[string]string) (types.Value, error)
}

// Eval implements Expr.
func (f *FuncCall) Eval(r types.Row, s *types.Schema) (types.Value, error) {
	if f.Impl == nil {
		return types.Value{}, fmt.Errorf("expr: unbound function %q (no such builtin or UDx)", f.Name)
	}
	vals := make([]types.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(r, s)
		if err != nil {
			return types.Value{}, err
		}
		vals[i] = v
	}
	return f.Impl(vals, f.Params)
}

// SQL implements Expr.
func (f *FuncCall) SQL() string {
	var b strings.Builder
	b.WriteString(f.Name)
	b.WriteByte('(')
	for i, a := range f.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.SQL())
	}
	if len(f.Params) > 0 {
		b.WriteString(" USING PARAMETERS ")
		keys := make([]string, 0, len(f.Params))
		for k := range f.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s='%s'", k, strings.ReplaceAll(f.Params[k], "'", "''"))
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Columns implements Expr.
func (f *FuncCall) Columns(dst []string) []string {
	for _, a := range f.Args {
		dst = a.Columns(dst)
	}
	return dst
}
