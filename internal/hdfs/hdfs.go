// Package hdfs implements the distributed block store the paper uses both as
// the origin of its datasets and as the comparison baseline of §4.7.2: a
// namenode tracking files as sequences of fixed-size blocks, datanodes
// holding replicated block data, and block-granular reads (Spark's native
// HDFS integration schedules one partition per block).
package hdfs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"vsfabric/internal/sim"
)

// DefaultBlockSize mirrors the paper's configuration (§4.1: "HDFS is
// configured with the default block size (64MB)").
const DefaultBlockSize = 64 << 20

// DefaultReplication mirrors the paper's 3× replication.
const DefaultReplication = 3

// Config configures a filesystem.
type Config struct {
	DataNodes   int
	BlockSize   int
	Replication int
}

// BlockRef identifies one block of a file.
type BlockRef struct {
	Path     string
	Index    int
	Size     int
	Replicas []int // datanode ids holding the block; Replicas[0] is primary
}

type fileMeta struct {
	path   string
	size   int
	blocks []BlockRef
}

// FS is an HDFS-like filesystem.
type FS struct {
	cfg Config

	mu     sync.RWMutex
	files  map[string]*fileMeta
	store  []map[string][]byte // per-datanode block key → data
	nextDN int
}

// New creates a filesystem.
func New(cfg Config) (*FS, error) {
	if cfg.DataNodes <= 0 {
		return nil, fmt.Errorf("hdfs: need at least one datanode")
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.Replication <= 0 {
		cfg.Replication = DefaultReplication
	}
	if cfg.Replication > cfg.DataNodes {
		cfg.Replication = cfg.DataNodes
	}
	fs := &FS{cfg: cfg, files: make(map[string]*fileMeta)}
	for i := 0; i < cfg.DataNodes; i++ {
		fs.store = append(fs.store, make(map[string][]byte))
	}
	return fs, nil
}

// Config returns the filesystem configuration.
func (f *FS) Config() Config { return f.cfg }

func blockKey(path string, idx int) string { return fmt.Sprintf("%s#%d", path, idx) }

// WriteFile stores data as a new file, splitting into blocks placed
// round-robin with pipeline replication onto the following datanodes. rec
// (optional) records the ingest and replication flows; clientNode names the
// writer's node in the simulated topology.
func (f *FS) WriteFile(path string, data []byte, rec *sim.TaskRec, clientNode string, codec sim.CPUKind) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.files[path]; ok {
		return fmt.Errorf("hdfs: file %q already exists (HDFS files are immutable)", path)
	}
	meta := &fileMeta{path: path, size: len(data)}
	for off, idx := 0, 0; off < len(data) || idx == 0; idx++ {
		end := off + f.cfg.BlockSize
		if end > len(data) {
			end = len(data)
		}
		block := make([]byte, end-off)
		copy(block, data[off:end])
		primary := f.nextDN % f.cfg.DataNodes
		f.nextDN++
		ref := BlockRef{Path: path, Index: idx, Size: len(block)}
		route := map[[2]string]float64{}
		for r := 0; r < f.cfg.Replication; r++ {
			dn := (primary + r) % f.cfg.DataNodes
			ref.Replicas = append(ref.Replicas, dn)
			f.store[dn][blockKey(path, idx)] = block
			if r > 0 {
				prev := (primary + r - 1) % f.cfg.DataNodes
				route[[2]string{sim.HName(prev), sim.HName(dn)}] = float64(len(block))
			}
		}
		if rec != nil && len(block) > 0 {
			rec.Add(sim.Event{
				Type:    sim.BlockFlowEv,
				VNode:   sim.HName(primary),
				CNode:   clientNode,
				Bytes:   float64(len(block)),
				Write:   true,
				CPUKind: codec,
				Route:   route,
			})
		}
		meta.blocks = append(meta.blocks, ref)
		off = end
		if off >= len(data) {
			break
		}
	}
	f.files[path] = meta
	return nil
}

// Blocks returns the block layout of a file.
func (f *FS) Blocks(path string) ([]BlockRef, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	meta, ok := f.files[path]
	if !ok {
		return nil, fmt.Errorf("hdfs: no such file %q", path)
	}
	out := make([]BlockRef, len(meta.blocks))
	copy(out, meta.blocks)
	return out, nil
}

// ReadBlock fetches one block from its primary replica (or the first live
// replica). rec records the transfer.
func (f *FS) ReadBlock(ref BlockRef, rec *sim.TaskRec, clientNode string, codec sim.CPUKind) ([]byte, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, dn := range ref.Replicas {
		if data, ok := f.store[dn][blockKey(ref.Path, ref.Index)]; ok {
			if rec != nil && len(data) > 0 {
				rec.Add(sim.Event{
					Type:    sim.BlockFlowEv,
					VNode:   sim.HName(dn),
					CNode:   clientNode,
					Bytes:   float64(len(data)),
					CPUKind: codec,
				})
			}
			out := make([]byte, len(data))
			copy(out, data)
			return out, nil
		}
	}
	return nil, fmt.Errorf("hdfs: block %s#%d unavailable", ref.Path, ref.Index)
}

// ReadFile fetches a whole file; codec names the client-side decode work
// recorded with each block transfer.
func (f *FS) ReadFile(path string, rec *sim.TaskRec, clientNode string, codec sim.CPUKind) ([]byte, error) {
	blocks, err := f.Blocks(path)
	if err != nil {
		return nil, err
	}
	var out []byte
	for _, b := range blocks {
		data, err := f.ReadBlock(b, rec, clientNode, codec)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
	}
	return out, nil
}

// Delete removes a file and its blocks.
func (f *FS) Delete(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	meta, ok := f.files[path]
	if !ok {
		return fmt.Errorf("hdfs: no such file %q", path)
	}
	for _, b := range meta.blocks {
		for _, dn := range b.Replicas {
			delete(f.store[dn], blockKey(path, b.Index))
		}
	}
	delete(f.files, path)
	return nil
}

// List returns file paths under a prefix, sorted.
func (f *FS) List(prefix string) []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []string
	for p := range f.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// FileSize returns the file's byte size.
func (f *FS) FileSize(path string) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	meta, ok := f.files[path]
	if !ok {
		return 0, fmt.Errorf("hdfs: no such file %q", path)
	}
	return meta.size, nil
}

// TotalBlocks counts blocks across files under a prefix (the paper quotes
// its dataset as "2240 HDFS blocks").
func (f *FS) TotalBlocks(prefix string) int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	n := 0
	for p, meta := range f.files {
		if strings.HasPrefix(p, prefix) {
			n += len(meta.blocks)
		}
	}
	return n
}
