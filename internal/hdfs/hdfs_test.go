package hdfs

import (
	"bytes"
	"testing"

	"vsfabric/internal/sim"
)

func newFS(t *testing.T, nodes, blockSize, repl int) *FS {
	t.Helper()
	fs, err := New(Config{DataNodes: nodes, BlockSize: blockSize, Replication: repl})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := newFS(t, 4, 10, 3)
	data := []byte("hello block store, this splits into several blocks")
	if err := fs.WriteFile("a/b.txt", data, nil, "", sim.CPUCSVFormat); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("a/b.txt", nil, "", sim.CPUCSVParse)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("round trip mismatch: %q", got)
	}
	sz, err := fs.FileSize("a/b.txt")
	if err != nil || sz != len(data) {
		t.Errorf("size = %d, %v", sz, err)
	}
}

func TestBlockLayout(t *testing.T) {
	fs := newFS(t, 4, 10, 2)
	data := make([]byte, 35) // 4 blocks: 10+10+10+5
	if err := fs.WriteFile("f", data, nil, "", sim.CPUCSVFormat); err != nil {
		t.Fatal(err)
	}
	blocks, err := fs.Blocks("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(blocks))
	}
	if blocks[3].Size != 5 {
		t.Errorf("last block size = %d", blocks[3].Size)
	}
	for _, b := range blocks {
		if len(b.Replicas) != 2 {
			t.Errorf("block %d has %d replicas", b.Index, len(b.Replicas))
		}
	}
	if fs.TotalBlocks("") != 4 {
		t.Errorf("TotalBlocks = %d", fs.TotalBlocks(""))
	}
}

func TestReplicationCappedAtNodes(t *testing.T) {
	fs := newFS(t, 2, 10, 5)
	if fs.Config().Replication != 2 {
		t.Errorf("replication = %d, want capped at 2", fs.Config().Replication)
	}
}

func TestImmutableFiles(t *testing.T) {
	fs := newFS(t, 2, 10, 1)
	if err := fs.WriteFile("f", []byte("x"), nil, "", sim.CPUCSVFormat); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("f", []byte("y"), nil, "", sim.CPUCSVFormat); err == nil {
		t.Error("overwriting should fail (HDFS files are immutable)")
	}
}

func TestDeleteAndList(t *testing.T) {
	fs := newFS(t, 2, 10, 1)
	_ = fs.WriteFile("dir/a", []byte("1"), nil, "", sim.CPUCSVFormat)
	_ = fs.WriteFile("dir/b", []byte("2"), nil, "", sim.CPUCSVFormat)
	_ = fs.WriteFile("other/c", []byte("3"), nil, "", sim.CPUCSVFormat)
	if got := fs.List("dir/"); len(got) != 2 || got[0] != "dir/a" {
		t.Errorf("List = %v", got)
	}
	if err := fs.Delete("dir/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("dir/a", nil, "", sim.CPUCSVParse); err == nil {
		t.Error("deleted file should be gone")
	}
	if err := fs.Delete("dir/a"); err == nil {
		t.Error("double delete should fail")
	}
}

func TestRecordingEvents(t *testing.T) {
	fs := newFS(t, 4, 8, 3)
	tr := sim.NewTrace()
	rec := tr.Task("w", "s0")
	data := make([]byte, 20) // 3 blocks
	if err := fs.WriteFile("f", data, rec, "s0", sim.CPUColfileEnc); err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	writes := 0
	for _, e := range events {
		if e.Type == sim.BlockFlowEv && e.Write {
			writes++
			if len(e.Route) != 2 {
				t.Errorf("write should record 2 replication hops, got %v", e.Route)
			}
		}
	}
	if writes != 3 {
		t.Errorf("recorded %d write flows, want 3", writes)
	}
	rec2 := tr.Task("r", "s1")
	if _, err := fs.ReadFile("f", rec2, "s1", sim.CPUColfileDec); err != nil {
		t.Fatal(err)
	}
	reads := 0
	for _, e := range rec2.Events() {
		if e.Type == sim.BlockFlowEv && !e.Write {
			reads++
		}
	}
	if reads != 3 {
		t.Errorf("recorded %d read flows, want 3", reads)
	}
}

func TestEmptyFile(t *testing.T) {
	fs := newFS(t, 2, 10, 1)
	if err := fs.WriteFile("empty", nil, nil, "", sim.CPUCSVFormat); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("empty", nil, "", sim.CPUCSVParse)
	if err != nil || len(got) != 0 {
		t.Errorf("empty file read = %v, %v", got, err)
	}
}
