// Package hdfssource is Spark's native HDFS integration for the comparison
// baseline of §4.7.2: DataFrames written as columnar files (one or more
// block-sized files per partition) and read back with one Spark partition
// per HDFS block — the property that gives the HDFS read path its very high
// default parallelism (2240 partitions for the paper's dataset).
package hdfssource

import (
	"fmt"

	"vsfabric/internal/colfile"
	"vsfabric/internal/hdfs"
	"vsfabric/internal/sim"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
)

// Write saves a DataFrame under dir, one or more files per partition, each
// at most maxFileBytes of encoded data (0 = the filesystem's block size) so
// every file is a single block.
func Write(fs *hdfs.FS, dir string, df *spark.DataFrame, maxFileBytes int) error {
	if maxFileBytes <= 0 {
		maxFileBytes = fs.Config().BlockSize
	}
	schema := df.Schema()
	rdd, err := df.RDD()
	if err != nil {
		return err
	}
	return rdd.ForeachPartition(func(tc *spark.TaskContext, rows []types.Row) error {
		fileIdx := 0
		flush := func(batch []types.Row) error {
			if len(batch) == 0 && fileIdx > 0 {
				return nil
			}
			data, err := colfile.WriteAll(schema, batch, 0)
			if err != nil {
				return err
			}
			path := fmt.Sprintf("%s/part-%05d-%03d.vcf", dir, tc.PartitionID, fileIdx)
			fileIdx++
			return fs.WriteFile(path, data, tc.Rec, tc.ExecNode, sim.CPUColfileEnc)
		}
		// Estimate rows per file from the first row's width; colfile
		// encoding is never larger than ~1.1× raw for our types.
		var batch []types.Row
		batchBytes := 0
		for _, r := range rows {
			sz := types.WireSize(r)
			if batchBytes+sz > maxFileBytes && len(batch) > 0 {
				if err := flush(batch); err != nil {
					return err
				}
				batch, batchBytes = batch[:0], 0
			}
			batch = append(batch, r)
			batchBytes += sz
		}
		return flush(batch)
	})
}

// Read loads the files under dir as a DataFrame with one partition per file
// (= per block, since Write caps files at one block).
func Read(sc *spark.Context, fs *hdfs.FS, dir string) (*spark.DataFrame, error) {
	files := fs.List(dir + "/")
	if len(files) == 0 {
		return nil, fmt.Errorf("hdfssource: no files under %q", dir)
	}
	// Schema from the first file's header (its first block suffices).
	blocks, err := fs.Blocks(files[0])
	if err != nil {
		return nil, err
	}
	head, err := fs.ReadBlock(blocks[0], nil, "", sim.CPUColfileDec)
	if err != nil {
		return nil, err
	}
	rd, err := colfile.NewReader(head)
	if err != nil {
		return nil, err
	}
	schema := rd.Schema()

	rdd := spark.NewRDD(sc, len(files), func(tc *spark.TaskContext, p int) ([]types.Row, error) {
		data, err := fs.ReadFile(files[p], tc.Rec, tc.ExecNode, sim.CPUColfileDec)
		if err != nil {
			return nil, err
		}
		s, rows, err := colfile.ReadAll(data)
		if err != nil {
			return nil, err
		}
		if !s.Equal(schema) {
			return nil, fmt.Errorf("hdfssource: %s schema %s != %s", files[p], s, schema)
		}
		return rows, nil
	})
	return spark.NewDataFrame(sc, schema, rdd), nil
}
