package hdfssource

import (
	"testing"

	"vsfabric/internal/hdfs"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
)

func setup(t *testing.T) (*spark.Context, *hdfs.FS) {
	t.Helper()
	sc := spark.NewContext(spark.Conf{NumExecutors: 2, CoresPerExecutor: 4})
	fs, err := hdfs.New(hdfs.Config{DataNodes: 3, BlockSize: 2048, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	return sc, fs
}

func frame(sc *spark.Context, n, parts int) *spark.DataFrame {
	schema := types.NewSchema(
		types.Column{Name: "id", T: types.Int64},
		types.Column{Name: "txt", T: types.Varchar},
	)
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{types.IntValue(int64(i)), types.StringValue("row-data-payload")}
	}
	return spark.CreateDataFrame(sc, schema, rows, parts)
}

func TestWriteReadRoundTrip(t *testing.T) {
	sc, fs := setup(t)
	df := frame(sc, 500, 4)
	if err := Write(fs, "data/d1", df, 0); err != nil {
		t.Fatal(err)
	}
	back, err := Read(sc, fs, "data/d1")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := back.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 500 {
		t.Fatalf("round trip: %d rows", len(rows))
	}
	seen := map[int64]bool{}
	for _, r := range rows {
		if seen[r[0].I] {
			t.Fatalf("duplicate %d", r[0].I)
		}
		seen[r[0].I] = true
	}
	if !back.Schema().Equal(df.Schema()) {
		t.Errorf("schema = %v", back.Schema())
	}
}

func TestOnePartitionPerBlock(t *testing.T) {
	sc, fs := setup(t)
	df := frame(sc, 2000, 2)
	// Force many small files so the read side gets many partitions.
	if err := Write(fs, "blk/d1", df, 1024); err != nil {
		t.Fatal(err)
	}
	files := len(fs.List("blk/d1/"))
	if files < 10 {
		t.Fatalf("expected many block files, got %d", files)
	}
	back, err := Read(sc, fs, "blk/d1")
	if err != nil {
		t.Fatal(err)
	}
	np, err := back.NumPartitions()
	if err != nil {
		t.Fatal(err)
	}
	if np != files {
		t.Errorf("partitions = %d, files = %d (want one per block)", np, files)
	}
	n, err := back.Count()
	if err != nil || n != 2000 {
		t.Errorf("count = %d, %v", n, err)
	}
}

func TestReadMissingDir(t *testing.T) {
	sc, fs := setup(t)
	if _, err := Read(sc, fs, "missing"); err == nil {
		t.Error("missing dir should error")
	}
}
