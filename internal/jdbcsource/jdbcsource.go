// Package jdbcsource reimplements Spark 1.5's JDBC Default Source — the
// baseline of §4.7.1 — with its exact limitations, so the comparison against
// the connector is honest:
//
//   - Load parallelism requires an integer partition column with
//     user-supplied lower/upper bounds; partitions are equal strides of that
//     value range, NOT hash-ring ranges, so every query touches data on
//     every node (intra-Vertica gather traffic).
//   - Every connection goes through the single user-provided host.
//   - Loads are not pinned to an epoch: tasks running (or re-running) at
//     different times can see different table states — no consistent
//     snapshot.
//   - Save issues batched INSERT statements per partition, each partition
//     committing independently: a failed/restarted task can leave partial or
//     duplicate data. (§4.7.1: "they are not all under transaction control".)
package jdbcsource

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"vsfabric/internal/client"
	"vsfabric/internal/obs"
	"vsfabric/internal/sim"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
)

// taskCtx routes sim cost events to the task's recorder and carries the
// executor's name as the session peer.
func taskCtx(tc *spark.TaskContext) context.Context {
	return obs.WithPeer(obs.With(context.Background(), sim.Recorder{Rec: tc.Rec}), tc.ExecNode)
}

// SourceName is the registration name, mirroring Spark's "jdbc" format.
const SourceName = "jdbc"

// Source implements the JDBC default source over the driver interface.
type Source struct {
	pool client.Connector
}

// New creates the source.
func New(pool client.Connector) *Source { return &Source{pool: pool} }

// Register installs the source under SourceName.
func (s *Source) Register() { spark.RegisterSource(SourceName, s) }

type options struct {
	host            string
	table           string
	partitionColumn string
	lowerBound      int64
	upperBound      int64
	numPartitions   int
	batchSize       int
}

func parseOptions(m map[string]string) (options, error) {
	o := options{numPartitions: 1, batchSize: 500}
	get := func(k string) string {
		for mk, v := range m {
			if strings.EqualFold(mk, k) {
				return v
			}
		}
		return ""
	}
	o.host = get("url")
	if o.host == "" {
		o.host = get("host")
	}
	o.table = get("dbtable")
	if o.table == "" {
		o.table = get("table")
	}
	if o.host == "" || o.table == "" {
		return o, fmt.Errorf("jdbcsource: url/host and dbtable/table are required")
	}
	o.partitionColumn = get("partitionColumn")
	if v := get("lowerBound"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return o, fmt.Errorf("jdbcsource: bad lowerBound %q", v)
		}
		o.lowerBound = n
	}
	if v := get("upperBound"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return o, fmt.Errorf("jdbcsource: bad upperBound %q", v)
		}
		o.upperBound = n
	}
	if v := get("numPartitions"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return o, fmt.Errorf("jdbcsource: bad numPartitions %q", v)
		}
		o.numPartitions = n
	}
	if v := get("batchsize"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return o, fmt.Errorf("jdbcsource: bad batchsize %q", v)
		}
		o.batchSize = n
	}
	// Spark's documented behaviour: without a partition column (and both
	// bounds), everything collapses to a single partition.
	if o.partitionColumn == "" || o.upperBound <= o.lowerBound {
		o.numPartitions = 1
	}
	return o, nil
}

// relation is the loaded JDBC relation.
type relation struct {
	sc     *spark.Context
	pool   client.Connector
	opts   options
	schema types.Schema
}

// CreateRelation implements spark.RelationProvider.
func (s *Source) CreateRelation(sc *spark.Context, m map[string]string) (spark.BaseRelation, error) {
	opts, err := parseOptions(m)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	conn, err := s.pool.Connect(ctx, opts.host)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	res, err := conn.Execute(ctx, fmt.Sprintf(
		"SELECT column_name, data_type FROM v_catalog.columns WHERE table_name = '%s'", escape(opts.table)))
	if err != nil {
		return nil, err
	}
	rel := &relation{sc: sc, pool: s.pool, opts: opts}
	for _, r := range res.Rows {
		t, err := types.ParseType(r[1].S)
		if err != nil {
			return nil, err
		}
		rel.schema.Cols = append(rel.schema.Cols, types.Column{Name: r[0].S, T: t})
	}
	if rel.schema.NumCols() == 0 {
		return nil, fmt.Errorf("jdbcsource: table %q not found", opts.table)
	}
	return rel, nil
}

// Schema implements spark.BaseRelation.
func (r *relation) Schema() (types.Schema, error) { return r.schema, nil }

// strideBounds computes Spark's equal-stride partition predicates over
// [lowerBound, upperBound).
func (r *relation) stridePredicate(p int) string {
	o := r.opts
	if o.numPartitions == 1 {
		return ""
	}
	span := o.upperBound - o.lowerBound
	stride := span / int64(o.numPartitions)
	lo := o.lowerBound + stride*int64(p)
	hi := lo + stride
	switch {
	case p == 0:
		return fmt.Sprintf("%s < %d", o.partitionColumn, hi)
	case p == o.numPartitions-1:
		return fmt.Sprintf("%s >= %d", o.partitionColumn, lo)
	default:
		return fmt.Sprintf("%s >= %d AND %s < %d", o.partitionColumn, lo, o.partitionColumn, hi)
	}
}

// BuildScan implements spark.PrunedFilteredScan. Note what it does NOT do:
// no hash-ring locality (queries gather from every node through the one
// host) and no epoch pinning (no cross-task snapshot).
func (r *relation) BuildScan(requiredCols []string, filters []spark.Filter) (*spark.RDD[types.Row], error) {
	if len(requiredCols) == 0 {
		requiredCols = r.schema.ColNames()
	}
	var conds []string
	for _, f := range filters {
		s, err := filterSQL(f)
		if err != nil {
			return nil, err
		}
		conds = append(conds, s)
	}
	rel := r
	return spark.NewRDD(r.sc, r.opts.numPartitions, func(tc *spark.TaskContext, p int) ([]types.Row, error) {
		if err := tc.Checkpoint("jdbc.task_start"); err != nil {
			return nil, err
		}
		where := append([]string{}, conds...)
		if pred := rel.stridePredicate(p); pred != "" {
			where = append(where, pred)
		}
		sql := fmt.Sprintf("SELECT %s FROM %s", strings.Join(requiredCols, ", "), rel.opts.table)
		if len(where) > 0 {
			sql += " WHERE " + strings.Join(where, " AND ")
		}
		// All partitions connect to the single configured host.
		ctx := taskCtx(tc)
		conn, err := rel.pool.Connect(ctx, rel.opts.host)
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		// The raw pool does not emit connect costs itself.
		tc.Rec.Fixed(sim.FixedConnect)
		res, err := conn.Execute(ctx, sql)
		if err != nil {
			return nil, err
		}
		return res.Rows, nil
	}), nil
}

// SaveRelation implements spark.CreatableRelationProvider: batched INSERTs,
// one independent transaction per partition (the §4.7.1 save path with its
// partial/duplicate-load hazard).
func (s *Source) SaveRelation(sc *spark.Context, mode spark.SaveMode, m map[string]string, df *spark.DataFrame) error {
	opts, err := parseOptions(m)
	if err != nil {
		return err
	}
	schema := df.Schema()
	sctx := context.Background()
	setup, err := s.pool.Connect(sctx, opts.host)
	if err != nil {
		return err
	}
	exists := true
	if _, err := setup.Execute(sctx, "SELECT COUNT(*) FROM "+opts.table); err != nil {
		exists = false
	}
	switch mode {
	case spark.SaveOverwrite:
		if exists {
			if _, err := setup.Execute(sctx, "DROP TABLE "+opts.table); err != nil {
				setup.Close()
				return err
			}
		}
		exists = false
	case spark.SaveErrorIfExists:
		if exists {
			setup.Close()
			return fmt.Errorf("jdbcsource: table %q already exists", opts.table)
		}
	}
	if !exists {
		if _, err := setup.Execute(sctx, fmt.Sprintf("CREATE TABLE %s %s", opts.table, ddlColumns(schema))); err != nil {
			setup.Close()
			return err
		}
	}
	setup.Close()

	rdd, err := df.RDD()
	if err != nil {
		return err
	}
	table, host, batch := opts.table, opts.host, opts.batchSize
	return rdd.ForeachPartition(func(tc *spark.TaskContext, rows []types.Row) error {
		if err := tc.Checkpoint("jdbc.save.task_start"); err != nil {
			return err
		}
		ctx := taskCtx(tc)
		conn, err := s.pool.Connect(ctx, host)
		if err != nil {
			return err
		}
		defer conn.Close()
		// The raw pool does not emit connect costs itself.
		tc.Rec.Fixed(sim.FixedConnect)
		if _, err := conn.Execute(ctx, "BEGIN"); err != nil {
			return err
		}
		for off := 0; off < len(rows); off += batch {
			end := off + batch
			if end > len(rows) {
				end = len(rows)
			}
			var vals []string
			for _, r := range rows[off:end] {
				vals = append(vals, "("+rowLiterals(r)+")")
			}
			if _, err := conn.Execute(ctx, fmt.Sprintf("INSERT INTO %s VALUES %s", table, strings.Join(vals, ", "))); err != nil {
				return err
			}
			if err := tc.Checkpoint("jdbc.save.mid_batch"); err != nil {
				return err
			}
		}
		// Per-partition commit: independent of every other task.
		if _, err := conn.Execute(ctx, "COMMIT"); err != nil {
			return err
		}
		return tc.Checkpoint("jdbc.save.after_commit")
	})
}

func rowLiterals(r types.Row) string {
	var b strings.Builder
	for i, v := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case v.Null:
			b.WriteString("NULL")
		case v.T == types.Varchar:
			b.WriteString("'" + escape(v.S) + "'")
		default:
			b.WriteString(v.String())
		}
	}
	return b.String()
}

func ddlColumns(s types.Schema) string {
	var parts []string
	for _, c := range s.Cols {
		parts = append(parts, c.Name+" "+c.T.String())
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func escape(s string) string { return strings.ReplaceAll(s, "'", "''") }

func filterSQL(f spark.Filter) (string, error) {
	lit := func(v types.Value) string {
		if v.Null {
			return "NULL"
		}
		if v.T == types.Varchar {
			return "'" + escape(v.S) + "'"
		}
		return v.String()
	}
	switch ff := f.(type) {
	case spark.EqualTo:
		return fmt.Sprintf("%s = %s", ff.Col, lit(ff.Value)), nil
	case spark.GreaterThan:
		return fmt.Sprintf("%s > %s", ff.Col, lit(ff.Value)), nil
	case spark.GreaterThanOrEqual:
		return fmt.Sprintf("%s >= %s", ff.Col, lit(ff.Value)), nil
	case spark.LessThan:
		return fmt.Sprintf("%s < %s", ff.Col, lit(ff.Value)), nil
	case spark.LessThanOrEqual:
		return fmt.Sprintf("%s <= %s", ff.Col, lit(ff.Value)), nil
	case spark.IsNull:
		return fmt.Sprintf("%s IS NULL", ff.Col), nil
	case spark.IsNotNull:
		return fmt.Sprintf("%s IS NOT NULL", ff.Col), nil
	default:
		return "", fmt.Errorf("jdbcsource: filter %T not supported", f)
	}
}
