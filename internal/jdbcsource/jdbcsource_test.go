package jdbcsource

import (
	"fmt"
	"strings"
	"testing"

	"vsfabric/internal/client"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

func setup(t *testing.T, inj *spark.FailureInjector) (*vertica.Cluster, *spark.Context, string) {
	t.Helper()
	cl, err := vertica.NewCluster(vertica.Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	sc := spark.NewContext(spark.Conf{NumExecutors: 2, CoresPerExecutor: 4, Injector: inj, Speculation: inj != nil})
	New(client.InProc(cl)).Register()
	return cl, sc, cl.Node(0).Addr
}

func seed(t *testing.T, cl *vertica.Cluster, n int) {
	t.Helper()
	s, err := cl.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.MustExecute("CREATE TABLE src (pcol INTEGER, val FLOAT)")
	var vals []string
	for i := 0; i < n; i++ {
		vals = append(vals, fmt.Sprintf("(%d, %d.5)", i%100, i))
	}
	s.MustExecute("INSERT INTO src VALUES " + strings.Join(vals, ", "))
}

func TestLoadUnpartitioned(t *testing.T) {
	cl, sc, host := setup(t, nil)
	seed(t, cl, 200)
	df, err := sc.Read().Format(SourceName).Options(map[string]string{
		"url": host, "dbtable": "src",
	}).Load()
	if err != nil {
		t.Fatal(err)
	}
	np, _ := df.NumPartitions()
	if np != 1 {
		t.Errorf("without a partition column the load must be 1 partition, got %d", np)
	}
	rows, err := df.Collect()
	if err != nil || len(rows) != 200 {
		t.Fatalf("rows = %d, %v", len(rows), err)
	}
}

func TestLoadStridePartitions(t *testing.T) {
	cl, sc, host := setup(t, nil)
	seed(t, cl, 400)
	df, err := sc.Read().Format(SourceName).Options(map[string]string{
		"url": host, "dbtable": "src",
		"partitionColumn": "pcol", "lowerBound": "0", "upperBound": "100",
		"numPartitions": "8",
	}).Load()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 400 {
		t.Fatalf("stride load lost/duplicated rows: %d", len(rows))
	}
	// Exactly-once per value despite strides.
	counts := map[int64]int{}
	for _, r := range rows {
		counts[r[1].AsInt()]++
	}
	for v, c := range counts {
		if c != 1 {
			t.Errorf("value %d appeared %d times", v, c)
		}
	}
}

func TestLoadFilterPushdown(t *testing.T) {
	cl, sc, host := setup(t, nil)
	seed(t, cl, 200)
	df, err := sc.Read().Format(SourceName).Options(map[string]string{
		"url": host, "dbtable": "src",
	}).Load()
	if err != nil {
		t.Fatal(err)
	}
	n, err := df.Where(spark.LessThan{Col: "pcol", Value: types.IntValue(10)}).Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 { // 200 rows, pcol = i%100 → 2 of each value
		t.Errorf("filtered count = %d, want 20", n)
	}
}

func TestSaveRoundTrip(t *testing.T) {
	cl, sc, host := setup(t, nil)
	schema := types.NewSchema(types.Column{Name: "id", T: types.Int64})
	rows := make([]types.Row, 50)
	for i := range rows {
		rows[i] = types.Row{types.IntValue(int64(i))}
	}
	df := spark.CreateDataFrame(sc, schema, rows, 4)
	err := df.Write().Format(SourceName).Options(map[string]string{
		"url": host, "dbtable": "tgt",
	}).Mode(spark.SaveOverwrite).Save()
	if err != nil {
		t.Fatal(err)
	}
	s, _ := cl.Connect(0)
	defer s.Close()
	if v, _ := s.MustExecute("SELECT COUNT(*) FROM tgt").Value(); v.I != 50 {
		t.Errorf("saved rows = %v", v)
	}
	// Error mode on existing table.
	if err := df.Write().Format(SourceName).Options(map[string]string{
		"url": host, "dbtable": "tgt",
	}).Mode(spark.SaveErrorIfExists).Save(); err == nil {
		t.Error("errorIfExists should fail on existing table")
	}
}

// The baseline's documented weakness (§4.7.1): a task that commits and is
// then re-run duplicates its rows. This test pins the hazard the S2V
// protocol exists to prevent.
func TestSaveDuplicatesOnPostCommitRetry(t *testing.T) {
	inj := spark.NewFailureInjector()
	inj.FailTaskAt(1, 0, "jdbc.save.after_commit", 1)
	cl, sc, host := setup(t, inj)
	schema := types.NewSchema(types.Column{Name: "id", T: types.Int64})
	rows := make([]types.Row, 40)
	for i := range rows {
		rows[i] = types.Row{types.IntValue(int64(i))}
	}
	df := spark.CreateDataFrame(sc, schema, rows, 4)
	err := df.Write().Format(SourceName).Options(map[string]string{
		"url": host, "dbtable": "tgt",
	}).Mode(spark.SaveOverwrite).Save()
	if err != nil {
		t.Fatal(err)
	}
	s, _ := cl.Connect(0)
	defer s.Close()
	v, _ := s.MustExecute("SELECT COUNT(*) FROM tgt").Value()
	if v.I <= 40 {
		t.Errorf("expected duplicated rows (the JDBC hazard), got %d", v.I)
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := parseOptions(map[string]string{"url": "h"}); err == nil {
		t.Error("missing table should fail")
	}
	if _, err := parseOptions(map[string]string{"url": "h", "dbtable": "t", "numPartitions": "x"}); err == nil {
		t.Error("bad numPartitions should fail")
	}
	o, err := parseOptions(map[string]string{"url": "h", "dbtable": "t", "numPartitions": "8"})
	if err != nil {
		t.Fatal(err)
	}
	if o.numPartitions != 1 {
		t.Error("numPartitions without partitionColumn must collapse to 1")
	}
}
