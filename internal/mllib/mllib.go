// Package mllib implements the machine-learning substrate of the full
// analytics pipeline (Figure 1): distributed training of the model classes
// the paper deploys — linear regression, logistic regression, and k-means —
// over RDDs, plus PMML export matching Spark MLlib's model-export feature
// ([10] in the paper). Training uses the classic MLlib pattern: per-
// partition gradient/statistics aggregation merged on the driver.
package mllib

import (
	"fmt"
	"math"

	"vsfabric/internal/pmml"
	"vsfabric/internal/spark"
)

// Vector is a dense feature vector.
type Vector = []float64

// LabeledPoint pairs a label with features, as in MLlib.
type LabeledPoint struct {
	Label    float64
	Features Vector
}

func dot(a, b Vector) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// gradAcc accumulates a gradient and loss across a partition.
type gradAcc struct {
	grad      Vector
	intercept float64
	loss      float64
	n         int64
}

func mergeAcc(a, b gradAcc) gradAcc {
	if a.grad == nil {
		return b
	}
	if b.grad == nil {
		return a
	}
	for i := range a.grad {
		a.grad[i] += b.grad[i]
	}
	a.intercept += b.intercept
	a.loss += b.loss
	a.n += b.n
	return a
}

func dims(data *spark.RDD[LabeledPoint]) (int, error) {
	first, err := data.Filter(func(LabeledPoint) bool { return true }).Collect()
	if err != nil {
		return 0, err
	}
	if len(first) == 0 {
		return 0, fmt.Errorf("mllib: empty training set")
	}
	return len(first[0].Features), nil
}

// LinearRegressionModel is y = w·x + b.
type LinearRegressionModel struct {
	Weights   Vector
	Intercept float64
}

// Predict evaluates the model.
func (m *LinearRegressionModel) Predict(x Vector) float64 {
	return dot(m.Weights, x) + m.Intercept
}

// TrainLinearRegression fits by full-batch gradient descent on squared
// loss, with per-iteration distributed gradient aggregation.
func TrainLinearRegression(data *spark.RDD[LabeledPoint], iterations int, step float64) (*LinearRegressionModel, error) {
	d, err := dims(data)
	if err != nil {
		return nil, err
	}
	w := make(Vector, d)
	b := 0.0
	for it := 0; it < iterations; it++ {
		wSnap := append(Vector(nil), w...)
		bSnap := b
		acc, err := spark.Aggregate(data,
			func() gradAcc { return gradAcc{grad: make(Vector, d)} },
			func(a gradAcc, p LabeledPoint) gradAcc {
				pred := dot(wSnap, p.Features) + bSnap
				diff := pred - p.Label
				for i := range a.grad {
					a.grad[i] += diff * p.Features[i]
				}
				a.intercept += diff
				a.loss += diff * diff
				a.n++
				return a
			},
			mergeAcc,
		)
		if err != nil {
			return nil, err
		}
		if acc.n == 0 {
			return nil, fmt.Errorf("mllib: empty training set")
		}
		lr := step / float64(acc.n)
		for i := range w {
			w[i] -= lr * acc.grad[i]
		}
		b -= lr * acc.intercept
	}
	return &LinearRegressionModel{Weights: w, Intercept: b}, nil
}

// ToPMML exports the model in PMML 4.1 (Spark's model-export format).
func (m *LinearRegressionModel) ToPMML(featureNames []string, target string) (*pmml.Document, error) {
	if len(featureNames) != len(m.Weights) {
		return nil, fmt.Errorf("mllib: %d feature names for %d weights", len(featureNames), len(m.Weights))
	}
	doc := baseDoc("linear regression", featureNames, target)
	table := pmml.RegressionTable{Intercept: m.Intercept}
	for i, n := range featureNames {
		table.Predictors = append(table.Predictors, pmml.NumericPredictor{Name: n, Coefficient: m.Weights[i]})
	}
	doc.Regression = &pmml.RegressionModel{
		ModelName:    "linear regression",
		FunctionName: "regression",
		MiningSchema: miningSchema(featureNames, target),
		Tables:       []pmml.RegressionTable{table},
	}
	return doc, nil
}

// LogisticRegressionModel is a binary classifier p = σ(w·x + b).
type LogisticRegressionModel struct {
	Weights   Vector
	Intercept float64
}

// PredictProbability returns σ(w·x + b).
func (m *LogisticRegressionModel) PredictProbability(x Vector) float64 {
	return 1.0 / (1.0 + math.Exp(-(dot(m.Weights, x) + m.Intercept)))
}

// Predict returns the class (0 or 1).
func (m *LogisticRegressionModel) Predict(x Vector) float64 {
	if m.PredictProbability(x) >= 0.5 {
		return 1
	}
	return 0
}

// TrainLogisticRegression fits by full-batch gradient descent on logistic
// loss.
func TrainLogisticRegression(data *spark.RDD[LabeledPoint], iterations int, step float64) (*LogisticRegressionModel, error) {
	d, err := dims(data)
	if err != nil {
		return nil, err
	}
	w := make(Vector, d)
	b := 0.0
	for it := 0; it < iterations; it++ {
		wSnap := append(Vector(nil), w...)
		bSnap := b
		acc, err := spark.Aggregate(data,
			func() gradAcc { return gradAcc{grad: make(Vector, d)} },
			func(a gradAcc, p LabeledPoint) gradAcc {
				z := dot(wSnap, p.Features) + bSnap
				pred := 1.0 / (1.0 + math.Exp(-z))
				diff := pred - p.Label
				for i := range a.grad {
					a.grad[i] += diff * p.Features[i]
				}
				a.intercept += diff
				a.n++
				return a
			},
			mergeAcc,
		)
		if err != nil {
			return nil, err
		}
		if acc.n == 0 {
			return nil, fmt.Errorf("mllib: empty training set")
		}
		lr := step / float64(acc.n)
		for i := range w {
			w[i] -= lr * acc.grad[i]
		}
		b -= lr * acc.intercept
	}
	return &LogisticRegressionModel{Weights: w, Intercept: b}, nil
}

// ToPMML exports the classifier in PMML 4.1 with the logit normalization
// Spark uses.
func (m *LogisticRegressionModel) ToPMML(featureNames []string, target string) (*pmml.Document, error) {
	if len(featureNames) != len(m.Weights) {
		return nil, fmt.Errorf("mllib: %d feature names for %d weights", len(featureNames), len(m.Weights))
	}
	doc := baseDoc("logistic regression", featureNames, target)
	t1 := pmml.RegressionTable{Intercept: m.Intercept, TargetCategory: "1"}
	for i, n := range featureNames {
		t1.Predictors = append(t1.Predictors, pmml.NumericPredictor{Name: n, Coefficient: m.Weights[i]})
	}
	t0 := pmml.RegressionTable{Intercept: 0, TargetCategory: "0"}
	doc.Regression = &pmml.RegressionModel{
		ModelName:           "logistic regression",
		FunctionName:        "classification",
		NormalizationMethod: "logit",
		MiningSchema:        miningSchema(featureNames, target),
		Tables:              []pmml.RegressionTable{t1, t0},
	}
	return doc, nil
}

// KMeansModel holds the fitted centers.
type KMeansModel struct {
	Centers []Vector
}

// Predict returns the index of the nearest center.
func (m *KMeansModel) Predict(x Vector) int {
	best, bestD := 0, math.Inf(1)
	for i, c := range m.Centers {
		d := 0.0
		for j := range c {
			diff := x[j] - c[j]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Cost returns the within-cluster sum of squares over the data.
func (m *KMeansModel) Cost(data *spark.RDD[Vector]) (float64, error) {
	type acc struct{ cost float64 }
	out, err := spark.Aggregate(data,
		func() acc { return acc{} },
		func(a acc, x Vector) acc {
			c := m.Centers[m.Predict(x)]
			for j := range c {
				diff := x[j] - c[j]
				a.cost += diff * diff
			}
			return a
		},
		func(a, b acc) acc { return acc{cost: a.cost + b.cost} },
	)
	if err != nil {
		return 0, err
	}
	return out.cost, nil
}

// TrainKMeans runs distributed Lloyd iterations. Initial centers are the
// first k distinct points (deterministic, good enough for reproduction).
func TrainKMeans(data *spark.RDD[Vector], k, iterations int) (*KMeansModel, error) {
	if k <= 0 {
		return nil, fmt.Errorf("mllib: k must be positive")
	}
	all, err := data.Collect()
	if err != nil {
		return nil, err
	}
	var centers []Vector
	for _, x := range all {
		dup := false
		for _, c := range centers {
			if vecEq(c, x) {
				dup = true
				break
			}
		}
		if !dup {
			centers = append(centers, append(Vector(nil), x...))
		}
		if len(centers) == k {
			break
		}
	}
	if len(centers) < k {
		return nil, fmt.Errorf("mllib: only %d distinct points for k=%d", len(centers), k)
	}
	model := &KMeansModel{Centers: centers}

	type stats struct {
		sums   []Vector
		counts []int64
	}
	d := len(centers[0])
	for it := 0; it < iterations; it++ {
		snap := model
		agg, err := spark.Aggregate(data,
			func() stats {
				s := stats{sums: make([]Vector, k), counts: make([]int64, k)}
				for i := range s.sums {
					s.sums[i] = make(Vector, d)
				}
				return s
			},
			func(s stats, x Vector) stats {
				c := snap.Predict(x)
				for j := range x {
					s.sums[c][j] += x[j]
				}
				s.counts[c]++
				return s
			},
			func(a, b stats) stats {
				if a.sums == nil {
					return b
				}
				for i := range a.sums {
					for j := range a.sums[i] {
						a.sums[i][j] += b.sums[i][j]
					}
					a.counts[i] += b.counts[i]
				}
				return a
			},
		)
		if err != nil {
			return nil, err
		}
		next := make([]Vector, k)
		for i := range next {
			next[i] = make(Vector, d)
			if agg.counts[i] == 0 {
				copy(next[i], model.Centers[i])
				continue
			}
			for j := range next[i] {
				next[i][j] = agg.sums[i][j] / float64(agg.counts[i])
			}
		}
		model = &KMeansModel{Centers: next}
	}
	return model, nil
}

// ToPMML exports the clustering model in PMML 4.1.
func (m *KMeansModel) ToPMML(featureNames []string) (*pmml.Document, error) {
	if len(m.Centers) == 0 || len(featureNames) != len(m.Centers[0]) {
		return nil, fmt.Errorf("mllib: feature name count does not match center dimensionality")
	}
	doc := baseDoc("k-means", featureNames, "")
	cm := &pmml.ClusteringModel{
		ModelName:        "k-means",
		FunctionName:     "clustering",
		ModelClass:       "centerBased",
		NumberOfClusters: len(m.Centers),
		MiningSchema:     miningSchema(featureNames, ""),
	}
	for i, c := range m.Centers {
		cm.Clusters = append(cm.Clusters, pmml.Cluster{ID: fmt.Sprint(i), Array: pmml.MakeArray(c)})
	}
	doc.Clustering = cm
	return doc, nil
}

func vecEq(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func baseDoc(desc string, featureNames []string, target string) *pmml.Document {
	doc := &pmml.Document{
		Version: "4.1",
		Header: pmml.Header{
			Description: desc,
			Application: pmml.Application{Name: "vsfabric-mllib", Version: "1.0"},
		},
	}
	for _, n := range featureNames {
		doc.DataDictionary.Fields = append(doc.DataDictionary.Fields,
			pmml.DataField{Name: n, OpType: "continuous", DataType: "double"})
	}
	if target != "" {
		doc.DataDictionary.Fields = append(doc.DataDictionary.Fields,
			pmml.DataField{Name: target, OpType: "continuous", DataType: "double"})
	}
	doc.DataDictionary.NumberOfFields = len(doc.DataDictionary.Fields)
	return doc
}

func miningSchema(featureNames []string, target string) pmml.MiningSchema {
	var ms pmml.MiningSchema
	for _, n := range featureNames {
		ms.Fields = append(ms.Fields, pmml.MiningField{Name: n, UsageType: "active"})
	}
	if target != "" {
		ms.Fields = append(ms.Fields, pmml.MiningField{Name: target, UsageType: "target"})
	}
	return ms
}
