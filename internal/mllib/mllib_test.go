package mllib

import (
	"math"
	"testing"

	"vsfabric/internal/pmml"
	"vsfabric/internal/spark"
)

func ctx() *spark.Context {
	return spark.NewContext(spark.Conf{NumExecutors: 3, CoresPerExecutor: 2})
}

// lcg is a tiny deterministic generator for synthetic training data.
type lcg struct{ s uint64 }

func (l *lcg) next() float64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return float64(l.s>>11) / float64(1<<53)
}

func TestLinearRegressionRecoversPlane(t *testing.T) {
	sc := ctx()
	g := &lcg{s: 42}
	var pts []LabeledPoint
	for i := 0; i < 2000; i++ {
		x1, x2 := g.next(), g.next()
		pts = append(pts, LabeledPoint{Label: 3*x1 - 2*x2 + 0.5, Features: Vector{x1, x2}})
	}
	rdd := spark.Parallelize(sc, pts, 6)
	m, err := TrainLinearRegression(rdd, 500, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-3) > 0.1 || math.Abs(m.Weights[1]+2) > 0.1 || math.Abs(m.Intercept-0.5) > 0.1 {
		t.Errorf("fit = %v + %v, want [3 -2] + 0.5", m.Weights, m.Intercept)
	}
	if y := m.Predict(Vector{1, 1}); math.Abs(y-1.5) > 0.2 {
		t.Errorf("predict(1,1) = %v", y)
	}
}

func TestLinearRegressionToPMMLAndBack(t *testing.T) {
	m := &LinearRegressionModel{Weights: Vector{2, -1}, Intercept: 1.5}
	doc, err := m.ToPMML([]string{"a", "b"}, "y")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := pmml.NewEvaluator(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []Vector{{0, 0}, {3, 4}, {-1, 2}} {
		want := m.Predict(x)
		got, err := ev.Predict(x)
		if err != nil || math.Abs(got-want) > 1e-12 {
			t.Errorf("PMML evaluator disagrees at %v: %v vs %v", x, got, want)
		}
	}
	if _, err := m.ToPMML([]string{"only_one"}, "y"); err == nil {
		t.Error("feature-name arity mismatch should fail")
	}
}

func TestLogisticRegressionSeparates(t *testing.T) {
	sc := ctx()
	g := &lcg{s: 7}
	var pts []LabeledPoint
	for i := 0; i < 2000; i++ {
		x1, x2 := g.next()*4-2, g.next()*4-2
		label := 0.0
		if x1+x2 > 0 {
			label = 1
		}
		pts = append(pts, LabeledPoint{Label: label, Features: Vector{x1, x2}})
	}
	rdd := spark.Parallelize(sc, pts, 4)
	m, err := TrainLogisticRegression(rdd, 300, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, p := range pts {
		if m.Predict(p.Features) == p.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(pts)); acc < 0.95 {
		t.Errorf("accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestLogisticToPMMLAgrees(t *testing.T) {
	m := &LogisticRegressionModel{Weights: Vector{1, -1}, Intercept: 0.2}
	doc, err := m.ToPMML([]string{"a", "b"}, "label")
	if err != nil {
		t.Fatal(err)
	}
	if doc.ModelType() != "logistic_regression" {
		t.Errorf("ModelType = %q", doc.ModelType())
	}
	ev, err := pmml.NewEvaluator(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []Vector{{2, 0}, {-2, 0}, {0, 0.1}, {0, 0.3}} {
		got, _ := ev.Predict(x)
		if got != m.Predict(x) {
			t.Errorf("PMML class at %v: %v vs %v", x, got, m.Predict(x))
		}
	}
}

func TestKMeansFindsClusters(t *testing.T) {
	sc := ctx()
	g := &lcg{s: 99}
	centers := []Vector{{0, 0}, {10, 10}, {-10, 5}}
	var pts []Vector
	for i := 0; i < 900; i++ {
		c := centers[i%3]
		pts = append(pts, Vector{c[0] + g.next() - 0.5, c[1] + g.next() - 0.5})
	}
	rdd := spark.Parallelize(sc, pts, 5)
	m, err := TrainKMeans(rdd, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Every true center must have a fitted center within 1.0.
	for _, c := range centers {
		found := false
		for _, fc := range m.Centers {
			d := math.Hypot(fc[0]-c[0], fc[1]-c[1])
			if d < 1.0 {
				found = true
			}
		}
		if !found {
			t.Errorf("no fitted center near %v: %v", c, m.Centers)
		}
	}
	cost, err := m.Cost(rdd)
	if err != nil {
		t.Fatal(err)
	}
	if cost/float64(len(pts)) > 0.5 {
		t.Errorf("mean cost too high: %v", cost/float64(len(pts)))
	}
}

func TestKMeansToPMMLAgrees(t *testing.T) {
	m := &KMeansModel{Centers: []Vector{{0, 0}, {5, 5}}}
	doc, err := m.ToPMML([]string{"x1", "x2"})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := pmml.NewEvaluator(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []Vector{{1, 1}, {4, 4}, {2.4, 2.4}} {
		got, _ := ev.Predict(x)
		if int(got) != m.Predict(x) {
			t.Errorf("cluster at %v: %v vs %v", x, got, m.Predict(x))
		}
	}
}

func TestTrainOnEmptyFails(t *testing.T) {
	sc := ctx()
	if _, err := TrainLinearRegression(spark.Parallelize(sc, []LabeledPoint{}, 2), 5, 0.1); err == nil {
		t.Error("empty training set should fail")
	}
	if _, err := TrainKMeans(spark.Parallelize(sc, []Vector{{1, 1}}, 1), 3, 2); err == nil {
		t.Error("k > distinct points should fail")
	}
}
