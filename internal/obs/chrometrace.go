package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format — the JSON
// schema chrome://tracing and Perfetto both ingest. "X" events are complete
// spans (ts + dur, microseconds); "M" events are metadata naming processes
// and threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the retained spans as Chrome trace-event JSON:
// one "X" (complete) event per span, one trace-viewer thread per fabric node
// (driver, executors, Vertica nodes), span identity and byte/row accounting
// in args. Load the file in chrome://tracing or https://ui.perfetto.dev to
// see a whole job's timeline across every process it touched.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	spans := c.Spans()

	// Stable node → tid mapping, alphabetical so re-exports diff cleanly.
	nodes := map[string]int{}
	for _, sp := range spans {
		node := sp.Node
		if node == "" {
			node = "(none)"
		}
		nodes[node] = 0
	}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		nodes[n] = i + 1
	}

	const pid = 1
	tr := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": "vsfabric"},
	}}}
	for _, n := range names {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: nodes[n],
			Args: map[string]any{"name": n},
		})
	}

	for _, sp := range spans {
		node := sp.Node
		if node == "" {
			node = "(none)"
		}
		args := map[string]any{
			"trace_id":  fmt.Sprintf("%016x", sp.TraceID),
			"span_id":   fmt.Sprintf("%016x", sp.SpanID),
			"parent_id": fmt.Sprintf("%016x", sp.ParentID),
		}
		if sp.Detail != "" {
			args["detail"] = sp.Detail
		}
		if sp.Peer != "" {
			args["peer"] = sp.Peer
		}
		if sp.Rows != 0 {
			args["rows"] = sp.Rows
		}
		if sp.Rejected != 0 {
			args["rejected"] = sp.Rejected
		}
		if sp.Bytes != 0 {
			args["bytes"] = sp.Bytes
		}
		if sp.Err != "" {
			args["error"] = sp.Err
		}
		dur := float64(sp.Duration.Nanoseconds()) / 1e3
		if dur <= 0 {
			dur = 0.001 // trace viewers drop zero-duration X events
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: sp.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   float64(sp.Start.UnixNano()) / 1e3,
			Dur:  dur,
			Pid:  pid,
			Tid:  nodes[node],
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&tr)
}
