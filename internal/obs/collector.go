package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultRingCap bounds the span and event rings of a Collector unless
// overridden — old entries are overwritten, never reallocated, so a
// long-running fabric holds a fixed observability footprint.
const DefaultRingCap = 4096

// ring is a fixed-capacity overwrite-oldest buffer.
type ring[T any] struct {
	buf  []T
	next int // index of the slot the next write lands in
	n    int // number of valid entries (<= cap)
}

func newRing[T any](capacity int) *ring[T] {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	return &ring[T]{buf: make([]T, capacity)}
}

func (r *ring[T]) add(v T) {
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// snapshot returns the entries oldest-first.
func (r *ring[T]) snapshot() []T {
	out := make([]T, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Collector is the production Observer: completed spans and events land in
// bounded rings, and every span/event name also bumps a counter. It backs
// the v_monitor system tables. Safe for concurrent use; when disabled via
// SetEnabled(false) both hooks return after a single atomic load and Start
// declines to open spans at all.
type Collector struct {
	enabled atomic.Bool
	seq     atomic.Uint64

	// hists maps span name → *histogram. A sync.Map keeps the per-span
	// lookup lock-free once a name has been seen (names are a small fixed
	// taxonomy, so the store path runs a handful of times per process).
	hists sync.Map

	// tapSpan and tapEvent, when set via SetTap, observe every retained span
	// and ring-worthy event after it lands — the durable data collector's
	// feed. Called outside the collector's lock.
	tapSpan  atomic.Pointer[func(Span)]
	tapEvent atomic.Pointer[func(Event)]

	mu       sync.Mutex
	spans    *ring[Span]
	events   *ring[Event]
	qevents  *ring[QueryEvent]
	counters map[string]int64
}

// NewCollector returns an enabled Collector with DefaultRingCap rings.
func NewCollector() *Collector { return NewCollectorCap(DefaultRingCap) }

// NewCollectorCap returns an enabled Collector whose span and event rings
// hold at most capacity entries each.
func NewCollectorCap(capacity int) *Collector {
	c := &Collector{
		spans:    newRing[Span](capacity),
		events:   newRing[Event](capacity),
		qevents:  newRing[QueryEvent](capacity),
		counters: make(map[string]int64),
	}
	c.enabled.Store(true)
	return c
}

// Enabled reports whether the collector is recording.
func (c *Collector) Enabled() bool { return c.enabled.Load() }

// SetEnabled turns recording on or off. Disabling does not clear history.
func (c *Collector) SetEnabled(on bool) { c.enabled.Store(on) }

// Reset discards all recorded spans, events, counters, and histograms.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = newRing[Span](len(c.spans.buf))
	c.events = newRing[Event](len(c.events.buf))
	c.qevents = newRing[QueryEvent](len(c.qevents.buf))
	c.counters = make(map[string]int64)
	c.hists.Range(func(k, _ any) bool { c.hists.Delete(k); return true })
}

// SetTap installs (or clears, with nils) the span/event taps: onSpan observes
// every span SpanEnd retains (after its ID is assigned), onEvent every event
// kept in the ring. The cluster's durable data collector uses this to spool
// history to disk without a second observer fan-out at every call site. Taps
// run synchronously on the recording goroutine, outside the collector's lock,
// and only while the collector is enabled.
func (c *Collector) SetTap(onSpan func(Span), onEvent func(Event)) {
	if onSpan == nil {
		c.tapSpan.Store(nil)
	} else {
		c.tapSpan.Store(&onSpan)
	}
	if onEvent == nil {
		c.tapEvent.Store(nil)
	} else {
		c.tapEvent.Store(&onEvent)
	}
}

// SpanEnd records a completed span (assigning its ID), bumps the
// "span." + name counter, and folds the duration into the name's latency
// histogram (atomic buckets — no lock beyond the ring's existing one).
func (c *Collector) SpanEnd(sp Span) {
	if !c.enabled.Load() {
		return
	}
	sp.ID = c.seq.Add(1)
	c.histFor(sp.Name).observe(sp.Duration)
	c.mu.Lock()
	c.spans.add(sp)
	c.counters["span."+sp.Name]++
	c.mu.Unlock()
	if tap := c.tapSpan.Load(); tap != nil {
		(*tap)(sp)
	}
}

func (c *Collector) histFor(name string) *histogram {
	if h, ok := c.hists.Load(name); ok {
		return h.(*histogram)
	}
	h, _ := c.hists.LoadOrStore(name, &histogram{})
	return h.(*histogram)
}

// Event records an event and bumps its counter. Events whose Payload is
// non-nil are resource-accounting records for the sim cost model: they count
// but are not kept in the event ring (they arrive per row batch and would
// flush the interesting history).
func (c *Collector) Event(ev Event) {
	if !c.enabled.Load() {
		return
	}
	if ev.Time.IsZero() && ev.Payload == nil {
		ev.Time = time.Now()
	}
	c.mu.Lock()
	c.counters[ev.Name]++
	if ev.Payload == nil {
		c.events.add(ev)
	}
	c.mu.Unlock()
	if ev.Payload == nil {
		if tap := c.tapEvent.Load(); tap != nil {
			(*tap)(ev)
		}
	}
}

// Add bumps a counter by delta directly, without recording an event. This is
// the byte/record accounting path (wal.bytes and friends), where a ring entry
// per increment would be pure noise.
func (c *Collector) Add(name string, delta int64) {
	if !c.enabled.Load() {
		return
	}
	c.mu.Lock()
	c.counters[name] += delta
	c.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (c *Collector) Spans() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spans.snapshot()
}

// Events returns the retained events, oldest first.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events.snapshot()
}

// Counters returns a copy of all counters.
func (c *Collector) Counters() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counters))
	for k, v := range c.counters {
		out[k] = v
	}
	return out
}

// Counter is one named counter's value, for ordered snapshots.
type Counter struct {
	Name  string
	Value int64
}

// SortedCounters returns every counter sorted by name — the deterministic
// form v_monitor.counters and the /metrics endpoint render, so repeated
// scrapes and test snapshots never depend on map iteration order.
func (c *Collector) SortedCounters() []Counter {
	c.mu.Lock()
	out := make([]Counter, 0, len(c.counters))
	for k, v := range c.counters {
		out = append(out, Counter{Name: k, Value: v})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counter returns one counter's value (0 if never bumped).
func (c *Collector) Counter(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

// Histograms snapshots every span name's latency distribution, sorted by
// name. This backs v_monitor.latency_histograms.
func (c *Collector) Histograms() []Histogram {
	var out []Histogram
	c.hists.Range(func(k, v any) bool {
		out = append(out, v.(*histogram).snapshot(k.(string)))
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Histogram snapshots one span name's latency distribution; ok is false if
// no span under that name has completed.
func (c *Collector) Histogram(name string) (Histogram, bool) {
	h, ok := c.hists.Load(name)
	if !ok {
		return Histogram{}, false
	}
	return h.(*histogram).snapshot(name), true
}
