package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log₂ latency buckets. Bucket i counts
// durations in [2^i, 2^(i+1)) ns — 64 buckets cover every representable
// duration, so no clamping logic runs on the record path.
const histBuckets = 64

// histogram is one span name's latency distribution. Updates are pure
// atomics: SpanEnd touches two counters and never takes a lock, so the
// histogram layer adds no contention to the collector's hot path.
type histogram struct {
	count   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func bucketOf(d time.Duration) int {
	n := d.Nanoseconds()
	if n <= 0 {
		return 0
	}
	return bits.Len64(uint64(n)) - 1
}

// bucketUpper is bucket i's exclusive upper bound.
func bucketUpper(i int) time.Duration {
	if i >= 62 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(1) << (i + 1)
}

func (h *histogram) observe(d time.Duration) {
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
}

// HistogramBucket is one non-empty bucket of a snapshot: Count durations
// fell below UpperBound (and at or above the previous bucket's bound).
type HistogramBucket struct {
	UpperBound time.Duration
	Count      int64
}

// Histogram is a point-in-time snapshot of one span name's latency
// distribution, with percentiles derived from the log₂ buckets. Each
// percentile is reported as the upper bound of the bucket the rank falls in,
// so it over-estimates by at most 2x — the resolution bucketed histograms
// trade for fixed memory and lock-free updates.
type Histogram struct {
	Name    string
	Count   int64
	Buckets []HistogramBucket
	P50     time.Duration
	P95     time.Duration
	P99     time.Duration
	Max     time.Duration // upper bound of the highest non-empty bucket
}

// Quantile returns the latency bound below which fraction q of samples fall.
func (h Histogram) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= rank {
			return b.UpperBound
		}
	}
	return h.Max
}

// snapshot materializes the histogram under a name.
func (h *histogram) snapshot(name string) Histogram {
	out := Histogram{Name: name, Count: h.count.Load()}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			ub := bucketUpper(i)
			out.Buckets = append(out.Buckets, HistogramBucket{UpperBound: ub, Count: n})
			out.Max = ub
		}
	}
	out.P50 = out.Quantile(0.50)
	out.P95 = out.Quantile(0.95)
	out.P99 = out.Quantile(0.99)
	return out
}
