package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log₂ latency buckets. Bucket i counts
// durations in [2^i, 2^(i+1)) ns — 64 buckets cover every representable
// duration, so no clamping logic runs on the record path.
const histBuckets = 64

// histogram is one span name's latency distribution. Updates are pure
// atomics: SpanEnd touches two counters and never takes a lock, so the
// histogram layer adds no contention to the collector's hot path.
type histogram struct {
	count   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func bucketOf(d time.Duration) int {
	n := d.Nanoseconds()
	if n <= 0 {
		return 0
	}
	return bits.Len64(uint64(n)) - 1
}

// bucketUpper is bucket i's exclusive upper bound.
func bucketUpper(i int) time.Duration {
	if i >= 62 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(1) << (i + 1)
}

func (h *histogram) observe(d time.Duration) {
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
}

// HistogramBucket is one non-empty bucket of a snapshot: Count durations
// fell below UpperBound (and at or above the previous bucket's bound).
type HistogramBucket struct {
	UpperBound time.Duration
	Count      int64
}

// Histogram is a point-in-time snapshot of one span name's latency
// distribution, with percentiles derived from the log₂ buckets. Each
// percentile is reported as the midpoint of the bucket the rank falls in: for
// a true value v inside bucket [L, 2L) the midpoint 1.5L lies between 0.75·v
// and 1.5·v, so the estimate under-reports by at most 25% and over-reports by
// at most 50% — the resolution bucketed histograms trade for fixed memory and
// lock-free updates. (The error bound is documented in DESIGN.md.)
type Histogram struct {
	Name    string
	Count   int64
	Buckets []HistogramBucket
	P50     time.Duration
	P95     time.Duration
	P99     time.Duration
	Max     time.Duration // upper bound of the highest non-empty bucket
}

// bucketMidpoint estimates a bucket's representative latency as the midpoint
// of [lower, upper). The first bucket's lower bound is 0 (it also absorbs
// zero and negative durations), and the overflow bucket's upper bound is
// MaxInt64, where a midpoint is meaningless — its lower bound stands in.
func bucketMidpoint(ub time.Duration) time.Duration {
	if ub == time.Duration(math.MaxInt64) {
		return time.Duration(1) << 62
	}
	lower := ub / 2
	if ub == 2 {
		lower = 0
	}
	return (lower + ub) / 2
}

// Quantile returns the estimated latency below which fraction q of samples
// fall: the midpoint of the bucket the rank lands in.
func (h Histogram) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= rank {
			return bucketMidpoint(b.UpperBound)
		}
	}
	return bucketMidpoint(h.Max)
}

// snapshot materializes the histogram under a name.
func (h *histogram) snapshot(name string) Histogram {
	out := Histogram{Name: name, Count: h.count.Load()}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			ub := bucketUpper(i)
			out.Buckets = append(out.Buckets, HistogramBucket{UpperBound: ub, Count: n})
			out.Max = ub
		}
	}
	out.P50 = out.Quantile(0.50)
	out.P95 = out.Quantile(0.95)
	out.P99 = out.Quantile(0.99)
	return out
}
