// Package obs is the fabric-wide observability layer: low-overhead trace
// spans and event/counter records threaded through the connector, the
// resilience layer, and the database engine. Completed spans and events land
// in a bounded in-memory Collector, which the engine exposes back through
// SQL as the v_monitor system tables — the loop real Vertica closes with
// v_monitor.query_requests and PROFILE.
//
// The layer is built to cost nothing when unused: a nil Observer produces a
// nil *ActiveSpan whose methods are no-ops, a disabled Collector refuses
// spans before any clock is read, and hot paths guard with a single nil or
// atomic-bool check.
package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// Span is one completed, timed operation: a SQL execute, a COPY stream, a
// V2S partition read, one S2V phase. Err is empty on success.
type Span struct {
	ID     uint64
	Name   string // span taxonomy name, e.g. "execute", "copy", "v2s.partition", "s2v.phase1"
	Node   string // database node involved ("" if none)
	Peer   string // client/executor on the other end ("" if none)
	Detail string // SQL text, table name, or phase detail

	// TraceID groups every span of one distributed job, SpanID identifies
	// this span within it, and ParentID links to the parent span (0 = root).
	// A root span's TraceID equals its SpanID, so a trace is named by its
	// root. The identity crosses goroutines via context (WithSpan) and
	// process boundaries via SpanContext (the wire protocol carries exactly
	// its two fields).
	TraceID  uint64
	SpanID   uint64
	ParentID uint64

	Start    time.Time
	Duration time.Duration

	Rows     int64 // result or loaded rows
	Rejected int64 // rejected rows (COPY)
	Bytes    int64 // payload bytes moved

	Err string // "" = success
}

// OK reports whether the span completed without error.
func (s Span) OK() bool { return s.Err == "" }

// Root reports whether the span is the root of its trace.
func (s Span) Root() bool { return s.ParentID == 0 }

// SpanContext is the propagatable identity of a span: enough to parent
// children under it from another goroutine or another process. The zero
// value means "no trace".
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context names a real trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 }

// idState drives NewID: a shared counter whose values are scrambled through
// a splitmix64 finalizer, giving unique, random-looking 64-bit IDs with one
// atomic add and no locks. Seeded from the clock so IDs differ across runs.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

// NewID returns a process-unique non-zero identifier for traces and spans.
func NewID() uint64 {
	x := idState.Add(0x9E3779B97F4A7C15) // golden-ratio increment (splitmix64)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		return 1
	}
	return x
}

// Event is one point-in-time occurrence: a retry, a breaker transition, a
// failover — or a resource-accounting record carried opaquely in Payload for
// the simulation cost model.
type Event struct {
	Time   time.Time
	Name   string // event taxonomy name, e.g. "retry", "backoff", "breaker_open", "failover"
	Node   string // node the event concerns ("" if none)
	Detail string

	// Payload carries structured data for observers that understand it (the
	// sim recorder unwraps sim.Event values); the Collector stores events
	// with a Payload only as counters, not in the event ring.
	Payload any
}

// Observer receives completed spans and events. Implementations must be
// safe for concurrent use. The Collector is the production observer; the
// sim package's Recorder adapts the same hook to the performance model.
type Observer interface {
	SpanEnd(sp Span)
	Event(ev Event)
}

// enabler lets Start skip span bookkeeping entirely for observers that are
// present but switched off (a disabled Collector).
type enabler interface{ Enabled() bool }

// ActiveSpan is an in-flight span. A nil *ActiveSpan is valid and all its
// methods are no-ops, so call sites need no observer nil-checks.
type ActiveSpan struct {
	o  Observer
	sp Span
}

// Start opens a span against o. It returns nil — a no-op span — when o is
// nil or reports itself disabled, so the only cost on the disabled path is
// this check.
func Start(o Observer, name, node string) *ActiveSpan {
	if o == nil {
		return nil
	}
	if e, ok := o.(enabler); ok && !e.Enabled() {
		return nil
	}
	id := NewID()
	return &ActiveSpan{o: o, sp: Span{Name: name, Node: node, TraceID: id, SpanID: id, Start: time.Now()}}
}

// StartChild opens a span parented under the context's active span (or its
// remotely-propagated SpanContext). With no trace in the context it degrades
// to Start — a fresh root — so call sites need no conditionals.
func StartChild(ctx context.Context, o Observer, name, node string) *ActiveSpan {
	a := Start(o, name, node)
	if a == nil {
		return nil
	}
	if pc := SpanContextFrom(ctx); pc.Valid() {
		a.sp.TraceID = pc.TraceID
		a.sp.ParentID = pc.SpanID
	}
	return a
}

// SpanContext returns the span's propagatable identity (zero on a nil span,
// so an untraced path propagates "no trace").
func (a *ActiveSpan) SpanContext() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: a.sp.TraceID, SpanID: a.sp.SpanID}
}

// SetPeer records the client/executor side of the span.
func (a *ActiveSpan) SetPeer(peer string) {
	if a != nil {
		a.sp.Peer = peer
	}
}

// SetDetail records the span's detail text (SQL, table, phase note).
func (a *ActiveSpan) SetDetail(d string) {
	if a != nil {
		a.sp.Detail = d
	}
}

// AddRows accumulates result/loaded rows.
func (a *ActiveSpan) AddRows(n int64) {
	if a != nil {
		a.sp.Rows += n
	}
}

// AddRejected accumulates rejected rows.
func (a *ActiveSpan) AddRejected(n int64) {
	if a != nil {
		a.sp.Rejected += n
	}
}

// AddBytes accumulates payload bytes.
func (a *ActiveSpan) AddBytes(n int64) {
	if a != nil {
		a.sp.Bytes += n
	}
}

// End closes the span with err (nil = success) and delivers it. Safe to call
// on a nil span.
func (a *ActiveSpan) End(err error) {
	if a == nil {
		return
	}
	a.sp.Duration = time.Since(a.sp.Start)
	if err != nil {
		a.sp.Err = err.Error()
	}
	a.o.SpanEnd(a.sp)
}

// multi fans out to several observers.
type multi []Observer

func (m multi) SpanEnd(sp Span) {
	for _, o := range m {
		o.SpanEnd(sp)
	}
}

func (m multi) Event(ev Event) {
	for _, o := range m {
		o.Event(ev)
	}
}

func (m multi) Enabled() bool {
	for _, o := range m {
		if e, ok := o.(enabler); !ok || e.Enabled() {
			return true
		}
	}
	return false
}

// Multi combines observers; nils are dropped, and a single survivor is
// returned unwrapped.
func Multi(os ...Observer) Observer {
	var out multi
	for _, o := range os {
		if o != nil {
			out = append(out, o)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

type ctxKey int

const (
	observerKey ctxKey = iota
	peerKey
	spanCtxKey
)

// With attaches an observer to the context; operations executed under it
// (engine statements, resilient connects) report to o.
func With(ctx context.Context, o Observer) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, observerKey, o)
}

// From extracts the context's observer (nil if none).
func From(ctx context.Context) Observer {
	if ctx == nil {
		return nil
	}
	o, _ := ctx.Value(observerKey).(Observer)
	return o
}

// WithPeer names the client-side node of operations under this context (the
// Spark executor in the simulated topology, "driver" for driver work).
func WithPeer(ctx context.Context, peer string) context.Context {
	if peer == "" {
		return ctx
	}
	return context.WithValue(ctx, peerKey, peer)
}

// Peer extracts the context's peer name ("" if none).
func Peer(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	p, _ := ctx.Value(peerKey).(string)
	return p
}

// WithSpan marks a as the context's active span: StartChild calls under the
// returned context parent their spans beneath it. A nil span leaves ctx
// unchanged, so untraced paths compose for free.
func WithSpan(ctx context.Context, a *ActiveSpan) context.Context {
	return WithSpanContext(ctx, a.SpanContext())
}

// WithSpanContext installs a remotely-propagated parent identity — the
// server side of the wire protocol uses this to parent its sessions' spans
// under the remote job. An invalid (zero) context is a no-op.
func WithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey, sc)
}

// SpanContextFrom extracts the context's active trace identity (zero if the
// context carries none).
func SpanContextFrom(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(spanCtxKey).(SpanContext)
	return sc
}
