package obs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestNilSpanIsNoOp(t *testing.T) {
	sp := Start(nil, "execute", "node")
	if sp != nil {
		t.Fatalf("Start(nil observer) = %v, want nil", sp)
	}
	// All methods must be callable on nil.
	sp.SetPeer("p")
	sp.SetDetail("d")
	sp.AddRows(1)
	sp.AddRejected(1)
	sp.AddBytes(1)
	sp.End(errors.New("boom"))
}

func TestDisabledCollectorRefusesSpans(t *testing.T) {
	c := NewCollector()
	c.SetEnabled(false)
	if sp := Start(c, "execute", "n"); sp != nil {
		t.Fatalf("Start on disabled collector = %v, want nil", sp)
	}
	c.Event(Event{Name: "retry"})
	if got := c.Counter("retry"); got != 0 {
		t.Fatalf("disabled collector counted %d events, want 0", got)
	}
	c.SetEnabled(true)
	if sp := Start(c, "execute", "n"); sp == nil {
		t.Fatal("Start on re-enabled collector returned nil")
	}
}

func TestSpanLifecycle(t *testing.T) {
	c := NewCollector()
	sp := Start(c, "copy", "v-node-1")
	sp.SetPeer("spark-exec-0")
	sp.SetDetail("lineitem")
	sp.AddRows(100)
	sp.AddRejected(3)
	sp.AddBytes(4096)
	sp.End(nil)

	sp2 := Start(c, "copy", "v-node-2")
	sp2.End(errors.New("severed"))

	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	got := spans[0]
	if got.Name != "copy" || got.Node != "v-node-1" || got.Peer != "spark-exec-0" ||
		got.Detail != "lineitem" || got.Rows != 100 || got.Rejected != 3 || got.Bytes != 4096 {
		t.Fatalf("span fields wrong: %+v", got)
	}
	if !got.OK() || got.ID == 0 {
		t.Fatalf("first span should be OK with nonzero ID: %+v", got)
	}
	if spans[1].Err != "severed" || spans[1].OK() {
		t.Fatalf("second span should carry error: %+v", spans[1])
	}
	if spans[1].ID <= spans[0].ID {
		t.Fatalf("IDs not increasing: %d then %d", spans[0].ID, spans[1].ID)
	}
	if c.Counter("span.copy") != 2 {
		t.Fatalf("span.copy counter = %d, want 2", c.Counter("span.copy"))
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	c := NewCollectorCap(4)
	for i := 0; i < 10; i++ {
		Start(c, fmt.Sprintf("s%d", i), "").End(nil)
	}
	spans := c.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want ring cap 4", len(spans))
	}
	for i, sp := range spans {
		want := fmt.Sprintf("s%d", 6+i)
		if sp.Name != want {
			t.Fatalf("span[%d] = %q, want %q (oldest-first order)", i, sp.Name, want)
		}
	}
}

func TestPayloadEventsCountButStayOutOfRing(t *testing.T) {
	c := NewCollector()
	c.Event(Event{Name: "sim.fixed", Payload: struct{}{}})
	c.Event(Event{Name: "retry", Node: "v-node-0"})
	if got := c.Counter("sim.fixed"); got != 1 {
		t.Fatalf("payload event counter = %d, want 1", got)
	}
	evs := c.Events()
	if len(evs) != 1 || evs[0].Name != "retry" {
		t.Fatalf("event ring = %+v, want only the retry event", evs)
	}
}

func TestMulti(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	if Multi(nil, nil) != nil {
		t.Fatal("Multi of nils should be nil")
	}
	if got := Multi(nil, a); got != Observer(a) {
		t.Fatal("Multi with one survivor should unwrap it")
	}
	m := Multi(a, b)
	Start(m, "execute", "n").End(nil)
	m.Event(Event{Name: "retry"})
	for i, c := range []*Collector{a, b} {
		if len(c.Spans()) != 1 || c.Counter("retry") != 1 {
			t.Fatalf("observer %d missed fan-out: spans=%d retry=%d", i, len(c.Spans()), c.Counter("retry"))
		}
	}
	// A multi with every member disabled reports disabled.
	a.SetEnabled(false)
	b.SetEnabled(false)
	if sp := Start(m, "x", ""); sp != nil {
		t.Fatal("multi with all members disabled should refuse spans")
	}
	b.SetEnabled(true)
	if sp := Start(m, "x", ""); sp == nil {
		t.Fatal("multi with one enabled member should open spans")
	}
}

func TestContextHelpers(t *testing.T) {
	if From(nil) != nil || Peer(nil) != "" { //nolint:staticcheck // nil ctx tolerance is the contract
		t.Fatal("nil context should yield zero values")
	}
	ctx := context.Background()
	if From(ctx) != nil || Peer(ctx) != "" {
		t.Fatal("bare context should yield zero values")
	}
	c := NewCollector()
	ctx = WithPeer(With(ctx, c), "spark-exec-3")
	if From(ctx) != Observer(c) {
		t.Fatal("From did not round-trip observer")
	}
	if Peer(ctx) != "spark-exec-3" {
		t.Fatal("Peer did not round-trip")
	}
	if With(ctx, nil) != ctx || WithPeer(ctx, "") != ctx {
		t.Fatal("With(nil)/WithPeer(\"\") should return ctx unchanged")
	}
}

func TestCollectorConcurrency(t *testing.T) {
	c := NewCollectorCap(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := Start(c, "execute", fmt.Sprintf("n%d", g))
				sp.AddRows(1)
				sp.End(nil)
				c.Event(Event{Name: "retry"})
				if i%50 == 0 {
					_ = c.Spans()
					_ = c.Counters()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Counter("span.execute"); got != 1600 {
		t.Fatalf("span.execute counter = %d, want 1600", got)
	}
	if got := c.Counter("retry"); got != 1600 {
		t.Fatalf("retry counter = %d, want 1600", got)
	}
	if got := len(c.Spans()); got != 128 {
		t.Fatalf("ring retained %d spans, want cap 128", got)
	}
	c.Reset()
	if len(c.Spans()) != 0 || len(c.Events()) != 0 || c.Counter("retry") != 0 {
		t.Fatal("Reset did not clear state")
	}
}
