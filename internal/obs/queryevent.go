package obs

import "time"

// QueryEventType names an engine-emitted query event: a typed, structured
// explanation of *why* a statement behaved the way it did (fell off a fast
// path, waited for admission, crossed a latency threshold). The taxonomy is
// closed — event emission stays typed end to end, which is what lets the
// v_monitor.query_events table, PROFILE output, and the data collector all
// agree on meaning without parsing free-form strings.
type QueryEventType string

// The query-event taxonomy. Each type is raised from exactly one engine
// layer; Detail carries the specifics.
const (
	// EvGroupByFallback: a GROUP BY / aggregate over a base table executed on
	// the row-at-a-time path instead of the vectorized hash-aggregation
	// kernels (shape ineligible, or the RowAtATimeScans ablation).
	EvGroupByFallback QueryEventType = "GROUP_BY_FALLBACK_ROW_PATH"
	// EvZoneMapPruneSkipped: a scan had zone-map-prunable predicates but
	// container pruning could not run (disabled by config, or containers
	// lack column statistics).
	EvZoneMapPruneSkipped QueryEventType = "ZONEMAP_PRUNE_SKIPPED"
	// EvPoolQueueWait: a statement waited in its resource pool's admission
	// queue before running. Value is the wait in microseconds.
	EvPoolQueueWait QueryEventType = "POOL_QUEUE_WAIT"
	// EvJoinBuildSideLarge: a hash join built its table over more rows than
	// the configured threshold — the planner picked (or was forced into) an
	// expensive build side.
	EvJoinBuildSideLarge QueryEventType = "JOIN_BUILD_SIDE_LARGE"
	// EvWALFsyncStall: one WAL fsync took longer than the configured stall
	// threshold. Value is the fsync duration in microseconds.
	EvWALFsyncStall QueryEventType = "WAL_FSYNC_STALL"
	// EvSlowQuery: a statement ran longer than the configured slow-query
	// threshold. Value is the duration in microseconds.
	EvSlowQuery QueryEventType = "SLOW_QUERY"
)

// QueryEvent is one engine-emitted query event, surfaced through
// v_monitor.query_events, inline in PROFILE/EXPLAIN output, and spooled
// durably by the data collector.
type QueryEvent struct {
	Time    time.Time
	Type    QueryEventType
	Node    string // node that raised the event ("" if cluster-wide)
	TraceID uint64 // trace of the statement that raised it (0 if none)
	Query   string // statement source text ("" for engine-internal events)
	Detail  string
	// Value is the measured quantity that triggered the event (rows,
	// microseconds — the Type defines the unit); Threshold is the configured
	// limit it crossed (0 when the event is unconditional).
	Value     int64
	Threshold int64
}

// RecordQueryEvent retains a query event in the collector's bounded ring and
// bumps its "query_event.<TYPE>" counter.
func (c *Collector) RecordQueryEvent(ev QueryEvent) {
	if !c.enabled.Load() {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	c.mu.Lock()
	c.counters["query_event."+string(ev.Type)]++
	c.qevents.add(ev)
	c.mu.Unlock()
}

// QueryEvents returns the retained query events, oldest first.
func (c *Collector) QueryEvents() []QueryEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.qevents.snapshot()
}
