package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNewIDUniqueAcrossGoroutines(t *testing.T) {
	const perG, gs = 2000, 8
	var mu sync.Mutex
	seen := make(map[uint64]bool, perG*gs)
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]uint64, perG)
			for i := range ids {
				ids[i] = NewID()
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range ids {
				if id == 0 {
					t.Error("NewID returned 0")
				}
				if seen[id] {
					t.Errorf("NewID repeated %#x", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestStartAssignsRootIdentity(t *testing.T) {
	c := NewCollector()
	sp := Start(c, "v2s.job", "driver")
	sc := sp.SpanContext()
	if !sc.Valid() {
		t.Fatal("root span's SpanContext should be valid")
	}
	sp.End(nil)
	got := c.Spans()[0]
	if got.TraceID == 0 || got.TraceID != got.SpanID || got.ParentID != 0 {
		t.Fatalf("root identity wrong: trace=%#x span=%#x parent=%#x", got.TraceID, got.SpanID, got.ParentID)
	}
	if !got.Root() {
		t.Fatal("root span should report Root()")
	}
}

func TestStartChildParentsUnderContextSpan(t *testing.T) {
	c := NewCollector()
	root := Start(c, "s2v.job", "driver")
	ctx := WithSpan(context.Background(), root)

	child := StartChild(ctx, c, "s2v.phase1", "exec-1")
	grandCtx := WithSpan(ctx, child)
	grand := StartChild(grandCtx, c, "copy", "v-node-2")
	grand.End(nil)
	child.End(nil)
	root.End(nil)

	spans := c.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	g, ch, r := spans[0], spans[1], spans[2]
	if r.TraceID != ch.TraceID || r.TraceID != g.TraceID {
		t.Fatalf("TraceIDs diverge: %#x %#x %#x", r.TraceID, ch.TraceID, g.TraceID)
	}
	if ch.ParentID != r.SpanID {
		t.Fatalf("child parent = %#x, want root span %#x", ch.ParentID, r.SpanID)
	}
	if g.ParentID != ch.SpanID {
		t.Fatalf("grandchild parent = %#x, want child span %#x", g.ParentID, ch.SpanID)
	}
	if ch.SpanID == r.SpanID || g.SpanID == ch.SpanID {
		t.Fatal("span IDs must be distinct along the chain")
	}
	if r.Root() && !ch.Root() && !g.Root() {
		return
	}
	t.Fatalf("Root() flags wrong: root=%v child=%v grand=%v", r.Root(), ch.Root(), g.Root())
}

func TestStartChildWithoutTraceIsFreshRoot(t *testing.T) {
	c := NewCollector()
	sp := StartChild(context.Background(), c, "execute", "n")
	sp.End(nil)
	got := c.Spans()[0]
	if !got.Root() || got.TraceID != got.SpanID {
		t.Fatalf("StartChild with no trace should open a root: %+v", got)
	}
	if StartChild(context.Background(), nil, "x", "") != nil {
		t.Fatal("StartChild with nil observer should be nil")
	}
	// WithSpan on a nil span leaves the context untouched.
	ctx := context.Background()
	if WithSpan(ctx, nil) != ctx {
		t.Fatal("WithSpan(nil) should return ctx unchanged")
	}
}

func TestSpanContextPropagation(t *testing.T) {
	if SpanContextFrom(nil).Valid() { //nolint:staticcheck // nil ctx tolerance is the contract
		t.Fatal("nil context should carry no trace")
	}
	ctx := context.Background()
	if WithSpanContext(ctx, SpanContext{}) != ctx {
		t.Fatal("installing an invalid SpanContext should be a no-op")
	}
	// A remote identity (e.g. parsed off the wire) parents children the same
	// way an in-process active span does.
	remote := SpanContext{TraceID: 0xabc, SpanID: 0xdef}
	ctx = WithSpanContext(ctx, remote)
	if got := SpanContextFrom(ctx); got != remote {
		t.Fatalf("SpanContextFrom = %+v, want %+v", got, remote)
	}
	c := NewCollector()
	sp := StartChild(ctx, c, "execute", "n")
	sp.End(nil)
	got := c.Spans()[0]
	if got.TraceID != 0xabc || got.ParentID != 0xdef {
		t.Fatalf("remote parenting wrong: %+v", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10},
	} {
		if got := bucketOf(tc.d); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.d, got, tc.want)
		}
	}
	if bucketUpper(0) != 2 || bucketUpper(9) != 1024 {
		t.Fatalf("bucketUpper wrong: %d %d", bucketUpper(0), bucketUpper(9))
	}
	if bucketUpper(63) <= 0 {
		t.Fatal("top bucket upper bound must not overflow")
	}
}

func TestCollectorHistograms(t *testing.T) {
	c := NewCollector()
	// Synthesize spans with controlled durations via SpanEnd directly.
	for i := 0; i < 90; i++ {
		c.SpanEnd(Span{Name: "execute", Duration: 100 * time.Nanosecond})
	}
	for i := 0; i < 10; i++ {
		c.SpanEnd(Span{Name: "execute", Duration: 5 * time.Microsecond})
	}
	c.SpanEnd(Span{Name: "copy", Duration: time.Millisecond})

	h, ok := c.Histogram("execute")
	if !ok {
		t.Fatal("execute histogram missing")
	}
	if h.Count != 100 {
		t.Fatalf("count = %d, want 100", h.Count)
	}
	// 100ns lands in [64,128); p50 reports the bucket midpoint 96ns.
	if h.P50 != 96*time.Nanosecond {
		t.Fatalf("p50 = %v, want 96ns", h.P50)
	}
	// The p95 rank (95) falls past the 90 fast samples into the 5µs bucket
	// [4096,8192), midpoint 6.144µs.
	if h.P95 != 6144*time.Nanosecond || h.P99 != 6144*time.Nanosecond {
		t.Fatalf("p95/p99 = %v/%v, want 6.144µs", h.P95, h.P99)
	}
	if h.Max != 8192*time.Nanosecond {
		t.Fatalf("max = %v, want 8.192µs", h.Max)
	}
	var total int64
	for _, b := range h.Buckets {
		total += b.Count
	}
	if total != h.Count {
		t.Fatalf("bucket sum %d != count %d", total, h.Count)
	}

	all := c.Histograms()
	if len(all) != 2 || all[0].Name != "copy" || all[1].Name != "execute" {
		t.Fatalf("Histograms() = %+v, want [copy execute]", all)
	}
	if _, ok := c.Histogram("nope"); ok {
		t.Fatal("unknown name should report !ok")
	}
	c.Reset()
	if _, ok := c.Histogram("execute"); ok {
		t.Fatal("Reset should clear histograms")
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	if (Histogram{}).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// The only sample sits in bucket [4,8); every quantile reports its
	// midpoint, 6ns.
	h := Histogram{Count: 1, Buckets: []HistogramBucket{{UpperBound: 8, Count: 1}}, Max: 8}
	if h.Quantile(0) != 6 || h.Quantile(1) != 6 {
		t.Fatal("single-sample quantiles should report the only bucket's midpoint")
	}
	// The first bucket's lower bound is 0, so its midpoint is 1ns.
	h = Histogram{Count: 1, Buckets: []HistogramBucket{{UpperBound: 2, Count: 1}}, Max: 2}
	if h.Quantile(0.5) != 1 {
		t.Fatalf("first-bucket midpoint = %v, want 1ns", h.Quantile(0.5))
	}
}

// TestRingWraparoundMultipleOverwrites drives the span ring through several
// full wrap cycles, checking after every write that snapshot() stays
// oldest-first and holds exactly the most recent entries.
func TestRingWraparoundMultipleOverwrites(t *testing.T) {
	const capacity = 4
	r := newRing[int](capacity)
	for i := 0; i < capacity*5+3; i++ {
		r.add(i)
		got := r.snapshot()
		want := i + 1
		if want > capacity {
			want = capacity
		}
		if len(got) != want {
			t.Fatalf("after %d adds: len=%d, want %d", i+1, len(got), want)
		}
		for j, v := range got {
			if exp := i + 1 - len(got) + j; v != exp {
				t.Fatalf("after %d adds: snapshot[%d]=%d, want %d (oldest-first)", i+1, j, v, exp)
			}
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	c := NewCollector()
	root := Start(c, "s2v.job", "driver")
	ctx := WithSpan(context.Background(), root)
	child := StartChild(ctx, c, "copy", "v-node-1")
	child.SetPeer("exec-0")
	child.AddRows(42)
	child.AddBytes(1000)
	child.End(nil)
	bad := StartChild(ctx, c, "execute", "v-node-1")
	bad.End(errors.New("boom"))
	root.SetDetail("job j -> t")
	root.End(nil)
	// A span with no node lands on its own "(none)" track.
	Start(c, "loose", "").End(nil)

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var meta, complete int
	byName := map[string]map[string]any{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			byName[ev.Name] = ev.Args
			if ev.Dur <= 0 {
				t.Fatalf("event %q has non-positive dur %v", ev.Name, ev.Dur)
			}
			if ev.Pid != 1 || ev.Tid < 1 {
				t.Fatalf("event %q has pid/tid %d/%d", ev.Name, ev.Pid, ev.Tid)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// process_name + one thread_name per distinct node (driver, v-node-1,
	// (none)).
	if meta != 4 {
		t.Fatalf("got %d metadata events, want 4", meta)
	}
	if complete != 4 {
		t.Fatalf("got %d complete events, want 4", complete)
	}
	rootArgs := byName["s2v.job"]
	childArgs := byName["copy"]
	if rootArgs["trace_id"] != childArgs["trace_id"] {
		t.Fatal("trace_id not shared across the job's events")
	}
	if rootArgs["trace_id"] != rootArgs["span_id"] {
		t.Fatal("root event should have trace_id == span_id")
	}
	if childArgs["parent_id"] != rootArgs["span_id"] {
		t.Fatal("child event should point at the root span")
	}
	if fmt.Sprint(childArgs["rows"]) != "42" || fmt.Sprint(childArgs["bytes"]) != "1000" {
		t.Fatalf("child args missing rollups: %+v", childArgs)
	}
	if byName["execute"]["error"] != "boom" {
		t.Fatalf("failed span should carry its error: %+v", byName["execute"])
	}
	if byName["s2v.job"]["detail"] != "job j -> t" {
		t.Fatalf("root detail missing: %+v", byName["s2v.job"])
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	// A collector that never saw a span must still emit a valid, loadable
	// document: the process metadata record and nothing else.
	c := NewCollector()
	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 1 || doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[0].Name != "process_name" {
		t.Fatalf("empty collector should export only process metadata, got %+v", doc.TraceEvents)
	}
}

func TestWriteChromeTraceInFlightSpans(t *testing.T) {
	// Spans still in flight (never ended) have not been recorded by the
	// collector, so they must not appear in the export; ended spans that
	// measured a zero duration are clamped to a positive dur so trace viewers
	// keep them visible.
	c := NewCollector()
	inflight := Start(c, "still.running", "driver")
	_ = inflight // deliberately not ended
	zero := Start(c, "instant", "v-node-1")
	zero.End(nil)
	// Force the recorded duration to zero, the in-flight shape an importer
	// would otherwise drop.
	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1 (in-flight span must not be retained)", len(spans))
	}

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var sawInstant bool
	for _, ev := range doc.TraceEvents {
		if ev.Name == "still.running" {
			t.Fatal("in-flight span leaked into the export")
		}
		if ev.Ph == "X" && ev.Name == "instant" {
			sawInstant = true
			if ev.Dur <= 0 {
				t.Fatalf("zero-duration span exported with dur=%v, want positive clamp", ev.Dur)
			}
		}
	}
	if !sawInstant {
		t.Fatal("ended span missing from export")
	}
	// Ending the in-flight span later still lands it in the next export.
	inflight.End(nil)
	buf.Reset()
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("still.running")) {
		t.Fatal("span ended after first export missing from second export")
	}
}
