package pmml

import (
	"fmt"
	"math"
)

// Evaluator is the generic numeric-vector-in, number-out scorer the paper's
// §3.3 describes: "a generic model evaluator for models whose input is a
// numeric vector and the output is a number (e.g., logistic regression,
// k-means, etc)".
type Evaluator struct {
	doc    *Document
	fields []string
	score  func(x []float64) (float64, error)
}

// NewEvaluator compiles a document into a scorer.
func NewEvaluator(d *Document) (*Evaluator, error) {
	e := &Evaluator{doc: d, fields: d.ActiveFields()}
	switch {
	case d.Regression != nil:
		fn, err := compileRegression(d.Regression, e.fields)
		if err != nil {
			return nil, err
		}
		e.score = fn
	case d.Clustering != nil:
		fn, err := compileClustering(d.Clustering, len(e.fields))
		if err != nil {
			return nil, err
		}
		e.score = fn
	default:
		return nil, fmt.Errorf("pmml: no supported model in document")
	}
	return e, nil
}

// NumFeatures returns the input vector width.
func (e *Evaluator) NumFeatures() int { return len(e.fields) }

// FieldNames returns the input field names.
func (e *Evaluator) FieldNames() []string { return e.fields }

// Predict scores one feature vector: a real value for regression, the
// predicted class (0/1) for logistic classification, and the nearest
// cluster index for k-means.
func (e *Evaluator) Predict(x []float64) (float64, error) {
	if len(x) != len(e.fields) {
		return 0, fmt.Errorf("pmml: model takes %d features, got %d", len(e.fields), len(x))
	}
	return e.score(x)
}

func linearTerm(t RegressionTable, fields []string, x []float64) (float64, error) {
	z := t.Intercept
	idx := make(map[string]int, len(fields))
	for i, f := range fields {
		idx[f] = i
	}
	for _, p := range t.Predictors {
		i, ok := idx[p.Name]
		if !ok {
			return 0, fmt.Errorf("pmml: predictor %q not among active fields %v", p.Name, fields)
		}
		z += p.Coefficient * x[i]
	}
	return z, nil
}

func compileRegression(m *RegressionModel, fields []string) (func([]float64) (float64, error), error) {
	if len(m.Tables) == 0 {
		return nil, fmt.Errorf("pmml: regression model has no tables")
	}
	switch m.FunctionName {
	case "regression":
		t := m.Tables[0]
		return func(x []float64) (float64, error) {
			return linearTerm(t, fields, x)
		}, nil
	case "classification":
		// Spark exports binary logistic regression as two tables; the one
		// with predictors scores category "1".
		active := m.Tables[0]
		for _, t := range m.Tables {
			if len(t.Predictors) > 0 {
				active = t
				break
			}
		}
		return func(x []float64) (float64, error) {
			z, err := linearTerm(active, fields, x)
			if err != nil {
				return 0, err
			}
			p := 1.0 / (1.0 + math.Exp(-z))
			if p >= 0.5 {
				return 1, nil
			}
			return 0, nil
		}, nil
	default:
		return nil, fmt.Errorf("pmml: unsupported regression functionName %q", m.FunctionName)
	}
}

func compileClustering(m *ClusteringModel, nFields int) (func([]float64) (float64, error), error) {
	if len(m.Clusters) == 0 {
		return nil, fmt.Errorf("pmml: clustering model has no clusters")
	}
	centers := make([][]float64, len(m.Clusters))
	for i, c := range m.Clusters {
		vals, err := c.Array.Values()
		if err != nil {
			return nil, err
		}
		if len(vals) != nFields {
			return nil, fmt.Errorf("pmml: cluster %d has %d dims, model has %d fields", i, len(vals), nFields)
		}
		centers[i] = vals
	}
	return func(x []float64) (float64, error) {
		best, bestD := 0, math.Inf(1)
		for i, c := range centers {
			d := 0.0
			for j := range c {
				diff := x[j] - c[j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = i, d
			}
		}
		return float64(best), nil
	}, nil
}
