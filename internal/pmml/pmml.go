// Package pmml implements the subset of the Predictive Model Markup
// Language (PMML 4.1) the paper's model-deployment component uses (§3.3):
// XML marshal/unmarshal of regression, logistic-regression and clustering
// models — the model classes Spark 1.5's MLlib can export — plus a generic
// evaluator for models whose input is a numeric vector and whose output is
// a number, the JPMML role in the paper's scoring UDF.
package pmml

import (
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"
)

// Document is a PMML document: a data dictionary plus exactly one model (the
// general structure of [7] in the paper).
type Document struct {
	XMLName        xml.Name         `xml:"PMML"`
	Version        string           `xml:"version,attr"`
	Header         Header           `xml:"Header"`
	DataDictionary DataDictionary   `xml:"DataDictionary"`
	Regression     *RegressionModel `xml:"RegressionModel,omitempty"`
	Clustering     *ClusteringModel `xml:"ClusteringModel,omitempty"`
}

// Header identifies the producing application.
type Header struct {
	Copyright   string      `xml:"copyright,attr,omitempty"`
	Description string      `xml:"description,attr,omitempty"`
	Application Application `xml:"Application"`
}

// Application names the producer.
type Application struct {
	Name    string `xml:"name,attr"`
	Version string `xml:"version,attr,omitempty"`
}

// DataDictionary declares the fields.
type DataDictionary struct {
	NumberOfFields int         `xml:"numberOfFields,attr"`
	Fields         []DataField `xml:"DataField"`
}

// DataField declares one field.
type DataField struct {
	Name     string `xml:"name,attr"`
	OpType   string `xml:"optype,attr"`
	DataType string `xml:"dataType,attr"`
}

// MiningSchema lists the fields a model consumes/produces.
type MiningSchema struct {
	Fields []MiningField `xml:"MiningField"`
}

// MiningField is one mining schema entry.
type MiningField struct {
	Name      string `xml:"name,attr"`
	UsageType string `xml:"usageType,attr,omitempty"`
}

// RegressionModel covers both linear regression (functionName="regression")
// and logistic regression (functionName="classification" with
// normalizationMethod="logit" and one table per target category), matching
// Spark MLlib's PMML export.
type RegressionModel struct {
	ModelName           string            `xml:"modelName,attr,omitempty"`
	FunctionName        string            `xml:"functionName,attr"`
	NormalizationMethod string            `xml:"normalizationMethod,attr,omitempty"`
	MiningSchema        MiningSchema      `xml:"MiningSchema"`
	Tables              []RegressionTable `xml:"RegressionTable"`
}

// RegressionTable holds an intercept and per-feature coefficients.
type RegressionTable struct {
	Intercept      float64            `xml:"intercept,attr"`
	TargetCategory string             `xml:"targetCategory,attr,omitempty"`
	Predictors     []NumericPredictor `xml:"NumericPredictor"`
}

// NumericPredictor is one linear term.
type NumericPredictor struct {
	Name        string  `xml:"name,attr"`
	Coefficient float64 `xml:"coefficient,attr"`
}

// ClusteringModel is a k-means model: centers compared by squared Euclidean
// distance, as Spark MLlib exports.
type ClusteringModel struct {
	ModelName        string       `xml:"modelName,attr,omitempty"`
	FunctionName     string       `xml:"functionName,attr"`
	ModelClass       string       `xml:"modelClass,attr,omitempty"`
	NumberOfClusters int          `xml:"numberOfClusters,attr"`
	MiningSchema     MiningSchema `xml:"MiningSchema"`
	Clusters         []Cluster    `xml:"Cluster"`
}

// Cluster is one centroid.
type Cluster struct {
	ID    string `xml:"id,attr,omitempty"`
	Array Array  `xml:"Array"`
}

// Array is PMML's space-separated numeric array.
type Array struct {
	N    int    `xml:"n,attr"`
	Type string `xml:"type,attr"`
	Body string `xml:",chardata"`
}

// Values parses the array body.
func (a Array) Values() ([]float64, error) {
	fields := strings.Fields(a.Body)
	out := make([]float64, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("pmml: bad array element %q", f)
		}
		out = append(out, v)
	}
	if a.N != 0 && a.N != len(out) {
		return nil, fmt.Errorf("pmml: array declares %d elements, has %d", a.N, len(out))
	}
	return out, nil
}

// MakeArray formats a numeric array.
func MakeArray(vals []float64) Array {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return Array{N: len(vals), Type: "real", Body: strings.Join(parts, " ")}
}

// Marshal renders the document as PMML XML.
func Marshal(d *Document) ([]byte, error) {
	if d.Version == "" {
		d.Version = "4.1"
	}
	out, err := xml.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), out...), nil
}

// Unmarshal parses a PMML document.
func Unmarshal(data []byte) (*Document, error) {
	var d Document
	if err := xml.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("pmml: %w", err)
	}
	if d.Regression == nil && d.Clustering == nil {
		return nil, fmt.Errorf("pmml: document contains no supported model")
	}
	return &d, nil
}

// ModelType names the model class inside a document.
func (d *Document) ModelType() string {
	switch {
	case d.Regression != nil && d.Regression.FunctionName == "classification":
		return "logistic_regression"
	case d.Regression != nil:
		return "linear_regression"
	case d.Clustering != nil:
		return "kmeans"
	default:
		return "unknown"
	}
}

// ActiveFields returns the model's input field names in mining-schema order.
func (d *Document) ActiveFields() []string {
	var ms MiningSchema
	switch {
	case d.Regression != nil:
		ms = d.Regression.MiningSchema
	case d.Clustering != nil:
		ms = d.Clustering.MiningSchema
	}
	var out []string
	for _, f := range ms.Fields {
		if f.UsageType == "" || f.UsageType == "active" {
			out = append(out, f.Name)
		}
	}
	return out
}
