package pmml

import (
	"strings"
	"testing"
)

func linearDoc() *Document {
	return &Document{
		Version: "4.1",
		Header:  Header{Application: Application{Name: "test"}},
		DataDictionary: DataDictionary{NumberOfFields: 3, Fields: []DataField{
			{Name: "a", OpType: "continuous", DataType: "double"},
			{Name: "b", OpType: "continuous", DataType: "double"},
			{Name: "y", OpType: "continuous", DataType: "double"},
		}},
		Regression: &RegressionModel{
			FunctionName: "regression",
			MiningSchema: MiningSchema{Fields: []MiningField{
				{Name: "a", UsageType: "active"},
				{Name: "b", UsageType: "active"},
				{Name: "y", UsageType: "target"},
			}},
			Tables: []RegressionTable{{
				Intercept: 1.5,
				Predictors: []NumericPredictor{
					{Name: "a", Coefficient: 2},
					{Name: "b", Coefficient: -1},
				},
			}},
		},
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	doc := linearDoc()
	data, err := Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<PMML") || !strings.Contains(string(data), `version="4.1"`) {
		t.Errorf("XML missing PMML envelope: %s", data)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Regression == nil || len(got.Regression.Tables[0].Predictors) != 2 {
		t.Fatalf("round trip lost model: %+v", got)
	}
	if got.ModelType() != "linear_regression" {
		t.Errorf("ModelType = %q", got.ModelType())
	}
	if fields := got.ActiveFields(); len(fields) != 2 || fields[0] != "a" {
		t.Errorf("ActiveFields = %v", fields)
	}
}

func TestUnmarshalRejectsEmpty(t *testing.T) {
	if _, err := Unmarshal([]byte(`<PMML version="4.1"></PMML>`)); err == nil {
		t.Error("document without models should fail")
	}
	if _, err := Unmarshal([]byte(`not xml`)); err == nil {
		t.Error("bad XML should fail")
	}
}

func TestLinearEvaluator(t *testing.T) {
	ev, err := NewEvaluator(linearDoc())
	if err != nil {
		t.Fatal(err)
	}
	if ev.NumFeatures() != 2 {
		t.Fatalf("features = %d", ev.NumFeatures())
	}
	y, err := ev.Predict([]float64{3, 4}) // 1.5 + 2*3 - 4 = 3.5
	if err != nil || y != 3.5 {
		t.Errorf("predict = %v, %v", y, err)
	}
	if _, err := ev.Predict([]float64{1}); err == nil {
		t.Error("wrong arity should fail")
	}
}

func TestLogisticEvaluator(t *testing.T) {
	doc := linearDoc()
	doc.Regression.FunctionName = "classification"
	doc.Regression.NormalizationMethod = "logit"
	doc.Regression.Tables[0].TargetCategory = "1"
	doc.Regression.Tables = append(doc.Regression.Tables, RegressionTable{TargetCategory: "0"})
	ev, err := NewEvaluator(doc)
	if err != nil {
		t.Fatal(err)
	}
	// z = 1.5 + 2a - b: a=3,b=1 → z=6.5 → class 1; a=-3,b=1 → z=-5.5 → 0.
	if y, _ := ev.Predict([]float64{3, 1}); y != 1 {
		t.Errorf("positive case = %v", y)
	}
	if y, _ := ev.Predict([]float64{-3, 1}); y != 0 {
		t.Errorf("negative case = %v", y)
	}
}

func TestClusteringEvaluator(t *testing.T) {
	doc := &Document{
		DataDictionary: DataDictionary{NumberOfFields: 2, Fields: []DataField{
			{Name: "x1", OpType: "continuous", DataType: "double"},
			{Name: "x2", OpType: "continuous", DataType: "double"},
		}},
		Clustering: &ClusteringModel{
			FunctionName:     "clustering",
			NumberOfClusters: 2,
			MiningSchema: MiningSchema{Fields: []MiningField{
				{Name: "x1"}, {Name: "x2"},
			}},
			Clusters: []Cluster{
				{ID: "0", Array: MakeArray([]float64{0, 0})},
				{ID: "1", Array: MakeArray([]float64{10, 10})},
			},
		},
	}
	data, err := Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ModelType() != "kmeans" {
		t.Errorf("ModelType = %q", back.ModelType())
	}
	ev, err := NewEvaluator(back)
	if err != nil {
		t.Fatal(err)
	}
	if y, _ := ev.Predict([]float64{1, 1}); y != 0 {
		t.Errorf("near origin → cluster %v", y)
	}
	if y, _ := ev.Predict([]float64{9, 9}); y != 1 {
		t.Errorf("near (10,10) → cluster %v", y)
	}
}

func TestArrayParsing(t *testing.T) {
	a := MakeArray([]float64{1.5, -2, 3e-4})
	vals, err := a.Values()
	if err != nil || len(vals) != 3 || vals[0] != 1.5 {
		t.Errorf("values = %v, %v", vals, err)
	}
	bad := Array{N: 2, Type: "real", Body: "1.0"}
	if _, err := bad.Values(); err == nil {
		t.Error("count mismatch should fail")
	}
	bad2 := Array{Body: "abc"}
	if _, err := bad2.Values(); err == nil {
		t.Error("non-numeric should fail")
	}
}

func TestEvaluatorUnknownPredictor(t *testing.T) {
	doc := linearDoc()
	doc.Regression.Tables[0].Predictors[0].Name = "zz"
	ev, err := NewEvaluator(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Predict([]float64{1, 2}); err == nil {
		t.Error("unknown predictor should fail at scoring")
	}
}
