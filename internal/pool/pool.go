// Package pool implements named resource pools with admission control:
// per-pool memory budgets, concurrency caps, and bounded FIFO admission
// queues with timeouts. It is the engine-side half of the resource manager
// described for Vertica in "C-Store 7 Years Later": every query or load
// asks its session's pool for a slot before executing, and either runs
// immediately, waits its turn, or is turned away with a typed error the
// wire layer can carry to clients as a retryable condition.
//
// The package is dependency-free (standard library only) so it can sit
// below both the engine and the server without import cycles.
package pool

import (
	"container/list"
	"context"
	"errors"
	"sort"
	"sync"
	"time"
)

// GeneralPool is the name of the built-in pool every session starts in.
// It admits everything immediately and cannot be dropped.
const GeneralPool = "general"

// Admission sentinels. They are matched with errors.Is across the engine
// and restored from wire codes on the client side.
var (
	// ErrQueueTimeout means the request waited its full queue timeout
	// (or its context deadline) without a slot freeing up.
	ErrQueueTimeout = errors.New("resource pool queue timeout")
	// ErrRejected means the request could never be admitted: the queue is
	// at MaxQueueDepth, or the request alone exceeds the pool's memory
	// budget.
	ErrRejected = errors.New("resource pool rejected request")
	// ErrNotFound is returned for operations on a pool that does not exist.
	ErrNotFound = errors.New("resource pool does not exist")
	// ErrExists is returned by Create when the pool already exists.
	ErrExists = errors.New("resource pool already exists")
)

// Config is a pool's admission policy. The zero value is a pass-through
// pool: unlimited memory and concurrency, so nothing ever queues.
type Config struct {
	// MemoryBytes caps the sum of in-flight request estimates. 0 = unlimited.
	MemoryBytes int64 `json:"memory_bytes,omitempty"`
	// MaxConcurrency caps concurrently running requests. 0 = unlimited.
	MaxConcurrency int `json:"max_concurrency,omitempty"`
	// MaxQueueDepth bounds the admission queue: <0 unlimited, 0 = never
	// queue (reject when the pool is busy), >0 bounds the waiter count.
	MaxQueueDepth int `json:"max_queue_depth,omitempty"`
	// QueueTimeout bounds how long a request may wait for admission.
	// 0 = wait as long as the request's context allows.
	QueueTimeout time.Duration `json:"queue_timeout,omitempty"`
}

// Result describes how an admission went for the caller's accounting.
type Result struct {
	Queued bool          // true if the request had to wait
	Waited time.Duration // time spent in the queue (0 if admitted at once)
}

// QueueEvent is one admission-queue incident, retained in the manager's
// bounded ring for v_monitor.resource_queue_events. Immediate admissions
// are counted but not recorded: only waits and refusals are interesting.
type QueueEvent struct {
	Time    time.Time
	Pool    string
	Outcome string // "queued" | "timeout" | "rejected" | "canceled"
	Wait    time.Duration
	Detail  string // statement kind or caller-supplied tag
}

// Stats is a point-in-time snapshot of one pool for monitoring.
type Stats struct {
	Name       string
	Cfg        Config
	Running    int
	MemInUse   int64
	QueueLen   int
	Admitted   uint64 // total admissions (immediate + queued)
	Queued     uint64 // total admissions that waited first
	Timeouts   uint64
	Rejections uint64
	Cancels    uint64
}

type waiter struct {
	ch       chan struct{} // closed by pump() when admitted
	mem      int64
	admitted bool
}

// Pool is one named admission domain. All methods are safe for concurrent
// use. Admission order is strict FIFO: a new arrival never barges past
// parked waiters even if it would fit.
type Pool struct {
	name string
	mgr  *Manager

	mu       sync.Mutex
	cfg      Config
	running  int
	memInUse int64
	waiters  list.List // of *waiter

	admitted   uint64
	queuedTot  uint64
	timeouts   uint64
	rejections uint64
	cancels    uint64
}

// Name returns the pool's name.
func (p *Pool) Name() string { return p.name }

// Snapshot returns current stats.
func (p *Pool) Snapshot() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Name: p.name, Cfg: p.cfg,
		Running: p.running, MemInUse: p.memInUse, QueueLen: p.waiters.Len(),
		Admitted: p.admitted, Queued: p.queuedTot,
		Timeouts: p.timeouts, Rejections: p.rejections, Cancels: p.cancels,
	}
}

func (p *Pool) fits(mem int64) bool {
	if p.cfg.MaxConcurrency > 0 && p.running >= p.cfg.MaxConcurrency {
		return false
	}
	if p.cfg.MemoryBytes > 0 && p.memInUse+mem > p.cfg.MemoryBytes {
		return false
	}
	return true
}

// pump admits parked waiters head-first while resources allow. The head
// blocks the queue: FIFO order is never violated to fit a smaller request.
// Caller holds p.mu.
func (p *Pool) pump() {
	for e := p.waiters.Front(); e != nil; e = p.waiters.Front() {
		w := e.Value.(*waiter)
		if !p.fits(w.mem) {
			return
		}
		p.waiters.Remove(e)
		p.running++
		p.memInUse += w.mem
		w.admitted = true
		close(w.ch)
	}
}

func (p *Pool) release(mem int64) {
	p.mu.Lock()
	p.running--
	p.memInUse -= mem
	p.pump()
	p.mu.Unlock()
}

// Admit asks for a slot sized mem bytes. It returns a release func that
// MUST be called exactly once when the work finishes, plus a Result saying
// whether (and how long) the request queued. detail tags queue events
// (typically the statement kind). A mem of 0 still counts against
// MaxConcurrency.
func (p *Pool) Admit(ctx context.Context, mem int64, detail string) (func(), Result, error) {
	p.mu.Lock()
	if p.cfg.MemoryBytes > 0 && mem > p.cfg.MemoryBytes {
		// Could never run: bigger than the whole budget.
		p.rejections++
		p.mu.Unlock()
		p.mgr.record(QueueEvent{Time: time.Now(), Pool: p.name, Outcome: "rejected", Detail: detail})
		return nil, Result{}, ErrRejected
	}
	if p.waiters.Len() == 0 && p.fits(mem) {
		p.running++
		p.memInUse += mem
		p.admitted++
		p.mu.Unlock()
		var once sync.Once
		return func() { once.Do(func() { p.release(mem) }) }, Result{}, nil
	}
	if p.cfg.MaxQueueDepth >= 0 && p.waiters.Len() >= p.cfg.MaxQueueDepth {
		p.rejections++
		p.mu.Unlock()
		p.mgr.record(QueueEvent{Time: time.Now(), Pool: p.name, Outcome: "rejected", Detail: detail})
		return nil, Result{}, ErrRejected
	}
	w := &waiter{ch: make(chan struct{}), mem: mem}
	elem := p.waiters.PushBack(w)
	timeout := p.cfg.QueueTimeout
	p.mu.Unlock()

	start := time.Now()
	var timer *time.Timer
	var timerC <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		timerC = timer.C
		defer timer.Stop()
	}

	var outcome string
	var err error
	select {
	case <-w.ch:
		wait := time.Since(start)
		p.mu.Lock()
		p.admitted++
		p.queuedTot++
		p.mu.Unlock()
		p.mgr.record(QueueEvent{Time: time.Now(), Pool: p.name, Outcome: "queued", Wait: wait, Detail: detail})
		var once sync.Once
		return func() { once.Do(func() { p.release(mem) }) }, Result{Queued: true, Waited: wait}, nil
	case <-timerC:
		outcome, err = "timeout", ErrQueueTimeout
	case <-ctx.Done():
		outcome, err = "canceled", ctx.Err()
	}

	// Timed out or canceled: withdraw from the queue, racing pump().
	p.mu.Lock()
	if w.admitted {
		// pump() admitted us before we could withdraw — take the slot and
		// give it straight back so accounting stays balanced, then fail.
		p.running--
		p.memInUse -= mem
		p.pump()
	} else {
		p.waiters.Remove(elem)
	}
	switch outcome {
	case "timeout":
		p.timeouts++
	default:
		p.cancels++
	}
	p.mu.Unlock()
	p.mgr.record(QueueEvent{Time: time.Now(), Pool: p.name, Outcome: outcome, Wait: time.Since(start), Detail: detail})
	return nil, Result{Queued: true, Waited: time.Since(start)}, err
}

// Manager owns the named pools of one cluster plus the bounded ring of
// queue events backing v_monitor.resource_queue_events.
type Manager struct {
	mu    sync.Mutex
	pools map[string]*Pool

	// OnEvent, when non-nil, observes every retained queue event — the
	// durable data collector's feed. Set it before the manager is shared;
	// it runs synchronously on the recording goroutine, outside the
	// manager's locks.
	OnEvent func(QueueEvent)

	evMu   sync.Mutex
	events []QueueEvent // ring
	evNext int
	evFull bool
}

const eventRingCap = 512

// NewManager returns a manager pre-populated with the built-in
// pass-through "general" pool.
func NewManager() *Manager {
	m := &Manager{pools: make(map[string]*Pool), events: make([]QueueEvent, eventRingCap)}
	m.pools[GeneralPool] = &Pool{name: GeneralPool, mgr: m, cfg: Config{MaxQueueDepth: -1}}
	return m
}

// Get returns the named pool or ErrNotFound.
func (m *Manager) Get(name string) (*Pool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pools[name]
	if !ok {
		return nil, ErrNotFound
	}
	return p, nil
}

// General returns the built-in pool.
func (m *Manager) General() *Pool {
	p, _ := m.Get(GeneralPool)
	return p
}

// Create adds a new pool or returns ErrExists.
func (m *Manager) Create(name string, cfg Config) (*Pool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pools[name]; ok {
		return nil, ErrExists
	}
	p := &Pool{name: name, mgr: m, cfg: cfg}
	m.pools[name] = p
	return p, nil
}

// Ensure upserts: create the pool if missing, otherwise reset its config.
// Used by WAL replay, where the log's last word on a pool wins.
func (m *Manager) Ensure(name string, cfg Config) *Pool {
	m.mu.Lock()
	p, ok := m.pools[name]
	if !ok {
		p = &Pool{name: name, mgr: m, cfg: cfg}
		m.pools[name] = p
		m.mu.Unlock()
		return p
	}
	m.mu.Unlock()
	p.mu.Lock()
	p.cfg = cfg
	p.pump() // raised limits may unblock parked waiters
	p.mu.Unlock()
	return p
}

// Alter replaces the named pool's config (ErrNotFound if missing) and
// re-pumps its queue in case limits were raised.
func (m *Manager) Alter(name string, cfg Config) error {
	m.mu.Lock()
	p, ok := m.pools[name]
	m.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	p.mu.Lock()
	p.cfg = cfg
	p.pump()
	p.mu.Unlock()
	return nil
}

// Drop removes a pool. The built-in general pool cannot be dropped.
// Requests already admitted keep their slots; parked waiters stay parked
// until admitted or timed out (sessions resolve the name per statement, so
// new work lands in general once its SET target vanishes).
func (m *Manager) Drop(name string) error {
	if name == GeneralPool {
		return errors.New("cannot drop built-in general pool")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pools[name]; !ok {
		return ErrNotFound
	}
	delete(m.pools, name)
	return nil
}

// List returns stats for every pool, sorted by name.
func (m *Manager) List() []Stats {
	m.mu.Lock()
	ps := make([]*Pool, 0, len(m.pools))
	for _, p := range m.pools {
		ps = append(ps, p)
	}
	m.mu.Unlock()
	out := make([]Stats, 0, len(ps))
	for _, p := range ps {
		out = append(out, p.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (m *Manager) record(ev QueueEvent) {
	m.evMu.Lock()
	m.events[m.evNext] = ev
	m.evNext++
	if m.evNext == len(m.events) {
		m.evNext = 0
		m.evFull = true
	}
	m.evMu.Unlock()
	if m.OnEvent != nil {
		m.OnEvent(ev)
	}
}

// Events returns retained queue events, oldest first.
func (m *Manager) Events() []QueueEvent {
	m.evMu.Lock()
	defer m.evMu.Unlock()
	var out []QueueEvent
	if m.evFull {
		out = append(out, m.events[m.evNext:]...)
	}
	out = append(out, m.events[:m.evNext]...)
	return out
}
