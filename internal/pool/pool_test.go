package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestImmediateAdmission(t *testing.T) {
	m := NewManager()
	p := m.General()
	rel, res, err := p.Admit(context.Background(), 1<<20, "select")
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if res.Queued {
		t.Fatal("general pool should never queue")
	}
	st := p.Snapshot()
	if st.Running != 1 || st.MemInUse != 1<<20 {
		t.Fatalf("running=%d mem=%d, want 1, 1MiB", st.Running, st.MemInUse)
	}
	rel()
	rel() // double release must be a no-op
	st = p.Snapshot()
	if st.Running != 0 || st.MemInUse != 0 {
		t.Fatalf("after release running=%d mem=%d", st.Running, st.MemInUse)
	}
}

func TestConcurrencyBoundAndFIFO(t *testing.T) {
	m := NewManager()
	p, err := m.Create("q", Config{MaxConcurrency: 2, MaxQueueDepth: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rel1, _, _ := p.Admit(ctx, 0, "a")
	rel2, _, _ := p.Admit(ctx, 0, "b")

	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	proceed := make(chan struct{}) // closed once order is fully observed
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, res, err := p.Admit(ctx, 0, "w")
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			if !res.Queued {
				t.Errorf("waiter %d admitted without queueing", i)
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			// Hold the slot until the test has observed the admission, so
			// releases can't admit the next waiter concurrently and blur
			// the observed order.
			<-proceed
			rel()
		}()
		// Wait until the goroutine is parked before starting the next, so
		// arrival (and hence FIFO) order is deterministic.
		waitFor(t, func() bool { return p.Snapshot().QueueLen == i+1 })
	}
	if st := p.Snapshot(); st.Running != 2 {
		t.Fatalf("running=%d, want bounded at 2", st.Running)
	}
	seen := func(n int) bool { mu.Lock(); defer mu.Unlock(); return len(order) == n }
	rel1()
	waitFor(t, func() bool { return seen(1) })
	rel2()
	waitFor(t, func() bool { return seen(2) })
	close(proceed) // first two release; third admitted off their slots
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order %v, want FIFO 0,1,2", order)
		}
	}
	if st := p.Snapshot(); st.Admitted != 5 || st.Queued != 3 {
		t.Fatalf("admitted=%d queued=%d, want 5/3", st.Admitted, st.Queued)
	}
}

func TestMemoryBudget(t *testing.T) {
	m := NewManager()
	p, _ := m.Create("mem", Config{MemoryBytes: 100, MaxQueueDepth: -1})
	ctx := context.Background()
	rel1, _, err := p.Admit(ctx, 60, "a")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		rel, _, err := p.Admit(ctx, 60, "b")
		if err == nil {
			rel()
		}
		done <- err
	}()
	waitFor(t, func() bool { return p.Snapshot().QueueLen == 1 })
	rel1()
	if err := <-done; err != nil {
		t.Fatalf("second admit after release: %v", err)
	}

	// A request bigger than the whole budget is rejected outright.
	if _, _, err := p.Admit(ctx, 101, "huge"); !errors.Is(err, ErrRejected) {
		t.Fatalf("oversized request: got %v, want ErrRejected", err)
	}
}

func TestQueueDepthReject(t *testing.T) {
	m := NewManager()
	p, _ := m.Create("tiny", Config{MaxConcurrency: 1, MaxQueueDepth: 1})
	ctx := context.Background()
	rel, _, _ := p.Admit(ctx, 0, "run")
	defer rel()
	go p.Admit(ctx, 0, "parked") //nolint:errcheck // released via rel below is irrelevant; parked forever is fine for the test
	waitFor(t, func() bool { return p.Snapshot().QueueLen == 1 })
	if _, _, err := p.Admit(ctx, 0, "over"); !errors.Is(err, ErrRejected) {
		t.Fatalf("queue overflow: got %v, want ErrRejected", err)
	}
	// MaxQueueDepth 0 means never queue.
	p2, _ := m.Create("noq", Config{MaxConcurrency: 1})
	rel2, _, _ := p2.Admit(ctx, 0, "run")
	defer rel2()
	if _, _, err := p2.Admit(ctx, 0, "busy"); !errors.Is(err, ErrRejected) {
		t.Fatalf("zero-depth queue: got %v, want ErrRejected", err)
	}
}

func TestQueueTimeout(t *testing.T) {
	m := NewManager()
	p, _ := m.Create("slow", Config{MaxConcurrency: 1, MaxQueueDepth: -1, QueueTimeout: 10 * time.Millisecond})
	ctx := context.Background()
	rel, _, _ := p.Admit(ctx, 0, "hold")
	defer rel()
	_, res, err := p.Admit(ctx, 0, "late")
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("got %v, want ErrQueueTimeout", err)
	}
	if !res.Queued || res.Waited < 10*time.Millisecond {
		t.Fatalf("result %+v should reflect the wait", res)
	}
	if st := p.Snapshot(); st.Timeouts != 1 || st.QueueLen != 0 {
		t.Fatalf("timeouts=%d queuelen=%d, want 1/0", st.Timeouts, st.QueueLen)
	}
}

func TestContextCancel(t *testing.T) {
	m := NewManager()
	p, _ := m.Create("c", Config{MaxConcurrency: 1, MaxQueueDepth: -1})
	rel, _, _ := p.Admit(context.Background(), 0, "hold")
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := p.Admit(ctx, 0, "canceled")
		done <- err
	}()
	waitFor(t, func() bool { return p.Snapshot().QueueLen == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if st := p.Snapshot(); st.QueueLen != 0 || st.Cancels != 1 {
		t.Fatalf("queuelen=%d cancels=%d after cancel", st.QueueLen, st.Cancels)
	}
}

func TestAlterRaisesLimitsUnblocksWaiters(t *testing.T) {
	m := NewManager()
	p, _ := m.Create("grow", Config{MaxConcurrency: 1, MaxQueueDepth: -1})
	ctx := context.Background()
	rel, _, _ := p.Admit(ctx, 0, "hold")
	defer rel()
	done := make(chan error, 1)
	go func() {
		rel, _, err := p.Admit(ctx, 0, "waiter")
		if err == nil {
			defer rel()
		}
		done <- err
	}()
	waitFor(t, func() bool { return p.Snapshot().QueueLen == 1 })
	if err := m.Alter("grow", Config{MaxConcurrency: 2, MaxQueueDepth: -1}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("waiter after ALTER: %v", err)
	}
}

func TestManagerLifecycle(t *testing.T) {
	m := NewManager()
	if _, err := m.Create(GeneralPool, Config{}); !errors.Is(err, ErrExists) {
		t.Fatalf("create general: %v, want ErrExists", err)
	}
	if err := m.Drop(GeneralPool); err == nil {
		t.Fatal("dropping general must fail")
	}
	if err := m.Alter("ghost", Config{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("alter ghost: %v", err)
	}
	if _, err := m.Create("a", Config{MaxConcurrency: 3}); err != nil {
		t.Fatal(err)
	}
	m.Ensure("a", Config{MaxConcurrency: 7}) // upsert over existing
	m.Ensure("b", Config{MemoryBytes: 42})   // upsert creates
	ls := m.List()
	if len(ls) != 3 || ls[0].Name != "a" || ls[1].Name != "b" || ls[2].Name != GeneralPool {
		t.Fatalf("List: %+v", ls)
	}
	if ls[0].Cfg.MaxConcurrency != 7 || ls[1].Cfg.MemoryBytes != 42 {
		t.Fatalf("Ensure configs not applied: %+v", ls)
	}
	if err := m.Drop("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get dropped: %v", err)
	}
}

func TestEventsRing(t *testing.T) {
	m := NewManager()
	p, _ := m.Create("ev", Config{MaxConcurrency: 1})
	ctx := context.Background()
	rel, _, _ := p.Admit(ctx, 0, "hold")
	for i := 0; i < eventRingCap+10; i++ {
		p.Admit(ctx, 0, "spill") //nolint:errcheck // intentionally rejected
	}
	rel()
	evs := m.Events()
	if len(evs) != eventRingCap {
		t.Fatalf("ring holds %d, want %d", len(evs), eventRingCap)
	}
	for _, ev := range evs {
		if ev.Pool != "ev" || ev.Outcome != "rejected" || ev.Time.IsZero() {
			t.Fatalf("bad event %+v", ev)
		}
	}
}

// TestAdmitReleaseRace hammers a small pool from many goroutines and checks
// the concurrency bound is never violated and accounting returns to zero.
func TestAdmitReleaseRace(t *testing.T) {
	m := NewManager()
	const limit = 4
	p, _ := m.Create("race", Config{MaxConcurrency: limit, MaxQueueDepth: -1})
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				rel, _, err := p.Admit(ctx, 1, "work")
				if err != nil {
					t.Errorf("admit: %v", err)
					return
				}
				n := cur.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				cur.Add(-1)
				rel()
			}
		}()
	}
	wg.Wait()
	if peak.Load() > limit {
		t.Fatalf("observed %d concurrent admissions, limit %d", peak.Load(), limit)
	}
	if st := p.Snapshot(); st.Running != 0 || st.MemInUse != 0 || st.QueueLen != 0 {
		t.Fatalf("leaked accounting: %+v", st)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(200 * time.Microsecond)
	}
}
