// Package rebalance implements epoch-consistent segment movement: given a
// table laid out on one ring and a target membership ring, it builds a
// complete replacement layout (primary stores plus buddy replicas) by
// exporting every committed row version from a live replica of each old
// segment and re-importing it under the new ring's hash ranges.
//
// Because versions carry their full MVCC history (insert epoch, delete
// epoch), the new layout answers AT EPOCH queries identically to the old one
// at every epoch up to the move — the property that lets in-flight V2S jobs
// stay pinned to their planning epoch across an ALTER CLUSTER ("The Vertica
// Analytic Database: C-Store 7 Years Later" calls this rebalance without
// blocking load; the engine flips visibility atomically by swapping the
// catalog layout inside the rebalance transaction's commit).
//
// MoveTable is deterministic given the table's committed contents and the
// target ring, so replaying a rebalance record from the WAL reproduces the
// same placement the original run produced.
package rebalance

import (
	"fmt"
	"sort"

	"vsfabric/internal/catalog"
	"vsfabric/internal/storage"
	"vsfabric/internal/vhash"
)

// Result summarizes one table move for progress reporting
// (v_monitor.rebalance_operations).
type Result struct {
	Table      string
	Rows       int // committed row versions placed in the new layout
	RowsMoved  int // versions whose owning node changed
	Containers int // ROS containers built across the new primary stores
}

// Layout is a complete replacement layout for a table, ready to be installed
// with catalog.SwapLayout inside a commit hook.
type Layout struct {
	Ring    []int
	Stores  []*storage.Store
	Buddies [][]*storage.Store
}

// SourceFor picks the replica to export old segment seg from: the primary if
// its node is healthy, else the first healthy buddy. healthy == nil trusts
// the primary unconditionally (WAL replay, where every store is current).
func SourceFor(t *catalog.Table, seg int, healthy func(nodeID int) bool) (*storage.Store, error) {
	n := len(t.Ring)
	if healthy == nil || healthy(t.Ring[seg]) {
		return t.Stores[seg], nil
	}
	if !t.Def.Segmented {
		for p := range t.Ring {
			if healthy(t.Ring[p]) {
				return t.Stores[p], nil
			}
		}
		return nil, fmt.Errorf("rebalance: table %q has no live replica", t.Def.Name)
	}
	for r := range t.Buddies {
		host := (seg + r + 1) % n
		if healthy(t.Ring[host]) {
			return t.Buddies[r][host], nil
		}
	}
	return nil, fmt.Errorf("rebalance: segment %d of table %q has no live replica (k-safety exhausted)", seg, t.Def.Name)
}

func validateRing(ring []int) error {
	if len(ring) == 0 {
		return fmt.Errorf("rebalance: target ring is empty")
	}
	seen := make(map[int]bool, len(ring))
	for _, id := range ring {
		if id < 0 {
			return fmt.Errorf("rebalance: invalid node id %d in target ring", id)
		}
		if seen[id] {
			return fmt.Errorf("rebalance: duplicate node id %d in target ring", id)
		}
		seen[id] = true
	}
	return nil
}

// MoveTable builds a new layout for t on newRing. The caller must hold the
// table's EXCLUSIVE lock so the export sees exactly the committed state
// (EXCLUSIVE acquisition waits out every in-flight writer, and the lock rules
// guarantee no provisional rows remain in a table nobody holds a lock on).
// healthy reports whether a node's stores are current; nil trusts every
// primary. The old stores are left untouched, so readers holding the old
// *Table stay correct.
func MoveTable(t *catalog.Table, newRing []int, healthy func(nodeID int) bool) (*Layout, Result, error) {
	res := Result{Table: t.Def.Name}
	if err := validateRing(newRing); err != nil {
		return nil, res, err
	}
	if t.Def.KSafety >= len(newRing) {
		return nil, res, fmt.Errorf("rebalance: table %q k-safety %d needs more than %d nodes", t.Def.Name, t.Def.KSafety, len(newRing))
	}

	oldNodes := make(map[int]bool, len(t.Ring))
	for _, id := range t.Ring {
		oldNodes[id] = true
	}
	schema, segIdx := t.Def.Schema, t.SegIdx
	nNew := len(newRing)
	newStores := make([]*storage.Store, nNew)
	for p := range newStores {
		newStores[p] = storage.NewStore(schema, segIdx)
	}

	if !t.Def.Segmented {
		src, err := SourceFor(t, 0, healthy)
		if err != nil {
			return nil, res, err
		}
		versions := src.ExportVersions()
		res.Rows = len(versions)
		for p, id := range newRing {
			if err := newStores[p].ImportVersions(versions); err != nil {
				return nil, res, err
			}
			if !oldNodes[id] {
				res.RowsMoved += len(versions)
			}
			res.Containers += newStores[p].ContainerCount()
		}
		lay := &Layout{Ring: append([]int(nil), newRing...), Stores: newStores}
		return lay, res, nil
	}

	// Export each old segment from a live replica and bucket the versions by
	// their new home position. Export order (segments ascending, containers
	// then WOS within each) is deterministic, so the per-bucket order — and
	// with it the imported container layout — is too.
	buckets := make([][]storage.RowVersion, nNew)
	for seg := range t.Ring {
		src, err := SourceFor(t, seg, healthy)
		if err != nil {
			return nil, res, err
		}
		for _, v := range src.ExportVersions() {
			home := vhash.SegmentOf(v.Hash, nNew)
			buckets[home] = append(buckets[home], v)
			res.Rows++
			if t.Ring[vhash.SegmentOf(v.Hash, len(t.Ring))] != newRing[home] {
				res.RowsMoved++
			}
		}
	}
	for p := range newStores {
		if err := newStores[p].ImportVersions(buckets[p]); err != nil {
			return nil, res, err
		}
		res.Containers += newStores[p].ContainerCount()
	}
	var newBuddies [][]*storage.Store
	if t.Def.KSafety > 0 {
		newBuddies = make([][]*storage.Store, t.Def.KSafety)
		for r := range newBuddies {
			newBuddies[r] = make([]*storage.Store, nNew)
			for p := range newBuddies[r] {
				st := storage.NewStore(schema, segIdx)
				// Buddies[r][p] holds the segment whose home position is
				// (p-r-1) mod n — same convention as the write path.
				seg := ((p-r-1)%nNew + nNew) % nNew
				if err := st.ImportVersions(buckets[seg]); err != nil {
					return nil, res, err
				}
				newBuddies[r][p] = st
			}
		}
	}
	lay := &Layout{Ring: append([]int(nil), newRing...), Stores: newStores, Buddies: newBuddies}
	return lay, res, nil
}

// RingWithout returns ring minus the given node ID, order preserved.
func RingWithout(ring []int, nodeID int) []int {
	out := make([]int, 0, len(ring))
	for _, id := range ring {
		if id != nodeID {
			out = append(out, id)
		}
	}
	return out
}

// RingsEqual reports whether two rings are identical (same IDs, same order).
func RingsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SortedCopy returns a sorted copy of ring — handy for stable test output.
func SortedCopy(ring []int) []int {
	out := append([]int(nil), ring...)
	sort.Ints(out)
	return out
}
