package rebalance

import (
	"fmt"
	"strings"
	"testing"

	"vsfabric/internal/catalog"
	"vsfabric/internal/storage"
	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
)

// buildTable creates an n-node table and loads rows the way the engine's
// write path does: each row lands in its hash-home primary store and in the
// buddy stores covering that segment.
func buildTable(t *testing.T, n, ksafety int, segmented bool, nRows int, epoch uint64) *catalog.Table {
	t.Helper()
	cat := catalog.New(n)
	def := catalog.TableDef{
		Name:      "t",
		Schema:    types.NewSchema(types.Column{Name: "id", T: types.Int64}),
		Segmented: segmented,
		KSafety:   ksafety,
	}
	if segmented {
		def.SegCols = []string{"id"}
	}
	tbl, err := cat.CreateTable(def, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]types.Row, nRows)
	for i := range rows {
		rows[i] = types.Row{types.IntValue(int64(i))}
	}
	addRows(t, tbl, rows, epoch)
	return tbl
}

func addRows(t *testing.T, tbl *catalog.Table, rows []types.Row, epoch uint64) {
	t.Helper()
	n := len(tbl.Ring)
	if !tbl.Def.Segmented {
		for _, st := range tbl.Stores {
			if err := st.AppendROS(rows, epoch); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	buckets := make([][]types.Row, n)
	for _, r := range rows {
		seg := vhash.SegmentOf(tbl.RowHash(r), n)
		buckets[seg] = append(buckets[seg], r)
	}
	for seg, b := range buckets {
		if len(b) == 0 {
			continue
		}
		if err := tbl.Stores[seg].AppendROS(b, epoch); err != nil {
			t.Fatal(err)
		}
		for r := range tbl.Buddies {
			host := (seg + r + 1) % n
			if err := tbl.Buddies[r][host].AppendROS(b, epoch); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// deleteEverywhere applies a committed delete to every replica, as the
// engine's delete path does.
func deleteEverywhere(tbl *catalog.Table, epoch uint64, match func(types.Row) bool) {
	vis := storage.Visibility{Epoch: epoch - 1}
	for _, st := range tbl.Stores {
		st.DeleteWhere(vis, epoch, match)
	}
	for _, rep := range tbl.Buddies {
		for _, st := range rep {
			st.DeleteWhere(vis, epoch, match)
		}
	}
}

func countAt(stores []*storage.Store, epoch uint64) int {
	total := 0
	for _, st := range stores {
		total += st.RowCount(storage.Visibility{Epoch: epoch})
	}
	return total
}

func TestRingHelpers(t *testing.T) {
	ring := []int{0, 1, 2, 3}
	if got := RingWithout(ring, 2); !RingsEqual(got, []int{0, 1, 3}) {
		t.Fatalf("RingWithout = %v", got)
	}
	if got := RingWithout(ring, 9); !RingsEqual(got, ring) {
		t.Fatalf("RingWithout of absent id = %v", got)
	}
	if RingsEqual([]int{0, 1}, []int{1, 0}) {
		t.Fatal("RingsEqual must be order-sensitive")
	}
	if RingsEqual([]int{0, 1}, []int{0, 1, 2}) {
		t.Fatal("RingsEqual must compare lengths")
	}
	if got := SortedCopy([]int{3, 0, 2}); !RingsEqual(got, []int{0, 2, 3}) {
		t.Fatalf("SortedCopy = %v", got)
	}
}

// TestMoveTableGrow moves a 3-node KSAFE 1 table onto a 4-node ring and
// checks the new layout is complete, correctly homed, buddy-consistent, and
// answers historical epochs exactly as the old layout did.
func TestMoveTableGrow(t *testing.T) {
	const nRows = 240
	tbl := buildTable(t, 3, 1, true, nRows, 1)
	deleteEverywhere(tbl, 2, func(r types.Row) bool { return r[0].I < 60 })

	newRing := []int{0, 1, 2, 3}
	lay, res, err := MoveTable(tbl, newRing, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !RingsEqual(lay.Ring, newRing) {
		t.Fatalf("layout ring = %v", lay.Ring)
	}
	if len(lay.Stores) != 4 || len(lay.Buddies) != 1 || len(lay.Buddies[0]) != 4 {
		t.Fatalf("layout shape: %d stores, %d buddy rows", len(lay.Stores), len(lay.Buddies))
	}
	if res.Rows != nRows {
		t.Fatalf("res.Rows = %d, want %d (every version placed, live and deleted)", res.Rows, nRows)
	}
	if res.RowsMoved == 0 || res.RowsMoved >= nRows {
		t.Fatalf("res.RowsMoved = %d, want some-but-not-all", res.RowsMoved)
	}

	// Same answer at every epoch, old layout and new.
	for _, e := range []uint64{1, 2} {
		if got, want := countAt(lay.Stores, e), countAt(tbl.Stores, e); got != want {
			t.Fatalf("epoch %d: new layout has %d rows, old %d", e, got, want)
		}
	}
	if got := countAt(lay.Stores, 1); got != nRows {
		t.Fatalf("pre-delete epoch count = %d, want %d", got, nRows)
	}
	if got := countAt(lay.Stores, 2); got != nRows-60 {
		t.Fatalf("post-delete epoch count = %d, want %d", got, nRows-60)
	}

	// Every row sits in its hash home on the new ring, and each buddy store
	// mirrors exactly the segment the convention assigns it.
	for p, st := range lay.Stores {
		st.Scan(storage.Visibility{Epoch: 2}, vhash.Range{Lo: 0, Hi: vhash.RingSize}, func(r types.Row) bool {
			if home := vhash.SegmentOf(vhash.HashRow(r, tbl.SegIdx), 4); home != p {
				t.Fatalf("row %v in position %d, hash home %d", r, p, home)
			}
			return true
		})
	}
	for p := range lay.Buddies[0] {
		seg := ((p-1)%4 + 4) % 4
		got := lay.Buddies[0][p].RowCount(storage.Visibility{Epoch: 2})
		want := lay.Stores[seg].RowCount(storage.Visibility{Epoch: 2})
		if got != want {
			t.Fatalf("buddy at position %d holds %d rows, segment %d has %d", p, got, seg, want)
		}
	}

	// The old layout is untouched: in-flight readers of the old *Table stay
	// correct.
	if got := countAt(tbl.Stores, 2); got != nRows-60 {
		t.Fatalf("old layout disturbed: %d rows", got)
	}
}

// TestMoveTableShrink drains a node and checks no rows are lost and nothing
// lands on the departed node.
func TestMoveTableShrink(t *testing.T) {
	const nRows = 200
	tbl := buildTable(t, 4, 1, true, nRows, 1)
	newRing := RingWithout(tbl.Ring, 2)
	lay, res, err := MoveTable(tbl, newRing, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != nRows {
		t.Fatalf("res.Rows = %d", res.Rows)
	}
	if got := countAt(lay.Stores, 1); got != nRows {
		t.Fatalf("shrink lost rows: %d, want %d", got, nRows)
	}
	for _, id := range lay.Ring {
		if id == 2 {
			t.Fatal("departed node still in the layout ring")
		}
	}
}

// TestMoveTableUnsegmented: a replicated table lands fully on every member of
// the new ring.
func TestMoveTableUnsegmented(t *testing.T) {
	tbl := buildTable(t, 2, 0, false, 50, 1)
	lay, res, err := MoveTable(tbl, []int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 50 {
		t.Fatalf("res.Rows = %d", res.Rows)
	}
	if res.RowsMoved != 50 {
		t.Fatalf("res.RowsMoved = %d, want 50 (one full new replica)", res.RowsMoved)
	}
	for p, st := range lay.Stores {
		if got := st.RowCount(storage.Visibility{Epoch: 1}); got != 50 {
			t.Fatalf("replica %d has %d rows, want 50", p, got)
		}
	}
	if lay.Buddies != nil {
		t.Fatal("unsegmented layout must not carry buddies")
	}
}

// TestSourceForFallback: a dead primary's segment exports from a buddy; with
// every replica dead the move reports k-safety exhaustion.
func TestSourceForFallback(t *testing.T) {
	tbl := buildTable(t, 3, 1, true, 90, 1)
	deadPrimary := func(id int) bool { return id != tbl.Ring[0] }
	src, err := SourceFor(tbl, 0, deadPrimary)
	if err != nil {
		t.Fatal(err)
	}
	if src != tbl.Buddies[0][1] {
		t.Fatal("SourceFor did not pick segment 0's buddy on position 1")
	}
	// Segment 0 lives on position 0 (primary) and position 1 (buddy): with
	// both nodes dead the segment is unrecoverable.
	bothDead := func(id int) bool { return id != tbl.Ring[0] && id != tbl.Ring[1] }
	if _, err := SourceFor(tbl, 0, bothDead); err == nil {
		t.Fatal("SourceFor with no live replica must fail")
	}
	if _, _, err := MoveTable(tbl, []int{0, 1, 2, 3}, bothDead); err == nil || !strings.Contains(err.Error(), "k-safety exhausted") {
		t.Fatalf("MoveTable with a lost segment: %v", err)
	}
}

func TestMoveTableValidation(t *testing.T) {
	tbl := buildTable(t, 2, 1, true, 10, 1)
	cases := []struct {
		ring []int
		why  string
	}{
		{nil, "empty ring"},
		{[]int{0, 0}, "duplicate node"},
		{[]int{-1, 0}, "negative node id"},
		{[]int{0}, "k-safety 1 needs > 1 node"},
	}
	for _, c := range cases {
		if _, _, err := MoveTable(tbl, c.ring, nil); err == nil {
			t.Errorf("MoveTable(%v) should fail: %s", c.ring, c.why)
		}
	}
}

// TestMoveTableDeterministic: the same inputs produce byte-identical layouts
// — the property WAL replay of a rebalance record relies on.
func TestMoveTableDeterministic(t *testing.T) {
	tbl := buildTable(t, 3, 1, true, 150, 1)
	ring := []int{0, 1, 2, 3}
	a, _, err := MoveTable(tbl, ring, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := MoveTable(tbl, ring, nil)
	if err != nil {
		t.Fatal(err)
	}
	for p := range a.Stores {
		av, bv := a.Stores[p].ExportVersions(), b.Stores[p].ExportVersions()
		if fmt.Sprint(av) != fmt.Sprint(bv) {
			t.Fatalf("position %d differs between identical moves", p)
		}
	}
}
