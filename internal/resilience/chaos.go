package resilience

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"vsfabric/internal/client"
	"vsfabric/internal/vertica"
)

// NodeDowner is the part of vertica.Node the chaos layer needs to crash and
// revive nodes; any cluster substrate exposing it can be chaos-tested.
type NodeDowner interface {
	SetDown(bool)
}

// ChaosConnector wraps a client.Connector and injects scripted database-side
// faults: refused connections, connections dropped before or after a
// statement, COPY streams severed after N bytes, added latency, and
// node-down windows. It is the database-side twin of spark.FailureInjector —
// together they cover both halves of the §3.2.1 fault model: the injector
// kills Spark tasks, the chaos connector kills what they talk to.
//
// Rules are deterministic: each fires a fixed number of times, matched by
// node address and (for statement rules) a SQL substring. A global operation
// counter (one tick per Connect/Execute/CopyFrom) drives node-down windows.
type ChaosConnector struct {
	inner client.Connector
	sleep func(time.Duration)

	mu    sync.Mutex
	rules []*chaosRule
	ops   uint64
	log   []string
}

type chaosKind int

const (
	chaosRefuseConnect chaosKind = iota
	chaosDropBefore
	chaosDropAfter
	chaosSeverCopy
	chaosLatency
	chaosKillNode
	chaosDownWindow
	chaosRecoverAt
)

type chaosRule struct {
	kind      chaosKind
	addr      string // "" = any node
	match     string // SQL substring, "" = any statement
	bytes     int64  // sever-copy threshold
	delay     time.Duration
	node      NodeDowner
	startOp   uint64 // down-window bounds in operation counts
	endOp     uint64
	downed    bool
	revived   bool
	remaining int
}

// NewChaos wraps inner with an empty fault script.
func NewChaos(inner client.Connector) *ChaosConnector {
	return &ChaosConnector{inner: inner, sleep: time.Sleep}
}

// SetSleep replaces the latency-injection sleeper (tests pass a recorder so
// no real time passes).
func (c *ChaosConnector) SetSleep(f func(time.Duration)) { c.sleep = f }

// RefuseConnect makes the next `times` connection attempts to addr ("" = any
// node) fail with ErrConnRefused.
func (c *ChaosConnector) RefuseConnect(addr string, times int) *ChaosConnector {
	return c.add(&chaosRule{kind: chaosRefuseConnect, addr: addr, remaining: times})
}

// DropOnStatement severs the connection when a statement containing match
// arrives: the statement never reaches the node, the session dies (aborting
// any open transaction), and the caller sees ErrConnDropped.
func (c *ChaosConnector) DropOnStatement(addr, match string, times int) *ChaosConnector {
	return c.add(&chaosRule{kind: chaosDropBefore, addr: addr, match: match, remaining: times})
}

// DropAfterStatement lets the matching statement execute, then severs the
// connection before the result reaches the client — the ambiguous-outcome
// drop. Only protocols whose statements are idempotent or guarded (like
// S2V's conditional updates) survive this one.
func (c *ChaosConnector) DropAfterStatement(addr, match string, times int) *ChaosConnector {
	return c.add(&chaosRule{kind: chaosDropAfter, addr: addr, match: match, remaining: times})
}

// SeverCopyAfter cuts the connection after a COPY stream has transferred n
// bytes; the load fails and the session's transaction aborts.
func (c *ChaosConnector) SeverCopyAfter(addr string, n int64, times int) *ChaosConnector {
	return c.add(&chaosRule{kind: chaosSeverCopy, addr: addr, bytes: n, remaining: times})
}

// AddLatency delays the next `times` operations against addr by d.
func (c *ChaosConnector) AddLatency(addr string, d time.Duration, times int) *ChaosConnector {
	return c.add(&chaosRule{kind: chaosLatency, addr: addr, delay: d, remaining: times})
}

// KillNodeOnStatement marks node down the moment a statement containing
// match arrives at addr — the node dies mid-scan, with the session already
// established. The statement then fails with vertica.ErrNodeDown.
func (c *ChaosConnector) KillNodeOnStatement(addr, match string, node NodeDowner, times int) *ChaosConnector {
	return c.add(&chaosRule{kind: chaosKillNode, addr: addr, match: match, node: node, remaining: times})
}

// NodeDownWindow crashes node when the global operation counter reaches
// startOp and revives it at endOp — a bounded outage any retry layer should
// ride out. Reviving goes through the node's full heal path (on a real
// cluster node, synchronous recovery from its buddies), so the post-window
// node serves reads only once caught up.
func (c *ChaosConnector) NodeDownWindow(node NodeDowner, startOp, endOp uint64) *ChaosConnector {
	return c.add(&chaosRule{kind: chaosDownWindow, node: node, startOp: startOp, endOp: endOp, remaining: 1})
}

// RecoverNodeAtOp heals node when the global operation counter reaches op —
// the deterministic companion to KillNodeOnStatement: a test that kills a
// node mid-protocol schedules its exact revival point in operation counts,
// with no sleeps and no racing timers.
func (c *ChaosConnector) RecoverNodeAtOp(node NodeDowner, op uint64) *ChaosConnector {
	return c.add(&chaosRule{kind: chaosRecoverAt, node: node, startOp: op, remaining: 1})
}

func (c *ChaosConnector) add(r *chaosRule) *ChaosConnector {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules = append(c.rules, r)
	return c
}

// Log returns the injected events, for test assertions.
func (c *ChaosConnector) Log() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.log))
	copy(out, c.log)
	return out
}

// Ops returns the global operation count so far.
func (c *ChaosConnector) Ops() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// chaosAction is the faults one operation must suffer. down/heal carry node
// state flips decided under the rule mutex but applied outside it: healing a
// real cluster node runs synchronous recovery, which acquires table locks —
// inside the mutex that would deadlock against any concurrent operation
// blocked on its own tick.
type chaosAction struct {
	refuse     bool
	dropBefore bool
	dropAfter  bool
	severAt    int64 // -1 = no severing
	delay      time.Duration
	kill       NodeDowner
	down       []NodeDowner
	heal       []NodeDowner
}

// apply performs the node state flips the tick decided, in down-then-heal
// order. Must be called without holding c.mu.
func (act *chaosAction) apply() {
	for _, n := range act.down {
		n.SetDown(true)
	}
	for _, n := range act.heal {
		n.SetDown(false)
	}
}

// tick advances the operation counter, schedules down-windows and heals, and
// collects the matching rule actions for one operation. The caller applies
// the returned action's node flips after the mutex is released.
func (c *ChaosConnector) tick(kind chaosKind, addr, sql string) chaosAction {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops++
	act := chaosAction{severAt: -1}
	for _, r := range c.rules {
		if r.kind == chaosDownWindow {
			if !r.downed && c.ops >= r.startOp {
				r.downed = true
				act.down = append(act.down, r.node)
				c.log = append(c.log, fmt.Sprintf("node-down@op%d", c.ops))
			}
			if r.downed && !r.revived && c.ops >= r.endOp {
				r.revived = true
				act.heal = append(act.heal, r.node)
				c.log = append(c.log, fmt.Sprintf("node-up@op%d", c.ops))
			}
			continue
		}
		if r.kind == chaosRecoverAt {
			if !r.revived && c.ops >= r.startOp {
				r.revived = true
				act.heal = append(act.heal, r.node)
				c.log = append(c.log, fmt.Sprintf("node-heal@op%d", c.ops))
			}
			continue
		}
		if r.remaining <= 0 || (r.addr != "" && r.addr != addr) {
			continue
		}
		switch r.kind {
		case chaosLatency:
			r.remaining--
			act.delay += r.delay
			c.log = append(c.log, fmt.Sprintf("latency %v %s@op%d", r.delay, addr, c.ops))
		case chaosRefuseConnect:
			if kind != chaosRefuseConnect {
				continue
			}
			r.remaining--
			act.refuse = true
			c.log = append(c.log, fmt.Sprintf("refuse-connect %s@op%d", addr, c.ops))
		case chaosDropBefore, chaosDropAfter, chaosKillNode:
			// Statement rules match anything carrying SQL: plain statements
			// and COPY streams alike (a node can die under either).
			if (kind != chaosDropBefore && kind != chaosSeverCopy) || !strings.Contains(sql, r.match) {
				continue
			}
			r.remaining--
			switch r.kind {
			case chaosDropBefore:
				act.dropBefore = true
				c.log = append(c.log, fmt.Sprintf("drop-before %q %s@op%d", r.match, addr, c.ops))
			case chaosDropAfter:
				act.dropAfter = true
				c.log = append(c.log, fmt.Sprintf("drop-after %q %s@op%d", r.match, addr, c.ops))
			case chaosKillNode:
				act.kill = r.node
				c.log = append(c.log, fmt.Sprintf("kill-node %q %s@op%d", r.match, addr, c.ops))
			}
		case chaosSeverCopy:
			if kind != chaosSeverCopy {
				continue
			}
			r.remaining--
			act.severAt = r.bytes
			c.log = append(c.log, fmt.Sprintf("sever-copy after %dB %s@op%d", r.bytes, addr, c.ops))
		}
	}
	return act
}

// Connect implements client.Connector.
func (c *ChaosConnector) Connect(ctx context.Context, addr string) (client.Conn, error) {
	act := c.tick(chaosRefuseConnect, addr, "")
	act.apply()
	if act.delay > 0 {
		c.sleep(act.delay)
	}
	if act.refuse {
		return nil, fmt.Errorf("%w: node %s", ErrConnRefused, addr)
	}
	conn, err := c.inner.Connect(ctx, addr)
	if err != nil {
		return nil, err
	}
	return &chaosConn{parent: c, addr: addr, inner: conn}, nil
}

// chaosConn is one session subject to the fault script. Once a fault severs
// it, every further operation fails — like a real dead socket.
type chaosConn struct {
	parent *ChaosConnector
	addr   string
	inner  client.Conn
	broken bool
}

// sever kills the session: the server side cleans up (aborting any open
// transaction, as a real server does when the socket dies) and the client
// side becomes permanently unusable.
func (cc *chaosConn) sever() {
	cc.broken = true
	cc.inner.Close()
}

func (cc *chaosConn) dead() error {
	return Transient(fmt.Errorf("%w: session to %s already severed", ErrConnDropped, cc.addr))
}

// Execute implements client.Conn.
func (cc *chaosConn) Execute(ctx context.Context, sql string) (*vertica.Result, error) {
	if cc.broken {
		return nil, cc.dead()
	}
	act := cc.parent.tick(chaosDropBefore, cc.addr, sql)
	act.apply()
	if act.delay > 0 {
		cc.parent.sleep(act.delay)
	}
	if act.kill != nil {
		act.kill.SetDown(true)
	}
	if act.dropBefore {
		cc.sever()
		return nil, Transient(fmt.Errorf("%w: statement never reached %s", ErrConnDropped, cc.addr))
	}
	res, err := cc.inner.Execute(ctx, sql)
	if act.dropAfter {
		cc.sever()
		return nil, Transient(fmt.Errorf("%w: connection to %s severed after statement ran", ErrConnDropped, cc.addr))
	}
	return res, err
}

// CopyFrom implements client.Conn.
func (cc *chaosConn) CopyFrom(ctx context.Context, sql string, r io.Reader) (*vertica.Result, error) {
	if cc.broken {
		return nil, cc.dead()
	}
	act := cc.parent.tick(chaosSeverCopy, cc.addr, sql)
	act.apply()
	if act.delay > 0 {
		cc.parent.sleep(act.delay)
	}
	if act.kill != nil {
		act.kill.SetDown(true)
	}
	if act.dropBefore {
		cc.sever()
		return nil, Transient(fmt.Errorf("%w: COPY never reached %s", ErrConnDropped, cc.addr))
	}
	if act.dropAfter {
		_, _ = cc.inner.CopyFrom(ctx, sql, r)
		cc.sever()
		return nil, Transient(fmt.Errorf("%w: connection to %s severed after COPY ran", ErrConnDropped, cc.addr))
	}
	if act.severAt >= 0 {
		sr := &severedReader{r: r, left: act.severAt}
		_, err := cc.inner.CopyFrom(ctx, sql, sr)
		cc.sever()
		if err == nil {
			// The whole stream fit under the threshold; the sever still kills
			// the session before the client can see the result.
			return nil, Transient(fmt.Errorf("%w: connection to %s severed after COPY", ErrConnDropped, cc.addr))
		}
		return nil, Transient(fmt.Errorf("%w: COPY stream to %s cut after %d bytes", ErrConnDropped, cc.addr, act.severAt))
	}
	return cc.inner.CopyFrom(ctx, sql, r)
}

// Close implements client.Conn.
func (cc *chaosConn) Close() {
	if !cc.broken {
		cc.inner.Close()
	}
}

// severedReader yields at most `left` bytes, then reports the cut.
type severedReader struct {
	r    io.Reader
	left int64
}

func (s *severedReader) Read(p []byte) (int, error) {
	if s.left <= 0 {
		return 0, fmt.Errorf("%w: COPY stream cut", ErrConnDropped)
	}
	if int64(len(p)) > s.left {
		p = p[:s.left]
	}
	n, err := s.r.Read(p)
	s.left -= int64(n)
	return n, err
}
