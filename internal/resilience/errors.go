// Package resilience is the connection fault layer between the connector and
// the database: an error taxonomy that separates transient faults from
// permanent ones, a ChaosConnector that injects scripted database-side
// failures (the twin of spark.FailureInjector for the other half of the
// paper's §3.2.1 fault model), and a ResilientConnector that recovers from
// transient faults with multi-host failover, bounded exponential backoff with
// jitter, per-node circuit breakers, and per-operation deadlines.
package resilience

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"

	"vsfabric/internal/pool"
	"vsfabric/internal/vertica"
)

// Classification sentinels. Errors raised or wrapped by this package are
// errors.Is-able against exactly one of them; Classify maps foreign errors
// onto the taxonomy.
var (
	// ErrTransient marks faults that may clear on retry: a refused or dropped
	// connection, a node-down window (a buddy node can serve, or the node
	// recovers), a full session table, a missed deadline.
	ErrTransient = errors.New("resilience: transient fault")

	// ErrPermanent marks faults no amount of retrying fixes: SQL errors,
	// schema mismatches, protocol violations.
	ErrPermanent = errors.New("resilience: permanent fault")
)

// Faults injected by ChaosConnector (and raised by real networks).
var (
	// ErrConnRefused reports a connection attempt the endpoint rejected.
	ErrConnRefused = errors.New("resilience: connection refused")

	// ErrConnDropped reports a connection severed mid-use; statements in
	// flight have unknown outcome, statements not yet sent never ran.
	ErrConnDropped = errors.New("resilience: connection dropped")

	// ErrDeadline reports an operation that exceeded its deadline.
	ErrDeadline = fmt.Errorf("resilience: operation deadline exceeded: %w", os.ErrDeadlineExceeded)
)

// transientErr wraps an error so errors.Is(err, ErrTransient) holds while the
// original chain stays visible.
type transientErr struct{ err error }

func (e *transientErr) Error() string { return e.err.Error() }
func (e *transientErr) Unwrap() error { return e.err }
func (e *transientErr) Is(target error) bool {
	return target == ErrTransient
}

// permanentErr is the same for ErrPermanent.
type permanentErr struct{ err error }

func (e *permanentErr) Error() string { return e.err.Error() }
func (e *permanentErr) Unwrap() error { return e.err }
func (e *permanentErr) Is(target error) bool {
	return target == ErrPermanent
}

// Transient marks err as retryable. Marking nil returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// Permanent marks err as not retryable. Marking nil returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentErr{err: err}
}

// IsTransient reports whether err is worth retrying (possibly on another
// node). Explicit marks win; otherwise well-known transient conditions from
// the database, the chaos layer, and the OS network stack are recognised.
// Unrecognised errors default to permanent: retrying a SQL error re-runs a
// statement that will fail identically.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrPermanent) {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	switch {
	case errors.Is(err, vertica.ErrNodeDown),
		// A removed node never comes back, but the condition is transient for
		// failover: its segments were rebalanced onto the survivors, so the
		// same statement succeeds against any other address.
		errors.Is(err, vertica.ErrNodeRemoved),
		errors.Is(err, vertica.ErrSessionLimit),
		// Admission-control refusals clear as running statements release
		// their pool slots: back off and retry (possibly on another node).
		errors.Is(err, pool.ErrQueueTimeout),
		errors.Is(err, pool.ErrRejected),
		errors.Is(err, ErrConnRefused),
		errors.Is(err, ErrConnDropped),
		errors.Is(err, os.ErrDeadlineExceeded),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.ErrClosedPipe),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE):
		return true
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return true
	}
	// A remote read that ended at EOF means the peer hung up mid-response.
	if errors.Is(err, io.EOF) {
		return true
	}
	return false
}

// Classify returns the taxonomy sentinel for err: ErrTransient, ErrPermanent,
// or nil for nil.
func Classify(err error) error {
	if err == nil {
		return nil
	}
	if IsTransient(err) {
		return ErrTransient
	}
	return ErrPermanent
}
