package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"vsfabric/internal/client"
	"vsfabric/internal/vertica"
)

// bg saves typing in tests that don't exercise cancellation.
var bg = context.Background()

// ---------- taxonomy ----------

func TestClassification(t *testing.T) {
	cases := []struct {
		err       error
		transient bool
	}{
		{fmt.Errorf("wrap: %w", vertica.ErrNodeDown), true},
		{fmt.Errorf("wrap: %w", vertica.ErrSessionLimit), true},
		{fmt.Errorf("wrap: %w", ErrConnRefused), true},
		{fmt.Errorf("wrap: %w", ErrConnDropped), true},
		{ErrDeadline, true},
		{io.ErrUnexpectedEOF, true},
		{io.ErrClosedPipe, true},
		{Transient(errors.New("custom glitch")), true},
		{errors.New("vsql: syntax error"), false},
		{Permanent(fmt.Errorf("forced: %w", ErrConnRefused)), false},
		{nil, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.transient {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.transient)
		}
	}
	if !errors.Is(Transient(errors.New("x")), ErrTransient) {
		t.Error("Transient mark must satisfy errors.Is(_, ErrTransient)")
	}
	if !errors.Is(Permanent(errors.New("x")), ErrPermanent) {
		t.Error("Permanent mark must satisfy errors.Is(_, ErrPermanent)")
	}
	if Classify(errors.New("sql error")) != ErrPermanent || Classify(ErrDeadline) != ErrTransient {
		t.Error("Classify mapped wrong sentinels")
	}
	// The mark must not hide the original chain.
	base := errors.New("root")
	if !errors.Is(Transient(fmt.Errorf("w: %w", base)), base) {
		t.Error("Transient mark must preserve the wrapped chain")
	}
}

// ---------- stub connector ----------

// stubConn is a scriptable client.Conn.
type stubConn struct {
	host    string
	execute func(sql string) (*vertica.Result, error)
	closed  bool
}

func (s *stubConn) Execute(_ context.Context, sql string) (*vertica.Result, error) {
	if s.execute != nil {
		return s.execute(sql)
	}
	return &vertica.Result{}, nil
}
func (s *stubConn) CopyFrom(context.Context, string, io.Reader) (*vertica.Result, error) {
	return &vertica.Result{}, nil
}
func (s *stubConn) Close() { s.closed = true }

// stubConnector scripts per-host connect outcomes.
type stubConnector struct {
	mu sync.Mutex
	// fail[host] is how many upcoming connects to host fail transiently.
	fail map[string]int
	// permanentErr, when set, is returned for every connect.
	permanentErr error
	calls        []string
	execute      func(host, sql string) (*vertica.Result, error)
}

func newStubConnector() *stubConnector { return &stubConnector{fail: map[string]int{}} }

func (s *stubConnector) Connect(_ context.Context, addr string) (client.Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls = append(s.calls, addr)
	if s.permanentErr != nil {
		return nil, s.permanentErr
	}
	if s.fail[addr] > 0 {
		s.fail[addr]--
		return nil, fmt.Errorf("%w: %s", ErrConnRefused, addr)
	}
	conn := &stubConn{host: addr}
	if s.execute != nil {
		host := addr
		conn.execute = func(sql string) (*vertica.Result, error) { return s.execute(host, sql) }
	}
	return conn, nil
}

// fastPolicy keeps test retries snappy and deterministic.
func fastPolicy() Policy {
	return Policy{
		MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond,
		JitterFrac: 0.2, BreakerThreshold: 2, BreakerCooldown: time.Minute, Seed: 7,
	}
}

// fakeSleeper records requested delays without sleeping.
type fakeSleeper struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (f *fakeSleeper) sleep(d time.Duration) {
	f.mu.Lock()
	f.delays = append(f.delays, d)
	f.mu.Unlock()
}

// ---------- ResilientConnector ----------

func TestConnectRetriesWithBackoff(t *testing.T) {
	stub := newStubConnector()
	stub.fail["a"] = 2
	fs := &fakeSleeper{}
	r := NewResilient(stub, nil, fastPolicy())
	r.SetSleep(fs.sleep)
	conn, err := r.Connect(bg, "a")
	if err != nil {
		t.Fatalf("connect should succeed on attempt 3: %v", err)
	}
	conn.Close()
	if len(stub.calls) != 3 {
		t.Fatalf("connect calls = %v, want 3", stub.calls)
	}
	if len(fs.delays) != 2 {
		t.Fatalf("backoff sleeps = %v, want 2", fs.delays)
	}
	// Exponential growth within jitter bounds: attempt 0 ∈ [0.8ms, 1.2ms],
	// attempt 1 ∈ [1.6ms, 2.4ms].
	lo := []time.Duration{800 * time.Microsecond, 1600 * time.Microsecond}
	hi := []time.Duration{1200 * time.Microsecond, 2400 * time.Microsecond}
	for i, d := range fs.delays {
		if d < lo[i] || d > hi[i] {
			t.Errorf("backoff %d = %v, want within [%v, %v]", i, d, lo[i], hi[i])
		}
	}
}

func TestConnectFailsOverAcrossHosts(t *testing.T) {
	stub := newStubConnector()
	stub.fail["a"] = 100 // a stays dark
	r := NewResilient(stub, []string{"a", "b", "c"}, fastPolicy())
	r.SetSleep(func(time.Duration) {})
	conn, err := r.Connect(bg, "a")
	if err != nil {
		t.Fatalf("failover connect: %v", err)
	}
	sc := conn.(*stubConn)
	if sc.host != "b" {
		t.Errorf("failed over to %q, want next-ring host b (buddy location)", sc.host)
	}
}

func TestPermanentErrorNoRetry(t *testing.T) {
	stub := newStubConnector()
	stub.permanentErr = errors.New("bad credentials")
	r := NewResilient(stub, nil, fastPolicy())
	r.SetSleep(func(time.Duration) {})
	if _, err := r.Connect(bg, "a"); !strings.Contains(err.Error(), "bad credentials") {
		t.Fatalf("err = %v", err)
	}
	if len(stub.calls) != 1 {
		t.Fatalf("permanent errors must not retry, got %d attempts", len(stub.calls))
	}
}

func TestBreakerOpensAndCoolsDown(t *testing.T) {
	stub := newStubConnector()
	stub.fail["a"] = 100
	pol := fastPolicy()
	r := NewResilient(stub, []string{"a", "b"}, pol)
	r.SetSleep(func(time.Duration) {})
	base := time.Unix(1000, 0)
	now := base
	r.SetClock(func() time.Time { return now })

	// Each Connect call tries a once then fails over to b, so two calls
	// accumulate the two consecutive failures that trip a's breaker.
	for i := 0; i < 2; i++ {
		conn, err := r.Connect(bg, "a")
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}
	if !r.BreakerOpen("a") {
		t.Fatal("a's breaker should be open after consecutive failures")
	}
	stub.mu.Lock()
	stub.calls = nil
	stub.mu.Unlock()
	conn, err := r.Connect(bg, "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := conn.(*stubConn).host; got != "b" {
		t.Errorf("open breaker should divert to b, got %q", got)
	}
	if len(stub.calls) != 1 || stub.calls[0] != "b" {
		t.Errorf("a must not be dialed while its breaker is open: calls=%v", stub.calls)
	}

	// After the cooldown a gets a trial again.
	now = base.Add(pol.BreakerCooldown + time.Second)
	stub.mu.Lock()
	stub.fail["a"] = 0
	stub.calls = nil
	stub.mu.Unlock()
	conn2, err := r.Connect(bg, "a")
	if err != nil {
		t.Fatal(err)
	}
	if got := conn2.(*stubConn).host; got != "a" {
		t.Errorf("post-cooldown trial should reach a, got %q", got)
	}
	if r.BreakerOpen("a") {
		t.Error("breaker should re-close after a successful trial")
	}
}

func TestExecuteFailsOverMidScan(t *testing.T) {
	// A node dies after the session is established: the first Execute fails
	// with node-down, and the retry must land on the other host.
	stub := newStubConnector()
	served := make(chan string, 8)
	stub.execute = func(host, sql string) (*vertica.Result, error) {
		if host == "a" {
			return nil, fmt.Errorf("%w: node 0 went down", vertica.ErrNodeDown)
		}
		served <- host
		return &vertica.Result{}, nil
	}
	r := NewResilient(stub, []string{"a", "b"}, fastPolicy())
	r.SetSleep(func(time.Duration) {})
	if _, err := r.Execute(bg, "a", "SELECT 1"); err != nil {
		t.Fatalf("Execute should fail over: %v", err)
	}
	if got := <-served; got != "b" {
		t.Errorf("query served by %q, want b", got)
	}
}

func TestDeadlineConnTimesOut(t *testing.T) {
	release := make(chan struct{})
	stub := newStubConnector()
	stub.execute = func(host, sql string) (*vertica.Result, error) {
		<-release // a wedged server
		return &vertica.Result{}, nil
	}
	pol := fastPolicy()
	pol.OpTimeout = 20 * time.Millisecond
	r := NewResilient(stub, nil, pol)
	r.SetSleep(func(time.Duration) {})
	conn, err := r.Connect(bg, "a")
	if err != nil {
		t.Fatal(err)
	}
	_, err = conn.Execute(bg, "SELECT 1")
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if !IsTransient(err) {
		t.Error("deadline errors must classify transient")
	}
	// A timed-out connection is abandoned, not reused.
	if _, err := conn.Execute(bg, "SELECT 1"); !errors.Is(err, ErrConnDropped) {
		t.Errorf("post-timeout use: err = %v, want ErrConnDropped", err)
	}
	close(release) // let the hung op drain and the deferred close run
}

// ---------- ChaosConnector against the real engine ----------

func testCluster(t *testing.T, nodes int) *vertica.Cluster {
	t.Helper()
	c, err := vertica.NewCluster(vertica.Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChaosRefuseConnect(t *testing.T) {
	cl := testCluster(t, 2)
	chaos := NewChaos(client.InProc(cl))
	addr := cl.Node(0).Addr
	chaos.RefuseConnect(addr, 1)
	if _, err := chaos.Connect(bg, addr); !errors.Is(err, ErrConnRefused) || !IsTransient(err) {
		t.Fatalf("first connect: err = %v, want transient ErrConnRefused", err)
	}
	conn, err := chaos.Connect(bg, addr)
	if err != nil {
		t.Fatalf("second connect should pass: %v", err)
	}
	conn.Close()
	if len(chaos.Log()) != 1 {
		t.Errorf("chaos log = %v", chaos.Log())
	}
}

func TestChaosDropOnStatementAbortsTxn(t *testing.T) {
	cl := testCluster(t, 1)
	boot, err := cl.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	boot.MustExecute("CREATE TABLE t (id INTEGER)")
	boot.Close()

	chaos := NewChaos(client.InProc(cl))
	addr := cl.Node(0).Addr
	chaos.DropOnStatement(addr, "INSERT", 1)
	conn, err := chaos.Connect(bg, addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Execute(bg, "BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Execute(bg, "INSERT INTO t VALUES (1)"); !errors.Is(err, ErrConnDropped) {
		t.Fatalf("err = %v, want ErrConnDropped", err)
	}
	// The session is dead for good, like a real socket.
	if _, err := conn.Execute(bg, "SELECT COUNT(*) FROM t"); !errors.Is(err, ErrConnDropped) {
		t.Fatalf("post-drop use: err = %v, want ErrConnDropped", err)
	}
	conn.Close()
	// The sever released the session and aborted the open transaction: a
	// fresh session can take a table lock immediately and sees no rows.
	if n := cl.OpenSessions(0); n != 0 {
		t.Errorf("open sessions after drop = %d, want 0", n)
	}
	s, err := cl.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	v, _ := s.MustExecute("SELECT COUNT(*) FROM t").Value()
	if v.I != 0 {
		t.Errorf("dropped statement persisted %d rows", v.I)
	}
}

func TestChaosSeverCopy(t *testing.T) {
	cl := testCluster(t, 2)
	boot, err := cl.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	boot.MustExecute("CREATE TABLE t (id INTEGER, name VARCHAR)")
	boot.Close()

	chaos := NewChaos(client.InProc(cl))
	addr := cl.Node(0).Addr
	chaos.SeverCopyAfter(addr, 8, 1)
	conn, err := chaos.Connect(bg, addr)
	if err != nil {
		t.Fatal(err)
	}
	data := "1,alice\n2,bob\n3,carol\n"
	_, err = conn.CopyFrom(bg, "COPY t FROM STDIN FORMAT CSV", strings.NewReader(data))
	if !errors.Is(err, ErrConnDropped) {
		t.Fatalf("err = %v, want ErrConnDropped", err)
	}
	conn.Close()
	s, err := cl.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	v, _ := s.MustExecute("SELECT COUNT(*) FROM t").Value()
	if v.I != 0 {
		t.Errorf("severed COPY persisted %d rows", v.I)
	}
}

func TestChaosLatencyAndLog(t *testing.T) {
	cl := testCluster(t, 1)
	chaos := NewChaos(client.InProc(cl))
	fs := &fakeSleeper{}
	chaos.SetSleep(fs.sleep)
	addr := cl.Node(0).Addr
	chaos.AddLatency(addr, 5*time.Millisecond, 2)
	conn, err := chaos.Connect(bg, addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Execute(bg, "SELECT 1"); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if len(fs.delays) != 2 || fs.delays[0] != 5*time.Millisecond {
		t.Errorf("injected delays = %v, want two of 5ms", fs.delays)
	}
}

func TestChaosKillNodeOnStatement(t *testing.T) {
	cl := testCluster(t, 2)
	chaos := NewChaos(client.InProc(cl))
	addr := cl.Node(1).Addr
	chaos.KillNodeOnStatement(addr, "SELECT", cl.Node(1), 1)
	conn, err := chaos.Connect(bg, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Execute(bg, "SELECT 1"); !errors.Is(err, vertica.ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown (node died mid-session)", err)
	}
	if !cl.Node(1).Down() {
		t.Error("victim node should be down")
	}
}

// TestChaosRecoverNodeAtOp pins the heal to an exact operation count: the
// node stays down through every earlier op and is revived — through its full
// recovery path — by the tick of precisely the scheduled op. No sleeps.
func TestChaosRecoverNodeAtOp(t *testing.T) {
	cl := testCluster(t, 2)
	chaos := NewChaos(client.InProc(cl))
	victim := cl.Node(1)
	victim.SetDown(true)
	chaos.RecoverNodeAtOp(victim, 4)
	addr := cl.Node(0).Addr
	conn, err := chaos.Connect(bg, addr) // op 1
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for op := 2; op <= 3; op++ {
		if _, err := conn.Execute(bg, "SELECT 1"); err != nil {
			t.Fatal(err)
		}
		if !victim.Down() {
			t.Fatalf("victim healed at op %d, scheduled for op 4", op)
		}
	}
	if _, err := conn.Execute(bg, "SELECT 1"); err != nil { // op 4: heal
		t.Fatal(err)
	}
	if victim.Down() {
		t.Fatal("victim still down after its scheduled heal op")
	}
	if victim.State() != vertica.NodeUp {
		t.Fatalf("victim state = %v, want UP (recovery ran synchronously)", victim.State())
	}
	found := false
	for _, e := range chaos.Log() {
		if e == "node-heal@op4" {
			found = true
		}
	}
	if !found {
		t.Fatalf("chaos log = %v, want node-heal@op4", chaos.Log())
	}
}

func TestChaosNodeDownWindow(t *testing.T) {
	cl := testCluster(t, 2)
	chaos := NewChaos(client.InProc(cl))
	victim := cl.Node(1)
	chaos.NodeDownWindow(victim, 3, 5)
	addr := cl.Node(0).Addr
	conn, err := chaos.Connect(bg, addr) // op 1
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Execute(bg, "SELECT 1"); err != nil { // op 2
		t.Fatal(err)
	}
	if victim.Down() {
		t.Fatal("window must not open before startOp")
	}
	if _, err := conn.Execute(bg, "SELECT 1"); err != nil { // op 3: window opens
		t.Fatal(err)
	}
	if !victim.Down() {
		t.Fatal("window should be open at op 3")
	}
	if _, err := conn.Execute(bg, "SELECT 1"); err != nil { // op 4
		t.Fatal(err)
	}
	if _, err := conn.Execute(bg, "SELECT 1"); err != nil { // op 5: window closes
		t.Fatal(err)
	}
	if victim.Down() {
		t.Error("window should have closed at op 5")
	}
}
