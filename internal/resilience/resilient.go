package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"vsfabric/internal/client"
	"vsfabric/internal/obs"
	"vsfabric/internal/sim"
	"vsfabric/internal/vertica"
)

// Policy bounds how hard the resilient layer tries before giving up.
// The zero value means "use the defaults" everywhere.
type Policy struct {
	// MaxAttempts is the total connect (or connect+execute) attempts per
	// operation, counting the first. Default 4.
	MaxAttempts int
	// BaseBackoff is the delay before the second attempt; it doubles per
	// attempt up to MaxBackoff. Default 2ms (the substrate is in-process;
	// real deployments raise both).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Default 100ms.
	MaxBackoff time.Duration
	// JitterFrac spreads each backoff uniformly over ±JitterFrac of itself so
	// synchronized retries de-correlate. Default 0.2.
	JitterFrac float64
	// BreakerThreshold is how many consecutive connect failures open a node's
	// circuit breaker. Default 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker diverts traffic away from a
	// node before a trial connection is allowed again. Default 250ms.
	BreakerCooldown time.Duration
	// OpTimeout is the per-operation deadline applied to every Execute and
	// CopyFrom on connections this layer hands out; 0 disables it. It is
	// enforced as a context deadline layered under the caller's own context.
	OpTimeout time.Duration
	// Seed seeds the jitter source, keeping retry schedules reproducible.
	Seed int64
}

// DefaultPolicy returns the defaults spelled out on Policy.
func DefaultPolicy() Policy { return Policy{}.withDefaults() }

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 2 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	if p.JitterFrac <= 0 {
		p.JitterFrac = 0.2
	}
	if p.BreakerThreshold <= 0 {
		p.BreakerThreshold = 3
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 250 * time.Millisecond
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// breakerState is one node's circuit breaker: consecutive connect failures
// trip it open; while open, candidate selection routes around the node until
// the cooldown passes, then one trial attempt half-opens it.
type breakerState struct {
	consecutive int
	openUntil   time.Time
}

// ResilientConnector is a client.Connector that recovers from transient
// faults: connection attempts retry with exponential backoff + jitter and
// fail over across the cluster's node addresses, per-node circuit breakers
// keep retries away from nodes that just failed, and handed-out connections
// enforce the policy's per-operation deadline. Permanent errors (SQL errors,
// schema mismatches) pass through untouched on the first attempt.
//
// Every recovery action (retry, backoff, breaker transition, failover)
// emits an obs.Event to the connector's observer (SetObserver) and to the
// operation context's observer — this is the event stream behind
// v_monitor.resilience_events.
type ResilientConnector struct {
	inner client.Connector
	pol   Policy
	sleep func(time.Duration)
	now   func() time.Time

	mu       sync.Mutex
	obsv     obs.Observer
	hosts    []string
	rng      *rand.Rand
	breakers map[string]*breakerState
}

// NewResilient wraps inner. hosts is the failover set (typically the
// cluster's node addresses, discoverable only after a first connection — see
// SetHosts); nil means "retry the requested address only".
func NewResilient(inner client.Connector, hosts []string, pol Policy) *ResilientConnector {
	pol = pol.withDefaults()
	return &ResilientConnector{
		inner:    inner,
		pol:      pol,
		sleep:    time.Sleep,
		now:      time.Now,
		hosts:    append([]string(nil), hosts...),
		rng:      rand.New(rand.NewSource(pol.Seed)),
		breakers: make(map[string]*breakerState),
	}
}

// SetSleep and SetClock replace the timing sources (tests use fakes so no
// real time passes).
func (r *ResilientConnector) SetSleep(f func(time.Duration)) { r.sleep = f }
func (r *ResilientConnector) SetClock(f func() time.Time)    { r.now = f }

// SetObserver attaches an observer that receives every resilience event this
// connector emits, regardless of operation context. Wire the cluster's
// collector (vertica.Cluster.Obs) here to surface the events in
// v_monitor.resilience_events.
func (r *ResilientConnector) SetObserver(o obs.Observer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.obsv = o
}

func (r *ResilientConnector) observer() obs.Observer {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.obsv
}

// emit delivers a resilience event to the connector observer and the
// operation context's observer.
func (r *ResilientConnector) emit(ctx context.Context, ev obs.Event) {
	if o := obs.Multi(r.observer(), obs.From(ctx)); o != nil {
		o.Event(ev)
	}
}

// Policy returns the effective (defaulted) policy.
func (r *ResilientConnector) Policy() Policy { return r.pol }

// SetHosts installs the failover set once the cluster layout is known.
func (r *ResilientConnector) SetHosts(hosts []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hosts = append(r.hosts[:0], hosts...)
}

// candidates returns the failover order for a requested address: the address
// itself, then the other hosts cyclically from its position — so node i's
// traffic fails over to node i+1 first, which is where its buddy projection
// lives (buddy r of segment i is on node i+r+1 mod n).
func (r *ResilientConnector) candidates(addr string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := []string{addr}
	at := -1
	for i, h := range r.hosts {
		if h == addr {
			at = i
			break
		}
	}
	for i := 1; i < len(r.hosts); i++ {
		h := r.hosts[(at+i+len(r.hosts))%len(r.hosts)]
		if h != addr {
			out = append(out, h)
		}
	}
	return out
}

// pick chooses the attempt's host: the preferred rotation position unless its
// breaker is open, in which case the first closed-breaker candidate wins; if
// every breaker is open, the rotation position is used anyway (a trial).
func (r *ResilientConnector) pick(cands []string, attempt int) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	for i := 0; i < len(cands); i++ {
		h := cands[(attempt+i)%len(cands)]
		b := r.breakers[h]
		if b == nil || now.After(b.openUntil) || now.Equal(b.openUntil) {
			return h
		}
	}
	return cands[attempt%len(cands)]
}

// noteFailure counts a connect failure and reports whether it tripped the
// host's breaker open.
func (r *ResilientConnector) noteFailure(host string) (opened bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[host]
	if b == nil {
		b = &breakerState{}
		r.breakers[host] = b
	}
	b.consecutive++
	if b.consecutive >= r.pol.BreakerThreshold {
		wasOpen := r.now().Before(b.openUntil)
		b.openUntil = r.now().Add(r.pol.BreakerCooldown)
		return !wasOpen
	}
	return false
}

// noteSuccess resets the host's breaker and reports whether a tripped
// breaker closed.
func (r *ResilientConnector) noteSuccess(host string) (closed bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b := r.breakers[host]; b != nil {
		closed = b.consecutive >= r.pol.BreakerThreshold
		b.consecutive = 0
		b.openUntil = time.Time{}
	}
	return closed
}

// BreakerOpen reports whether host's breaker is currently open (for tests
// and observability).
func (r *ResilientConnector) BreakerOpen(host string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[host]
	return b != nil && r.now().Before(b.openUntil)
}

// backoff computes the jittered delay before attempt+1.
func (r *ResilientConnector) backoff(attempt int) time.Duration {
	d := r.pol.BaseBackoff << uint(attempt)
	if d > r.pol.MaxBackoff || d <= 0 {
		d = r.pol.MaxBackoff
	}
	r.mu.Lock()
	f := 1 - r.pol.JitterFrac + 2*r.pol.JitterFrac*r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// sleepBackoff emits the backoff event and sleeps before a retry attempt.
func (r *ResilientConnector) sleepBackoff(ctx context.Context, attempt int, addr string) {
	d := r.backoff(attempt - 1)
	r.emit(ctx, obs.Event{Name: "backoff", Node: addr, Detail: d.String()})
	r.sleep(d)
}

// Connect implements client.Connector: it dials addr, failing over across
// the host set with backoff on transient errors. The returned connection
// enforces the policy's per-operation deadline. Each successful connect
// reports one sim FixedConnect cost event to the context's observer, so the
// performance model counts connections wherever they are established.
func (r *ResilientConnector) Connect(ctx context.Context, addr string) (client.Conn, error) {
	cands := r.candidates(addr)
	var lastErr error
	for attempt := 0; attempt < r.pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.emit(ctx, obs.Event{Name: "retry", Node: addr, Detail: fmt.Sprintf("connect attempt %d", attempt+1)})
			r.sleepBackoff(ctx, attempt, addr)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		host := r.pick(cands, attempt)
		conn, err := r.inner.Connect(ctx, host)
		if err == nil {
			if r.noteSuccess(host) {
				r.emit(ctx, obs.Event{Name: "breaker_close", Node: host})
			}
			if host != addr {
				r.emit(ctx, obs.Event{Name: "failover", Node: host, Detail: "requested " + addr})
			}
			r.emit(ctx, obs.Event{Name: "sim", Node: host,
				Payload: sim.Event{Type: sim.FixedEv, FixedKind: sim.FixedConnect}})
			if r.pol.OpTimeout > 0 {
				return &deadlineConn{inner: conn, d: r.pol.OpTimeout}, nil
			}
			return conn, nil
		}
		if !IsTransient(err) {
			return nil, err
		}
		r.emit(ctx, obs.Event{Name: "conn_failure", Node: host, Detail: err.Error()})
		if r.noteFailure(host) {
			r.emit(ctx, obs.Event{Name: "breaker_open", Node: host})
		}
		lastErr = err
	}
	return nil, fmt.Errorf("resilience: connect to %s failed after %d attempts: %w", addr, r.pol.MaxAttempts, lastErr)
}

// Execute connects (with failover) and runs one statement, retrying the
// whole connect+execute pair on transient failures — so a node dying after
// the session was established (mid-scan) still fails over. Use only for
// idempotent statements (reads, conditional updates): a connection dropped
// mid-statement leaves the outcome unknown, and this helper will run the
// statement again.
func (r *ResilientConnector) Execute(ctx context.Context, addr, sql string) (*vertica.Result, error) {
	cands := r.candidates(addr)
	var lastErr error
	for attempt := 0; attempt < r.pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.emit(ctx, obs.Event{Name: "retry", Node: addr, Detail: fmt.Sprintf("statement attempt %d", attempt+1)})
			r.sleepBackoff(ctx, attempt, addr)
		}
		// Rotate the preferred host per attempt: a node that accepts the
		// connection but keeps failing statements (dying mid-scan) must not
		// monopolize the retry budget.
		conn, err := r.Connect(ctx, cands[attempt%len(cands)])
		if err != nil {
			if !IsTransient(err) {
				return nil, err
			}
			lastErr = err
			continue
		}
		res, err := conn.Execute(ctx, sql)
		conn.Close()
		if err == nil {
			return res, nil
		}
		if !IsTransient(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("resilience: statement failed after %d attempts: %w", r.pol.MaxAttempts, lastErr)
}

// deadlineConn bounds every operation on a connection by a deadline, layered
// as a context deadline under the caller's own context. A timed-out
// operation abandons the connection: the caller gets ErrDeadline at the
// deadline, and the underlying session is closed (aborting its transaction)
// as soon as the hung operation eventually drains — sessions are not safe for
// concurrent use, so the close must not race the in-flight call.
type deadlineConn struct {
	inner client.Conn
	d     time.Duration
	hung  bool
}

type opResult struct {
	res *vertica.Result
	err error
}

func (c *deadlineConn) call(ctx context.Context, op func(context.Context) (*vertica.Result, error)) (*vertica.Result, error) {
	if c.hung {
		return nil, Transient(fmt.Errorf("%w: connection abandoned after earlier timeout", ErrConnDropped))
	}
	if c.d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.d)
		defer cancel()
	}
	if ctx.Done() == nil {
		return op(ctx)
	}
	ch := make(chan opResult, 1)
	go func() {
		res, err := op(ctx)
		ch <- opResult{res, err}
	}()
	select {
	case out := <-ch:
		return out.res, out.err
	case <-ctx.Done():
		// The in-flight operation may be stuck inside the substrate (which
		// cannot always observe cancellation mid-call); abandon the
		// connection and close it once the call drains.
		c.hung = true
		go func() {
			<-ch
			c.inner.Close()
		}()
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return nil, Transient(fmt.Errorf("operation exceeded %v: %w", c.d, ErrDeadline))
		}
		return nil, ctx.Err()
	}
}

func (c *deadlineConn) Execute(ctx context.Context, sql string) (*vertica.Result, error) {
	return c.call(ctx, func(ctx context.Context) (*vertica.Result, error) { return c.inner.Execute(ctx, sql) })
}

func (c *deadlineConn) CopyFrom(ctx context.Context, sql string, rd io.Reader) (*vertica.Result, error) {
	return c.call(ctx, func(ctx context.Context) (*vertica.Result, error) { return c.inner.CopyFrom(ctx, sql, rd) })
}

func (c *deadlineConn) Close() {
	if !c.hung {
		c.inner.Close()
	}
}

// DriverConn is a self-healing client.Conn for driver-side control work: when
// a statement fails because the connection died before it ran (refused,
// dropped between statements, node-down), the session is re-established —
// failing over to another host — and the statement retried. It carries no
// session state across reconnects, so it must not be used for multi-statement
// transactions; the S2V driver's statements are all autocommit and either
// idempotent or guarded by conditional updates, which is exactly the contract
// this type needs.
type DriverConn struct {
	pool *ResilientConnector
	addr string
	conn client.Conn
}

// NewDriverConn returns a driver connection over the pool; the first
// statement dials lazily.
func NewDriverConn(pool *ResilientConnector, addr string) *DriverConn {
	return &DriverConn{pool: pool, addr: addr}
}

func (d *DriverConn) ensure(ctx context.Context) (client.Conn, error) {
	if d.conn != nil {
		return d.conn, nil
	}
	conn, err := d.pool.Connect(ctx, d.addr)
	if err != nil {
		return nil, err
	}
	d.conn = conn
	return conn, nil
}

func (d *DriverConn) drop() {
	if d.conn != nil {
		d.conn.Close()
		d.conn = nil
	}
}

// Execute implements client.Conn.
func (d *DriverConn) Execute(ctx context.Context, sql string) (*vertica.Result, error) {
	pol := d.pool.Policy()
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			d.pool.emit(ctx, obs.Event{Name: "retry", Node: d.addr, Detail: fmt.Sprintf("driver statement attempt %d", attempt+1)})
			d.pool.sleepBackoff(ctx, attempt, d.addr)
		}
		conn, err := d.ensure(ctx)
		if err != nil {
			if !IsTransient(err) {
				return nil, err
			}
			lastErr = err
			continue
		}
		res, err := conn.Execute(ctx, sql)
		if err == nil {
			return res, nil
		}
		if !IsTransient(err) {
			return nil, err
		}
		d.drop()
		lastErr = err
	}
	return nil, fmt.Errorf("resilience: driver statement failed after %d attempts: %w", pol.MaxAttempts, lastErr)
}

// CopyFrom implements client.Conn. The data stream is not replayable, so only
// the connection is established resiliently; a mid-copy fault surfaces to the
// caller.
func (d *DriverConn) CopyFrom(ctx context.Context, sql string, rd io.Reader) (*vertica.Result, error) {
	conn, err := d.ensure(ctx)
	if err != nil {
		return nil, err
	}
	res, err := conn.CopyFrom(ctx, sql, rd)
	if err != nil && IsTransient(err) {
		d.drop()
	}
	return res, err
}

// Close implements client.Conn.
func (d *DriverConn) Close() { d.drop() }
