// Randomized, seeded, deterministic chaos soak over the full S2V path.
//
// This lives in an external test package so it can import core (which itself
// imports resilience) without a cycle. Each seed derives a fault script from
// its own rand.Source, so a failing seed reproduces exactly; the faults are
// restricted to classes the S2V protocol is designed to survive (connect
// refusals, connections severed *before* a statement runs, COPY streams cut
// mid-flight, added latency, node-down windows on non-coordinator nodes).
// Dropping a connection *after* an unguarded driver bookkeeping INSERT is
// deliberately excluded: the statement's outcome is ambiguous and blind
// re-execution is exactly the hole exactly-once semantics does not cover.
package resilience_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"vsfabric/internal/client"
	"vsfabric/internal/core"
	"vsfabric/internal/resilience"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

const soakSeeds = 6

func TestChaosSoakS2V(t *testing.T) {
	for seed := int64(1); seed <= soakSeeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { soakOnce(t, seed) })
	}
}

func soakOnce(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	cl, err := vertica.NewCluster(vertica.Config{Nodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	chaos := resilience.NewChaos(client.InProc(cl))
	src := core.NewDefaultSource(chaos)
	src.Register()
	sc := spark.NewContext(spark.Conf{
		NumExecutors:     4,
		CoresPerExecutor: 4,
		MaxTaskFailures:  8,
	})

	// Derive this seed's fault script. Every rule is survivable by design;
	// whether the job survives the *combination* (retry budgets are finite)
	// is what the soak explores.
	addrOf := func(i int) string { return cl.Node(i).Addr }
	anyAddr := func() string { return addrOf(rng.Intn(4)) }
	for i, n := 0, rng.Intn(3); i < n; i++ {
		chaos.RefuseConnect(anyAddr(), 1+rng.Intn(2))
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		chaos.SeverCopyAfter("", int64(64+rng.Intn(4096)), 1)
	}
	stmts := []string{"COPY ", "SELECT COUNT", "CREATE TEMP TABLE", "SELECT status"}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		chaos.DropOnStatement(anyAddr(), stmts[rng.Intn(len(stmts))], 1)
	}
	if rng.Intn(2) == 0 {
		// Node-down windows stay off node 0: final verification reads go
		// through it, and an unsegmented target is served by any live node
		// anyway.
		victim := 1 + rng.Intn(3)
		start := uint64(2 + rng.Intn(20))
		chaos.NodeDownWindow(cl.Node(victim), start, start+uint64(3+rng.Intn(6)))
	}

	const n = 600
	schema := types.NewSchema(
		types.Column{Name: "id", T: types.Int64},
		types.Column{Name: "val", T: types.Float64},
	)
	rows := make([]types.Row, n)
	wantSum := 0.0
	for i := range rows {
		rows[i] = types.Row{types.IntValue(int64(i)), types.FloatValue(float64(i) + 0.25)}
		wantSum += float64(i) + 0.25
	}
	df := spark.CreateDataFrame(sc, schema, rows, 6)

	jobName := fmt.Sprintf("soak-%d", seed)
	err = df.Write().Format(core.DefaultSourceName).Options(map[string]string{
		"host": addrOf(0), "table": "soak_target", "user": "dbadmin", "password": "",
		"numPartitions":    "6",
		"jobname":          jobName,
		"retry_attempts":   "6",
		"retry_backoff_ms": "1",
	}).Mode(spark.SaveOverwrite).Save()

	// Whatever the outcome, no session may leak: every failure path must
	// have released its slot (severed conns abort their txns server-side).
	for i := 0; i < cl.NumNodes(); i++ {
		if open := cl.OpenSessions(i); open != 0 {
			t.Errorf("node %d leaks %d sessions (chaos log: %v)", i, open, chaos.Log())
		}
	}

	s, serr := cl.Connect(0)
	if serr != nil {
		t.Fatal(serr)
	}
	defer s.Close()
	count := func() (int64, error) {
		res, err := s.Execute("SELECT COUNT(*) FROM soak_target")
		if err != nil {
			return 0, err
		}
		v, _ := res.Value()
		return v.I, nil
	}

	if err != nil {
		// A clean failure is acceptable — retry budgets are finite — but it
		// must be all-or-nothing: the overwrite target must not exist.
		if _, cerr := count(); cerr == nil {
			t.Fatalf("job failed (%v) but target table exists — not all-or-nothing; chaos log: %v", err, chaos.Log())
		}
		t.Logf("seed %d: clean failure after %d chaos ops: %v", seed, chaos.Ops(), err)
		return
	}
	got, cerr := count()
	if cerr != nil {
		t.Fatal(cerr)
	}
	if got != n {
		t.Fatalf("count = %d, want %d (exactly-once violated; chaos log: %v)", got, n, chaos.Log())
	}
	res, rerr := s.Execute("SELECT SUM(val) FROM soak_target")
	if rerr != nil {
		t.Fatal(rerr)
	}
	v, _ := res.Value()
	if v.AsFloat() != wantSum {
		t.Fatalf("sum = %v, want %v (chaos log: %v)", v.AsFloat(), wantSum, chaos.Log())
	}
	status, rerr := s.Execute(fmt.Sprintf(
		"SELECT status FROM %s WHERE job_name = '%s'", core.JobStatusTable, jobName))
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(status.Rows) != 1 || status.Rows[0][0].S != "SUCCESS" {
		t.Fatalf("job status rows = %v, want one SUCCESS", status.Rows)
	}
	if !strings.Contains(strings.Join(chaos.Log(), " "), "@op") {
		t.Logf("seed %d: no faults fired (script: %v)", seed, chaos.Log())
	}
}
