package server

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"vsfabric/internal/resilience"
	"vsfabric/internal/vertica"
)

var bg = context.Background()

// TestOpTimeoutAgainstHungServer points a client at a black-hole endpoint —
// it accepts connections but never answers — and checks that the per-call
// deadline surfaces a transient timeout instead of hanging the caller.
func TestOpTimeoutAgainstHungServer(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close() // hold the conn open, never respond
		}
	}()

	d := &DialConnector{
		Endpoints: map[string]string{"hung": l.Addr().String()},
		OpTimeout: 50 * time.Millisecond,
	}
	conn, err := d.Connect(bg, "hung")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	_, err = conn.Execute(bg, "SELECT 1")
	if err == nil {
		t.Fatal("execute against a hung server must time out")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want a net timeout", err)
	}
	if !resilience.IsTransient(err) {
		t.Fatalf("timeout must classify transient for retry: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timed out only after %v — deadline not effective", elapsed)
	}
}

// TestTransientFlagOverWire checks the classification round-trip: a
// node-down error (transient) and an unknown-table error (permanent) must
// keep their retryability after being flattened to text on the wire.
func TestTransientFlagOverWire(t *testing.T) {
	cl, err := vertica.NewCluster(vertica.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(cl, 0)
	ep, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	d := &DialConnector{Endpoints: map[string]string{cl.Node(0).Addr: ep}}

	conn, err := d.Connect(bg, cl.Node(0).Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Execute(bg, "CREATE TABLE tw (id INTEGER)"); err != nil {
		t.Fatal(err)
	}

	// Take the node down mid-session: the statement fails server-side with
	// the transient ErrNodeDown, and the wire protocol must deliver it
	// transient so the resilient layer retries it.
	cl.Node(0).SetDown(true)
	_, err = conn.Execute(bg, "SELECT COUNT(*) FROM tw")
	if err == nil {
		t.Fatal("statement on a down node should fail")
	}
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote in chain", err)
	}
	if !strings.Contains(err.Error(), "node down") {
		t.Fatalf("err = %v, want the server root cause in the message", err)
	}
	if !resilience.IsTransient(err) {
		t.Fatalf("node-down error must stay transient over the wire: %v", err)
	}

	// The session survives: bring the node back and the same connection works.
	cl.Node(0).SetDown(false)
	if _, err := conn.Execute(bg, "SELECT COUNT(*) FROM tw"); err != nil {
		t.Fatalf("session should recover once the node is back: %v", err)
	}

	// Control: a permanent error must NOT pick up the transient mark.
	_, err = conn.Execute(bg, "SELECT * FROM missing")
	if err == nil {
		t.Fatal("unknown table should error")
	}
	if resilience.IsTransient(err) {
		t.Fatalf("unknown-table error must stay permanent over the wire: %v", err)
	}
}

// TestResilientFailoverOverTCP runs the resilient connector on top of real
// sockets: the first node's endpoint is a closed port (connection refused),
// and Connect must fail over to the live server on the second node.
func TestResilientFailoverOverTCP(t *testing.T) {
	cl, err := vertica.NewCluster(vertica.Config{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(cl, 1)
	ep, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	// Reserve a port, then close it, so node 0's endpoint refuses connects.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadEP := dead.Addr().String()
	dead.Close()

	d := &DialConnector{Endpoints: map[string]string{
		cl.Node(0).Addr: deadEP,
		cl.Node(1).Addr: ep,
	}}
	pol := resilience.DefaultPolicy()
	pol.BaseBackoff = time.Millisecond
	pol.MaxBackoff = 4 * time.Millisecond
	r := resilience.NewResilient(d, []string{cl.Node(0).Addr, cl.Node(1).Addr}, pol)
	conn, err := r.Connect(bg, cl.Node(0).Addr)
	if err != nil {
		t.Fatalf("connect should fail over to the live node: %v", err)
	}
	defer conn.Close()
	res, err := conn.Execute(bg, "SELECT LAST_EPOCH()")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
