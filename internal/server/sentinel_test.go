package server

import (
	"errors"
	"testing"

	"vsfabric/internal/resilience"
	"vsfabric/internal/vertica"
)

// TestSentinelRoundTripOverWire proves the engine's typed sentinels survive
// the trip through the framed protocol: a remote caller can distinguish a
// down node (transient, the node returns), a removed node (never returns,
// but transient for failover), and a session-limit rejection with errors.Is,
// exactly as an in-process caller can.
func TestSentinelRoundTripOverWire(t *testing.T) {
	cl, err := vertica.NewCluster(vertica.Config{Nodes: 2, MaxClientSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(cl, 1)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Down node: the sentinel crosses the wire and stays transient.
	cl.Node(1).SetDown(true)
	conn, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	_, err = conn.Execute(bg, "SELECT 1")
	conn.Close()
	if !errors.Is(err, vertica.ErrNodeDown) {
		t.Fatalf("down node over wire = %v, want ErrNodeDown in the chain", err)
	}
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("remote error not marked ErrRemote: %v", err)
	}
	if !resilience.IsTransient(err) {
		t.Fatalf("node-down must classify transient over the wire: %v", err)
	}
	cl.Node(1).SetDown(false)

	// Session limit: the one slot is pinned locally; the remote session is
	// rejected with the typed sentinel.
	pinned, err := cl.Connect(1)
	if err != nil {
		t.Fatal(err)
	}
	conn, err = Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	_, err = conn.Execute(bg, "SELECT 1")
	conn.Close()
	pinned.Close()
	if !errors.Is(err, vertica.ErrSessionLimit) {
		t.Fatalf("session limit over wire = %v, want ErrSessionLimit", err)
	}
	if !resilience.IsTransient(err) {
		t.Fatalf("session limit must classify transient: %v", err)
	}

	// Removed node: distinct from down, still transient (failover works —
	// the drained segments live on the survivors).
	if err := cl.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	conn, err = Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	_, err = conn.Execute(bg, "SELECT 1")
	conn.Close()
	if !errors.Is(err, vertica.ErrNodeRemoved) {
		t.Fatalf("removed node over wire = %v, want ErrNodeRemoved", err)
	}
	if errors.Is(err, vertica.ErrNodeDown) {
		t.Fatalf("removed node must not read as merely down: %v", err)
	}
	if !resilience.IsTransient(err) {
		t.Fatalf("node-removed must classify transient for failover: %v", err)
	}
}
