// Package server exposes a cluster node over TCP with a small framed
// protocol, playing the role of Vertica's client port: remote sessions get
// the same SQL surface (including transactions and streamed COPY) as
// in-process ones. The vsql shell and the network integration tests use it;
// the connector can run over it through DialConnector.
//
// Wire format: every message is one frame — a 1-byte type, a 4-byte
// big-endian payload length, and the payload. Requests are JSON ('Q' query,
// 'C' copy-begin) or raw bytes ('D' copy data, 'E' copy end); responses are
// JSON ('R' result, 'X' error).
package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"vsfabric/internal/obs"
	"vsfabric/internal/resilience"
	"vsfabric/internal/vertica"
)

// Frame types.
const (
	frameQuery    = 'Q'
	frameCopy     = 'C'
	frameCopyData = 'D'
	frameCopyEnd  = 'E'
	frameResult   = 'R'
	frameError    = 'X'
)

const maxFrame = 1 << 28

type request struct {
	SQL string `json:"sql"`
	// TraceID/ParentID propagate the client's trace context across the wire
	// (0 = untraced): the server-side session parents its execute/copy spans
	// under the remote caller's span, so one connector job reads as a single
	// trace spanning driver, executors, and every Vertica node.
	TraceID  uint64 `json:"trace_id,omitempty"`
	ParentID uint64 `json:"parent_id,omitempty"`
	// Peer names the remote client (the Spark executor in the simulated
	// topology); the server falls back to the connection's remote address.
	Peer string `json:"peer,omitempty"`
}

type response struct {
	Result *vertica.Result `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	// Transient carries the resilience classification across the wire: the
	// error itself is flattened to text, but the retry decision it implies
	// must survive the trip.
	Transient bool `json:"transient,omitempty"`
	// Code carries the engine's sentinel identity across the wire, so remote
	// callers can distinguish the conditions they react to differently — a
	// down node (retry/failover, the node returns), a removed node (fail over
	// permanently, it never returns), a session-limit rejection (back off or
	// connect elsewhere) — with errors.Is, exactly as in-process callers do.
	Code string `json:"code,omitempty"`
}

// Wire codes for engine sentinels (response.Code).
const (
	codeNodeDown     = "node_down"
	codeNodeRemoved  = "node_removed"
	codeSessionLimit = "session_limit"
)

// sentinelCode maps an error chain to its wire code ("" when none applies).
func sentinelCode(e error) string {
	switch {
	case errors.Is(e, vertica.ErrNodeRemoved):
		return codeNodeRemoved
	case errors.Is(e, vertica.ErrNodeDown):
		return codeNodeDown
	case errors.Is(e, vertica.ErrSessionLimit):
		return codeSessionLimit
	}
	return ""
}

// sentinelFor is the client-side inverse of sentinelCode.
func sentinelFor(code string) error {
	switch code {
	case codeNodeDown:
		return vertica.ErrNodeDown
	case codeNodeRemoved:
		return vertica.ErrNodeRemoved
	case codeSessionLimit:
		return vertica.ErrSessionLimit
	}
	return nil
}

// writeFrame emits one frame with a single Write: header and payload are
// coalesced into one buffer, halving syscalls per frame and leaving no
// partial-write window between the header and its payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	buf := make([]byte, 5+len(payload))
	buf[0] = typ
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(payload)))
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("server: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Server serves one cluster node's sessions over TCP.
type Server struct {
	cluster *vertica.Cluster
	nodeID  int

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	wg       sync.WaitGroup
}

// New creates a server for the given node of the cluster.
func New(cluster *vertica.Cluster, nodeID int) *Server {
	return &Server{cluster: cluster, nodeID: nodeID}
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

// Close stops the listener and waits for active connections to drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	sess, err := s.cluster.Connect(s.nodeID)
	if err != nil {
		_ = sendError(conn, err)
		return
	}
	defer sess.Close()
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return // client hung up
		}
		switch typ {
		case frameQuery:
			var req request
			if err := json.Unmarshal(payload, &req); err != nil {
				_ = sendError(conn, err)
				continue
			}
			res, err := sess.ExecuteContext(s.reqCtx(conn, req), req.SQL)
			if err != nil {
				_ = sendError(conn, err)
				continue
			}
			_ = sendResult(conn, res)
		case frameCopy:
			var req request
			if err := json.Unmarshal(payload, &req); err != nil {
				_ = sendError(conn, err)
				continue
			}
			res, err := sess.CopyFromContext(s.reqCtx(conn, req), req.SQL, &copyReader{conn: conn})
			if err != nil {
				_ = sendError(conn, err)
				continue
			}
			_ = sendResult(conn, res)
		default:
			_ = sendError(conn, fmt.Errorf("server: unexpected frame %q", typ))
			return
		}
	}
}

// reqCtx builds the context one remote request executes under: the node's
// own collector observes it (so remote sessions surface in this node's
// v_monitor even outside a traced job), the span Peer is stamped from the
// wire-carried client name or, failing that, the connection's remote
// address, and any propagated trace context parents the session's spans
// under the remote job.
func (s *Server) reqCtx(conn net.Conn, req request) context.Context {
	ctx := obs.With(context.Background(), s.cluster.Obs())
	peer := req.Peer
	if peer == "" {
		peer = conn.RemoteAddr().String()
	}
	ctx = obs.WithPeer(ctx, peer)
	if req.TraceID != 0 {
		ctx = obs.WithSpanContext(ctx, obs.SpanContext{TraceID: req.TraceID, SpanID: req.ParentID})
	}
	return ctx
}

// copyReader streams 'D' frames until 'E'.
type copyReader struct {
	conn net.Conn
	buf  []byte
	done bool
}

func (c *copyReader) Read(p []byte) (int, error) {
	for len(c.buf) == 0 {
		if c.done {
			return 0, io.EOF
		}
		typ, payload, err := readFrame(c.conn)
		if err != nil {
			return 0, err
		}
		switch typ {
		case frameCopyData:
			c.buf = payload
		case frameCopyEnd:
			c.done = true
		default:
			return 0, fmt.Errorf("server: unexpected frame %q during COPY", typ)
		}
	}
	n := copy(p, c.buf)
	c.buf = c.buf[n:]
	return n, nil
}

func sendResult(w io.Writer, res *vertica.Result) error {
	payload, err := json.Marshal(response{Result: res})
	if err != nil {
		return err
	}
	return writeFrame(w, frameResult, payload)
}

func sendError(w io.Writer, e error) error {
	payload, _ := json.Marshal(response{
		Error:     e.Error(),
		Transient: resilience.IsTransient(e),
		Code:      sentinelCode(e),
	})
	return writeFrame(w, frameError, payload)
}

// ErrRemote wraps errors reported by the server.
var ErrRemote = errors.New("server: remote error")
