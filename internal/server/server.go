// Package server exposes a cluster node over TCP with a small framed
// protocol, playing the role of Vertica's client port: remote sessions get
// the same SQL surface (including transactions and streamed COPY) as
// in-process ones. The vsql shell and the network integration tests use it;
// the connector can run over it through DialConnector.
//
// Wire format: every message is one frame — a 1-byte type, a 4-byte
// big-endian payload length, and the payload. Requests are JSON ('Q' query,
// 'C' copy-begin) or raw bytes ('D' copy data, 'E' copy end); responses are
// JSON ('R' result, 'X' error).
package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"vsfabric/internal/resilience"
	"vsfabric/internal/vertica"
)

// Frame types.
const (
	frameQuery    = 'Q'
	frameCopy     = 'C'
	frameCopyData = 'D'
	frameCopyEnd  = 'E'
	frameResult   = 'R'
	frameError    = 'X'
)

const maxFrame = 1 << 28

type request struct {
	SQL string `json:"sql"`
}

type response struct {
	Result *vertica.Result `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	// Transient carries the resilience classification across the wire: the
	// error itself is flattened to text, but the retry decision it implies
	// must survive the trip.
	Transient bool `json:"transient,omitempty"`
}

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("server: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Server serves one cluster node's sessions over TCP.
type Server struct {
	cluster *vertica.Cluster
	nodeID  int

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	wg       sync.WaitGroup
}

// New creates a server for the given node of the cluster.
func New(cluster *vertica.Cluster, nodeID int) *Server {
	return &Server{cluster: cluster, nodeID: nodeID}
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

// Close stops the listener and waits for active connections to drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	sess, err := s.cluster.Connect(s.nodeID)
	if err != nil {
		_ = sendError(conn, err)
		return
	}
	defer sess.Close()
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return // client hung up
		}
		switch typ {
		case frameQuery:
			var req request
			if err := json.Unmarshal(payload, &req); err != nil {
				_ = sendError(conn, err)
				continue
			}
			res, err := sess.Execute(req.SQL)
			if err != nil {
				_ = sendError(conn, err)
				continue
			}
			_ = sendResult(conn, res)
		case frameCopy:
			var req request
			if err := json.Unmarshal(payload, &req); err != nil {
				_ = sendError(conn, err)
				continue
			}
			res, err := sess.CopyFrom(req.SQL, &copyReader{conn: conn})
			if err != nil {
				_ = sendError(conn, err)
				continue
			}
			_ = sendResult(conn, res)
		default:
			_ = sendError(conn, fmt.Errorf("server: unexpected frame %q", typ))
			return
		}
	}
}

// copyReader streams 'D' frames until 'E'.
type copyReader struct {
	conn net.Conn
	buf  []byte
	done bool
}

func (c *copyReader) Read(p []byte) (int, error) {
	for len(c.buf) == 0 {
		if c.done {
			return 0, io.EOF
		}
		typ, payload, err := readFrame(c.conn)
		if err != nil {
			return 0, err
		}
		switch typ {
		case frameCopyData:
			c.buf = payload
		case frameCopyEnd:
			c.done = true
		default:
			return 0, fmt.Errorf("server: unexpected frame %q during COPY", typ)
		}
	}
	n := copy(p, c.buf)
	c.buf = c.buf[n:]
	return n, nil
}

func sendResult(w io.Writer, res *vertica.Result) error {
	payload, err := json.Marshal(response{Result: res})
	if err != nil {
		return err
	}
	return writeFrame(w, frameResult, payload)
}

func sendError(w io.Writer, e error) error {
	payload, _ := json.Marshal(response{Error: e.Error(), Transient: resilience.IsTransient(e)})
	return writeFrame(w, frameError, payload)
}

// ErrRemote wraps errors reported by the server.
var ErrRemote = errors.New("server: remote error")
