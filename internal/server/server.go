// Package server exposes a cluster node over TCP with a small framed
// protocol, playing the role of Vertica's client port: remote sessions get
// the same SQL surface (including transactions and streamed COPY) as
// in-process ones. The vsql shell and the network integration tests use it;
// the connector can run over it through DialConnector.
//
// Wire format: every message is one frame — a 1-byte type, a 4-byte
// big-endian payload length, and the payload. Two protocol versions share
// that framing. v1 requests are JSON ('Q' query, 'C' copy-begin) or raw
// bytes ('D' copy data, 'E' copy end); responses are JSON ('R' result,
// 'X' error). v2 (negotiated by an 'H' hello frame, see wire.go) carries
// binary requests ('q'/'c') tagged for pipelining and streams results as
// columnar batch frames ('b') followed by a done frame ('z').
package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"vsfabric/internal/obs"
	"vsfabric/internal/resilience"
	"vsfabric/internal/storage"
	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

// v1 frame types ('D'/'E' are shared with v2 COPY streams).
const (
	frameQuery    = 'Q'
	frameCopy     = 'C'
	frameCopyData = 'D'
	frameCopyEnd  = 'E'
	frameResult   = 'R'
	frameError    = 'X'
)

const maxFrame = 1 << 28

type request struct {
	SQL string `json:"sql"`
	// TraceID/ParentID propagate the client's trace context across the wire
	// (0 = untraced): the server-side session parents its execute/copy spans
	// under the remote caller's span, so one connector job reads as a single
	// trace spanning driver, executors, and every Vertica node.
	TraceID  uint64 `json:"trace_id,omitempty"`
	ParentID uint64 `json:"parent_id,omitempty"`
	// Peer names the remote client (the Spark executor in the simulated
	// topology); the server falls back to the connection's remote address.
	Peer string `json:"peer,omitempty"`
}

type response struct {
	Result *vertica.Result `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	// Transient carries the resilience classification across the wire: the
	// error itself is flattened to text, but the retry decision it implies
	// must survive the trip.
	Transient bool `json:"transient,omitempty"`
	// Code carries the engine's sentinel identity across the wire, so remote
	// callers can distinguish the conditions they react to differently — a
	// down node (retry/failover, the node returns), a removed node (fail over
	// permanently, it never returns), a session-limit rejection (back off or
	// connect elsewhere) — with errors.Is, exactly as in-process callers do.
	// The code↔sentinel mapping lives in the wireCodes registry (wire.go).
	Code string `json:"code,omitempty"`
}

// writeFrame emits one frame with a single Write: header and payload are
// coalesced into one buffer, halving syscalls per frame and leaving no
// partial-write window between the header and its payload.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	buf := make([]byte, 5+len(payload))
	buf[0] = typ
	binary.BigEndian.PutUint32(buf[1:5], uint32(len(payload)))
	copy(buf[5:], payload)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("server: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// Server serves one cluster node's sessions over TCP.
type Server struct {
	cluster *vertica.Cluster
	nodeID  int

	// MaxProtocol caps the protocol version this server negotiates
	// (0 means the newest this build speaks). Set to 1 to force JSON
	// framing for every client — the downgrade path old servers exercise.
	MaxProtocol int

	mu       sync.Mutex
	listener net.Listener
	closed   bool
	wg       sync.WaitGroup
}

// New creates a server for the given node of the cluster.
func New(cluster *vertica.Cluster, nodeID int) *Server {
	return &Server{cluster: cluster, nodeID: nodeID}
}

// Listen starts accepting on addr (e.g. "127.0.0.1:0") and returns the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.listener = l
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(l)
	return l.Addr().String(), nil
}

// Close stops the listener and waits for active connections to drain.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop(l net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// handle sniffs the first frame to pick a protocol: an 'H' hello starts v2
// negotiation, while a v1 JSON request means a legacy client that never
// handshakes — it gets the v1 loop with its first request replayed.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	s.cluster.Obs().Add("server.connections", 1)
	typ, payload, err := readFrame(conn)
	if err != nil {
		return
	}
	switch typ {
	case frameHello:
		s.handleHello(conn, payload)
	case frameQuery, frameCopy:
		s.serveV1(conn, typ, payload)
	default:
		_ = sendError(conn, fmt.Errorf("%w: unexpected first frame %q", ErrProtocol, typ))
	}
}

func (s *Server) handleHello(conn net.Conn, payload []byte) {
	var h hello
	if err := json.Unmarshal(payload, &h); err != nil {
		return
	}
	max := s.MaxProtocol
	if max <= 0 || max > maxProtocol {
		max = maxProtocol
	}
	ver := h.MaxVersion
	if ver > max {
		ver = max
	}
	if ver < protocolV1 {
		ver = protocolV1
	}
	reply, _ := json.Marshal(hello{Version: ver})
	if err := writeFrame(conn, frameHello, reply); err != nil {
		return
	}
	if ver < protocolV2 {
		// Downgraded: the client falls back to JSON framing.
		s.serveV1(conn, 0, nil)
		return
	}
	s.serveV2(conn)
}

// serveV1 runs the legacy JSON request loop. first/firstPayload replay a
// request that was consumed while sniffing the protocol (0 = none).
func (s *Server) serveV1(conn net.Conn, first byte, firstPayload []byte) {
	sess, err := s.cluster.Connect(s.nodeID)
	if err != nil {
		_ = sendError(conn, err)
		return
	}
	defer sess.Close()
	typ, payload := first, firstPayload
	for {
		if typ == 0 {
			var err error
			typ, payload, err = readFrame(conn)
			if err != nil {
				return // client hung up
			}
		}
		switch typ {
		case frameQuery:
			var req request
			if err := json.Unmarshal(payload, &req); err != nil {
				_ = sendError(conn, err)
				break
			}
			res, err := sess.ExecuteContext(s.reqCtx(conn, req), req.SQL)
			if err != nil {
				_ = sendError(conn, err)
				break
			}
			_ = sendResult(conn, res)
		case frameCopy:
			var req request
			if err := json.Unmarshal(payload, &req); err != nil {
				_ = sendError(conn, err)
				break
			}
			cr := &copyReader{conn: conn}
			res, err := sess.CopyFromContext(s.reqCtx(conn, req), req.SQL, cr)
			if err != nil {
				if !copyRecoverable(sess, cr) {
					_ = sendError(conn, fmt.Errorf("%w: COPY stream broken: %v", ErrProtocol, err))
					return
				}
				_ = sendError(conn, err)
				break
			}
			_ = sendResult(conn, res)
		default:
			_ = sendError(conn, fmt.Errorf("%w: unexpected frame %q", ErrProtocol, typ))
			return
		}
		typ, payload = 0, nil
	}
}

// serveV2 runs the binary request loop: requests execute in arrival order
// and every response frame echoes its request's tag, so clients pipeline
// freely and match responses FIFO.
func (s *Server) serveV2(conn net.Conn) {
	sess, sessErr := s.cluster.Connect(s.nodeID)
	if sess != nil {
		defer sess.Close()
	}
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return // client hung up
		}
		switch typ {
		case frameBinQuery:
			req, err := decodeBinRequest(payload)
			if err != nil {
				// No trustworthy tag to address a reply to: close.
				_ = s.sendBinError(conn, req.Tag, err)
				return
			}
			if sessErr != nil {
				_ = s.sendBinError(conn, req.Tag, sessErr)
				break
			}
			res, err := sess.ExecuteContext(s.reqCtx(conn, request{SQL: req.SQL, TraceID: req.TraceID, ParentID: req.ParentID, Peer: req.Peer}), req.SQL)
			if err != nil {
				_ = s.sendBinError(conn, req.Tag, err)
				break
			}
			if err := s.sendBinResult(conn, req.Tag, res); err != nil {
				return
			}
		case frameBinCopy:
			req, err := decodeBinRequest(payload)
			if err != nil {
				_ = s.sendBinError(conn, req.Tag, err)
				return
			}
			if sessErr != nil {
				// The copy stream still owns the connection; without a
				// session to drain into, close rather than desync.
				_ = s.sendBinError(conn, req.Tag, sessErr)
				return
			}
			cr := &copyReader{conn: conn}
			res, err := sess.CopyFromContext(s.reqCtx(conn, request{SQL: req.SQL, TraceID: req.TraceID, ParentID: req.ParentID, Peer: req.Peer}), req.SQL, cr)
			if err != nil {
				if !copyRecoverable(sess, cr) {
					_ = s.sendBinError(conn, req.Tag, fmt.Errorf("%w: COPY stream broken: %v", ErrProtocol, err))
					return
				}
				_ = s.sendBinError(conn, req.Tag, err)
				break
			}
			if err := s.sendBinResult(conn, req.Tag, res); err != nil {
				return
			}
		default:
			_ = s.sendBinError(conn, 0, fmt.Errorf("%w: unexpected frame %q", ErrProtocol, typ))
			return
		}
	}
}

// copyRecoverable restores frame sync after a failed COPY. The engine can
// fail a COPY before consuming the whole client stream; the unread 'D'
// frames would otherwise be parsed as requests — the desync that used to
// leak an open server-side transaction. If the stream is intact the
// remaining frames are drained and the session continues (true). If the
// stream itself broke (malformed frame, torn connection), any open explicit
// transaction is rolled back so its locks and writes don't outlive the
// connection, and the caller must close (false).
func copyRecoverable(sess *vertica.Session, cr *copyReader) bool {
	if !cr.broken {
		if cr.drain() == nil {
			return true
		}
	}
	if sess.InTxn() {
		_, _ = sess.Execute("ROLLBACK")
	}
	return false
}

// reqCtx builds the context one remote request executes under: the node's
// own collector observes it (so remote sessions surface in this node's
// v_monitor even outside a traced job), the span Peer is stamped from the
// wire-carried client name or, failing that, the connection's remote
// address, and any propagated trace context parents the session's spans
// under the remote job.
func (s *Server) reqCtx(conn net.Conn, req request) context.Context {
	ctx := obs.With(context.Background(), s.cluster.Obs())
	peer := req.Peer
	if peer == "" {
		peer = conn.RemoteAddr().String()
	}
	ctx = obs.WithPeer(ctx, peer)
	if req.TraceID != 0 {
		ctx = obs.WithSpanContext(ctx, obs.SpanContext{TraceID: req.TraceID, SpanID: req.ParentID})
	}
	return ctx
}

// copyReader streams 'D' frames until 'E'.
type copyReader struct {
	conn net.Conn
	buf  []byte
	done bool
	// broken records a protocol violation mid-stream: the connection can no
	// longer be re-synced to a frame boundary.
	broken bool
}

func (c *copyReader) Read(p []byte) (int, error) {
	for len(c.buf) == 0 {
		if c.done {
			return 0, io.EOF
		}
		typ, payload, err := readFrame(c.conn)
		if err != nil {
			c.broken = true
			return 0, err
		}
		switch typ {
		case frameCopyData:
			c.buf = payload
		case frameCopyEnd:
			c.done = true
		default:
			c.broken = true
			return 0, fmt.Errorf("%w: unexpected frame %q during COPY", ErrProtocol, typ)
		}
	}
	n := copy(p, c.buf)
	c.buf = c.buf[n:]
	return n, nil
}

// drain consumes the rest of the copy stream up to its 'E' frame, so the
// connection is back on a request boundary after an engine-side COPY error.
func (c *copyReader) drain() error {
	var sink [4096]byte
	for !c.done {
		if _, err := c.Read(sink[:]); err != nil && err != io.EOF {
			return err
		}
	}
	return nil
}

func sendResult(w io.Writer, res *vertica.Result) error {
	payload, err := json.Marshal(response{Result: res})
	if err != nil {
		return err
	}
	return writeFrame(w, frameResult, payload)
}

func sendError(w io.Writer, e error) error {
	payload, _ := json.Marshal(response{
		Error:     e.Error(),
		Transient: resilience.IsTransient(e),
		Code:      sentinelCode(e),
	})
	return writeFrame(w, frameError, payload)
}

// coerceRows aligns row values with the declared result schema. Engine
// results are permissive — an expression over a FLOAT column can yield
// INTEGER-kinded values — but the columnar wire encoding is strict about
// vector types. Rows are copied only when a value actually needs converting;
// untouched rows alias the engine's (possibly shared) backing storage.
func coerceRows(schema types.Schema, rows []types.Row) []types.Row {
	out := rows
	copied := false
	for i, row := range rows {
		rowCopied := false
		for j, v := range row {
			want := schema.Cols[j].T
			if v.T == want || want == types.Unknown {
				continue
			}
			if !copied {
				out = append([]types.Row(nil), rows...)
				copied = true
			}
			if !rowCopied {
				out[i] = append(types.Row(nil), row...)
				rowCopied = true
			}
			switch {
			case v.Null:
				out[i][j] = types.NullValue(want)
			case want == types.Int64:
				out[i][j] = types.IntValue(v.AsInt())
			case want == types.Float64:
				out[i][j] = types.FloatValue(v.AsFloat())
			case want == types.Bool:
				out[i][j] = types.BoolValue(v.AsBool())
			default:
				out[i][j] = types.StringValue(v.String())
			}
		}
	}
	return out
}

// sendBinResult streams one statement's outcome: zero or more columnar
// batch frames (chunked so each stays well under the frame limit, and at
// least one whenever the result carries a schema — zero-row schema probes
// must arrive intact), then the done frame with the scalar outcome.
func (s *Server) sendBinResult(conn net.Conn, tag uint32, res *vertica.Result) error {
	if res.Schema.NumCols() > 0 {
		rows := coerceRows(res.Schema, res.Rows)
		for first := true; first || len(rows) > 0; first = false {
			chunk := rows
			if len(chunk) > wireBatchRows {
				chunk = chunk[:wireBatchRows]
			}
			rows = rows[len(chunk):]
			enc, err := storage.EncodeRows(res.Schema, chunk)
			if err != nil {
				return s.sendBinError(conn, tag, err)
			}
			payload := make([]byte, 4, 4+len(enc))
			binary.BigEndian.PutUint32(payload, tag)
			if err := writeFrame(conn, frameBatch, append(payload, enc...)); err != nil {
				return err
			}
		}
	}
	return writeFrame(conn, frameDone, encodeBinDone(binDone{
		Tag:          tag,
		RowsAffected: res.RowsAffected,
		Epoch:        res.Epoch,
		Copy:         res.Copy,
	}))
}

func (s *Server) sendBinError(conn net.Conn, tag uint32, e error) error {
	return writeFrame(conn, frameBinError, encodeBinError(binError{
		Tag:       tag,
		Transient: resilience.IsTransient(e),
		Code:      sentinelCode(e),
		Msg:       e.Error(),
	}))
}

// ErrRemote wraps errors reported by the server.
var ErrRemote = errors.New("server: remote error")
