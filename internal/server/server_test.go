package server

import (
	"strings"
	"testing"

	"vsfabric/internal/core"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

// startCluster brings up a cluster with one TCP server per node and returns
// the connector mapping node addresses to TCP endpoints.
func startCluster(t *testing.T, nodes int) (*vertica.Cluster, *DialConnector) {
	t.Helper()
	cl, err := vertica.NewCluster(vertica.Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	d := &DialConnector{Endpoints: map[string]string{}}
	for i := 0; i < nodes; i++ {
		srv := New(cl, i)
		ep, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		d.Endpoints[cl.Node(i).Addr] = ep
	}
	return cl, d
}

func TestQueryOverTCP(t *testing.T) {
	cl, d := startCluster(t, 2)
	conn, err := d.Connect(bg, cl.Node(0).Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Execute(bg, "CREATE TABLE t (id INTEGER, name VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Execute(bg, "INSERT INTO t VALUES (1, 'a'), (2, 'b')"); err != nil {
		t.Fatal(err)
	}
	res, err := conn.Execute(bg, "SELECT id, name FROM t WHERE id = 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1].S != "b" {
		t.Errorf("rows = %v", res.Rows)
	}
	if _, err := conn.Execute(bg, "SELECT * FROM missing"); err == nil {
		t.Error("remote error should surface")
	}
	// The session survives an error and stays usable.
	if _, err := conn.Execute(bg, "SELECT COUNT(*) FROM t"); err != nil {
		t.Errorf("session should survive an error: %v", err)
	}
}

func TestTransactionsOverTCP(t *testing.T) {
	cl, d := startCluster(t, 2)
	a, err := d.Connect(bg, cl.Node(0).Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := d.Connect(bg, cl.Node(1).Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	mustExec := func(c *TCPConn, sql string) *vertica.Result {
		t.Helper()
		res, err := c.Execute(bg, sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return res
	}
	mustExec(a.(*TCPConn), "CREATE TABLE t (id INTEGER)")
	_ = mustExec
	aa := a.(*TCPConn)
	bb := b.(*TCPConn)
	mustExec(aa, "BEGIN")
	mustExec(aa, "INSERT INTO t VALUES (1)")
	if res := mustExec(bb, "SELECT COUNT(*) FROM t"); res.Rows[0][0].I != 0 {
		t.Error("uncommitted insert visible over second TCP session")
	}
	mustExec(aa, "COMMIT")
	if res := mustExec(bb, "SELECT COUNT(*) FROM t"); res.Rows[0][0].I != 1 {
		t.Error("committed insert not visible")
	}
}

func TestCopyOverTCP(t *testing.T) {
	cl, d := startCluster(t, 2)
	conn, err := d.Connect(bg, cl.Node(1).Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Execute(bg, "CREATE TABLE t (id INTEGER, v FLOAT)"); err != nil {
		t.Fatal(err)
	}
	data := "1,0.5\n2,1.5\n3,2.5\n"
	res, err := conn.CopyFrom(bg, "COPY t FROM STDIN FORMAT CSV DIRECT", strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if res.Copy == nil || res.Copy.Loaded != 3 {
		t.Errorf("copy = %+v", res.Copy)
	}
	sum, err := conn.Execute(bg, "SELECT SUM(v) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rows[0][0].F != 4.5 {
		t.Errorf("sum = %v", sum.Rows[0][0])
	}
}

// The connector itself runs over the wire protocol unchanged: V2S + S2V
// against TCP-served nodes.
func TestConnectorOverTCP(t *testing.T) {
	cl, d := startCluster(t, 4)
	sc := spark.NewContext(spark.Conf{NumExecutors: 2, CoresPerExecutor: 4})
	src := core.NewDefaultSource(d)
	spark.RegisterSource("vertica-tcp", src)

	schema := types.NewSchema(
		types.Column{Name: "id", T: types.Int64},
		types.Column{Name: "val", T: types.Float64},
	)
	rows := make([]types.Row, 300)
	for i := range rows {
		rows[i] = types.Row{types.IntValue(int64(i)), types.FloatValue(float64(i))}
	}
	df := spark.CreateDataFrame(sc, schema, rows, 4)
	opts := map[string]string{"host": cl.Node(0).Addr, "table": "remote_t", "numPartitions": "6"}
	if err := df.Write().Format("vertica-tcp").Options(opts).Mode(spark.SaveOverwrite).Save(); err != nil {
		t.Fatal(err)
	}
	back, err := sc.Read().Format("vertica-tcp").Options(opts).Load()
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 300 {
		t.Fatalf("round trip over TCP: %d rows, want 300", len(got))
	}
	seen := map[int64]bool{}
	for _, r := range got {
		if seen[r[0].I] {
			t.Fatalf("duplicate id %d", r[0].I)
		}
		seen[r[0].I] = true
	}
}
