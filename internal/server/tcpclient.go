package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net"

	"vsfabric/internal/client"
	"vsfabric/internal/sim"
	"vsfabric/internal/vertica"
)

// TCPConn is a client session over the wire protocol; it implements
// client.Conn so the connector can run against a remote cluster unchanged.
type TCPConn struct {
	conn net.Conn
}

// Dial opens a session against a node server.
func Dial(addr string) (*TCPConn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPConn{conn: c}, nil
}

// Execute implements client.Conn.
func (c *TCPConn) Execute(sql string) (*vertica.Result, error) {
	payload, err := json.Marshal(request{SQL: sql})
	if err != nil {
		return nil, err
	}
	if err := writeFrame(c.conn, frameQuery, payload); err != nil {
		return nil, err
	}
	return c.readResponse()
}

// CopyFrom implements client.Conn: it streams r as COPY data frames.
func (c *TCPConn) CopyFrom(sql string, r io.Reader) (*vertica.Result, error) {
	payload, err := json.Marshal(request{SQL: sql})
	if err != nil {
		return nil, err
	}
	if err := writeFrame(c.conn, frameCopy, payload); err != nil {
		return nil, err
	}
	buf := make([]byte, 64<<10)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			if werr := writeFrame(c.conn, frameCopyData, buf[:n]); werr != nil {
				return nil, werr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			// Still terminate the stream so the server-side COPY fails
			// cleanly rather than hanging.
			_ = writeFrame(c.conn, frameCopyEnd, nil)
			_, _ = c.readResponse()
			return nil, err
		}
	}
	if err := writeFrame(c.conn, frameCopyEnd, nil); err != nil {
		return nil, err
	}
	return c.readResponse()
}

// SetRecorder implements client.Conn. Resource recording is an in-process
// benchmarking facility; over the wire it is a no-op.
func (c *TCPConn) SetRecorder(*sim.TaskRec, string) {}

// Close implements client.Conn.
func (c *TCPConn) Close() { _ = c.conn.Close() }

func (c *TCPConn) readResponse() (*vertica.Result, error) {
	typ, payload, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	var resp response
	if err := json.Unmarshal(payload, &resp); err != nil {
		return nil, err
	}
	switch typ {
	case frameResult:
		return resp.Result, nil
	case frameError:
		return nil, fmt.Errorf("%w: %s", ErrRemote, resp.Error)
	default:
		return nil, fmt.Errorf("server: unexpected response frame %q", typ)
	}
}

// DialConnector is a client.Connector over TCP: it maps the cluster node
// addresses (as reported by v_catalog.nodes) to the TCP endpoints their
// servers listen on.
type DialConnector struct {
	// Endpoints maps node address → "host:port".
	Endpoints map[string]string
}

// Connect implements client.Connector.
func (d *DialConnector) Connect(addr string) (client.Conn, error) {
	ep, ok := d.Endpoints[addr]
	if !ok {
		// Allow dialing a raw endpoint directly.
		ep = addr
	}
	return Dial(ep)
}
