package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"vsfabric/internal/client"
	"vsfabric/internal/obs"
	"vsfabric/internal/resilience"
	"vsfabric/internal/vertica"
)

// DefaultDialTimeout bounds connection establishment so a black-holed
// endpoint cannot wedge a client forever.
const DefaultDialTimeout = 10 * time.Second

// TCPConn is a client session over the wire protocol; it implements
// client.Conn so the connector can run against a remote cluster unchanged.
type TCPConn struct {
	conn net.Conn
	// opTimeout bounds each frame write and each response read; 0 = none.
	opTimeout time.Duration
}

// Dial opens a session against a node server with DefaultDialTimeout.
func Dial(addr string) (*TCPConn, error) {
	return DialTimeout(addr, DefaultDialTimeout)
}

// DialTimeout opens a session with an explicit dial timeout (0 = none).
func DialTimeout(addr string, timeout time.Duration) (*TCPConn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &TCPConn{conn: c}, nil
}

// SetOpTimeout bounds every subsequent frame write and response read; a
// server that stops responding surfaces a timeout (classified transient)
// instead of hanging the caller.
func (c *TCPConn) SetOpTimeout(d time.Duration) { c.opTimeout = d }

// arm pushes the I/O deadline forward before each frame, so the timeout
// bounds a stall, not a whole (possibly long) streamed operation. The
// operation context's own deadline folds in: whichever expires first wins,
// and a context with no deadline clears any stale one.
func (c *TCPConn) arm(ctx context.Context) error {
	var dl time.Time
	if c.opTimeout > 0 {
		dl = time.Now().Add(c.opTimeout)
	}
	if d, ok := ctx.Deadline(); ok && (dl.IsZero() || d.Before(dl)) {
		dl = d
	}
	return c.conn.SetDeadline(dl)
}

func (c *TCPConn) writeFrame(ctx context.Context, typ byte, payload []byte) error {
	if err := c.arm(ctx); err != nil {
		return err
	}
	return writeFrame(c.conn, typ, payload)
}

// newRequest stamps a request with the context's trace identity and peer
// name, so the span tree a job builds client-side continues uninterrupted on
// the server.
func newRequest(ctx context.Context, sql string) request {
	req := request{SQL: sql, Peer: obs.Peer(ctx)}
	if sc := obs.SpanContextFrom(ctx); sc.Valid() {
		req.TraceID, req.ParentID = sc.TraceID, sc.SpanID
	}
	return req
}

// Execute implements client.Conn.
func (c *TCPConn) Execute(ctx context.Context, sql string) (*vertica.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(newRequest(ctx, sql))
	if err != nil {
		return nil, err
	}
	if err := c.writeFrame(ctx, frameQuery, payload); err != nil {
		return nil, err
	}
	return c.readResponse(ctx)
}

// CopyFrom implements client.Conn: it streams r as COPY data frames. Context
// cancellation is observed between frames; the stream is terminated so the
// server-side COPY fails cleanly rather than hanging.
func (c *TCPConn) CopyFrom(ctx context.Context, sql string, r io.Reader) (*vertica.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(newRequest(ctx, sql))
	if err != nil {
		return nil, err
	}
	if err := c.writeFrame(ctx, frameCopy, payload); err != nil {
		return nil, err
	}
	buf := make([]byte, 64<<10)
	for {
		if err := ctx.Err(); err != nil {
			_ = c.writeFrame(ctx, frameCopyEnd, nil)
			_, _ = c.readResponse(ctx)
			return nil, err
		}
		n, err := r.Read(buf)
		if n > 0 {
			if werr := c.writeFrame(ctx, frameCopyData, buf[:n]); werr != nil {
				return nil, werr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			// Still terminate the stream so the server-side COPY fails
			// cleanly rather than hanging.
			_ = c.writeFrame(ctx, frameCopyEnd, nil)
			_, _ = c.readResponse(ctx)
			return nil, err
		}
	}
	if err := c.writeFrame(ctx, frameCopyEnd, nil); err != nil {
		return nil, err
	}
	return c.readResponse(ctx)
}

// Close implements client.Conn.
func (c *TCPConn) Close() { _ = c.conn.Close() }

func (c *TCPConn) readResponse(ctx context.Context) (*vertica.Result, error) {
	if err := c.arm(ctx); err != nil {
		return nil, err
	}
	typ, payload, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	var resp response
	if err := json.Unmarshal(payload, &resp); err != nil {
		return nil, err
	}
	switch typ {
	case frameResult:
		return resp.Result, nil
	case frameError:
		var rerr error
		if sent := sentinelFor(resp.Code); sent != nil {
			// Restore the engine sentinel into the chain so errors.Is works
			// across the wire exactly as it does in-process.
			rerr = fmt.Errorf("%w: %w: %s", ErrRemote, sent, resp.Error)
		} else {
			rerr = fmt.Errorf("%w: %s", ErrRemote, resp.Error)
		}
		if resp.Transient {
			// The server classified its local error before it was flattened
			// to text; restore the mark so remote retry decisions match
			// in-process ones.
			return nil, resilience.Transient(rerr)
		}
		return nil, rerr
	default:
		return nil, fmt.Errorf("server: unexpected response frame %q", typ)
	}
}

// DialConnector is a client.Connector over TCP: it maps the cluster node
// addresses (as reported by v_catalog.nodes) to the TCP endpoints their
// servers listen on.
type DialConnector struct {
	// Endpoints maps node address → "host:port".
	Endpoints map[string]string
	// DialTimeout bounds connection establishment (0 = DefaultDialTimeout).
	DialTimeout time.Duration
	// OpTimeout is applied to every dialed connection via SetOpTimeout
	// (0 = no per-operation deadline).
	OpTimeout time.Duration
}

// Connect implements client.Connector.
func (d *DialConnector) Connect(ctx context.Context, addr string) (client.Conn, error) {
	ep, ok := d.Endpoints[addr]
	if !ok {
		// Allow dialing a raw endpoint directly.
		ep = addr
	}
	dt := d.DialTimeout
	if dt <= 0 {
		dt = DefaultDialTimeout
	}
	dialer := net.Dialer{Timeout: dt}
	nc, err := dialer.DialContext(ctx, "tcp", ep)
	if err != nil {
		return nil, err
	}
	c := &TCPConn{conn: nc}
	c.SetOpTimeout(d.OpTimeout)
	return c, nil
}
