package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"vsfabric/internal/client"
	"vsfabric/internal/obs"
	"vsfabric/internal/resilience"
	"vsfabric/internal/storage"
	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

// DefaultDialTimeout bounds connection establishment so a black-holed
// endpoint cannot wedge a client forever.
const DefaultDialTimeout = 10 * time.Second

// dialConfig collects the knobs DialContext options set.
type dialConfig struct {
	dialTimeout time.Duration
	opTimeout   time.Duration
	protocol    int
	peerName    string
}

// Option configures a connection opened by DialContext.
type Option func(*dialConfig)

// WithDialTimeout bounds connection establishment (0 = no timeout; the
// default is DefaultDialTimeout). The dial context's own deadline still
// applies — whichever expires first wins.
func WithDialTimeout(d time.Duration) Option {
	return func(c *dialConfig) { c.dialTimeout = d }
}

// WithOpTimeout bounds every frame write and response read on the
// connection, like SetOpTimeout (0 = no per-operation deadline).
func WithOpTimeout(d time.Duration) Option {
	return func(c *dialConfig) { c.opTimeout = d }
}

// WithProtocol caps the protocol version the connection negotiates.
// 1 forces the legacy JSON framing (no handshake is sent at all, so the
// connection works against pre-handshake servers); 0 or 2 requests the
// binary protocol, downgrading to whatever the server answers.
func WithProtocol(version int) Option {
	return func(c *dialConfig) { c.protocol = version }
}

// WithPeerName names this client in requests that carry no peer of their
// own, so server-side spans attribute work to the caller rather than an
// ephemeral socket address.
func WithPeerName(name string) Option {
	return func(c *dialConfig) { c.peerName = name }
}

// TCPConn is a client session over the wire protocol; it implements
// client.Conn so the connector can run against a remote cluster unchanged.
// A TCPConn is not safe for concurrent use; pipelining happens through the
// explicit Pipeline API, not through concurrent Executes.
type TCPConn struct {
	conn net.Conn
	// opTimeout bounds each frame write and each response read; 0 = none.
	opTimeout time.Duration
	peerName  string

	// proto is the version cap requested at dial time (0 = newest).
	proto int
	// negotiated is the version agreed with the server, 0 until the lazy
	// handshake on the first operation. hsErr latches a failed handshake:
	// the connection is in an unknown state and every later call fails.
	negotiated int
	hsErr      error
	// tag numbers requests; responses echo it (v2 only).
	tag uint32
}

// DialContext opens a session against a node server. The context bounds
// connection establishment (alongside the dial timeout); per-operation
// deadlines come from WithOpTimeout or each call's own context.
func DialContext(ctx context.Context, addr string, opts ...Option) (*TCPConn, error) {
	cfg := dialConfig{dialTimeout: DefaultDialTimeout}
	for _, o := range opts {
		o(&cfg)
	}
	dialer := net.Dialer{Timeout: cfg.dialTimeout}
	nc, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return &TCPConn{
		conn:      nc,
		opTimeout: cfg.opTimeout,
		peerName:  cfg.peerName,
		proto:     cfg.protocol,
	}, nil
}

// Dial opens a session against a node server with DefaultDialTimeout.
//
// Deprecated: use DialContext.
func Dial(addr string) (*TCPConn, error) {
	return DialContext(context.Background(), addr)
}

// DialTimeout opens a session with an explicit dial timeout (0 = none).
//
// Deprecated: use DialContext with WithDialTimeout.
func DialTimeout(addr string, timeout time.Duration) (*TCPConn, error) {
	return DialContext(context.Background(), addr, WithDialTimeout(timeout))
}

// SetOpTimeout bounds every subsequent frame write and response read; a
// server that stops responding surfaces a timeout (classified transient)
// instead of hanging the caller.
func (c *TCPConn) SetOpTimeout(d time.Duration) { c.opTimeout = d }

// Protocol returns the negotiated protocol version (0 before the first
// operation completes the lazy handshake).
func (c *TCPConn) Protocol() int { return c.negotiated }

// deadline folds the per-operation timeout and the context deadline into
// one I/O deadline: whichever expires first wins, and a context with no
// deadline clears any stale one.
func (c *TCPConn) deadline(ctx context.Context) time.Time {
	var dl time.Time
	if c.opTimeout > 0 {
		dl = time.Now().Add(c.opTimeout)
	}
	if d, ok := ctx.Deadline(); ok && (dl.IsZero() || d.Before(dl)) {
		dl = d
	}
	return dl
}

// armWrite/armRead push the matching I/O deadline forward before each
// frame, so the timeout bounds a stall, not a whole streamed operation.
// They are split (not one SetDeadline) so a pipeline can keep queueing
// writes while an earlier response read is in flight.
func (c *TCPConn) armWrite(ctx context.Context) error {
	return c.conn.SetWriteDeadline(c.deadline(ctx))
}

func (c *TCPConn) armRead(ctx context.Context) error {
	return c.conn.SetReadDeadline(c.deadline(ctx))
}

func (c *TCPConn) writeFrame(ctx context.Context, typ byte, payload []byte) error {
	if err := c.armWrite(ctx); err != nil {
		return err
	}
	return writeFrame(c.conn, typ, payload)
}

// handshake negotiates the protocol version lazily, on the connection's
// first operation, under that operation's deadlines — a hung server
// surfaces as a timeout on the first Execute rather than a wedged dial.
// Requesting protocol 1 skips the exchange entirely: a pure v1 client
// never sends a frame type a pre-handshake server wouldn't know.
func (c *TCPConn) handshake(ctx context.Context) error {
	if c.hsErr != nil {
		return c.hsErr
	}
	if c.negotiated != 0 {
		return nil
	}
	want := c.proto
	if want <= 0 || want > maxProtocol {
		want = maxProtocol
	}
	if want == protocolV1 {
		c.negotiated = protocolV1
		return nil
	}
	err := func() error {
		payload, err := json.Marshal(hello{MaxVersion: want})
		if err != nil {
			return err
		}
		if err := c.writeFrame(ctx, frameHello, payload); err != nil {
			return err
		}
		if err := c.armRead(ctx); err != nil {
			return err
		}
		typ, reply, err := readFrame(c.conn)
		if err != nil {
			return err
		}
		if typ != frameHello {
			return fmt.Errorf("%w: handshake answered with frame %q", ErrProtocol, typ)
		}
		var h hello
		if err := json.Unmarshal(reply, &h); err != nil {
			return fmt.Errorf("%w: handshake payload: %v", ErrProtocol, err)
		}
		if h.Version < protocolV1 || h.Version > want {
			return fmt.Errorf("%w: server negotiated unsupported version %d", ErrProtocol, h.Version)
		}
		c.negotiated = h.Version
		return nil
	}()
	if err != nil {
		c.hsErr = err
	}
	return err
}

// newRequest stamps a request with the context's trace identity and peer
// name, so the span tree a job builds client-side continues uninterrupted on
// the server.
func (c *TCPConn) newRequest(ctx context.Context, sql string) request {
	req := request{SQL: sql, Peer: obs.Peer(ctx)}
	if req.Peer == "" {
		req.Peer = c.peerName
	}
	if sc := obs.SpanContextFrom(ctx); sc.Valid() {
		req.TraceID, req.ParentID = sc.TraceID, sc.SpanID
	}
	return req
}

// nextTag issues the next request tag.
func (c *TCPConn) nextTag() uint32 {
	c.tag++
	return c.tag
}

// sendBinRequest writes one tagged binary request frame and returns its tag.
func (c *TCPConn) sendBinRequest(ctx context.Context, typ byte, sql string) (uint32, error) {
	req := c.newRequest(ctx, sql)
	tag := c.nextTag()
	err := c.writeFrame(ctx, typ, encodeBinRequest(binRequest{
		Tag:      tag,
		TraceID:  req.TraceID,
		ParentID: req.ParentID,
		Peer:     req.Peer,
		SQL:      req.SQL,
	}))
	return tag, err
}

// Execute implements client.Conn.
func (c *TCPConn) Execute(ctx context.Context, sql string) (*vertica.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.handshake(ctx); err != nil {
		return nil, err
	}
	if c.negotiated < protocolV2 {
		payload, err := json.Marshal(c.newRequest(ctx, sql))
		if err != nil {
			return nil, err
		}
		if err := c.writeFrame(ctx, frameQuery, payload); err != nil {
			return nil, err
		}
		return c.readResponse(ctx)
	}
	tag, err := c.sendBinRequest(ctx, frameBinQuery, sql)
	if err != nil {
		return nil, err
	}
	return c.readBinResponse(ctx, tag, nil)
}

// ExecuteStream executes sql and delivers the result's column vectors
// batch by batch, without boxing rows: fn is called once per wire batch
// with a decoded schema, columns, and row count. The returned Result
// carries the scalar outcome (rows affected, epoch) and the schema, but
// no rows. On a v1 connection the whole result is fetched and re-encoded
// locally, so callers get identical behavior either way.
func (c *TCPConn) ExecuteStream(ctx context.Context, sql string, fn func(schema types.Schema, cols []storage.Column, nrows int) error) (*vertica.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.handshake(ctx); err != nil {
		return nil, err
	}
	if c.negotiated < protocolV2 {
		res, err := c.Execute(ctx, sql)
		if err != nil {
			return nil, err
		}
		if res.Schema.NumCols() > 0 {
			enc, err := storage.EncodeRows(res.Schema, res.Rows)
			if err != nil {
				return nil, err
			}
			schema, cols, n, err := storage.DecodeColumns(enc)
			if err != nil {
				return nil, err
			}
			if err := fn(schema, cols, n); err != nil {
				return nil, err
			}
		}
		res.Rows = nil
		return res, nil
	}
	tag, err := c.sendBinRequest(ctx, frameBinQuery, sql)
	if err != nil {
		return nil, err
	}
	return c.readBinResponse(ctx, tag, fn)
}

// CopyFrom implements client.Conn: it streams r as COPY data frames. Context
// cancellation is observed between frames; the stream is terminated so the
// server-side COPY fails cleanly rather than hanging.
func (c *TCPConn) CopyFrom(ctx context.Context, sql string, r io.Reader) (*vertica.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.handshake(ctx); err != nil {
		return nil, err
	}
	var tag uint32
	if c.negotiated < protocolV2 {
		payload, err := json.Marshal(c.newRequest(ctx, sql))
		if err != nil {
			return nil, err
		}
		if err := c.writeFrame(ctx, frameCopy, payload); err != nil {
			return nil, err
		}
	} else {
		var err error
		if tag, err = c.sendBinRequest(ctx, frameBinCopy, sql); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, 64<<10)
	for {
		if err := ctx.Err(); err != nil {
			_ = c.writeFrame(ctx, frameCopyEnd, nil)
			_, _ = c.readCopyResponse(ctx, tag)
			return nil, err
		}
		n, err := r.Read(buf)
		if n > 0 {
			if werr := c.writeFrame(ctx, frameCopyData, buf[:n]); werr != nil {
				return nil, werr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			// Still terminate the stream so the server-side COPY fails
			// cleanly rather than hanging.
			_ = c.writeFrame(ctx, frameCopyEnd, nil)
			_, _ = c.readCopyResponse(ctx, tag)
			return nil, err
		}
	}
	if err := c.writeFrame(ctx, frameCopyEnd, nil); err != nil {
		return nil, err
	}
	return c.readCopyResponse(ctx, tag)
}

func (c *TCPConn) readCopyResponse(ctx context.Context, tag uint32) (*vertica.Result, error) {
	if c.negotiated < protocolV2 {
		return c.readResponse(ctx)
	}
	return c.readBinResponse(ctx, tag, nil)
}

// Close implements client.Conn.
func (c *TCPConn) Close() { _ = c.conn.Close() }

func (c *TCPConn) readResponse(ctx context.Context) (*vertica.Result, error) {
	if err := c.armRead(ctx); err != nil {
		return nil, err
	}
	typ, payload, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	var resp response
	if err := json.Unmarshal(payload, &resp); err != nil {
		return nil, err
	}
	switch typ {
	case frameResult:
		return resp.Result, nil
	case frameError:
		return nil, remoteError(resp.Code, resp.Error, resp.Transient)
	default:
		return nil, fmt.Errorf("server: unexpected response frame %q", typ)
	}
}

// remoteError rebuilds a server-reported error client-side: the engine
// sentinel is restored into the chain so errors.Is works across the wire
// exactly as it does in-process, and the server's transient classification
// is re-marked so remote retry decisions match local ones.
func remoteError(code, msg string, transient bool) error {
	var rerr error
	if sent := sentinelFor(code); sent != nil {
		rerr = fmt.Errorf("%w: %w: %s", ErrRemote, sent, msg)
	} else {
		rerr = fmt.Errorf("%w: %s", ErrRemote, msg)
	}
	if transient {
		return resilience.Transient(rerr)
	}
	return rerr
}

// readBinResponse reads one tagged v2 response: zero or more batch frames
// then a done or error frame. Responses arrive in request order, so a
// mismatched tag means the stream lost sync — a protocol error, not a
// recoverable condition. When stream is nil, batches are boxed into rows
// on the returned Result; otherwise each batch is handed to stream unboxed.
func (c *TCPConn) readBinResponse(ctx context.Context, tag uint32, stream func(types.Schema, []storage.Column, int) error) (*vertica.Result, error) {
	res := &vertica.Result{}
	for {
		if err := c.armRead(ctx); err != nil {
			return nil, err
		}
		typ, payload, err := readFrame(c.conn)
		if err != nil {
			return nil, err
		}
		rtag, err := tagOf(payload)
		if err != nil {
			return nil, err
		}
		if rtag != tag {
			return nil, fmt.Errorf("%w: response tag %d, want %d", ErrProtocol, rtag, tag)
		}
		switch typ {
		case frameBatch:
			if stream != nil {
				schema, cols, n, err := storage.DecodeColumns(payload[4:])
				if err != nil {
					return nil, fmt.Errorf("%w: batch payload: %v", ErrProtocol, err)
				}
				res.Schema = schema
				if err := stream(schema, cols, n); err != nil {
					return nil, err
				}
				break
			}
			schema, rows, err := storage.DecodeRows(payload[4:])
			if err != nil {
				return nil, fmt.Errorf("%w: batch payload: %v", ErrProtocol, err)
			}
			res.Schema = schema
			res.Rows = append(res.Rows, rows...)
		case frameDone:
			d, err := decodeBinDone(payload)
			if err != nil {
				return nil, err
			}
			res.RowsAffected = d.RowsAffected
			res.Epoch = d.Epoch
			res.Copy = d.Copy
			return res, nil
		case frameBinError:
			e, err := decodeBinError(payload)
			if err != nil {
				return nil, err
			}
			return nil, remoteError(e.Code, e.Msg, e.Transient)
		default:
			return nil, fmt.Errorf("%w: unexpected response frame %q", ErrProtocol, typ)
		}
	}
}

// Pipeline batches requests on one connection without waiting for their
// responses: Queue writes each request immediately, Collect reads the
// responses back in request order. One network round trip covers the whole
// batch instead of one per statement.
type Pipeline struct {
	c    *TCPConn
	tags []uint32
	err  error
}

// PipeResult is one pipelined statement's outcome.
type PipeResult struct {
	Result *vertica.Result
	Err    error
}

// Pipeline starts a request pipeline on the connection. The connection
// must not be used for other operations until Collect returns.
func (c *TCPConn) Pipeline() *Pipeline { return &Pipeline{c: c} }

// Queue writes one query request without reading its response. The first
// Queue performs the protocol handshake; pipelining needs the binary
// protocol, so a connection negotiated down to v1 refuses.
func (p *Pipeline) Queue(ctx context.Context, sql string) error {
	if p.err != nil {
		return p.err
	}
	if err := p.c.handshake(ctx); err != nil {
		p.err = err
		return err
	}
	if p.c.negotiated < protocolV2 {
		p.err = fmt.Errorf("%w: pipelining requires protocol v2, have v%d", ErrProtocol, p.c.negotiated)
		return p.err
	}
	tag, err := p.c.sendBinRequest(ctx, frameBinQuery, sql)
	if err != nil {
		p.err = err
		return err
	}
	p.tags = append(p.tags, tag)
	return nil
}

// Collect reads every queued response, in request order. Statement
// failures land in their PipeResult and later responses are still read;
// connection-level failures (I/O errors, lost frame sync) abort the whole
// collection. The pipeline is reset either way and can be reused.
func (p *Pipeline) Collect(ctx context.Context) ([]PipeResult, error) {
	tags := p.tags
	p.tags = nil
	if p.err != nil {
		err := p.err
		p.err = nil
		return nil, err
	}
	out := make([]PipeResult, 0, len(tags))
	for _, tag := range tags {
		res, err := p.c.readBinResponse(ctx, tag, nil)
		if err != nil && !errors.Is(err, ErrRemote) {
			return nil, err
		}
		out = append(out, PipeResult{Result: res, Err: err})
	}
	return out, nil
}

// DialConnector is a client.Connector over TCP: it maps the cluster node
// addresses (as reported by v_catalog.nodes) to the TCP endpoints their
// servers listen on.
type DialConnector struct {
	// Endpoints maps node address → "host:port".
	Endpoints map[string]string
	// DialTimeout bounds connection establishment (0 = DefaultDialTimeout).
	DialTimeout time.Duration
	// OpTimeout is applied to every dialed connection via SetOpTimeout
	// (0 = no per-operation deadline).
	OpTimeout time.Duration
	// Protocol caps the negotiated protocol version (0 = newest; 1 forces
	// the legacy JSON framing).
	Protocol int
}

// Connect implements client.Connector.
func (d *DialConnector) Connect(ctx context.Context, addr string) (client.Conn, error) {
	ep, ok := d.Endpoints[addr]
	if !ok {
		// Allow dialing a raw endpoint directly.
		ep = addr
	}
	dt := d.DialTimeout
	if dt <= 0 {
		dt = DefaultDialTimeout
	}
	return DialContext(ctx, ep,
		WithDialTimeout(dt),
		WithOpTimeout(d.OpTimeout),
		WithProtocol(d.Protocol),
	)
}
