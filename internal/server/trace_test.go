package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"vsfabric/internal/core"
	"vsfabric/internal/obs"
	"vsfabric/internal/spark"
	"vsfabric/internal/types"
)

// TestFrameCodecRoundTripProperty drives the codec with randomized frame
// types and payload sizes (including empty payloads) and checks every frame
// survives a write/read round trip byte-for-byte, alone and back-to-back on
// one stream.
func TestFrameCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{0, 1, 2, 4, 5, 64<<10 - 1, 64 << 10}
	var stream bytes.Buffer
	type frame struct {
		typ     byte
		payload []byte
	}
	var written []frame
	for i := 0; i < 200; i++ {
		var n int
		if i < len(sizes) {
			n = sizes[i]
		} else {
			n = rng.Intn(1 << 12)
		}
		payload := make([]byte, n)
		rng.Read(payload)
		typ := byte(rng.Intn(256))
		// Round trip the frame alone.
		var one bytes.Buffer
		if err := writeFrame(&one, typ, payload); err != nil {
			t.Fatal(err)
		}
		if one.Len() != 5+n {
			t.Fatalf("frame of %d bytes encoded to %d, want %d", n, one.Len(), 5+n)
		}
		gotTyp, gotPayload, err := readFrame(&one)
		if err != nil {
			t.Fatalf("frame %d (type %d, %d bytes): %v", i, typ, n, err)
		}
		if gotTyp != typ || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("frame %d did not round trip (type %d→%d, %d→%d bytes)",
				i, typ, gotTyp, n, len(gotPayload))
		}
		// And queue it on the shared stream.
		if err := writeFrame(&stream, typ, payload); err != nil {
			t.Fatal(err)
		}
		written = append(written, frame{typ, payload})
	}
	// All frames must come back off the shared stream in order.
	for i, w := range written {
		typ, payload, err := readFrame(&stream)
		if err != nil {
			t.Fatalf("stream frame %d: %v", i, err)
		}
		if typ != w.typ || !bytes.Equal(payload, w.payload) {
			t.Fatalf("stream frame %d corrupted", i)
		}
	}
	if stream.Len() != 0 {
		t.Fatalf("%d trailing bytes after draining the stream", stream.Len())
	}
}

// TestReadFrameRejectsOversized: a header advertising more than maxFrame
// bytes is rejected before any payload allocation.
func TestReadFrameRejectsOversized(t *testing.T) {
	hdr := []byte{frameQuery, 0xFF, 0xFF, 0xFF, 0xFF} // ~4GiB claim
	if _, _, err := readFrame(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized frame header should be rejected")
	}
	// Exactly at the limit is still accepted (header-wise); the truncated
	// body surfaces as an I/O error, not the limit error.
	var at [5]byte
	at[0] = frameQuery
	binary.BigEndian.PutUint32(at[1:], uint32(maxFrame))
	_, _, err := readFrame(bytes.NewReader(at[:]))
	if err == nil || strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("frame at exactly maxFrame should pass the limit check, got %v", err)
	}
}

// writeCounter counts Write calls so the test can pin the coalesced-frame
// contract: one frame, one Write.
type writeCounter struct {
	bytes.Buffer
	calls int
}

func (w *writeCounter) Write(p []byte) (int, error) {
	w.calls++
	return w.Buffer.Write(p)
}

func TestWriteFrameSingleWrite(t *testing.T) {
	for _, payload := range [][]byte{nil, []byte("x"), bytes.Repeat([]byte("ab"), 4096)} {
		var w writeCounter
		if err := writeFrame(&w, frameResult, payload); err != nil {
			t.Fatal(err)
		}
		if w.calls != 1 {
			t.Fatalf("writeFrame used %d Write calls for %d bytes, want 1", w.calls, len(payload))
		}
		typ, got, err := readFrame(&w.Buffer)
		if err != nil || typ != frameResult || !bytes.Equal(got, payload) {
			t.Fatalf("coalesced frame did not round trip: %v", err)
		}
	}
}

// TestDistributedTraceOverTCP is the end-to-end acceptance path: an S2V job
// through DialConnector against TCP-served nodes must come out the other side
// as ONE distributed trace — a single s2v.job root whose phase spans and
// remote engine spans all share its TraceID with intact parent links — with
// populated latency histograms and an exportable Chrome trace.
func TestDistributedTraceOverTCP(t *testing.T) {
	cl, d := startCluster(t, 4)
	sc := spark.NewContext(spark.Conf{NumExecutors: 2, CoresPerExecutor: 4})
	src := core.NewDefaultSource(d).WithObserver(cl.Obs())
	spark.RegisterSource("vertica-traced", src)
	cl.Obs().Reset()

	schema := types.NewSchema(
		types.Column{Name: "id", T: types.Int64},
		types.Column{Name: "val", T: types.Float64},
	)
	rows := make([]types.Row, 300)
	for i := range rows {
		rows[i] = types.Row{types.IntValue(int64(i)), types.FloatValue(float64(i))}
	}
	df := spark.CreateDataFrame(sc, schema, rows, 4)
	opts := map[string]string{"host": cl.Node(0).Addr, "table": "traced_t", "numPartitions": "6", "jobname": "traced_job"}
	if err := df.Write().Format("vertica-traced").Options(opts).Mode(spark.SaveOverwrite).Save(); err != nil {
		t.Fatal(err)
	}

	spans := cl.Obs().Spans()
	byID := make(map[uint64]obs.Span, len(spans))
	var roots []obs.Span
	for _, sp := range spans {
		byID[sp.SpanID] = sp
		if sp.Root() {
			roots = append(roots, sp)
		}
	}
	if len(roots) != 1 || roots[0].Name != "s2v.job" {
		t.Fatalf("roots = %+v, want exactly one s2v.job root", roots)
	}
	root := roots[0]
	if !root.OK() {
		t.Fatalf("root span failed: %+v", root)
	}

	engineNodes := map[string]bool{}
	var copied int64
	for _, sp := range spans {
		// Every span of the job — driver phases and remote engine work alike —
		// belongs to the one trace.
		if sp.TraceID != root.TraceID {
			t.Fatalf("span %q on trace %#x, want %#x: %+v", sp.Name, sp.TraceID, root.TraceID, sp)
		}
		if sp.Root() {
			continue
		}
		parent, ok := byID[sp.ParentID]
		if !ok {
			t.Fatalf("span %q has dangling parent %#x", sp.Name, sp.ParentID)
		}
		if parent.TraceID != sp.TraceID {
			t.Fatalf("span %q parented across traces", sp.Name)
		}
		switch sp.Name {
		case "execute", "copy":
			engineNodes[sp.Node] = true
			// Engine spans were opened on the far side of a TCP connection;
			// their parent must be a connector-side span and their peer the
			// wire-carried executor (or driver) name, not a socket address.
			if !strings.HasPrefix(parent.Name, "s2v.") {
				t.Fatalf("engine span %q parented under %q, want an s2v span", sp.Name, parent.Name)
			}
			if sp.Peer == "" || strings.Contains(sp.Peer, ":") {
				t.Fatalf("engine span peer %q, want the wire-carried client name", sp.Peer)
			}
			if sp.Name == "copy" {
				copied += sp.Rows
			}
		}
	}
	if len(engineNodes) < 2 {
		t.Fatalf("engine spans touched %d nodes, want >= 2 (got %v)", len(engineNodes), engineNodes)
	}
	if copied != 300 {
		t.Fatalf("copy spans loaded %d rows, want 300", copied)
	}

	// The SQL surface: one job_traces row rolling the whole trace up.
	sess, err := cl.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Execute("SELECT trace_id, job_type, span_count, node_count, db_rows, success FROM v_monitor.job_traces")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("job_traces has %d rows, want 1: %v", len(res.Rows), res.Rows)
	}
	row := res.Rows[0]
	if row[0].S != fmt.Sprintf("%016x", root.TraceID) {
		t.Fatalf("job_traces trace_id = %q, want %016x", row[0].S, root.TraceID)
	}
	if row[1].S != "s2v.job" || row[2].I != int64(len(spans)) || row[3].I < 2 {
		t.Fatalf("job_traces rollup wrong: %v", row)
	}
	if row[4].I < 300 || !row[5].B {
		t.Fatalf("job_traces db_rows/success wrong: %v", row)
	}

	// Latency histograms for the engine operations carry non-zero
	// percentiles.
	res, err = sess.Execute("SELECT operation, sample_count, p50_us, p95_us, p99_us FROM v_monitor.latency_histograms")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, r := range res.Rows {
		seen[r[0].S] = true
		if r[0].S != "execute" && r[0].S != "copy" {
			continue
		}
		if r[1].I == 0 || r[2].F <= 0 || r[3].F <= 0 || r[4].F <= 0 {
			t.Fatalf("histogram row for %q has zero stats: %v", r[0].S, r)
		}
	}
	if !seen["execute"] || !seen["copy"] {
		t.Fatalf("latency_histograms missing engine operations: %v", seen)
	}

	// The trace exports as loadable Chrome trace-event JSON.
	var buf bytes.Buffer
	if err := cl.Obs().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) <= len(spans) {
		t.Fatalf("chrome trace has %d events for %d spans (metadata missing?)", len(doc.TraceEvents), len(spans))
	}
}

// TestUntracedRequestsStandAlone: requests sent outside any job context carry
// no trace fields and the server opens fresh roots for them, with the peer
// falling back to the socket address.
func TestUntracedRequestsStandAlone(t *testing.T) {
	cl, d := startCluster(t, 2)
	cl.Obs().Reset()
	conn, err := d.Connect(bg, cl.Node(0).Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Execute(bg, "CREATE TABLE lone (id INTEGER)"); err != nil {
		t.Fatal(err)
	}
	spans := cl.Obs().Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if !sp.Root() || sp.TraceID != sp.SpanID {
		t.Fatalf("untraced request should open a root span: %+v", sp)
	}
	if !strings.Contains(sp.Peer, ":") {
		t.Fatalf("peer should fall back to the socket address, got %q", sp.Peer)
	}
}
