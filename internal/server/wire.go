package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"vsfabric/internal/pool"
	"vsfabric/internal/vertica"
)

// This file is the v2 binary wire codec and the shared sentinel registry.
//
// Protocol negotiation: a v2 client's first frame is a hello ('H') naming
// the highest version it speaks; the server answers with another hello
// carrying min(client, server), and both sides switch to that version. A
// client whose first frame is a v1 JSON request ('Q'/'C') gets the v1 loop
// with no handshake — old clients never see a frame type they don't know.
//
// v2 frames (same 1-byte type + 4-byte big-endian length framing as v1):
//
//	'q' query    — tag(4) traceID(8) parentID(8) peer(uv+bytes) sql(uv+bytes)
//	'c' copy     — same layout; 'D' data / 'E' end frames follow, untagged
//	               (a COPY owns the connection until its stream terminates)
//	'b' batch    — tag(4) + storage.EncodeColumns payload: one chunk of the
//	               result's column vectors, streamed without row boxing
//	'z' done     — tag(4) flags(1) rowsAffected(uv) epoch(uv)
//	               [flags&doneHasCopy: loaded(uv) rejected(uv) nsample(uv)
//	               sample strings (uv+bytes each)]
//	'x' error    — tag(4) flags(1: transient) code(uv+bytes) msg(uv+bytes)
//
// Requests carry a client-chosen tag; every response frame echoes the tag
// of the request it answers. Responses come back in request order (the
// server executes one statement at a time per connection), so a client may
// pipeline any number of 'q' requests and match responses FIFO.
//
// A result carrying any schema sends at least one batch frame even with
// zero rows, so "SELECT ... LIMIT 0" schema probes survive the trip.
const (
	protocolV1 = 1
	protocolV2 = 2

	// maxProtocol is the highest version this build speaks.
	maxProtocol = protocolV2
)

// v2 frame types ('H' is shared by both directions of the handshake).
const (
	frameHello    = 'H'
	frameBinQuery = 'q'
	frameBinCopy  = 'c'
	frameBatch    = 'b'
	frameDone     = 'z'
	frameBinError = 'x'
)

const doneHasCopy = 1 << 0
const errTransient = 1 << 0

// wireBatchRows bounds rows per batch frame, so arbitrarily large results
// stream in bounded frames well under maxFrame.
const wireBatchRows = 16384

// hello is the tiny JSON handshake payload (negotiated once per
// connection; JSON keeps it inspectable and trivially extensible).
type hello struct {
	MaxVersion int `json:"max_version,omitempty"` // client → server
	Version    int `json:"version,omitempty"`     // server → client
}

// ErrProtocol reports a wire-protocol violation (malformed frame, unexpected
// frame type, broken COPY stream). It crosses the wire as a typed code so
// the far side can tell a torn stream from a SQL error.
var ErrProtocol = errors.New("server: protocol error")

// wireCodes is the sentinel registry: the single table both halves of the
// wire share. Adding an errors.Is-able sentinel to the protocol is one line
// here. Order matters where chains overlap (a removed-node error must not
// report as the more general node-down).
var wireCodes = []struct {
	code string
	err  error
}{
	{"node_removed", vertica.ErrNodeRemoved},
	{"node_down", vertica.ErrNodeDown},
	{"session_limit", vertica.ErrSessionLimit},
	{"pool_queue_timeout", pool.ErrQueueTimeout},
	{"pool_rejected", pool.ErrRejected},
	{"protocol_error", ErrProtocol},
}

// Typed pool sentinels re-exported under wire-level names, so client code
// can match admission refusals without importing the engine's pool package.
var (
	ErrPoolQueueTimeout = pool.ErrQueueTimeout
	ErrPoolRejected     = pool.ErrRejected
)

// sentinelCode maps an error chain to its wire code ("" when none applies).
func sentinelCode(e error) string {
	for _, wc := range wireCodes {
		if errors.Is(e, wc.err) {
			return wc.code
		}
	}
	return ""
}

// sentinelFor is the client-side inverse of sentinelCode.
func sentinelFor(code string) error {
	for _, wc := range wireCodes {
		if wc.code == code {
			return wc.err
		}
	}
	return nil
}

// binRequest is the decoded form of a 'q'/'c' frame.
type binRequest struct {
	Tag      uint32
	TraceID  uint64
	ParentID uint64
	Peer     string
	SQL      string
}

func encodeBinRequest(r binRequest) []byte {
	buf := make([]byte, 0, 24+len(r.Peer)+len(r.SQL)+8)
	buf = binary.BigEndian.AppendUint32(buf, r.Tag)
	buf = binary.BigEndian.AppendUint64(buf, r.TraceID)
	buf = binary.BigEndian.AppendUint64(buf, r.ParentID)
	buf = appendString(buf, r.Peer)
	buf = appendString(buf, r.SQL)
	return buf
}

func decodeBinRequest(p []byte) (binRequest, error) {
	var r binRequest
	if len(p) < 20 {
		return r, fmt.Errorf("%w: request frame of %d bytes", ErrProtocol, len(p))
	}
	r.Tag = binary.BigEndian.Uint32(p[0:4])
	r.TraceID = binary.BigEndian.Uint64(p[4:12])
	r.ParentID = binary.BigEndian.Uint64(p[12:20])
	br := bytes.NewReader(p[20:])
	var err error
	if r.Peer, err = readString(br); err != nil {
		return r, fmt.Errorf("%w: request peer: %v", ErrProtocol, err)
	}
	if r.SQL, err = readString(br); err != nil {
		return r, fmt.Errorf("%w: request sql: %v", ErrProtocol, err)
	}
	if br.Len() != 0 {
		return r, fmt.Errorf("%w: %d trailing bytes in request", ErrProtocol, br.Len())
	}
	return r, nil
}

// binDone is the decoded form of a 'z' frame: the statement's scalar
// outcome, sent after any batch frames.
type binDone struct {
	Tag          uint32
	RowsAffected int64
	Epoch        uint64
	Copy         *vertica.CopyResult
}

func encodeBinDone(d binDone) []byte {
	buf := make([]byte, 0, 32)
	buf = binary.BigEndian.AppendUint32(buf, d.Tag)
	var flags byte
	if d.Copy != nil {
		flags |= doneHasCopy
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(d.RowsAffected))
	buf = binary.AppendUvarint(buf, d.Epoch)
	if d.Copy != nil {
		buf = binary.AppendUvarint(buf, uint64(d.Copy.Loaded))
		buf = binary.AppendUvarint(buf, uint64(d.Copy.Rejected))
		buf = binary.AppendUvarint(buf, uint64(len(d.Copy.RejectedSample)))
		for _, s := range d.Copy.RejectedSample {
			buf = appendString(buf, s)
		}
	}
	return buf
}

func decodeBinDone(p []byte) (binDone, error) {
	var d binDone
	if len(p) < 5 {
		return d, fmt.Errorf("%w: done frame of %d bytes", ErrProtocol, len(p))
	}
	d.Tag = binary.BigEndian.Uint32(p[0:4])
	flags := p[4]
	if flags&^doneHasCopy != 0 {
		return d, fmt.Errorf("%w: unknown done flags %#x", ErrProtocol, flags)
	}
	br := bytes.NewReader(p[5:])
	ra, err := readUvarint(br)
	if err != nil {
		return d, fmt.Errorf("%w: done rows_affected: %v", ErrProtocol, err)
	}
	d.RowsAffected = int64(ra)
	if d.Epoch, err = readUvarint(br); err != nil {
		return d, fmt.Errorf("%w: done epoch: %v", ErrProtocol, err)
	}
	if flags&doneHasCopy != 0 {
		cp := &vertica.CopyResult{}
		loaded, err := readUvarint(br)
		if err != nil {
			return d, fmt.Errorf("%w: done copy stats: %v", ErrProtocol, err)
		}
		rejected, err := readUvarint(br)
		if err != nil {
			return d, fmt.Errorf("%w: done copy stats: %v", ErrProtocol, err)
		}
		cp.Loaded, cp.Rejected = int64(loaded), int64(rejected)
		n, err := readUvarint(br)
		if err != nil {
			return d, fmt.Errorf("%w: done copy sample: %v", ErrProtocol, err)
		}
		if n > uint64(maxFrame) {
			return d, fmt.Errorf("%w: done copy sample count %d", ErrProtocol, n)
		}
		for i := uint64(0); i < n; i++ {
			s, err := readString(br)
			if err != nil {
				return d, fmt.Errorf("%w: done copy sample: %v", ErrProtocol, err)
			}
			cp.RejectedSample = append(cp.RejectedSample, s)
		}
		d.Copy = cp
	}
	if br.Len() != 0 {
		return d, fmt.Errorf("%w: %d trailing bytes in done frame", ErrProtocol, br.Len())
	}
	return d, nil
}

// binError is the decoded form of an 'x' frame.
type binError struct {
	Tag       uint32
	Transient bool
	Code      string
	Msg       string
}

func encodeBinError(e binError) []byte {
	buf := make([]byte, 0, 16+len(e.Code)+len(e.Msg))
	buf = binary.BigEndian.AppendUint32(buf, e.Tag)
	var flags byte
	if e.Transient {
		flags |= errTransient
	}
	buf = append(buf, flags)
	buf = appendString(buf, e.Code)
	buf = appendString(buf, e.Msg)
	return buf
}

func decodeBinError(p []byte) (binError, error) {
	var e binError
	if len(p) < 5 {
		return e, fmt.Errorf("%w: error frame of %d bytes", ErrProtocol, len(p))
	}
	e.Tag = binary.BigEndian.Uint32(p[0:4])
	if p[4]&^errTransient != 0 {
		return e, fmt.Errorf("%w: unknown error flags %#x", ErrProtocol, p[4])
	}
	e.Transient = p[4]&errTransient != 0
	br := bytes.NewReader(p[5:])
	var err error
	if e.Code, err = readString(br); err != nil {
		return e, fmt.Errorf("%w: error code: %v", ErrProtocol, err)
	}
	if e.Msg, err = readString(br); err != nil {
		return e, fmt.Errorf("%w: error message: %v", ErrProtocol, err)
	}
	if br.Len() != 0 {
		return e, fmt.Errorf("%w: %d trailing bytes in error frame", ErrProtocol, br.Len())
	}
	return e, nil
}

// tagOf extracts the leading response tag shared by 'b'/'z'/'x' frames.
func tagOf(p []byte) (uint32, error) {
	if len(p) < 4 {
		return 0, fmt.Errorf("%w: response frame of %d bytes", ErrProtocol, len(p))
	}
	return binary.BigEndian.Uint32(p[0:4]), nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// readUvarint is binary.ReadUvarint plus a minimality check: every value has
// exactly one encoding on this wire. Accepting padded forms (0x80 0x00 for
// zero) would make decode(encode(x)) lossy for byte-level comparison, so
// frame hashes, fuzz round-trips, and any future signing would disagree on
// semantically equal frames.
func readUvarint(br *bytes.Reader) (uint64, error) {
	before := br.Len()
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, err
	}
	if before-br.Len() != len(binary.AppendUvarint(nil, v)) {
		return 0, fmt.Errorf("non-minimal uvarint encoding of %d", v)
	}
	return v, nil
}

func readString(br *bytes.Reader) (string, error) {
	n, err := readUvarint(br)
	if err != nil {
		return "", err
	}
	if n > uint64(br.Len()) {
		return "", fmt.Errorf("string of %d bytes exceeds remaining %d", n, br.Len())
	}
	b := make([]byte, n)
	if _, err := br.Read(b); err != nil {
		return "", err
	}
	return string(b), nil
}
