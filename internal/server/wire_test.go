package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"vsfabric/internal/pool"
	"vsfabric/internal/resilience"
	"vsfabric/internal/storage"
	"vsfabric/internal/types"
	"vsfabric/internal/vertica"
)

// --- binary codec property tests -----------------------------------------

func TestBinRequestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	randString := func(max int) string {
		b := make([]byte, rng.Intn(max))
		rng.Read(b)
		return string(b)
	}
	for i := 0; i < 500; i++ {
		in := binRequest{
			Tag:      rng.Uint32(),
			TraceID:  rng.Uint64(),
			ParentID: rng.Uint64(),
			Peer:     randString(64),
			SQL:      randString(512),
		}
		out, err := decodeBinRequest(encodeBinRequest(in))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if out != in {
			t.Fatalf("iteration %d: %+v != %+v", i, out, in)
		}
	}
}

func TestBinDoneRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 500; i++ {
		in := binDone{
			Tag:          rng.Uint32(),
			RowsAffected: int64(rng.Uint32()),
			Epoch:        rng.Uint64(),
		}
		if rng.Intn(2) == 0 {
			cp := &vertica.CopyResult{Loaded: int64(rng.Intn(1e6)), Rejected: int64(rng.Intn(100))}
			for j := rng.Intn(4); j > 0; j-- {
				cp.RejectedSample = append(cp.RejectedSample, fmt.Sprintf("bad row %d", j))
			}
			in.Copy = cp
		}
		out, err := decodeBinDone(encodeBinDone(in))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if out.Tag != in.Tag || out.RowsAffected != in.RowsAffected || out.Epoch != in.Epoch {
			t.Fatalf("iteration %d: %+v != %+v", i, out, in)
		}
		switch {
		case (out.Copy == nil) != (in.Copy == nil):
			t.Fatalf("iteration %d: copy presence mismatch", i)
		case in.Copy != nil:
			if out.Copy.Loaded != in.Copy.Loaded || out.Copy.Rejected != in.Copy.Rejected ||
				len(out.Copy.RejectedSample) != len(in.Copy.RejectedSample) {
				t.Fatalf("iteration %d: %+v != %+v", i, out.Copy, in.Copy)
			}
		}
	}
}

func TestBinErrorRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	codes := []string{"", "node_down", "pool_queue_timeout", "protocol_error", "made_up"}
	for i := 0; i < 500; i++ {
		in := binError{
			Tag:       rng.Uint32(),
			Transient: rng.Intn(2) == 0,
			Code:      codes[rng.Intn(len(codes))],
			Msg:       fmt.Sprintf("error %d", rng.Uint32()),
		}
		out, err := decodeBinError(encodeBinError(in))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if out != in {
			t.Fatalf("iteration %d: %+v != %+v", i, out, in)
		}
	}
}

// TestBinCodecRejectsTruncated feeds every prefix of valid frames to the
// decoders: none may panic, and all must fail cleanly with ErrProtocol.
func TestBinCodecRejectsTruncated(t *testing.T) {
	req := encodeBinRequest(binRequest{Tag: 7, TraceID: 9, ParentID: 11, Peer: "exec-1", SQL: "SELECT 1"})
	done := encodeBinDone(binDone{Tag: 7, RowsAffected: 3, Epoch: 12, Copy: &vertica.CopyResult{Loaded: 5, RejectedSample: []string{"x"}}})
	berr := encodeBinError(binError{Tag: 7, Transient: true, Code: "node_down", Msg: "boom"})
	for n := 0; n < len(req); n++ {
		if _, err := decodeBinRequest(req[:n]); !errors.Is(err, ErrProtocol) {
			t.Fatalf("request prefix %d: %v", n, err)
		}
	}
	for n := 0; n < len(done); n++ {
		if _, err := decodeBinDone(done[:n]); !errors.Is(err, ErrProtocol) {
			t.Fatalf("done prefix %d: %v", n, err)
		}
	}
	for n := 0; n < len(berr); n++ {
		if _, err := decodeBinError(berr[:n]); !errors.Is(err, ErrProtocol) {
			t.Fatalf("error prefix %d: %v", n, err)
		}
	}
	// Trailing garbage after a well-formed request must be rejected too:
	// silently ignoring it would mask framing bugs.
	if _, err := decodeBinRequest(append(append([]byte(nil), req...), 0xFF)); !errors.Is(err, ErrProtocol) {
		t.Fatalf("trailing garbage: %v", err)
	}
}

// FuzzBinRequestDecode asserts the request decoder never panics and that
// anything it accepts re-encodes byte-identically (a decoded value is a
// faithful reading, not a lossy one).
func FuzzBinRequestDecode(f *testing.F) {
	f.Add(encodeBinRequest(binRequest{Tag: 1, SQL: "SELECT 1"}))
	f.Add(encodeBinRequest(binRequest{Tag: 2, TraceID: 3, ParentID: 4, Peer: "p", SQL: "COPY t FROM STDIN"}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeBinRequest(data)
		if err != nil {
			return
		}
		if got := encodeBinRequest(req); !bytes.Equal(got, data) {
			t.Fatalf("re-encode mismatch: %x != %x", got, data)
		}
	})
}

// FuzzBinDoneDecode does the same for the done-frame decoder, whose
// variable-length copy-stats section is the richest part of the codec.
func FuzzBinDoneDecode(f *testing.F) {
	f.Add(encodeBinDone(binDone{Tag: 1, RowsAffected: 10, Epoch: 2}))
	f.Add(encodeBinDone(binDone{Tag: 9, Copy: &vertica.CopyResult{Loaded: 4, Rejected: 1, RejectedSample: []string{"r"}}}))
	f.Add([]byte{0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := decodeBinDone(data)
		if err != nil {
			return
		}
		if got := encodeBinDone(d); !bytes.Equal(got, data) {
			t.Fatalf("re-encode mismatch: %x != %x", got, data)
		}
	})
}

func FuzzBinErrorDecode(f *testing.F) {
	f.Add(encodeBinError(binError{Tag: 1, Code: "node_down", Msg: "m"}))
	f.Add(encodeBinError(binError{Tag: 2, Transient: true, Msg: "boom"}))
	f.Add([]byte{0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := decodeBinError(data)
		if err != nil {
			return
		}
		if got := encodeBinError(e); !bytes.Equal(got, data) {
			t.Fatalf("re-encode mismatch: %x != %x", got, data)
		}
	})
}

// TestWireCodeRegistry pins the registry round trip for every entry, and
// the precedence that an error chain carrying both node sentinels reports
// the more specific one.
func TestWireCodeRegistry(t *testing.T) {
	for _, wc := range wireCodes {
		if got := sentinelCode(fmt.Errorf("wrapped: %w", wc.err)); got != wc.code {
			t.Errorf("sentinelCode(%v) = %q, want %q", wc.err, got, wc.code)
		}
		if got := sentinelFor(wc.code); got != wc.err {
			t.Errorf("sentinelFor(%q) = %v, want %v", wc.code, got, wc.err)
		}
	}
	if sentinelCode(errors.New("plain")) != "" || sentinelFor("nope") != nil {
		t.Error("unknown errors and codes must map to zero values")
	}
	both := fmt.Errorf("%w: %w", vertica.ErrNodeRemoved, vertica.ErrNodeDown)
	if got := sentinelCode(both); got != "node_removed" {
		t.Errorf("removed+down chain coded %q, want node_removed", got)
	}
}

// --- protocol negotiation -------------------------------------------------

// TestHandshakeDowngrade runs the same workload against servers capped at
// each protocol version and a client capped at v1: every combination must
// negotiate the min of the two and produce identical results.
func TestHandshakeDowngrade(t *testing.T) {
	cl := vertica.MustNewCluster(1)
	cases := []struct {
		name           string
		serverMax      int
		clientOpts     []Option
		wantNegotiated int
	}{
		{"v2-both", 0, nil, protocolV2},
		{"server-v1", protocolV1, nil, protocolV1},
		{"client-v1", 0, []Option{WithProtocol(protocolV1)}, protocolV1},
		{"both-v1", protocolV1, []Option{WithProtocol(protocolV1)}, protocolV1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv := New(cl, 0)
			srv.MaxProtocol = tc.serverMax
			ep, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			c, err := DialContext(bg, ep, tc.clientOpts...)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			table := "t_" + strings.ReplaceAll(tc.name, "-", "_")
			for _, sql := range []string{
				"CREATE TABLE " + table + " (id INTEGER, name VARCHAR)",
				"INSERT INTO " + table + " VALUES (1, 'a'), (2, 'b')",
			} {
				if _, err := c.Execute(bg, sql); err != nil {
					t.Fatal(err)
				}
			}
			res, err := c.Execute(bg, "SELECT id, name FROM "+table+" ORDER BY id")
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != 2 || res.Rows[1][1].S != "b" {
				t.Fatalf("rows = %v", res.Rows)
			}
			if c.Protocol() != tc.wantNegotiated {
				t.Fatalf("negotiated v%d, want v%d", c.Protocol(), tc.wantNegotiated)
			}
			// Zero-row results keep their schema on every protocol: the
			// connector's schema probe depends on it.
			probe, err := c.Execute(bg, "SELECT * FROM "+table+" WHERE id = 99")
			if err != nil {
				t.Fatal(err)
			}
			if probe.Schema.NumCols() != 2 || len(probe.Rows) != 0 {
				t.Fatalf("probe schema %v rows %v", probe.Schema, probe.Rows)
			}
		})
	}
}

// --- pipelining -----------------------------------------------------------

// TestPipelineOrderAndErrors queues a mixed batch (including a failing
// statement mid-pipeline) and checks responses come back complete, in
// order, with the failure isolated to its own slot.
func TestPipelineOrderAndErrors(t *testing.T) {
	cl := vertica.MustNewCluster(1)
	srv := New(cl, 0)
	ep, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialContext(bg, ep)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute(bg, "CREATE TABLE seq (n INTEGER)"); err != nil {
		t.Fatal(err)
	}

	p := c.Pipeline()
	const batch = 40
	for i := 0; i < batch; i++ {
		sql := fmt.Sprintf("INSERT INTO seq VALUES (%d)", i)
		if i == 17 {
			sql = "SELECT * FROM no_such_table"
		}
		if err := p.Queue(bg, sql); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Queue(bg, "SELECT COUNT(*) FROM seq"); err != nil {
		t.Fatal(err)
	}
	results, err := p.Collect(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != batch+1 {
		t.Fatalf("%d results, want %d", len(results), batch+1)
	}
	for i, r := range results[:batch] {
		if i == 17 {
			if r.Err == nil || !errors.Is(r.Err, ErrRemote) {
				t.Fatalf("slot 17: err = %v, want remote error", r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("slot %d: %v", i, r.Err)
		}
		if r.Result.RowsAffected != 1 {
			t.Fatalf("slot %d: rows affected %d", i, r.Result.RowsAffected)
		}
	}
	count := results[batch]
	if count.Err != nil || count.Result.Rows[0][0].AsInt() != batch-1 {
		t.Fatalf("final count: %+v", count)
	}

	// The pipeline resets after Collect and the connection still serves
	// plain requests.
	if err := p.Queue(bg, "SELECT 1 FROM seq WHERE n = 0"); err != nil {
		t.Fatal(err)
	}
	if results, err = p.Collect(bg); err != nil || len(results) != 1 || results[0].Err != nil {
		t.Fatalf("reused pipeline: %v %+v", err, results)
	}
	if _, err := c.Execute(bg, "SELECT COUNT(*) FROM seq"); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineConcurrentConnections drives many pipelining connections in
// parallel (run under -race in CI) to shake out shared-state races in the
// server's per-connection loops.
func TestPipelineConcurrentConnections(t *testing.T) {
	cl := vertica.MustNewCluster(1)
	srv := New(cl, 0)
	ep, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	setup, err := DialContext(bg, ep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Execute(bg, "CREATE TABLE race_t (n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	setup.Close()

	const conns, perConn = 8, 25
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := DialContext(bg, ep)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			p := c.Pipeline()
			for j := 0; j < perConn; j++ {
				if err := p.Queue(bg, fmt.Sprintf("INSERT INTO race_t VALUES (%d)", id*perConn+j)); err != nil {
					t.Error(err)
					return
				}
			}
			results, err := p.Collect(bg)
			if err != nil {
				t.Error(err)
				return
			}
			for _, r := range results {
				if r.Err != nil {
					t.Error(r.Err)
				}
			}
		}(i)
	}
	wg.Wait()
	check, err := DialContext(bg, ep)
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	res, err := check.Execute(bg, "SELECT COUNT(*) FROM race_t")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != conns*perConn {
		t.Fatalf("count = %d, want %d", got, conns*perConn)
	}
}

// --- streaming ------------------------------------------------------------

// TestExecuteStreamBatches checks a large result arrives as multiple
// columnar batches whose concatenation equals the boxed result.
func TestExecuteStreamBatches(t *testing.T) {
	cl := vertica.MustNewCluster(1)
	srv := New(cl, 0)
	ep, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialContext(bg, ep)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Execute(bg, "CREATE TABLE big (n INTEGER)"); err != nil {
		t.Fatal(err)
	}
	var ins strings.Builder
	ins.WriteString("INSERT INTO big VALUES (0)")
	const total = 3 * wireBatchRows / 2
	for i := 1; i < total; i++ {
		fmt.Fprintf(&ins, ", (%d)", i)
	}
	if _, err := c.Execute(bg, ins.String()); err != nil {
		t.Fatal(err)
	}

	var batches, rows int
	res, err := c.ExecuteStream(bg, "SELECT n FROM big", func(schema types.Schema, cols []storage.Column, n int) error {
		batches++
		rows += n
		if schema.NumCols() != 1 || len(cols) != 1 || cols[0].Len() != n {
			return fmt.Errorf("batch shape: %d cols, %d rows", len(cols), n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != total {
		t.Fatalf("streamed %d rows, want %d", rows, total)
	}
	if batches < 2 {
		t.Fatalf("result of %d rows should stream in >1 batch, got %d", total, batches)
	}
	if len(res.Rows) != 0 || res.Schema.NumCols() != 1 {
		t.Fatalf("streamed result should carry schema but no rows: %+v", res)
	}
}

// --- error handling -------------------------------------------------------

// TestPoolSentinelsOverWire checks admission-control refusals keep their
// errors.Is identity and transient classification across the wire.
func TestPoolSentinelsOverWire(t *testing.T) {
	cl := vertica.MustNewCluster(1)
	srv := New(cl, 0)
	ep, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialContext(bg, ep)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, sql := range []string{
		"CREATE TABLE pt (n INTEGER)",
		"INSERT INTO pt VALUES (1)",
		"CREATE RESOURCE POOL tiny MAXCONCURRENCY 1 MAXQUEUEDEPTH NONE QUEUETIMEOUT '5ms'",
		"SET RESOURCE_POOL = tiny",
	} {
		if _, err := c.Execute(bg, sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	rel, _, err := mustAdmit(t, cl, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	_, qerr := c.Execute(bg, "SELECT * FROM pt")
	rel()
	if !errors.Is(qerr, pool.ErrQueueTimeout) || !errors.Is(qerr, ErrRemote) {
		t.Fatalf("queue timeout lost identity over wire: %v", qerr)
	}
	if !resilience.IsTransient(qerr) {
		t.Fatalf("queue timeout should be transient over wire: %v", qerr)
	}
	// The session recovers once the pool drains.
	if _, err := c.Execute(bg, "SELECT * FROM pt"); err != nil {
		t.Fatalf("session did not recover after queue timeout: %v", err)
	}
}

// TestMidCopyProtocolErrorAbortsTxn is the regression test for the frame
// desync bug: a malformed frame inside a COPY stream used to leave the
// server parsing copy data as requests, with the client's open transaction
// holding its locks server-side. Now the server rolls the transaction back,
// answers with a typed protocol error, and closes.
func TestMidCopyProtocolErrorAbortsTxn(t *testing.T) {
	cl := vertica.MustNewCluster(1)
	srv := New(cl, 0)
	ep, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialContext(bg, ep)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, sql := range []string{
		"CREATE TABLE ct (n INTEGER, s VARCHAR)",
		"BEGIN",
		"INSERT INTO ct VALUES (1, 'pre')",
	} {
		if _, err := c.Execute(bg, sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}

	// Send the copy-begin by hand, then violate the protocol mid-stream: a
	// 'Q' frame where only 'D'/'E' are legal.
	tag, err := c.sendBinRequest(bg, frameBinCopy, "COPY ct FROM STDIN")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.writeFrame(bg, frameCopyData, []byte("2,mid\n")); err != nil {
		t.Fatal(err)
	}
	if err := c.writeFrame(bg, frameQuery, []byte(`{"sql":"SELECT 1"}`)); err != nil {
		t.Fatal(err)
	}
	_, err = c.readBinResponse(bg, tag, nil)
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("mid-copy violation: err = %v, want typed protocol error", err)
	}
	// The server must have closed the connection: re-syncing is impossible.
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := readFrame(c.conn); err == nil {
		t.Fatal("server kept the connection open after a broken COPY stream")
	}

	// The aborted transaction must not leak: a fresh session sees no
	// uncommitted rows and can write immediately (no lock left behind).
	c2, err := DialContext(bg, ep)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	res, err := c2.Execute(bg, "SELECT COUNT(*) FROM ct")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsInt(); got != 0 {
		t.Fatalf("%d rows visible from aborted txn, want 0", got)
	}
	if _, err := c2.Execute(bg, "INSERT INTO ct VALUES (9, 'post')"); err != nil {
		t.Fatalf("aborted txn left the table locked: %v", err)
	}
}

// TestCopyEngineErrorKeepsSession checks the benign sibling of the desync
// case: when the engine rejects a COPY but the client stream is intact, the
// session continues.
func TestCopyEngineErrorKeepsSession(t *testing.T) {
	cl := vertica.MustNewCluster(1)
	srv := New(cl, 0)
	ep, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialContext(bg, ep)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.CopyFrom(bg, "COPY no_such_table FROM STDIN", strings.NewReader("1\n2\n")); err == nil {
		t.Fatal("COPY into a missing table should fail")
	}
	if _, err := c.Execute(bg, "SELECT LAST_EPOCH()"); err != nil {
		t.Fatalf("session should survive a failed COPY: %v", err)
	}
}

func mustAdmit(t *testing.T, cl *vertica.Cluster, name string) (func(), pool.Result, error) {
	t.Helper()
	p, err := cl.Pools().Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return p.Admit(context.Background(), 0, "test-hold")
}
