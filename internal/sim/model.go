package sim

import (
	"fmt"
	"math"
)

// Topology describes a simulated cluster in the paper's terms: a Vertica
// cluster, a Spark cluster, and optionally a separate HDFS cluster (§4.7.2
// uses a dedicated 4-node HDFS cluster so the comparison is symmetric).
type Topology struct {
	VerticaNodes int
	SparkNodes   int
	HDFSNodes    int
}

// VName returns the name of Vertica node i.
func VName(i int) string { return fmt.Sprintf("v%d", i) }

// SName returns the name of Spark node i.
func SName(i int) string { return fmt.Sprintf("s%d", i) }

// HName returns the name of HDFS node i.
func HName(i int) string { return fmt.Sprintf("h%d", i) }

// CostModel holds the calibrated unit costs of the reference testbed (§4.1:
// 2×8-core Xeons with SMT, 2×1 GbE NICs, 3 HDDs, 64 GB RAM per machine).
// All CPU costs are core-seconds per unit; a flow's rate is additionally
// capped at one core per single-threaded pipeline side.
type CostModel struct {
	NICBytesPerSec  float64 // per direction, per interface
	NICCongestionK  float64 // per-flow efficiency degradation on a NIC
	DiskBytesPerSec float64 // data-disk sequential throughput
	DiskCongestionK float64 // seek-thrash degradation per concurrent stream
	// DiskWriteFactor discounts bulk-load disk writes relative to raw bytes
	// (write-behind batching and ROS encoding make COPY's disk writes
	// cheaper per input byte than reads).
	DiskWriteFactor float64

	// SingleNetwork collapses the dedicated internal interface onto the
	// client-facing one (the paper's testbed pins internal traffic to its
	// own 1 GbE, §4.1; flip this for the locality ablation on shared-NIC
	// hardware).
	SingleNetwork bool

	VerticaCores      float64 // cores available to the data-movement resource pool
	SparkCores        float64 // cores per Spark worker (75% of 32 logical, §4.1)
	SparkSlotsPerNode int     // concurrent tasks per Spark worker

	CPUCost   map[CPUKind]float64 // core-seconds per unit
	FixedCost map[FixedKind]float64
}

// DefaultModel returns the cost model calibrated against the paper's
// reported anchors (Figure 6: V2S 497 s @32 / 475 s @128 partitions, S2V
// 252 s @128; Table 2: single-stream ~38 MBps, saturated ~120 MBps;
// Figure 11: 5 s / 3 s one-row overheads; Table 4: COPY 238 s).
func DefaultModel() *CostModel {
	return &CostModel{
		NICBytesPerSec:  125e6,
		NICCongestionK:  0.002,
		DiskBytesPerSec: 140e6,
		DiskCongestionK: 0.02,
		DiskWriteFactor: 0.6,

		VerticaCores:      16,
		SparkCores:        24,
		SparkSlotsPerNode: 24,

		CPUCost: map[CPUKind]float64{
			CPUScanRow:     40e-9,       // visit + hash-range check per row
			CPUWireEncode:  1.0 / 40e6,  // ≈40 MBps single-stream result encode
			CPUWireDecode:  1.0 / 150e6, // client-side decode is cheap
			CPUAvroEncode:  1.0 / 55e6,  // Spark-side Avro encode per byte
			CPUCopyParse:   1.0 / 5e6,   // Vertica network-COPY ingest (parse+sort+ROS) per byte, aggregated over the pool's cores
			CPUCSVParse:    1.0 / 75e6,  // CSV parse per byte
			CPUCSVFormat:   1.0 / 120e6, // CSV format per byte
			CPUInsertRow:   9e-3,        // per-row INSERT statement path (JDBC save)
			CPURowOverhead: 1.8e-6,      // per-row pipeline overhead (Figure 9)
			CPUColfileEnc:  1.0 / 160e6,
			CPUColfileDec:  1.0 / 200e6,
			CPUModelScore:  2e-6, // per row scored by a PMML UDx
			CPUHashRow:     60e-9,
		},
		FixedCost: map[FixedKind]float64{
			FixedConnect:   0.5,
			FixedQuery:     0.18,
			FixedCommit:    0.2,
			FixedStatusOp:  0.12,
			FixedTableDDL:  0.25,
			FixedJobSetup:  1.2,
			FixedTaskStart: 0.05,
		},
	}
}

// BuildSystem constructs the simulated hardware for a topology. Every node
// gets a CPU resource and two NIC interfaces (external and internal — the
// paper pins Vertica-internal traffic to its own 1 GbE interface); data
// nodes (Vertica, HDFS) also get a data-disk resource. Each Spark node gets
// an executor slot pool.
func (m *CostModel) BuildSystem(topo Topology) *System {
	sys := NewSystem()
	addNIC := func(name string) {
		sys.AddResource(Resource{Name: "out:" + name, Capacity: m.NICBytesPerSec, CongestionK: m.NICCongestionK})
		sys.AddResource(Resource{Name: "in:" + name, Capacity: m.NICBytesPerSec, CongestionK: m.NICCongestionK})
		sys.AddResource(Resource{Name: "iout:" + name, Capacity: m.NICBytesPerSec, CongestionK: m.NICCongestionK})
		sys.AddResource(Resource{Name: "iin:" + name, Capacity: m.NICBytesPerSec, CongestionK: m.NICCongestionK})
	}
	for i := 0; i < topo.VerticaNodes; i++ {
		n := VName(i)
		sys.AddResource(Resource{Name: "cpu:" + n, Capacity: m.VerticaCores})
		sys.AddResource(Resource{Name: "disk:" + n, Capacity: m.DiskBytesPerSec, CongestionK: m.DiskCongestionK})
		addNIC(n)
	}
	for i := 0; i < topo.SparkNodes; i++ {
		n := SName(i)
		sys.AddResource(Resource{Name: "cpu:" + n, Capacity: m.SparkCores})
		addNIC(n)
		sys.AddPool(Pool{Name: "slots:" + n, Slots: m.SparkSlotsPerNode})
	}
	for i := 0; i < topo.HDFSNodes; i++ {
		n := HName(i)
		sys.AddResource(Resource{Name: "cpu:" + n, Capacity: m.SparkCores})
		sys.AddResource(Resource{Name: "disk:" + n, Capacity: m.DiskBytesPerSec, CongestionK: m.DiskCongestionK})
		addNIC(n)
	}
	return sys
}

// ioutRes / iinRes name the interfaces internal (node-to-node) traffic
// travels on: the dedicated second NIC normally, the shared client-facing
// NIC when SingleNetwork is set.
func (m *CostModel) ioutRes(node string) string {
	if m.SingleNetwork {
		return "out:" + node
	}
	return "iout:" + node
}

func (m *CostModel) iinRes(node string) string {
	if m.SingleNetwork {
		return "in:" + node
	}
	return "iin:" + node
}

// BuildTasks converts a recorded trace into simulator tasks, scaling every
// work amount (bytes, rows) by scale — fixed overheads do not scale. This is
// how a laptop-scale real run with, say, 1M rows projects to the paper's
// 100M-row experiments (scale=100).
func (m *CostModel) BuildTasks(tr *Trace, scale float64) []*Task {
	recs := tr.Tasks()
	out := make([]*Task, 0, len(recs))
	for _, rec := range recs {
		t := &Task{ID: rec.ID}
		if rec.ExecNode != "" {
			t.Pool = "slots:" + rec.ExecNode
		}
		for _, e := range rec.Events() {
			t.Steps = append(t.Steps, m.steps(e, scale)...)
		}
		out = append(out, t)
	}
	return out
}

// steps converts one recorded event into simulator steps (empty = no work).
// A load flow expands to two sequential steps — encode, then transfer —
// because an S2V task "is alternately encoding its data into Avro format or
// transferring the data to Vertica" (§4.2.1), which is why S2V benefits
// from more parallelism than V2S.
func (m *CostModel) steps(e Event, scale float64) []Step {
	one := func(s Step) []Step {
		if s == nil {
			return nil
		}
		return []Step{s}
	}
	switch e.Type {
	case FixedEv:
		return one(FixedStep{Seconds: m.FixedCost[e.FixedKind]})
	case CPUEv:
		cost := m.CPUCost[e.CPUKind]
		units := e.Units * scale
		if units <= 0 || cost <= 0 {
			return nil
		}
		return one(FlowStep{
			Units:   units,
			Demands: []Demand{{Res: "cpu:" + e.Node, PerUnit: cost}},
			RateCap: 1 / cost,
		})
	case DiskEv:
		bytes := e.Bytes * scale
		if bytes <= 0 {
			return nil
		}
		return one(FlowStep{
			Units:   bytes,
			Demands: []Demand{{Res: "disk:" + e.Node, PerUnit: 1}},
		})
	case QueryFlowEv:
		return one(m.queryFlowStep(e, scale))
	case LoadFlowEv:
		return m.loadFlowSteps(e, scale)
	case BlockFlowEv:
		return one(m.blockFlowStep(e, scale))
	default:
		return nil
	}
}

// queryFlowStep models a pipelined result stream: scan work on every node
// holding requested rows, gather traffic over the internal NICs, a
// single-threaded encode on the connected node, the external wire, and a
// decode on the client.
func (m *CostModel) queryFlowStep(e Event, scale float64) Step {
	bytes := e.ResultBytes * scale
	if bytes <= 0 {
		// Pure-scan query (pushed-down COUNT, status reads): CPU only.
		total := 0.0
		for _, r := range e.ScanRows {
			total += r
		}
		units := total * scale
		if units <= 0 {
			return nil
		}
		var dem []Demand
		for node, r := range e.ScanRows {
			dem = append(dem, Demand{Res: "cpu:" + node, PerUnit: m.CPUCost[CPUScanRow] * r / total})
		}
		return FlowStep{Units: units, Demands: dem, RateCap: 1 / m.CPUCost[CPUScanRow]}
	}
	encode := m.CPUCost[CPUWireEncode]
	decode := m.CPUCost[CPUWireDecode]
	rowOvh := m.CPUCost[CPURowOverhead] * e.ResultRows / e.ResultBytes
	dem := []Demand{
		{Res: "out:" + e.VNode, PerUnit: 1},
		{Res: "in:" + e.CNode, PerUnit: 1},
		{Res: "cpu:" + e.CNode, PerUnit: decode + rowOvh},
	}
	vcpu := encode + rowOvh
	for node, rows := range e.ScanRows {
		c := m.CPUCost[CPUScanRow] * rows / e.ResultBytes
		if node == e.VNode {
			vcpu += c
		} else {
			dem = append(dem, Demand{Res: "cpu:" + node, PerUnit: c})
		}
	}
	dem = append(dem, Demand{Res: "cpu:" + e.VNode, PerUnit: vcpu})
	for pair, b := range e.Shuffle {
		frac := b / e.ResultBytes
		dem = append(dem, Demand{Res: m.ioutRes(pair[0]), PerUnit: frac})
		dem = append(dem, Demand{Res: m.iinRes(pair[1]), PerUnit: frac})
	}
	return FlowStep{
		Units:   bytes,
		Demands: dem,
		RateCap: 1 / math.Max(vcpu, decode+rowOvh),
	}
}

// blockFlowStep models one HDFS block transfer: disk on the datanode, the
// wire between datanode and client, a codec on the client, and — for writes
// — the replication pipeline over the datanodes' internal interfaces with a
// disk hit per replica.
func (m *CostModel) blockFlowStep(e Event, scale float64) Step {
	bytes := e.Bytes * scale
	if bytes <= 0 {
		return nil
	}
	codec := m.CPUCost[e.CPUKind]
	var dem []Demand
	if e.Write {
		// Writes are buffered sequential appends: the wire and the
		// replication pipeline bind, not the spindle.
		dem = []Demand{
			{Res: "cpu:" + e.CNode, PerUnit: codec},
			{Res: "out:" + e.CNode, PerUnit: 1},
			{Res: "in:" + e.VNode, PerUnit: 1},
		}
	} else {
		dem = []Demand{
			{Res: "disk:" + e.VNode, PerUnit: 1},
			{Res: "out:" + e.VNode, PerUnit: 1},
			{Res: "in:" + e.CNode, PerUnit: 1},
			{Res: "cpu:" + e.CNode, PerUnit: codec},
		}
	}
	for pair, b := range e.Route {
		frac := b / e.Bytes
		dem = append(dem,
			Demand{Res: "iout:" + pair[0], PerUnit: frac},
			Demand{Res: "iin:" + pair[1], PerUnit: frac},
		)
	}
	cap := 0.0
	if codec > 0 {
		cap = 1 / codec
	}
	return FlowStep{Units: bytes, Demands: dem, RateCap: cap}
}

// loadFlowSteps models a bulk load as two sequential stages per task:
// (1) client-side encode of the task's data (one core), then (2) the
// transfer — the wire into the connected node, a single parse thread there,
// per-row insert work on the INSERT path, hash-routing traffic to segment
// owners over the internal NICs. Node-local COPY (§4.7.3) skips the client
// stage and reads the node's disk instead of the wire.
func (m *CostModel) loadFlowSteps(e Event, scale float64) []Step {
	bytes := e.WireBytes * scale
	if bytes <= 0 {
		return nil
	}
	enc := m.CPUCost[e.EncodeKind]
	parse := m.CPUCost[e.ParseKind]
	rowOvh := 0.0
	if e.ResultRows > 0 {
		rowOvh = m.CPUCost[CPURowOverhead] * e.ResultRows / e.WireBytes
	}
	insert := 0.0
	if e.InsertRows > 0 {
		insert = m.CPUCost[CPUInsertRow] * e.InsertRows / e.WireBytes
	}
	vcpu := parse + insert + rowOvh
	ccpu := enc + rowOvh

	// Disk writes land on the segment owners: the routed fraction on the
	// route targets, the remainder on the connected node.
	var steps []Step
	var dem []Demand
	if e.Local {
		dem = []Demand{
			{Res: "disk:" + e.VNode, PerUnit: 1},
			{Res: "cpu:" + e.VNode, PerUnit: vcpu},
		}
	} else {
		steps = append(steps, FlowStep{
			Units:   bytes,
			Demands: []Demand{{Res: "cpu:" + e.CNode, PerUnit: ccpu}},
			RateCap: 1 / ccpu,
		})
		dem = []Demand{
			{Res: "out:" + e.CNode, PerUnit: 1},
			{Res: "in:" + e.VNode, PerUnit: 1},
			{Res: "cpu:" + e.VNode, PerUnit: vcpu},
		}
	}
	for pair, b := range e.Route {
		frac := b / e.WireBytes
		dem = append(dem,
			Demand{Res: m.ioutRes(pair[0]), PerUnit: frac},
			Demand{Res: m.iinRes(pair[1]), PerUnit: frac},
		)
	}
	// Network COPY parses in parallel inside the server, so the transfer
	// stage has no single-thread cap; node-local file COPY and the per-row
	// INSERT path are single-threaded per session.
	cap := 0.0
	if e.Local || insert > 0 {
		cap = 1 / vcpu
	}
	steps = append(steps, FlowStep{
		Units:   bytes,
		Demands: dem,
		RateCap: cap,
	})
	return steps
}

// SerialSeconds estimates how long a single record's events take when run
// alone on the system (no contention): the driver-side setup/teardown work
// the benchmarks add serially around a job's parallel phase.
func (m *CostModel) SerialSeconds(sys *System, rec *TaskRec, scale float64) float64 {
	total := 0.0
	for _, e := range rec.Events() {
		for _, step := range m.steps(e, scale) {
			switch st := step.(type) {
			case FixedStep:
				total += st.Seconds
			case FlowStep:
				rate := st.RateCap
				for _, d := range st.Demands {
					if d.PerUnit <= 0 {
						continue
					}
					if r := sys.Resource(d.Res); r != nil {
						if c := r.Capacity / d.PerUnit; rate == 0 || c < rate {
							rate = c
						}
					}
				}
				if rate > 0 {
					total += st.Units / rate
				}
			}
		}
	}
	return total
}
