package sim

import "vsfabric/internal/obs"

// Recorder adapts a TaskRec to the obs.Observer hook, so the performance
// model consumes the same event stream as the production collector: engine
// and resilience code emit obs.Events whose Payload is a sim.Event, and this
// observer unwraps them into the task's cost trace. Span-end notifications
// carry no simulated cost and are ignored.
//
// A Recorder with a nil Rec is valid and drops everything (TaskRec methods
// are nil-safe), matching the rest of the sim package's contract.
type Recorder struct {
	Rec *TaskRec
}

// SpanEnd implements obs.Observer; spans carry wall-clock timings, not
// simulated cost, so the recorder ignores them.
func (Recorder) SpanEnd(obs.Span) {}

// Event implements obs.Observer: cost-model events ride in ev.Payload.
func (r Recorder) Event(ev obs.Event) {
	if e, ok := ev.Payload.(Event); ok {
		r.Rec.Add(e)
	}
}
