// Package sim provides the performance layer of the reproduction: a
// flow-level discrete-event simulator with max-min fair sharing of node
// resources (NIC in/out, CPU cores, executor slots), a resource-usage
// recorder that components fill in during real (laptop-scale) runs, and a
// cost model of the paper's testbed (§4.1: 1 GbE NICs, 16-core nodes, 4:8
// Vertica:Spark clusters).
//
// The functional layer moves real bytes; this package answers "how long
// would that work have taken on the paper's hardware" by replaying recorded
// per-task work sequences — scaled to the paper's data sizes — through the
// simulator. EXPERIMENTS.md compares the resulting shapes against the
// paper's figures.
package sim

import (
	"fmt"
	"math"
	"sort"
)

// Resource is a capacity-constrained node resource (a NIC direction, a CPU).
type Resource struct {
	Name     string
	Capacity float64 // units per second (bytes/s for NICs, core-seconds/s for CPUs)
	// CongestionK degrades effective capacity as flows pile on:
	// eff = Capacity / (1 + CongestionK * activeFlows). Models per-connection
	// overhead (context switching, TCP bookkeeping) that makes 256-way
	// parallelism slower than 128-way in Figure 6.
	CongestionK float64
}

// Demand expresses how many units of a resource one unit of flow work
// consumes (e.g. 1.0 byte of NIC per byte transferred; 2e-8 core-seconds of
// CPU per byte encoded).
type Demand struct {
	Res     string
	PerUnit float64
}

// Step is one stage of a task: either a fixed latency or a resource flow.
type Step interface{ isStep() }

// FixedStep is a latency with no resource contention (connection setup,
// commit round-trips).
type FixedStep struct {
	Seconds float64
}

func (FixedStep) isStep() {}

// FlowStep is Units of work that consume resources as they progress. The
// flow's rate (units/sec) is the max-min fair allocation subject to every
// demanded resource and the per-flow RateCap (0 = uncapped). RateCap models
// single-threaded pipelines: one JDBC result stream encodes on one core.
type FlowStep struct {
	Units   float64
	Demands []Demand
	RateCap float64
}

func (FlowStep) isStep() {}

// Task is a sequence of steps executed in order, optionally gated on a slot
// pool (a Spark executor core, a Vertica client session).
type Task struct {
	ID    string
	Pool  string // slot pool held for the task's whole duration; "" = none
	Steps []Step
}

// Pool is a counting semaphore: at most Slots tasks from the pool run at
// once; others queue FIFO.
type Pool struct {
	Name  string
	Slots int
}

// System is the simulated hardware: resources and slot pools.
type System struct {
	resources map[string]*Resource
	pools     map[string]*Pool
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{resources: make(map[string]*Resource), pools: make(map[string]*Pool)}
}

// AddResource registers a resource.
func (s *System) AddResource(r Resource) {
	rc := r
	s.resources[r.Name] = &rc
}

// AddPool registers a slot pool.
func (s *System) AddPool(p Pool) {
	pc := p
	s.pools[p.Name] = &pc
}

// Resource returns the named resource, or nil.
func (s *System) Resource(name string) *Resource { return s.resources[name] }

// UtilSample is one point of a resource utilization time series.
type UtilSample struct {
	T    float64 // seconds since job start
	Used float64 // units consumed during [T, T+interval) divided by interval
}

// Result is the outcome of a simulation run.
type Result struct {
	Makespan float64
	TaskEnd  map[string]float64
	// Utilization holds per-resource time series sampled at SampleInterval.
	Utilization map[string][]UtilSample
}

// Config controls simulation output detail.
type Config struct {
	// SampleInterval is the utilization sampling period in seconds
	// (0 disables sampling).
	SampleInterval float64
	// Horizon caps utilization sampling (0 = no cap). The run itself always
	// completes.
	Horizon float64
}

type taskState struct {
	task     *Task
	stepIdx  int
	remain   float64 // remaining units (flow) or seconds (fixed)
	running  bool    // holds a slot (or needs none) and is executing
	finished bool
	endTime  float64
}

// Simulate runs the tasks to completion and returns the makespan, per-task
// end times, and resource utilization series. All tasks are released at t=0.
func Simulate(system *System, tasks []*Task, cfg Config) (*Result, error) {
	states := make([]*taskState, len(tasks))
	waiting := make(map[string][]*taskState) // pool -> FIFO queue
	free := make(map[string]int)
	for name, p := range system.pools {
		free[name] = p.Slots
	}
	for i, t := range tasks {
		st := &taskState{task: t}
		states[i] = st
		if len(t.Steps) == 0 {
			st.finished = true
			continue
		}
		st.remain = stepSize(t.Steps[0])
		if t.Pool == "" {
			st.running = true
			continue
		}
		if _, ok := system.pools[t.Pool]; !ok {
			return nil, fmt.Errorf("sim: task %q references unknown pool %q", t.ID, t.Pool)
		}
		if free[t.Pool] > 0 {
			free[t.Pool]--
			st.running = true
		} else {
			waiting[t.Pool] = append(waiting[t.Pool], st)
		}
	}

	res := &Result{TaskEnd: make(map[string]float64), Utilization: make(map[string][]UtilSample)}
	usage := make(map[string]float64) // units consumed in current sample window
	now := 0.0
	lastSample := 0.0

	flushSample := func(until float64) {
		if cfg.SampleInterval <= 0 {
			return
		}
		for lastSample+cfg.SampleInterval <= until+1e-12 {
			t0 := lastSample
			if cfg.Horizon > 0 && t0 >= cfg.Horizon {
				lastSample = until
				for k := range usage {
					usage[k] = 0
				}
				return
			}
			for name := range system.resources {
				res.Utilization[name] = append(res.Utilization[name], UtilSample{
					T:    t0,
					Used: usage[name] / cfg.SampleInterval,
				})
				usage[name] = 0
			}
			lastSample += cfg.SampleInterval
		}
	}

	for iter := 0; ; iter++ {
		if iter > 50_000_000 {
			return nil, fmt.Errorf("sim: too many events (livelock?)")
		}
		// Collect running flows and fixed steps.
		var flows []*taskState
		anyRunning := false
		for _, st := range states {
			if st.finished || !st.running {
				continue
			}
			anyRunning = true
			if _, ok := st.task.Steps[st.stepIdx].(FlowStep); ok {
				flows = append(flows, st)
			}
		}
		if !anyRunning {
			break
		}

		rates, err := fairShare(system, flows)
		if err != nil {
			return nil, err
		}

		// Time to next completion.
		dt := math.Inf(1)
		for _, st := range states {
			if st.finished || !st.running {
				continue
			}
			switch st.task.Steps[st.stepIdx].(type) {
			case FixedStep:
				if st.remain < dt {
					dt = st.remain
				}
			case FlowStep:
				r := rates[st]
				if r > 0 {
					if t := st.remain / r; t < dt {
						dt = t
					}
				}
			}
		}
		if math.IsInf(dt, 1) {
			return nil, fmt.Errorf("sim: no progress possible (zero-rate flows)")
		}
		// Clip dt to the next sample boundary so usage windows stay exact.
		if cfg.SampleInterval > 0 {
			next := lastSample + cfg.SampleInterval
			if now+dt > next && next > now {
				dt = next - now
			}
		}

		// Advance.
		for _, st := range states {
			if st.finished || !st.running {
				continue
			}
			switch s := st.task.Steps[st.stepIdx].(type) {
			case FixedStep:
				st.remain -= dt
			case FlowStep:
				r := rates[st]
				st.remain -= r * dt
				for _, d := range s.Demands {
					usage[d.Res] += r * dt * d.PerUnit
				}
			}
		}
		now += dt
		flushSample(now)

		// Complete steps / tasks; release and grant slots.
		for _, st := range states {
			if st.finished || !st.running || st.remain > 1e-9 {
				continue
			}
			st.stepIdx++
			if st.stepIdx < len(st.task.Steps) {
				st.remain = stepSize(st.task.Steps[st.stepIdx])
				continue
			}
			st.finished = true
			st.running = false
			st.endTime = now
			res.TaskEnd[st.task.ID] = now
			if p := st.task.Pool; p != "" {
				if q := waiting[p]; len(q) > 0 {
					nxt := q[0]
					waiting[p] = q[1:]
					nxt.running = true
				} else {
					free[p]++
				}
			}
		}
	}

	res.Makespan = now
	flushSample(now)
	return res, nil
}

func stepSize(s Step) float64 {
	switch st := s.(type) {
	case FixedStep:
		return st.Seconds
	case FlowStep:
		return st.Units
	default:
		return 0
	}
}

// fairShare computes max-min fair rates (units/sec) for the active flows via
// progressive filling: raise every unfrozen flow's rate uniformly until a
// resource saturates or a flow hits its cap, freeze, repeat.
func fairShare(system *System, flows []*taskState) (map[*taskState]float64, error) {
	rates := make(map[*taskState]float64, len(flows))
	if len(flows) == 0 {
		return rates, nil
	}
	// Effective capacities with congestion degradation.
	activePerRes := make(map[string]int)
	for _, st := range flows {
		fs := st.task.Steps[st.stepIdx].(FlowStep)
		for _, d := range fs.Demands {
			if d.PerUnit > 0 {
				activePerRes[d.Res]++
			}
		}
	}
	capLeft := make(map[string]float64)
	for name, r := range system.resources {
		c := r.Capacity
		if r.CongestionK > 0 {
			c /= 1 + r.CongestionK*float64(activePerRes[name])
		}
		capLeft[name] = c
	}

	unfrozen := make(map[*taskState]bool, len(flows))
	base := make(map[*taskState]float64, len(flows)) // already-frozen allocation is final; unfrozen start at 0
	for _, st := range flows {
		fs := st.task.Steps[st.stepIdx].(FlowStep)
		for _, d := range fs.Demands {
			if _, ok := capLeft[d.Res]; !ok {
				return nil, fmt.Errorf("sim: flow %q demands unknown resource %q", st.task.ID, d.Res)
			}
		}
		unfrozen[st] = true
		base[st] = 0
	}

	for len(unfrozen) > 0 {
		// λ = max uniform increment to all unfrozen flows.
		lambda := math.Inf(1)
		demandSum := make(map[string]float64)
		for st := range unfrozen {
			fs := st.task.Steps[st.stepIdx].(FlowStep)
			for _, d := range fs.Demands {
				demandSum[d.Res] += d.PerUnit
			}
		}
		for resName, sum := range demandSum {
			if sum <= 0 {
				continue
			}
			if l := capLeft[resName] / sum; l < lambda {
				lambda = l
			}
		}
		// Flow caps can bind earlier.
		for st := range unfrozen {
			fs := st.task.Steps[st.stepIdx].(FlowStep)
			if fs.RateCap > 0 {
				if room := fs.RateCap - base[st]; room < lambda {
					lambda = room
				}
			}
		}
		if math.IsInf(lambda, 1) {
			// No binding constraint at all: flows with no positive demands
			// and no caps complete instantly; give them a huge rate.
			for st := range unfrozen {
				rates[st] = math.MaxFloat64 / 4
				delete(unfrozen, st)
			}
			break
		}
		if lambda < 0 {
			lambda = 0
		}
		// Apply increment, charge resources.
		for st := range unfrozen {
			fs := st.task.Steps[st.stepIdx].(FlowStep)
			base[st] += lambda
			for _, d := range fs.Demands {
				capLeft[d.Res] -= lambda * d.PerUnit
			}
		}
		// Freeze flows at binding constraints.
		frozeAny := false
		var saturated []string
		for resName, sum := range demandSum {
			if sum > 0 && capLeft[resName] <= 1e-9*sum+1e-15 {
				saturated = append(saturated, resName)
			}
		}
		sort.Strings(saturated)
		satSet := make(map[string]bool, len(saturated))
		for _, r := range saturated {
			satSet[r] = true
		}
		for st := range unfrozen {
			fs := st.task.Steps[st.stepIdx].(FlowStep)
			capped := fs.RateCap > 0 && base[st] >= fs.RateCap-1e-12
			hitRes := false
			for _, d := range fs.Demands {
				if d.PerUnit > 0 && satSet[d.Res] {
					hitRes = true
					break
				}
			}
			if capped || hitRes {
				rates[st] = base[st]
				delete(unfrozen, st)
				frozeAny = true
			}
		}
		if !frozeAny {
			// Numerical corner: freeze everything at current allocation.
			for st := range unfrozen {
				rates[st] = base[st]
				delete(unfrozen, st)
			}
		}
	}
	return rates, nil
}
