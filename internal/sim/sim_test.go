package sim

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFixedStepsSequence(t *testing.T) {
	sys := NewSystem()
	tasks := []*Task{{ID: "a", Steps: []Step{FixedStep{Seconds: 1}, FixedStep{Seconds: 2}}}}
	res, err := Simulate(sys, tasks, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Makespan, 3, 1e-9) {
		t.Errorf("makespan = %v, want 3", res.Makespan)
	}
}

func TestSingleFlowBandwidth(t *testing.T) {
	sys := NewSystem()
	sys.AddResource(Resource{Name: "link", Capacity: 100})
	tasks := []*Task{{ID: "f", Steps: []Step{FlowStep{
		Units:   1000,
		Demands: []Demand{{Res: "link", PerUnit: 1}},
	}}}}
	res, err := Simulate(sys, tasks, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Makespan, 10, 1e-9) {
		t.Errorf("makespan = %v, want 10", res.Makespan)
	}
}

func TestFairSharing(t *testing.T) {
	sys := NewSystem()
	sys.AddResource(Resource{Name: "link", Capacity: 100})
	// Two equal flows share the link: each runs at 50, finishing at 20;
	// total work conserved.
	var tasks []*Task
	for _, id := range []string{"a", "b"} {
		tasks = append(tasks, &Task{ID: id, Steps: []Step{FlowStep{
			Units:   1000,
			Demands: []Demand{{Res: "link", PerUnit: 1}},
		}}})
	}
	res, err := Simulate(sys, tasks, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Makespan, 20, 1e-9) {
		t.Errorf("makespan = %v, want 20", res.Makespan)
	}
}

func TestRateCapLeavesSlack(t *testing.T) {
	sys := NewSystem()
	sys.AddResource(Resource{Name: "link", Capacity: 100})
	// A capped flow (10/s) and an uncapped one: the uncapped flow should
	// get the leftover 90/s under max-min fairness with caps.
	tasks := []*Task{
		{ID: "capped", Steps: []Step{FlowStep{Units: 100, RateCap: 10, Demands: []Demand{{Res: "link", PerUnit: 1}}}}},
		{ID: "big", Steps: []Step{FlowStep{Units: 900, Demands: []Demand{{Res: "link", PerUnit: 1}}}}},
	}
	res, err := Simulate(sys, tasks, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.TaskEnd["capped"], 10, 1e-6) {
		t.Errorf("capped end = %v, want 10", res.TaskEnd["capped"])
	}
	if !almostEq(res.TaskEnd["big"], 10, 1e-6) {
		t.Errorf("big end = %v, want 10 (90/s while capped runs)", res.TaskEnd["big"])
	}
}

func TestMultiResourceBottleneck(t *testing.T) {
	sys := NewSystem()
	sys.AddResource(Resource{Name: "cpu", Capacity: 10})
	sys.AddResource(Resource{Name: "net", Capacity: 100})
	// Flow demands 0.5 cpu per unit: cpu binds at 20 units/s even though the
	// net would allow 100.
	tasks := []*Task{{ID: "f", Steps: []Step{FlowStep{
		Units: 200,
		Demands: []Demand{
			{Res: "net", PerUnit: 1},
			{Res: "cpu", PerUnit: 0.5},
		},
	}}}}
	res, err := Simulate(sys, tasks, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Makespan, 10, 1e-9) {
		t.Errorf("makespan = %v, want 10 (cpu-bound)", res.Makespan)
	}
}

func TestSlotPoolQueueing(t *testing.T) {
	sys := NewSystem()
	sys.AddPool(Pool{Name: "slots", Slots: 2})
	var tasks []*Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, &Task{
			ID: string(rune('a' + i)), Pool: "slots",
			Steps: []Step{FixedStep{Seconds: 5}},
		})
	}
	res, err := Simulate(sys, tasks, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.Makespan, 10, 1e-9) {
		t.Errorf("makespan = %v, want 10 (two waves of two)", res.Makespan)
	}
}

func TestUnknownPoolErrors(t *testing.T) {
	sys := NewSystem()
	_, err := Simulate(sys, []*Task{{ID: "x", Pool: "nope", Steps: []Step{FixedStep{Seconds: 1}}}}, Config{})
	if err == nil {
		t.Error("unknown pool should error")
	}
}

func TestUnknownResourceErrors(t *testing.T) {
	sys := NewSystem()
	_, err := Simulate(sys, []*Task{{ID: "x", Steps: []Step{FlowStep{
		Units: 1, Demands: []Demand{{Res: "nope", PerUnit: 1}},
	}}}}, Config{})
	if err == nil {
		t.Error("unknown resource should error")
	}
}

func TestCongestionDegradesCapacity(t *testing.T) {
	run := func(n int, k float64) float64 {
		sys := NewSystem()
		sys.AddResource(Resource{Name: "link", Capacity: 100, CongestionK: k})
		var tasks []*Task
		for i := 0; i < n; i++ {
			tasks = append(tasks, &Task{ID: string(rune('a' + i)), Steps: []Step{FlowStep{
				Units: 100, Demands: []Demand{{Res: "link", PerUnit: 1}},
			}}})
		}
		res, err := Simulate(sys, tasks, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan
	}
	base := run(4, 0)
	congested := run(4, 0.1)
	if !almostEq(base, 4, 1e-9) {
		t.Errorf("base = %v", base)
	}
	if congested <= base {
		t.Errorf("congestion should slow the run: %v vs %v", congested, base)
	}
	if !almostEq(congested, 4*1.4, 1e-6) {
		t.Errorf("congested = %v, want %v", congested, 4*1.4)
	}
}

func TestUtilizationSampling(t *testing.T) {
	sys := NewSystem()
	sys.AddResource(Resource{Name: "link", Capacity: 100})
	tasks := []*Task{{ID: "f", Steps: []Step{FlowStep{
		Units: 500, Demands: []Demand{{Res: "link", PerUnit: 1}},
	}}}}
	res, err := Simulate(sys, tasks, Config{SampleInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	util := res.Utilization["link"]
	if len(util) != 5 {
		t.Fatalf("samples = %d, want 5", len(util))
	}
	for _, u := range util {
		if !almostEq(u.Used, 100, 1e-6) {
			t.Errorf("sample at %v: used %v, want 100", u.T, u.Used)
		}
	}
}

func TestTraceRecorderNilSafe(t *testing.T) {
	var tr *Trace
	rec := tr.Task("x", "s0") // nil trace → nil rec
	rec.Fixed(FixedConnect)   // must not panic
	rec.CPU("s0", CPUHashRow, 5)
	rec.Add(Event{})
	if tr.Tasks() != nil {
		t.Error("nil trace should have no tasks")
	}
}

func TestBuildTasksScaling(t *testing.T) {
	m := DefaultModel()
	tr := NewTrace()
	rec := tr.Task("t1", "s0")
	rec.Add(Event{
		Type: QueryFlowEv, VNode: "v0", CNode: "s0",
		ResultBytes: 1000, ResultRows: 10,
		ScanRows: map[string]float64{"v0": 100},
	})
	tasks := m.BuildTasks(tr, 50)
	if len(tasks) != 1 || len(tasks[0].Steps) != 1 {
		t.Fatalf("tasks = %+v", tasks)
	}
	fs := tasks[0].Steps[0].(FlowStep)
	if fs.Units != 50000 {
		t.Errorf("scaled units = %v, want 50000", fs.Units)
	}
	if tasks[0].Pool != "slots:s0" {
		t.Errorf("pool = %q", tasks[0].Pool)
	}
}

func TestLoadFlowSplitsEncodeAndTransfer(t *testing.T) {
	m := DefaultModel()
	steps := m.steps(Event{
		Type: LoadFlowEv, CNode: "s0", VNode: "v0",
		WireBytes: 1000, EncodeKind: CPUAvroEncode, ParseKind: CPUCopyParse,
	}, 1)
	if len(steps) != 2 {
		t.Fatalf("load flow should be encode+transfer, got %d steps", len(steps))
	}
	enc := steps[0].(FlowStep)
	if len(enc.Demands) != 1 || enc.Demands[0].Res != "cpu:s0" {
		t.Errorf("first step should be client encode: %+v", enc)
	}
}

func TestLocalLoadSkipsNetwork(t *testing.T) {
	m := DefaultModel()
	steps := m.steps(Event{
		Type: LoadFlowEv, CNode: "v0", VNode: "v0", Local: true,
		WireBytes: 1000, EncodeKind: CPUCSVFormat, ParseKind: CPUCSVParse,
	}, 1)
	if len(steps) != 1 {
		t.Fatalf("local load should be a single stage, got %d", len(steps))
	}
	for _, d := range steps[0].(FlowStep).Demands {
		if d.Res == "out:v0" || d.Res == "in:v0" {
			t.Errorf("local load must not touch the network: %+v", d)
		}
	}
}

func TestSerialSeconds(t *testing.T) {
	m := DefaultModel()
	sys := m.BuildSystem(Topology{VerticaNodes: 1, SparkNodes: 1})
	tr := NewTrace()
	rec := tr.Task("driver", "")
	rec.Fixed(FixedConnect)
	rec.Fixed(FixedTableDDL)
	got := m.SerialSeconds(sys, rec, 1)
	want := m.FixedCost[FixedConnect] + m.FixedCost[FixedTableDDL]
	if !almostEq(got, want, 1e-9) {
		t.Errorf("SerialSeconds = %v, want %v", got, want)
	}
}

func TestSystemTopologyResources(t *testing.T) {
	m := DefaultModel()
	sys := m.BuildSystem(Topology{VerticaNodes: 2, SparkNodes: 3, HDFSNodes: 1})
	for _, name := range []string{"cpu:v0", "cpu:v1", "out:v0", "iin:v1", "disk:v0", "cpu:s2", "disk:h0", "in:h0"} {
		if sys.Resource(name) == nil {
			t.Errorf("missing resource %q", name)
		}
	}
	if sys.Resource("cpu:v2") != nil {
		t.Error("unexpected resource cpu:v2")
	}
}

func TestSingleNetworkMapsInternalTraffic(t *testing.T) {
	m := DefaultModel()
	m.SingleNetwork = true
	steps := m.steps(Event{
		Type: QueryFlowEv, VNode: "v0", CNode: "s0",
		ResultBytes: 100, ResultRows: 1,
		Shuffle: map[[2]string]float64{{"v1", "v0"}: 50},
	}, 1)
	fs := steps[0].(FlowStep)
	foundShared := false
	for _, d := range fs.Demands {
		if d.Res == "iout:v1" || d.Res == "iin:v0" {
			t.Errorf("single-network mode must not use internal NICs: %+v", d)
		}
		if d.Res == "out:v1" || d.Res == "in:v0" {
			foundShared = true
		}
	}
	if !foundShared {
		t.Error("shuffle demand should land on shared NICs")
	}
}
