package sim

import (
	"sort"
	"sync"
)

// CPUKind labels a class of per-byte or per-row CPU work whose unit cost the
// cost model knows for the reference testbed.
type CPUKind string

// CPU work kinds recorded by the engines and the connector.
const (
	CPUScanRow     CPUKind = "scan_row"       // Vertica: visit one row during a segment scan (hash check)
	CPUWireEncode  CPUKind = "wire_encode"    // Vertica: encode one result byte for the client protocol
	CPUWireDecode  CPUKind = "wire_decode"    // client: decode one result byte
	CPUAvroEncode  CPUKind = "avro_encode"    // Spark: Avro-encode one byte
	CPUCopyParse   CPUKind = "copy_parse"     // Vertica: parse one COPY input byte (Avro or CSV)
	CPUCSVParse    CPUKind = "csv_parse"      // Spark/Vertica: parse one CSV byte
	CPUCSVFormat   CPUKind = "csv_format"     // format one CSV byte
	CPUInsertRow   CPUKind = "insert_row"     // Vertica: per-row INSERT-statement path (JDBC baseline)
	CPURowOverhead CPUKind = "row_overhead"   // per-row fixed work in the transfer pipeline (Figure 9)
	CPUColfileEnc  CPUKind = "colfile_encode" // Spark: encode one colfile byte
	CPUColfileDec  CPUKind = "colfile_decode" // Spark: decode one colfile byte
	CPUModelScore  CPUKind = "model_score"    // Vertica UDx: score one row against a PMML model
	CPUHashRow     CPUKind = "hash_row"       // hash one row for routing/segmentation
)

// FixedKind labels a latency-only overhead.
type FixedKind string

// Fixed overhead kinds.
const (
	FixedConnect   FixedKind = "connect"    // open a client session
	FixedQuery     FixedKind = "query"      // plan/launch one query
	FixedCommit    FixedKind = "commit"     // transaction commit round-trip
	FixedStatusOp  FixedKind = "status_op"  // one small status-table operation
	FixedTableDDL  FixedKind = "table_ddl"  // create/drop/rename a table
	FixedJobSetup  FixedKind = "job_setup"  // Spark job launch/teardown
	FixedTaskStart FixedKind = "task_start" // scheduler task launch
)

// Event is one recorded unit of work. Exactly one of the pointer groups is
// meaningful, discriminated by Type.
type Event struct {
	Type EventType

	// Fixed overhead (FixedEv).
	FixedKind FixedKind

	// Pure CPU stage (CPUEv): Units of CPUKind work on Node.
	Node    string
	CPUKind CPUKind
	Units   float64

	// Query result stream (QueryFlowEv): a pipelined scan+encode+transfer
	// from VNode to CNode, with per-node scan work and any intra-Vertica
	// gather traffic recorded as observed.
	VNode       string
	CNode       string
	ResultBytes float64
	ResultRows  float64
	ScanRows    map[string]float64    // node → rows visited
	Shuffle     map[[2]string]float64 // (src,dst) → bytes moved inside Vertica

	// Load stream (LoadFlowEv): a pipelined encode+transfer+parse+route from
	// CNode into VNode.
	WireBytes  float64
	EncodeKind CPUKind // client-side per-byte encode work (avro_encode, csv_format)
	ParseKind  CPUKind // server-side per-byte parse work (copy_parse, csv_parse)
	InsertRows float64 // rows taking the per-row INSERT path (JDBC baseline)
	Route      map[[2]string]float64
	// Local marks a node-local bulk load (COPY FROM a local file, §4.7.3):
	// the stream reads the node's disk instead of crossing the network.
	Local bool

	// Disk stage (DiskEv): Bytes read (Write=false) or written on Node's
	// data disk, pipelined with the surrounding flow.
	Bytes float64
	Write bool
}

// EventType discriminates Event.
type EventType int

// Event types.
const (
	FixedEv EventType = iota
	CPUEv
	QueryFlowEv
	LoadFlowEv
	DiskEv
	// BlockFlowEv is an HDFS block read or write: a pipelined
	// disk+network+codec flow between a datanode (VNode) and a client
	// (CNode). Write=true adds the replication pipeline recorded in Route
	// (datanode→datanode bytes, each also hitting the replica's disk).
	BlockFlowEv
)

// TaskRec accumulates the events of one logical task (one Spark partition's
// work, one COPY stream, ...). Safe for use by one goroutine; distinct tasks
// record concurrently into the same Trace.
type TaskRec struct {
	ID       string
	ExecNode string // Spark node name the task runs on ("" = not slot-gated)
	mu       sync.Mutex
	events   []Event
}

// Add appends an event.
func (t *TaskRec) Add(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Fixed records a latency-only overhead.
func (t *TaskRec) Fixed(kind FixedKind) {
	t.Add(Event{Type: FixedEv, FixedKind: kind})
}

// CPU records a pure CPU stage.
func (t *TaskRec) CPU(node string, kind CPUKind, units float64) {
	if units <= 0 {
		return
	}
	t.Add(Event{Type: CPUEv, Node: node, CPUKind: kind, Units: units})
}

// Disk records a disk stage.
func (t *TaskRec) Disk(node string, bytes float64, write bool) {
	if bytes <= 0 {
		return
	}
	t.Add(Event{Type: DiskEv, Node: node, Bytes: bytes, Write: write})
}

// Events returns a copy of the recorded events.
func (t *TaskRec) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Trace collects the task records of one job (one connector invocation, one
// baseline run). A nil *Trace is a valid no-op recorder, so production paths
// carry it unconditionally.
type Trace struct {
	mu    sync.Mutex
	tasks []*TaskRec
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Task creates and registers a new task record. On a nil trace it returns
// nil, which every TaskRec method tolerates.
func (tr *Trace) Task(id, execNode string) *TaskRec {
	if tr == nil {
		return nil
	}
	t := &TaskRec{ID: id, ExecNode: execNode}
	tr.mu.Lock()
	tr.tasks = append(tr.tasks, t)
	tr.mu.Unlock()
	return t
}

// Tasks returns the registered task records sorted by ID for determinism.
func (tr *Trace) Tasks() []*TaskRec {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]*TaskRec, len(tr.tasks))
	copy(out, tr.tasks)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TotalBytes sums a rough byte count across all flows, useful for sanity
// checks in tests.
func (tr *Trace) TotalBytes() float64 {
	total := 0.0
	for _, t := range tr.Tasks() {
		for _, e := range t.Events() {
			switch e.Type {
			case QueryFlowEv:
				total += e.ResultBytes
			case LoadFlowEv:
				total += e.WireBytes
			case DiskEv:
				total += e.Bytes
			}
		}
	}
	return total
}
