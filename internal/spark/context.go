// Package spark implements the batch compute engine substrate: RDDs
// (immutable, partitioned, lazily computed), DataFrames with schemas, a
// batch task scheduler with executors, bounded task retry and speculative
// execution, precise failure injection for testing exactly-once guarantees,
// and Spark 1.5's External Data Source API (§2.1.2 of the paper) that the
// connector plugs into.
//
// The scheduler reproduces the properties the paper's S2V protocol is built
// to survive: tasks are stateless, independent, cannot coordinate, may run
// more than once (retry after failure, speculative duplicates), and the
// whole job may die at any point (§2.2.2).
package spark

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"vsfabric/internal/sim"
)

// ErrJobKilled is returned when a job dies as a whole (the "total Spark
// failure" scenario of §3.2.1).
var ErrJobKilled = errors.New("spark: job killed (total failure)")

// Conf configures a Context.
type Conf struct {
	// AppName labels the application.
	AppName string
	// NumExecutors is the number of worker nodes ("s0".."sN-1" in the
	// simulated topology).
	NumExecutors int
	// CoresPerExecutor bounds concurrently running tasks per executor.
	CoresPerExecutor int
	// MaxTaskFailures is how many attempts a task gets before the job fails
	// (Spark's spark.task.maxFailures, default 4).
	MaxTaskFailures int
	// Speculation enables speculative re-execution of straggling or
	// injector-marked tasks.
	Speculation bool
	// Injector injects failures at task checkpoints (tests only).
	Injector *FailureInjector
	// Trace receives per-task resource usage records (benchmarks only).
	Trace *sim.Trace
}

func (c Conf) withDefaults() Conf {
	if c.NumExecutors <= 0 {
		c.NumExecutors = 2
	}
	if c.CoresPerExecutor <= 0 {
		c.CoresPerExecutor = 4
	}
	if c.MaxTaskFailures <= 0 {
		c.MaxTaskFailures = 4
	}
	return c
}

// Context is the entry point to the compute engine (a SparkContext).
type Context struct {
	conf    Conf
	stageID atomic.Int64
	slots   []chan struct{} // per-executor core semaphores
	killed  atomic.Bool
}

// NewContext creates a context with the given configuration.
func NewContext(conf Conf) *Context {
	conf = conf.withDefaults()
	sc := &Context{conf: conf}
	for i := 0; i < conf.NumExecutors; i++ {
		ch := make(chan struct{}, conf.CoresPerExecutor)
		for j := 0; j < conf.CoresPerExecutor; j++ {
			ch <- struct{}{}
		}
		sc.slots = append(sc.slots, ch)
	}
	return sc
}

// Conf returns the context configuration.
func (sc *Context) Conf() Conf { return sc.conf }

// ExecutorFor returns the simulated node name the given partition's task
// runs on (static round-robin placement).
func (sc *Context) ExecutorFor(partition int) string {
	return sim.SName(partition % sc.conf.NumExecutors)
}

// TaskContext is what a running task attempt sees: its identity, executor,
// recorder, and failure-injection checkpoints. Mirrors Spark's TaskContext.
type TaskContext struct {
	StageID     int64
	PartitionID int
	Attempt     int
	Speculative bool
	ExecNode    string
	// Rec records the task's resource usage (nil outside benchmarks).
	Rec *sim.TaskRec

	sc *Context
}

// Checkpoint gives the failure injector a chance to kill this task attempt
// (returning an error, triggering a retry) or the whole job at a named
// point. Production code paths sprinkle these at phase boundaries so tests
// can kill tasks at the worst possible moments.
func (tc *TaskContext) Checkpoint(name string) error {
	inj := tc.sc.conf.Injector
	if inj == nil {
		return nil
	}
	return inj.at(tc, name)
}

// RunJob executes one task per partition and gathers the per-partition
// results. Failed tasks retry on a fresh attempt number up to
// MaxTaskFailures; with speculation, marked partitions get a concurrent
// duplicate attempt whose side effects also happen — only its result is
// deduplicated, exactly like Spark. The first error past the retry budget
// fails the whole job (remaining tasks still drain).
func RunJob[R any](sc *Context, numPartitions int, fn func(tc *TaskContext) (R, error)) ([]R, error) {
	if numPartitions <= 0 {
		return nil, fmt.Errorf("spark: job needs at least one partition")
	}
	stage := sc.stageID.Add(1)
	results := make([]R, numPartitions)
	var (
		mu      sync.Mutex
		done    = make([]bool, numPartitions)
		jobErr  error
		wg      sync.WaitGroup
		attempt = make([]int, numPartitions)
	)

	setErr := func(err error) {
		mu.Lock()
		if jobErr == nil {
			jobErr = err
		}
		mu.Unlock()
	}

	var runAttempt func(p, att int, speculative bool)
	runAttempt = func(p, att int, speculative bool) {
		defer wg.Done()
		if sc.killed.Load() {
			return
		}
		exec := p % sc.conf.NumExecutors
		<-sc.slots[exec]
		defer func() { sc.slots[exec] <- struct{}{} }()
		if sc.killed.Load() {
			return
		}
		tc := &TaskContext{
			StageID:     stage,
			PartitionID: p,
			Attempt:     att,
			Speculative: speculative,
			ExecNode:    sc.ExecutorFor(p),
			sc:          sc,
		}
		if sc.conf.Trace != nil {
			tc.Rec = sc.conf.Trace.Task(fmt.Sprintf("stage%d-task%04d-attempt%d", stage, p, att), tc.ExecNode)
			tc.Rec.Fixed(sim.FixedTaskStart)
		}
		r, err := fn(tc)
		switch {
		case err == nil:
			mu.Lock()
			if !done[p] {
				done[p] = true
				results[p] = r
			}
			mu.Unlock()
		case errors.Is(err, ErrJobKilled):
			sc.killed.Store(true)
			setErr(ErrJobKilled)
		default:
			mu.Lock()
			finished := done[p]
			attempt[p]++
			next := attempt[p]
			retry := !finished && next < sc.conf.MaxTaskFailures && jobErr == nil
			mu.Unlock()
			if retry {
				wg.Add(1)
				go runAttempt(p, next, false)
			} else if !finished {
				setErr(fmt.Errorf("spark: task %d failed %d times, most recent: %w", p, next, err))
			}
		}
	}

	for p := 0; p < numPartitions; p++ {
		wg.Add(1)
		go runAttempt(p, 0, false)
		if sc.conf.Speculation && sc.conf.Injector != nil && sc.conf.Injector.speculate[p] {
			// Deterministic speculative duplicate: same partition, distinct
			// attempt, side effects run for real.
			mu.Lock()
			attempt[p]++
			att := attempt[p]
			mu.Unlock()
			wg.Add(1)
			go runAttempt(p, att, true)
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if jobErr != nil {
		return nil, jobErr
	}
	for p := 0; p < numPartitions; p++ {
		if !done[p] {
			return nil, fmt.Errorf("spark: task %d never completed", p)
		}
	}
	return results, nil
}

// ResetKill clears the killed flag so a fresh job can run after a simulated
// total failure (a "Spark restart").
func (sc *Context) ResetKill() { sc.killed.Store(false) }
