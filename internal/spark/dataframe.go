package spark

import (
	"fmt"

	"vsfabric/internal/types"
)

// DataFrame is a schema-carrying distributed dataset (§2.1.2): a wrapper
// around an RDD of rows, or — before the first action — a lazy reference to
// an external relation with pending pruned columns and pushdown filters,
// which is how Select/Filter/Count reach the source's BuildScan.
type DataFrame struct {
	sc     *Context
	schema types.Schema

	// Lazy source state: relation plus pending pushdowns.
	relation BaseRelation
	pruned   []string
	filters  []Filter

	// Materialized state once the DataFrame no longer maps to a pure scan.
	rdd *RDD[types.Row]
}

// NewDataFrame wraps an RDD of rows with a schema.
func NewDataFrame(sc *Context, schema types.Schema, rdd *RDD[types.Row]) *DataFrame {
	return &DataFrame{sc: sc, schema: schema, rdd: rdd}
}

// CreateDataFrame parallelizes driver-side rows.
func CreateDataFrame(sc *Context, schema types.Schema, rows []types.Row, nParts int) *DataFrame {
	return NewDataFrame(sc, schema, Parallelize(sc, rows, nParts))
}

// Schema returns the frame's schema (after pruning).
func (df *DataFrame) Schema() types.Schema {
	if df.relation != nil && len(df.pruned) > 0 {
		s, _, err := df.schema.Project(df.pruned)
		if err == nil {
			return s
		}
	}
	return df.schema
}

// Context returns the owning context.
func (df *DataFrame) Context() *Context { return df.sc }

// Select prunes to the named columns. On a source-backed frame the pruning
// is pushed into the scan.
func (df *DataFrame) Select(cols ...string) (*DataFrame, error) {
	if df.relation != nil {
		out := *df
		out.pruned = cols
		if _, _, err := df.schema.Project(cols); err != nil {
			return nil, err
		}
		return &out, nil
	}
	proj, idx, err := df.schema.Project(cols)
	if err != nil {
		return nil, err
	}
	rdd := Map(df.rdd, func(r types.Row) types.Row {
		out := make(types.Row, len(idx))
		for i, j := range idx {
			out[i] = r[j]
		}
		return out
	})
	return NewDataFrame(df.sc, proj, rdd), nil
}

// Where adds a pushdown filter. On a source-backed frame it reaches the
// source's BuildScan; otherwise it evaluates in Spark.
func (df *DataFrame) Where(f Filter) *DataFrame {
	if df.relation != nil {
		out := *df
		out.filters = append(append([]Filter{}, df.filters...), f)
		return &out
	}
	schema := df.schema
	return NewDataFrame(df.sc, schema, df.rdd.Filter(func(r types.Row) bool {
		return EvalFilter(f, r, &schema)
	}))
}

// RDD materializes the frame into its row RDD, triggering BuildScan for
// source-backed frames.
func (df *DataFrame) RDD() (*RDD[types.Row], error) {
	if df.rdd != nil {
		return df.rdd, nil
	}
	scan, ok := df.relation.(PrunedFilteredScan)
	if !ok {
		return nil, fmt.Errorf("spark: relation %T is not scannable", df.relation)
	}
	cols := df.pruned
	if len(cols) == 0 {
		cols = df.schema.ColNames()
	}
	return scan.BuildScan(cols, df.filters)
}

// Collect gathers all rows on the driver.
func (df *DataFrame) Collect() ([]types.Row, error) {
	rdd, err := df.RDD()
	if err != nil {
		return nil, err
	}
	return rdd.Collect()
}

// Count counts rows, pushing COUNT(*) into sources that support it
// (§3.1.1's count pushdown).
func (df *DataFrame) Count() (int64, error) {
	if df.relation != nil {
		if c, ok := df.relation.(CountableScan); ok {
			return c.CountRows(df.filters)
		}
	}
	rdd, err := df.RDD()
	if err != nil {
		return 0, err
	}
	return rdd.Count()
}

// Repartition returns a frame with n partitions (S2V's parallelism knob;
// with large data this is a coalesce without shuffling, §3.2).
func (df *DataFrame) Repartition(n int) (*DataFrame, error) {
	rdd, err := df.RDD()
	if err != nil {
		return nil, err
	}
	return NewDataFrame(df.sc, df.Schema(), rdd.Coalesce(n)), nil
}

// NumPartitions reports the physical partition count once materialized.
func (df *DataFrame) NumPartitions() (int, error) {
	rdd, err := df.RDD()
	if err != nil {
		return 0, err
	}
	return rdd.NumPartitions(), nil
}
