package spark

import (
	"fmt"
	"strings"
	"sync"

	"vsfabric/internal/types"
)

// SaveMode mirrors Spark's DataFrame save modes (Table 1 of the paper).
type SaveMode string

// Save modes.
const (
	SaveOverwrite     SaveMode = "overwrite"
	SaveAppend        SaveMode = "append"
	SaveErrorIfExists SaveMode = "error"
)

// Filter is a pushdown-able predicate, the Spark 1.5
// org.apache.spark.sql.sources filter algebra the External Data Source API
// hands to relations (§3.1.1: project, filter, count are pushed into the
// database).
type Filter interface{ isFilter() }

// EqualTo pushes col = value.
type EqualTo struct {
	Col   string
	Value types.Value
}

func (EqualTo) isFilter() {}

// GreaterThan pushes col > value.
type GreaterThan struct {
	Col   string
	Value types.Value
}

func (GreaterThan) isFilter() {}

// GreaterThanOrEqual pushes col >= value.
type GreaterThanOrEqual struct {
	Col   string
	Value types.Value
}

func (GreaterThanOrEqual) isFilter() {}

// LessThan pushes col < value.
type LessThan struct {
	Col   string
	Value types.Value
}

func (LessThan) isFilter() {}

// LessThanOrEqual pushes col <= value.
type LessThanOrEqual struct {
	Col   string
	Value types.Value
}

func (LessThanOrEqual) isFilter() {}

// IsNull pushes col IS NULL.
type IsNull struct{ Col string }

func (IsNull) isFilter() {}

// IsNotNull pushes col IS NOT NULL.
type IsNotNull struct{ Col string }

func (IsNotNull) isFilter() {}

// EvalFilter applies a pushdown filter to a row (used by sources that
// cannot push it further, and by tests as ground truth).
func EvalFilter(f Filter, r types.Row, s *types.Schema) bool {
	colVal := func(name string) (types.Value, bool) {
		i := s.ColIndex(name)
		if i < 0 {
			return types.Value{}, false
		}
		return r[i], true
	}
	switch ff := f.(type) {
	case EqualTo:
		v, ok := colVal(ff.Col)
		return ok && !v.Null && types.Compare(v, ff.Value) == 0
	case GreaterThan:
		v, ok := colVal(ff.Col)
		return ok && !v.Null && types.Compare(v, ff.Value) > 0
	case GreaterThanOrEqual:
		v, ok := colVal(ff.Col)
		return ok && !v.Null && types.Compare(v, ff.Value) >= 0
	case LessThan:
		v, ok := colVal(ff.Col)
		return ok && !v.Null && types.Compare(v, ff.Value) < 0
	case LessThanOrEqual:
		v, ok := colVal(ff.Col)
		return ok && !v.Null && types.Compare(v, ff.Value) <= 0
	case IsNull:
		v, ok := colVal(ff.Col)
		return ok && v.Null
	case IsNotNull:
		v, ok := colVal(ff.Col)
		return ok && !v.Null
	default:
		return true
	}
}

// BaseRelation is a loaded external relation.
type BaseRelation interface {
	Schema() (types.Schema, error)
}

// PrunedFilteredScan is the read-side interface: build an RDD of rows for
// the required columns with the given filters pushed down as far as the
// source can take them.
type PrunedFilteredScan interface {
	BaseRelation
	BuildScan(requiredCols []string, filters []Filter) (*RDD[types.Row], error)
}

// CountableScan lets a source answer COUNT(*) without moving rows — the
// count pushdown of §3.1.1.
type CountableScan interface {
	CountRows(filters []Filter) (int64, error)
}

// RelationProvider creates relations from options — Spark's DefaultSource
// contract. Implementations are registered under a format name.
type RelationProvider interface {
	CreateRelation(sc *Context, options map[string]string) (BaseRelation, error)
}

// CreatableRelationProvider is the write-side contract: persist a DataFrame.
type CreatableRelationProvider interface {
	SaveRelation(sc *Context, mode SaveMode, options map[string]string, df *DataFrame) error
}

var (
	sourcesMu sync.RWMutex
	sources   = make(map[string]RelationProvider)
)

// RegisterSource installs a data source under a format name (e.g.
// "com.vertica.spark.datasource.DefaultSource").
func RegisterSource(name string, p RelationProvider) {
	sourcesMu.Lock()
	defer sourcesMu.Unlock()
	sources[strings.ToLower(name)] = p
}

// LookupSource finds a registered source.
func LookupSource(name string) (RelationProvider, bool) {
	sourcesMu.RLock()
	defer sourcesMu.RUnlock()
	p, ok := sources[strings.ToLower(name)]
	return p, ok
}

// DataFrameReader implements the load half of Table 1:
// sc.Read().Format(...).Options(...).Load().
type DataFrameReader struct {
	sc      *Context
	format  string
	options map[string]string
}

// Read starts building a load.
func (sc *Context) Read() *DataFrameReader {
	return &DataFrameReader{sc: sc, options: make(map[string]string)}
}

// Format selects the data source implementation.
func (r *DataFrameReader) Format(name string) *DataFrameReader {
	r.format = name
	return r
}

// Option sets one source option.
func (r *DataFrameReader) Option(k, v string) *DataFrameReader {
	r.options[k] = v
	return r
}

// Options sets several source options.
func (r *DataFrameReader) Options(opts map[string]string) *DataFrameReader {
	for k, v := range opts {
		r.options[k] = v
	}
	return r
}

// Load resolves the relation. The scan stays lazy: projection, filters, and
// count applied to the resulting DataFrame before an action are pushed into
// the source, mirroring Catalyst's interaction with PrunedFilteredScan.
func (r *DataFrameReader) Load() (*DataFrame, error) {
	p, ok := LookupSource(r.format)
	if !ok {
		return nil, fmt.Errorf("spark: no data source registered as %q", r.format)
	}
	rel, err := p.CreateRelation(r.sc, r.options)
	if err != nil {
		return nil, err
	}
	schema, err := rel.Schema()
	if err != nil {
		return nil, err
	}
	return &DataFrame{sc: r.sc, schema: schema, relation: rel}, nil
}

// DataFrameWriter implements the save half of Table 1:
// df.Write().Format(...).Options(...).Mode(...).Save().
type DataFrameWriter struct {
	df      *DataFrame
	format  string
	mode    SaveMode
	options map[string]string
}

// Write starts building a save.
func (df *DataFrame) Write() *DataFrameWriter {
	return &DataFrameWriter{df: df, mode: SaveErrorIfExists, options: make(map[string]string)}
}

// Format selects the data source implementation.
func (w *DataFrameWriter) Format(name string) *DataFrameWriter {
	w.format = name
	return w
}

// Option sets one option.
func (w *DataFrameWriter) Option(k, v string) *DataFrameWriter {
	w.options[k] = v
	return w
}

// Options sets several options.
func (w *DataFrameWriter) Options(opts map[string]string) *DataFrameWriter {
	for k, v := range opts {
		w.options[k] = v
	}
	return w
}

// Mode sets the save mode.
func (w *DataFrameWriter) Mode(m SaveMode) *DataFrameWriter {
	w.mode = m
	return w
}

// Save runs the write through the registered source.
func (w *DataFrameWriter) Save() error {
	p, ok := LookupSource(w.format)
	if !ok {
		return fmt.Errorf("spark: no data source registered as %q", w.format)
	}
	cp, ok := p.(CreatableRelationProvider)
	if !ok {
		return fmt.Errorf("spark: source %q does not support saving", w.format)
	}
	return cp.SaveRelation(w.df.sc, w.mode, w.options, w.df)
}
