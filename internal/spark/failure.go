package spark

import (
	"fmt"
	"sync"
)

// FailureInjector arranges task and job failures at named checkpoints,
// letting tests reproduce every scenario §3.2.1 claims the connector
// survives: a task dying mid-phase, a task dying immediately after its
// commit, a speculative duplicate racing the original, and total Spark
// failure.
type FailureInjector struct {
	mu        sync.Mutex
	rules     []rule
	speculate map[int]bool
	log       []string
}

type rule struct {
	partition  int // -1 = any
	attempt    int // -1 = any
	checkpoint string
	killJob    bool
	remaining  int // fire at most this many times
}

// NewFailureInjector returns an empty injector.
func NewFailureInjector() *FailureInjector {
	return &FailureInjector{speculate: make(map[int]bool)}
}

// FailTaskAt makes attempt `attempt` of task `partition` fail when it
// reaches the named checkpoint. Use attempt -1 for every attempt, partition
// -1 for every task. The rule fires `times` times.
func (f *FailureInjector) FailTaskAt(partition, attempt int, checkpoint string, times int) *FailureInjector {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, rule{partition: partition, attempt: attempt, checkpoint: checkpoint, remaining: times})
	return f
}

// KillJobAt kills the whole job when the matching task reaches the
// checkpoint — simulating total Spark failure.
func (f *FailureInjector) KillJobAt(partition int, checkpoint string) *FailureInjector {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, rule{partition: partition, attempt: -1, checkpoint: checkpoint, killJob: true, remaining: 1})
	return f
}

// Speculate marks a partition for a concurrent duplicate attempt (requires
// Conf.Speculation).
func (f *FailureInjector) Speculate(partition int) *FailureInjector {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.speculate[partition] = true
	return f
}

// Log returns the injected events, for test assertions.
func (f *FailureInjector) Log() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.log))
	copy(out, f.log)
	return out
}

func (f *FailureInjector) at(tc *TaskContext, checkpoint string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.rules {
		r := &f.rules[i]
		if r.remaining <= 0 {
			continue
		}
		if r.checkpoint != checkpoint {
			continue
		}
		if r.partition != -1 && r.partition != tc.PartitionID {
			continue
		}
		if r.attempt != -1 && r.attempt != tc.Attempt {
			continue
		}
		r.remaining--
		f.log = append(f.log, fmt.Sprintf("%s@task%d.attempt%d", checkpoint, tc.PartitionID, tc.Attempt))
		if r.killJob {
			return ErrJobKilled
		}
		return fmt.Errorf("spark: injected failure at %q (task %d attempt %d)", checkpoint, tc.PartitionID, tc.Attempt)
	}
	return nil
}
