package spark

import (
	"fmt"
	"sync"
)

// RDD is an immutable, partitioned, lazily evaluated dataset: each
// partition's contents are (re)computable from the compute function —
// Spark's lineage-based fault tolerance (§2.1.2). Transformations build new
// RDDs; actions (Collect, Count, Reduce, ForeachPartition) run jobs.
type RDD[T any] struct {
	sc      *Context
	nParts  int
	compute func(tc *TaskContext, p int) ([]T, error)

	mu     sync.Mutex
	cached [][]T // non-nil once Cache()+action has materialized
	cache  bool
}

// NewRDD builds an RDD from a per-partition compute function.
func NewRDD[T any](sc *Context, nParts int, compute func(tc *TaskContext, p int) ([]T, error)) *RDD[T] {
	return &RDD[T]{sc: sc, nParts: nParts, compute: compute}
}

// Parallelize distributes a slice across nParts partitions.
func Parallelize[T any](sc *Context, data []T, nParts int) *RDD[T] {
	if nParts <= 0 {
		nParts = sc.conf.NumExecutors
	}
	n := len(data)
	return NewRDD(sc, nParts, func(_ *TaskContext, p int) ([]T, error) {
		lo, hi := n*p/nParts, n*(p+1)/nParts
		out := make([]T, hi-lo)
		copy(out, data[lo:hi])
		return out, nil
	})
}

// Context returns the owning context.
func (r *RDD[T]) Context() *Context { return r.sc }

// NumPartitions returns the partition count.
func (r *RDD[T]) NumPartitions() int { return r.nParts }

// Cache marks the RDD for materialization on first action.
func (r *RDD[T]) Cache() *RDD[T] {
	r.mu.Lock()
	r.cache = true
	r.mu.Unlock()
	return r
}

// partition computes (or serves from cache) one partition.
func (r *RDD[T]) partition(tc *TaskContext, p int) ([]T, error) {
	r.mu.Lock()
	if r.cached != nil {
		data := r.cached[p]
		r.mu.Unlock()
		return data, nil
	}
	r.mu.Unlock()
	return r.compute(tc, p)
}

// Map applies f to every element.
func Map[T, U any](r *RDD[T], f func(T) U) *RDD[U] {
	return NewRDD(r.sc, r.nParts, func(tc *TaskContext, p int) ([]U, error) {
		in, err := r.partition(tc, p)
		if err != nil {
			return nil, err
		}
		out := make([]U, len(in))
		for i, v := range in {
			out[i] = f(v)
		}
		return out, nil
	})
}

// FlatMap applies f and concatenates the results.
func FlatMap[T, U any](r *RDD[T], f func(T) []U) *RDD[U] {
	return NewRDD(r.sc, r.nParts, func(tc *TaskContext, p int) ([]U, error) {
		in, err := r.partition(tc, p)
		if err != nil {
			return nil, err
		}
		var out []U
		for _, v := range in {
			out = append(out, f(v)...)
		}
		return out, nil
	})
}

// Filter keeps elements where pred is true.
func (r *RDD[T]) Filter(pred func(T) bool) *RDD[T] {
	return NewRDD(r.sc, r.nParts, func(tc *TaskContext, p int) ([]T, error) {
		in, err := r.partition(tc, p)
		if err != nil {
			return nil, err
		}
		var out []T
		for _, v := range in {
			if pred(v) {
				out = append(out, v)
			}
		}
		return out, nil
	})
}

// MapPartitions applies f to whole partitions.
func MapPartitions[T, U any](r *RDD[T], f func(tc *TaskContext, p int, in []T) ([]U, error)) *RDD[U] {
	return NewRDD(r.sc, r.nParts, func(tc *TaskContext, p int) ([]U, error) {
		in, err := r.partition(tc, p)
		if err != nil {
			return nil, err
		}
		return f(tc, p, in)
	})
}

// Coalesce reduces (or increases) the partition count. Like Spark's
// coalesce, reducing does not shuffle: new partition i takes a contiguous
// group of old partitions — exactly what S2V's setup phase does to hit the
// requested parallelism (§3.2).
func (r *RDD[T]) Coalesce(n int) *RDD[T] {
	if n <= 0 || n == r.nParts {
		return r
	}
	old := r.nParts
	if n < old {
		return NewRDD(r.sc, n, func(tc *TaskContext, p int) ([]T, error) {
			var out []T
			lo, hi := old*p/n, old*(p+1)/n
			for q := lo; q < hi; q++ {
				part, err := r.partition(tc, q)
				if err != nil {
					return nil, err
				}
				out = append(out, part...)
			}
			return out, nil
		})
	}
	// Growing requires a split (a shuffle in real Spark): split each old
	// partition into the new ones round-robin.
	return NewRDD(r.sc, n, func(tc *TaskContext, p int) ([]T, error) {
		src := p * old / n
		part, err := r.partition(tc, src)
		if err != nil {
			return nil, err
		}
		// The new partitions drawing from src split its rows evenly.
		var siblings []int
		for q := 0; q < n; q++ {
			if q*old/n == src {
				siblings = append(siblings, q)
			}
		}
		k := len(siblings)
		idx := 0
		for i, q := range siblings {
			if q == p {
				idx = i
				break
			}
		}
		lo, hi := len(part)*idx/k, len(part)*(idx+1)/k
		out := make([]T, hi-lo)
		copy(out, part[lo:hi])
		return out, nil
	})
}

// Collect materializes the whole RDD on the driver.
func (r *RDD[T]) Collect() ([]T, error) {
	parts, err := RunJob(r.sc, r.nParts, func(tc *TaskContext) ([]T, error) {
		return r.partition(tc, tc.PartitionID)
	})
	if err != nil {
		return nil, err
	}
	r.maybeFillCache(parts)
	var out []T
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

func (r *RDD[T]) maybeFillCache(parts [][]T) {
	r.mu.Lock()
	if r.cache && r.cached == nil {
		r.cached = parts
	}
	r.mu.Unlock()
}

// Count returns the number of elements.
func (r *RDD[T]) Count() (int64, error) {
	counts, err := RunJob(r.sc, r.nParts, func(tc *TaskContext) (int64, error) {
		in, err := r.partition(tc, tc.PartitionID)
		return int64(len(in)), err
	})
	if err != nil {
		return 0, err
	}
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// Aggregate folds every partition with seqOp from zero, then merges the
// per-partition results with combOp on the driver — the pattern MLlib's
// gradient computations use.
func Aggregate[T, A any](r *RDD[T], zero func() A, seqOp func(A, T) A, combOp func(A, A) A) (A, error) {
	parts, err := RunJob(r.sc, r.nParts, func(tc *TaskContext) (A, error) {
		in, err := r.partition(tc, tc.PartitionID)
		if err != nil {
			var a A
			return a, err
		}
		acc := zero()
		for _, v := range in {
			acc = seqOp(acc, v)
		}
		return acc, nil
	})
	if err != nil {
		var a A
		return a, err
	}
	acc := zero()
	for _, p := range parts {
		acc = combOp(acc, p)
	}
	return acc, nil
}

// ForeachPartition runs f once per partition, for side effects — the action
// that drives S2V's per-task save work.
func (r *RDD[T]) ForeachPartition(f func(tc *TaskContext, in []T) error) error {
	_, err := RunJob(r.sc, r.nParts, func(tc *TaskContext) (struct{}, error) {
		in, err := r.partition(tc, tc.PartitionID)
		if err != nil {
			return struct{}{}, err
		}
		return struct{}{}, f(tc, in)
	})
	return err
}

// Sample deterministically keeps every k-th element (1/k sampling) — enough
// for the workload generators.
func (r *RDD[T]) Sample(k int) *RDD[T] {
	if k <= 1 {
		return r
	}
	return NewRDD(r.sc, r.nParts, func(tc *TaskContext, p int) ([]T, error) {
		in, err := r.partition(tc, p)
		if err != nil {
			return nil, err
		}
		var out []T
		for i := 0; i < len(in); i += k {
			out = append(out, in[i])
		}
		return out, nil
	})
}

// String describes the RDD.
func (r *RDD[T]) String() string {
	return fmt.Sprintf("RDD[%d partitions]", r.nParts)
}
