package spark

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"vsfabric/internal/types"
)

func testCtx(inj *FailureInjector) *Context {
	return NewContext(Conf{NumExecutors: 4, CoresPerExecutor: 2, MaxTaskFailures: 3, Speculation: inj != nil, Injector: inj})
}

func TestParallelizeCollect(t *testing.T) {
	sc := testCtx(nil)
	data := make([]int, 100)
	for i := range data {
		data[i] = i
	}
	rdd := Parallelize(sc, data, 7)
	got, err := rdd.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("collected %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestMapFilterCount(t *testing.T) {
	sc := testCtx(nil)
	rdd := Parallelize(sc, []int{1, 2, 3, 4, 5, 6}, 3)
	doubled := Map(rdd, func(v int) int { return v * 2 })
	big := doubled.Filter(func(v int) bool { return v > 6 })
	n, err := big.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // 8, 10, 12
		t.Errorf("count = %d", n)
	}
}

func TestFlatMapAndSample(t *testing.T) {
	sc := testCtx(nil)
	rdd := Parallelize(sc, []int{1, 2}, 2)
	fm := FlatMap(rdd, func(v int) []int { return []int{v, v * 10} })
	n, _ := fm.Count()
	if n != 4 {
		t.Errorf("flatmap count = %d", n)
	}
	s := Parallelize(sc, make([]int, 100), 4).Sample(10)
	sn, _ := s.Count()
	if sn < 8 || sn > 12 {
		t.Errorf("sample count = %d", sn)
	}
}

func TestAggregate(t *testing.T) {
	sc := testCtx(nil)
	rdd := Parallelize(sc, []int{1, 2, 3, 4, 5}, 3)
	sum, err := Aggregate(rdd,
		func() int { return 0 },
		func(a, v int) int { return a + v },
		func(a, b int) int { return a + b },
	)
	if err != nil || sum != 15 {
		t.Errorf("sum = %d, %v", sum, err)
	}
}

func TestCoalesceDownPreservesAll(t *testing.T) {
	sc := testCtx(nil)
	data := make([]int, 97)
	for i := range data {
		data[i] = i
	}
	for _, n := range []int{1, 2, 5} {
		got, err := Parallelize(sc, data, 16).Coalesce(n).Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 97 {
			t.Errorf("coalesce(%d): %d elements", n, len(got))
		}
	}
}

func TestCoalesceUpPreservesAll(t *testing.T) {
	sc := testCtx(nil)
	data := make([]int, 50)
	for i := range data {
		data[i] = i
	}
	got, err := Parallelize(sc, data, 2).Coalesce(8).Collect()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate %d after repartition", v)
		}
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Errorf("repartition lost elements: %d", len(seen))
	}
}

func TestTaskRetry(t *testing.T) {
	sc := testCtx(nil)
	var attempts atomic.Int32
	out, err := RunJob(sc, 4, func(tc *TaskContext) (int, error) {
		if tc.PartitionID == 2 && tc.Attempt == 0 {
			attempts.Add(1)
			return 0, errors.New("flaky")
		}
		return tc.PartitionID, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts.Load() != 1 || out[2] != 2 {
		t.Errorf("retry misbehaved: attempts=%d out=%v", attempts.Load(), out)
	}
}

func TestTaskRetryExhausted(t *testing.T) {
	sc := testCtx(nil)
	_, err := RunJob(sc, 2, func(tc *TaskContext) (int, error) {
		if tc.PartitionID == 1 {
			return 0, errors.New("always fails")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("job should fail after MaxTaskFailures")
	}
}

func TestJobKill(t *testing.T) {
	inj := NewFailureInjector()
	inj.KillJobAt(0, "cp")
	sc := testCtx(inj)
	_, err := RunJob(sc, 4, func(tc *TaskContext) (int, error) {
		if err := tc.Checkpoint("cp"); err != nil {
			return 0, err
		}
		return 1, nil
	})
	if !errors.Is(err, ErrJobKilled) {
		t.Errorf("err = %v", err)
	}
	sc.ResetKill()
	if _, err := RunJob(sc, 2, func(tc *TaskContext) (int, error) { return 1, nil }); err != nil {
		t.Errorf("after ResetKill jobs should run: %v", err)
	}
}

func TestSpeculativeDuplicates(t *testing.T) {
	inj := NewFailureInjector()
	inj.Speculate(1)
	sc := testCtx(inj)
	var runs atomic.Int32
	out, err := RunJob(sc, 3, func(tc *TaskContext) (int, error) {
		if tc.PartitionID == 1 {
			runs.Add(1)
		}
		return tc.PartitionID * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Errorf("speculative partition ran %d times, want 2 (side effects duplicated)", runs.Load())
	}
	if out[1] != 10 {
		t.Errorf("result deduplicated wrongly: %v", out)
	}
}

func TestInjectorCheckpointMatch(t *testing.T) {
	inj := NewFailureInjector()
	inj.FailTaskAt(0, 0, "mid", 1)
	sc := testCtx(inj)
	var failed atomic.Int32
	_, err := RunJob(sc, 2, func(tc *TaskContext) (int, error) {
		if err := tc.Checkpoint("mid"); err != nil {
			failed.Add(1)
			return 0, err
		}
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed.Load() != 1 {
		t.Errorf("checkpoint fired %d times", failed.Load())
	}
	if len(inj.Log()) != 1 {
		t.Errorf("log = %v", inj.Log())
	}
}

func TestCachedRDDComputesOnce(t *testing.T) {
	sc := testCtx(nil)
	var computes atomic.Int32
	rdd := NewRDD(sc, 2, func(_ *TaskContext, p int) ([]int, error) {
		computes.Add(1)
		return []int{p}, nil
	}).Cache()
	if _, err := rdd.Collect(); err != nil {
		t.Fatal(err)
	}
	if _, err := rdd.Collect(); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 2 {
		t.Errorf("cached RDD computed %d times, want 2 (once per partition)", computes.Load())
	}
}

// ---------- DataFrame ----------

var dfSchema = types.NewSchema(
	types.Column{Name: "id", T: types.Int64},
	types.Column{Name: "x", T: types.Float64},
)

func makeDF(sc *Context, n, parts int) *DataFrame {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{types.IntValue(int64(i)), types.FloatValue(float64(i))}
	}
	return CreateDataFrame(sc, dfSchema, rows, parts)
}

func TestDataFrameSelectWhere(t *testing.T) {
	sc := testCtx(nil)
	df := makeDF(sc, 20, 4)
	sel, err := df.Select("x")
	if err != nil {
		t.Fatal(err)
	}
	if sel.Schema().NumCols() != 1 {
		t.Errorf("select schema = %v", sel.Schema())
	}
	rows, err := sel.Collect()
	if err != nil || len(rows) != 20 || len(rows[0]) != 1 {
		t.Fatalf("select rows: %v %v", rows, err)
	}
	n, err := df.Where(GreaterThanOrEqual{Col: "id", Value: types.IntValue(15)}).Count()
	if err != nil || n != 5 {
		t.Errorf("where count = %d, %v", n, err)
	}
}

func TestDataFrameRepartition(t *testing.T) {
	sc := testCtx(nil)
	df := makeDF(sc, 30, 6)
	rp, err := df.Repartition(2)
	if err != nil {
		t.Fatal(err)
	}
	np, _ := rp.NumPartitions()
	if np != 2 {
		t.Errorf("partitions = %d", np)
	}
	n, _ := rp.Count()
	if n != 30 {
		t.Errorf("count after repartition = %d", n)
	}
}

func TestEvalFilterSemantics(t *testing.T) {
	s := dfSchema
	row := types.Row{types.IntValue(5), types.FloatValue(2.5)}
	cases := []struct {
		f    Filter
		want bool
	}{
		{EqualTo{Col: "id", Value: types.IntValue(5)}, true},
		{GreaterThan{Col: "id", Value: types.IntValue(5)}, false},
		{GreaterThanOrEqual{Col: "id", Value: types.IntValue(5)}, true},
		{LessThan{Col: "x", Value: types.FloatValue(3)}, true},
		{LessThanOrEqual{Col: "x", Value: types.FloatValue(2)}, false},
		{IsNull{Col: "id"}, false},
		{IsNotNull{Col: "id"}, true},
	}
	for _, c := range cases {
		if got := EvalFilter(c.f, row, &s); got != c.want {
			t.Errorf("%+v = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestSourceRegistry(t *testing.T) {
	if _, ok := LookupSource("no.such.source"); ok {
		t.Error("lookup of unregistered source should fail")
	}
	sc := testCtx(nil)
	if _, err := sc.Read().Format("no.such.source").Load(); err == nil {
		t.Error("load from unregistered source should fail")
	}
	df := makeDF(sc, 1, 1)
	if err := df.Write().Format("no.such.source").Save(); err == nil {
		t.Error("save to unregistered source should fail")
	}
}

func TestExecutorPlacementDeterministic(t *testing.T) {
	sc := testCtx(nil)
	for p := 0; p < 8; p++ {
		want := fmt.Sprintf("s%d", p%4)
		if got := sc.ExecutorFor(p); got != want {
			t.Errorf("ExecutorFor(%d) = %q, want %q", p, got, want)
		}
	}
}
