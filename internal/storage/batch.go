package storage

import (
	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
)

// Batch is one unit of vectorized scan output: the immutable column vectors
// of a single ROS container (or a WOS snapshot) plus a selection vector of
// the row indexes that survived MVCC visibility and the hash-range mask.
// Predicate kernels narrow Sel in place; only the rows left in Sel at the
// end of the pipeline are ever materialized into types.Row form (late
// materialization, the MonetDB/X100 execution model).
type Batch struct {
	Schema types.Schema
	Cols   []Column
	// Hashes holds the per-row segmentation hash, aligned with the columns.
	// Kernels over HASH(segcols) predicates evaluate against it directly.
	Hashes []uint32
	// Sel lists surviving row indexes in ascending order.
	Sel []int32
}

// Len returns the number of selected rows.
func (b *Batch) Len() int { return len(b.Sel) }

// Row materializes physical row i (not a selection index) across all
// columns. Used by residual-predicate evaluation.
func (b *Batch) Row(i int, dst types.Row) types.Row {
	if cap(dst) < len(b.Cols) {
		dst = make(types.Row, len(b.Cols))
	}
	dst = dst[:len(b.Cols)]
	for j, col := range b.Cols {
		dst[j] = col.Get(i)
	}
	return dst
}

// Materialize builds one types.Row per selected row, restricted to the
// given column indexes (nil = all columns, in schema order). This is the
// only place a vectorized scan boxes values, and it only runs for rows that
// survived every kernel.
func (b *Batch) Materialize(colIdx []int) []types.Row {
	if len(b.Sel) == 0 {
		return nil
	}
	width := len(colIdx)
	if colIdx == nil {
		width = len(b.Cols)
	}
	out := make([]types.Row, len(b.Sel))
	// Flat backing array: one allocation for all rows' values.
	backing := make([]types.Value, len(b.Sel)*width)
	for k, i := range b.Sel {
		row := backing[k*width : (k+1)*width : (k+1)*width]
		if colIdx == nil {
			for j, col := range b.Cols {
				row[j] = col.Get(int(i))
			}
		} else {
			for j, ci := range colIdx {
				row[j] = b.Cols[ci].Get(int(i))
			}
		}
		out[k] = row
	}
	return out
}

// coversRing reports whether hr covers the whole hash ring (no mask needed).
func coversRing(hr vhash.Range) bool { return hr.Lo == 0 && hr.Hi == vhash.RingSize }

// batchFromContainer builds the container's batch: the selection vector is
// computed in one pass under a single RLock — the delete vector and the
// hash-range mask are applied together, instead of the row-at-a-time path's
// per-row lock acquisition.
func batchFromContainer(c *ROSContainer, schema types.Schema, vis Visibility, hr vhash.Range) *Batch {
	c.mu.RLock()
	if !vis.seesInsert(c.start) {
		c.mu.RUnlock()
		return nil
	}
	sel := make([]int32, 0, c.RowCount)
	full := coversRing(hr)
	if c.del == nil {
		// No deletes recorded: the selection is purely the hash mask and can
		// be built without consulting MVCC per row.
		c.mu.RUnlock()
		if full {
			for i := 0; i < c.RowCount; i++ {
				sel = append(sel, int32(i))
			}
		} else {
			for i, h := range c.Hashes {
				if hr.Contains(h) {
					sel = append(sel, int32(i))
				}
			}
		}
	} else {
		del := c.del
		for i := 0; i < c.RowCount; i++ {
			if !full && !hr.Contains(c.Hashes[i]) {
				continue
			}
			if vis.seesDelete(del[i]) {
				continue
			}
			sel = append(sel, int32(i))
		}
		c.mu.RUnlock()
	}
	return &Batch{Schema: schema, Cols: c.Cols, Hashes: c.Hashes, Sel: sel}
}

// ScanBatches calls fn once per ROS container (and once for the WOS
// snapshot, if non-empty) with MVCC visibility and the hash-range mask
// already applied in the selection vector. Returning false from fn stops the
// scan. Batches share the containers' immutable column vectors; callers must
// not mutate them.
func (s *Store) ScanBatches(vis Visibility, hr vhash.Range, fn func(*Batch) bool) error {
	return s.ScanBatchesPruned(vis, hr, nil, fn)
}

// ScanBatchesPruned is ScanBatches with a container-level prune hook: before a
// ROS container's selection vector is built, prune is consulted with its zone
// maps and physical row count, and a true return skips the container entirely
// (the caller has proven, from the min/max bounds, that no row can satisfy its
// predicate). A container missing its zone maps is consulted with nil stats so
// the caller can account for the lost pruning opportunity, but it is never
// pruned (its verdict is ignored). The WOS snapshot keeps no zone maps
// and is never pruned. A nil prune scans everything.
func (s *Store) ScanBatchesPruned(vis Visibility, hr vhash.Range, prune func(stats []ColStats, rowCount int) bool, fn func(*Batch) bool) error {
	for _, c := range s.snapshot() {
		if prune != nil {
			if len(c.stats) == len(c.Cols) {
				if prune(c.stats, c.RowCount) {
					continue
				}
			} else {
				prune(nil, c.RowCount)
			}
		}
		b := batchFromContainer(c, s.schema, vis, hr)
		if b == nil {
			continue
		}
		if !fn(b) {
			return nil
		}
	}
	rows, hashes := s.wos.VisibleRows(vis, hr)
	if len(rows) == 0 {
		return nil
	}
	cols, err := ColumnsFromRows(rows, s.schema)
	if err != nil {
		return err
	}
	sel := make([]int32, len(rows))
	for i := range sel {
		sel[i] = int32(i)
	}
	fn(&Batch{Schema: s.schema, Cols: cols, Hashes: hashes, Sel: sel})
	return nil
}

// CountVisible returns the number of rows visible under vis inside hr using
// selection-vector popcounts — no row materialization.
func (s *Store) CountVisible(vis Visibility, hr vhash.Range) int {
	n := 0
	_ = s.ScanBatches(vis, hr, func(b *Batch) bool {
		n += len(b.Sel)
		return true
	})
	return n
}

// VisibleRows snapshots the WOS rows visible under vis inside hr, returning
// the rows and their segmentation hashes. Row slices are shared with the
// buffer (WOS rows are immutable once appended); callers must not mutate
// them.
func (w *WOS) VisibleRows(vis Visibility, hr vhash.Range) ([]types.Row, []uint32) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var rows []types.Row
	var hashes []uint32
	for i, r := range w.rows {
		if !vis.RowVisible(w.starts[i], w.dels[i]) || !hr.Contains(w.hashes[i]) {
			continue
		}
		rows = append(rows, r)
		hashes = append(hashes, w.hashes[i])
	}
	return rows, hashes
}
