package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
)

func batchSchema() types.Schema {
	return types.Schema{Cols: []types.Column{
		{Name: "id", T: types.Int64},
		{Name: "name", T: types.Varchar},
	}}
}

func batchRows(lo, hi int) []types.Row {
	var rows []types.Row
	for i := lo; i < hi; i++ {
		rows = append(rows, types.Row{
			types.IntValue(int64(i)),
			types.StringValue(fmt.Sprintf("r%d", i)),
		})
	}
	return rows
}

// collectScan gathers the row-at-a-time reference scan's output.
func collectScan(s *Store, vis Visibility, hr vhash.Range) []types.Row {
	var out []types.Row
	s.Scan(vis, hr, func(r types.Row) bool {
		out = append(out, r.Clone())
		return true
	})
	return out
}

// collectBatches materializes every batch, mirroring the vectorized path.
func collectBatches(t *testing.T, s *Store, vis Visibility, hr vhash.Range) []types.Row {
	t.Helper()
	var out []types.Row
	err := s.ScanBatches(vis, hr, func(b *Batch) bool {
		out = append(out, b.Materialize(nil)...)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func rowsEqual(a, b []types.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if types.Compare(a[i][j], b[i][j]) != 0 {
				return false
			}
		}
	}
	return true
}

// TestScanBatchesMatchesScan drives both scan paths through a sequence of
// MVCC states — ROS containers, WOS rows, deletes, provisional tags — and
// checks they agree row for row at every visibility and hash range.
func TestScanBatchesMatchesScan(t *testing.T) {
	schema := batchSchema()
	s := NewStore(schema, []int{0})
	if err := s.AppendROS(batchRows(0, 100), 2); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendROS(batchRows(100, 150), 4); err != nil {
		t.Fatal(err)
	}
	s.AppendWOS(batchRows(150, 170), 6)
	// Committed delete at epoch 5 hitting both a ROS container and (no-op)
	// the WOS rows that aren't visible yet at epoch 5.
	s.DeleteWhere(Visibility{Epoch: 5}, 5, func(r types.Row) bool { return r[0].I%7 == 0 })
	// A provisional transaction: inserts and deletes tagged but uncommitted.
	tag := uint64(ProvisionalBase + 1)
	s.AppendWOS(batchRows(170, 180), tag)
	s.DeleteWhere(Visibility{Epoch: 6, Tag: tag}, tag, func(r types.Row) bool { return r[0].I%11 == 3 })

	segs := vhash.Segments(3)
	ranges := append([]vhash.Range{{Lo: 0, Hi: vhash.RingSize}}, segs...)
	for _, vis := range []Visibility{
		{Epoch: 1},             // before everything
		{Epoch: 2},             // first container only
		{Epoch: 4},             // both containers, delete not yet visible
		{Epoch: 5},             // delete visible
		{Epoch: 6},             // WOS rows visible
		{Epoch: 6, Tag: tag},   // plus this transaction's provisional work
		{Epoch: 100},           // far future
		{Epoch: 100, Tag: tag}, // future + provisional
	} {
		for ri, hr := range ranges {
			want := collectScan(s, vis, hr)
			got := collectBatches(t, s, vis, hr)
			if !rowsEqual(got, want) {
				t.Fatalf("vis %+v range %d: batches returned %d rows, scan %d",
					vis, ri, len(got), len(want))
			}
			if n := s.CountVisible(vis, hr); n != len(want) {
				t.Fatalf("vis %+v range %d: CountVisible = %d, want %d", vis, ri, n, len(want))
			}
		}
	}

	// After moveout the WOS rows become a ROS container; equivalence and
	// counts must be unchanged.
	if err := s.Moveout(6); err != nil {
		t.Fatal(err)
	}
	for _, vis := range []Visibility{{Epoch: 6}, {Epoch: 100}} {
		want := collectScan(s, vis, fullRing())
		got := collectBatches(t, s, vis, fullRing())
		if !rowsEqual(got, want) {
			t.Fatalf("post-moveout vis %+v: batches %d rows, scan %d", vis, len(got), len(want))
		}
	}
}

func TestScanBatchesEarlyStop(t *testing.T) {
	s := NewStore(batchSchema(), []int{0})
	for i := 0; i < 3; i++ {
		if err := s.AppendROS(batchRows(i*10, i*10+10), 1); err != nil {
			t.Fatal(err)
		}
	}
	calls := 0
	if err := s.ScanBatches(Visibility{Epoch: 1}, fullRing(), func(b *Batch) bool {
		calls++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("ScanBatches ignored early stop: %d calls", calls)
	}
}

func TestBatchMaterializeSubset(t *testing.T) {
	s := NewStore(batchSchema(), []int{0})
	if err := s.AppendROS(batchRows(0, 5), 1); err != nil {
		t.Fatal(err)
	}
	var got []types.Row
	_ = s.ScanBatches(Visibility{Epoch: 1}, fullRing(), func(b *Batch) bool {
		got = append(got, b.Materialize([]int{1})...)
		return true
	})
	if len(got) != 5 {
		t.Fatalf("got %d rows", len(got))
	}
	for i, r := range got {
		if len(r) != 1 || r[0].S != fmt.Sprintf("r%d", i) {
			t.Fatalf("row %d = %v, want single name column", i, r)
		}
	}
}

func TestCompressColumnRoundTrip(t *testing.T) {
	// Low-cardinality null-free int column compresses to RLE; Densify
	// restores an identical dense column.
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = int64(i / 100)
	}
	dense := &Int64Column{Vals: vals}
	comp := CompressColumn(dense)
	if _, ok := comp.(*Int64RLEColumn); !ok {
		t.Fatalf("expected RLE, got %T", comp)
	}
	back := Densify(comp)
	d2, ok := back.(*Int64Column)
	if !ok || len(d2.Vals) != len(vals) {
		t.Fatalf("Densify returned %T len %d", back, back.Len())
	}
	for i := range vals {
		if d2.Vals[i] != vals[i] {
			t.Fatalf("Densify[%d] = %d, want %d", i, d2.Vals[i], vals[i])
		}
	}

	// Columns that must NOT compress: nullable, short, high-cardinality.
	nullable := &Int64Column{Vals: make([]int64, 500), Nulls: make([]bool, 500)}
	nullable.Nulls[3] = true
	if _, ok := CompressColumn(nullable).(*Int64RLEColumn); ok {
		t.Fatal("nullable column must stay dense")
	}
	short := &Int64Column{Vals: []int64{1, 1, 1}}
	if _, ok := CompressColumn(short).(*Int64RLEColumn); ok {
		t.Fatal("short column must stay dense")
	}
	hi := make([]int64, 500)
	for i := range hi {
		hi[i] = int64(i)
	}
	if _, ok := CompressColumn(&Int64Column{Vals: hi}).(*Int64RLEColumn); ok {
		t.Fatal("high-cardinality column must stay dense")
	}
}

func TestRLEColumnEncodesAndDecodes(t *testing.T) {
	vals := make([]int64, 200)
	for i := range vals {
		vals[i] = int64(i / 50)
	}
	rle := CompressColumn(&Int64Column{Vals: vals})
	if ChooseEncoding(rle) != EncRLE {
		t.Fatalf("RLE column should choose RLE encoding, got %v", ChooseEncoding(rle))
	}
	data, err := EncodeColumn(rle, ChooseEncoding(rle))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeColumn(data)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Len() != len(vals) {
		t.Fatalf("decoded len %d, want %d", dec.Len(), len(vals))
	}
	for i := range vals {
		if dec.Get(i).I != vals[i] {
			t.Fatalf("decoded[%d] = %d, want %d", i, dec.Get(i).I, vals[i])
		}
	}
}

// TestScanBatchesRace runs vectorized scans concurrently with deletes,
// moveouts, inserts, and rebases. Run under -race (make check) this verifies
// the single-RLock selection build and immutable-column sharing are sound.
func TestScanBatchesRace(t *testing.T) {
	schema := batchSchema()
	s := NewStore(schema, []int{0})
	if err := s.AppendROS(batchRows(0, 2000), 1); err != nil {
		t.Fatal(err)
	}
	const (
		readers = 4
		rounds  = 50
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			segs := vhash.Segments(4)
			for {
				select {
				case <-stop:
					return
				default:
				}
				vis := Visibility{Epoch: uint64(1 + rng.Intn(200))}
				hr := segs[rng.Intn(len(segs))]
				err := s.ScanBatches(vis, hr, func(b *Batch) bool {
					// Materialize a subset to exercise column reads.
					b.Materialize([]int{0})
					return true
				})
				if err != nil {
					t.Error(err)
					return
				}
				s.CountVisible(vis, hr)
			}
		}(int64(r))
	}
	// Writer: interleave every mutation the tuple mover and DML paths use.
	for i := 0; i < rounds; i++ {
		epoch := uint64(2 + i)
		tag := ProvisionalBase + 100 + uint64(i)
		s.AppendWOS(batchRows(2000+i*10, 2000+i*10+10), tag)
		if i%2 == 0 {
			s.RebaseInserts(tag, epoch)
		} else {
			s.DropInserts(tag)
		}
		s.DeleteWhere(Visibility{Epoch: epoch}, epoch, func(r types.Row) bool {
			return r[0].I%97 == int64(i%97)
		})
		if i%5 == 0 {
			if err := s.Moveout(epoch); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
