package storage

import (
	"container/list"
	"sync"
)

// ContainerCache is a byte-bounded LRU of decoded ROS containers keyed by
// file path. It fronts container loads during cluster open/recovery so that
// repeated reopens (the kill-and-restart chaos suite, a node cycling through
// restarts) decode each container file once instead of per open. Cached
// entries hold the pristine on-disk state; Load hands out Clones, so clusters
// sharing a cache never share mutable delete vectors.
type ContainerCache struct {
	mu       sync.Mutex
	maxBytes int
	curBytes int
	lru      *list.List // front = most recent; values are *cacheEntry
	entries  map[string]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	key   string
	c     *ROSContainer
	bytes int
}

// DefaultCacheBytes bounds a container cache when no explicit budget is
// configured (64 MiB).
const DefaultCacheBytes = 64 << 20

// NewContainerCache returns a cache bounded to maxBytes of decoded column
// data (<= 0 uses DefaultCacheBytes).
func NewContainerCache(maxBytes int) *ContainerCache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &ContainerCache{
		maxBytes: maxBytes,
		lru:      list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Load returns a private clone of the container cached under key, calling
// read to decode it on a miss. A single oversized container is still cached
// alone and evicted on the next insert.
func (cc *ContainerCache) Load(key string, read func() (*ROSContainer, error)) (*ROSContainer, error) {
	cc.mu.Lock()
	if el, ok := cc.entries[key]; ok {
		cc.lru.MoveToFront(el)
		cc.hits++
		c := el.Value.(*cacheEntry).c
		cc.mu.Unlock()
		return c.Clone(), nil
	}
	cc.misses++
	cc.mu.Unlock()

	c, err := read()
	if err != nil {
		return nil, err
	}
	size := c.DataBytes() + 12*c.RowCount // columns + hashes + delete vector
	cc.mu.Lock()
	if _, ok := cc.entries[key]; !ok {
		cc.entries[key] = cc.lru.PushFront(&cacheEntry{key: key, c: c, bytes: size})
		cc.curBytes += size
		for cc.curBytes > cc.maxBytes && cc.lru.Len() > 1 {
			oldest := cc.lru.Back()
			e := oldest.Value.(*cacheEntry)
			cc.lru.Remove(oldest)
			delete(cc.entries, e.key)
			cc.curBytes -= e.bytes
		}
	}
	cc.mu.Unlock()
	return c.Clone(), nil
}

// Invalidate drops a key (the checkpoint rewrote or removed its file).
func (cc *ContainerCache) Invalidate(key string) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if el, ok := cc.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		cc.lru.Remove(el)
		delete(cc.entries, e.key)
		cc.curBytes -= e.bytes
	}
}

// Stats reports cache hit/miss counts and the current resident bytes.
func (cc *ContainerCache) Stats() (hits, misses int64, bytes int) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.hits, cc.misses, cc.curBytes
}
