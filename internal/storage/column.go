// Package storage implements the engine's columnar storage: typed column
// vectors, Read Optimized Storage (ROS) containers with light-weight column
// encodings, a Write Optimized Storage (WOS) row buffer, and per-container
// delete vectors. This mirrors the Vertica storage organization sketched in
// §2.1.1 of the paper; the details follow the C-Store lineage (plain, RLE,
// delta and dictionary encodings) at the fidelity the connector experiments
// need.
package storage

import (
	"fmt"

	"vsfabric/internal/types"
)

// Column is an immutable typed vector of values with a null bitmap.
type Column interface {
	// Type returns the value type stored.
	Type() types.Type
	// Len returns the number of rows.
	Len() int
	// Get returns the value at row i.
	Get(i int) types.Value
	// IsNull reports whether row i is NULL.
	IsNull(i int) bool
}

// Int64Column stores 8-byte integers.
type Int64Column struct {
	Vals  []int64
	Nulls []bool // nil means no nulls
}

// Type implements Column.
func (c *Int64Column) Type() types.Type { return types.Int64 }

// Len implements Column.
func (c *Int64Column) Len() int { return len(c.Vals) }

// IsNull implements Column.
func (c *Int64Column) IsNull(i int) bool { return c.Nulls != nil && c.Nulls[i] }

// Get implements Column.
func (c *Int64Column) Get(i int) types.Value {
	if c.IsNull(i) {
		return types.NullValue(types.Int64)
	}
	return types.IntValue(c.Vals[i])
}

// Float64Column stores 8-byte floats.
type Float64Column struct {
	Vals  []float64
	Nulls []bool
}

// Type implements Column.
func (c *Float64Column) Type() types.Type { return types.Float64 }

// Len implements Column.
func (c *Float64Column) Len() int { return len(c.Vals) }

// IsNull implements Column.
func (c *Float64Column) IsNull(i int) bool { return c.Nulls != nil && c.Nulls[i] }

// Get implements Column.
func (c *Float64Column) Get(i int) types.Value {
	if c.IsNull(i) {
		return types.NullValue(types.Float64)
	}
	return types.FloatValue(c.Vals[i])
}

// StringColumn stores variable-length strings.
type StringColumn struct {
	Vals  []string
	Nulls []bool
}

// Type implements Column.
func (c *StringColumn) Type() types.Type { return types.Varchar }

// Len implements Column.
func (c *StringColumn) Len() int { return len(c.Vals) }

// IsNull implements Column.
func (c *StringColumn) IsNull(i int) bool { return c.Nulls != nil && c.Nulls[i] }

// Get implements Column.
func (c *StringColumn) Get(i int) types.Value {
	if c.IsNull(i) {
		return types.NullValue(types.Varchar)
	}
	return types.StringValue(c.Vals[i])
}

// BoolColumn stores booleans.
type BoolColumn struct {
	Vals  []bool
	Nulls []bool
}

// Type implements Column.
func (c *BoolColumn) Type() types.Type { return types.Bool }

// Len implements Column.
func (c *BoolColumn) Len() int { return len(c.Vals) }

// IsNull implements Column.
func (c *BoolColumn) IsNull(i int) bool { return c.Nulls != nil && c.Nulls[i] }

// Get implements Column.
func (c *BoolColumn) Get(i int) types.Value {
	if c.IsNull(i) {
		return types.NullValue(types.Bool)
	}
	return types.BoolValue(c.Vals[i])
}

// Int64RLEColumn stores an int64 vector as run-length-encoded (end, value)
// pairs kept in memory, so scans over sorted or low-cardinality columns
// operate directly on the compressed form (C-Store's operate-on-compressed-
// data principle). Run k covers row indexes [RunEnds[k-1], RunEnds[k]).
// RLE columns never contain NULLs: CompressColumn only converts null-free
// vectors.
type Int64RLEColumn struct {
	RunEnds []int32
	RunVals []int64
}

// Type implements Column.
func (c *Int64RLEColumn) Type() types.Type { return types.Int64 }

// Len implements Column.
func (c *Int64RLEColumn) Len() int {
	if len(c.RunEnds) == 0 {
		return 0
	}
	return int(c.RunEnds[len(c.RunEnds)-1])
}

// IsNull implements Column.
func (c *Int64RLEColumn) IsNull(int) bool { return false }

// RunOf returns the run index covering row i.
func (c *Int64RLEColumn) RunOf(i int) int {
	lo, hi := 0, len(c.RunEnds)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if int(c.RunEnds[mid]) <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get implements Column.
func (c *Int64RLEColumn) Get(i int) types.Value {
	return types.IntValue(c.RunVals[c.RunOf(i)])
}

// minRLERows is the smallest vector worth compressing; below it the run
// bookkeeping costs more than it saves.
const minRLERows = 64

// CompressColumn converts a dense column to a compressed in-memory form when
// profitable (currently: null-free int64 vectors whose run count is under a
// quarter of the row count, mirroring ChooseEncoding's RLE heuristic).
// Otherwise it returns the column unchanged.
func CompressColumn(c Column) Column {
	col, ok := c.(*Int64Column)
	if !ok || col.Nulls != nil || len(col.Vals) < minRLERows {
		return c
	}
	runs := 1
	for i := 1; i < len(col.Vals); i++ {
		if col.Vals[i] != col.Vals[i-1] {
			runs++
		}
	}
	if runs*4 >= len(col.Vals) {
		return c
	}
	ends := make([]int32, 0, runs)
	vals := make([]int64, 0, runs)
	for i := 1; i < len(col.Vals); i++ {
		if col.Vals[i] != col.Vals[i-1] {
			ends = append(ends, int32(i))
			vals = append(vals, col.Vals[i-1])
		}
	}
	ends = append(ends, int32(len(col.Vals)))
	vals = append(vals, col.Vals[len(col.Vals)-1])
	return &Int64RLEColumn{RunEnds: ends, RunVals: vals}
}

// Densify converts a compressed column back to its dense representation;
// dense columns pass through unchanged. Serialization and other paths that
// type-switch on the dense column set call this first.
func Densify(c Column) Column {
	col, ok := c.(*Int64RLEColumn)
	if !ok {
		return c
	}
	vals := make([]int64, 0, col.Len())
	prev := int32(0)
	for k, end := range col.RunEnds {
		for i := prev; i < end; i++ {
			vals = append(vals, col.RunVals[k])
		}
		prev = end
	}
	return &Int64Column{Vals: vals}
}

// Builder accumulates values of one type and produces an immutable Column.
type Builder struct {
	t        types.Type
	ints     []int64
	floats   []float64
	strs     []string
	bools    []bool
	nulls    []bool
	anyNulls bool
}

// NewBuilder returns a builder for type t.
func NewBuilder(t types.Type) *Builder { return &Builder{t: t} }

// Append adds one value; the value must match the builder's type or be NULL.
func (b *Builder) Append(v types.Value) error {
	if !v.Null && v.T != b.t {
		return fmt.Errorf("storage: appending %v value to %v column", v.T, b.t)
	}
	b.nulls = append(b.nulls, v.Null)
	if v.Null {
		b.anyNulls = true
	}
	switch b.t {
	case types.Int64:
		b.ints = append(b.ints, v.I)
	case types.Float64:
		b.floats = append(b.floats, v.F)
	case types.Varchar:
		b.strs = append(b.strs, v.S)
	case types.Bool:
		b.bools = append(b.bools, v.B)
	default:
		return fmt.Errorf("storage: unsupported column type %v", b.t)
	}
	return nil
}

// Len returns the number of values appended so far.
func (b *Builder) Len() int { return len(b.nulls) }

// Build returns the immutable column. The builder must not be reused.
func (b *Builder) Build() Column {
	var nulls []bool
	if b.anyNulls {
		nulls = b.nulls
	}
	switch b.t {
	case types.Int64:
		return &Int64Column{Vals: b.ints, Nulls: nulls}
	case types.Float64:
		return &Float64Column{Vals: b.floats, Nulls: nulls}
	case types.Varchar:
		return &StringColumn{Vals: b.strs, Nulls: nulls}
	case types.Bool:
		return &BoolColumn{Vals: b.bools, Nulls: nulls}
	default:
		panic(fmt.Sprintf("storage: unsupported column type %v", b.t))
	}
}

// ColumnsFromRows builds one column per schema column from a row slice.
func ColumnsFromRows(rows []types.Row, schema types.Schema) ([]Column, error) {
	builders := make([]*Builder, schema.NumCols())
	for i, c := range schema.Cols {
		builders[i] = NewBuilder(c.T)
	}
	for _, r := range rows {
		if len(r) != schema.NumCols() {
			return nil, fmt.Errorf("storage: row width %d != schema width %d", len(r), schema.NumCols())
		}
		for i, v := range r {
			if err := builders[i].Append(v); err != nil {
				return nil, err
			}
		}
	}
	cols := make([]Column, len(builders))
	for i, b := range builders {
		cols[i] = b.Build()
	}
	return cols, nil
}
