// Package storage implements the engine's columnar storage: typed column
// vectors, Read Optimized Storage (ROS) containers with light-weight column
// encodings, a Write Optimized Storage (WOS) row buffer, and per-container
// delete vectors. This mirrors the Vertica storage organization sketched in
// §2.1.1 of the paper; the details follow the C-Store lineage (plain, RLE,
// delta and dictionary encodings) at the fidelity the connector experiments
// need.
package storage

import (
	"fmt"

	"vsfabric/internal/types"
)

// Column is an immutable typed vector of values with a null bitmap.
type Column interface {
	// Type returns the value type stored.
	Type() types.Type
	// Len returns the number of rows.
	Len() int
	// Get returns the value at row i.
	Get(i int) types.Value
	// IsNull reports whether row i is NULL.
	IsNull(i int) bool
}

// Int64Column stores 8-byte integers.
type Int64Column struct {
	Vals  []int64
	Nulls []bool // nil means no nulls
}

// Type implements Column.
func (c *Int64Column) Type() types.Type { return types.Int64 }

// Len implements Column.
func (c *Int64Column) Len() int { return len(c.Vals) }

// IsNull implements Column.
func (c *Int64Column) IsNull(i int) bool { return c.Nulls != nil && c.Nulls[i] }

// Get implements Column.
func (c *Int64Column) Get(i int) types.Value {
	if c.IsNull(i) {
		return types.NullValue(types.Int64)
	}
	return types.IntValue(c.Vals[i])
}

// Float64Column stores 8-byte floats.
type Float64Column struct {
	Vals  []float64
	Nulls []bool
}

// Type implements Column.
func (c *Float64Column) Type() types.Type { return types.Float64 }

// Len implements Column.
func (c *Float64Column) Len() int { return len(c.Vals) }

// IsNull implements Column.
func (c *Float64Column) IsNull(i int) bool { return c.Nulls != nil && c.Nulls[i] }

// Get implements Column.
func (c *Float64Column) Get(i int) types.Value {
	if c.IsNull(i) {
		return types.NullValue(types.Float64)
	}
	return types.FloatValue(c.Vals[i])
}

// StringColumn stores variable-length strings.
type StringColumn struct {
	Vals  []string
	Nulls []bool
}

// Type implements Column.
func (c *StringColumn) Type() types.Type { return types.Varchar }

// Len implements Column.
func (c *StringColumn) Len() int { return len(c.Vals) }

// IsNull implements Column.
func (c *StringColumn) IsNull(i int) bool { return c.Nulls != nil && c.Nulls[i] }

// Get implements Column.
func (c *StringColumn) Get(i int) types.Value {
	if c.IsNull(i) {
		return types.NullValue(types.Varchar)
	}
	return types.StringValue(c.Vals[i])
}

// BoolColumn stores booleans.
type BoolColumn struct {
	Vals  []bool
	Nulls []bool
}

// Type implements Column.
func (c *BoolColumn) Type() types.Type { return types.Bool }

// Len implements Column.
func (c *BoolColumn) Len() int { return len(c.Vals) }

// IsNull implements Column.
func (c *BoolColumn) IsNull(i int) bool { return c.Nulls != nil && c.Nulls[i] }

// Get implements Column.
func (c *BoolColumn) Get(i int) types.Value {
	if c.IsNull(i) {
		return types.NullValue(types.Bool)
	}
	return types.BoolValue(c.Vals[i])
}

// Builder accumulates values of one type and produces an immutable Column.
type Builder struct {
	t        types.Type
	ints     []int64
	floats   []float64
	strs     []string
	bools    []bool
	nulls    []bool
	anyNulls bool
}

// NewBuilder returns a builder for type t.
func NewBuilder(t types.Type) *Builder { return &Builder{t: t} }

// Append adds one value; the value must match the builder's type or be NULL.
func (b *Builder) Append(v types.Value) error {
	if !v.Null && v.T != b.t {
		return fmt.Errorf("storage: appending %v value to %v column", v.T, b.t)
	}
	b.nulls = append(b.nulls, v.Null)
	if v.Null {
		b.anyNulls = true
	}
	switch b.t {
	case types.Int64:
		b.ints = append(b.ints, v.I)
	case types.Float64:
		b.floats = append(b.floats, v.F)
	case types.Varchar:
		b.strs = append(b.strs, v.S)
	case types.Bool:
		b.bools = append(b.bools, v.B)
	default:
		return fmt.Errorf("storage: unsupported column type %v", b.t)
	}
	return nil
}

// Len returns the number of values appended so far.
func (b *Builder) Len() int { return len(b.nulls) }

// Build returns the immutable column. The builder must not be reused.
func (b *Builder) Build() Column {
	var nulls []bool
	if b.anyNulls {
		nulls = b.nulls
	}
	switch b.t {
	case types.Int64:
		return &Int64Column{Vals: b.ints, Nulls: nulls}
	case types.Float64:
		return &Float64Column{Vals: b.floats, Nulls: nulls}
	case types.Varchar:
		return &StringColumn{Vals: b.strs, Nulls: nulls}
	case types.Bool:
		return &BoolColumn{Vals: b.bools, Nulls: nulls}
	default:
		panic(fmt.Sprintf("storage: unsupported column type %v", b.t))
	}
}

// ColumnsFromRows builds one column per schema column from a row slice.
func ColumnsFromRows(rows []types.Row, schema types.Schema) ([]Column, error) {
	builders := make([]*Builder, schema.NumCols())
	for i, c := range schema.Cols {
		builders[i] = NewBuilder(c.T)
	}
	for _, r := range rows {
		if len(r) != schema.NumCols() {
			return nil, fmt.Errorf("storage: row width %d != schema width %d", len(r), schema.NumCols())
		}
		for i, v := range r {
			if err := builders[i].Append(v); err != nil {
				return nil, err
			}
		}
	}
	cols := make([]Column, len(builders))
	for i, b := range builders {
		cols[i] = b.Build()
	}
	return cols, nil
}
