package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"vsfabric/internal/types"
)

// Encoding identifies how a column vector is serialized on "disk" (ROS spill,
// colfile column chunks). The set follows the C-Store/Vertica families the
// paper's storage layer is built on.
type Encoding byte

// Supported column encodings.
const (
	// EncPlain stores values verbatim: fixed 8-byte ints/floats, 1-byte
	// bools, length-prefixed strings.
	EncPlain Encoding = iota
	// EncRLE stores (runLength, value) pairs; ideal for sorted or
	// low-cardinality columns.
	EncRLE
	// EncDeltaVarint stores int64s as zigzag-varint deltas from the previous
	// value; ideal for monotonically increasing ids.
	EncDeltaVarint
	// EncDict stores a string dictionary plus varint codes; ideal for
	// repetitive strings.
	EncDict
)

func (e Encoding) String() string {
	switch e {
	case EncPlain:
		return "PLAIN"
	case EncRLE:
		return "RLE"
	case EncDeltaVarint:
		return "DELTA"
	case EncDict:
		return "DICT"
	default:
		return "?"
	}
}

// ChooseEncoding inspects a column and picks a reasonable encoding, the way
// the database's write path would.
func ChooseEncoding(c Column) Encoding {
	n := c.Len()
	if n == 0 {
		return EncPlain
	}
	switch col := c.(type) {
	case *Int64RLEColumn:
		return EncRLE
	case *Int64Column:
		runs, sorted := 1, true
		for i := 1; i < n; i++ {
			if col.Vals[i] != col.Vals[i-1] {
				runs++
			}
			if col.Vals[i] < col.Vals[i-1] {
				sorted = false
			}
		}
		if runs*4 < n {
			return EncRLE
		}
		if sorted {
			return EncDeltaVarint
		}
		return EncPlain
	case *StringColumn:
		distinct := make(map[string]struct{}, 64)
		for _, s := range col.Vals {
			distinct[s] = struct{}{}
			if len(distinct) > n/4+1 || len(distinct) > 1<<16 {
				return EncPlain
			}
		}
		return EncDict
	case *BoolColumn:
		return EncRLE
	default:
		return EncPlain
	}
}

// EncodeColumn serializes a column with the given encoding. The layout is:
// [type byte][encoding byte][varint rowCount][null bitmap?][payload].
func EncodeColumn(c Column, enc Encoding) ([]byte, error) {
	c = Densify(c) // the wire encoders type-switch on the dense column set
	var buf bytes.Buffer
	buf.WriteByte(byte(c.Type()))
	buf.WriteByte(byte(enc))
	writeUvarint(&buf, uint64(c.Len()))
	writeNulls(&buf, c)
	var err error
	switch enc {
	case EncPlain:
		err = encodePlain(&buf, c)
	case EncRLE:
		err = encodeRLE(&buf, c)
	case EncDeltaVarint:
		err = encodeDelta(&buf, c)
	case EncDict:
		err = encodeDict(&buf, c)
	default:
		err = fmt.Errorf("storage: unknown encoding %d", enc)
	}
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeColumn deserializes a column produced by EncodeColumn.
func DecodeColumn(data []byte) (Column, error) {
	r := bytes.NewReader(data)
	tb, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("storage: short column header: %w", err)
	}
	eb, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("storage: short column header: %w", err)
	}
	t, enc := types.Type(tb), Encoding(eb)
	n64, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("storage: bad row count: %w", err)
	}
	n := int(n64)
	nulls, err := readNulls(r, n)
	if err != nil {
		return nil, err
	}
	switch enc {
	case EncPlain:
		return decodePlain(r, t, n, nulls)
	case EncRLE:
		return decodeRLE(r, t, n, nulls)
	case EncDeltaVarint:
		return decodeDelta(r, t, n, nulls)
	case EncDict:
		return decodeDict(r, t, n, nulls)
	default:
		return nil, fmt.Errorf("storage: unknown encoding %d", enc)
	}
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

func writeVarint(buf *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutVarint(tmp[:], v)])
}

// writeNulls writes a presence marker byte followed by a packed bitmap when
// the column contains NULLs.
func writeNulls(buf *bytes.Buffer, c Column) {
	n := c.Len()
	any := false
	for i := 0; i < n; i++ {
		if c.IsNull(i) {
			any = true
			break
		}
	}
	if !any {
		buf.WriteByte(0)
		return
	}
	buf.WriteByte(1)
	bitmap := make([]byte, (n+7)/8)
	for i := 0; i < n; i++ {
		if c.IsNull(i) {
			bitmap[i/8] |= 1 << uint(i%8)
		}
	}
	buf.Write(bitmap)
}

func readNulls(r *bytes.Reader, n int) ([]bool, error) {
	marker, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("storage: short null marker: %w", err)
	}
	if marker == 0 {
		return nil, nil
	}
	bitmap := make([]byte, (n+7)/8)
	if _, err := readFull(r, bitmap); err != nil {
		return nil, fmt.Errorf("storage: short null bitmap: %w", err)
	}
	nulls := make([]bool, n)
	for i := 0; i < n; i++ {
		nulls[i] = bitmap[i/8]&(1<<uint(i%8)) != 0
	}
	return nulls, nil
}

func readFull(r *bytes.Reader, p []byte) (int, error) {
	total := 0
	for total < len(p) {
		n, err := r.Read(p[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func encodePlain(buf *bytes.Buffer, c Column) error {
	n := c.Len()
	var tmp [8]byte
	switch col := c.(type) {
	case *Int64Column:
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(tmp[:], uint64(col.Vals[i]))
			buf.Write(tmp[:])
		}
	case *Float64Column:
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(col.Vals[i]))
			buf.Write(tmp[:])
		}
	case *StringColumn:
		for i := 0; i < n; i++ {
			writeUvarint(buf, uint64(len(col.Vals[i])))
			buf.WriteString(col.Vals[i])
		}
	case *BoolColumn:
		for i := 0; i < n; i++ {
			if col.Vals[i] {
				buf.WriteByte(1)
			} else {
				buf.WriteByte(0)
			}
		}
	default:
		return fmt.Errorf("storage: plain encoding unsupported for %T", c)
	}
	return nil
}

func decodePlain(r *bytes.Reader, t types.Type, n int, nulls []bool) (Column, error) {
	var tmp [8]byte
	switch t {
	case types.Int64:
		vals := make([]int64, n)
		for i := range vals {
			if _, err := readFull(r, tmp[:]); err != nil {
				return nil, err
			}
			vals[i] = int64(binary.LittleEndian.Uint64(tmp[:]))
		}
		return &Int64Column{Vals: vals, Nulls: nulls}, nil
	case types.Float64:
		vals := make([]float64, n)
		for i := range vals {
			if _, err := readFull(r, tmp[:]); err != nil {
				return nil, err
			}
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(tmp[:]))
		}
		return &Float64Column{Vals: vals, Nulls: nulls}, nil
	case types.Varchar:
		vals := make([]string, n)
		for i := range vals {
			ln, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			b := make([]byte, ln)
			if _, err := readFull(r, b); err != nil {
				return nil, err
			}
			vals[i] = string(b)
		}
		return &StringColumn{Vals: vals, Nulls: nulls}, nil
	case types.Bool:
		vals := make([]bool, n)
		for i := range vals {
			b, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			vals[i] = b != 0
		}
		return &BoolColumn{Vals: vals, Nulls: nulls}, nil
	default:
		return nil, fmt.Errorf("storage: plain decoding unsupported for %v", t)
	}
}

// encodeRLE writes (varint runLength, value) pairs. NULL participates in runs
// via the bitmap, so values at NULL positions are encoded as the zero value.
func encodeRLE(buf *bytes.Buffer, c Column) error {
	n := c.Len()
	i := 0
	for i < n {
		j := i + 1
		for j < n && sameRun(c, i, j) {
			j++
		}
		writeUvarint(buf, uint64(j-i))
		switch col := c.(type) {
		case *Int64Column:
			writeVarint(buf, col.Vals[i])
		case *Float64Column:
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(col.Vals[i]))
			buf.Write(tmp[:])
		case *StringColumn:
			writeUvarint(buf, uint64(len(col.Vals[i])))
			buf.WriteString(col.Vals[i])
		case *BoolColumn:
			if col.Vals[i] {
				buf.WriteByte(1)
			} else {
				buf.WriteByte(0)
			}
		default:
			return fmt.Errorf("storage: RLE encoding unsupported for %T", c)
		}
		i = j
	}
	return nil
}

func sameRun(c Column, i, j int) bool {
	switch col := c.(type) {
	case *Int64Column:
		return col.Vals[i] == col.Vals[j]
	case *Float64Column:
		return math.Float64bits(col.Vals[i]) == math.Float64bits(col.Vals[j])
	case *StringColumn:
		return col.Vals[i] == col.Vals[j]
	case *BoolColumn:
		return col.Vals[i] == col.Vals[j]
	default:
		return false
	}
}

func decodeRLE(r *bytes.Reader, t types.Type, n int, nulls []bool) (Column, error) {
	read := 0
	var intVals []int64
	var floatVals []float64
	var strVals []string
	var boolVals []bool
	for read < n {
		run, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if run == 0 || read+int(run) > n {
			return nil, fmt.Errorf("storage: bad RLE run length %d at row %d/%d", run, read, n)
		}
		switch t {
		case types.Int64:
			v, err := binary.ReadVarint(r)
			if err != nil {
				return nil, err
			}
			for k := 0; k < int(run); k++ {
				intVals = append(intVals, v)
			}
		case types.Float64:
			var tmp [8]byte
			if _, err := readFull(r, tmp[:]); err != nil {
				return nil, err
			}
			v := math.Float64frombits(binary.LittleEndian.Uint64(tmp[:]))
			for k := 0; k < int(run); k++ {
				floatVals = append(floatVals, v)
			}
		case types.Varchar:
			ln, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			b := make([]byte, ln)
			if _, err := readFull(r, b); err != nil {
				return nil, err
			}
			for k := 0; k < int(run); k++ {
				strVals = append(strVals, string(b))
			}
		case types.Bool:
			bb, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			for k := 0; k < int(run); k++ {
				boolVals = append(boolVals, bb != 0)
			}
		default:
			return nil, fmt.Errorf("storage: RLE decoding unsupported for %v", t)
		}
		read += int(run)
	}
	switch t {
	case types.Int64:
		return &Int64Column{Vals: intVals, Nulls: nulls}, nil
	case types.Float64:
		return &Float64Column{Vals: floatVals, Nulls: nulls}, nil
	case types.Varchar:
		return &StringColumn{Vals: strVals, Nulls: nulls}, nil
	default:
		return &BoolColumn{Vals: boolVals, Nulls: nulls}, nil
	}
}

func encodeDelta(buf *bytes.Buffer, c Column) error {
	col, ok := c.(*Int64Column)
	if !ok {
		return fmt.Errorf("storage: delta encoding requires INTEGER column, got %T", c)
	}
	prev := int64(0)
	for _, v := range col.Vals {
		writeVarint(buf, v-prev)
		prev = v
	}
	return nil
}

func decodeDelta(r *bytes.Reader, t types.Type, n int, nulls []bool) (Column, error) {
	if t != types.Int64 {
		return nil, fmt.Errorf("storage: delta decoding requires INTEGER, got %v", t)
	}
	vals := make([]int64, n)
	prev := int64(0)
	for i := range vals {
		d, err := binary.ReadVarint(r)
		if err != nil {
			return nil, err
		}
		prev += d
		vals[i] = prev
	}
	return &Int64Column{Vals: vals, Nulls: nulls}, nil
}

func encodeDict(buf *bytes.Buffer, c Column) error {
	col, ok := c.(*StringColumn)
	if !ok {
		return fmt.Errorf("storage: dict encoding requires VARCHAR column, got %T", c)
	}
	codes := make(map[string]uint64, 64)
	var dict []string
	for _, s := range col.Vals {
		if _, ok := codes[s]; !ok {
			codes[s] = uint64(len(dict))
			dict = append(dict, s)
		}
	}
	writeUvarint(buf, uint64(len(dict)))
	for _, s := range dict {
		writeUvarint(buf, uint64(len(s)))
		buf.WriteString(s)
	}
	for _, s := range col.Vals {
		writeUvarint(buf, codes[s])
	}
	return nil
}

func decodeDict(r *bytes.Reader, t types.Type, n int, nulls []bool) (Column, error) {
	if t != types.Varchar {
		return nil, fmt.Errorf("storage: dict decoding requires VARCHAR, got %v", t)
	}
	dn, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	dict := make([]string, dn)
	for i := range dict {
		ln, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		b := make([]byte, ln)
		if _, err := readFull(r, b); err != nil {
			return nil, err
		}
		dict[i] = string(b)
	}
	vals := make([]string, n)
	for i := range vals {
		code, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if code >= dn {
			return nil, fmt.Errorf("storage: dict code %d out of range %d", code, dn)
		}
		vals[i] = dict[code]
	}
	return &StringColumn{Vals: vals, Nulls: nulls}, nil
}
