package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
)

// This file implements the durable forms of the storage layer: row blocks
// (the payload of WAL insert/delete records), ROS container files (one file
// per container, column pages serialized with the existing encodings), and
// WOS snapshots (the committed remainder of a write buffer at checkpoint).
// Every format ends in a CRC32 so recovery can reject torn or corrupt files.

var (
	rosMagicV1 = []byte("VRC1") // legacy: no zone-map section (stats recomputed on load)
	rosMagic   = []byte("VRC2") // current: per-column zone maps after the delete section
	wosMagic   = []byte("VWS1")
)

// writeStatValue serializes a non-null zone-map bound: type byte + payload.
func writeStatValue(buf *bytes.Buffer, v types.Value) {
	buf.WriteByte(byte(v.T))
	var tmp [8]byte
	switch v.T {
	case types.Int64:
		binary.LittleEndian.PutUint64(tmp[:], uint64(v.I))
		buf.Write(tmp[:])
	case types.Float64:
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.F))
		buf.Write(tmp[:])
	case types.Varchar:
		writeUvarint(buf, uint64(len(v.S)))
		buf.WriteString(v.S)
	case types.Bool:
		b := byte(0)
		if v.B {
			b = 1
		}
		buf.WriteByte(b)
	}
}

func readStatValue(r *bytes.Reader) (types.Value, error) {
	tb, err := r.ReadByte()
	if err != nil {
		return types.Value{}, err
	}
	var tmp [8]byte
	switch t := types.Type(tb); t {
	case types.Int64:
		if _, err := readFull(r, tmp[:]); err != nil {
			return types.Value{}, err
		}
		return types.IntValue(int64(binary.LittleEndian.Uint64(tmp[:]))), nil
	case types.Float64:
		if _, err := readFull(r, tmp[:]); err != nil {
			return types.Value{}, err
		}
		return types.FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(tmp[:]))), nil
	case types.Varchar:
		ln, err := binary.ReadUvarint(r)
		if err != nil {
			return types.Value{}, err
		}
		s := make([]byte, ln)
		if _, err := readFull(r, s); err != nil {
			return types.Value{}, err
		}
		return types.StringValue(string(s)), nil
	case types.Bool:
		b, err := r.ReadByte()
		if err != nil {
			return types.Value{}, err
		}
		return types.BoolValue(b != 0), nil
	default:
		return types.Value{}, fmt.Errorf("storage: bad zone-map value type %d", tb)
	}
}

func writeSchema(buf *bytes.Buffer, schema types.Schema) {
	writeUvarint(buf, uint64(schema.NumCols()))
	for _, c := range schema.Cols {
		writeUvarint(buf, uint64(len(c.Name)))
		buf.WriteString(c.Name)
		buf.WriteByte(byte(c.T))
	}
}

func readSchema(r *bytes.Reader) (types.Schema, error) {
	var schema types.Schema
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return schema, fmt.Errorf("storage: bad schema header: %w", err)
	}
	for i := uint64(0); i < n; i++ {
		ln, err := binary.ReadUvarint(r)
		if err != nil {
			return schema, err
		}
		name := make([]byte, ln)
		if _, err := readFull(r, name); err != nil {
			return schema, err
		}
		tb, err := r.ReadByte()
		if err != nil {
			return schema, err
		}
		schema.Cols = append(schema.Cols, types.Column{Name: string(name), T: types.Type(tb)})
	}
	return schema, nil
}

func writeColumns(buf *bytes.Buffer, cols []Column) error {
	for _, c := range cols {
		chunk, err := EncodeColumn(c, ChooseEncoding(c))
		if err != nil {
			return err
		}
		writeUvarint(buf, uint64(len(chunk)))
		buf.Write(chunk)
	}
	return nil
}

func readColumns(r *bytes.Reader, ncols, nrows int) ([]Column, error) {
	cols := make([]Column, ncols)
	for i := range cols {
		sz, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		chunk := make([]byte, sz)
		if _, err := readFull(r, chunk); err != nil {
			return nil, err
		}
		col, err := DecodeColumn(chunk)
		if err != nil {
			return nil, err
		}
		if col.Len() != nrows {
			return nil, fmt.Errorf("storage: column %d has %d rows, want %d", i, col.Len(), nrows)
		}
		cols[i] = col
	}
	return cols, nil
}

// EncodeRows serializes rows column-wise with the storage encodings plus the
// schema needed to decode them standalone — the payload format of WAL
// insert/delete records.
func EncodeRows(schema types.Schema, rows []types.Row) ([]byte, error) {
	var buf bytes.Buffer
	writeSchema(&buf, schema)
	writeUvarint(&buf, uint64(len(rows)))
	if len(rows) > 0 {
		cols, err := ColumnsFromRows(rows, schema)
		if err != nil {
			return nil, err
		}
		if err := writeColumns(&buf, cols); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// EncodeColumns serializes column vectors with their schema, in the exact
// layout of EncodeRows — the payload format of streamed wire result batches.
// nrows must match every column's length.
func EncodeColumns(schema types.Schema, cols []Column, nrows int) ([]byte, error) {
	var buf bytes.Buffer
	writeSchema(&buf, schema)
	writeUvarint(&buf, uint64(nrows))
	if nrows > 0 {
		if err := writeColumns(&buf, cols); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// DecodeColumns reverses EncodeColumns/EncodeRows without materializing
// rows: the decoded vectors can feed a Batch (or the wire) directly.
// nrows 0 returns nil columns with the schema intact.
func DecodeColumns(data []byte) (types.Schema, []Column, int, error) {
	r := bytes.NewReader(data)
	schema, err := readSchema(r)
	if err != nil {
		return schema, nil, 0, err
	}
	n64, err := binary.ReadUvarint(r)
	if err != nil {
		return schema, nil, 0, err
	}
	n := int(n64)
	if n == 0 {
		return schema, nil, 0, nil
	}
	cols, err := readColumns(r, schema.NumCols(), n)
	if err != nil {
		return schema, nil, 0, err
	}
	return schema, cols, n, nil
}

// DecodeRows reverses EncodeRows.
func DecodeRows(data []byte) (types.Schema, []types.Row, error) {
	schema, cols, n, err := DecodeColumns(data)
	if err != nil || n == 0 {
		return schema, nil, err
	}
	rows := make([]types.Row, n)
	backing := make([]types.Value, n*len(cols))
	for i := 0; i < n; i++ {
		row := backing[i*len(cols) : (i+1)*len(cols) : (i+1)*len(cols)]
		for j, c := range cols {
			row[j] = c.Get(i)
		}
		rows[i] = row
	}
	return schema, rows, nil
}

// sealCRC appends the IEEE CRC32 of everything written so far.
func sealCRC(buf *bytes.Buffer) []byte {
	sum := crc32.ChecksumIEEE(buf.Bytes())
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sum)
	buf.Write(tail[:])
	return buf.Bytes()
}

// checkCRC verifies and strips the trailing CRC32.
func checkCRC(data []byte, what string) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("storage: %s file too short", what)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("storage: %s file checksum mismatch", what)
	}
	return body, nil
}

// MarshalContainer serializes the committed view of a ROS container: the
// column pages, per-row segmentation hashes, the insert epoch, and the
// committed entries of the delete vector (provisional delete marks are
// written as live — the WAL carries the records that will re-apply them on
// recovery if their transaction commits). The container's start epoch must be
// committed; provisional containers are never persisted.
func MarshalContainer(c *ROSContainer) ([]byte, error) {
	c.mu.RLock()
	start := c.start
	var del []uint64
	if c.del != nil {
		del = append(make([]uint64, 0, len(c.del)), c.del...)
	}
	c.mu.RUnlock()
	if start >= ProvisionalBase {
		return nil, fmt.Errorf("storage: refusing to persist provisional container (tag %d)", start)
	}
	var buf bytes.Buffer
	buf.Write(rosMagic)
	writeUvarint(&buf, start)
	writeUvarint(&buf, uint64(c.RowCount))
	writeSchema(&buf, c.Schema)
	if err := writeColumns(&buf, c.Cols); err != nil {
		return nil, err
	}
	var tmp [4]byte
	for _, h := range c.Hashes {
		binary.LittleEndian.PutUint32(tmp[:], h)
		buf.Write(tmp[:])
	}
	anyDel := false
	for _, d := range del {
		if d != 0 && d < ProvisionalBase {
			anyDel = true
			break
		}
	}
	if !anyDel {
		buf.WriteByte(0)
	} else {
		buf.WriteByte(1)
		for _, d := range del {
			if d >= ProvisionalBase {
				d = 0
			}
			writeUvarint(&buf, d)
		}
	}
	// Zone-map section (VRC2): per-column null count and min/max bounds, so
	// recovery restores pruning metadata without rescanning the columns.
	stats := c.stats
	if len(stats) != len(c.Cols) {
		stats = ComputeStats(c.Cols)
	}
	for _, st := range stats {
		writeUvarint(&buf, uint64(st.NullCount))
		if st.HasMinMax {
			buf.WriteByte(1)
			writeStatValue(&buf, st.Min)
			writeStatValue(&buf, st.Max)
		} else {
			buf.WriteByte(0)
		}
	}
	return sealCRC(&buf), nil
}

// UnmarshalContainer reverses MarshalContainer. The returned container is
// clean (its DiskRef dirty flag unset) once SetDiskRef is called by the
// loader.
func UnmarshalContainer(data []byte) (*ROSContainer, error) {
	body, err := checkCRC(data, "ROS container")
	if err != nil {
		return nil, err
	}
	r := bytes.NewReader(body)
	head := make([]byte, len(rosMagic))
	if _, err := readFull(r, head); err != nil {
		return nil, err
	}
	hasStats := bytes.Equal(head, rosMagic)
	if !hasStats && !bytes.Equal(head, rosMagicV1) {
		return nil, fmt.Errorf("storage: bad ROS container magic %q", head)
	}
	start, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	n64, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	n := int(n64)
	schema, err := readSchema(r)
	if err != nil {
		return nil, err
	}
	cols, err := readColumns(r, schema.NumCols(), n)
	if err != nil {
		return nil, err
	}
	hashes := make([]uint32, n)
	var tmp [4]byte
	for i := range hashes {
		if _, err := readFull(r, tmp[:]); err != nil {
			return nil, err
		}
		hashes[i] = binary.LittleEndian.Uint32(tmp[:])
	}
	marker, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	var del []uint64
	if marker != 0 {
		del = make([]uint64, n)
		for i := range del {
			if del[i], err = binary.ReadUvarint(r); err != nil {
				return nil, err
			}
		}
	}
	var stats []ColStats
	if hasStats {
		stats = make([]ColStats, len(cols))
		for i := range stats {
			nulls, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			stats[i].NullCount = int(nulls)
			has, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			if has != 0 {
				stats[i].HasMinMax = true
				if stats[i].Min, err = readStatValue(r); err != nil {
					return nil, err
				}
				if stats[i].Max, err = readStatValue(r); err != nil {
					return nil, err
				}
			}
		}
	} else {
		// Legacy VRC1 file: rebuild the zone maps from the columns.
		stats = ComputeStats(cols)
	}
	return &ROSContainer{
		Schema:   schema,
		Cols:     cols,
		RowCount: n,
		Hashes:   hashes,
		stats:    stats,
		start:    start,
		del:      del,
	}, nil
}

// MarshalWOS serializes the committed rows of the store's write buffer
// (insert epoch committed; delete marks kept only when committed) for the
// checkpoint. Provisional rows are excluded — the WAL's carried-over records
// re-create them on recovery if their transaction ever commits. The returned
// count is the number of rows serialized; zero means no file is needed.
func (s *Store) MarshalWOS() ([]byte, int, error) {
	w := s.wos
	w.mu.RLock()
	var rows []types.Row
	var starts, dels []uint64
	for i := range w.rows {
		if w.starts[i] >= ProvisionalBase {
			continue
		}
		d := w.dels[i]
		if d >= ProvisionalBase {
			d = 0
		}
		rows = append(rows, w.rows[i])
		starts = append(starts, w.starts[i])
		dels = append(dels, d)
	}
	w.mu.RUnlock()
	if len(rows) == 0 {
		return nil, 0, nil
	}
	var buf bytes.Buffer
	buf.Write(wosMagic)
	writeUvarint(&buf, uint64(len(rows)))
	writeSchema(&buf, s.schema)
	cols, err := ColumnsFromRows(rows, s.schema)
	if err != nil {
		return nil, 0, err
	}
	if err := writeColumns(&buf, cols); err != nil {
		return nil, 0, err
	}
	for i := range rows {
		writeUvarint(&buf, starts[i])
		writeUvarint(&buf, dels[i])
	}
	return sealCRC(&buf), len(rows), nil
}

// LoadWOS restores a checkpointed WOS snapshot into the store's write buffer
// (crash recovery). Segmentation hashes are recomputed from the store's
// layout rather than persisted.
func (s *Store) LoadWOS(data []byte) error {
	body, err := checkCRC(data, "WOS snapshot")
	if err != nil {
		return err
	}
	r := bytes.NewReader(body)
	head := make([]byte, len(wosMagic))
	if _, err := readFull(r, head); err != nil {
		return err
	}
	if !bytes.Equal(head, wosMagic) {
		return fmt.Errorf("storage: bad WOS snapshot magic %q", head)
	}
	n64, err := binary.ReadUvarint(r)
	if err != nil {
		return err
	}
	n := int(n64)
	schema, err := readSchema(r)
	if err != nil {
		return err
	}
	cols, err := readColumns(r, schema.NumCols(), n)
	if err != nil {
		return err
	}
	w := s.wos
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := 0; i < n; i++ {
		row := make(types.Row, len(cols))
		for j, c := range cols {
			row[j] = c.Get(i)
		}
		start, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		del, err := binary.ReadUvarint(r)
		if err != nil {
			return err
		}
		w.rows = append(w.rows, row)
		w.hashes = append(w.hashes, vhash.HashRow(row, s.segIdx))
		w.starts = append(w.starts, start)
		w.dels = append(w.dels, del)
	}
	return nil
}
