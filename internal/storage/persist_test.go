package storage

import (
	"fmt"
	"strings"
	"testing"

	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
)

func persistSchema() types.Schema {
	return types.Schema{Cols: []types.Column{
		{Name: "id", T: types.Int64},
		{Name: "score", T: types.Float64},
		{Name: "name", T: types.Varchar},
		{Name: "ok", T: types.Bool},
	}}
}

func persistRows() []types.Row {
	return []types.Row{
		{types.IntValue(1), types.FloatValue(1.5), types.StringValue("a"), types.BoolValue(true)},
		{types.IntValue(-7), types.NullValue(types.Float64), types.StringValue(""), types.BoolValue(false)},
		{types.NullValue(types.Int64), types.FloatValue(-0.25), types.NullValue(types.Varchar), types.NullValue(types.Bool)},
	}
}

func TestEncodeRowsRoundTrip(t *testing.T) {
	schema := persistSchema()
	rows := persistRows()
	data, err := EncodeRows(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	gotSchema, gotRows, err := DecodeRows(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotSchema.NumCols() != schema.NumCols() {
		t.Fatalf("schema lost columns: %d vs %d", gotSchema.NumCols(), schema.NumCols())
	}
	if !rowsEqual(gotRows, rows) {
		t.Fatalf("rows changed across encode/decode:\n got %v\nwant %v", gotRows, rows)
	}
	// Empty batch must round-trip too (a COPY of zero rows is legal).
	data, err = EncodeRows(schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, gotRows, err = DecodeRows(data); err != nil || len(gotRows) != 0 {
		t.Fatalf("empty batch: %v rows, err %v", gotRows, err)
	}
}

func TestMarshalContainerRoundTrip(t *testing.T) {
	schema := persistSchema()
	rows := persistRows()
	c, err := NewROSContainer(rows, schema, []int{0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// One committed delete, one provisional delete mark. The provisional mark
	// must be written as live — the WAL replays it, not the container file.
	c.mu.Lock()
	c.del = make([]uint64, len(rows))
	c.del[0] = 5
	c.del[1] = ProvisionalBase + 9
	c.mu.Unlock()

	data, err := MarshalContainer(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalContainer(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.StartEpoch() != 3 || got.RowCount != len(rows) {
		t.Fatalf("start=%d rows=%d", got.StartEpoch(), got.RowCount)
	}
	for i := range rows {
		if got.Hashes[i] != c.Hashes[i] {
			t.Fatalf("hash %d changed: %d vs %d", i, got.Hashes[i], c.Hashes[i])
		}
		gr := got.Row(i)
		for j := range rows[i] {
			if types.Compare(gr[j], rows[i][j]) != 0 {
				t.Fatalf("row %d col %d: %v vs %v", i, j, gr[j], rows[i][j])
			}
		}
	}
	if got.del[0] != 5 {
		t.Fatalf("committed delete lost: del[0]=%d", got.del[0])
	}
	if got.del[1] != 0 {
		t.Fatalf("provisional delete persisted: del[1]=%d", got.del[1])
	}

	// No-deletes container round-trips with a nil delete vector.
	c2, _ := NewROSContainer(rows, schema, []int{0}, 2)
	data2, err := MarshalContainer(c2)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := UnmarshalContainer(data2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.del != nil {
		t.Fatalf("expected nil delete vector, got %v", got2.del)
	}
}

func TestMarshalContainerRefusesProvisional(t *testing.T) {
	c, _ := NewROSContainer(persistRows(), persistSchema(), []int{0}, ProvisionalBase+1)
	if _, err := MarshalContainer(c); err == nil {
		t.Fatal("provisional container must not be persistable")
	}
}

func TestUnmarshalContainerRejectsCorruption(t *testing.T) {
	c, _ := NewROSContainer(persistRows(), persistSchema(), []int{0}, 2)
	data, err := MarshalContainer(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		if _, err := UnmarshalContainer(bad); err == nil {
			t.Fatalf("flipped byte at %d went undetected", off)
		} else if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "CRC") {
			t.Logf("corruption surfaced as: %v", err)
		}
	}
	if _, err := UnmarshalContainer(data[:8]); err == nil {
		t.Fatal("truncated container went undetected")
	}
}

func TestMarshalWOSRoundTrip(t *testing.T) {
	schema := persistSchema()
	s := NewStore(schema, []int{0})
	s.AppendWOS(persistRows(), 4)
	// A committed delete ahead of the AHM (retained row) and a provisional
	// insert; the snapshot keeps the first, skips the second.
	s.DeleteWhere(Visibility{Epoch: 6}, 6, func(r types.Row) bool {
		return !r[0].Null && r[0].I == 1
	})
	s.AppendWOS([]types.Row{{types.IntValue(99), types.FloatValue(0), types.StringValue("prov"), types.BoolValue(true)}}, ProvisionalBase+7)

	data, n, err := s.MarshalWOS()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("snapshot has %d rows, want 3 committed", n)
	}
	s2 := NewStore(schema, []int{0})
	if err := s2.LoadWOS(data); err != nil {
		t.Fatal(err)
	}
	full := vhash.Range{Lo: 0, Hi: vhash.RingSize}
	// At epoch 5 the delete isn't visible: all 3 rows.
	if got := collectScan(s2, Visibility{Epoch: 5}, full); len(got) != 3 {
		t.Fatalf("epoch 5: %d rows, want 3", len(got))
	}
	// At epoch 6 the deleted row disappears.
	if got := collectScan(s2, Visibility{Epoch: 6}, full); len(got) != 2 {
		t.Fatalf("epoch 6: %d rows, want 2", len(got))
	}
	// Loaded hashes must match freshly computed segmentation hashes, or
	// segment-pruned scans would silently miss rows.
	want := collectScan(s, Visibility{Epoch: 5}, full)
	for _, seg := range vhash.Segments(4) {
		a := collectScan(s, Visibility{Epoch: 5}, seg)
		b := collectScan(s2, Visibility{Epoch: 5}, seg)
		if !rowsEqual(a, b) {
			t.Fatalf("segment %v: %d vs %d rows", seg, len(b), len(a))
		}
	}
	_ = want
}

func TestContainerCache(t *testing.T) {
	schema := persistSchema()
	base, _ := NewROSContainer(persistRows(), schema, []int{0}, 2)
	data, err := MarshalContainer(base)
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	read := func() (*ROSContainer, error) {
		reads++
		return UnmarshalContainer(data)
	}
	cc := NewContainerCache(1 << 20)
	c1, err := cc.Load("k1", read)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cc.Load("k1", read)
	if err != nil {
		t.Fatal(err)
	}
	if reads != 1 {
		t.Fatalf("cache missed a warm key: %d reads", reads)
	}
	if c1 == c2 {
		t.Fatal("Load must clone: two loads returned the same container")
	}
	// Mutating one clone's delete vector must not leak into later loads.
	c1.mu.Lock()
	if c1.del == nil {
		c1.del = make([]uint64, c1.RowCount)
	}
	c1.del[0] = 10
	c1.mu.Unlock()
	c3, err := cc.Load("k1", read)
	if err != nil {
		t.Fatal(err)
	}
	if c3.del != nil && c3.del[0] == 10 {
		t.Fatal("clone mutation leaked into cache")
	}
	hits, misses, _ := cc.Stats()
	if hits < 2 || misses != 1 {
		t.Fatalf("stats: hits=%d misses=%d", hits, misses)
	}
	// Invalidate forces a re-read.
	cc.Invalidate("k1")
	if _, err := cc.Load("k1", read); err != nil {
		t.Fatal(err)
	}
	if reads != 2 {
		t.Fatalf("invalidate did not evict: %d reads", reads)
	}
	// A tiny cache evicts down to a single (oversized) resident entry.
	small := NewContainerCache(1)
	for i := 0; i < 3; i++ {
		if _, err := small.Load(fmt.Sprintf("k%d", i), read); err != nil {
			t.Fatal(err)
		}
	}
	one, _ := cc.Load("k1", read)
	_, _, bytes := small.Stats()
	if perEntry := one.DataBytes() + 12*one.RowCount; bytes > perEntry {
		t.Fatalf("tiny cache retained %d bytes (> one entry %d)", bytes, perEntry)
	}
}

// TestDrainCommittedRespectsAHM pins down the moveout row-loss bug: a row
// whose committed delete epoch is ahead of the AHM must stay in the WOS so
// pinned readers between insert and delete still see it.
func TestDrainCommittedRespectsAHM(t *testing.T) {
	mk := func() *WOS {
		w := NewWOS()
		w.Append([]types.Row{{types.IntValue(1)}}, nil, 2) // live committed
		w.Append([]types.Row{{types.IntValue(2)}}, nil, 2) // deleted at 6
		w.Append([]types.Row{{types.IntValue(3)}}, nil, ProvisionalBase+4)
		w.DeleteWhere(Visibility{Epoch: 6}, 6, func(r types.Row) bool { return r[0].I == 2 })
		return w
	}

	// AHM behind the delete: the deleted row must be retained, not purged.
	w := mk()
	rows, _, epochs := w.DrainCommitted(3)
	if len(rows) != 1 || rows[0][0].I != 1 || epochs[0] != 2 {
		t.Fatalf("ahm=3 drained %v", rows)
	}
	if w.Len() != 2 {
		t.Fatalf("ahm=3 retained %d rows, want deleted row + provisional", w.Len())
	}
	// A reader pinned at epoch 3 must still see row 2 after the drain.
	seen := 0
	w.Scan(Visibility{Epoch: 3}, vhash.Range{Lo: 0, Hi: vhash.RingSize}, func(r types.Row) bool {
		if r[0].I == 2 {
			seen++
		}
		return true
	})
	if seen != 1 {
		t.Fatal("pinned reader lost the deleted-but-retained row")
	}

	// AHM at the delete epoch: purge is now safe.
	w = mk()
	rows, _, _ = w.DrainCommitted(6)
	if len(rows) != 1 || w.Len() != 1 {
		t.Fatalf("ahm=6: drained %d, retained %d (want 1 drained, provisional only)", len(rows), w.Len())
	}

	// Provisional delete mark: keep buffered regardless of AHM.
	w = NewWOS()
	w.Append([]types.Row{{types.IntValue(9)}}, nil, 2)
	w.DeleteWhere(Visibility{Epoch: 6, Tag: ProvisionalBase + 8}, ProvisionalBase+8, func(types.Row) bool { return true })
	if rows, _, _ := w.DrainCommitted(100); len(rows) != 0 || w.Len() != 1 {
		t.Fatalf("provisionally deleted row moved out: drained %d, kept %d", len(rows), w.Len())
	}
}

// TestMoveoutContainerOrderDeterministic: rows buffered at multiple epochs
// must produce containers in ascending epoch order, every time. (The old code
// ranged over a map — ordering varied run to run, so two buddy replicas could
// disagree on container layout.)
func TestMoveoutContainerOrderDeterministic(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		s := NewStore(batchSchema(), []int{0})
		// Interleave epochs out of order on purpose.
		for _, e := range []uint64{5, 2, 9, 3, 7} {
			s.AppendWOS(batchRows(int(e)*10, int(e)*10+3), e)
		}
		if err := s.Moveout(9); err != nil {
			t.Fatal(err)
		}
		cs := s.Containers()
		if len(cs) != 5 {
			t.Fatalf("trial %d: %d containers, want 5", trial, len(cs))
		}
		var prev uint64
		for i, c := range cs {
			if c.StartEpoch() <= prev {
				t.Fatalf("trial %d: container %d epoch %d not ascending (prev %d)",
					trial, i, c.StartEpoch(), prev)
			}
			prev = c.StartEpoch()
		}
	}
}

func TestLoadWOSRejectsGarbage(t *testing.T) {
	s := NewStore(persistSchema(), []int{0})
	if err := s.LoadWOS([]byte("not a wos snapshot")); err == nil {
		t.Fatal("garbage WOS snapshot accepted")
	}
}
