package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
)

// ProvisionalBase is the lower bound of the provisional-epoch tag space.
// While a transaction is open, its inserts are stamped with a unique tag
// >= ProvisionalBase and its deletes marked with the same tag. Committed
// epochs are small monotonically increasing integers, so a provisional row is
// invisible to every snapshot reader; at commit the tag is rebased to the
// real commit epoch, at abort it is swept away.
const ProvisionalBase uint64 = 1 << 62

// Visibility carries the MVCC read context for a scan: the snapshot epoch
// plus the reader's own provisional tag (0 for plain snapshot reads). A row
// is visible if it was inserted at or before the snapshot epoch — or by this
// very transaction — and not deleted under the same rule.
type Visibility struct {
	Epoch uint64 // snapshot epoch (inclusive)
	Tag   uint64 // reader's own provisional tag, 0 if none
}

func (v Visibility) seesInsert(start uint64) bool {
	return start <= v.Epoch || (v.Tag != 0 && start == v.Tag)
}

func (v Visibility) seesDelete(del uint64) bool {
	if del == 0 {
		return false
	}
	return del <= v.Epoch || (v.Tag != 0 && del == v.Tag)
}

// RowVisible reports whether a row with the given insert epoch and delete
// mark is visible under v.
func (v Visibility) RowVisible(start, del uint64) bool {
	return v.seesInsert(start) && !v.seesDelete(del)
}

// ROSContainer is one immutable Read Optimized Storage container: a batch of
// rows stored column-wise, stamped with the epoch (or provisional tag) at
// which it was inserted. Deletes are recorded out-of-line in a delete vector
// so readers at earlier epochs still see the rows (MVCC, the basis of the
// connector's AT EPOCH consistent reads in §3.1.2 of the paper).
type ROSContainer struct {
	Schema   types.Schema
	Cols     []Column
	RowCount int
	Hashes   []uint32 // per-row segmentation hash, precomputed at write time

	// stats holds the per-column zone maps (null count, min/max), computed
	// once at construction or load. Columns are immutable, so the slice is
	// shared by clones and never mutated after the container is published.
	stats []ColStats

	mu    sync.RWMutex
	start uint64   // insert epoch or provisional tag
	del   []uint64 // delete epoch/tag per row; 0 = live

	// diskRef is the path of the container's persisted file ("" if the
	// container has never been written), and dirty reports whether its MVCC
	// state (start epoch or delete vector) changed since that write. The
	// checkpoint uses the pair to skip rewriting unchanged containers.
	diskRef string
	dirty   bool
}

// NewROSContainer builds a container from rows. segIdx are the segmentation
// column indexes used to precompute per-row ring hashes (empty = whole-row
// synthetic hash).
func NewROSContainer(rows []types.Row, schema types.Schema, segIdx []int, start uint64) (*ROSContainer, error) {
	cols, err := ColumnsFromRows(rows, schema)
	if err != nil {
		return nil, err
	}
	for i, c := range cols {
		cols[i] = CompressColumn(c)
	}
	hashes := make([]uint32, len(rows))
	for i, r := range rows {
		hashes[i] = vhash.HashRow(r, segIdx)
	}
	return &ROSContainer{
		Schema:   schema,
		Cols:     cols,
		RowCount: len(rows),
		Hashes:   hashes,
		stats:    ComputeStats(cols),
		start:    start,
	}, nil
}

// Stats returns the container's per-column zone maps, aligned with Cols. The
// stats cover every physical row (deleted rows included), so a predicate that
// excludes [Min, Max] excludes every visible row too — pruning on them is
// always a sound superset test.
func (c *ROSContainer) Stats() []ColStats { return c.stats }

// StartEpoch returns the container's insert epoch (or provisional tag).
func (c *ROSContainer) StartEpoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.start
}

// DiskRef returns the path the container was last persisted to ("" if never)
// and whether its MVCC state has changed since.
func (c *ROSContainer) DiskRef() (ref string, dirty bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.diskRef, c.dirty
}

// SetDiskRef records that the container's current committed state is durable
// at the given path, clearing the dirty flag.
func (c *ROSContainer) SetDiskRef(ref string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.diskRef = ref
	c.dirty = false
}

// Clone returns a container sharing the immutable column data (Cols, Hashes,
// Schema) but with independent mutable MVCC state: the start epoch, the
// delete vector, and the disk reference. The container cache hands out clones
// so concurrently open clusters never share delete vectors.
func (c *ROSContainer) Clone() *ROSContainer {
	c.mu.RLock()
	defer c.mu.RUnlock()
	nc := &ROSContainer{
		Schema:   c.Schema,
		Cols:     c.Cols,
		RowCount: c.RowCount,
		Hashes:   c.Hashes,
		stats:    c.stats,
		start:    c.start,
		diskRef:  c.diskRef,
	}
	if c.del != nil {
		nc.del = append(make([]uint64, 0, len(c.del)), c.del...)
	}
	return nc
}

// Row materializes row i.
func (c *ROSContainer) Row(i int) types.Row {
	r := make(types.Row, len(c.Cols))
	for j, col := range c.Cols {
		r[j] = col.Get(i)
	}
	return r
}

// DataBytes estimates the raw columnar footprint of the container.
func (c *ROSContainer) DataBytes() int {
	n := 0
	for _, col := range c.Cols {
		switch cc := col.(type) {
		case *Int64Column, *Float64Column:
			n += 8 * col.Len()
		case *BoolColumn:
			n += col.Len()
		case *StringColumn:
			for _, s := range cc.Vals {
				n += 4 + len(s)
			}
		case *Int64RLEColumn:
			n += 12 * len(cc.RunVals) // 8-byte value + 4-byte run end
		}
	}
	return n
}

// Store holds the ROS containers and WOS buffer for one table's data on one
// node (one "segment" of the table, in the paper's terminology).
type Store struct {
	mu     sync.RWMutex
	schema types.Schema
	segIdx []int
	ros    []*ROSContainer
	wos    *WOS
	// stale is set when a cluster write skips this store because its node is
	// not accepting writes (DOWN/REMOVED). A stale store's contents lag the
	// committed state and must be rebuilt from a live replica before its node
	// serves reads again; a store that was never skipped is current by
	// construction, even across a down window (the write path rejects writes
	// to a segment with no writable replica, so nothing can be missed).
	stale atomic.Bool
}

// NewStore creates an empty per-node store for a table with the given schema
// and segmentation column indexes.
func NewStore(schema types.Schema, segIdx []int) *Store {
	return &Store{schema: schema, segIdx: segIdx, wos: NewWOS()}
}

// MarkStale records that this store missed a cluster write (its node was not
// accepting writes when the write committed).
func (s *Store) MarkStale() { s.stale.Store(true) }

// ClearStale marks the store current again (after recovery rebuilt it).
func (s *Store) ClearStale() { s.stale.Store(false) }

// Stale reports whether the store has missed at least one cluster write.
func (s *Store) Stale() bool { return s.stale.Load() }

// Schema returns the table schema.
func (s *Store) Schema() types.Schema { return s.schema }

// SegIdx returns the segmentation column indexes.
func (s *Store) SegIdx() []int { return s.segIdx }

// AppendROS builds a ROS container from rows stamped with the given epoch or
// provisional tag and adds it (the COPY DIRECT bulk-load path).
func (s *Store) AppendROS(rows []types.Row, tag uint64) error {
	if len(rows) == 0 {
		return nil
	}
	c, err := NewROSContainer(rows, s.schema, s.segIdx, tag)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ros = append(s.ros, c)
	s.mu.Unlock()
	return nil
}

// AppendWOS adds rows to the write-optimized buffer stamped with the given
// epoch or provisional tag (the trickle INSERT path).
func (s *Store) AppendWOS(rows []types.Row, tag uint64) {
	s.wos.Append(rows, s.segIdx, tag)
}

// Moveout converts committed WOS contents into ROS containers, mirroring the
// Vertica Tuple Mover. Provisional (uncommitted) rows stay in the WOS, as do
// committed rows whose delete epoch is still ahead of the Ancient History
// Mark (a reader pinned between the insert and delete epochs must keep
// seeing them). Containers are built in ascending epoch order so the store's
// container sequence — and with it the deterministic segment-order merge of
// parallel scans — is stable across runs.
func (s *Store) Moveout(ahm uint64) error {
	rows, hashes, epochs := s.wos.DrainCommitted(ahm)
	if len(rows) == 0 {
		return nil
	}
	groups := make(map[uint64][]int)
	for i, e := range epochs {
		groups[e] = append(groups[e], i)
	}
	order := make([]uint64, 0, len(groups))
	for e := range groups {
		order = append(order, e)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, e := range order {
		idxs := groups[e]
		batch := make([]types.Row, len(idxs))
		for j, i := range idxs {
			batch[j] = rows[i]
		}
		c, err := NewROSContainer(batch, s.schema, s.segIdx, e)
		if err != nil {
			return err
		}
		for j, i := range idxs {
			c.Hashes[j] = hashes[i]
		}
		s.mu.Lock()
		s.ros = append(s.ros, c)
		s.mu.Unlock()
	}
	return nil
}

func (s *Store) snapshot() []*ROSContainer {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*ROSContainer, len(s.ros))
	copy(out, s.ros)
	return out
}

// Scan calls fn for every row visible under vis whose segmentation hash lies
// in hr (pass the full ring to scan everything). Returning false stops the
// scan. The container's delete vector is snapshotted once per container under
// a single RLock rather than locking around every row.
func (s *Store) Scan(vis Visibility, hr vhash.Range, fn func(row types.Row) bool) {
	for _, c := range s.snapshot() {
		c.mu.RLock()
		start := c.start
		var del []uint64
		if c.del != nil {
			del = append(make([]uint64, 0, len(c.del)), c.del...)
		}
		c.mu.RUnlock()
		if !vis.seesInsert(start) {
			continue
		}
		for i := 0; i < c.RowCount; i++ {
			if !hr.Contains(c.Hashes[i]) {
				continue
			}
			if del != nil && vis.seesDelete(del[i]) {
				continue
			}
			if !fn(c.Row(i)) {
				return
			}
		}
	}
	s.wos.Scan(vis, hr, fn)
}

// DeleteWhere marks every row visible under vis matching the predicate as
// deleted with the given tag (a commit epoch or provisional tag), returning
// the number of rows marked.
func (s *Store) DeleteWhere(vis Visibility, tag uint64, match func(types.Row) bool) int {
	n := 0
	for _, c := range s.snapshot() {
		if !vis.seesInsert(c.StartEpoch()) {
			continue
		}
		for i := 0; i < c.RowCount; i++ {
			c.mu.RLock()
			del := uint64(0)
			if c.del != nil {
				del = c.del[i]
			}
			c.mu.RUnlock()
			if vis.seesDelete(del) || del != 0 && del != tag {
				// Already deleted by someone else (possibly uncommitted);
				// first delete wins, mirroring write-write conflict
				// avoidance under the engine's table locks.
				continue
			}
			if match(c.Row(i)) {
				c.mu.Lock()
				if c.del == nil {
					c.del = make([]uint64, c.RowCount)
				}
				if c.del[i] == 0 || c.del[i] == tag {
					c.del[i] = tag
					c.dirty = true
					n++
				}
				c.mu.Unlock()
			}
		}
	}
	n += s.wos.DeleteWhere(vis, tag, match)
	return n
}

// RebaseInserts rewrites containers and WOS rows inserted under the
// provisional tag to the final commit epoch.
func (s *Store) RebaseInserts(tag, epoch uint64) {
	for _, c := range s.snapshot() {
		c.mu.Lock()
		if c.start == tag {
			c.start = epoch
			c.dirty = true
		}
		c.mu.Unlock()
	}
	s.wos.RebaseInserts(tag, epoch)
}

// DropInserts removes containers and WOS rows inserted under the provisional
// tag (transaction abort).
func (s *Store) DropInserts(tag uint64) {
	s.mu.Lock()
	kept := s.ros[:0]
	for _, c := range s.ros {
		if c.StartEpoch() != tag {
			kept = append(kept, c)
		}
	}
	s.ros = kept
	s.mu.Unlock()
	s.wos.DropInserts(tag)
}

// RebaseDeletes rewrites delete marks carrying the provisional tag to the
// final commit epoch.
func (s *Store) RebaseDeletes(tag, epoch uint64) {
	for _, c := range s.snapshot() {
		c.mu.Lock()
		for i := range c.del {
			if c.del[i] == tag {
				c.del[i] = epoch
				c.dirty = true
			}
		}
		c.mu.Unlock()
	}
	s.wos.RebaseDeletes(tag, epoch)
}

// ClearDeletes erases delete marks carrying the provisional tag (abort).
func (s *Store) ClearDeletes(tag uint64) {
	for _, c := range s.snapshot() {
		c.mu.Lock()
		for i := range c.del {
			if c.del[i] == tag {
				c.del[i] = 0
				c.dirty = true
			}
		}
		c.mu.Unlock()
	}
	s.wos.ClearDeletes(tag)
}

// RowCount returns the number of rows visible under vis. It runs on the
// vectorized path: selection-vector popcounts, no row materialization.
func (s *Store) RowCount(vis Visibility) int {
	return s.CountVisible(vis, vhash.Range{Lo: 0, Hi: vhash.RingSize})
}

// ContainerCount returns the number of ROS containers.
func (s *Store) ContainerCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ros)
}

// DataBytes returns the estimated stored bytes across all ROS containers.
func (s *Store) DataBytes() int {
	n := 0
	for _, c := range s.snapshot() {
		n += c.DataBytes()
	}
	return n
}

// Validate checks internal invariants; used by tests and the engine's
// consistency checker.
func (s *Store) Validate() error {
	for idx, c := range s.snapshot() {
		for j, col := range c.Cols {
			if col.Len() != c.RowCount {
				return fmt.Errorf("storage: container %d column %d has %d rows, want %d", idx, j, col.Len(), c.RowCount)
			}
		}
		if len(c.Hashes) != c.RowCount {
			return fmt.Errorf("storage: container %d has %d hashes, want %d", idx, len(c.Hashes), c.RowCount)
		}
	}
	return nil
}

// WOSLen returns the number of rows buffered in the WOS (for moveout
// policy).
func (s *Store) WOSLen() int { return s.wos.Len() }

// Containers returns a snapshot of the store's ROS containers in order. The
// checkpoint walks it to persist committed containers.
func (s *Store) Containers() []*ROSContainer { return s.snapshot() }

// AttachContainer appends a container loaded from disk (crash recovery).
func (s *Store) AttachContainer(c *ROSContainer) {
	s.mu.Lock()
	s.ros = append(s.ros, c)
	s.mu.Unlock()
}

// TotalRows returns the physical number of rows across ROS containers and
// the WOS, regardless of visibility — the amount of work a full scan visits.
func (s *Store) TotalRows() int {
	n := s.wos.Len()
	for _, c := range s.snapshot() {
		n += c.RowCount
	}
	return n
}
