package storage

import "vsfabric/internal/types"

// ColStats is the zone map for one column of one ROS container: the null
// count plus the min/max over non-null values. Containers are immutable, so
// the stats are computed once — at container construction (moveout / COPY
// DIRECT) or on load from the persisted container file — and shared by every
// clone. The planner uses them for cardinality estimates; the scan path uses
// them to prune whole containers whose [Min, Max] range a predicate excludes
// ("C-Store 7 Years Later" attributes much of Vertica's scan performance to
// exactly this metadata).
type ColStats struct {
	NullCount int
	// HasMinMax is false when every value is NULL (Min/Max undefined).
	HasMinMax bool
	Min, Max  types.Value
}

// ComputeColStats scans a column once and returns its zone map. Typed fast
// paths avoid boxing for the concrete column representations; anything else
// falls back to Get.
func ComputeColStats(col Column) ColStats {
	switch c := col.(type) {
	case *Int64Column:
		return int64Stats(c.Vals, c.Nulls)
	case *Int64RLEColumn:
		// RLE never stores NULLs; min/max over run values covers all rows.
		var st ColStats
		for i, v := range c.RunVals {
			if i == 0 {
				st.HasMinMax = true
				st.Min = types.IntValue(v)
				st.Max = types.IntValue(v)
				continue
			}
			if v < st.Min.I {
				st.Min = types.IntValue(v)
			}
			if v > st.Max.I {
				st.Max = types.IntValue(v)
			}
		}
		return st
	case *Float64Column:
		var st ColStats
		var lo, hi float64
		for i, v := range c.Vals {
			if c.Nulls != nil && c.Nulls[i] {
				st.NullCount++
				continue
			}
			if !st.HasMinMax {
				st.HasMinMax = true
				lo, hi = v, v
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if st.HasMinMax {
			st.Min = types.FloatValue(lo)
			st.Max = types.FloatValue(hi)
		}
		return st
	case *StringColumn:
		var st ColStats
		var lo, hi string
		for i, v := range c.Vals {
			if c.Nulls != nil && c.Nulls[i] {
				st.NullCount++
				continue
			}
			if !st.HasMinMax {
				st.HasMinMax = true
				lo, hi = v, v
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if st.HasMinMax {
			st.Min = types.StringValue(lo)
			st.Max = types.StringValue(hi)
		}
		return st
	case *BoolColumn:
		var st ColStats
		seenF, seenT := false, false
		for i, v := range c.Vals {
			if c.Nulls != nil && c.Nulls[i] {
				st.NullCount++
				continue
			}
			if v {
				seenT = true
			} else {
				seenF = true
			}
		}
		if seenF || seenT {
			st.HasMinMax = true
			st.Min = types.BoolValue(!seenF) // false < true
			st.Max = types.BoolValue(seenT)
		}
		return st
	default:
		var st ColStats
		for i := 0; i < col.Len(); i++ {
			v := col.Get(i)
			if v.Null {
				st.NullCount++
				continue
			}
			if !st.HasMinMax {
				st.HasMinMax = true
				st.Min, st.Max = v, v
				continue
			}
			if types.Compare(v, st.Min) < 0 {
				st.Min = v
			}
			if types.Compare(v, st.Max) > 0 {
				st.Max = v
			}
		}
		return st
	}
}

func int64Stats(vals []int64, nulls []bool) ColStats {
	var st ColStats
	var lo, hi int64
	for i, v := range vals {
		if nulls != nil && nulls[i] {
			st.NullCount++
			continue
		}
		if !st.HasMinMax {
			st.HasMinMax = true
			lo, hi = v, v
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if st.HasMinMax {
		st.Min = types.IntValue(lo)
		st.Max = types.IntValue(hi)
	}
	return st
}

// ComputeStats returns the zone maps for a full column set.
func ComputeStats(cols []Column) []ColStats {
	out := make([]ColStats, len(cols))
	for i, c := range cols {
		out[i] = ComputeColStats(c)
	}
	return out
}
