package storage

import (
	"testing"

	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
)

func TestComputeColStats(t *testing.T) {
	schema := persistSchema()
	rows := persistRows() // has a NULL in every column except id-ish patterns
	cols, err := ColumnsFromRows(rows, schema)
	if err != nil {
		t.Fatal(err)
	}
	stats := ComputeStats(cols)
	if len(stats) != len(cols) {
		t.Fatalf("got %d stats for %d cols", len(stats), len(cols))
	}
	// id: {1, -7, NULL}
	if stats[0].NullCount != 1 || !stats[0].HasMinMax {
		t.Fatalf("id stats: %+v", stats[0])
	}
	if stats[0].Min.I != -7 || stats[0].Max.I != 1 {
		t.Fatalf("id min/max: %v..%v", stats[0].Min, stats[0].Max)
	}
	// score: {1.5, NULL, -0.25}
	if stats[1].NullCount != 1 || stats[1].Min.F != -0.25 || stats[1].Max.F != 1.5 {
		t.Fatalf("score stats: %+v", stats[1])
	}
	// name: {"a", "", NULL}
	if stats[2].NullCount != 1 || stats[2].Min.S != "" || stats[2].Max.S != "a" {
		t.Fatalf("name stats: %+v", stats[2])
	}
	// ok: {true, false, NULL}
	if stats[3].NullCount != 1 || stats[3].Min.B != false || stats[3].Max.B != true {
		t.Fatalf("ok stats: %+v", stats[3])
	}
}

func TestComputeColStatsAllNull(t *testing.T) {
	schema := types.NewSchema(types.Column{Name: "x", T: types.Int64})
	cols, err := ColumnsFromRows([]types.Row{
		{types.NullValue(types.Int64)}, {types.NullValue(types.Int64)},
	}, schema)
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeColStats(cols[0])
	if st.NullCount != 2 || st.HasMinMax {
		t.Fatalf("all-null stats: %+v", st)
	}
}

func TestContainerStatsPersistRoundTrip(t *testing.T) {
	schema := persistSchema()
	c, err := NewROSContainer(persistRows(), schema, []int{0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Stats()
	if len(want) != len(c.Cols) {
		t.Fatalf("container built without stats: %d/%d", len(want), len(c.Cols))
	}
	data, err := MarshalContainer(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalContainer(data)
	if err != nil {
		t.Fatal(err)
	}
	gs := got.Stats()
	if len(gs) != len(want) {
		t.Fatalf("stats lost in round trip: %d vs %d", len(gs), len(want))
	}
	for i := range want {
		if gs[i].NullCount != want[i].NullCount || gs[i].HasMinMax != want[i].HasMinMax {
			t.Fatalf("col %d: %+v vs %+v", i, gs[i], want[i])
		}
		if want[i].HasMinMax {
			if types.Compare(gs[i].Min, want[i].Min) != 0 || types.Compare(gs[i].Max, want[i].Max) != 0 {
				t.Fatalf("col %d min/max drift: %+v vs %+v", i, gs[i], want[i])
			}
		}
	}
}

func TestScanBatchesPruned(t *testing.T) {
	s := NewStore(schema2, []int{0})
	if err := s.AppendROS(intRows(1, 2, 3), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendROS(intRows(10, 20), 2); err != nil {
		t.Fatal(err)
	}
	vis := Visibility{Epoch: 2}
	full := vhash.Range{Lo: 0, Hi: vhash.RingSize}

	// Prune the low container (ids 1..3): only 10 and 20 survive.
	var pruned, scanned int
	var got []int64
	err := s.ScanBatchesPruned(vis, full, func(stats []ColStats, rowCount int) bool {
		if stats[0].Max.I <= 3 {
			pruned++
			return true
		}
		return false
	}, func(b *Batch) bool {
		scanned++
		for _, i := range b.Sel {
			got = append(got, b.Cols[0].Get(int(i)).I)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if pruned != 1 || scanned != 1 {
		t.Fatalf("pruned=%d scanned=%d, want 1/1", pruned, scanned)
	}
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("rows after pruning: %v", got)
	}

	// The WOS batch is never pruned.
	s.AppendWOS(intRows(99), 3)
	n := 0
	err = s.ScanBatchesPruned(Visibility{Epoch: 3}, full, func([]ColStats, int) bool { return true }, func(b *Batch) bool {
		n += len(b.Sel)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("WOS rows visible with everything pruned = %d, want 1", n)
	}
}
