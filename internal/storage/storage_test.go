package storage

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
)

func fullRing() vhash.Range { return vhash.Range{Lo: 0, Hi: vhash.RingSize} }

var schema2 = types.NewSchema(
	types.Column{Name: "id", T: types.Int64},
	types.Column{Name: "name", T: types.Varchar},
)

func intRows(ids ...int64) []types.Row {
	out := make([]types.Row, len(ids))
	for i, id := range ids {
		out[i] = types.Row{types.IntValue(id), types.StringValue("r")}
	}
	return out
}

func TestBuilderTypeCheck(t *testing.T) {
	b := NewBuilder(types.Int64)
	if err := b.Append(types.StringValue("x")); err == nil {
		t.Error("appending VARCHAR to INTEGER builder should fail")
	}
	if err := b.Append(types.NullValue(types.Varchar)); err != nil {
		t.Error("NULL of any type should append")
	}
}

func TestColumnsFromRows(t *testing.T) {
	cols, err := ColumnsFromRows(intRows(1, 2, 3), schema2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0].Len() != 3 {
		t.Fatalf("cols = %v", cols)
	}
	if cols[0].Get(1).I != 2 {
		t.Error("column value mismatch")
	}
	if _, err := ColumnsFromRows([]types.Row{{types.IntValue(1)}}, schema2); err == nil {
		t.Error("short row should fail")
	}
}

func col(t *testing.T, typ types.Type, vals ...types.Value) Column {
	t.Helper()
	b := NewBuilder(typ)
	for _, v := range vals {
		if err := b.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func roundTrip(t *testing.T, c Column, enc Encoding) Column {
	t.Helper()
	data, err := EncodeColumn(c, enc)
	if err != nil {
		t.Fatalf("encode %v: %v", enc, err)
	}
	got, err := DecodeColumn(data)
	if err != nil {
		t.Fatalf("decode %v: %v", enc, err)
	}
	if got.Len() != c.Len() || got.Type() != c.Type() {
		t.Fatalf("decoded shape mismatch: %d/%v vs %d/%v", got.Len(), got.Type(), c.Len(), c.Type())
	}
	for i := 0; i < c.Len(); i++ {
		if c.IsNull(i) != got.IsNull(i) {
			t.Fatalf("null mismatch row %d", i)
		}
		if !c.IsNull(i) && !types.Equal(c.Get(i), got.Get(i)) {
			t.Fatalf("value mismatch row %d: %v vs %v", i, c.Get(i), got.Get(i))
		}
	}
	return got
}

func TestEncodingsRoundTrip(t *testing.T) {
	ints := col(t, types.Int64, types.IntValue(1), types.IntValue(1), types.IntValue(5), types.NullValue(types.Int64), types.IntValue(-9))
	for _, e := range []Encoding{EncPlain, EncRLE, EncDeltaVarint} {
		roundTrip(t, ints, e)
	}
	floats := col(t, types.Float64, types.FloatValue(1.5), types.FloatValue(math.Pi), types.NullValue(types.Float64))
	for _, e := range []Encoding{EncPlain, EncRLE} {
		roundTrip(t, floats, e)
	}
	strs := col(t, types.Varchar, types.StringValue("aa"), types.StringValue("bb"), types.StringValue("aa"), types.NullValue(types.Varchar))
	for _, e := range []Encoding{EncPlain, EncRLE, EncDict} {
		roundTrip(t, strs, e)
	}
	bools := col(t, types.Bool, types.BoolValue(true), types.BoolValue(true), types.BoolValue(false))
	for _, e := range []Encoding{EncPlain, EncRLE} {
		roundTrip(t, bools, e)
	}
}

func TestEncodingQuickInt(t *testing.T) {
	f := func(vals []int64) bool {
		b := NewBuilder(types.Int64)
		for _, v := range vals {
			if err := b.Append(types.IntValue(v)); err != nil {
				return false
			}
		}
		c := b.Build()
		for _, e := range []Encoding{EncPlain, EncRLE, EncDeltaVarint} {
			data, err := EncodeColumn(c, e)
			if err != nil {
				return false
			}
			got, err := DecodeColumn(data)
			if err != nil || got.Len() != len(vals) {
				return false
			}
			for i, v := range vals {
				if got.Get(i).I != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestChooseEncoding(t *testing.T) {
	sortedInts := NewBuilder(types.Int64)
	for i := 0; i < 100; i++ {
		_ = sortedInts.Append(types.IntValue(int64(i)))
	}
	if got := ChooseEncoding(sortedInts.Build()); got != EncDeltaVarint {
		t.Errorf("sorted ints -> %v, want DELTA", got)
	}
	runs := NewBuilder(types.Int64)
	for i := 0; i < 100; i++ {
		_ = runs.Append(types.IntValue(int64(i / 50)))
	}
	if got := ChooseEncoding(runs.Build()); got != EncRLE {
		t.Errorf("runs -> %v, want RLE", got)
	}
	lowCard := NewBuilder(types.Varchar)
	for i := 0; i < 100; i++ {
		_ = lowCard.Append(types.StringValue([]string{"a", "b"}[i%2]))
	}
	if got := ChooseEncoding(lowCard.Build()); got != EncDict {
		t.Errorf("low-cardinality strings -> %v, want DICT", got)
	}
}

func TestDecodeCorruptData(t *testing.T) {
	c := col(t, types.Int64, types.IntValue(1), types.IntValue(2))
	data, err := EncodeColumn(c, EncPlain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeColumn(data[:len(data)-3]); err == nil {
		t.Error("truncated data should fail to decode")
	}
	if _, err := DecodeColumn([]byte{}); err == nil {
		t.Error("empty data should fail to decode")
	}
}

func TestMVCCVisibility(t *testing.T) {
	s := NewStore(schema2, []int{0})
	if err := s.AppendROS(intRows(1, 2), 5); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendROS(intRows(3), 8); err != nil {
		t.Fatal(err)
	}
	count := func(epoch uint64) int {
		return s.RowCount(Visibility{Epoch: epoch})
	}
	if count(4) != 0 || count(5) != 2 || count(8) != 3 {
		t.Errorf("epoch visibility wrong: %d %d %d", count(4), count(5), count(8))
	}

	// Delete id=1 at epoch 10: epoch 9 still sees it, epoch 10 does not.
	n := s.DeleteWhere(Visibility{Epoch: 9}, 10, func(r types.Row) bool { return r[0].I == 1 })
	if n != 1 {
		t.Fatalf("DeleteWhere = %d", n)
	}
	if count(9) != 3 || count(10) != 2 {
		t.Errorf("delete visibility wrong: epoch9=%d epoch10=%d", count(9), count(10))
	}
}

func TestProvisionalTagVisibility(t *testing.T) {
	s := NewStore(schema2, []int{0})
	tag := ProvisionalBase + 77
	if err := s.AppendROS(intRows(1), tag); err != nil {
		t.Fatal(err)
	}
	if s.RowCount(Visibility{Epoch: 100}) != 0 {
		t.Error("provisional rows must be invisible to snapshot readers")
	}
	if s.RowCount(Visibility{Epoch: 100, Tag: tag}) != 1 {
		t.Error("provisional rows must be visible to their own transaction")
	}
	other := ProvisionalBase + 78
	if s.RowCount(Visibility{Epoch: 100, Tag: other}) != 0 {
		t.Error("provisional rows must be invisible to other transactions")
	}
	s.RebaseInserts(tag, 7)
	if s.RowCount(Visibility{Epoch: 7}) != 1 || s.RowCount(Visibility{Epoch: 6}) != 0 {
		t.Error("rebase should publish at the commit epoch")
	}
}

func TestDropInserts(t *testing.T) {
	s := NewStore(schema2, []int{0})
	tag := ProvisionalBase + 1
	_ = s.AppendROS(intRows(1, 2), tag)
	s.AppendWOS(intRows(3), tag)
	s.DropInserts(tag)
	if s.RowCount(Visibility{Epoch: 100, Tag: tag}) != 0 {
		t.Error("DropInserts should remove provisional rows everywhere")
	}
	if s.ContainerCount() != 0 {
		t.Error("aborted ROS container should be removed")
	}
}

func TestProvisionalDeletes(t *testing.T) {
	s := NewStore(schema2, []int{0})
	_ = s.AppendROS(intRows(1, 2, 3), 2)
	tag := ProvisionalBase + 9
	n := s.DeleteWhere(Visibility{Epoch: 5, Tag: tag}, tag, func(r types.Row) bool { return r[0].I <= 2 })
	if n != 2 {
		t.Fatalf("DeleteWhere = %d", n)
	}
	if s.RowCount(Visibility{Epoch: 5}) != 3 {
		t.Error("uncommitted deletes must be invisible to others")
	}
	if s.RowCount(Visibility{Epoch: 5, Tag: tag}) != 1 {
		t.Error("own transaction must see its deletes")
	}
	s.ClearDeletes(tag)
	if s.RowCount(Visibility{Epoch: 5}) != 3 {
		t.Error("ClearDeletes should restore rows")
	}
	n = s.DeleteWhere(Visibility{Epoch: 5, Tag: tag}, tag, func(r types.Row) bool { return r[0].I == 1 })
	if n != 1 {
		t.Fatal("re-delete failed")
	}
	s.RebaseDeletes(tag, 6)
	if s.RowCount(Visibility{Epoch: 6}) != 2 || s.RowCount(Visibility{Epoch: 5}) != 3 {
		t.Error("RebaseDeletes should publish delete at commit epoch")
	}
}

func TestWOSMoveoutPreservesEpochs(t *testing.T) {
	s := NewStore(schema2, []int{0})
	s.AppendWOS(intRows(1), 3)
	s.AppendWOS(intRows(2), 5)
	s.AppendWOS(intRows(99), ProvisionalBase+4) // uncommitted: stays in WOS
	if err := s.Moveout(5); err != nil {
		t.Fatal(err)
	}
	if s.WOSLen() != 1 {
		t.Errorf("WOS should retain only the provisional row, has %d", s.WOSLen())
	}
	if s.RowCount(Visibility{Epoch: 3}) != 1 || s.RowCount(Visibility{Epoch: 5}) != 2 {
		t.Error("moveout must preserve per-row epochs")
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestScanHashRange(t *testing.T) {
	s := NewStore(schema2, []int{0})
	rows := intRows(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	if err := s.AppendROS(rows, 2); err != nil {
		t.Fatal(err)
	}
	segs := vhash.Segments(2)
	var got0, got1 []int64
	s.Scan(Visibility{Epoch: 2}, segs[0], func(r types.Row) bool {
		got0 = append(got0, r[0].I)
		return true
	})
	s.Scan(Visibility{Epoch: 2}, segs[1], func(r types.Row) bool {
		got1 = append(got1, r[0].I)
		return true
	})
	if len(got0)+len(got1) != len(rows) {
		t.Errorf("range scan split lost rows: %d + %d != %d", len(got0), len(got1), len(rows))
	}
	for _, id := range got0 {
		h := vhash.Hash(types.IntValue(id))
		if !segs[0].Contains(h) {
			t.Errorf("row %d leaked into wrong segment", id)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := NewStore(schema2, []int{0})
	_ = s.AppendROS(intRows(1, 2, 3, 4, 5), 1)
	n := 0
	s.Scan(Visibility{Epoch: 1}, fullRing(), func(types.Row) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("scan did not stop early: %d", n)
	}
}

func TestDeleteWinsOnce(t *testing.T) {
	s := NewStore(schema2, []int{0})
	_ = s.AppendROS(intRows(1), 1)
	tagA, tagB := ProvisionalBase+1, ProvisionalBase+2
	if n := s.DeleteWhere(Visibility{Epoch: 1, Tag: tagA}, tagA, func(types.Row) bool { return true }); n != 1 {
		t.Fatal("first delete should win")
	}
	if n := s.DeleteWhere(Visibility{Epoch: 1, Tag: tagB}, tagB, func(types.Row) bool { return true }); n != 0 {
		t.Error("second (concurrent) delete must not double-delete")
	}
}

func TestStoreValidateAndStats(t *testing.T) {
	s := NewStore(schema2, []int{0})
	_ = s.AppendROS(intRows(1, 2), 1)
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	if s.DataBytes() <= 0 || s.TotalRows() != 2 || s.ContainerCount() != 1 {
		t.Errorf("stats wrong: bytes=%d rows=%d containers=%d", s.DataBytes(), s.TotalRows(), s.ContainerCount())
	}
	want := []int{0}
	if !reflect.DeepEqual(s.SegIdx(), want) {
		t.Errorf("SegIdx = %v", s.SegIdx())
	}
}
