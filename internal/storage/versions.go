package storage

import (
	"sort"

	"vsfabric/internal/types"
)

// RowVersion is one committed row with its full MVCC history: the row values,
// its precomputed segmentation hash, the epoch it was inserted at, and the
// epoch it was deleted at (0 = still live). Exporting and re-importing
// versions — rather than just live rows — is what lets recovery and rebalance
// move a segment between stores without breaking AT EPOCH readers pinned
// anywhere in the table's history: a scan at any past epoch sees exactly the
// same rows through the rebuilt store as it did through the original.
type RowVersion struct {
	Row   types.Row
	Hash  uint32
	Start uint64
	Del   uint64
}

// ExportVersions returns every committed row version in the store — live and
// deleted — in deterministic order (ROS containers in order, then the WOS).
// Provisional rows are skipped and provisional delete marks are exported as
// live; callers serialize against writers (the engine holds the table's
// EXCLUSIVE lock while exporting), so in practice there is no provisional
// state to skip.
func (s *Store) ExportVersions() []RowVersion {
	var out []RowVersion
	for _, c := range s.snapshot() {
		c.mu.RLock()
		start := c.start
		var del []uint64
		if c.del != nil {
			del = append(make([]uint64, 0, len(c.del)), c.del...)
		}
		c.mu.RUnlock()
		if start >= ProvisionalBase {
			continue
		}
		for i := 0; i < c.RowCount; i++ {
			d := uint64(0)
			if del != nil && del[i] < ProvisionalBase {
				d = del[i]
			}
			out = append(out, RowVersion{Row: c.Row(i), Hash: c.Hashes[i], Start: start, Del: d})
		}
	}
	s.wos.mu.RLock()
	for i, r := range s.wos.rows {
		if s.wos.starts[i] >= ProvisionalBase {
			continue
		}
		d := s.wos.dels[i]
		if d >= ProvisionalBase {
			d = 0
		}
		out = append(out, RowVersion{Row: r.Clone(), Hash: s.wos.hashes[i], Start: s.wos.starts[i], Del: d})
	}
	s.wos.mu.RUnlock()
	return out
}

// containersFromVersions groups versions by ascending start epoch and builds
// one ROS container per epoch, carrying the exported hashes and delete
// vector. The grouping is a pure function of the version multiset, so two
// stores importing the same versions (e.g. the original rebalance and its WAL
// replay) end up with identical container sequences.
func containersFromVersions(schema types.Schema, versions []RowVersion) ([]*ROSContainer, error) {
	groups := make(map[uint64][]int)
	for i, v := range versions {
		groups[v.Start] = append(groups[v.Start], i)
	}
	order := make([]uint64, 0, len(groups))
	for e := range groups {
		order = append(order, e)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]*ROSContainer, 0, len(order))
	for _, e := range order {
		idxs := groups[e]
		rows := make([]types.Row, len(idxs))
		hashes := make([]uint32, len(idxs))
		var del []uint64
		for j, i := range idxs {
			rows[j] = versions[i].Row
			hashes[j] = versions[i].Hash
			if versions[i].Del != 0 {
				if del == nil {
					del = make([]uint64, len(idxs))
				}
				del[j] = versions[i].Del
			}
		}
		cols, err := ColumnsFromRows(rows, schema)
		if err != nil {
			return nil, err
		}
		for i, c := range cols {
			cols[i] = CompressColumn(c)
		}
		out = append(out, &ROSContainer{
			Schema:   schema,
			Cols:     cols,
			RowCount: len(rows),
			Hashes:   hashes,
			start:    e,
			del:      del,
			dirty:    true,
		})
	}
	return out, nil
}

// ImportVersions appends the given versions to the store as epoch-stamped ROS
// containers (one per distinct insert epoch, ascending). Used by rebalance to
// populate a freshly allocated store.
func (s *Store) ImportVersions(versions []RowVersion) error {
	ros, err := containersFromVersions(s.schema, versions)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ros = append(s.ros, ros...)
	s.mu.Unlock()
	return nil
}

// ReplaceContents atomically replaces the store's entire contents (ROS and
// WOS) with the given versions. Node recovery uses it to rebuild a stale
// store in place from a current replica: the swap happens under the store's
// own lock, and because the caller holds the table's EXCLUSIVE lock no writer
// can interleave. Readers that snapshotted the old containers keep scanning
// them safely — a reader only reaches a store while its node is UP, at a
// snapshot epoch the old contents fully cover.
func (s *Store) ReplaceContents(versions []RowVersion) error {
	ros, err := containersFromVersions(s.schema, versions)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ros = ros
	s.mu.Unlock()
	s.wos.mu.Lock()
	s.wos.rows, s.wos.hashes, s.wos.starts, s.wos.dels = nil, nil, nil, nil
	s.wos.mu.Unlock()
	return nil
}
