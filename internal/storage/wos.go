package storage

import (
	"sync"

	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
)

// WOS is the Write Optimized Storage buffer: a row-oriented, in-memory store
// that absorbs trickle inserts (the S2V status-table updates, for example)
// before the tuple mover converts them to columnar ROS containers. Each row
// carries its insert epoch (or provisional tag) and an optional delete mark,
// obeying the same MVCC visibility rules as ROS rows.
type WOS struct {
	mu     sync.RWMutex
	rows   []types.Row
	hashes []uint32
	starts []uint64
	dels   []uint64 // 0 = live
}

// NewWOS returns an empty write-optimized buffer.
func NewWOS() *WOS { return &WOS{} }

// Append adds rows stamped with the given epoch or provisional tag, hashing
// them on the segmentation columns.
func (w *WOS) Append(rows []types.Row, segIdx []int, tag uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, r := range rows {
		w.rows = append(w.rows, r.Clone())
		w.hashes = append(w.hashes, vhash.HashRow(r, segIdx))
		w.starts = append(w.starts, tag)
		w.dels = append(w.dels, 0)
	}
}

// Scan visits rows visible under vis whose hash is inside hr.
func (w *WOS) Scan(vis Visibility, hr vhash.Range, fn func(types.Row) bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	for i, r := range w.rows {
		if !vis.RowVisible(w.starts[i], w.dels[i]) || !hr.Contains(w.hashes[i]) {
			continue
		}
		if !fn(r) {
			return
		}
	}
}

// DeleteWhere marks matching visible rows deleted with the given tag and
// returns the count.
func (w *WOS) DeleteWhere(vis Visibility, tag uint64, match func(types.Row) bool) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for i, r := range w.rows {
		if !vis.RowVisible(w.starts[i], w.dels[i]) {
			continue
		}
		if w.dels[i] != 0 && w.dels[i] != tag {
			continue
		}
		if match(r) {
			w.dels[i] = tag
			n++
		}
	}
	return n
}

// RebaseInserts rewrites provisional insert tags to the commit epoch.
func (w *WOS) RebaseInserts(tag, epoch uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.starts {
		if w.starts[i] == tag {
			w.starts[i] = epoch
		}
	}
}

// DropInserts removes rows inserted under the provisional tag (abort).
func (w *WOS) DropInserts(tag uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	keep := 0
	for i := range w.rows {
		if w.starts[i] == tag {
			continue
		}
		w.rows[keep] = w.rows[i]
		w.hashes[keep] = w.hashes[i]
		w.starts[keep] = w.starts[i]
		w.dels[keep] = w.dels[i]
		keep++
	}
	w.rows, w.hashes, w.starts, w.dels = w.rows[:keep], w.hashes[:keep], w.starts[:keep], w.dels[:keep]
}

// RebaseDeletes rewrites provisional delete marks to the commit epoch.
func (w *WOS) RebaseDeletes(tag, epoch uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.dels {
		if w.dels[i] == tag {
			w.dels[i] = epoch
		}
	}
}

// ClearDeletes erases provisional delete marks (abort).
func (w *WOS) ClearDeletes(tag uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.dels {
		if w.dels[i] == tag {
			w.dels[i] = 0
		}
	}
}

// DrainCommitted removes and returns all committed live rows with their
// hashes and epochs. Provisional rows stay put. Rows whose delete has
// committed are purged only once no reader can still see them: a row deleted
// at epoch d is visible to a reader pinned at any epoch p < d, so it must
// survive until the Ancient History Mark (the minimum pinned epoch) reaches
// d. Rows with ahm < delete epoch stay buffered; the rest are purged.
func (w *WOS) DrainCommitted(ahm uint64) (rows []types.Row, hashes []uint32, epochs []uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	keep := 0
	for i := range w.rows {
		switch {
		case w.starts[i] >= ProvisionalBase || (w.dels[i] != 0 && w.dels[i] >= ProvisionalBase):
			// Uncommitted insert or uncommitted delete: keep buffered.
			w.rows[keep] = w.rows[i]
			w.hashes[keep] = w.hashes[i]
			w.starts[keep] = w.starts[i]
			w.dels[keep] = w.dels[i]
			keep++
		case w.dels[i] != 0 && w.dels[i] <= ahm:
			// Committed delete behind the AHM: no pinned reader can see the
			// row any more, purge it.
		case w.dels[i] != 0:
			// Committed delete still ahead of the AHM: a reader pinned
			// between the insert and delete epochs must keep seeing the row,
			// so it stays buffered until the AHM catches up.
			w.rows[keep] = w.rows[i]
			w.hashes[keep] = w.hashes[i]
			w.starts[keep] = w.starts[i]
			w.dels[keep] = w.dels[i]
			keep++
		default:
			rows = append(rows, w.rows[i])
			hashes = append(hashes, w.hashes[i])
			epochs = append(epochs, w.starts[i])
		}
	}
	w.rows, w.hashes, w.starts, w.dels = w.rows[:keep], w.hashes[:keep], w.starts[:keep], w.dels[:keep]
	return rows, hashes, epochs
}

// Len returns the number of buffered rows (live, deleted, and provisional).
func (w *WOS) Len() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.rows)
}
