package txn

import (
	"errors"
	"testing"

	"vsfabric/internal/storage"
	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
)

func fullRange() vhash.Range { return vhash.Range{Lo: 0, Hi: vhash.RingSize} }

func TestAHMTracksMinimumPin(t *testing.T) {
	m := NewManager()
	m.SetLastEpoch(10)
	if got := m.AHM(); got != 10 {
		t.Fatalf("no pins: AHM = %d, want lastEpoch 10", got)
	}
	rel7 := m.PinEpoch(7)
	rel3 := m.PinEpoch(3)
	rel3b := m.PinEpoch(3)
	if got := m.AHM(); got != 3 {
		t.Fatalf("pins {7,3,3}: AHM = %d, want 3", got)
	}
	rel3()
	if got := m.AHM(); got != 3 {
		t.Fatalf("one of two epoch-3 pins released: AHM = %d, want 3", got)
	}
	rel3() // idempotent: must not decrement the other reader's pin
	if got := m.AHM(); got != 3 {
		t.Fatalf("double release changed AHM to %d", got)
	}
	rel3b()
	if got := m.AHM(); got != 7 {
		t.Fatalf("epoch-3 pins gone: AHM = %d, want 7", got)
	}
	rel7()
	if got := m.AHM(); got != 10 {
		t.Fatalf("all pins gone: AHM = %d, want 10", got)
	}
	// A pin ahead of lastEpoch never raises the AHM past lastEpoch.
	rel := m.PinEpoch(99)
	if got := m.AHM(); got != 10 {
		t.Fatalf("future pin: AHM = %d, want 10", got)
	}
	rel()
}

// flakyLog fails LogCommit on demand so we can test the commit durability
// contract without a real WAL (txn must not depend on package wal).
type flakyLog struct {
	commits []uint64
	aborts  []uint64
	fail    bool
}

func (f *flakyLog) LogCommit(tag, epoch uint64) error {
	if f.fail {
		return errors.New("disk on fire")
	}
	f.commits = append(f.commits, epoch)
	return nil
}

func (f *flakyLog) LogAbort(tag uint64) error {
	f.aborts = append(f.aborts, tag)
	return nil
}

func TestCommitRequiresLog(t *testing.T) {
	m := NewManager()
	lg := &flakyLog{}
	m.SetCommitLog(lg)
	schema := types.Schema{Cols: []types.Column{{Name: "id", T: types.Int64}}}
	st := storage.NewStore(schema, nil)

	tx := m.Begin()
	st.AppendWOS([]types.Row{{types.IntValue(1)}}, tx.Tag())
	tx.NoteInsert(st)
	epoch, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if len(lg.commits) != 1 || lg.commits[0] != epoch {
		t.Fatalf("commit log saw %v, want [%d]", lg.commits, epoch)
	}

	// A failed log write must abort the transaction: the epoch does not
	// close and the provisional rows are dropped.
	lg.fail = true
	before := m.LastEpoch()
	tx2 := m.Begin()
	st.AppendWOS([]types.Row{{types.IntValue(2)}}, tx2.Tag())
	tx2.NoteInsert(st)
	if _, err := tx2.Commit(); err == nil {
		t.Fatal("commit succeeded with a failed log write")
	}
	if m.LastEpoch() != before {
		t.Fatalf("failed commit advanced the epoch: %d -> %d", before, m.LastEpoch())
	}
	n := 0
	st.Scan(storage.Visibility{Epoch: m.LastEpoch() + 10}, fullRange(), func(types.Row) bool {
		n++
		return true
	})
	if n != 1 {
		t.Fatalf("aborted rows visible: %d rows, want 1", n)
	}
}

func TestAbortWritesAbortRecord(t *testing.T) {
	m := NewManager()
	lg := &flakyLog{}
	m.SetCommitLog(lg)
	tx := m.Begin()
	tag := tx.Tag()
	tx.Abort()
	if len(lg.aborts) != 1 || lg.aborts[0] != tag {
		t.Fatalf("abort log saw %v, want [%d]", lg.aborts, tag)
	}
}

func TestSetNextTagOnlyRaises(t *testing.T) {
	m := NewManager()
	first := m.Begin()
	tagA := first.Tag()
	first.Abort()
	m.SetNextTag(tagA + 100)
	tx := m.Begin()
	if tx.Tag() != tagA+100 {
		t.Fatalf("tag = %d, want %d", tx.Tag(), tagA+100)
	}
	tx.Abort()
	m.SetNextTag(5) // lower: ignored, tags must never move backwards
	tx2 := m.Begin()
	if tx2.Tag() <= tagA+100 {
		t.Fatalf("SetNextTag lowered the tag space: %d", tx2.Tag())
	}
	tx2.Abort()
}
