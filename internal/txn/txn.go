// Package txn implements the engine's transaction machinery: a cluster-wide
// epoch counter, table locks with INSERT and EXCLUSIVE modes, and
// transactions whose writes stay invisible (stamped with a provisional tag)
// until commit rebases them onto a freshly closed epoch.
//
// The epoch model is the load-bearing piece for the paper: V2S pins every
// partition query to the same epoch for a consistent cross-task snapshot
// (§3.1.2), and S2V's five-phase protocol relies on atomic
// read-check-update-commit sequences against its status tables (§3.2.1),
// which the EXCLUSIVE table lock provides.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"vsfabric/internal/storage"
)

// ErrLockTimeout is returned when a table lock cannot be acquired in time.
var ErrLockTimeout = errors.New("txn: lock acquisition timed out")

// ErrTxnDone is returned when operating on a committed or aborted transaction.
var ErrTxnDone = errors.New("txn: transaction already finished")

// LockMode is a table lock mode.
type LockMode int

const (
	// LockInsert allows concurrent bulk inserts into the same table
	// (Vertica allows concurrent COPYs); incompatible with LockExclusive.
	LockInsert LockMode = iota + 1
	// LockExclusive is required for UPDATE/DELETE and DDL; incompatible
	// with everything.
	LockExclusive
)

func (m LockMode) String() string {
	switch m {
	case LockInsert:
		return "INSERT"
	case LockExclusive:
		return "EXCLUSIVE"
	default:
		return "?"
	}
}

// CommitLog is the durability hook the transaction manager drives: a
// write-ahead log that must make the tag→epoch mapping durable before the
// commit is acknowledged. The wal package's Log satisfies it.
type CommitLog interface {
	// LogCommit records that tag committed at epoch and syncs it to stable
	// storage. An error fails (and aborts) the commit.
	LogCommit(tag, epoch uint64) error
	// LogAbort records that tag aborted. Best-effort: an abort lost to a
	// crash replays as an uncommitted tag and is discarded anyway.
	LogAbort(tag uint64) error
}

// Manager is the cluster-wide transaction manager.
type Manager struct {
	mu        sync.Mutex
	lastEpoch uint64
	nextTag   uint64
	locks     map[string]*tableLock
	pins      map[uint64]int // epoch → reader count
	log       CommitLog      // guarded by mu; nil when non-durable
	commitMu  sync.Mutex     // serializes epoch closing

	// LockTimeout bounds how long a transaction waits for a table lock
	// before giving up (deadlock avoidance by timeout).
	LockTimeout time.Duration
}

// NewManager returns a manager with the last closed epoch set to 1, so that
// epoch 1 is a valid empty snapshot.
func NewManager() *Manager {
	return &Manager{
		lastEpoch:   1,
		nextTag:     storage.ProvisionalBase + 1,
		locks:       make(map[string]*tableLock),
		pins:        make(map[uint64]int),
		LockTimeout: 10 * time.Second,
	}
}

// SetCommitLog installs the write-ahead log that commits must reach before
// they are acknowledged. Pass nil to detach (non-durable operation). Safe to
// call while holding CheckpointLock — the checkpoint swaps logs mid-cutover.
func (m *Manager) SetCommitLog(l CommitLog) {
	m.mu.Lock()
	m.log = l
	m.mu.Unlock()
}

func (m *Manager) commitLog() CommitLog {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.log
}

// SetLastEpoch force-sets the last closed epoch. Recovery-only: called while
// replaying the WAL, before the cluster serves traffic.
func (m *Manager) SetLastEpoch(e uint64) {
	m.mu.Lock()
	m.lastEpoch = e
	m.mu.Unlock()
}

// SetNextTag force-sets the next provisional tag. Recovery-only: the manager
// must never reissue a tag that appears in the surviving WAL, or a later
// crash would replay the old tag's records under the new transaction.
func (m *Manager) SetNextTag(tag uint64) {
	m.mu.Lock()
	if tag > m.nextTag {
		m.nextTag = tag
	}
	m.mu.Unlock()
}

// PinEpoch registers a reader at the given epoch and returns a release
// function (idempotent). While pinned, the tuple mover will not purge rows
// whose delete epoch is newer than the pin, so AT EPOCH scans stay exact
// across concurrent moveouts — the V2S consistent-snapshot guarantee
// (§3.1.2) extended to storage reclamation.
func (m *Manager) PinEpoch(epoch uint64) func() {
	m.mu.Lock()
	m.pins[epoch]++
	m.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			m.mu.Lock()
			if m.pins[epoch] > 1 {
				m.pins[epoch]--
			} else {
				delete(m.pins, epoch)
			}
			m.mu.Unlock()
		})
	}
}

// AHM returns the Ancient History Mark: the oldest epoch any pinned reader
// may still observe (the minimum pinned epoch, or the last closed epoch when
// nothing is pinned). Storage reclamation may purge a deleted row only once
// its delete epoch is <= AHM.
func (m *Manager) AHM() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	ahm := m.lastEpoch
	for e := range m.pins {
		if e < ahm {
			ahm = e
		}
	}
	return ahm
}

// CheckpointLock stalls commits for the duration of a storage checkpoint, so
// the persisted containers, WOS snapshots, and WAL cutover form one
// consistent durable epoch. Pair with CheckpointUnlock.
func (m *Manager) CheckpointLock() { m.commitMu.Lock() }

// CheckpointUnlock releases CheckpointLock.
func (m *Manager) CheckpointUnlock() { m.commitMu.Unlock() }

// LastEpoch returns the most recently closed (fully committed) epoch —
// what Vertica calls the "last epoch", the snapshot V2S pins (§3.1.2).
func (m *Manager) LastEpoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastEpoch
}

// Begin starts a new transaction with a fresh provisional tag.
func (m *Manager) Begin() *Txn {
	m.mu.Lock()
	tag := m.nextTag
	m.nextTag++
	m.mu.Unlock()
	return &Txn{
		m:       m,
		tag:     tag,
		locks:   make(map[string]LockMode),
		touched: make(map[*storage.Store]writeKinds),
	}
}

func (m *Manager) lockFor(table string) *tableLock {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.locks[table]
	if !ok {
		l = newTableLock()
		m.locks[table] = l
	}
	return l
}

// DropTableLock forgets the lock state for a dropped table.
func (m *Manager) DropTableLock(table string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.locks, table)
}

type writeKinds struct {
	inserted bool
	deleted  bool
}

// Txn is a single transaction. A Txn is used by one goroutine at a time.
type Txn struct {
	m        *Manager
	tag      uint64
	locks    map[string]LockMode
	touched  map[*storage.Store]writeKinds
	onCommit []func() error
	done     bool
}

// OnCommit registers a hook run atomically with the commit, while the commit
// lock is held and before the epoch closes. This is how DDL becomes
// transactional: S2V's overwrite commit registers the staging→target table
// swap here, guarded by its conditional status update (§3.2.1 phase 5), so
// the swap happens exactly once. Hooks must pre-validate: a failing hook
// aborts the commit but earlier hooks are not rolled back.
func (t *Txn) OnCommit(fn func() error) { t.onCommit = append(t.onCommit, fn) }

// Tag returns the transaction's provisional epoch tag, used to stamp writes.
func (t *Txn) Tag() uint64 { return t.tag }

// Vis returns the MVCC read context for a statement in this transaction:
// read-committed snapshot at the current last epoch, plus visibility of the
// transaction's own provisional writes.
func (t *Txn) Vis() storage.Visibility {
	return storage.Visibility{Epoch: t.m.LastEpoch(), Tag: t.tag}
}

// VisAt returns a read context pinned to an explicit epoch (the AT EPOCH
// clause), still seeing the transaction's own writes.
func (t *Txn) VisAt(epoch uint64) storage.Visibility {
	return storage.Visibility{Epoch: epoch, Tag: t.tag}
}

// Acquire takes the table lock in the given mode, blocking up to the
// manager's LockTimeout. Re-acquiring an already-held mode is a no-op;
// holding INSERT and requesting EXCLUSIVE upgrades in place.
func (t *Txn) Acquire(table string, mode LockMode) error {
	if t.done {
		return ErrTxnDone
	}
	held, ok := t.locks[table]
	if ok && held >= mode {
		return nil
	}
	l := t.m.lockFor(table)
	deadline := time.Now().Add(t.m.LockTimeout)
	var err error
	if ok && held == LockInsert && mode == LockExclusive {
		err = l.upgrade(deadline)
	} else {
		err = l.acquire(mode, deadline)
	}
	if err != nil {
		return fmt.Errorf("%w: table %q mode %v", err, table, mode)
	}
	t.locks[table] = mode
	return nil
}

// NoteInsert records that this transaction inserted into the store so commit
// can rebase the provisional rows.
func (t *Txn) NoteInsert(s *storage.Store) {
	k := t.touched[s]
	k.inserted = true
	t.touched[s] = k
}

// NoteDelete records that this transaction deleted from the store.
func (t *Txn) NoteDelete(s *storage.Store) {
	k := t.touched[s]
	k.deleted = true
	t.touched[s] = k
}

// Commit atomically publishes the transaction's writes at a freshly closed
// epoch and releases its locks. It returns the commit epoch.
func (t *Txn) Commit() (uint64, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	t.m.commitMu.Lock()
	for _, hook := range t.onCommit {
		if err := hook(); err != nil {
			t.m.commitMu.Unlock()
			t.Abort()
			return 0, fmt.Errorf("txn: commit hook failed: %w", err)
		}
	}
	t.m.mu.Lock()
	epoch := t.m.lastEpoch + 1
	t.m.mu.Unlock()
	if clog := t.m.commitLog(); clog != nil {
		// Durability point: the tag→epoch record must be on stable storage
		// before any in-memory state advances. If the log write fails the
		// transaction aborts and the epoch never closes.
		if err := clog.LogCommit(t.tag, epoch); err != nil {
			t.m.commitMu.Unlock()
			t.Abort()
			return 0, fmt.Errorf("txn: commit log write failed: %w", err)
		}
	}
	for s, k := range t.touched {
		if k.inserted {
			s.RebaseInserts(t.tag, epoch)
		}
		if k.deleted {
			s.RebaseDeletes(t.tag, epoch)
		}
	}
	t.m.mu.Lock()
	t.m.lastEpoch = epoch
	t.m.mu.Unlock()
	t.m.commitMu.Unlock()
	t.finish()
	return epoch, nil
}

// Abort discards the transaction's writes and releases its locks. Aborting a
// finished transaction is a no-op, so Abort is safe to defer.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	for s, k := range t.touched {
		if k.inserted {
			s.DropInserts(t.tag)
		}
		if k.deleted {
			s.ClearDeletes(t.tag)
		}
	}
	if clog := t.m.commitLog(); clog != nil {
		// Best-effort: a lost abort record replays as an uncommitted tag and
		// is discarded by recovery anyway.
		_ = clog.LogAbort(t.tag)
	}
	t.finish()
}

func (t *Txn) finish() {
	for table, mode := range t.locks {
		t.m.lockFor(table).release(mode)
	}
	t.locks = make(map[string]LockMode)
	t.touched = make(map[*storage.Store]writeKinds)
	t.onCommit = nil
	t.done = true
}

// tableLock is a two-mode lock: any number of INSERT holders or exactly one
// EXCLUSIVE holder. EXCLUSIVE requests are fair: once one is waiting, new
// INSERT acquisitions queue behind it, so a continuous stream of COPYs cannot
// starve DDL or a rebalance out to its lock timeout.
type tableLock struct {
	mu          sync.Mutex
	cond        *sync.Cond
	inserts     int
	excl        bool
	exclWaiters int
}

func newTableLock() *tableLock {
	l := &tableLock{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// waitUntil blocks on the condition until grantable() or the deadline. The
// caller must hold l.mu. A helper timer broadcasts at the deadline so Wait
// never blocks past it.
func (l *tableLock) waitUntil(grantable func() bool, deadline time.Time) error {
	for !grantable() {
		if !time.Now().Before(deadline) {
			return ErrLockTimeout
		}
		timer := time.AfterFunc(time.Until(deadline), l.cond.Broadcast)
		l.cond.Wait()
		timer.Stop()
	}
	return nil
}

func (l *tableLock) acquire(mode LockMode, deadline time.Time) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch mode {
	case LockInsert:
		if err := l.waitUntil(func() bool { return !l.excl && l.exclWaiters == 0 }, deadline); err != nil {
			return err
		}
		l.inserts++
	case LockExclusive:
		l.exclWaiters++
		err := l.waitUntil(func() bool { return !l.excl && l.inserts == 0 }, deadline)
		l.exclWaiters--
		if err != nil {
			// Wake INSERT waiters we were holding back.
			l.cond.Broadcast()
			return err
		}
		l.excl = true
	default:
		return fmt.Errorf("txn: bad lock mode %v", mode)
	}
	return nil
}

// upgrade converts the caller's INSERT hold into EXCLUSIVE once it is the
// only holder.
func (l *tableLock) upgrade(deadline time.Time) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.waitUntil(func() bool { return !l.excl && l.inserts == 1 }, deadline); err != nil {
		return err
	}
	l.inserts--
	l.excl = true
	return nil
}

func (l *tableLock) release(mode LockMode) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch mode {
	case LockInsert:
		if l.inserts > 0 {
			l.inserts--
		}
	case LockExclusive:
		l.excl = false
	}
	l.cond.Broadcast()
}
