package txn

import (
	"sync"
	"testing"
	"time"

	"vsfabric/internal/storage"
	"vsfabric/internal/types"
)

var schema = types.NewSchema(types.Column{Name: "id", T: types.Int64})

func rows(ids ...int64) []types.Row {
	out := make([]types.Row, len(ids))
	for i, id := range ids {
		out[i] = types.Row{types.IntValue(id)}
	}
	return out
}

func count(s *storage.Store, vis storage.Visibility) int {
	return s.RowCount(vis)
}

func TestCommitPublishesAtomically(t *testing.T) {
	m := NewManager()
	s := storage.NewStore(schema, nil)
	tx := m.Begin()
	if err := tx.Acquire("t", LockInsert); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendROS(rows(1, 2), tx.Tag()); err != nil {
		t.Fatal(err)
	}
	tx.NoteInsert(s)
	if count(s, storage.Visibility{Epoch: m.LastEpoch()}) != 0 {
		t.Error("writes visible before commit")
	}
	epoch, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Errorf("first commit epoch = %d, want 2", epoch)
	}
	if m.LastEpoch() != epoch {
		t.Error("LastEpoch should advance to commit epoch")
	}
	if count(s, storage.Visibility{Epoch: epoch}) != 2 {
		t.Error("writes not visible after commit")
	}
	if count(s, storage.Visibility{Epoch: epoch - 1}) != 0 {
		t.Error("writes visible before their epoch")
	}
}

func TestAbortDiscards(t *testing.T) {
	m := NewManager()
	s := storage.NewStore(schema, nil)
	tx := m.Begin()
	_ = s.AppendROS(rows(1), tx.Tag())
	tx.NoteInsert(s)
	tx.Abort()
	if count(s, storage.Visibility{Epoch: 100}) != 0 {
		t.Error("aborted writes must vanish")
	}
	if _, err := tx.Commit(); err != ErrTxnDone {
		t.Errorf("commit after abort = %v, want ErrTxnDone", err)
	}
	tx.Abort() // double abort is a no-op
}

func TestReadYourOwnWrites(t *testing.T) {
	m := NewManager()
	s := storage.NewStore(schema, nil)
	tx := m.Begin()
	_ = s.AppendROS(rows(7), tx.Tag())
	tx.NoteInsert(s)
	if count(s, tx.Vis()) != 1 {
		t.Error("transaction must see its own writes")
	}
	other := m.Begin()
	if count(s, other.Vis()) != 0 {
		t.Error("other transactions must not see uncommitted writes")
	}
	other.Abort()
	tx.Abort()
}

func TestConditionalUpdatePattern(t *testing.T) {
	// The S2V leader-election pattern: two transactions race to flip a flag;
	// exactly one sees an affected row and commits.
	m := NewManager()
	s := storage.NewStore(schema, nil)
	seed := m.Begin()
	_ = seed.Acquire("t", LockInsert)
	_ = s.AppendROS(rows(0), seed.Tag())
	seed.NoteInsert(s)
	if _, err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	attempt := func() bool {
		tx := m.Begin()
		defer tx.Abort()
		if err := tx.Acquire("t", LockExclusive); err != nil {
			return false
		}
		n := s.DeleteWhere(tx.Vis(), tx.Tag(), func(r types.Row) bool { return r[0].I == 0 })
		if n == 0 {
			return false
		}
		tx.NoteDelete(s)
		s.AppendWOS(rows(1), tx.Tag())
		tx.NoteInsert(s)
		_, err := tx.Commit()
		return err == nil
	}

	var wg sync.WaitGroup
	wins := make(chan bool, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wins <- attempt()
		}()
	}
	wg.Wait()
	close(wins)
	won := 0
	for w := range wins {
		if w {
			won++
		}
	}
	if won != 1 {
		t.Errorf("conditional update won %d times, want exactly 1", won)
	}
}

func TestInsertLocksShared(t *testing.T) {
	m := NewManager()
	a, b := m.Begin(), m.Begin()
	if err := a.Acquire("t", LockInsert); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire("t", LockInsert); err != nil {
		t.Errorf("concurrent INSERT locks should be compatible: %v", err)
	}
	a.Abort()
	b.Abort()
}

func TestExclusiveBlocksInsert(t *testing.T) {
	m := NewManager()
	m.LockTimeout = 50 * time.Millisecond
	a, b := m.Begin(), m.Begin()
	if err := a.Acquire("t", LockExclusive); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire("t", LockInsert); err == nil {
		t.Error("INSERT lock should block behind EXCLUSIVE")
	}
	a.Abort()
	if err := b.Acquire("t", LockInsert); err != nil {
		t.Errorf("lock should be free after abort: %v", err)
	}
	b.Abort()
}

func TestLockUpgrade(t *testing.T) {
	m := NewManager()
	m.LockTimeout = 50 * time.Millisecond
	a := m.Begin()
	if err := a.Acquire("t", LockInsert); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire("t", LockExclusive); err != nil {
		t.Fatalf("upgrade as sole holder should succeed: %v", err)
	}
	b := m.Begin()
	if err := b.Acquire("t", LockInsert); err == nil {
		t.Error("upgraded lock should exclude inserters")
	}
	a.Abort()
	b.Abort()
}

func TestLockTimeout(t *testing.T) {
	m := NewManager()
	m.LockTimeout = 30 * time.Millisecond
	a, b := m.Begin(), m.Begin()
	_ = a.Acquire("t", LockExclusive)
	start := time.Now()
	err := b.Acquire("t", LockExclusive)
	if err == nil {
		t.Fatal("expected timeout")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout took far too long")
	}
	a.Abort()
	b.Abort()
}

func TestSerializedCommitsMonotonicEpochs(t *testing.T) {
	m := NewManager()
	s := storage.NewStore(schema, nil)
	const n = 20
	epochs := make([]uint64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := m.Begin()
			if err := tx.Acquire("t", LockInsert); err != nil {
				t.Error(err)
				return
			}
			s.AppendWOS(rows(int64(i)), tx.Tag())
			tx.NoteInsert(s)
			e, err := tx.Commit()
			if err != nil {
				t.Error(err)
				return
			}
			epochs[i] = e
		}(i)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, e := range epochs {
		if e == 0 || seen[e] {
			t.Fatalf("epochs not unique: %v", epochs)
		}
		seen[e] = true
	}
	if got := count(s, storage.Visibility{Epoch: m.LastEpoch()}); got != n {
		t.Errorf("visible rows = %d, want %d", got, n)
	}
}

func TestOnCommitHook(t *testing.T) {
	m := NewManager()
	ran := false
	tx := m.Begin()
	tx.OnCommit(func() error { ran = true; return nil })
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("commit hook did not run")
	}

	// A failing hook aborts the transaction.
	s := storage.NewStore(schema, nil)
	tx2 := m.Begin()
	_ = s.AppendROS(rows(1), tx2.Tag())
	tx2.NoteInsert(s)
	tx2.OnCommit(func() error { return errFake })
	if _, err := tx2.Commit(); err == nil {
		t.Fatal("commit with failing hook should error")
	}
	if count(s, storage.Visibility{Epoch: m.LastEpoch()}) != 0 {
		t.Error("writes must be discarded when a hook fails")
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

func TestVisAtPinsEpoch(t *testing.T) {
	m := NewManager()
	s := storage.NewStore(schema, nil)
	commit := func(ids ...int64) uint64 {
		tx := m.Begin()
		_ = tx.Acquire("t", LockInsert)
		_ = s.AppendROS(rows(ids...), tx.Tag())
		tx.NoteInsert(s)
		e, err := tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e1 := commit(1)
	commit(2)
	tx := m.Begin()
	defer tx.Abort()
	if got := count(s, tx.VisAt(e1)); got != 1 {
		t.Errorf("VisAt(%d) sees %d rows, want 1", e1, got)
	}
	if got := count(s, tx.Vis()); got != 2 {
		t.Errorf("Vis() sees %d rows, want 2", got)
	}
}
