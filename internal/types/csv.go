package types

import (
	"fmt"
	"strconv"
	"strings"
)

// FormatCSV renders a row as a delimited text record, the format datasets use
// on HDFS in the paper's experiments. NULL is rendered as an empty field.
func FormatCSV(r Row, delim byte) string {
	var b strings.Builder
	for i, v := range r {
		if i > 0 {
			b.WriteByte(delim)
		}
		if v.Null {
			continue
		}
		switch v.T {
		case Varchar:
			// The generators never emit the delimiter inside strings, but
			// escape defensively so round-trips are loss-free.
			if strings.ContainsRune(v.S, rune(delim)) || strings.ContainsAny(v.S, "\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(v.S, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(v.S)
			}
		default:
			b.WriteString(v.String())
		}
	}
	return b.String()
}

// ParseCSV parses one delimited record into a row matching the schema.
func ParseCSV(line string, schema Schema, delim byte) (Row, error) {
	fields, err := splitCSV(line, delim)
	if err != nil {
		return nil, err
	}
	if len(fields) != schema.NumCols() {
		return nil, fmt.Errorf("types: record has %d fields, schema has %d", len(fields), schema.NumCols())
	}
	row := make(Row, len(fields))
	for i, f := range fields {
		v, err := ParseValue(f, schema.Cols[i].T)
		if err != nil {
			return nil, fmt.Errorf("types: field %d (%s): %w", i, schema.Cols[i].Name, err)
		}
		row[i] = v
	}
	return row, nil
}

// ParseValue parses a single text field into a value of type t. An empty
// field parses as NULL for numeric types and as the empty string for VARCHAR.
func ParseValue(s string, t Type) (Value, error) {
	switch t {
	case Int64:
		if s == "" {
			return NullValue(t), nil
		}
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad integer %q", s)
		}
		return IntValue(n), nil
	case Float64:
		if s == "" {
			return NullValue(t), nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad float %q", s)
		}
		return FloatValue(f), nil
	case Bool:
		if s == "" {
			return NullValue(t), nil
		}
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Value{}, fmt.Errorf("bad boolean %q", s)
		}
		return BoolValue(b), nil
	case Varchar:
		return StringValue(s), nil
	default:
		return Value{}, fmt.Errorf("unsupported type %v", t)
	}
}

// splitCSV splits a record on delim honoring double-quoted fields.
func splitCSV(line string, delim byte) ([]string, error) {
	var fields []string
	var cur strings.Builder
	inQuotes := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inQuotes:
			if c == '"' {
				if i+1 < len(line) && line[i+1] == '"' {
					cur.WriteByte('"')
					i++
				} else {
					inQuotes = false
				}
			} else {
				cur.WriteByte(c)
			}
		case c == '"' && cur.Len() == 0:
			inQuotes = true
		case c == delim:
			fields = append(fields, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if inQuotes {
		return nil, fmt.Errorf("types: unterminated quoted field")
	}
	fields = append(fields, cur.String())
	return fields, nil
}
