// Package types defines the value model shared by every component of the
// fabric: column types, nullable values, rows, and schemas. It is the common
// currency between the Vertica engine, the Spark engine, the connector, and
// the codecs (CSV, Avro, colfile).
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Type identifies the storage type of a column. The set mirrors the types the
// paper's experiments exercise: 8-byte floats (dataset D1), 8-byte integers
// and VARCHAR (dataset D2), plus BOOLEAN which the S2V status tables need.
type Type int

const (
	Unknown Type = iota
	Int64        // 8-byte signed integer (Vertica INTEGER / Spark LongType)
	Float64      // 8-byte IEEE float (Vertica FLOAT / Spark DoubleType)
	Varchar      // variable-length string (Vertica VARCHAR / Spark StringType)
	Bool         // boolean (Vertica BOOLEAN / Spark BooleanType)
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "INTEGER"
	case Float64:
		return "FLOAT"
	case Varchar:
		return "VARCHAR"
	case Bool:
		return "BOOLEAN"
	default:
		return "UNKNOWN"
	}
}

// ParseType parses a SQL type name (optionally with a length suffix such as
// VARCHAR(80)) into a Type.
func ParseType(s string) (Type, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	if i := strings.IndexByte(u, '('); i >= 0 {
		u = u[:i]
	}
	switch u {
	case "INTEGER", "INT", "BIGINT", "LONG":
		return Int64, nil
	case "FLOAT", "DOUBLE", "DOUBLE PRECISION", "NUMERIC", "REAL":
		return Float64, nil
	case "VARCHAR", "STRING", "CHAR", "TEXT":
		return Varchar, nil
	case "BOOLEAN", "BOOL":
		return Bool, nil
	default:
		return Unknown, fmt.Errorf("types: unknown type %q", s)
	}
}

// Value is a nullable scalar. It is a flat struct (no interface boxing) so
// that rows can be processed in tight loops without allocation.
type Value struct {
	T    Type
	Null bool
	I    int64
	F    float64
	S    string
	B    bool
}

// NullValue returns the NULL value of type t.
func NullValue(t Type) Value { return Value{T: t, Null: true} }

// IntValue returns an INTEGER value.
func IntValue(v int64) Value { return Value{T: Int64, I: v} }

// FloatValue returns a FLOAT value.
func FloatValue(v float64) Value { return Value{T: Float64, F: v} }

// StringValue returns a VARCHAR value.
func StringValue(v string) Value { return Value{T: Varchar, S: v} }

// BoolValue returns a BOOLEAN value.
func BoolValue(v bool) Value { return Value{T: Bool, B: v} }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Null }

// AsFloat converts numeric values to float64; NULL converts to NaN.
func (v Value) AsFloat() float64 {
	if v.Null {
		return math.NaN()
	}
	switch v.T {
	case Int64:
		return float64(v.I)
	case Float64:
		return v.F
	case Bool:
		if v.B {
			return 1
		}
		return 0
	default:
		f, err := strconv.ParseFloat(v.S, 64)
		if err != nil {
			return math.NaN()
		}
		return f
	}
}

// AsInt converts numeric values to int64 (truncating floats).
func (v Value) AsInt() int64 {
	if v.Null {
		return 0
	}
	switch v.T {
	case Int64:
		return v.I
	case Float64:
		return int64(v.F)
	case Bool:
		if v.B {
			return 1
		}
		return 0
	default:
		n, _ := strconv.ParseInt(v.S, 10, 64)
		return n
	}
}

// AsBool converts the value to a boolean.
func (v Value) AsBool() bool {
	if v.Null {
		return false
	}
	switch v.T {
	case Bool:
		return v.B
	case Int64:
		return v.I != 0
	case Float64:
		return v.F != 0
	default:
		b, _ := strconv.ParseBool(v.S)
		return b
	}
}

// String renders the value in SQL-literal-ish form; NULL renders as "NULL".
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.T {
	case Int64:
		return strconv.FormatInt(v.I, 10)
	case Float64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Varchar:
		return v.S
	case Bool:
		if v.B {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Compare orders two values: NULLs sort first; numeric types compare
// numerically across Int64/Float64; strings lexically; bools false<true.
// It panics only on incomparable type combinations, which the planner rules
// out before execution.
func Compare(a, b Value) int {
	switch {
	case a.Null && b.Null:
		return 0
	case a.Null:
		return -1
	case b.Null:
		return 1
	}
	if a.T == Varchar || b.T == Varchar {
		return strings.Compare(a.S, b.S)
	}
	if a.T == Bool && b.T == Bool {
		switch {
		case a.B == b.B:
			return 0
		case b.B:
			return -1
		default:
			return 1
		}
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values are equal under Compare semantics, with
// NULL equal only to NULL.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Row is one tuple of values, positionally aligned with a Schema.
type Row []Value

// Clone returns a deep copy of the row (Values are value types, so a slice
// copy suffices).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Column describes one column of a schema.
type Column struct {
	Name string
	T    Type
}

// Schema is an ordered list of named, typed columns.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from (name, type) pairs.
func NewSchema(cols ...Column) Schema { return Schema{Cols: cols} }

// NumCols returns the number of columns.
func (s Schema) NumCols() int { return len(s.Cols) }

// ColIndex returns the position of the named column (case-insensitive), or
// -1. Qualified references resolve against unqualified columns and vice
// versa: "u.name" matches a column "name", and "name" matches a column
// "u.name" (joins qualify their output columns); exact matches win.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		suffix := name[i+1:]
		for j, c := range s.Cols {
			if strings.EqualFold(c.Name, suffix) {
				return j
			}
		}
		return -1
	}
	for j, c := range s.Cols {
		if k := strings.LastIndexByte(c.Name, '.'); k >= 0 && strings.EqualFold(c.Name[k+1:], name) {
			return j
		}
	}
	return -1
}

// ColNames returns the column names in order.
func (s Schema) ColNames() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// Project returns a schema containing only the named columns, in the given
// order. Unknown names are an error.
func (s Schema) Project(names []string) (Schema, []int, error) {
	out := Schema{Cols: make([]Column, 0, len(names))}
	idx := make([]int, 0, len(names))
	for _, n := range names {
		i := s.ColIndex(n)
		if i < 0 {
			return Schema{}, nil, fmt.Errorf("types: no column %q in schema", n)
		}
		out.Cols = append(out.Cols, s.Cols[i])
		idx = append(idx, i)
	}
	return out, idx, nil
}

// Equal reports whether two schemas have identical names (case-insensitive)
// and types in the same order.
func (s Schema) Equal(o Schema) bool {
	if len(s.Cols) != len(o.Cols) {
		return false
	}
	for i := range s.Cols {
		if !strings.EqualFold(s.Cols[i].Name, o.Cols[i].Name) || s.Cols[i].T != o.Cols[i].T {
			return false
		}
	}
	return true
}

// String renders the schema as "(a INTEGER, b FLOAT)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.T.String())
	}
	b.WriteByte(')')
	return b.String()
}

// WireSize returns an estimate of the serialized size of a row in bytes,
// used by the resource recorder to account network transfer volumes.
func WireSize(r Row) int {
	n := 0
	for _, v := range r {
		switch v.T {
		case Int64, Float64:
			n += 8
		case Bool:
			n++
		case Varchar:
			n += 4 + len(v.S)
		}
	}
	return n
}
