package types

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{Int64: "INTEGER", Float64: "FLOAT", Varchar: "VARCHAR", Bool: "BOOLEAN", Unknown: "UNKNOWN"}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestParseType(t *testing.T) {
	cases := []struct {
		in   string
		want Type
	}{
		{"INTEGER", Int64}, {"int", Int64}, {"BIGINT", Int64},
		{"FLOAT", Float64}, {"double", Float64}, {"NUMERIC", Float64},
		{"VARCHAR", Varchar}, {"VARCHAR(80)", Varchar}, {"string", Varchar},
		{"BOOLEAN", Bool}, {"bool", Bool},
	}
	for _, c := range cases {
		got, err := ParseType(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseType("BLOB"); err == nil {
		t.Error("ParseType(BLOB) should fail")
	}
}

func TestValueConversions(t *testing.T) {
	if got := IntValue(42).AsFloat(); got != 42 {
		t.Errorf("IntValue(42).AsFloat() = %v", got)
	}
	if got := FloatValue(3.9).AsInt(); got != 3 {
		t.Errorf("FloatValue(3.9).AsInt() = %v", got)
	}
	if got := BoolValue(true).AsInt(); got != 1 {
		t.Errorf("BoolValue(true).AsInt() = %v", got)
	}
	if got := StringValue("2.5").AsFloat(); got != 2.5 {
		t.Errorf("StringValue(2.5).AsFloat() = %v", got)
	}
	if !math.IsNaN(NullValue(Float64).AsFloat()) {
		t.Error("NULL.AsFloat() should be NaN")
	}
	if NullValue(Int64).AsBool() {
		t.Error("NULL.AsBool() should be false")
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), IntValue(2), 0},
		{FloatValue(2.5), IntValue(2), 1},
		{IntValue(2), FloatValue(2.0), 0},
		{StringValue("a"), StringValue("b"), -1},
		{BoolValue(false), BoolValue(true), -1},
		{BoolValue(true), BoolValue(true), 0},
		{NullValue(Int64), IntValue(0), -1},
		{NullValue(Int64), NullValue(Varchar), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(IntValue(a), IntValue(b)) == -Compare(IntValue(b), IntValue(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchemaOps(t *testing.T) {
	s := NewSchema(
		Column{Name: "id", T: Int64},
		Column{Name: "val", T: Float64},
		Column{Name: "name", T: Varchar},
	)
	if s.NumCols() != 3 {
		t.Fatalf("NumCols = %d", s.NumCols())
	}
	if s.ColIndex("VAL") != 1 {
		t.Errorf("ColIndex(VAL) = %d, want 1 (case-insensitive)", s.ColIndex("VAL"))
	}
	if s.ColIndex("missing") != -1 {
		t.Error("ColIndex(missing) should be -1")
	}
	proj, idx, err := s.Project([]string{"name", "id"})
	if err != nil {
		t.Fatal(err)
	}
	if proj.NumCols() != 2 || proj.Cols[0].Name != "name" || idx[1] != 0 {
		t.Errorf("Project = %v idx %v", proj, idx)
	}
	if _, _, err := s.Project([]string{"nope"}); err == nil {
		t.Error("Project(nope) should fail")
	}
	if !s.Equal(s) {
		t.Error("schema should equal itself")
	}
	s2 := NewSchema(Column{Name: "ID", T: Int64}, Column{Name: "val", T: Float64}, Column{Name: "name", T: Varchar})
	if !s.Equal(s2) {
		t.Error("schema equality should be case-insensitive")
	}
}

func TestRowClone(t *testing.T) {
	r := Row{IntValue(1), StringValue("x")}
	c := r.Clone()
	c[0] = IntValue(9)
	if r[0].I != 1 {
		t.Error("Clone must not alias")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := NewSchema(
		Column{Name: "id", T: Int64},
		Column{Name: "val", T: Float64},
		Column{Name: "name", T: Varchar},
		Column{Name: "ok", T: Bool},
	)
	rows := []Row{
		{IntValue(1), FloatValue(0.5), StringValue("hello"), BoolValue(true)},
		{IntValue(-7), NullValue(Float64), StringValue("with,comma"), BoolValue(false)},
		{NullValue(Int64), FloatValue(1e-9), StringValue(`say "hi"`), NullValue(Bool)},
	}
	for _, r := range rows {
		line := FormatCSV(r, ',')
		got, err := ParseCSV(line, s, ',')
		if err != nil {
			t.Fatalf("ParseCSV(%q): %v", line, err)
		}
		for i := range r {
			// VARCHAR NULL degrades to empty string on round-trip; that is
			// the documented CSV limitation.
			if r[i].T == Varchar && r[i].Null {
				continue
			}
			if r[i].Null != got[i].Null || (!r[i].Null && Compare(r[i], got[i]) != 0) {
				t.Errorf("round-trip mismatch col %d: %v -> %v (line %q)", i, r[i], got[i], line)
			}
		}
	}
}

func TestCSVRoundTripQuick(t *testing.T) {
	s := NewSchema(Column{Name: "a", T: Int64}, Column{Name: "b", T: Float64})
	f := func(a int64, b float64) bool {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		r := Row{IntValue(a), FloatValue(b)}
		got, err := ParseCSV(FormatCSV(r, ','), s, ',')
		return err == nil && got[0].I == a && got[1].F == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseCSVErrors(t *testing.T) {
	s := NewSchema(Column{Name: "a", T: Int64})
	if _, err := ParseCSV("notanumber", s, ','); err == nil {
		t.Error("bad integer should fail")
	}
	if _, err := ParseCSV("1,2", s, ','); err == nil {
		t.Error("wrong field count should fail")
	}
	if _, err := ParseCSV(`"unterminated`, NewSchema(Column{Name: "a", T: Varchar}), ','); err == nil {
		t.Error("unterminated quote should fail")
	}
}

func TestWireSize(t *testing.T) {
	r := Row{IntValue(1), FloatValue(2), BoolValue(true), StringValue("abc")}
	if got := WireSize(r); got != 8+8+1+4+3 {
		t.Errorf("WireSize = %d, want %d", got, 8+8+1+4+3)
	}
}
