// Package vertica implements the MPP analytic database substrate the
// connector talks to: a multi-node cluster with hash-segmented columnar
// tables (ROS/WOS storage), MVCC epochs, ACID transactions with table locks,
// a SQL executor with locality-aware hash-range scans, a COPY bulk loader,
// system catalog tables, a UDx registry, and an internal DFS for deployed
// models — the mechanisms §2.1.1 and §3 of the paper build on.
package vertica

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vsfabric/internal/catalog"
	"vsfabric/internal/dc"
	"vsfabric/internal/dfs"
	"vsfabric/internal/expr"
	"vsfabric/internal/obs"
	"vsfabric/internal/pool"
	"vsfabric/internal/sim"
	"vsfabric/internal/storage"
	"vsfabric/internal/txn"
	"vsfabric/internal/types"
	"vsfabric/internal/wal"
)

// UDxFunc is a registered scalar User-Defined Extension: it receives the
// evaluated arguments and the USING PARAMETERS map.
type UDxFunc func(args []types.Value, params map[string]string) (types.Value, error)

// NodeState is a node's position in the cluster lifecycle.
type NodeState int32

const (
	// NodeUp serves reads and receives writes.
	NodeUp NodeState = iota
	// NodeDown is failed: reads fail over to buddies, writes skip its stores
	// (they land on buddies and are reconciled at recovery).
	NodeDown
	// NodeRecovering is replaying missed epochs from its buddies: it receives
	// new writes but does not serve reads until caught up.
	NodeRecovering
	// NodeRemoved has been dropped from the cluster by ALTER CLUSTER REMOVE
	// NODE; it never returns.
	NodeRemoved
)

func (s NodeState) String() string {
	switch s {
	case NodeUp:
		return "UP"
	case NodeDown:
		return "DOWN"
	case NodeRecovering:
		return "RECOVERING"
	case NodeRemoved:
		return "REMOVED"
	default:
		return "?"
	}
}

// Node is one database node.
type Node struct {
	ID   int
	Name string // sim resource name ("v0", "v1", ...)
	Addr string // host address clients connect to

	state atomic.Int32
	// recoveryEpoch is the epoch the node last caught up to when rejoining
	// after a down window (0 = never recovered).
	recoveryEpoch atomic.Uint64
	// cluster backs SetDown(false) heals with real recovery. Nil only in
	// tests constructing bare nodes.
	cluster *Cluster
}

// State returns the node's lifecycle state.
func (n *Node) State() NodeState { return NodeState(n.state.Load()) }

func (n *Node) setState(s NodeState) { n.state.Store(int32(s)) }

// RecoveryEpoch returns the epoch the node last recovered to (0 if it never
// left the cluster).
func (n *Node) RecoveryEpoch() uint64 { return n.recoveryEpoch.Load() }

// SetDown marks the node failed (true) or heals it (false). Healing a downed
// node does not silently rejoin it with stale stores: the node enters
// RECOVERING and synchronously replays the epochs it missed from its buddies
// (Cluster.RecoverNode), only serving reads again once caught up. A removed
// node stays removed.
func (n *Node) SetDown(d bool) {
	if d {
		if n.State() == NodeRemoved {
			return
		}
		n.setState(NodeDown)
		return
	}
	if n.State() != NodeDown {
		return
	}
	if n.cluster != nil {
		_ = n.cluster.RecoverNode(n.ID)
		return
	}
	n.setState(NodeUp)
}

// Down reports whether the node is unable to serve reads (any state but UP).
func (n *Node) Down() bool { return n.State() != NodeUp }

// acceptsWrites reports whether the node's stores must receive new writes.
// RECOVERING nodes do: tables already reconciled stay current, and tables not
// yet reconciled are rebuilt wholesale anyway.
func (n *Node) acceptsWrites() bool {
	s := n.State()
	return s == NodeUp || s == NodeRecovering
}

// Config controls cluster creation.
type Config struct {
	Nodes int
	// KSafety is the default k-safety for new segmented tables created
	// without an explicit KSAFE clause. The paper's experiments run with
	// k-safety off (§4.1), which is also the default here.
	KSafety int
	// WOSMoveoutRows triggers an automatic moveout when a table's WOS
	// buffer on any node exceeds this many rows (0 = manual moveout only).
	WOSMoveoutRows int
	// MaxClientSessions bounds concurrent sessions per node (the
	// MAX-CLIENT-SESSIONS parameter raised to 100 in §4.1).
	MaxClientSessions int
	// RowAtATimeScans forces SELECTs onto the retained row-at-a-time
	// reference scan instead of the vectorized batch pipeline. Ablation and
	// benchmarking knob (cmd/scanbench); leave false in production.
	RowAtATimeScans bool
	// NoZoneMapPruning disables container pruning from per-column zone maps.
	// Ablation knob: results must be identical with pruning on or off, only
	// the number of containers decoded changes.
	NoZoneMapPruning bool
	// DataDir, when set, makes the cluster durable: storage persists under
	// this directory, every write is logged to a write-ahead log fsynced on
	// commit, and NewCluster recovers the last durable epoch from it on
	// reopen. Empty (the default) runs fully in memory.
	DataDir string
	// ContainerCacheBytes bounds the decoded-container cache used when
	// loading ROS files from DataDir (0 = storage.DefaultCacheBytes).
	ContainerCacheBytes int
	// Cache optionally shares a container cache across clusters (the
	// kill-and-restart suite reopening the same directory). Nil allocates a
	// private cache of ContainerCacheBytes.
	Cache *storage.ContainerCache
	// MetricsAddr, when set (e.g. "127.0.0.1:8085" or ":0"), starts an HTTP
	// listener serving Prometheus-text /metrics and a /healthz probe that
	// reflects the node state machine. Empty (the default) serves nothing.
	MetricsAddr string
	// SlowQueryThreshold raises a SLOW_QUERY event for statements running
	// longer than this (0 = disabled). SET SESSION SLOW_QUERY_THRESHOLD
	// overrides it per session.
	SlowQueryThreshold time.Duration
	// JoinBuildRows raises a JOIN_BUILD_SIDE_LARGE event when a hash join
	// builds its table over more rows than this (0 = 64K default, <0 =
	// disabled).
	JoinBuildRows int64
	// WALFsyncStall raises a WAL_FSYNC_STALL event when a WAL fsync takes
	// longer than this (0 = 50ms default, <0 = disabled).
	WALFsyncStall time.Duration
	// DisableDataCollector keeps a durable cluster from spooling monitoring
	// history to DataDir/dc. The v_monitor.dc_* tables then error; the
	// in-memory v_monitor tables are unaffected. Used to isolate the
	// spooling cost in benchmarks and to opt out on write-sensitive disks.
	DisableDataCollector bool
}

// Cluster is a running database cluster.
type Cluster struct {
	cfg Config
	// nodesPtr holds the node slice copy-on-write: ALTER CLUSTER ADD NODE
	// swaps in an extended copy, so readers index it without locks. Node IDs
	// are stable — removed nodes keep their slot, marked NodeRemoved.
	nodesPtr atomic.Pointer[[]*Node]
	cat      *catalog.Catalog
	txm      *txn.Manager
	dfs      *dfs.FS

	// membershipMu serializes cluster lifecycle operations (add/remove node,
	// whole-node recovery) against each other.
	membershipMu sync.Mutex
	// reb records rebalance/recovery progress for
	// v_monitor.rebalance_operations.
	reb rebalanceTracker
	// plans records each SELECT's planning outcome (join order, estimates,
	// container pruning) for v_monitor.query_plans.
	plans planTracker

	udxMu sync.RWMutex
	udx   map[string]UDxFunc

	sessMu   sync.Mutex
	sessions map[int]int // node id → open session count
	jobSeq   atomic.Uint64

	// mon collects engine-side spans (query executes, COPY streams) and
	// backs the v_monitor.query_requests / load_streams system tables.
	mon *obs.Collector

	// pools is the resource manager: named admission-control pools that
	// bound per-pool memory and concurrency, with queueing. Every statement
	// passes through its session's pool before executing.
	pools *pool.Manager

	// Durable-mode state (zero when Config.DataDir is empty): the data
	// directory, the decoded-container cache, and the current write-ahead
	// log with its file sequence number. walMu guards the log pointer across
	// checkpoint cutover; nextDiskID names new data files.
	dataDir    string
	cache      *storage.ContainerCache
	walMu      sync.Mutex
	wlog       *wal.Log
	walSeq     uint64
	nextDiskID atomic.Uint64

	// dcs is the durable data-collector spool (nil on in-memory clusters):
	// monitoring history written through the collector's taps and read back
	// by the v_monitor.dc_* tables.
	dcs *dc.Spool

	// metrics is the optional /metrics + /healthz HTTP endpoint
	// (Config.MetricsAddr), nil when not serving.
	metrics *metricsServer
}

// NewCluster creates a cluster with the given configuration.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("vertica: cluster needs at least 1 node, got %d", cfg.Nodes)
	}
	if cfg.MaxClientSessions == 0 {
		cfg.MaxClientSessions = 100
	}
	c := &Cluster{
		cfg:      cfg,
		cat:      catalog.New(cfg.Nodes),
		txm:      txn.NewManager(),
		dfs:      dfs.New(),
		udx:      make(map[string]UDxFunc),
		sessions: make(map[int]int),
		mon:      obs.NewCollector(),
		pools:    pool.NewManager(),
	}
	nodes := make([]*Node, 0, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		nodes = append(nodes, c.newNode(i))
	}
	c.nodesPtr.Store(&nodes)
	c.registerBuiltins()
	if cfg.DataDir != "" {
		c.dataDir = cfg.DataDir
		c.cache = cfg.Cache
		if c.cache == nil {
			c.cache = storage.NewContainerCache(cfg.ContainerCacheBytes)
		}
		if err := c.openDurable(); err != nil {
			return nil, fmt.Errorf("vertica: opening data directory %s: %w", cfg.DataDir, err)
		}
		if !cfg.DisableDataCollector {
			if err := c.openDC(); err != nil {
				return nil, fmt.Errorf("vertica: opening data collector under %s: %w", cfg.DataDir, err)
			}
		}
	}
	if cfg.MetricsAddr != "" {
		if err := c.startMetrics(cfg.MetricsAddr); err != nil {
			return nil, fmt.Errorf("vertica: starting metrics endpoint on %s: %w", cfg.MetricsAddr, err)
		}
	}
	return c, nil
}

// Close detaches a durable cluster from its write-ahead log (flushing
// buffered records), closes the data-collector spool, and stops the
// metrics endpoint. In-memory clusters without a metrics listener need no
// Close.
func (c *Cluster) Close() error {
	if c.metrics != nil {
		c.metrics.stop()
		c.metrics = nil
	}
	if c.dcs != nil {
		c.mon.SetTap(nil, nil)
		c.pools.OnEvent = nil
		c.dcs.Close()
		c.dcs = nil
	}
	c.txm.SetCommitLog(nil)
	c.walMu.Lock()
	l := c.wlog
	c.wlog = nil
	c.walMu.Unlock()
	if l != nil {
		return l.Close()
	}
	return nil
}

// MustNewCluster is NewCluster for tests and examples that cannot fail.
func MustNewCluster(nodes int) *Cluster {
	c, err := NewCluster(Config{Nodes: nodes})
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Cluster) newNode(id int) *Node {
	return &Node{
		ID:      id,
		Name:    sim.VName(id),
		Addr:    fmt.Sprintf("vertica-node-%d.local", id),
		cluster: c,
	}
}

// NumNodes returns the number of node slots ever allocated (including
// removed nodes; IDs are stable).
func (c *Cluster) NumNodes() int { return len(c.nodeList()) }

// Nodes returns a snapshot of the cluster's nodes.
func (c *Cluster) Nodes() []*Node { return c.nodeList() }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodeList()[i] }

func (c *Cluster) nodeList() []*Node { return *c.nodesPtr.Load() }

// node returns node id, or nil when out of range.
func (c *Cluster) node(id int) *Node {
	nodes := c.nodeList()
	if id < 0 || id >= len(nodes) {
		return nil
	}
	return nodes[id]
}

// nodeUp reports whether node id is serving reads.
func (c *Cluster) nodeUp(id int) bool {
	n := c.node(id)
	return n != nil && n.State() == NodeUp
}

// nodeAcceptsWrites reports whether node id's stores must receive writes
// (UP or RECOVERING).
func (c *Cluster) nodeAcceptsWrites(id int) bool {
	n := c.node(id)
	return n != nil && n.acceptsWrites()
}

// Catalog exposes the cluster catalog (read-mostly; DDL goes through SQL).
func (c *Cluster) Catalog() *catalog.Catalog { return c.cat }

// DFS exposes the internal distributed file system used by model deployment.
func (c *Cluster) DFS() *dfs.FS { return c.dfs }

// TxnManager exposes the transaction manager (for tests).
func (c *Cluster) TxnManager() *txn.Manager { return c.txm }

// LastEpoch returns the last closed epoch.
func (c *Cluster) LastEpoch() uint64 { return c.txm.LastEpoch() }

// NextJobID returns a cluster-unique id suffix for connector temp tables.
func (c *Cluster) NextJobID() uint64 { return c.jobSeq.Add(1) }

// Pools exposes the cluster's resource-pool manager (for tests and tools;
// normal administration goes through CREATE/ALTER RESOURCE POOL SQL).
func (c *Cluster) Pools() *pool.Manager { return c.pools }

// Obs exposes the cluster's monitoring collector: the span/counter store
// behind the v_monitor system tables. Disable it (Obs().SetEnabled(false))
// to run with zero observability overhead, e.g. for benchmarking.
func (c *Cluster) Obs() *obs.Collector { return c.mon }

// RegisterUDx installs (or replaces) a scalar UDx under the given name.
// Names are case-insensitive.
func (c *Cluster) RegisterUDx(name string, fn UDxFunc) {
	c.udxMu.Lock()
	defer c.udxMu.Unlock()
	c.udx[upper(name)] = fn
}

// LookupUDx finds a registered UDx.
func (c *Cluster) LookupUDx(name string) (UDxFunc, bool) {
	c.udxMu.RLock()
	defer c.udxMu.RUnlock()
	fn, ok := c.udx[upper(name)]
	return fn, ok
}

func upper(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'a' && b[i] <= 'z' {
			b[i] -= 'a' - 'A'
		}
	}
	return string(b)
}

// registerBuiltins installs the engine's built-in scalar functions.
func (c *Cluster) registerBuiltins() {
	c.registerDCBuiltins()
	c.RegisterUDx("LAST_EPOCH", func(args []types.Value, _ map[string]string) (types.Value, error) {
		if len(args) != 0 {
			return types.Value{}, fmt.Errorf("LAST_EPOCH takes no arguments")
		}
		return types.IntValue(int64(c.txm.LastEpoch())), nil
	})
	c.RegisterUDx("CURRENT_EPOCH", func(args []types.Value, _ map[string]string) (types.Value, error) {
		return types.IntValue(int64(c.txm.LastEpoch() + 1)), nil
	})
	c.RegisterUDx("VERSION", func(args []types.Value, _ map[string]string) (types.Value, error) {
		return types.StringValue("vsfabric MPP engine v1.0 (Vertica 7.2.1 semantics)"), nil
	})
	c.RegisterUDx("LENGTH", func(args []types.Value, _ map[string]string) (types.Value, error) {
		if len(args) != 1 {
			return types.Value{}, fmt.Errorf("LENGTH takes 1 argument")
		}
		if args[0].Null {
			return types.NullValue(types.Int64), nil
		}
		return types.IntValue(int64(len(args[0].S))), nil
	})
	c.RegisterUDx("ABS", func(args []types.Value, _ map[string]string) (types.Value, error) {
		if len(args) != 1 {
			return types.Value{}, fmt.Errorf("ABS takes 1 argument")
		}
		v := args[0]
		if v.Null {
			return v, nil
		}
		switch v.T {
		case types.Int64:
			if v.I < 0 {
				return types.IntValue(-v.I), nil
			}
			return v, nil
		default:
			f := v.AsFloat()
			if f < 0 {
				f = -f
			}
			return types.FloatValue(f), nil
		}
	})
}

// bindFuncs walks an expression binding FuncCall nodes to registered UDxs.
func (c *Cluster) bindFuncs(e expr.Expr) error {
	switch n := e.(type) {
	case nil:
		return nil
	case *expr.FuncCall:
		fn, ok := c.LookupUDx(n.Name)
		if !ok {
			return fmt.Errorf("vertica: no function or UDx named %q", n.Name)
		}
		n.Impl = fn
		for _, a := range n.Args {
			if err := c.bindFuncs(a); err != nil {
				return err
			}
		}
	case *expr.Cmp:
		if err := c.bindFuncs(n.L); err != nil {
			return err
		}
		return c.bindFuncs(n.R)
	case *expr.And:
		if err := c.bindFuncs(n.L); err != nil {
			return err
		}
		return c.bindFuncs(n.R)
	case *expr.Or:
		if err := c.bindFuncs(n.L); err != nil {
			return err
		}
		return c.bindFuncs(n.R)
	case *expr.Not:
		return c.bindFuncs(n.E)
	case *expr.IsNull:
		return c.bindFuncs(n.E)
	case *expr.Arith:
		if err := c.bindFuncs(n.L); err != nil {
			return err
		}
		return c.bindFuncs(n.R)
	case *expr.HashFn:
		for _, a := range n.Args {
			if err := c.bindFuncs(a); err != nil {
				return err
			}
		}
	case *expr.ModFn:
		if err := c.bindFuncs(n.X); err != nil {
			return err
		}
		return c.bindFuncs(n.Y)
	}
	return nil
}

// Moveout runs the tuple mover on every table: committed WOS rows older than
// the Ancient History Mark become ROS containers (rows a pinned reader can
// still see stay buffered). On a durable cluster moveout is a checkpoint:
// the moved containers are persisted and the write-ahead log truncated.
func (c *Cluster) Moveout() error {
	if c.durable() {
		return c.Checkpoint()
	}
	return c.moveoutAll()
}

// Connect opens a session against the given node. It enforces the per-node
// session limit. Connecting to a DOWN node fails with ErrNodeDown; to a
// REMOVED node with ErrNodeRemoved (a distinct, permanent condition — the
// node will never return). A RECOVERING node accepts sessions so monitoring
// reads keep working, but non-monitoring statements are rejected at dispatch
// until recovery completes.
func (c *Cluster) Connect(nodeID int) (*Session, error) {
	n := c.node(nodeID)
	if n == nil {
		return nil, fmt.Errorf("vertica: no node %d in %d-node cluster", nodeID, c.NumNodes())
	}
	switch n.State() {
	case NodeDown:
		return nil, fmt.Errorf("%w: node %d is down", ErrNodeDown, nodeID)
	case NodeRemoved:
		return nil, fmt.Errorf("%w: node %d", ErrNodeRemoved, nodeID)
	}
	c.sessMu.Lock()
	defer c.sessMu.Unlock()
	if c.sessions[nodeID] >= c.cfg.MaxClientSessions {
		return nil, fmt.Errorf("%w: node %d at limit %d", ErrSessionLimit, nodeID, c.cfg.MaxClientSessions)
	}
	c.sessions[nodeID]++
	return &Session{cluster: c, node: n}, nil
}

// ConnectAddr opens a session against the node with the given address.
func (c *Cluster) ConnectAddr(addr string) (*Session, error) {
	for _, n := range c.nodeList() {
		if n.Addr == addr {
			return c.Connect(n.ID)
		}
	}
	return nil, fmt.Errorf("vertica: no node with address %q", addr)
}

func (c *Cluster) releaseSession(nodeID int) {
	c.sessMu.Lock()
	defer c.sessMu.Unlock()
	if c.sessions[nodeID] > 0 {
		c.sessions[nodeID]--
	}
}

// OpenSessions reports the number of open sessions on a node (for tests).
func (c *Cluster) OpenSessions(nodeID int) int {
	c.sessMu.Lock()
	defer c.sessMu.Unlock()
	return c.sessions[nodeID]
}
