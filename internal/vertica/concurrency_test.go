package vertica

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentCopiesAndSnapshotReaders hammers one table with parallel
// COPY streams while readers repeatedly take snapshots: every snapshot must
// observe a multiple of the batch size (bulk loads are atomic), and the
// final count must be exact.
func TestConcurrentCopiesAndSnapshotReaders(t *testing.T) {
	c := testCluster(t, 4)
	setup := sess(t, c, 0)
	setup.MustExecute("CREATE TABLE t (id INTEGER, v FLOAT) SEGMENTED BY HASH(id)")

	const writers = 6
	const batches = 5
	const batchRows = 200

	var wg sync.WaitGroup
	errs := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := c.Connect(w % 4)
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			for b := 0; b < batches; b++ {
				var sb strings.Builder
				base := (w*batches + b) * batchRows
				for i := 0; i < batchRows; i++ {
					fmt.Fprintf(&sb, "%d,%d.5\n", base+i, i)
				}
				if _, err := s.CopyFrom("COPY t FROM STDIN FORMAT CSV DIRECT", strings.NewReader(sb.String())); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			s, err := c.Connect((r + 1) % 4)
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.Execute("SELECT COUNT(*) FROM t")
				if err != nil {
					errs <- err
					return
				}
				if n := res.Rows[0][0].I; n%batchRows != 0 {
					errs <- fmt.Errorf("snapshot saw torn bulk load: %d rows", n)
					return
				}
			}
		}(r)
	}
	// Wait for writers, then stop readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Poll until every writer's batches are visible.
	for {
		res := setup.MustExecute("SELECT COUNT(*) FROM t")
		if res.Rows[0][0].I == int64(writers*batches*batchRows) {
			break
		}
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
	}
	close(stop)
	<-done
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if v, _ := setup.MustExecute("SELECT COUNT(*) FROM t").Value(); v.I != writers*batches*batchRows {
		t.Errorf("final count = %v", v)
	}
}

// TestAutoMoveout exercises the WOS threshold: trickle inserts past the
// limit trigger the tuple mover, and visibility is unaffected.
func TestAutoMoveout(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 2, WOSMoveoutRows: 50})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.MustExecute("CREATE TABLE t (id INTEGER)")
	for b := 0; b < 10; b++ {
		var vals []string
		for i := 0; i < 30; i++ {
			vals = append(vals, fmt.Sprintf("(%d)", b*30+i))
		}
		s.MustExecute("INSERT INTO t VALUES " + strings.Join(vals, ", "))
	}
	if v, _ := s.MustExecute("SELECT COUNT(*) FROM t").Value(); v.I != 300 {
		t.Errorf("count = %v", v)
	}
	tbl, _ := c.Catalog().Table("t")
	ros := 0
	for _, st := range tbl.Stores {
		ros += st.ContainerCount()
	}
	if ros == 0 {
		t.Error("auto-moveout never ran (no ROS containers)")
	}
}

// TestConcurrentDDLAndInserts: creating/dropping unrelated tables while a
// load runs must not disturb it.
func TestConcurrentDDLAndInserts(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE stable (id INTEGER)")
	var wg sync.WaitGroup
	wg.Add(2)
	errCh := make(chan error, 2)
	go func() {
		defer wg.Done()
		s2, err := c.Connect(1)
		if err != nil {
			errCh <- err
			return
		}
		defer s2.Close()
		for i := 0; i < 50; i++ {
			if _, err := s2.Execute(fmt.Sprintf("CREATE TABLE tmp_%d (a INTEGER)", i)); err != nil {
				errCh <- err
				return
			}
			if _, err := s2.Execute(fmt.Sprintf("DROP TABLE tmp_%d", i)); err != nil {
				errCh <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		s3, err := c.Connect(0)
		if err != nil {
			errCh <- err
			return
		}
		defer s3.Close()
		for i := 0; i < 50; i++ {
			if _, err := s3.Execute(fmt.Sprintf("INSERT INTO stable VALUES (%d)", i)); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if v, _ := s.MustExecute("SELECT COUNT(*) FROM stable").Value(); v.I != 50 {
		t.Errorf("count = %v", v)
	}
}
