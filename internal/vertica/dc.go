package vertica

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"vsfabric/internal/dc"
	"vsfabric/internal/obs"
	"vsfabric/internal/pool"
	"vsfabric/internal/storage"
	"vsfabric/internal/types"
)

// This file wires the durable data collector (internal/dc) into the engine:
// a durable cluster spools monitoring history — query requests, job traces,
// resilience events, resource-queue events, query plans, query events — to
// DataDir/dc as it happens, and serves it back through the v_monitor.dc_*
// tables after a restart. Spool failures never fail queries: they are
// swallowed into the "dc.errors" counter, because observability must not
// take the database down with it.

// Data-collector component names. Each owns a directory of rotating
// segments under DataDir/dc/<component>.
const (
	dcQueryRequests  = "query_requests"
	dcJobTraces      = "job_traces"
	dcResilience     = "resilience_events"
	dcQueueEvents    = "resource_queue_events"
	dcQueryPlans     = "query_plans"
	dcQueryEventComp = "query_events"
)

// dcComponents lists every component a cluster spools.
var dcComponents = []string{
	dcQueryRequests, dcJobTraces, dcResilience, dcQueueEvents, dcQueryPlans, dcQueryEventComp,
}

// dcSchemas maps each component to its row schema. Every spooled record is
// one storage.EncodeRows-framed row under this schema, so the dc_* tables
// decode records from any engine version that shares the column set.
var dcSchemas = map[string]types.Schema{
	dcQueryRequests: types.NewSchema(
		types.Column{Name: "request_id", T: types.Int64},
		types.Column{Name: "node_name", T: types.Varchar},
		types.Column{Name: "client_name", T: types.Varchar},
		types.Column{Name: "request", T: types.Varchar},
		types.Column{Name: "start_timestamp", T: types.Varchar},
		types.Column{Name: "request_duration_us", T: types.Int64},
		types.Column{Name: "result_rows", T: types.Int64},
		types.Column{Name: "success", T: types.Bool},
		types.Column{Name: "error_message", T: types.Varchar},
	),
	dcJobTraces: types.NewSchema(
		types.Column{Name: "trace_id", T: types.Varchar},
		types.Column{Name: "job_type", T: types.Varchar},
		types.Column{Name: "job_name", T: types.Varchar},
		types.Column{Name: "start_timestamp", T: types.Varchar},
		types.Column{Name: "duration_us", T: types.Int64},
		types.Column{Name: "db_rows", T: types.Int64},
		types.Column{Name: "db_bytes", T: types.Int64},
		types.Column{Name: "success", T: types.Bool},
	),
	dcResilience: types.NewSchema(
		types.Column{Name: "event_time", T: types.Varchar},
		types.Column{Name: "event_type", T: types.Varchar},
		types.Column{Name: "node_address", T: types.Varchar},
		types.Column{Name: "detail", T: types.Varchar},
	),
	dcQueueEvents: types.NewSchema(
		types.Column{Name: "event_time", T: types.Varchar},
		types.Column{Name: "pool_name", T: types.Varchar},
		types.Column{Name: "outcome", T: types.Varchar},
		types.Column{Name: "queue_wait_us", T: types.Int64},
		types.Column{Name: "request_type", T: types.Varchar},
	),
	dcQueryPlans: types.NewSchema(
		types.Column{Name: "plan_id", T: types.Int64},
		types.Column{Name: "query", T: types.Varchar},
		types.Column{Name: "anchor_table", T: types.Varchar},
		types.Column{Name: "join_order", T: types.Varchar},
		types.Column{Name: "estimated_rows", T: types.Int64},
		types.Column{Name: "actual_rows", T: types.Int64},
		types.Column{Name: "containers_scanned", T: types.Int64},
		types.Column{Name: "containers_pruned", T: types.Int64},
		types.Column{Name: "pushdown", T: types.Varchar},
		types.Column{Name: "vectorized", T: types.Bool},
		types.Column{Name: "epoch", T: types.Int64},
	),
	dcQueryEventComp: types.NewSchema(
		types.Column{Name: "event_time", T: types.Varchar},
		types.Column{Name: "event_type", T: types.Varchar},
		types.Column{Name: "node_name", T: types.Varchar},
		types.Column{Name: "trace_id", T: types.Varchar},
		types.Column{Name: "query", T: types.Varchar},
		types.Column{Name: "detail", T: types.Varchar},
		types.Column{Name: "value", T: types.Int64},
		types.Column{Name: "threshold", T: types.Int64},
	),
}

// openDC opens the durable data-collector spool under DataDir/dc and taps
// the cluster's observability feeds into it: the collector's span/event
// taps, the resource manager's queue-event hook. Called only for durable
// clusters.
func (c *Cluster) openDC() error {
	spool, err := dc.Open(filepath.Join(c.dataDir, "dc"), dcComponents)
	if err != nil {
		return err
	}
	c.dcs = spool
	c.mon.SetTap(c.dcSpan, c.dcEvent)
	c.pools.OnEvent = c.dcQueueEvent
	return nil
}

// DataCollector exposes the durable data-collector spool (nil on in-memory
// clusters) for tests and tools; normal access goes through the
// v_monitor.dc_* tables and the policy UDxs.
func (c *Cluster) DataCollector() *dc.Spool { return c.dcs }

// dcAppend encodes one row under a component's schema and spools it. All
// failures (including a simulated crash) land in the dc.errors counter;
// the query that generated the row is never failed by its observability.
func (c *Cluster) dcAppend(comp string, t time.Time, row types.Row) {
	if c.dcs == nil {
		return
	}
	payload, err := storage.EncodeRows(dcSchemas[comp], []types.Row{row})
	if err == nil {
		err = c.dcs.Append(comp, dc.Record{Time: t, Payload: payload})
	}
	if err != nil {
		c.mon.Add("dc.errors", 1)
		return
	}
	c.mon.Add("dc.appends", 1)
}

// dcSpan is the collector's span tap: completed "execute" spans become
// query_requests records, root connector job spans become job_traces
// records.
func (c *Cluster) dcSpan(sp obs.Span) {
	switch {
	case sp.Name == "execute":
		c.dcAppend(dcQueryRequests, sp.Start, types.Row{
			types.IntValue(int64(sp.ID)),
			types.StringValue(sp.Node),
			types.StringValue(sp.Peer),
			types.StringValue(sp.Detail),
			types.StringValue(sp.Start.Format(time.RFC3339Nano)),
			types.IntValue(sp.Duration.Microseconds()),
			types.IntValue(sp.Rows),
			types.BoolValue(sp.OK()),
			types.StringValue(sp.Err),
		})
	case sp.Root() && strings.HasSuffix(sp.Name, ".job"):
		c.dcAppend(dcJobTraces, sp.Start, types.Row{
			types.StringValue(fmt.Sprintf("%016x", sp.TraceID)),
			types.StringValue(sp.Name),
			types.StringValue(sp.Detail),
			types.StringValue(sp.Start.Format(time.RFC3339Nano)),
			types.IntValue(sp.Duration.Microseconds()),
			types.IntValue(sp.Rows),
			types.IntValue(sp.Bytes),
			types.BoolValue(sp.OK()),
		})
	}
}

// dcEvent is the collector's event tap: ring-worthy events (node failures,
// recoveries, rebalances) become resilience_events records.
func (c *Cluster) dcEvent(ev obs.Event) {
	c.dcAppend(dcResilience, ev.Time, types.Row{
		types.StringValue(ev.Time.Format(time.RFC3339Nano)),
		types.StringValue(ev.Name),
		types.StringValue(ev.Node),
		types.StringValue(ev.Detail),
	})
}

// dcQueueEvent is the resource manager's hook: admission-queue incidents
// become resource_queue_events records.
func (c *Cluster) dcQueueEvent(ev pool.QueueEvent) {
	c.dcAppend(dcQueueEvents, ev.Time, types.Row{
		types.StringValue(ev.Time.Format(time.RFC3339Nano)),
		types.StringValue(ev.Pool),
		types.StringValue(ev.Outcome),
		types.IntValue(ev.Wait.Microseconds()),
		types.StringValue(ev.Detail),
	})
}

// dcAppendPlan spools one completed SELECT's planning outcome.
func (c *Cluster) dcAppendPlan(r planRecord) {
	c.dcAppend(dcQueryPlans, time.Now(), types.Row{
		types.IntValue(int64(r.ID)),
		types.StringValue(r.Query),
		types.StringValue(r.Table),
		types.StringValue(r.JoinOrder),
		types.IntValue(r.EstRows),
		types.IntValue(r.ActualRows),
		types.IntValue(r.ContainersScanned),
		types.IntValue(r.ContainersPruned),
		types.StringValue(r.Pushdown),
		types.BoolValue(r.Vectorized),
		types.IntValue(int64(r.Epoch)),
	})
}

// dcAppendQueryEvent spools one typed query event.
func (c *Cluster) dcAppendQueryEvent(ev obs.QueryEvent) {
	c.dcAppend(dcQueryEventComp, ev.Time, types.Row{
		types.StringValue(ev.Time.Format(time.RFC3339Nano)),
		types.StringValue(string(ev.Type)),
		types.StringValue(ev.Node),
		types.StringValue(fmt.Sprintf("%016x", ev.TraceID)),
		types.StringValue(ev.Query),
		types.StringValue(ev.Detail),
		types.IntValue(ev.Value),
		types.IntValue(ev.Threshold),
	})
}

// dcTableRows renders v_monitor.dc_<component>: every durably spooled
// record of the component, oldest first — including everything recorded by
// previous processes against the same DataDir. Records whose stored schema
// no longer decodes are skipped (counted in dc.decode_errors) rather than
// failing the read.
func (c *Cluster) dcTableRows(comp string) ([]types.Row, types.Schema, error) {
	schema, ok := dcSchemas[comp]
	if !ok {
		return nil, types.Schema{}, fmt.Errorf("vertica: unknown data collector component %q", comp)
	}
	if c.dcs == nil {
		return nil, types.Schema{}, fmt.Errorf("vertica: data collector requires a durable cluster (Config.DataDir)")
	}
	recs, err := c.dcs.Records(comp)
	if err != nil {
		return nil, types.Schema{}, err
	}
	var rows []types.Row
	for _, r := range recs {
		_, rr, derr := storage.DecodeRows(r.Payload)
		if derr != nil || len(rr) != 1 || len(rr[0]) != len(schema.Cols) {
			c.mon.Add("dc.decode_errors", 1)
			continue
		}
		rows = append(rows, rr[0])
	}
	return rows, schema, nil
}

// dataCollectorRows renders v_monitor.data_collector: one row per
// component with its on-disk footprint and retention policy.
func (c *Cluster) dataCollectorRows() ([]types.Row, types.Schema, error) {
	schema := types.NewSchema(
		types.Column{Name: "component", T: types.Varchar},
		types.Column{Name: "segments", T: types.Int64},
		types.Column{Name: "bytes_on_disk", T: types.Int64},
		types.Column{Name: "record_count", T: types.Int64},
		types.Column{Name: "first_time", T: types.Varchar},
		types.Column{Name: "last_time", T: types.Varchar},
		types.Column{Name: "policy_max_kb", T: types.Int64},
		types.Column{Name: "policy_max_age_ms", T: types.Int64},
	)
	if c.dcs == nil {
		return nil, schema, nil
	}
	fmtT := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.Format(time.RFC3339Nano)
	}
	var rows []types.Row
	for _, st := range c.dcs.Stats() {
		maxKB := st.Policy.MaxKB
		if maxKB <= 0 {
			maxKB = dc.DefaultMaxKB
		}
		rows = append(rows, types.Row{
			types.StringValue(st.Component),
			types.IntValue(int64(st.Segments)),
			types.IntValue(st.Bytes),
			types.IntValue(st.Records),
			types.StringValue(fmtT(st.Oldest)),
			types.StringValue(fmtT(st.Newest)),
			types.IntValue(maxKB),
			types.IntValue(st.Policy.MaxAge.Milliseconds()),
		})
	}
	return rows, schema, nil
}

// registerDCBuiltins installs the data-collector policy UDxs:
//
//	SELECT SET_DATA_COLLECTOR_POLICY('query_requests', 64, '1h');
//	SELECT GET_DATA_COLLECTOR_POLICY('query_requests');
//
// The second argument is the disk budget in KB, the third the max record
// age as a Go duration string (” = no age limit).
func (c *Cluster) registerDCBuiltins() {
	c.RegisterUDx("SET_DATA_COLLECTOR_POLICY", func(args []types.Value, _ map[string]string) (types.Value, error) {
		if len(args) != 3 {
			return types.Value{}, fmt.Errorf("SET_DATA_COLLECTOR_POLICY takes (component, max_kb, max_age)")
		}
		if c.dcs == nil {
			return types.Value{}, fmt.Errorf("SET_DATA_COLLECTOR_POLICY requires a durable cluster (Config.DataDir)")
		}
		comp := args[0].S
		if args[1].T != types.Int64 {
			return types.Value{}, fmt.Errorf("SET_DATA_COLLECTOR_POLICY: max_kb must be an integer")
		}
		pol := dc.Policy{MaxKB: args[1].I}
		if age := args[2].S; age != "" {
			d, err := time.ParseDuration(age)
			if err != nil {
				return types.Value{}, fmt.Errorf("SET_DATA_COLLECTOR_POLICY: bad max_age %q: %v", age, err)
			}
			pol.MaxAge = d
		}
		if err := c.dcs.SetPolicy(comp, pol); err != nil {
			return types.Value{}, err
		}
		return types.StringValue(fmt.Sprintf("SET policy %s: max %d KB, max age %s", comp, pol.MaxKB, pol.MaxAge)), nil
	})
	c.RegisterUDx("GET_DATA_COLLECTOR_POLICY", func(args []types.Value, _ map[string]string) (types.Value, error) {
		if len(args) != 1 {
			return types.Value{}, fmt.Errorf("GET_DATA_COLLECTOR_POLICY takes (component)")
		}
		if c.dcs == nil {
			return types.Value{}, fmt.Errorf("GET_DATA_COLLECTOR_POLICY requires a durable cluster (Config.DataDir)")
		}
		pol, ok := c.dcs.GetPolicy(args[0].S)
		if !ok {
			return types.Value{}, fmt.Errorf("GET_DATA_COLLECTOR_POLICY: unknown component %q", args[0].S)
		}
		maxKB := pol.MaxKB
		if maxKB <= 0 {
			maxKB = dc.DefaultMaxKB
		}
		age := "none"
		if pol.MaxAge > 0 {
			age = pol.MaxAge.String()
		}
		return types.StringValue(fmt.Sprintf("max %d KB, max age %s", maxKB, age)), nil
	})
}
