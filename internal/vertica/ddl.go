package vertica

import (
	"fmt"

	"vsfabric/internal/catalog"
	"vsfabric/internal/types"
	"vsfabric/internal/vsql"
)

// executeCreateTable creates a table. Tables default to segmentation over
// all columns, matching Vertica's default of deriving a segmentation
// expression when none is given (§2.1.1).
func (s *Session) executeCreateTable(st *vsql.CreateTable) (*Result, error) {
	var schema types.Schema
	if st.Like != "" {
		src, ok := s.cluster.cat.Table(st.Like)
		if !ok {
			return nil, fmt.Errorf("vertica: table %q does not exist", st.Like)
		}
		def := src.Def
		def.Name = st.Name
		def.Temp = st.Temp
		if _, err := s.cluster.cat.CreateTable(def, s.cluster.txm.LastEpoch()); err != nil {
			if st.IfNotExists {
				if _, exists := s.cluster.cat.Table(st.Name); exists {
					return &Result{}, nil
				}
			}
			return nil, err
		}
		if err := s.cluster.logDDL(opCreateTable, ddlPayload{Def: &def}); err != nil {
			return nil, err
		}
		return &Result{}, nil
	}
	for _, c := range st.Cols {
		schema.Cols = append(schema.Cols, types.Column{Name: c.Name, T: c.Type})
	}
	def := catalog.TableDef{
		Name:      st.Name,
		Schema:    schema,
		Temp:      st.Temp,
		Segmented: !st.Unsegmented,
		SegCols:   st.SegCols,
		KSafety:   st.KSafety,
	}
	if def.KSafety == 0 {
		def.KSafety = s.cluster.cfg.KSafety
	}
	if !def.Segmented {
		def.KSafety = 0
	}
	if _, err := s.cluster.cat.CreateTable(def, s.cluster.txm.LastEpoch()); err != nil {
		if st.IfNotExists {
			if _, exists := s.cluster.cat.Table(st.Name); exists {
				return &Result{}, nil
			}
		}
		return nil, err
	}
	if err := s.cluster.logDDL(opCreateTable, ddlPayload{Def: &def}); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// executeDropTable drops a table. Inside an explicit transaction the drop is
// deferred to commit (with existence validated up front), so S2V's phase-5
// "drop target, rename staging" pair applies atomically or not at all.
func (s *Session) executeDropTable(st *vsql.DropTable) (*Result, error) {
	if s.tx != nil {
		if _, ok := s.cluster.cat.Table(st.Name); !ok && !st.IfExists {
			return nil, fmt.Errorf("vertica: table %q does not exist", st.Name)
		}
		name := st.Name
		s.tx.OnCommit(func() error {
			if err := s.cluster.cat.DropTable(name, true); err != nil {
				return err
			}
			s.cluster.txm.DropTableLock(name)
			// Logged at application time, like every DDL: commit hooks run
			// exactly once and are not rolled back, so replay applies the
			// record where it sits in the log.
			return s.cluster.logDDL(opDropTable, ddlPayload{Name: name})
		})
		return &Result{}, nil
	}
	if err := s.cluster.cat.DropTable(st.Name, st.IfExists); err != nil {
		return nil, err
	}
	s.cluster.txm.DropTableLock(st.Name)
	if err := s.cluster.logDDL(opDropTable, ddlPayload{Name: st.Name}); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (s *Session) executeCreateView(st *vsql.CreateView) (*Result, error) {
	// Validate the definition by planning it once against empty state.
	if err := s.bindSelectFuncs(st.Stmt); err != nil {
		return nil, err
	}
	if err := s.cluster.cat.CreateView(st.Name, st.SelectSQL); err != nil {
		return nil, err
	}
	if err := s.cluster.logDDL(opCreateView, ddlPayload{Name: st.Name, SQL: st.SelectSQL}); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (s *Session) executeDropView(st *vsql.DropView) (*Result, error) {
	if err := s.cluster.cat.DropView(st.Name, st.IfExists); err != nil {
		return nil, err
	}
	if err := s.cluster.logDDL(opDropView, ddlPayload{Name: st.Name}); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// executeRename renames a table. Inside an explicit transaction the rename
// is deferred to commit (transactional DDL — what makes S2V's phase-5
// staging→target switch atomic with its conditional status update); in
// autocommit it applies immediately.
func (s *Session) executeRename(st *vsql.AlterRename) (*Result, error) {
	if _, ok := s.cluster.cat.Table(st.Name); !ok {
		return nil, fmt.Errorf("vertica: table %q does not exist", st.Name)
	}
	if s.tx != nil {
		name, newName := st.Name, st.NewName
		s.tx.OnCommit(func() error {
			if err := s.cluster.cat.RenameTable(name, newName); err != nil {
				return err
			}
			return s.cluster.logDDL(opRenameTable, ddlPayload{Name: name, NewName: newName})
		})
		return &Result{}, nil
	}
	if err := s.cluster.cat.RenameTable(st.Name, st.NewName); err != nil {
		return nil, err
	}
	if err := s.cluster.logDDL(opRenameTable, ddlPayload{Name: st.Name, NewName: st.NewName}); err != nil {
		return nil, err
	}
	return &Result{}, nil
}
