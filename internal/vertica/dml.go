package vertica

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"

	"vsfabric/internal/avro"
	"vsfabric/internal/catalog"
	"vsfabric/internal/expr"
	"vsfabric/internal/obs"
	"vsfabric/internal/sim"
	"vsfabric/internal/storage"
	"vsfabric/internal/txn"
	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
	"vsfabric/internal/vsql"
)

// coerce adapts a value to the column type (integer literals into FLOAT
// columns, etc.), failing on lossy or senseless conversions.
func coerce(v types.Value, t types.Type) (types.Value, error) {
	if v.Null {
		return types.NullValue(t), nil
	}
	if v.T == t {
		return v, nil
	}
	switch t {
	case types.Float64:
		if v.T == types.Int64 {
			return types.FloatValue(float64(v.I)), nil
		}
	case types.Int64:
		if v.T == types.Float64 && v.F == float64(int64(v.F)) {
			return types.IntValue(int64(v.F)), nil
		}
	case types.Varchar:
		return types.StringValue(v.String()), nil
	}
	return types.Value{}, fmt.Errorf("vertica: cannot coerce %v value %s to %v", v.T, v, t)
}

// routeRows groups rows by home node according to the table's segmentation.
func routeRows(tbl *catalog.Table, rows []types.Row) [][]types.Row {
	buckets := make([][]types.Row, tbl.NumNodes())
	for _, r := range rows {
		home := tbl.HomeNode(tbl.RowHash(r))
		buckets[home] = append(buckets[home], r)
	}
	return buckets
}

// lockTable acquires the table lock in the given mode and then re-resolves
// the table from the catalog. The re-resolution matters: a concurrent
// rebalance (or DDL) holds the EXCLUSIVE lock while swapping the table's
// layout, so a writer that resolved its *Table before blocking on the lock
// would otherwise write into the orphaned pre-rebalance stores.
func (s *Session) lockTable(tx *txn.Txn, name string, mode txn.LockMode) (*catalog.Table, error) {
	tbl, ok := s.cluster.cat.Table(name)
	if !ok {
		return nil, fmt.Errorf("vertica: table %q does not exist", name)
	}
	if err := tx.Acquire(tbl.Def.Name, mode); err != nil {
		return nil, err
	}
	tbl, ok = s.cluster.cat.Table(name)
	if !ok {
		return nil, fmt.Errorf("vertica: table %q does not exist", name)
	}
	return tbl, nil
}

// writableCheck verifies every replica set of the table still has at least
// one store on a node accepting writes. Without it a statement could be
// acknowledged while an entire segment's writes landed nowhere — an
// unrecoverable loss once the downed replicas rebuild from each other.
func (s *Session) writableCheck(tbl *catalog.Table) error {
	n := len(tbl.Ring)
	for seg := 0; seg < n; seg++ {
		if s.cluster.nodeAcceptsWrites(tbl.Ring[seg]) {
			continue
		}
		ok := false
		if tbl.Def.Segmented {
			for r := range tbl.Buddies {
				if s.cluster.nodeAcceptsWrites(tbl.Ring[(seg+r+1)%n]) {
					ok = true
					break
				}
			}
		} else {
			for _, id := range tbl.Ring {
				if s.cluster.nodeAcceptsWrites(id) {
					ok = true
					break
				}
			}
		}
		if !ok {
			return fmt.Errorf("%w: segment %d of table %q has no writable replica (k-safety exhausted)",
				ErrNodeDown, seg, tbl.Def.Name)
		}
	}
	return nil
}

// writeRows inserts rows into a table under tx: segmented tables route each
// row to its segment's node (plus buddy replicas); unsegmented tables
// replicate to every node. direct selects the ROS bulk path over the WOS.
// Stores hosted on DOWN (or removed) nodes are skipped — their writes land
// on the surviving replicas and are reconciled when the node recovers — but
// the statement fails up front if any replica set is entirely unwritable.
// It returns the bytes shuffled from the connected node to each other node,
// for resource accounting.
func (s *Session) writeRows(tx *txn.Txn, tbl *catalog.Table, rows []types.Row, direct bool) (map[[2]string]float64, error) {
	if err := s.writableCheck(tbl); err != nil {
		return nil, err
	}
	route := make(map[[2]string]float64)
	err := forEachTarget(tbl, rows, func(st *storage.Store, nodeID int, batch []types.Row) error {
		if !s.cluster.nodeAcceptsWrites(nodeID) {
			// The skipped store now lags the committed state; recovery must
			// rebuild it from a replica before its node serves reads again.
			st.MarkStale()
			return nil
		}
		if direct {
			if err := st.AppendROS(batch, tx.Tag()); err != nil {
				return err
			}
		} else {
			st.AppendWOS(batch, tx.Tag())
		}
		tx.NoteInsert(st)
		if nodeID != s.node.ID {
			route[[2]string{s.node.Name, sim.VName(nodeID)}] += rowsWireSize(batch)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if err := s.logInsert(tx, tbl, rows, direct); err != nil {
		return nil, err
	}
	return route, nil
}

func rowsWireSize(rows []types.Row) float64 {
	n := 0.0
	for _, r := range rows {
		n += float64(types.WireSize(r))
	}
	return n
}

// executeInsert runs INSERT INTO ... VALUES, the trickle-load path the JDBC
// Default Source baseline uses for saves (§4.7.1).
func (s *Session) executeInsert(st *vsql.Insert) (*Result, error) {
	tbl, ok := s.cluster.cat.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("vertica: table %q does not exist", st.Table)
	}
	schema := tbl.Def.Schema
	if st.Select != nil {
		return s.executeInsertSelect(st, tbl)
	}
	colIdx := make([]int, 0, len(st.Cols))
	if len(st.Cols) == 0 {
		for i := range schema.Cols {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, c := range st.Cols {
			i := schema.ColIndex(c)
			if i < 0 {
				return nil, fmt.Errorf("vertica: no column %q in table %q", c, st.Table)
			}
			colIdx = append(colIdx, i)
		}
	}
	rows := make([]types.Row, 0, len(st.Rows))
	empty := types.Schema{}
	for _, exprs := range st.Rows {
		if len(exprs) != len(colIdx) {
			return nil, fmt.Errorf("vertica: INSERT row has %d values, want %d", len(exprs), len(colIdx))
		}
		row := make(types.Row, schema.NumCols())
		for i, c := range schema.Cols {
			row[i] = types.NullValue(c.T)
		}
		for j, e := range exprs {
			if err := s.cluster.bindFuncs(e); err != nil {
				return nil, err
			}
			v, err := e.Eval(nil, &empty)
			if err != nil {
				return nil, err
			}
			cv, err := coerce(v, schema.Cols[colIdx[j]].T)
			if err != nil {
				return nil, err
			}
			row[colIdx[j]] = cv
		}
		rows = append(rows, row)
	}

	tx, auto := s.txnForWrite()
	tbl, err := s.lockTable(tx, tbl.Def.Name, txn.LockInsert)
	if err != nil {
		if auto {
			tx.Abort()
		}
		return nil, err
	}
	route, err := s.writeRows(tx, tbl, rows, false)
	if err != nil {
		if auto {
			tx.Abort()
		}
		return nil, err
	}
	s.record(sim.Event{
		Type:       sim.LoadFlowEv,
		CNode:      s.peer,
		VNode:      s.node.Name,
		WireBytes:  rowsWireSize(rows) + float64(32*len(rows)), // statement framing
		EncodeKind: sim.CPUCSVFormat,
		ParseKind:  sim.CPUCSVParse,
		InsertRows: float64(len(rows)),
		ResultRows: float64(len(rows)),
		Route:      route,
	})
	return s.finishWrite(tx, auto, &Result{RowsAffected: int64(len(rows))})
}

// executeInsertSelect runs INSERT INTO t SELECT ... entirely server-side —
// the operation S2V append mode uses to commit the staging table into the
// target under one atomic transaction (§3.2.1 phase 5, §5's discussion of
// append-mode cost).
func (s *Session) executeInsertSelect(st *vsql.Insert, tbl *catalog.Table) (*Result, error) {
	if len(st.Cols) > 0 {
		return nil, fmt.Errorf("vertica: INSERT ... SELECT does not support a column list")
	}
	res, err := s.executeSelect(st.Select)
	if err != nil {
		return nil, err
	}
	schema := tbl.Def.Schema
	if len(res.Schema.Cols) != schema.NumCols() {
		return nil, fmt.Errorf("vertica: INSERT ... SELECT produces %d columns, table has %d",
			len(res.Schema.Cols), schema.NumCols())
	}
	rows := make([]types.Row, len(res.Rows))
	for i, r := range res.Rows {
		row := make(types.Row, len(r))
		for j, v := range r {
			cv, err := coerce(v, schema.Cols[j].T)
			if err != nil {
				return nil, err
			}
			row[j] = cv
		}
		rows[i] = row
	}
	tx, auto := s.txnForWrite()
	tbl, err = s.lockTable(tx, tbl.Def.Name, txn.LockInsert)
	if err != nil {
		if auto {
			tx.Abort()
		}
		return nil, err
	}
	if _, err := s.writeRows(tx, tbl, rows, true); err != nil {
		if auto {
			tx.Abort()
		}
		return nil, err
	}
	return s.finishWrite(tx, auto, &Result{RowsAffected: int64(len(rows))})
}

// executeUpdate runs UPDATE under an EXCLUSIVE table lock: matching visible
// rows are deleted and re-inserted with the assignments applied (re-routed
// if a segmentation column changed). The affected-row count is what the S2V
// protocol's conditional check-and-set steps branch on (§3.2.1).
func (s *Session) executeUpdate(st *vsql.Update) (*Result, error) {
	tbl, ok := s.cluster.cat.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("vertica: table %q does not exist", st.Table)
	}
	schema := tbl.Def.Schema
	setIdx := make([]int, len(st.Set))
	for i, sc := range st.Set {
		idx := schema.ColIndex(sc.Col)
		if idx < 0 {
			return nil, fmt.Errorf("vertica: no column %q in table %q", sc.Col, st.Table)
		}
		setIdx[i] = idx
		if err := s.cluster.bindFuncs(sc.Expr); err != nil {
			return nil, err
		}
	}
	if st.Where != nil {
		if err := s.cluster.bindFuncs(st.Where); err != nil {
			return nil, err
		}
	}

	tx, auto := s.txnForWrite()
	tbl, err := s.lockTable(tx, tbl.Def.Name, txn.LockExclusive)
	if err != nil {
		if auto {
			tx.Abort()
		}
		return nil, err
	}
	if err := s.writableCheck(tbl); err != nil {
		if auto {
			tx.Abort()
		}
		return nil, err
	}
	vis := tx.Vis()
	// Collect matching rows first (snapshot), then delete + reinsert.
	matched, err := s.collectMatching(tbl, st.Where, vis)
	if err != nil {
		if auto {
			tx.Abort()
		}
		return nil, err
	}
	updated := make([]types.Row, 0, len(matched))
	for _, r := range matched {
		nr := r.Clone()
		for i, sc := range st.Set {
			v, err := sc.Expr.Eval(r, &schema)
			if err != nil {
				if auto {
					tx.Abort()
				}
				return nil, err
			}
			cv, err := coerce(v, schema.Cols[setIdx[i]].T)
			if err != nil {
				if auto {
					tx.Abort()
				}
				return nil, err
			}
			nr[setIdx[i]] = cv
		}
		updated = append(updated, nr)
	}
	if len(matched) > 0 {
		s.deleteRowsEverywhere(tx, tbl, st.Where, vis)
		if err := s.logDelete(tx, tbl, matched, vis.Epoch); err != nil {
			if auto {
				tx.Abort()
			}
			return nil, err
		}
		if _, err := s.writeRows(tx, tbl, updated, false); err != nil {
			if auto {
				tx.Abort()
			}
			return nil, err
		}
	}
	s.record(sim.Event{Type: sim.FixedEv, FixedKind: sim.FixedStatusOp})
	return s.finishWrite(tx, auto, &Result{RowsAffected: int64(len(matched))})
}

// collectMatching gathers the visible rows matching the predicate across all
// primary stores (or one live replica for unsegmented tables), reading from
// buddies where a primary's node is down.
func (s *Session) collectMatching(tbl *catalog.Table, where expr.Expr, vis visArg) ([]types.Row, error) {
	schema := tbl.Def.Schema
	var out []types.Row
	var scanErr error
	match := func(r types.Row) bool {
		ok, err := expr.EvalPredicate(where, r, &schema)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			out = append(out, r.Clone())
		}
		return true
	}
	if !tbl.Def.Segmented {
		st, _, err := s.replicaFor(tbl, s.localPos(tbl))
		if err != nil {
			return nil, err
		}
		st.Scan(vis, fullRing(), match)
		return out, scanErr
	}
	for pos := range tbl.Stores {
		st, _, err := s.replicaFor(tbl, pos)
		if err != nil {
			return nil, err
		}
		st.Scan(vis, fullRing(), match)
		if scanErr != nil {
			return nil, scanErr
		}
	}
	return out, scanErr
}

// deleteRowsEverywhere marks matching rows deleted in every writable store
// holding them (primaries, buddies, and all replicas of unsegmented tables).
// Stores on non-writable nodes are skipped and reconciled at recovery. Each
// segment's count comes from its first writable replica.
func (s *Session) deleteRowsEverywhere(tx *txn.Txn, tbl *catalog.Table, where expr.Expr, vis visArg) int {
	schema := tbl.Def.Schema
	match := func(r types.Row) bool {
		ok, _ := expr.EvalPredicate(where, r, &schema)
		return ok
	}
	accepts := func(pos int) bool { return s.cluster.nodeAcceptsWrites(tbl.Ring[pos]) }
	n := 0
	if !tbl.Def.Segmented {
		counted := false
		for pos, st := range tbl.Stores {
			if !accepts(pos) {
				st.MarkStale()
				continue
			}
			c := st.DeleteWhere(vis, tx.Tag(), match)
			tx.NoteDelete(st)
			if !counted {
				n += c
				counted = true
			}
		}
		return n
	}
	nseg := len(tbl.Ring)
	for seg := 0; seg < nseg; seg++ {
		counted := false
		if accepts(seg) {
			c := tbl.Stores[seg].DeleteWhere(vis, tx.Tag(), match)
			tx.NoteDelete(tbl.Stores[seg])
			n += c
			counted = true
		} else {
			tbl.Stores[seg].MarkStale()
		}
		for r := range tbl.Buddies {
			host := (seg + r + 1) % nseg
			if !accepts(host) {
				tbl.Buddies[r][host].MarkStale()
				continue
			}
			st := tbl.Buddies[r][host]
			c := st.DeleteWhere(vis, tx.Tag(), match)
			tx.NoteDelete(st)
			if !counted {
				n += c
				counted = true
			}
		}
	}
	return n
}

// executeDelete runs DELETE FROM under an EXCLUSIVE lock.
func (s *Session) executeDelete(st *vsql.Delete) (*Result, error) {
	tbl, ok := s.cluster.cat.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("vertica: table %q does not exist", st.Table)
	}
	if st.Where != nil {
		if err := s.cluster.bindFuncs(st.Where); err != nil {
			return nil, err
		}
	}
	tx, auto := s.txnForWrite()
	tbl, err := s.lockTable(tx, tbl.Def.Name, txn.LockExclusive)
	if err != nil {
		if auto {
			tx.Abort()
		}
		return nil, err
	}
	if err := s.writableCheck(tbl); err != nil {
		if auto {
			tx.Abort()
		}
		return nil, err
	}
	vis := tx.Vis()
	// A durable cluster logs the concrete rows the delete marks, so replay
	// can re-apply it exactly under the same snapshot.
	var matched []types.Row
	if s.cluster.durable() {
		var err error
		if matched, err = s.collectMatching(tbl, st.Where, vis); err != nil {
			if auto {
				tx.Abort()
			}
			return nil, err
		}
	}
	n := s.deleteRowsEverywhere(tx, tbl, st.Where, vis)
	if err := s.logDelete(tx, tbl, matched, vis.Epoch); err != nil {
		if auto {
			tx.Abort()
		}
		return nil, err
	}
	s.record(sim.Event{Type: sim.FixedEv, FixedKind: sim.FixedStatusOp})
	return s.finishWrite(tx, auto, &Result{RowsAffected: int64(n)})
}

// executeCopyStream bulk-loads rows arriving on the client stream (the
// VerticaCopyStream path S2V uses, §3.2.2). It wraps the load in the
// engine-side "copy" span that backs v_monitor.load_streams, parented under
// the context's trace (an S2V phase 1, possibly remote).
func (s *Session) executeCopyStream(ctx context.Context, cp *vsql.Copy, r io.Reader) (*Result, error) {
	sp := obs.StartChild(ctx, s.cluster.mon, "copy", s.node.Name)
	sp.SetPeer(s.peer)
	sp.SetDetail(cp.Table)
	counted := &countingReader{r: r}
	res, err := s.copyStream(cp, counted)
	sp.AddBytes(counted.n)
	if res != nil && res.Copy != nil {
		sp.AddRows(res.Copy.Loaded)
		sp.AddRejected(res.Copy.Rejected)
	}
	sp.End(err)
	return res, err
}

// copyStream parses and writes the rows of one COPY ... FROM STDIN load.
func (s *Session) copyStream(cp *vsql.Copy, counted *countingReader) (*Result, error) {
	if s.node.Down() {
		return nil, fmt.Errorf("%w: node %d went down", ErrNodeDown, s.node.ID)
	}
	s.record(sim.Event{Type: sim.FixedEv, FixedKind: sim.FixedQuery})
	var rows []types.Row
	var rejected []string
	tbl, ok := s.cluster.cat.Table(cp.Table)
	if !ok {
		return nil, fmt.Errorf("vertica: table %q does not exist", cp.Table)
	}
	schema := tbl.Def.Schema

	switch cp.Format {
	case vsql.CopyAvro:
		rd, err := avro.NewReader(counted)
		if err != nil {
			return nil, fmt.Errorf("vertica: COPY: %w", err)
		}
		if !rd.Schema().ToTypes().Equal(schema) {
			return nil, fmt.Errorf("vertica: COPY: Avro schema %v does not match table schema %v",
				rd.Schema().ToTypes(), schema)
		}
		for {
			row, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("vertica: COPY: %w", err)
			}
			rows = append(rows, row)
		}
	case vsql.CopyCSV:
		sc := bufio.NewScanner(counted)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		for sc.Scan() {
			line := sc.Text()
			if line == "" {
				continue
			}
			row, err := types.ParseCSV(line, schema, ',')
			if err != nil {
				if len(rejected) < 10 {
					rejected = append(rejected, fmt.Sprintf("%s: %v", truncate(line, 80), err))
				}
				rows = append(rows, nil) // placeholder to count rejects below
				continue
			}
			rows = append(rows, row)
		}
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("vertica: COPY: %w", err)
		}
	default:
		return nil, fmt.Errorf("vertica: COPY: unsupported format %q", cp.Format)
	}

	// Separate accepted rows from rejects.
	accepted := rows[:0]
	var rejectedCount int64
	for _, r := range rows {
		if r == nil {
			rejectedCount++
			continue
		}
		accepted = append(accepted, r)
	}
	if rejectedCount > cp.RejectMax {
		return nil, fmt.Errorf("vertica: COPY: %d rows rejected exceeds REJECTMAX %d (sample: %v)",
			rejectedCount, cp.RejectMax, rejected)
	}

	tx, auto := s.txnForWrite()
	tbl, err := s.lockTable(tx, tbl.Def.Name, txn.LockInsert)
	if err != nil {
		if auto {
			tx.Abort()
		}
		return nil, err
	}
	route, err := s.writeRows(tx, tbl, accepted, cp.Direct)
	if err != nil {
		if auto {
			tx.Abort()
		}
		return nil, err
	}
	encodeKind, parseKind := sim.CPUCSVFormat, sim.CPUCSVParse
	if cp.Format == vsql.CopyAvro {
		encodeKind, parseKind = sim.CPUAvroEncode, sim.CPUCopyParse
	}
	s.record(sim.Event{
		Type:       sim.LoadFlowEv,
		CNode:      s.peer,
		VNode:      s.node.Name,
		WireBytes:  float64(counted.n),
		EncodeKind: encodeKind,
		ParseKind:  parseKind,
		ResultRows: float64(len(accepted)),
		Route:      route,
		Local:      s.copyLocal,
	})
	cr := &CopyResult{Loaded: int64(len(accepted)), Rejected: rejectedCount, RejectedSample: rejected}
	return s.finishWrite(tx, auto, &Result{RowsAffected: cr.Loaded, Copy: cr})
}

// executeCopyFile bulk-loads a node-local CSV file — the native parallel
// COPY baseline of §4.7.3.
func (s *Session) executeCopyFile(ctx context.Context, cp *vsql.Copy) (*Result, error) {
	f, err := os.Open(cp.FromPath)
	if err != nil {
		return nil, fmt.Errorf("vertica: COPY: %w", err)
	}
	defer f.Close()
	s.copyLocal = true
	defer func() { s.copyLocal = false }()
	return s.executeCopyStream(ctx, cp, f)
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// visArg aliases the storage read context in DML signatures.
type visArg = storage.Visibility

// fullRing is the unconstrained hash range.
func fullRing() vhash.Range { return vhash.Range{Lo: 0, Hi: vhash.RingSize} }
