package vertica

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"vsfabric/internal/catalog"
	"vsfabric/internal/obs"
	"vsfabric/internal/pool"
	"vsfabric/internal/rebalance"
	"vsfabric/internal/storage"
	"vsfabric/internal/txn"
	"vsfabric/internal/types"
	"vsfabric/internal/wal"
)

// This file implements the cluster's durable form: a per-node data directory
// of ROS container files and WOS snapshots, a write-ahead log, ARIES-style
// replay on open, and the checkpoint (the durable tuple-mover pass) that
// persists container state and truncates the log.
//
// Layout under Config.DataDir:
//
//	MANIFEST.json      — the durable catalog + file map, swapped atomically
//	wal-<seq>.log      — the current write-ahead log
//	node-<i>/c-<id>.ros — one file per ROS container on node i
//	node-<i>/w-<id>.wos — node i's committed WOS snapshot for one table
//
// Invariants:
//   - Provisional (uncommitted) state is never persisted in data files; the
//     WAL alone carries it, and a checkpoint copies still-pending records
//     into the fresh log it cuts over to.
//   - A transaction is durable iff its commit record reached the log —
//     fsynced before Commit returns.
//   - The manifest is the recovery root: data files and the new WAL are
//     written and synced first, then MANIFEST.json is swapped via rename, so
//     a crash at any instant recovers from whichever manifest is current.

const manifestName = "MANIFEST.json"

// DDL opcodes carried in wal.Record.Op.
const (
	opCreateTable byte = iota + 1
	opDropTable
	opRenameTable
	opCreateView
	opDropView
	opAddNode
	opRemoveNode
	opRebalance
	opCreatePool
	opAlterPool
	opDropPool
)

// ddlPayload is the JSON body of a RecDDL record.
type ddlPayload struct {
	Def     *catalog.TableDef `json:"def,omitempty"`
	Name    string            `json:"name,omitempty"`
	NewName string            `json:"new_name,omitempty"`
	SQL     string            `json:"sql,omitempty"`
	// Node is the subject of add/remove-node records; Ring is the membership
	// ring after the change (add/remove) or the table's target ring
	// (rebalance). A rebalance record carries no row data: MoveTable is a
	// deterministic function of the table's committed contents and the target
	// ring, so replaying the record reproduces the placement exactly.
	Node int   `json:"node,omitempty"`
	Ring []int `json:"ring,omitempty"`
	// Pool is the resulting config of a create/alter-pool record (Name names
	// the pool). Alter logs the full post-change config, so replay of both
	// opcodes is a plain upsert and the log's last word wins.
	Pool *pool.Config `json:"pool,omitempty"`
}

// storeManifest locates one store's durable files (paths relative to the
// data directory).
type storeManifest struct {
	Containers []string `json:"containers,omitempty"`
	WOS        string   `json:"wos,omitempty"`
}

type tableManifest struct {
	Def          catalog.TableDef  `json:"def"`
	CreatedEpoch uint64            `json:"created_epoch"`
	Ring         []int             `json:"ring,omitempty"`
	Stores       []storeManifest   `json:"stores"`
	Buddies      [][]storeManifest `json:"buddies,omitempty"`
}

type viewManifest struct {
	Name string `json:"name"`
	SQL  string `json:"sql"`
}

// manifest is the recovery root: the catalog, every store's data files, and
// the WAL to replay on top of them.
type manifest struct {
	Version      int    `json:"version"`
	DurableEpoch uint64 `json:"durable_epoch"`
	WALFile      string `json:"wal_file"`
	WALSeq       uint64 `json:"wal_seq"`
	NextDiskID   uint64 `json:"next_disk_id"`
	// Nodes is the number of node slots ever allocated (0 in pre-membership
	// manifests, meaning the configured count); Removed lists the IDs of
	// nodes dropped by ALTER CLUSTER REMOVE NODE.
	Nodes   int             `json:"nodes,omitempty"`
	Removed []int           `json:"removed,omitempty"`
	Tables  []tableManifest `json:"tables,omitempty"`
	Views   []viewManifest  `json:"views,omitempty"`
	// Pools carries the non-built-in resource pools: pool DDL lives only in
	// the WAL, so a checkpoint (which truncates the log) must carry the
	// surviving configs in the manifest.
	Pools map[string]pool.Config `json:"pools,omitempty"`
}

func (c *Cluster) durable() bool { return c.dataDir != "" }

// curWAL returns the current log under the swap lock.
func (c *Cluster) curWAL() *wal.Log {
	c.walMu.Lock()
	defer c.walMu.Unlock()
	return c.wlog
}

// walAppend appends one record to the current log. A record that races a
// checkpoint's log swap is forwarded to the successor by the sealed log.
func (c *Cluster) walAppend(rec wal.Record) error {
	l := c.curWAL()
	if l == nil {
		return nil
	}
	return l.Append(rec)
}

func (c *Cluster) walSync() error {
	l := c.curWAL()
	if l == nil {
		return nil
	}
	return l.Sync()
}

// logInsert records the rows an INSERT/COPY wrote under the transaction's
// provisional tag. Routing is deterministic (segmentation hash), so one
// logical record regenerates every store's writes on replay.
func (s *Session) logInsert(tx *txn.Txn, tbl *catalog.Table, rows []types.Row, direct bool) error {
	if !s.cluster.durable() || len(rows) == 0 {
		return nil
	}
	payload, err := storage.EncodeRows(tbl.Def.Schema, rows)
	if err != nil {
		return err
	}
	return s.cluster.walAppend(wal.Record{
		Type: wal.RecInsert, Tag: tx.Tag(), Table: tbl.Def.Name, Direct: direct, Rows: payload,
	})
}

// logDelete records the rows a DELETE/UPDATE marked, plus the snapshot epoch
// the statement read at. Replay re-applies the delete by row equality under
// the same visibility, which is exact: equal rows hash to the same segment,
// and the predicate is a pure function of row values.
func (s *Session) logDelete(tx *txn.Txn, tbl *catalog.Table, matched []types.Row, visEpoch uint64) error {
	if !s.cluster.durable() || len(matched) == 0 {
		return nil
	}
	payload, err := storage.EncodeRows(tbl.Def.Schema, matched)
	if err != nil {
		return err
	}
	return s.cluster.walAppend(wal.Record{
		Type: wal.RecDelete, Tag: tx.Tag(), Epoch: visEpoch, Table: tbl.Def.Name, Rows: payload,
	})
}

// logDDL appends a catalog operation and syncs it (DDL applies immediately —
// autocommit, or a commit hook that is not rolled back — so it must be
// durable at application).
func (c *Cluster) logDDL(op byte, p ddlPayload) error {
	if !c.durable() {
		return nil
	}
	b, err := json.Marshal(p)
	if err != nil {
		return err
	}
	if err := c.walAppend(wal.Record{Type: wal.RecDDL, Op: op, DDL: b}); err != nil {
		return err
	}
	return c.walSync()
}

// forEachTarget visits every store that must receive rows of tbl, with the
// node the store lives on and that store's share of the rows: unsegmented
// tables replicate everywhere; segmented tables route each row to its
// segment's node plus the buddy replicas. This single routing function is
// shared by the write path and WAL replay, so recovery reproduces placement
// exactly.
func forEachTarget(tbl *catalog.Table, rows []types.Row, visit func(st *storage.Store, nodeID int, batch []types.Row) error) error {
	if !tbl.Def.Segmented {
		for i, st := range tbl.Stores {
			if err := visit(st, tbl.Ring[i], rows); err != nil {
				return err
			}
		}
		return nil
	}
	buckets := routeRows(tbl, rows)
	for home, batch := range buckets {
		if len(batch) == 0 {
			continue
		}
		if err := visit(tbl.Stores[home], tbl.Ring[home], batch); err != nil {
			return err
		}
		for r := range tbl.Buddies {
			host := (home + r + 1) % tbl.NumNodes()
			if err := visit(tbl.Buddies[r][host], tbl.Ring[host], batch); err != nil {
				return err
			}
		}
	}
	return nil
}

// allStores returns every store holding rows of tbl (primaries then buddies).
func allStores(tbl *catalog.Table) []*storage.Store {
	out := append([]*storage.Store(nil), tbl.Stores...)
	for _, reps := range tbl.Buddies {
		out = append(out, reps...)
	}
	return out
}

// rowKey is a canonical binary encoding of a row, used to re-match logged
// delete rows against stored rows during replay. Floats are compared by bit
// pattern (the logged rows are clones of the stored ones, so bits agree).
func rowKey(r types.Row) string {
	var b strings.Builder
	var tmp [8]byte
	for _, v := range r {
		b.WriteByte(byte(v.T))
		if v.Null {
			b.WriteByte(1)
			continue
		}
		b.WriteByte(0)
		switch v.T {
		case types.Int64:
			binary.LittleEndian.PutUint64(tmp[:], uint64(v.I))
			b.Write(tmp[:])
		case types.Float64:
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.F))
			b.Write(tmp[:])
		case types.Bool:
			if v.B {
				b.WriteByte(1)
			} else {
				b.WriteByte(0)
			}
		default:
			binary.LittleEndian.PutUint32(tmp[:4], uint32(len(v.S)))
			b.Write(tmp[:4])
			b.WriteString(v.S)
		}
	}
	return b.String()
}

// writeFileSync writes data to path atomically: temp file in the same
// directory, fsync, rename, directory fsync.
func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so renames within it are durable (best-effort:
// some filesystems reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// openDurable attaches the cluster to its data directory: it loads the
// manifest's containers and WOS snapshots (through the container cache),
// replays the write-ahead log — redoing committed transactions, discarding
// provisional ones — and reopens the log for appending. A missing manifest
// initializes a fresh directory.
func (c *Cluster) openDurable() error {
	if err := os.MkdirAll(c.dataDir, 0o755); err != nil {
		return err
	}
	for i := 0; i < c.cfg.Nodes; i++ {
		if err := os.MkdirAll(filepath.Join(c.dataDir, fmt.Sprintf("node-%d", i)), 0o755); err != nil {
			return err
		}
	}
	sp := obs.Start(c.mon, "recovery", "v0")

	mPath := filepath.Join(c.dataDir, manifestName)
	raw, err := os.ReadFile(mPath)
	if os.IsNotExist(err) {
		return c.initFreshDir(sp)
	}
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("vertica: corrupt manifest: %w", err)
	}

	// Restore membership: grow the node slice to every slot the manifest
	// knows about, re-mark removed nodes, and set the catalog's active ring
	// before any table is rebuilt.
	if m.Nodes > c.NumNodes() {
		nodes := append([]*Node(nil), c.nodeList()...)
		for id := len(nodes); id < m.Nodes; id++ {
			nodes = append(nodes, c.newNode(id))
			if err := os.MkdirAll(filepath.Join(c.dataDir, fmt.Sprintf("node-%d", id)), 0o755); err != nil {
				return err
			}
		}
		c.nodesPtr.Store(&nodes)
	}
	removed := make(map[int]bool, len(m.Removed))
	for _, id := range m.Removed {
		if n := c.node(id); n != nil {
			n.setState(NodeRemoved)
			removed[id] = true
		}
	}
	var ring []int
	for _, n := range c.nodeList() {
		if !removed[n.ID] {
			ring = append(ring, n.ID)
		}
	}
	c.cat.SetMembership(ring)

	// Restore checkpointed resource pools; the WAL replay below upserts any
	// pool DDL logged since.
	for name, cfg := range m.Pools {
		c.pools.Ensure(name, cfg)
	}

	// Rebuild the catalog, loading each store's containers and WOS snapshot.
	// Each table is rebuilt on the exact ring its manifest recorded — a crash
	// mid-membership-change leaves tables on different rings, converged after
	// replay.
	for _, tm := range m.Tables {
		tmRing := tm.Ring
		if tmRing == nil {
			// Pre-membership manifest: implicit ring [0..n-1].
			tmRing = make([]int, len(tm.Stores))
			for i := range tmRing {
				tmRing[i] = i
			}
		}
		if len(tm.Stores) != len(tmRing) {
			return fmt.Errorf("vertica: manifest table %q has %d stores for %d ring positions",
				tm.Def.Name, len(tm.Stores), len(tmRing))
		}
		tbl, err := c.cat.CreateTableAt(tm.Def, tm.CreatedEpoch, tmRing)
		if err != nil {
			return err
		}
		if err := c.loadStores(tbl.Stores, tm.Stores); err != nil {
			return err
		}
		if len(tm.Buddies) != len(tbl.Buddies) {
			return fmt.Errorf("vertica: manifest table %q has %d buddy sets, expected %d",
				tm.Def.Name, len(tm.Buddies), len(tbl.Buddies))
		}
		for r := range tm.Buddies {
			if err := c.loadStores(tbl.Buddies[r], tm.Buddies[r]); err != nil {
				return err
			}
		}
	}
	for _, vm := range m.Views {
		if err := c.cat.CreateView(vm.Name, vm.SQL); err != nil {
			return err
		}
	}
	c.txm.SetLastEpoch(m.DurableEpoch)
	c.walSeq = m.WALSeq
	c.nextDiskID.Store(m.NextDiskID)

	// Replay the log on top of the checkpointed state. Recover truncates any
	// torn tail (a crash mid-append), so the reopened log appends after the
	// last intact record.
	walPath := filepath.Join(c.dataDir, m.WALFile)
	records, err := wal.Recover(walPath)
	if err != nil {
		return err
	}
	replayed, dropped, err := c.replay(records)
	if err != nil {
		return err
	}
	c.mon.Add("recovery.replayed_records", int64(replayed))
	c.mon.Add("recovery.dropped_txns", int64(dropped))

	// Converge layouts: a crash mid-membership-change logged the new ring
	// (opAddNode/opRemoveNode) but may not have rebalanced every table onto
	// it. Finishing the moves here is deterministic — same committed
	// contents, same target ring — and needs no WAL record: a second crash
	// before the next checkpoint just converges again.
	target := c.cat.Ring()
	for _, tbl := range c.cat.Tables() {
		if rebalance.RingsEqual(tbl.Ring, target) {
			continue
		}
		lay, _, merr := rebalance.MoveTable(tbl, target, nil)
		if merr != nil {
			return fmt.Errorf("vertica: converging table %q after crash: %w", tbl.Def.Name, merr)
		}
		if _, serr := c.cat.SwapLayout(tbl.Def.Name, lay.Ring, lay.Stores, lay.Buddies); serr != nil {
			return serr
		}
		c.mon.Add("recovery.rebalanced_tables", 1)
	}

	l, err := wal.Open(walPath)
	if err != nil {
		return err
	}
	c.attachWAL(l)
	if sp != nil {
		sp.SetDetail(fmt.Sprintf("epoch %d, %d records replayed", c.txm.LastEpoch(), replayed))
		sp.End(nil)
	}
	return nil
}

// initFreshDir lays down the durable skeleton of an empty cluster: a new WAL
// with a checkpoint record at epoch 1, then the first manifest.
func (c *Cluster) initFreshDir(sp *obs.ActiveSpan) error {
	c.walSeq = 1
	c.nextDiskID.Store(1)
	walFile := fmt.Sprintf("wal-%d.log", c.walSeq)
	l, err := wal.Open(filepath.Join(c.dataDir, walFile))
	if err != nil {
		return err
	}
	if err := l.Append(wal.Record{Type: wal.RecCheckpoint, Epoch: c.txm.LastEpoch()}); err != nil {
		return err
	}
	if err := l.Sync(); err != nil {
		return err
	}
	m := manifest{
		Version:      1,
		DurableEpoch: c.txm.LastEpoch(),
		WALFile:      walFile,
		WALSeq:       c.walSeq,
		NextDiskID:   c.nextDiskID.Load(),
	}
	if err := c.writeManifest(&m); err != nil {
		return err
	}
	c.attachWAL(l)
	if sp != nil {
		sp.SetDetail("fresh data directory")
		sp.End(nil)
	}
	return nil
}

// attachWAL installs l as the cluster's current log, wiring the byte/fsync
// counters, the WAL_FSYNC_STALL event raise, and the transaction manager's
// commit hook.
func (c *Cluster) attachWAL(l *wal.Log) {
	l.OnWrite = func(n int64) {
		c.mon.Add("wal.bytes", n)
		c.mon.Add("wal.records", 1)
	}
	l.OnSync = func(d time.Duration) {
		c.mon.Add("wal.fsyncs", 1)
		if thr := c.walStallThreshold(); thr > 0 && d >= thr {
			c.raiseQueryEvent(obs.QueryEvent{
				Time: time.Now(), Type: obs.EvWALFsyncStall, Node: "v0",
				Detail:    "WAL fsync exceeded stall threshold",
				Value:     d.Microseconds(),
				Threshold: thr.Microseconds(),
			})
		}
	}
	c.walMu.Lock()
	c.wlog = l
	c.walMu.Unlock()
	c.txm.SetCommitLog(l)
}

// loadStores attaches each manifest store's container files and WOS snapshot.
func (c *Cluster) loadStores(stores []*storage.Store, sms []storeManifest) error {
	if len(sms) != len(stores) {
		return fmt.Errorf("vertica: manifest store count %d, expected %d", len(sms), len(stores))
	}
	for i, sm := range sms {
		for _, ref := range sm.Containers {
			path := filepath.Join(c.dataDir, ref)
			cont, err := c.cache.Load(path, func() (*storage.ROSContainer, error) {
				data, err := os.ReadFile(path)
				if err != nil {
					return nil, err
				}
				return storage.UnmarshalContainer(data)
			})
			if err != nil {
				return fmt.Errorf("vertica: loading container %s: %w", ref, err)
			}
			cont.SetDiskRef(ref)
			stores[i].AttachContainer(cont)
		}
		if sm.WOS != "" {
			data, err := os.ReadFile(filepath.Join(c.dataDir, sm.WOS))
			if err != nil {
				return fmt.Errorf("vertica: loading WOS snapshot %s: %w", sm.WOS, err)
			}
			if err := stores[i].LoadWOS(data); err != nil {
				return fmt.Errorf("vertica: WOS snapshot %s: %w", sm.WOS, err)
			}
		}
	}
	return nil
}

// txnEffects tracks which stores a replayed transaction touched, so its
// commit (rebase) or disappearance (drop) hits exactly those stores.
type txnEffects struct {
	inserted map[*storage.Store]bool
	deleted  map[*storage.Store]bool
}

// replay applies WAL records in order: inserts and deletes re-execute under
// their original provisional tags, commits rebase them onto their recorded
// epochs, aborts and still-open tags are discarded. DDL applies immediately,
// mirroring the engine (commit hooks are not rolled back). Returns the
// number of records applied and the number of unfinished transactions
// dropped.
func (c *Cluster) replay(records []wal.Record) (replayed, dropped int, err error) {
	open := make(map[uint64]*txnEffects)
	var maxTag uint64
	effects := func(tag uint64) *txnEffects {
		e, ok := open[tag]
		if !ok {
			e = &txnEffects{inserted: make(map[*storage.Store]bool), deleted: make(map[*storage.Store]bool)}
			open[tag] = e
		}
		return e
	}
	for _, rec := range records {
		if rec.Tag > maxTag {
			maxTag = rec.Tag
		}
		switch rec.Type {
		case wal.RecInsert:
			tbl, ok := c.cat.Table(rec.Table)
			if !ok {
				return replayed, dropped, fmt.Errorf("vertica: replay: insert into unknown table %q", rec.Table)
			}
			_, rows, derr := storage.DecodeRows(rec.Rows)
			if derr != nil {
				return replayed, dropped, fmt.Errorf("vertica: replay: %w", derr)
			}
			e := effects(rec.Tag)
			werr := forEachTarget(tbl, rows, func(st *storage.Store, _ int, batch []types.Row) error {
				if rec.Direct {
					if aerr := st.AppendROS(batch, rec.Tag); aerr != nil {
						return aerr
					}
				} else {
					st.AppendWOS(batch, rec.Tag)
				}
				e.inserted[st] = true
				return nil
			})
			if werr != nil {
				return replayed, dropped, werr
			}
		case wal.RecDelete:
			tbl, ok := c.cat.Table(rec.Table)
			if !ok {
				return replayed, dropped, fmt.Errorf("vertica: replay: delete from unknown table %q", rec.Table)
			}
			_, rows, derr := storage.DecodeRows(rec.Rows)
			if derr != nil {
				return replayed, dropped, fmt.Errorf("vertica: replay: %w", derr)
			}
			keys := make(map[string]bool, len(rows))
			for _, r := range rows {
				keys[rowKey(r)] = true
			}
			vis := storage.Visibility{Epoch: rec.Epoch, Tag: rec.Tag}
			match := func(r types.Row) bool { return keys[rowKey(r)] }
			e := effects(rec.Tag)
			for _, st := range allStores(tbl) {
				st.DeleteWhere(vis, rec.Tag, match)
				e.deleted[st] = true
			}
		case wal.RecCommit:
			if e, ok := open[rec.Tag]; ok {
				for st := range e.inserted {
					st.RebaseInserts(rec.Tag, rec.Epoch)
				}
				for st := range e.deleted {
					st.RebaseDeletes(rec.Tag, rec.Epoch)
				}
				delete(open, rec.Tag)
			}
			c.txm.SetLastEpoch(rec.Epoch)
		case wal.RecAbort:
			if e, ok := open[rec.Tag]; ok {
				for st := range e.inserted {
					st.DropInserts(rec.Tag)
				}
				for st := range e.deleted {
					st.ClearDeletes(rec.Tag)
				}
				delete(open, rec.Tag)
			}
		case wal.RecDDL:
			if derr := c.replayDDL(rec); derr != nil {
				return replayed, dropped, derr
			}
		case wal.RecCheckpoint:
			if rec.Epoch > c.txm.LastEpoch() {
				c.txm.SetLastEpoch(rec.Epoch)
			}
		}
		replayed++
	}
	// Transactions with no commit record did not happen: drop their
	// provisional writes exactly as an abort would.
	for tag, e := range open {
		for st := range e.inserted {
			st.DropInserts(tag)
		}
		for st := range e.deleted {
			st.ClearDeletes(tag)
		}
		dropped++
	}
	// Never reissue a tag that appears in the surviving log: a reused tag
	// would fuse a dead transaction's replayed records with a live one after
	// a second crash.
	if maxTag > 0 {
		c.txm.SetNextTag(maxTag + 1)
	}
	return replayed, dropped, nil
}

func (c *Cluster) replayDDL(rec wal.Record) error {
	var p ddlPayload
	if err := json.Unmarshal(rec.DDL, &p); err != nil {
		return fmt.Errorf("vertica: replay: corrupt DDL record: %w", err)
	}
	switch rec.Op {
	case opCreateTable:
		if p.Def == nil {
			return fmt.Errorf("vertica: replay: CREATE TABLE record without definition")
		}
		_, err := c.cat.CreateTable(*p.Def, c.txm.LastEpoch())
		return err
	case opDropTable:
		if err := c.cat.DropTable(p.Name, true); err != nil {
			return err
		}
		c.txm.DropTableLock(p.Name)
		return nil
	case opRenameTable:
		return c.cat.RenameTable(p.Name, p.NewName)
	case opCreateView:
		return c.cat.CreateView(p.Name, p.SQL)
	case opDropView:
		return c.cat.DropView(p.Name, true)
	case opAddNode:
		if c.node(p.Node) == nil {
			nodes := append([]*Node(nil), c.nodeList()...)
			for id := len(nodes); id <= p.Node; id++ {
				nodes = append(nodes, c.newNode(id))
				if err := os.MkdirAll(filepath.Join(c.dataDir, fmt.Sprintf("node-%d", id)), 0o755); err != nil {
					return err
				}
			}
			c.nodesPtr.Store(&nodes)
		}
		c.cat.SetMembership(p.Ring)
		return nil
	case opRemoveNode:
		if n := c.node(p.Node); n != nil {
			n.setState(NodeRemoved)
		}
		c.cat.SetMembership(p.Ring)
		return nil
	case opCreatePool, opAlterPool:
		if p.Pool == nil {
			return fmt.Errorf("vertica: replay: pool record without config")
		}
		c.pools.Ensure(p.Name, *p.Pool)
		return nil
	case opDropPool:
		if err := c.pools.Drop(p.Name); err != nil && err != pool.ErrNotFound {
			return err
		}
		return nil
	case opRebalance:
		tbl, ok := c.cat.Table(p.Name)
		if !ok {
			return fmt.Errorf("vertica: replay: rebalance of unknown table %q", p.Name)
		}
		if rebalance.RingsEqual(tbl.Ring, p.Ring) {
			return nil
		}
		lay, _, err := rebalance.MoveTable(tbl, p.Ring, nil)
		if err != nil {
			return fmt.Errorf("vertica: replay: rebalancing %q: %w", p.Name, err)
		}
		_, err = c.cat.SwapLayout(p.Name, lay.Ring, lay.Stores, lay.Buddies)
		return err
	default:
		return fmt.Errorf("vertica: replay: unknown DDL opcode %d", rec.Op)
	}
}

// Checkpoint runs the durable tuple-mover pass: moveout, persist every
// committed container and WOS snapshot, cut the WAL over to a fresh file
// (carrying records of still-open transactions), and swap the manifest.
// Commits are stalled for the duration, so the persisted state is exactly
// the durable epoch the new manifest names. On a non-durable cluster it
// degrades to a plain moveout.
func (c *Cluster) Checkpoint() error {
	if !c.durable() {
		return c.moveoutAll()
	}
	sp := obs.Start(c.mon, "checkpoint", "v0")
	c.txm.CheckpointLock()
	defer c.txm.CheckpointUnlock()

	if err := c.moveoutAll(); err != nil {
		return err
	}
	durableEpoch := c.txm.LastEpoch()

	m := manifest{Version: 1, DurableEpoch: durableEpoch, Nodes: c.NumNodes()}
	for _, n := range c.nodeList() {
		if n.State() == NodeRemoved {
			m.Removed = append(m.Removed, n.ID)
		}
	}
	for _, ps := range c.pools.List() {
		if ps.Name == pool.GeneralPool {
			continue
		}
		if m.Pools == nil {
			m.Pools = make(map[string]pool.Config)
		}
		m.Pools[ps.Name] = ps.Cfg
	}
	for _, tbl := range c.cat.Tables() {
		tm := tableManifest{Def: tbl.Def, CreatedEpoch: tbl.CreatedEpoch, Ring: tbl.Ring}
		sms, err := c.persistStores(tbl.Stores, tbl.Ring, tbl.Def.Name)
		if err != nil {
			return err
		}
		tm.Stores = sms
		for _, reps := range tbl.Buddies {
			bms, err := c.persistStores(reps, tbl.Ring, tbl.Def.Name)
			if err != nil {
				return err
			}
			tm.Buddies = append(tm.Buddies, bms)
		}
		m.Tables = append(m.Tables, tm)
	}
	for _, v := range c.cat.Views() {
		m.Views = append(m.Views, viewManifest{Name: v.Name, SQL: v.SelectSQL})
	}

	// Cut the WAL over: new file with a checkpoint record, carry pending
	// records, then redirect appenders. Commits cannot race this — the
	// commit lock is held — and non-commit appends forward via the seal.
	newSeq := c.walSeq + 1
	newFile := fmt.Sprintf("wal-%d.log", newSeq)
	// A checkpoint that crashed after creating its new log but before the
	// manifest swap leaves a stale file under this name; it was never
	// referenced, so clear it rather than appending after its records.
	_ = os.Remove(filepath.Join(c.dataDir, newFile))
	newLog, err := wal.Open(filepath.Join(c.dataDir, newFile))
	if err != nil {
		return err
	}
	if err := newLog.Append(wal.Record{Type: wal.RecCheckpoint, Epoch: durableEpoch}); err != nil {
		return err
	}
	// Sealing redirects every later append (and the commit log's writes, via
	// forwarding) into the new file while c.wlog still points at the old one,
	// so the pointer swap can wait until the manifest naming the new file is
	// durable.
	old := c.curWAL()
	if old != nil {
		if err := old.Seal(newLog); err != nil {
			return err
		}
	}
	if err := newLog.Sync(); err != nil {
		return err
	}
	m.WALFile = newFile
	m.WALSeq = newSeq
	m.NextDiskID = c.nextDiskID.Load()
	if err := c.writeManifest(&m); err != nil {
		return err
	}
	oldFile := fmt.Sprintf("wal-%d.log", c.walSeq)
	c.walSeq = newSeq
	c.attachWAL(newLog)
	if old != nil {
		_ = old.Close()
	}
	c.removeStaleFiles(&m, oldFile)
	if sp != nil {
		sp.SetDetail(fmt.Sprintf("epoch %d", durableEpoch))
		sp.End(nil)
	}
	return nil
}

// persistStores writes each store's dirty/new committed containers and WOS
// snapshot, returning the manifest entries. Containers are never rewritten
// in place: a changed container gets a fresh file, and the old one is
// removed only after the new manifest is durable. Files land under the
// node-<id> directory of the node owning each ring position — node IDs, not
// positions, so a table whose ring lags the membership ring still files its
// data under the right host.
func (c *Cluster) persistStores(stores []*storage.Store, ring []int, table string) ([]storeManifest, error) {
	if len(ring) != len(stores) {
		return nil, fmt.Errorf("vertica: persisting %s: %d stores for %d ring positions", table, len(stores), len(ring))
	}
	out := make([]storeManifest, len(stores))
	for i, st := range stores {
		for _, cont := range st.Containers() {
			if cont.StartEpoch() >= storage.ProvisionalBase {
				continue // uncommitted: the WAL carries it
			}
			ref, dirty := cont.DiskRef()
			if ref == "" || dirty {
				data, err := storage.MarshalContainer(cont)
				if err != nil {
					return nil, fmt.Errorf("vertica: persisting %s container: %w", table, err)
				}
				newRef := filepath.Join(fmt.Sprintf("node-%d", ring[i]), fmt.Sprintf("c-%d.ros", c.nextDiskID.Add(1)))
				if err := writeFileSync(filepath.Join(c.dataDir, newRef), data); err != nil {
					return nil, err
				}
				if ref != "" {
					c.cache.Invalidate(filepath.Join(c.dataDir, ref))
				}
				cont.SetDiskRef(newRef)
				ref = newRef
				c.mon.Add("checkpoint.containers_written", 1)
			}
			out[i].Containers = append(out[i].Containers, ref)
		}
		data, n, err := st.MarshalWOS()
		if err != nil {
			return nil, fmt.Errorf("vertica: persisting %s WOS: %w", table, err)
		}
		if n > 0 {
			ref := filepath.Join(fmt.Sprintf("node-%d", ring[i]), fmt.Sprintf("w-%d.wos", c.nextDiskID.Add(1)))
			if err := writeFileSync(filepath.Join(c.dataDir, ref), data); err != nil {
				return nil, err
			}
			out[i].WOS = ref
		}
	}
	return out, nil
}

func (c *Cluster) writeManifest(m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileSync(filepath.Join(c.dataDir, manifestName), data)
}

// removeStaleFiles deletes every data file the new manifest no longer
// references (rewritten containers, dropped tables' files, the sealed WAL).
// Deletion failures are ignored: stale files are garbage, not corruption,
// and the next checkpoint retries.
func (c *Cluster) removeStaleFiles(m *manifest, oldWAL string) {
	live := map[string]bool{m.WALFile: true, manifestName: true}
	for _, tm := range m.Tables {
		for _, sm := range tm.Stores {
			for _, ref := range sm.Containers {
				live[ref] = true
			}
			if sm.WOS != "" {
				live[sm.WOS] = true
			}
		}
		for _, reps := range tm.Buddies {
			for _, sm := range reps {
				for _, ref := range sm.Containers {
					live[ref] = true
				}
				if sm.WOS != "" {
					live[sm.WOS] = true
				}
			}
		}
	}
	var stale []string
	if oldWAL != "" && oldWAL != m.WALFile {
		stale = append(stale, oldWAL)
	}
	for i := 0; i < c.NumNodes(); i++ {
		dir := fmt.Sprintf("node-%d", i)
		ents, err := os.ReadDir(filepath.Join(c.dataDir, dir))
		if err != nil {
			continue
		}
		for _, e := range ents {
			ref := filepath.Join(dir, e.Name())
			if !live[ref] {
				stale = append(stale, ref)
			}
		}
	}
	sort.Strings(stale)
	for _, ref := range stale {
		c.cache.Invalidate(filepath.Join(c.dataDir, ref))
		_ = os.Remove(filepath.Join(c.dataDir, ref))
	}
}

// moveoutAll runs the tuple mover on every store at the current Ancient
// History Mark.
func (c *Cluster) moveoutAll() error {
	ahm := c.txm.AHM()
	for _, t := range c.cat.Tables() {
		for _, s := range t.Stores {
			if err := s.Moveout(ahm); err != nil {
				return err
			}
		}
		for _, reps := range t.Buddies {
			for _, s := range reps {
				if err := s.Moveout(ahm); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
