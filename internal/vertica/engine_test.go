package vertica

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"vsfabric/internal/avro"
	"vsfabric/internal/types"
	"vsfabric/internal/vhash"
)

func testCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c, err := NewCluster(Config{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sess(t *testing.T, c *Cluster, node int) *Session {
	t.Helper()
	s, err := c.Connect(node)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestCreateInsertSelect(t *testing.T) {
	c := testCluster(t, 4)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER, x FLOAT, name VARCHAR) SEGMENTED BY HASH(id)")
	s.MustExecute("INSERT INTO t VALUES (1, 1.5, 'a'), (2, 2.5, 'b'), (3, NULL, 'c')")
	res := s.MustExecute("SELECT id, x, name FROM t WHERE id >= 2")
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows: %v", len(res.Rows), res.Rows)
	}
	res = s.MustExecute("SELECT COUNT(*) FROM t")
	v, err := res.Value()
	if err != nil || v.I != 3 {
		t.Errorf("COUNT(*) = %v, %v", v, err)
	}
	res = s.MustExecute("SELECT COUNT(*) FROM t WHERE x IS NULL")
	if v, _ := res.Value(); v.I != 1 {
		t.Errorf("IS NULL count = %v", v)
	}
}

func TestRowsRoutedBySegmentation(t *testing.T) {
	c := testCluster(t, 4)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER) SEGMENTED BY HASH(id)")
	var values []string
	for i := 0; i < 400; i++ {
		values = append(values, fmt.Sprintf("(%d)", i))
	}
	s.MustExecute("INSERT INTO t VALUES " + strings.Join(values, ", "))
	tbl, _ := c.Catalog().Table("t")
	vis := snapshotVis(c)
	total := 0
	segs := tbl.SegmentRanges()
	for i, st := range tbl.Stores {
		n := st.RowCount(vis)
		total += n
		if n == 0 {
			t.Errorf("node %d got no rows; routing is broken", i)
		}
		// Every row on node i must hash into segment i.
		st.Scan(vis, vhash.Range{Lo: 0, Hi: vhash.RingSize}, func(r types.Row) bool {
			h := tbl.RowHash(r)
			if !segs[i].Contains(h) {
				t.Errorf("row %v (hash %d) misplaced on node %d", r, h, i)
			}
			return true
		})
	}
	if total != 400 {
		t.Errorf("total rows = %d, want 400", total)
	}
}

func TestHashRangeQueryLocality(t *testing.T) {
	c := testCluster(t, 4)
	s := sess(t, c, 2)
	s.MustExecute("CREATE TABLE t (id INTEGER, v FLOAT) SEGMENTED BY HASH(id)")
	var values []string
	for i := 0; i < 200; i++ {
		values = append(values, fmt.Sprintf("(%d, %d.5)", i, i))
	}
	s.MustExecute("INSERT INTO t VALUES " + strings.Join(values, ", "))

	// Query exactly node 2's segment from node 2: full locality.
	segs := vhash.Segments(4)
	q := fmt.Sprintf("SELECT id, v FROM t WHERE HASH(id) >= %d AND HASH(id) < %d", segs[2].Lo, segs[2].Hi)
	res := s.MustExecute(q)
	for _, r := range res.Rows {
		h := vhash.Hash(r[0])
		if !segs[2].Contains(h) {
			t.Errorf("row %v outside requested range", r)
		}
	}
	// Union over all four ranges must reproduce the table exactly once.
	seen := map[int64]int{}
	for i := 0; i < 4; i++ {
		q := fmt.Sprintf("SELECT id FROM t WHERE HASH(id) >= %d AND HASH(id) < %d", segs[i].Lo, segs[i].Hi)
		for _, r := range s.MustExecute(q).Rows {
			seen[r[0].I]++
		}
	}
	if len(seen) != 200 {
		t.Fatalf("union covered %d ids, want 200", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("id %d returned %d times", id, n)
		}
	}
}

func TestEpochSnapshotIsolation(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER)")
	s.MustExecute("INSERT INTO t VALUES (1), (2)")
	e1 := c.LastEpoch()
	s.MustExecute("INSERT INTO t VALUES (3)")
	s.MustExecute("DELETE FROM t WHERE id = 1")

	res := s.MustExecute(fmt.Sprintf("AT EPOCH %d SELECT COUNT(*) FROM t", e1))
	if v, _ := res.Value(); v.I != 2 {
		t.Errorf("AT EPOCH %d count = %v, want 2", e1, v)
	}
	res = s.MustExecute("AT EPOCH LATEST SELECT COUNT(*) FROM t")
	if v, _ := res.Value(); v.I != 2 {
		t.Errorf("latest count = %v, want 2 (3 inserted, 1 deleted)", v)
	}
	if _, err := s.Execute(fmt.Sprintf("AT EPOCH %d SELECT * FROM t", c.LastEpoch()+10)); err == nil {
		t.Error("future epoch should error")
	}
}

func TestExplicitTransactionCommitAbort(t *testing.T) {
	c := testCluster(t, 2)
	a := sess(t, c, 0)
	b := sess(t, c, 1)
	a.MustExecute("CREATE TABLE t (id INTEGER)")

	a.MustExecute("BEGIN")
	a.MustExecute("INSERT INTO t VALUES (1)")
	// Uncommitted: invisible to b, visible to a.
	if v, _ := b.MustExecute("SELECT COUNT(*) FROM t").Value(); v.I != 0 {
		t.Error("uncommitted insert visible to other session")
	}
	if v, _ := a.MustExecute("SELECT COUNT(*) FROM t").Value(); v.I != 1 {
		t.Error("session cannot see its own uncommitted insert")
	}
	a.MustExecute("COMMIT")
	if v, _ := b.MustExecute("SELECT COUNT(*) FROM t").Value(); v.I != 1 {
		t.Error("committed insert not visible")
	}

	a.MustExecute("BEGIN")
	a.MustExecute("INSERT INTO t VALUES (2)")
	a.MustExecute("ROLLBACK")
	if v, _ := b.MustExecute("SELECT COUNT(*) FROM t").Value(); v.I != 1 {
		t.Error("aborted insert leaked")
	}
}

func TestConditionalUpdateLeaderElection(t *testing.T) {
	// The exact S2V phase-3 race (§3.2.1): many sessions try to claim the
	// last-committer slot; exactly one succeeds.
	c := testCluster(t, 4)
	setup := sess(t, c, 0)
	setup.MustExecute("CREATE TABLE lc (task_id INTEGER)")
	setup.MustExecute("INSERT INTO lc VALUES (-1)") // -1 = unclaimed

	const tasks = 8
	var wg sync.WaitGroup
	winners := make(chan int, tasks)
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s, err := c.Connect(id % 4)
			if err != nil {
				t.Error(err)
				return
			}
			defer s.Close()
			if _, err := s.Execute("BEGIN"); err != nil {
				t.Error(err)
				return
			}
			res, err := s.Execute(fmt.Sprintf("UPDATE lc SET task_id = %d WHERE task_id = -1", id))
			if err != nil {
				_, _ = s.Execute("ROLLBACK")
				return
			}
			if res.RowsAffected == 1 {
				if _, err := s.Execute("COMMIT"); err == nil {
					winners <- id
				}
			} else {
				_, _ = s.Execute("ROLLBACK")
			}
		}(i)
	}
	wg.Wait()
	close(winners)
	var won []int
	for w := range winners {
		won = append(won, w)
	}
	if len(won) != 1 {
		t.Fatalf("leader election produced %d winners: %v", len(won), won)
	}
	res := setup.MustExecute("SELECT task_id FROM lc")
	if v, _ := res.Value(); v.I != int64(won[0]) {
		t.Errorf("table records task %v, winner was %d", v, won[0])
	}
}

func TestUpdateReroutesOnSegmentChange(t *testing.T) {
	c := testCluster(t, 4)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER, v VARCHAR) SEGMENTED BY HASH(id)")
	s.MustExecute("INSERT INTO t VALUES (1, 'x')")
	s.MustExecute("UPDATE t SET id = 9999")
	tbl, _ := c.Catalog().Table("t")
	vis := snapshotVis(c)
	home := tbl.HomeNode(vhash.Hash(types.IntValue(9999)))
	if got := tbl.Stores[home].RowCount(vis); got != 1 {
		t.Errorf("updated row not on new home node %d (count %d)", home, got)
	}
	if v, _ := s.MustExecute("SELECT COUNT(*) FROM t").Value(); v.I != 1 {
		t.Error("update duplicated or lost the row")
	}
}

func TestUnsegmentedReplication(t *testing.T) {
	c := testCluster(t, 3)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE u (id INTEGER) UNSEGMENTED ALL NODES")
	s.MustExecute("INSERT INTO u VALUES (1), (2)")
	tbl, _ := c.Catalog().Table("u")
	vis := snapshotVis(c)
	for i, st := range tbl.Stores {
		if st.RowCount(vis) != 2 {
			t.Errorf("replica on node %d has %d rows, want 2", i, st.RowCount(vis))
		}
	}
	// Reads from any node see the same data with zero shuffle.
	s2 := sess(t, c, 2)
	if v, _ := s2.MustExecute("SELECT COUNT(*) FROM u").Value(); v.I != 2 {
		t.Error("unsegmented read from other node broken")
	}
	// Conditional update still works and applies to all replicas.
	s.MustExecute("UPDATE u SET id = 5 WHERE id = 1")
	for i, st := range tbl.Stores {
		if st.RowCount(snapshotVis(c)) != 2 {
			t.Errorf("replica %d lost rows after update", i)
		}
	}
}

func TestKSafetyFailover(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 4, KSafety: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.MustExecute("CREATE TABLE t (id INTEGER) SEGMENTED BY HASH(id) KSAFE 1")
	var values []string
	for i := 0; i < 100; i++ {
		values = append(values, fmt.Sprintf("(%d)", i))
	}
	s.MustExecute("INSERT INTO t VALUES " + strings.Join(values, ", "))
	before, _ := s.MustExecute("SELECT COUNT(*) FROM t").Value()
	c.Node(2).SetDown(true)
	after, _ := s.MustExecute("SELECT COUNT(*) FROM t").Value()
	if before.I != 100 || after.I != 100 {
		t.Errorf("count before/after node failure: %v / %v, want 100/100", before, after)
	}
	c.Node(3).SetDown(true)
	if _, err := s.Execute("SELECT COUNT(*) FROM t"); err == nil {
		t.Error("two failures with k=1 should error")
	}
}

func TestCopyCSVStream(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER, name VARCHAR)")
	data := "1,alice\n2,bob\nnotanint,carol\n3,dave\n"
	res, err := s.CopyFrom("COPY t FROM STDIN FORMAT CSV DIRECT REJECTMAX 1", strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if res.Copy.Loaded != 3 || res.Copy.Rejected != 1 {
		t.Errorf("loaded/rejected = %d/%d", res.Copy.Loaded, res.Copy.Rejected)
	}
	if len(res.Copy.RejectedSample) != 1 {
		t.Errorf("rejected sample = %v", res.Copy.RejectedSample)
	}
	if v, _ := s.MustExecute("SELECT COUNT(*) FROM t").Value(); v.I != 3 {
		t.Error("COPY did not load rows")
	}
}

func TestCopyRejectMaxExceeded(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER)")
	_, err := s.CopyFrom("COPY t FROM STDIN FORMAT CSV", strings.NewReader("x\ny\n"))
	if err == nil {
		t.Fatal("rejects beyond REJECTMAX should fail the load")
	}
	if v, _ := s.MustExecute("SELECT COUNT(*) FROM t").Value(); v.I != 0 {
		t.Error("failed COPY must not leave partial data")
	}
}

func TestCopyAvroStream(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER, x FLOAT)")
	schema := avro.Schema{Name: "row", Fields: []avro.Field{
		{Name: "id", Type: types.Int64}, {Name: "x", Type: types.Float64},
	}}
	var buf bytes.Buffer
	w, err := avro.NewWriter(&buf, schema, avro.CodecDeflate, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := w.Append(types.Row{types.IntValue(int64(i)), types.FloatValue(float64(i) / 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := s.CopyFrom("COPY t FROM STDIN FORMAT AVRO DIRECT", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Copy.Loaded != 50 {
		t.Errorf("loaded = %d", res.Copy.Loaded)
	}
	if v, _ := s.MustExecute("SELECT SUM(id) FROM t").Value(); v.I != 49*50/2 {
		t.Errorf("SUM(id) = %v", v)
	}
}

func TestCopyAvroSchemaMismatch(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER)")
	var buf bytes.Buffer
	w, _ := avro.NewWriter(&buf, avro.Schema{Name: "row", Fields: []avro.Field{{Name: "wrong", Type: types.Varchar}}}, avro.CodecNull, 0)
	_ = w.Append(types.Row{types.StringValue("x")})
	_ = w.Close()
	if _, err := s.CopyFrom("COPY t FROM STDIN FORMAT AVRO", &buf); err == nil {
		t.Error("schema mismatch should fail")
	}
}

func TestViewsAndAggregates(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE sales (region VARCHAR, amount FLOAT)")
	s.MustExecute("INSERT INTO sales VALUES ('east', 10), ('east', 20), ('west', 5)")
	s.MustExecute("CREATE VIEW totals AS SELECT region, SUM(amount) AS total, COUNT(*) AS n FROM sales GROUP BY region")
	res := s.MustExecute("SELECT region, total FROM totals WHERE total > 6")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "east" || res.Rows[0][1].F != 30 {
		t.Errorf("view query = %v", res.Rows)
	}
	// Synthetic hash partitioning over a view (the V2S view-loading path).
	seen := 0
	for i := 0; i < 4; i++ {
		q := fmt.Sprintf("SELECT region FROM totals WHERE MOD(HASH(*), 4) = %d", i)
		seen += len(s.MustExecute(q).Rows)
	}
	if seen != 2 {
		t.Errorf("synthetic hash partitions covered %d view rows, want 2", seen)
	}
}

func TestJoin(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE users (uid INTEGER, name VARCHAR)")
	s.MustExecute("CREATE TABLE orders (oid INTEGER, uid INTEGER, amt FLOAT)")
	s.MustExecute("INSERT INTO users VALUES (1, 'ann'), (2, 'bob')")
	s.MustExecute("INSERT INTO orders VALUES (10, 1, 5.0), (11, 1, 7.0), (12, 3, 9.0)")
	res := s.MustExecute("SELECT u.name, o.amt FROM users u JOIN orders o ON u.uid = o.uid WHERE o.amt > 4")
	if len(res.Rows) != 2 {
		t.Fatalf("join rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r[0].S != "ann" {
			t.Errorf("unexpected join row %v", r)
		}
	}
}

func TestSystemTables(t *testing.T) {
	c := testCluster(t, 4)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER, x FLOAT) SEGMENTED BY HASH(id)")

	res := s.MustExecute("SELECT node_address FROM v_catalog.nodes")
	if len(res.Rows) != 4 {
		t.Errorf("nodes = %d", len(res.Rows))
	}
	res = s.MustExecute("SELECT segment_lower_bound, segment_upper_bound FROM v_catalog.segments WHERE table_name = 't'")
	if len(res.Rows) != 4 {
		t.Fatalf("segments = %d", len(res.Rows))
	}
	if res.Rows[0][0].I != 0 || uint64(res.Rows[3][1].I) != vhash.RingSize {
		t.Errorf("segment bounds wrong: %v", res.Rows)
	}
	res = s.MustExecute("SELECT column_name, data_type FROM v_catalog.columns WHERE table_name = 't'")
	if len(res.Rows) != 2 || res.Rows[1][1].S != "FLOAT" {
		t.Errorf("columns = %v", res.Rows)
	}
	res = s.MustExecute("SELECT is_segmented FROM v_catalog.tables WHERE table_name = 't'")
	if v, _ := res.Value(); !v.B {
		t.Error("t should be segmented")
	}
}

func TestBuiltinsAndUDx(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	res := s.MustExecute("SELECT LAST_EPOCH()")
	if v, _ := res.Value(); uint64(v.I) != c.LastEpoch() {
		t.Errorf("LAST_EPOCH() = %v, want %d", v, c.LastEpoch())
	}
	c.RegisterUDx("double_it", func(args []types.Value, _ map[string]string) (types.Value, error) {
		return types.FloatValue(args[0].AsFloat() * 2), nil
	})
	s.MustExecute("CREATE TABLE t (x FLOAT)")
	s.MustExecute("INSERT INTO t VALUES (1.5)")
	res = s.MustExecute("SELECT DOUBLE_IT(x) FROM t")
	if v, _ := res.Value(); v.F != 3.0 {
		t.Errorf("UDx = %v", v)
	}
	if _, err := s.Execute("SELECT NO_SUCH_FN(x) FROM t"); err == nil {
		t.Error("unknown function should error at plan time")
	}
}

func TestRenameOverwriteCommit(t *testing.T) {
	// The S2V overwrite pattern: staging renamed over target atomically with
	// a conditional status update.
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE target (id INTEGER)")
	s.MustExecute("INSERT INTO target VALUES (1)")
	s.MustExecute("CREATE TABLE staging (id INTEGER)")
	s.MustExecute("INSERT INTO staging VALUES (100), (200)")
	s.MustExecute("CREATE TABLE status (finished BOOLEAN)")
	s.MustExecute("INSERT INTO status VALUES (FALSE)")

	s.MustExecute("BEGIN")
	res := s.MustExecute("UPDATE status SET finished = TRUE WHERE finished = FALSE")
	if res.RowsAffected != 1 {
		t.Fatal("conditional update should succeed")
	}
	s.MustExecute("DROP TABLE target")
	s.MustExecute("ALTER TABLE staging RENAME TO target")
	s.MustExecute("COMMIT")

	if v, _ := s.MustExecute("SELECT COUNT(*) FROM target").Value(); v.I != 2 {
		t.Error("rename did not take effect")
	}
	if _, ok := c.Catalog().Table("staging"); ok {
		t.Error("staging should be gone")
	}

	// A duplicate committer aborts: target untouched.
	s.MustExecute("CREATE TABLE staging2 (id INTEGER)")
	s.MustExecute("BEGIN")
	res = s.MustExecute("UPDATE status SET finished = TRUE WHERE finished = FALSE")
	if res.RowsAffected != 0 {
		t.Fatal("second conditional update should find nothing")
	}
	s.MustExecute("ROLLBACK")
	if v, _ := s.MustExecute("SELECT COUNT(*) FROM target").Value(); v.I != 2 {
		t.Error("duplicate committer corrupted target")
	}
}

func TestRenameAbortedInTxn(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE a (id INTEGER)")
	s.MustExecute("BEGIN")
	s.MustExecute("ALTER TABLE a RENAME TO b")
	s.MustExecute("ROLLBACK")
	if _, ok := c.Catalog().Table("a"); !ok {
		t.Error("aborted rename must not apply")
	}
}

func TestSessionLimit(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 1, MaxClientSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := c.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Connect(0); err == nil {
		t.Error("third session should exceed MAX-CLIENT-SESSIONS")
	}
	s1.Close()
	s3, err := c.Connect(0)
	if err != nil {
		t.Errorf("session slot should free on close: %v", err)
	}
	s2.Close()
	if s3 != nil {
		s3.Close()
	}
}

func TestMoveoutPreservesData(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER)")
	s.MustExecute("INSERT INTO t VALUES (1), (2), (3)")
	e := c.LastEpoch()
	if err := c.Moveout(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.MustExecute("SELECT COUNT(*) FROM t").Value(); v.I != 3 {
		t.Error("moveout lost rows")
	}
	res := s.MustExecute(fmt.Sprintf("AT EPOCH %d SELECT COUNT(*) FROM t", e))
	if v, _ := res.Value(); v.I != 3 {
		t.Error("moveout broke epoch visibility")
	}
}

func TestLimitAndArithmetic(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER)")
	s.MustExecute("INSERT INTO t VALUES (1), (2), (3), (4)")
	res := s.MustExecute("SELECT id * 2 + 1 AS y FROM t LIMIT 2")
	if len(res.Rows) != 2 {
		t.Errorf("LIMIT: %d rows", len(res.Rows))
	}
	if res.Schema.Cols[0].Name != "y" {
		t.Errorf("alias = %q", res.Schema.Cols[0].Name)
	}
}

func TestInsertColumnSubsetAndCoercion(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER, x FLOAT, name VARCHAR)")
	s.MustExecute("INSERT INTO t (x, id) VALUES (2, 1)") // int literal into FLOAT col
	res := s.MustExecute("SELECT id, x, name FROM t")
	r := res.Rows[0]
	if r[0].I != 1 || r[1].F != 2.0 || !r[2].Null {
		t.Errorf("row = %v", r)
	}
}

func TestErrors(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	if _, err := s.Execute("SELECT * FROM missing"); err == nil {
		t.Error("missing table should error")
	}
	if _, err := s.Execute("CREATE TABLE t (a INTEGER"); err == nil {
		t.Error("syntax error should surface")
	}
	s.MustExecute("CREATE TABLE t (a INTEGER)")
	if _, err := s.Execute("CREATE TABLE t (a INTEGER)"); err == nil {
		t.Error("duplicate table should error")
	}
	if _, err := s.Execute("INSERT INTO t (nope) VALUES (1)"); err == nil {
		t.Error("bad column should error")
	}
	if _, err := s.Execute("SELECT nope FROM t"); err == nil {
		t.Error("unknown select column should error")
	}
}

func TestOrderBy(t *testing.T) {
	c := testCluster(t, 2)
	s := sess(t, c, 0)
	s.MustExecute("CREATE TABLE t (id INTEGER, name VARCHAR)")
	s.MustExecute("INSERT INTO t VALUES (3, 'c'), (1, 'a'), (2, 'b'), (2, 'z')")
	res := s.MustExecute("SELECT id, name FROM t ORDER BY id DESC, name ASC LIMIT 3")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].I != 3 || res.Rows[1][1].S != "b" || res.Rows[2][1].S != "z" {
		t.Errorf("order = %v", res.Rows)
	}
	// ORDER BY with aggregates.
	res = s.MustExecute("SELECT id, COUNT(*) AS n FROM t GROUP BY id ORDER BY n DESC, id")
	if res.Rows[0][0].I != 2 || res.Rows[0][1].I != 2 {
		t.Errorf("agg order = %v", res.Rows)
	}
	if _, err := s.Execute("SELECT id FROM t ORDER BY missing"); err == nil {
		t.Error("bad ORDER BY column should error")
	}
}
