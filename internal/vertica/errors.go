package vertica

import "errors"

// Sentinel errors for conditions a client can meaningfully react to. They are
// wrapped with context (node id, limits) by the code that raises them, so
// callers test with errors.Is. The resilience layer classifies both as
// transient: a down node recovers (or a buddy serves its data), and a session
// slot frees as soon as another client disconnects.
var (
	// ErrNodeDown reports a connection attempt to, or a statement on, a node
	// that is currently failed.
	ErrNodeDown = errors.New("vertica: node down")

	// ErrSessionLimit reports a connection attempt rejected because the node
	// is at MAX-CLIENT-SESSIONS. Retry with backoff, or connect elsewhere.
	ErrSessionLimit = errors.New("vertica: MAX-CLIENT-SESSIONS exceeded")

	// ErrNodeRemoved reports a connection attempt to a node that was removed
	// from the cluster by ALTER CLUSTER REMOVE NODE. Unlike ErrNodeDown the
	// node will never come back, but the condition is still classified
	// transient for failover purposes: every segment the node held has been
	// rebalanced onto the surviving members, so retrying against another
	// address succeeds.
	ErrNodeRemoved = errors.New("vertica: node removed from cluster")
)
