package vertica

import "errors"

// Sentinel errors for conditions a client can meaningfully react to. They are
// wrapped with context (node id, limits) by the code that raises them, so
// callers test with errors.Is. The resilience layer classifies both as
// transient: a down node recovers (or a buddy serves its data), and a session
// slot frees as soon as another client disconnects.
var (
	// ErrNodeDown reports a connection attempt to, or a statement on, a node
	// that is currently failed.
	ErrNodeDown = errors.New("vertica: node down")

	// ErrSessionLimit reports a connection attempt rejected because the node
	// is at MAX-CLIENT-SESSIONS. Retry with backoff, or connect elsewhere.
	ErrSessionLimit = errors.New("vertica: MAX-CLIENT-SESSIONS exceeded")
)
