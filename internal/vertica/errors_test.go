package vertica

import (
	"errors"
	"testing"
)

// The typed sentinels exist so callers (the resilience layer in particular)
// can classify failures with errors.Is instead of string matching.
func TestErrorSentinels(t *testing.T) {
	c, err := NewCluster(Config{Nodes: 2, MaxClientSessions: 1})
	if err != nil {
		t.Fatal(err)
	}

	s, err := c.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := c.Connect(0); !errors.Is(err, ErrSessionLimit) {
		t.Errorf("err = %v, want errors.Is ErrSessionLimit", err)
	}

	c.Node(1).SetDown(true)
	if _, err := c.Connect(1); !errors.Is(err, ErrNodeDown) {
		t.Errorf("connect err = %v, want errors.Is ErrNodeDown", err)
	}
	c.Node(0).SetDown(true)
	if _, err := s.Execute("SELECT 1"); !errors.Is(err, ErrNodeDown) {
		t.Errorf("execute err = %v, want errors.Is ErrNodeDown", err)
	}
}
