package vertica

import (
	"fmt"
	"time"

	"vsfabric/internal/obs"
)

// This file is the query-event raise funnel: typed engine events
// (obs.QueryEventType) raised from the planner, executors, pool admission,
// and WAL layers flow through one path into the collector's ring (backing
// v_monitor.query_events), the statement's PROFILE output, and the durable
// data collector.

// defaultJoinBuildRows is the JOIN_BUILD_SIDE_LARGE threshold when
// Config.JoinBuildRows is 0: a hash-join build side over 64K rows is past
// the point where build-side choice dominates join cost.
const defaultJoinBuildRows = 1 << 16

// defaultWALFsyncStall is the WAL_FSYNC_STALL threshold when
// Config.WALFsyncStall is 0: a commit fsync taking 50ms is an order of
// magnitude past a healthy local disk.
const defaultWALFsyncStall = 50 * time.Millisecond

// raiseEvent raises a typed query event from the current statement: it is
// appended to the statement's event list (surfaced inline by PROFILE) and
// recorded cluster-wide. Monitoring reads never raise events — the system
// tables must not observe themselves.
func (s *Session) raiseEvent(t obs.QueryEventType, detail string, value, threshold int64) {
	if s.sysStmt || !s.cluster.mon.Enabled() {
		return
	}
	ev := obs.QueryEvent{
		Time:      time.Now(),
		Type:      t,
		Node:      s.node.Name,
		TraceID:   s.curTrace,
		Query:     s.curSQL,
		Detail:    detail,
		Value:     value,
		Threshold: threshold,
	}
	s.stmtEvents = append(s.stmtEvents, ev)
	s.cluster.raiseQueryEvent(ev)
}

// raiseQueryEvent records a query event cluster-wide: the collector's ring
// and counters, then the durable data collector's query_events component.
// Engine-internal events (WAL fsync stalls) raise here directly with no
// session attached.
func (c *Cluster) raiseQueryEvent(ev obs.QueryEvent) {
	if !c.mon.Enabled() {
		return
	}
	c.mon.RecordQueryEvent(ev)
	c.dcAppendQueryEvent(ev)
}

// slowQueryThreshold resolves the SLOW_QUERY threshold: the session's SET
// SESSION SLOW_QUERY_THRESHOLD override wins, else the cluster config.
// 0 disables.
func (s *Session) slowQueryThreshold() time.Duration {
	if s.slowQuerySet {
		return s.slowQuery
	}
	return s.cluster.cfg.SlowQueryThreshold
}

// joinBuildThreshold resolves the JOIN_BUILD_SIDE_LARGE row threshold
// (<0 disables, 0 means the default).
func (s *Session) joinBuildThreshold() int64 {
	t := s.cluster.cfg.JoinBuildRows
	if t == 0 {
		return defaultJoinBuildRows
	}
	if t < 0 {
		return 0
	}
	return t
}

// walStallThreshold resolves the WAL_FSYNC_STALL duration threshold
// (<0 disables, 0 means the default).
func (c *Cluster) walStallThreshold() time.Duration {
	t := c.cfg.WALFsyncStall
	if t == 0 {
		return defaultWALFsyncStall
	}
	if t < 0 {
		return 0
	}
	return t
}

// raiseZoneMapSkipped raises ZONEMAP_PRUNE_SKIPPED after a scan whose
// predicate had prunable zone checks but whose containers could not all be
// tested: either the NoZoneMapPruning ablation disabled pruning outright
// (value = containers scanned), or some containers carried no zone maps
// (value = stat-less containers).
func (s *Session) raiseZoneMapSkipped(table string, zoneable bool, noStats, seen int64) {
	if !zoneable || seen == 0 {
		return
	}
	if s.cluster.cfg.NoZoneMapPruning {
		s.raiseEvent(obs.EvZoneMapPruneSkipped,
			"scan "+table+": zone-map pruning disabled by configuration", seen, 0)
		return
	}
	if noStats > 0 {
		s.raiseEvent(obs.EvZoneMapPruneSkipped,
			fmt.Sprintf("scan %s: %d of %d containers carry no zone maps", table, noStats, seen),
			noStats, 0)
	}
}

// raiseJoinBuildEvent raises JOIN_BUILD_SIDE_LARGE when a hash join built
// its table over more rows than the configured threshold.
func (s *Session) raiseJoinBuildEvent(buildRows int64, buildSide, leftCol, rightCol string) {
	thr := s.joinBuildThreshold()
	if thr <= 0 || buildRows < thr {
		return
	}
	s.raiseEvent(obs.EvJoinBuildSideLarge,
		"hash join "+leftCol+" = "+rightCol+", build "+buildSide+" side",
		buildRows, thr)
}
